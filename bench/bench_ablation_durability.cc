// Ablation: the durability layer's cost and the group-commit remedy.
//
// Sweeps DurabilityMode {off, buffered, fsync} x group_commit_txs
// {1, 4, 16} over a write-heavy KV workload (every transaction is a
// read-modify-write, so every commit appends to its partition's
// write-ahead log). `off` is the paper's in-memory DTM — the commit path
// is byte-identical to the pre-durability protocol, so its row is the
// true baseline. `buffered` pays the append plus a cheap library-buffer
// flush; `fsync` pays a simulated disk round trip per flush, which is
// exactly what group commit amortizes: with group_commit_txs = N the
// service defers acks and flushes once per N records instead of per
// transaction.
//
// Each row reports throughput plus the log traffic behind it: appended
// commit records, group-commit flushes, and records per flush.
//
// The bench asserts the ordering it exists to measure (on default runs;
// overrides and --smoke reshape the sweep): at every group-commit depth,
// off >= buffered >= fsync throughput, and group commit strictly cuts the
// flush count (flushes at depth 4 below the one-flush-per-record
// baseline).
#include <map>

#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint32_t kGroupSweep[] = {1, 4, 16};
constexpr uint64_t kNumKeys = 2048;

struct SweepPoint {
  double ops_per_ms = 0.0;
  uint64_t commit_records = 0;
  uint64_t log_flushes = 0;
};

const char* ModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kBuffered:
      return "buffered";
    case DurabilityMode::kFsync:
      return "fsync";
  }
  return "?";
}

BenchRow RunPoint(BenchContext& ctx, const std::string& platform, DurabilityMode mode,
                  uint32_t group_commit, SweepPoint* point) {
  RunSpec spec = ctx.Spec(30, 23);
  spec.platform_name = platform;
  spec.total_cores = ctx.Cores(16);
  TmSystemConfig cfg = MakeConfig(spec);
  // Durability knobs live on TmConfig, not RunSpec: set them after
  // MakeConfig so the shared overrides still apply.
  cfg.tm.durability = mode;
  cfg.tm.group_commit_txs = group_commit;
  cfg.tm.checkpoint_every_records = 0;  // the log cost alone, no checkpoints

  TmSystem sys(cfg);
  KvStoreConfig kv;
  kv.capacity_per_partition = 2 * kNumKeys;
  KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), kv);
  FillStore(store, kNumKeys);
  if (sys.durability_enabled()) {
    sys.CaptureDurableCheckpoint0();
  }

  LatencySampler lat;
  InstallLoopBodies(sys, spec.duration, spec.seed,
                    [&store](CoreEnv& env, TxRuntime& rt, Rng& rng) {
                      env.Compute(kOpOverheadCycles);
                      const uint64_t key = 1 + rng.NextBelow(kNumKeys);
                      store.ReadModifyWrite(rt, key, [](uint64_t* v) { v[0] += 1; });
                    },
                    &lat);
  sys.Run(spec.duration);

  uint64_t commit_records = 0;
  uint64_t log_flushes = 0;
  for (uint32_t p = 0; p < sys.deployment().num_service(); ++p) {
    commit_records += sys.ServiceAt(p).stats().commit_records;
    log_flushes += sys.ServiceAt(p).stats().log_flushes;
  }
  const ThroughputResult r = Summarize(sys, spec.duration);
  point->ops_per_ms = r.ops_per_ms;
  point->commit_records = commit_records;
  point->log_flushes = log_flushes;

  BenchRow row;
  row.Param("platform", platform)
      .Param("durability", ModeName(mode))
      .Param("group_commit", uint64_t{group_commit})
      .Param("cores", uint64_t{spec.total_cores});
  row.TxMerged(r.stats, r.ops_per_ms, lat);
  row.Extra("commit_records", static_cast<double>(commit_records));
  row.Extra("log_flushes", static_cast<double>(log_flushes));
  if (log_flushes > 0) {
    row.Extra("records_per_flush",
              static_cast<double>(commit_records) / static_cast<double>(log_flushes));
  }
  return row;
}

void Run(BenchContext& ctx) {
  // The asserts encode the default sweep's expected ordering; arbitrary
  // overrides (fewer cores, shorter horizons, other CMs) can legitimately
  // flatten adjacent points, so they only arm on default sim runs —
  // mirroring the other ablations.
  const BenchOptions& o = ctx.opts();
  const bool assert_curve = o.cores == 0 && o.service_cores == 0 && o.duration_ms == 0.0 &&
                            o.seed == 0 && o.cm.empty() && !ctx.native();

  for (const std::string& platform : ctx.PlatformSweep({"scc", "opteron"})) {
    // mode -> group_commit -> measured point. `off` has no log to group,
    // so it runs at depth 1 only and serves as the per-depth baseline.
    std::map<DurabilityMode, std::map<uint32_t, SweepPoint>> curve;
    for (const DurabilityMode mode :
         {DurabilityMode::kOff, DurabilityMode::kBuffered, DurabilityMode::kFsync}) {
      for (const uint32_t group : kGroupSweep) {
        if (mode == DurabilityMode::kOff && group != 1) {
          continue;
        }
        SweepPoint point;
        ctx.Report(RunPoint(ctx, platform, mode, group, &point));
        curve[mode][group] = point;
      }
    }
    if (!assert_curve) {
      continue;
    }
    const SweepPoint& off = curve.at(DurabilityMode::kOff).at(1);
    for (const uint32_t group : kGroupSweep) {
      const SweepPoint& buffered = curve.at(DurabilityMode::kBuffered).at(group);
      const SweepPoint& fsync = curve.at(DurabilityMode::kFsync).at(group);
      // Durability is never free, and a buffered flush is never dearer
      // than an fsync: the cost ordering this ablation exists to show.
      TM2C_CHECK_MSG(off.ops_per_ms >= buffered.ops_per_ms,
                     "buffered logging outran the no-durability baseline");
      TM2C_CHECK_MSG(buffered.ops_per_ms >= fsync.ops_per_ms,
                     "fsync logging outran buffered logging");
    }
    // Group commit must strictly cut the flush count: one flush per record
    // at depth 1, strictly fewer at depth 4.
    for (const DurabilityMode mode : {DurabilityMode::kBuffered, DurabilityMode::kFsync}) {
      const SweepPoint& per_tx = curve.at(mode).at(1);
      const SweepPoint& grouped = curve.at(mode).at(4);
      // Depth 1 flushes exactly once per record: a fiber the horizon froze
      // between append and flush is settled by the post-run quiesce flush,
      // so there is no slack to forgive.
      TM2C_CHECK_MSG(per_tx.log_flushes == per_tx.commit_records,
                     "depth-1 group commit did not flush exactly once per record");
      TM2C_CHECK_MSG(grouped.log_flushes < grouped.commit_records,
                     "group commit did not batch any flush");
      TM2C_CHECK_MSG(grouped.log_flushes < per_tx.log_flushes,
                     "group commit did not cut the flush count");
    }
  }
}

TM2C_REGISTER_BENCH("ablation_durability", "ablation",
                    "write-ahead log cost: durability mode x group-commit sweep", &Run);

}  // namespace
}  // namespace tm2c

// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary is one registered bench body linked against the
// unified runner in bench/bench_main.cc. The runner owns the shared command
// line (platform, cores, service cores, CM, duration, seed, smoke mode),
// prints a uniform results table, and emits one machine-readable JSON
// document per binary (see bench/run_all.sh, which merges them into
// BENCH_results.json). Bench bodies build TmSystems from RunSpecs, install
// per-core operation loops that run until the simulated horizon, and report
// one BenchRow per measured scenario: throughput (ops/ms), commit/abort
// rate, and p50/p95/p99 operation latency.
#ifndef TM2C_BENCH_BENCH_UTIL_H_
#define TM2C_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/tm/tm_system.h"

namespace tm2c {

struct RunSpec {
  std::string platform_name = "scc";
  uint32_t total_cores = 48;
  // Service cores for the dedicated deployment; by default half, the
  // allocation Section 5.3 justifies.
  uint32_t service_cores = 0;  // 0 => total/2
  DeployStrategy strategy = DeployStrategy::kDedicated;
  CmKind cm = CmKind::kFairCm;
  TxMode tx_mode = TxMode::kNormal;
  WriteAcquire write_acquire = WriteAcquire::kLazy;
  // Benches default to a batched commit (the paper's Section 3.3
  // behaviour); TmConfig's own default of 1 is the unbatched protocol
  // baseline the batching ablation sweeps from.
  uint32_t max_batch = 16;
  // Pipelined acquisition depth (TmConfig::pipeline_depth); 1 = the
  // lockstep request/reply protocol, larger depths overlap per-node
  // batches. Swept by bench_ablation_pipeline, overridable everywhere via
  // --pipeline-depth.
  uint32_t pipeline_depth = 1;
  // Owner-local fast path (TmConfig::local_fast_path): multitasked
  // deployments serve own-partition acquisitions as direct lock-table
  // calls instead of self-addressed messages.
  bool local_fast_path = false;
  uint64_t shmem_bytes = 32ull << 20;
  uint64_t seed = 1;
  // Simulated time under the sim backend, wall-clock under threads.
  SimTime duration = MillisToSim(50);
  // Runtime backend: the deterministic simulator (default) or real OS
  // threads over the SPSC channels; --backend=threads selects the latter,
  // turning the bench's rows into measured native performance.
  BackendKind backend = BackendKind::kSim;
  ChannelKind channel = ChannelKind::kSpscRing;
  bool pin_threads = false;
};

// Fresh socket/WAL directory for one process-backend TmSystem. Each system
// needs its own: the partition servers bind their Unix sockets in it, and
// sequential sweep points must not inherit a predecessor's files. Respects
// TMPDIR so run_all.sh can point the dirs at its own cleanup-scoped scratch
// space; otherwise they land under /tmp.
inline std::string FreshProcessRunDir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string templ = std::string(tmp != nullptr ? tmp : "/tmp") + "/tm2c_bench_XXXXXX";
  TM2C_CHECK(::mkdtemp(templ.data()) != nullptr);
  return templ;
}

inline TmSystemConfig MakeConfig(const RunSpec& spec) {
  TmSystemConfig cfg;
  cfg.sim.platform = PlatformByName(spec.platform_name);
  cfg.sim.num_cores = spec.total_cores;
  cfg.sim.num_service =
      spec.strategy == DeployStrategy::kMultitasked
          ? 0
          : (spec.service_cores != 0 ? spec.service_cores
                                     : (spec.total_cores >= 2 ? spec.total_cores / 2 : 1));
  cfg.sim.strategy = spec.strategy;
  cfg.sim.shmem_bytes = spec.shmem_bytes;
  cfg.sim.seed = spec.seed;
  cfg.tm.cm = spec.cm;
  cfg.tm.tx_mode = spec.tx_mode;
  cfg.tm.write_acquire = spec.write_acquire;
  cfg.tm.max_batch = spec.max_batch;
  cfg.tm.pipeline_depth = spec.pipeline_depth;
  cfg.tm.local_fast_path = spec.local_fast_path;
  cfg.backend = spec.backend;
  cfg.channel = spec.channel;
  cfg.pin_threads = spec.pin_threads;
  if (spec.backend == BackendKind::kProcesses) {
    cfg.run_dir = FreshProcessRunDir();
  }
  return cfg;
}

// One benchmark operation; invoked repeatedly until the horizon.
using OpFn = std::function<void(CoreEnv&, TxRuntime&, Rng&)>;

// Serializes sampler merges from concurrently finishing app threads (the
// simulator's single thread passes through uncontended).
inline std::mutex& LoopSamplerMutex() {
  static std::mutex mu;
  return mu;
}

// One core's duration-bounded operation loop. The horizon is relative to
// the body's start, which makes the same loop correct on both backends:
// simulated cores start at time 0 (so relative == absolute), thread cores
// start at an arbitrary host clock reading.
//
// Latency recording differs per backend by necessity. The simulator is
// single-threaded but freezes bodies mid-op at the horizon, so samples go
// straight into the shared sampler (an end-of-body merge would lose every
// frozen core's samples). Thread bodies always run to completion but race
// each other, so each records into a core-local sampler merged under a
// mutex when the body finishes.
inline TmSystem::AppBody MakeLoopBody(bool simulated, SimTime duration, uint64_t seed,
                                      uint32_t index, OpFn op, LatencySampler* lat) {
  return [op = std::move(op), simulated, duration, seed, index, lat](CoreEnv& env,
                                                                     TxRuntime& rt) {
    Rng rng(seed * 7919 + index);
    LatencySampler local;
    LatencySampler* sink = simulated ? lat : &local;
    const SimTime t0 = env.GlobalNow();
    while (env.GlobalNow() - t0 < duration) {
      const SimTime start = env.GlobalNow();
      op(env, rt, rng);
      if (sink != nullptr) {
        sink->Add(SimToMicros(env.GlobalNow() - start));
      }
    }
    if (!simulated && lat != nullptr) {
      std::lock_guard<std::mutex> lock(LoopSamplerMutex());
      lat->Merge(local);
    }
  };
}

// Installs the same operation loop on every application core. Core `i`
// draws from an Rng seeded with (seed, i). When `lat` is non-null every
// completed operation records its end-to-end latency (including aborted
// attempts and retries) in microseconds — simulated time on the sim
// backend, wall-clock on threads.
inline void InstallLoopBodies(TmSystem& sys, SimTime duration, uint64_t seed, OpFn op,
                              LatencySampler* lat = nullptr) {
  const bool simulated = sys.backend() == BackendKind::kSim;
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, MakeLoopBody(simulated, duration, seed, i, op, lat));
  }
}

// Like InstallLoopBodies but application core 0 runs `special` instead
// (Figure 5(c)'s one-balance-core workloads).
inline void InstallLoopBodiesWithSpecialCore(TmSystem& sys, SimTime duration, uint64_t seed,
                                             OpFn special, OpFn op,
                                             LatencySampler* lat = nullptr) {
  const bool simulated = sys.backend() == BackendKind::kSim;
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, MakeLoopBody(simulated, duration, seed, i, i == 0 ? special : op, lat));
  }
}

struct ThroughputResult {
  double ops_per_ms = 0.0;
  double commit_rate = 1.0;
  uint64_t ops = 0;
  TxStats stats;
};

// Transactional throughput: every committed transaction is one operation.
inline ThroughputResult Summarize(const TmSystem& sys, SimTime duration) {
  ThroughputResult result;
  result.stats = sys.MergedStats();
  result.ops = result.stats.commits;
  result.ops_per_ms = static_cast<double>(result.ops) / SimToMillis(duration);
  result.commit_rate = result.stats.CommitRate();
  return result;
}

// Non-transactional (lock-based or sequential) throughput: the bodies count
// operations themselves into `counter`.
inline double OpsPerMs(uint64_t ops, SimTime duration) {
  return static_cast<double>(ops) / SimToMillis(duration);
}

// ---------------------------------------------------------------------------
// Unified runner layer
// ---------------------------------------------------------------------------

// Shared command line of every bench binary; zero/empty means "use the
// bench's own default". --smoke shrinks sweeps and durations so the whole
// suite finishes in CI time while still exercising every code path.
struct BenchOptions {
  std::string platform;      // "" = bench default
  int cores = 0;             // 0 = bench default sweep
  int service_cores = 0;     // 0 = bench default
  std::string cm;            // "" = bench default
  double duration_ms = 0.0;  // 0 = bench default
  uint64_t seed = 0;         // 0 = bench default
  bool smoke = false;
  std::string json_path;     // "" = no JSON output
  std::string backend;       // "" = sim; "threads" = native run, wall-clock
  std::string channel;       // thread transport: "" = spsc; "mutex" = v1 baseline
  bool pin = false;          // pin thread-backend threads to host CPUs
  int pipeline_depth = 0;    // 0 = bench default; >= 1 overrides everywhere
  std::string index;         // store index structure: "" = bench default
                             // sweep; "hash" | "btree" pins one
};

// p50/p95/p99 of per-operation latency, in (simulated) microseconds.
struct LatencySummary {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  uint64_t samples = 0;
};

inline LatencySummary SummarizeLatency(const LatencySampler& lat) {
  const std::vector<double> p = lat.Percentiles({0.50, 0.95, 0.99});
  LatencySummary s;
  s.p50_us = p[0];
  s.p95_us = p[1];
  s.p99_us = p[2];
  s.mean_us = lat.mean();
  s.samples = lat.count();
  return s;
}

// One measured scenario, under the schema every bench shares. `params`
// carries the scenario's sweep dimensions (cores, CM, load factor, ...);
// `extra` carries bench-specific metrics (speedup, messages/op, ...).
struct BenchRow {
  std::vector<std::pair<std::string, std::string>> params;
  double ops_per_ms = 0.0;
  double commit_rate = 1.0;
  double abort_rate = 0.0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  LatencySummary latency;
  std::vector<std::pair<std::string, double>> extra;

  BenchRow& Param(const std::string& key, const std::string& value) {
    params.emplace_back(key, value);
    return *this;
  }
  BenchRow& Param(const std::string& key, uint64_t value) {
    return Param(key, std::to_string(value));
  }
  BenchRow& Extra(const std::string& key, double value) {
    extra.emplace_back(key, value);
    return *this;
  }

  // Fills the standard metrics from pre-merged transactional stats (e.g.
  // several seeds of the same scenario).
  BenchRow& TxMerged(const TxStats& stats, double tput_ops_per_ms, const LatencySampler& lat) {
    ops_per_ms = tput_ops_per_ms;
    commit_rate = stats.CommitRate();
    abort_rate = 1.0 - commit_rate;
    commits = stats.commits;
    aborts = stats.aborts;
    latency = SummarizeLatency(lat);
    return *this;
  }

  // Fills the standard metrics from a transactional run.
  BenchRow& Tx(const TmSystem& sys, SimTime duration, const LatencySampler& lat) {
    const ThroughputResult r = Summarize(sys, duration);
    return TxMerged(r.stats, r.ops_per_ms, lat);
  }

  // Fills the standard metrics from a run where the bodies counted `ops`
  // themselves (lock-based, sequential, message-echo): nothing aborts.
  BenchRow& Ops(uint64_t ops, SimTime duration, const LatencySampler& lat) {
    ops_per_ms = OpsPerMs(ops, duration);
    commit_rate = 1.0;
    abort_rate = 0.0;
    commits = ops;
    aborts = 0;
    latency = SummarizeLatency(lat);
    return *this;
  }
};

// Handed to the bench body: resolves defaults against the shared command
// line and collects the rows the runner prints and serializes.
class BenchContext {
 public:
  explicit BenchContext(const BenchOptions& opts) : opts_(opts) {}

  const BenchOptions& opts() const { return opts_; }
  bool smoke() const { return opts_.smoke; }

  // Core-count sweep: --cores pins a single point; --smoke keeps one
  // mid-sweep point so even CI exercises a multi-core deployment. Sweep
  // points that a --service-cores override would make invalid (a dedicated
  // deployment needs at least one application core) are dropped here, in
  // the shared layer, so forwarding the flag through run_all.sh skips
  // those points instead of CHECK-aborting mid-suite; if nothing is left
  // the runner reports the empty result set and exits nonzero.
  std::vector<uint32_t> CoreSweep(std::vector<uint32_t> def) const {
    if (opts_.cores > 0) {
      def = {static_cast<uint32_t>(opts_.cores)};
    } else if (opts_.smoke && def.size() > 1) {
      def = {def[def.size() / 2]};
    }
    if (opts_.service_cores > 0) {
      std::vector<uint32_t> kept;
      for (const uint32_t cores : def) {
        if (static_cast<uint32_t>(opts_.service_cores) < cores) {
          kept.push_back(cores);
        }
      }
      return kept;
    }
    return def;
  }

  // Single total-core count for benches that fix the machine size rather
  // than sweep it; --cores overrides.
  uint32_t Cores(uint32_t def) const {
    return opts_.cores > 0 ? static_cast<uint32_t>(opts_.cores) : def;
  }

  // Generic sweep over any dimension: --smoke keeps only the first point.
  // (Built by hand rather than via resize(1): GCC 12's -O2 array-bounds
  // checker reports a false positive through vector::resize shrinkage.)
  template <typename T>
  std::vector<T> Sweep(std::vector<T> def) const {
    if (opts_.smoke && def.size() > 1) {
      std::vector<T> first;
      first.push_back(std::move(def.front()));
      return first;
    }
    return def;
  }

  // Contention-manager sweep: --cm restricts the sweep to that manager,
  // --smoke keeps the first point.
  std::vector<CmKind> CmSweep(std::vector<CmKind> def) const {
    if (!opts_.cm.empty()) {
      return {CmKindByName(opts_.cm)};
    }
    return Sweep(std::move(def));
  }

  // Platform sweep: --platform restricts the sweep to that model. Not
  // smoke-reduced — cross-platform comparison is the point of the benches
  // that sweep platforms, and each extra platform is cheap.
  std::vector<std::string> PlatformSweep(std::vector<std::string> def) const {
    if (!opts_.platform.empty()) {
      return {opts_.platform};
    }
    return def;
  }

  // Store-index sweep (benches on TxStoreApi): --index pins one structure.
  // Not smoke-reduced — comparing the index structures is the point of the
  // benches that sweep them, and the CI smoke gate checks both appear.
  std::vector<std::string> IndexSweep(std::vector<std::string> def) const {
    if (!opts_.index.empty()) {
      return {opts_.index};
    }
    return def;
  }

  // DTM-service-core sweep: --service-cores pins a single point; --smoke
  // keeps the first.
  std::vector<uint32_t> ServiceCoreSweep(std::vector<uint32_t> def) const {
    if (opts_.service_cores > 0) {
      return {static_cast<uint32_t>(opts_.service_cores)};
    }
    return Sweep(std::move(def));
  }

  // Simulated horizon: --duration-ms overrides, --smoke caps at 5 ms.
  SimTime Duration(uint64_t def_ms) const {
    if (opts_.duration_ms > 0.0) {
      return static_cast<SimTime>(opts_.duration_ms * static_cast<double>(kPicosPerMilli));
    }
    if (opts_.smoke && def_ms > 5) {
      return MillisToSim(5);
    }
    return MillisToSim(def_ms);
  }

  uint64_t Seed(uint64_t def) const { return opts_.seed != 0 ? opts_.seed : def; }

  // Seed sweep for benches that average over seeds: a --seed override runs
  // the single pinned seed once instead of repeating one simulation
  // per sweep entry; --smoke keeps the first.
  std::vector<uint64_t> SeedSweep(std::vector<uint64_t> def) const {
    if (opts_.seed != 0) {
      return {opts_.seed};
    }
    return Sweep(std::move(def));
  }

  std::string Platform(const std::string& def = "scc") const {
    return opts_.platform.empty() ? def : opts_.platform;
  }

  CmKind Cm(CmKind def) const { return opts_.cm.empty() ? def : CmKindByName(opts_.cm); }

  uint32_t ServiceCores(uint32_t def) const {
    return opts_.service_cores > 0 ? static_cast<uint32_t>(opts_.service_cores) : def;
  }

  BackendKind Backend() const { return BackendKindByName(opts_.backend); }
  ChannelKind Channel() const { return ChannelKindByName(opts_.channel); }
  // True on any wall-clock backend (threads or processes): rows are host
  // measurements, so the deterministic-run extras the sim rows carry
  // (modelled-time identities, seeded reproducibility checks) don't apply.
  bool native() const { return Backend() != BackendKind::kSim; }

  // Seeds a RunSpec with every shared override (platform, service cores,
  // CM, duration, seed) applied over the bench's defaults, so no flag is
  // silently ignored. A bench that sweeps one of these dimensions assigns
  // that field afterwards from the corresponding *Sweep helper.
  RunSpec Spec(uint64_t def_duration_ms, uint64_t def_seed,
               CmKind def_cm = CmKind::kFairCm) const {
    RunSpec spec;
    spec.platform_name = Platform();
    if (opts_.service_cores > 0) {
      spec.service_cores = static_cast<uint32_t>(opts_.service_cores);
    }
    spec.cm = Cm(def_cm);
    spec.duration = Duration(def_duration_ms);
    spec.seed = Seed(def_seed);
    spec.backend = Backend();
    spec.channel = Channel();
    spec.pin_threads = opts_.pin;
    if (opts_.pipeline_depth > 0) {
      spec.pipeline_depth = static_cast<uint32_t>(opts_.pipeline_depth);
    }
    return spec;
  }

  // Pipeline-depth for benches that fix it; --pipeline-depth overrides.
  uint32_t PipelineDepth(uint32_t def = 1) const {
    return opts_.pipeline_depth > 0 ? static_cast<uint32_t>(opts_.pipeline_depth) : def;
  }

  // Host-side iteration count (bench_micro): --smoke divides by 20.
  uint64_t Iterations(uint64_t def) const {
    return opts_.smoke ? (def / 20 == 0 ? 1 : def / 20) : def;
  }

  void Report(BenchRow row) { rows_.push_back(std::move(row)); }
  const std::vector<BenchRow>& rows() const { return rows_; }

 private:
  BenchOptions opts_;
  std::vector<BenchRow> rows_;
};

// Echo round-trip workload shared by the latency benches (fig8a,
// platforms): each application core sends `echoes_per_core` echo messages
// evenly across the service cores, a service core responds immediately.
// Service cores serve until the run drains — a core blocked in Recv with
// no events left simply ends the simulation. Returns the RTT samples
// (microseconds) and the simulated end time.
struct EchoResult {
  LatencySampler rtt;
  SimTime end = 0;
};

inline EchoResult RunEchoWorkload(const PlatformDesc& platform, uint32_t num_cores,
                                  uint32_t num_service, int echoes_per_core, uint64_t seed) {
  SimSystemConfig cfg;
  cfg.platform = platform;
  cfg.num_cores = num_cores;
  cfg.num_service = num_service;
  cfg.shmem_bytes = 1 << 20;
  cfg.seed = seed;
  SimSystem sys(cfg);
  const auto& plan = sys.deployment();
  auto rtt = std::make_shared<LatencySampler>();
  for (uint32_t core : plan.service_cores()) {
    sys.SetCoreMain(core, [](CoreEnv& env) {
      for (;;) {
        Message m = env.Recv();
        Message rsp;
        rsp.type = MsgType::kEchoRsp;
        rsp.w0 = m.w0;
        env.Send(m.src, std::move(rsp));
      }
    });
  }
  for (uint32_t core : plan.app_cores()) {
    sys.SetCoreMain(core, [&plan, rtt, echoes_per_core](CoreEnv& env) {
      for (int i = 0; i < echoes_per_core; ++i) {
        const uint32_t dst = plan.ServiceCore(static_cast<uint32_t>(i) % plan.num_service());
        const SimTime start = env.GlobalNow();
        Message m;
        m.type = MsgType::kEcho;
        env.Send(dst, std::move(m));
        Message rsp = env.Recv();
        TM2C_CHECK(rsp.type == MsgType::kEchoRsp);
        rtt->Add(SimToMicros(env.GlobalNow() - start));
      }
    });
  }
  EchoResult result;
  result.end = sys.Run();
  result.rtt = *rtt;
  return result;
}

// The one bench a binary carries.
struct BenchDef {
  const char* name;         // stable id used in JSON and run_all.sh
  const char* figure;       // paper figure ("4(a)", "ablation", ...)
  const char* description;  // one line, printed and serialized
  void (*fn)(BenchContext&);
  // Whether the bench supports --backend=threads. Benches that drive the
  // simulator engine directly (echo RTT workloads, chaos schedules) cannot;
  // the runner rejects the flag for them instead of mislabelling sim rows
  // as native.
  bool native = false;
  // Whether the bench also supports --backend=processes (forked partition
  // servers over sockets). That backend is dedicated-deployment-only and
  // has no thread-channel dimension, so a native bench that sweeps
  // multitasked deployments or channel kinds stays threads-only.
  bool processes = false;
};

// Registers the binary's bench with the runner in bench_main.cc; call once
// at namespace scope via TM2C_REGISTER_BENCH (sim-only),
// TM2C_REGISTER_BENCH_NATIVE (also runnable on the thread and process
// backends) or TM2C_REGISTER_BENCH_THREADS_ONLY (thread backend, but the
// bench sweeps a dimension the process backend does not have).
bool RegisterBench(const BenchDef& def);

#define TM2C_REGISTER_BENCH(name, figure, desc, fn) \
  [[maybe_unused]] const bool tm2c_bench_registered = \
      ::tm2c::RegisterBench({name, figure, desc, fn, false, false})

#define TM2C_REGISTER_BENCH_NATIVE(name, figure, desc, fn) \
  [[maybe_unused]] const bool tm2c_bench_registered = \
      ::tm2c::RegisterBench({name, figure, desc, fn, true, true})

#define TM2C_REGISTER_BENCH_THREADS_ONLY(name, figure, desc, fn) \
  [[maybe_unused]] const bool tm2c_bench_registered = \
      ::tm2c::RegisterBench({name, figure, desc, fn, true, false})

}  // namespace tm2c

#endif  // TM2C_BENCH_BENCH_UTIL_H_

// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary follows the same shape: build a TmSystem from a
// RunSpec, create the application structure, install per-core operation
// loops that run until the simulated horizon, then summarize throughput
// (ops/ms) and commit rate — the units the paper's figures use.
#ifndef TM2C_BENCH_BENCH_UTIL_H_
#define TM2C_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>

#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/tm/tm_system.h"

namespace tm2c {

struct RunSpec {
  std::string platform_name = "scc";
  uint32_t total_cores = 48;
  // Service cores for the dedicated deployment; by default half, the
  // allocation Section 5.3 justifies.
  uint32_t service_cores = 0;  // 0 => total/2
  DeployStrategy strategy = DeployStrategy::kDedicated;
  CmKind cm = CmKind::kFairCm;
  TxMode tx_mode = TxMode::kNormal;
  WriteAcquire write_acquire = WriteAcquire::kLazy;
  bool batch_write_locks = true;
  uint64_t shmem_bytes = 32ull << 20;
  uint64_t seed = 1;
  SimTime duration = MillisToSim(50);
};

inline TmSystemConfig MakeConfig(const RunSpec& spec) {
  TmSystemConfig cfg;
  cfg.sim.platform = PlatformByName(spec.platform_name);
  cfg.sim.num_cores = spec.total_cores;
  cfg.sim.num_service =
      spec.strategy == DeployStrategy::kMultitasked
          ? 0
          : (spec.service_cores != 0 ? spec.service_cores
                                     : (spec.total_cores >= 2 ? spec.total_cores / 2 : 1));
  cfg.sim.strategy = spec.strategy;
  cfg.sim.shmem_bytes = spec.shmem_bytes;
  cfg.sim.seed = spec.seed;
  cfg.tm.cm = spec.cm;
  cfg.tm.tx_mode = spec.tx_mode;
  cfg.tm.write_acquire = spec.write_acquire;
  cfg.tm.batch_write_locks = spec.batch_write_locks;
  return cfg;
}

// One benchmark operation; invoked repeatedly until the horizon.
using OpFn = std::function<void(CoreEnv&, TxRuntime&, Rng&)>;

// Installs the same operation loop on every application core. Core `i`
// draws from an Rng seeded with (seed, i).
inline void InstallLoopBodies(TmSystem& sys, SimTime horizon, uint64_t seed, OpFn op) {
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [op, horizon, seed, i](CoreEnv& env, TxRuntime& rt) {
      Rng rng(seed * 7919 + i);
      while (env.GlobalNow() < horizon) {
        op(env, rt, rng);
      }
    });
  }
}

// Like InstallLoopBodies but application core 0 runs `special` instead
// (Figure 5(c)'s one-balance-core workloads).
inline void InstallLoopBodiesWithSpecialCore(TmSystem& sys, SimTime horizon, uint64_t seed,
                                             OpFn special, OpFn op) {
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    OpFn body = (i == 0) ? special : op;
    sys.SetAppBody(i, [body, horizon, seed, i](CoreEnv& env, TxRuntime& rt) {
      Rng rng(seed * 7919 + i);
      while (env.GlobalNow() < horizon) {
        body(env, rt, rng);
      }
    });
  }
}

struct ThroughputResult {
  double ops_per_ms = 0.0;
  double commit_rate = 1.0;
  uint64_t ops = 0;
  TxStats stats;
};

// Transactional throughput: every committed transaction is one operation.
inline ThroughputResult Summarize(const TmSystem& sys, SimTime duration) {
  ThroughputResult result;
  result.stats = sys.MergedStats();
  result.ops = result.stats.commits;
  result.ops_per_ms = static_cast<double>(result.ops) / SimToMillis(duration);
  result.commit_rate = result.stats.CommitRate();
  return result;
}

// Non-transactional (lock-based or sequential) throughput: the bodies count
// operations themselves into `counter`.
inline double OpsPerMs(uint64_t ops, SimTime duration) {
  return static_cast<double>(ops) / SimToMillis(duration);
}

}  // namespace tm2c

#endif  // TM2C_BENCH_BENCH_UTIL_H_

// Micro-benchmarks of the host-side building blocks: lock-table
// operations, the contention managers' decision path, the CoreSet, the
// allocator, the event engine and the RNG. These measure real CPU cost,
// not simulated time — they bound how fast the simulator itself can run
// experiments.
//
// Each micro-op runs in timed batches on the host clock; a sample is the
// per-op time of one batch, so the reported percentiles are host-side
// latencies in microseconds and throughput is host ops/ms. Nothing can
// abort here, so commit_rate is 1 by construction.
//
// Under --backend=threads the bench instead measures the native transport
// itself: the same tiny-transaction workload (per-core counter increments,
// conflict-free, so every operation is pure protocol messaging) run once
// over the v1 mutex-and-condvar mailboxes and once over the lock-free SPSC
// rings, on real OS threads with wall-clock timing. The spsc row carries
// the channel speedup as extra `speedup_vs_mutex`.
#include <chrono>

#include "bench/bench_util.h"
#include "src/cm/contention_manager.h"
#include "src/common/core_set.h"
#include "src/common/rng.h"
#include "src/dslock/lock_table.h"
#include "src/noc/topology.h"
#include "src/shmem/allocator.h"
#include "src/sim/engine.h"

namespace tm2c {
namespace {

TxInfo Info(uint32_t core, uint64_t metric) {
  TxInfo info;
  info.core = core;
  info.epoch = (static_cast<uint64_t>(core) << 32) | 1;
  info.metric = metric;
  return info;
}

double HostNowUs() {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
  return static_cast<double>(ns) / 1000.0;
}

// Runs `op` in `batches` timed batches of `batch` calls and reports one
// standard row: each latency sample is one batch's mean per-op time.
template <typename Op>
void Measure(BenchContext& ctx, const char* name, uint64_t batch, uint64_t batches, Op op) {
  // Warm up caches and branch predictors outside the timed region.
  for (uint64_t i = 0; i < batch; ++i) {
    op();
  }
  LatencySampler lat;
  const uint64_t rounds = ctx.Iterations(batches);
  const double start_us = HostNowUs();
  for (uint64_t b = 0; b < rounds; ++b) {
    const double t0 = HostNowUs();
    for (uint64_t i = 0; i < batch; ++i) {
      op();
    }
    lat.Add((HostNowUs() - t0) / static_cast<double>(batch));
  }
  const double elapsed_ms = (HostNowUs() - start_us) / 1000.0;
  BenchRow row;
  row.Param("micro", name);
  row.ops_per_ms =
      elapsed_ms > 0.0 ? static_cast<double>(rounds * batch) / elapsed_ms : 0.0;
  row.commits = rounds * batch;
  row.latency = SummarizeLatency(lat);
  ctx.Report(row);
}

// Native transport comparison (--backend=threads): commit throughput of
// the TM protocol over mutex mailboxes vs SPSC rings on this host. The
// workload is message-bound by construction — single-word read-modify-write
// transactions on per-core counters, no contention, no synthetic compute —
// so the row ratio is the channel speedup the v2 backend exists for.
void RunNativeChannels(BenchContext& ctx) {
  const uint32_t cores = ctx.Cores(4);
  const uint32_t service = ctx.ServiceCores(cores >= 2 ? cores / 2 : 1);
  double mutex_ops_per_ms = 0.0;
  for (const ChannelKind channel : {ChannelKind::kMutexMailbox, ChannelKind::kSpscRing}) {
    RunSpec spec = ctx.Spec(200, 21, CmKind::kBackoffRetry);
    spec.total_cores = cores;
    spec.service_cores = service;
    spec.backend = BackendKind::kThreads;
    spec.channel = channel;  // the sweep dimension; overrides --channel
    TmSystem sys(MakeConfig(spec));
    const uint64_t base = sys.allocator().AllocGlobal(uint64_t{cores} * kCacheLineBytes);
    LatencySampler lat;
    InstallLoopBodies(sys, spec.duration, spec.seed,
                      [base](CoreEnv& env, TxRuntime& rt, Rng&) {
                        const uint64_t addr = base + env.core_id() * kCacheLineBytes;
                        rt.Execute([addr](Tx& tx) { tx.Write(addr, tx.Read(addr) + 1); });
                      },
                      &lat);
    sys.Run();
    BenchRow row;
    row.Param("micro", "tm_counter")
        .Param("channel", ChannelKindName(channel))
        .Param("cores", uint64_t{cores})
        .Param("service_cores", uint64_t{service})
        .Tx(sys, spec.duration, lat);
    if (channel == ChannelKind::kMutexMailbox) {
      mutex_ops_per_ms = row.ops_per_ms;
    } else if (mutex_ops_per_ms > 0.0) {
      row.Extra("speedup_vs_mutex", row.ops_per_ms / mutex_ops_per_ms);
    }
    ctx.Report(row);
  }
}

void Run(BenchContext& ctx) {
  if (ctx.native()) {
    RunNativeChannels(ctx);
    return;
  }
  {
    LockTable table;
    const auto cm = MakeContentionManager(CmKind::kFairCm);
    uint64_t addr = 0;
    Measure(ctx, "lock_table_read_acquire_release", 64, 2000, [&]() {
      table.ReadLock(Info(1, 0), addr, *cm);
      table.ReleaseRead(1, addr);
      addr = (addr + 8) & 0xffff;
    });
  }
  {
    LockTable table;
    const auto cm = MakeContentionManager(CmKind::kFairCm);
    // Ten readers on the contested word; the writer must beat all of them.
    for (uint32_t r = 2; r < 12; ++r) {
      table.ReadLock(Info(r, 100), 0x100, *cm);
    }
    volatile int refused = 0;
    Measure(ctx, "lock_table_write_conflict", 64, 2000, [&]() {
      refused = static_cast<int>(table.WriteLock(Info(1, 1000), 0x100, *cm).refused);
    });
  }
  {
    const auto cm = MakeContentionManager(CmKind::kFairCm);
    std::vector<TxInfo> holders;
    for (uint32_t r = 0; r < 10; ++r) {
      holders.push_back(Info(r + 2, 50 + r));
    }
    volatile int decision = 0;
    Measure(ctx, "cm_decide_ten_holders", 64, 2000, [&]() {
      decision = static_cast<int>(cm->Decide(Info(1, 10), holders, ConflictKind::kWriteAfterRead));
    });
  }
  {
    CoreSet set;
    volatile uint64_t sink = 0;
    Measure(ctx, "core_set_insert_foreach_clear", 8, 2000, [&]() {
      for (uint32_t c = 0; c < 48; c += 3) {
        set.Insert(c);
      }
      uint64_t sum = 0;
      set.ForEach([&sum](uint32_t c) { sum += c; });
      sink = sink + sum;
      set.Clear();
    });
  }
  {
    SharedMemory mem(8 << 20);
    Topology topo(MakeSccPlatform(0));
    ShmAllocator alloc(&mem, topo);
    Measure(ctx, "allocator_alloc_free", 64, 2000, [&]() {
      const uint64_t a = alloc.Alloc(64, 7);
      const uint64_t b = alloc.Alloc(128, 23);
      alloc.Free(a);
      alloc.Free(b);
    });
  }
  {
    volatile uint64_t sink = 0;
    // One op = a 1000-event cascade through a fresh engine.
    Measure(ctx, "engine_1000_event_cascade", 1, 300, [&]() {
      SimEngine engine;
      int remaining = 1000;
      std::function<void()> tick = [&engine, &remaining, &tick]() {
        if (--remaining > 0) {
          engine.ScheduleAfter(10, tick);
        }
      };
      engine.ScheduleAfter(10, tick);
      engine.Run();
      sink = sink + engine.events_executed();
    });
  }
  {
    Rng rng(1);
    volatile uint64_t sink = 0;
    Measure(ctx, "rng_next", 1024, 2000, [&]() { sink = sink + rng.Next(); });
  }
}

TM2C_REGISTER_BENCH_THREADS_ONLY(  // sweeps channel kinds: a thread-transport dimension
    "micro", "host",
    "host-side micro costs; with --backend=threads, mutex-vs-spsc channel throughput", &Run);

}  // namespace
}  // namespace tm2c

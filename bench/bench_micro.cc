// Micro-benchmarks (google-benchmark) of the host-side building blocks:
// lock-table operations, the contention managers' decision path, the
// CoreSet, the allocator and the event engine. These measure real CPU
// cost, not simulated time — they bound how fast the simulator itself can
// run experiments.
#include <benchmark/benchmark.h>

#include "src/cm/contention_manager.h"
#include "src/common/core_set.h"
#include "src/common/rng.h"
#include "src/dslock/lock_table.h"
#include "src/noc/topology.h"
#include "src/shmem/allocator.h"
#include "src/sim/engine.h"

namespace tm2c {
namespace {

TxInfo Info(uint32_t core, uint64_t metric) {
  TxInfo info;
  info.core = core;
  info.epoch = (static_cast<uint64_t>(core) << 32) | 1;
  info.metric = metric;
  return info;
}

void BM_LockTableReadAcquireRelease(benchmark::State& state) {
  LockTable table;
  const auto cm = MakeContentionManager(CmKind::kFairCm);
  uint64_t addr = 0;
  for (auto _ : state) {
    table.ReadLock(Info(1, 0), addr, *cm);
    table.ReleaseRead(1, addr);
    addr = (addr + 8) & 0xffff;
  }
}
BENCHMARK(BM_LockTableReadAcquireRelease);

void BM_LockTableWriteConflictPath(benchmark::State& state) {
  LockTable table;
  const auto cm = MakeContentionManager(CmKind::kFairCm);
  // Ten readers on the contested word; the writer must beat all of them.
  for (uint32_t r = 2; r < 12; ++r) {
    table.ReadLock(Info(r, 100), 0x100, *cm);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.WriteLock(Info(1, 1000), 0x100, *cm));  // refused
  }
}
BENCHMARK(BM_LockTableWriteConflictPath);

void BM_CmDecideTenHolders(benchmark::State& state) {
  const auto cm = MakeContentionManager(CmKind::kFairCm);
  std::vector<TxInfo> holders;
  for (uint32_t r = 0; r < 10; ++r) {
    holders.push_back(Info(r + 2, 50 + r));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm->Decide(Info(1, 10), holders, ConflictKind::kWriteAfterRead));
  }
}
BENCHMARK(BM_CmDecideTenHolders);

void BM_CoreSetInsertEraseForEach(benchmark::State& state) {
  CoreSet set;
  for (auto _ : state) {
    for (uint32_t c = 0; c < 48; c += 3) {
      set.Insert(c);
    }
    uint64_t sum = 0;
    set.ForEach([&sum](uint32_t c) { sum += c; });
    benchmark::DoNotOptimize(sum);
    set.Clear();
  }
}
BENCHMARK(BM_CoreSetInsertEraseForEach);

void BM_AllocatorAllocFree(benchmark::State& state) {
  SharedMemory mem(8 << 20);
  Topology topo(MakeSccPlatform(0));
  ShmAllocator alloc(&mem, topo);
  for (auto _ : state) {
    const uint64_t a = alloc.Alloc(64, 7);
    const uint64_t b = alloc.Alloc(128, 23);
    alloc.Free(a);
    alloc.Free(b);
  }
}
BENCHMARK(BM_AllocatorAllocFree);

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    SimEngine engine;
    int remaining = 1000;
    std::function<void()> tick = [&engine, &remaining, &tick]() {
      if (--remaining > 0) {
        engine.ScheduleAfter(10, tick);
      }
    };
    engine.ScheduleAfter(10, tick);
    engine.Run();
    benchmark::DoNotOptimize(engine.events_executed());
  }
}
BENCHMARK(BM_EngineEventThroughput);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

}  // namespace
}  // namespace tm2c

BENCHMARK_MAIN();

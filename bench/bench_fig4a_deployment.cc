// Figure 4(a): multitasked vs dedicated deployment on the hash table.
//
// Load factors 2 and 8, 20% updates, 2..48 cores. The paper's result: the
// dedicated deployment outperforms multitasking because a request to a core
// busy with application code must wait for it to yield (Figure 2).
#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint32_t kBuckets = 64;
constexpr uint32_t kUpdatePct = 20;

double RunSeed(DeployStrategy strategy, uint32_t cores, uint32_t load_factor, uint64_t seed) {
  RunSpec spec;
  spec.total_cores = cores;
  spec.strategy = strategy;
  spec.duration = MillisToSim(25);
  spec.seed = seed;
  TmSystem sys(MakeConfig(spec));
  ShmHashTable table(sys.sim().allocator(), sys.sim().shmem(), kBuckets);
  Rng fill_rng(11);
  const uint64_t key_range =
      FillHashTable(table, sys.sim().allocator(), fill_rng, uint64_t{kBuckets} * load_factor);
  InstallLoopBodies(sys, spec.duration, spec.seed, HashTableMix(&table, kUpdatePct, key_range));
  sys.Run(spec.duration);
  return Summarize(sys, spec.duration).ops_per_ms;
}

// Averaged over seeds: the multitasked deployment is prone to metastable
// congestion collapse (a committing core serves requests while holding its
// write locks, stretching hold times and triggering retry storms); single
// snapshots are bimodal, see EXPERIMENTS.md.
double RunOne(DeployStrategy strategy, uint32_t cores, uint32_t load_factor) {
  double total = 0.0;
  for (uint64_t seed : {5u, 6u, 7u}) {
    total += RunSeed(strategy, cores, load_factor, seed);
  }
  return total / 3.0;
}

void Main() {
  TextTable table({"#cores", "Multi, 2", "Multi, 8", "Ded, 2", "Ded, 8"});
  for (uint32_t cores : {2u, 4u, 8u, 16u, 32u, 48u}) {
    table.AddRow({std::to_string(cores),
                  TextTable::Num(RunOne(DeployStrategy::kMultitasked, cores, 2), 1),
                  TextTable::Num(RunOne(DeployStrategy::kMultitasked, cores, 8), 1),
                  TextTable::Num(RunOne(DeployStrategy::kDedicated, cores, 2), 1),
                  TextTable::Num(RunOne(DeployStrategy::kDedicated, cores, 8), 1)});
  }
  table.Print("Figure 4(a): hash table throughput (ops/ms), multitasked vs dedicated");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

// Figure 4(a): multitasked vs dedicated deployment on the hash table.
//
// Load factors 2 and 8, 20% updates, 2..48 cores. The paper's result: the
// dedicated deployment outperforms multitasking because a request to a core
// busy with application code must wait for it to yield (Figure 2).
#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint32_t kBuckets = 64;
constexpr uint32_t kUpdatePct = 20;

// Averaged over seeds: the multitasked deployment is prone to metastable
// congestion collapse (a committing core serves requests while holding its
// write locks, stretching hold times and triggering retry storms); single
// snapshots are bimodal, see EXPERIMENTS.md.
BenchRow RunOne(BenchContext& ctx, DeployStrategy strategy, uint32_t cores,
                uint32_t load_factor) {
  const std::vector<uint64_t> seeds = ctx.SeedSweep({5, 6, 7});
  TxStats stats;
  LatencySampler lat;
  double total_tput = 0.0;
  for (const uint64_t seed : seeds) {
    RunSpec spec = ctx.Spec(25, seed);
    spec.total_cores = cores;
    spec.strategy = strategy;
    TmSystem sys(MakeConfig(spec));
    ShmHashTable table(sys.allocator(), sys.shmem(), kBuckets);
    Rng fill_rng(11);
    const uint64_t key_range =
        FillHashTable(table, sys.allocator(), fill_rng, uint64_t{kBuckets} * load_factor);
    LatencySampler run_lat;
    InstallLoopBodies(sys, spec.duration, spec.seed, HashTableMix(&table, kUpdatePct, key_range),
                      &run_lat);
    sys.Run(spec.duration);
    const ThroughputResult r = Summarize(sys, spec.duration);
    total_tput += r.ops_per_ms;
    stats.Merge(r.stats);
    lat.Merge(run_lat);
  }
  BenchRow row;
  row.Param("strategy", strategy == DeployStrategy::kMultitasked ? "multitasked" : "dedicated")
      .Param("load", uint64_t{load_factor})
      .Param("cores", uint64_t{cores})
      .TxMerged(stats, total_tput / static_cast<double>(seeds.size()), lat);
  return row;
}

void Run(BenchContext& ctx) {
  for (const uint32_t cores : ctx.CoreSweep({2, 4, 8, 16, 32, 48})) {
    for (const DeployStrategy strategy :
         {DeployStrategy::kMultitasked, DeployStrategy::kDedicated}) {
      for (const uint32_t load : ctx.Sweep<uint32_t>({2, 8})) {
        ctx.Report(RunOne(ctx, strategy, cores, load));
      }
    }
  }
}

TM2C_REGISTER_BENCH("fig4a_deployment", "4(a)",
                    "hash table throughput (ops/ms), multitasked vs dedicated deployment", &Run);

}  // namespace
}  // namespace tm2c

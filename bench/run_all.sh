#!/usr/bin/env bash
# Runs every bench binary and merges their per-binary JSON documents into
# one BENCH_results.json so the perf trajectory can be tracked PR-over-PR.
#
#   bench/run_all.sh [--smoke] [--with-native] [--with-processes]
#                    [--native-cores N] [--build-dir DIR] [--out FILE]
#                    [extra bench flags...]
#
#   --smoke         forward --smoke to every bench (CI-sized sweeps)
#   --with-native   additionally run the native-capable benches with
#                   --backend=threads (real OS threads, wall-clock rows);
#                   both row kinds land side by side in the merged file
#   --with-processes additionally run the processes-capable benches with
#                   --backend=processes (forked partition servers over Unix
#                   sockets, wall-clock rows); their socket/WAL scratch dirs
#                   land in this script's temp dir and vanish with it
#   --native-cores  pin --cores for the native and processes passes only
#                   (both spawn one OS thread or process per core — size
#                   them to the host)
#   --build-dir     where the bench binaries live      (default: build)
#   --out           merged results file                (default: BENCH_results.json)
#
# Any remaining arguments are forwarded verbatim to every bench binary
# (e.g. --cores=8 --duration-ms=2).
set -euo pipefail

BENCHES=(
  bench_ablation_batching
  bench_ablation_durability
  bench_ablation_pipeline
  bench_ablation_skew
  bench_elastic
  bench_fig4a_deployment
  bench_fig4b_speedup
  bench_fig4c_eager_lazy
  bench_fig5a_cm_effect
  bench_fig5b_service_cores
  bench_fig5c_cm_compare
  bench_fig5d_locks
  bench_fig6_mapreduce
  bench_fig7_elastic
  bench_fig8_port
  bench_fig8a_latency
  bench_micro
  bench_platforms
  bench_tpcc
  bench_ycsb
)

build_dir=build
out=BENCH_results.json
smoke=""
with_native=""
with_processes=""
native_cores=""
extra=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke="--smoke"; shift ;;
    --with-native) with_native=1; shift ;;
    --with-processes) with_processes=1; shift ;;
    --native-cores) native_cores="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --out) out="$2"; shift 2 ;;
    *) extra+=("$1"); shift ;;
  esac
done

script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
repo_root="$(dirname "$script_dir")"
json_dir="$(mktemp -d)"
trap 'rm -rf "$json_dir"' EXIT

for bench in "${BENCHES[@]}"; do
  bin="$build_dir/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (run: cmake -B $build_dir -S . && cmake --build $build_dir -j)" >&2
    exit 1
  fi
  echo "=== $bench ==="
  "$bin" $smoke --json "$json_dir/$bench.json" ${extra[@]+"${extra[@]}"}
done

if [[ -n "$with_native" ]]; then
  # Each binary knows whether it was registered with
  # TM2C_REGISTER_BENCH_NATIVE; probe instead of maintaining a second list.
  for bench in "${BENCHES[@]}"; do
    if ! "$build_dir/$bench" --native-capable; then
      continue
    fi
    echo "=== $bench (native) ==="
    # --native-cores comes last so it overrides a forwarded --cores.
    "$build_dir/$bench" $smoke --backend=threads \
      --json "$json_dir/$bench.native.json" ${extra[@]+"${extra[@]}"} \
      ${native_cores:+--cores "$native_cores"}
  done
fi

if [[ -n "$with_processes" ]]; then
  for bench in "${BENCHES[@]}"; do
    if ! "$build_dir/$bench" --processes-capable; then
      continue
    fi
    echo "=== $bench (processes) ==="
    # TMPDIR points the per-system socket/WAL run dirs into our scratch
    # space so the EXIT trap cleans them up with the JSON fragments.
    TMPDIR="$json_dir" "$build_dir/$bench" $smoke --backend=processes \
      --json "$json_dir/$bench.processes.json" ${extra[@]+"${extra[@]}"} \
      ${native_cores:+--cores "$native_cores"}
  done
fi

python3 "$repo_root/tools/bench_json.py" merge \
  --out "$out" $( [[ -n "$smoke" ]] && echo --smoke ) "$json_dir"/*.json
python3 "$repo_root/tools/bench_json.py" validate "$out"
echo "wrote $out"

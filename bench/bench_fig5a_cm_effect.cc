// Figure 5(a): the bank application with and without contention management.
//
// 1024 accounts, every core runs 20% balance / 80% transfer. Without a CM
// the balance scans (which read-lock every account) livelock against the
// transfers and throughput collapses; any of the four CMs avoids that.
#include "bench/workloads.h"

namespace tm2c {
namespace {

void Run(BenchContext& ctx) {
  const std::vector<CmKind> kinds = ctx.CmSweep({CmKind::kWholly, CmKind::kOffsetGreedy,
                                                 CmKind::kFairCm, CmKind::kBackoffRetry,
                                                 CmKind::kNone});
  for (const uint32_t cores : ctx.CoreSweep({2, 4, 8, 16, 32, 48})) {
    for (const CmKind cm : kinds) {
      RunSpec spec = ctx.Spec(40, 31);
      spec.total_cores = cores;
      spec.cm = cm;
      TmSystem sys(MakeConfig(spec));
      Bank bank(sys.allocator(), sys.shmem(), 1024, 100);
      LatencySampler lat;
      InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, /*balance_pct=*/20), &lat);
      sys.Run(spec.duration);
      BenchRow row;
      row.Param("cm", CmKindName(cm)).Param("cores", uint64_t{cores}).Tx(sys, spec.duration, lat);
      ctx.Report(row);
    }
  }
}

TM2C_REGISTER_BENCH("fig5a_cm_effect", "5(a)",
                    "bank 20% balance / 80% transfer, with and without contention management",
                    &Run);

}  // namespace
}  // namespace tm2c

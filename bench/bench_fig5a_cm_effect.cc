// Figure 5(a): the bank application with and without contention management.
//
// 1024 accounts, every core runs 20% balance / 80% transfer. Without a CM
// the balance scans (which read-lock every account) livelock against the
// transfers and throughput collapses; any of the four CMs avoids that.
#include "bench/workloads.h"

namespace tm2c {
namespace {

struct Point {
  double throughput;
  double commit_rate;
};

Point RunOne(CmKind cm, uint32_t cores) {
  RunSpec spec;
  spec.total_cores = cores;
  spec.cm = cm;
  spec.duration = MillisToSim(40);
  spec.seed = 31;
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.sim().allocator(), sys.sim().shmem(), 1024, 100);
  InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, /*balance_pct=*/20));
  sys.Run(spec.duration);
  const ThroughputResult r = Summarize(sys, spec.duration);
  return Point{r.ops_per_ms, 100.0 * r.commit_rate};
}

void Main() {
  const CmKind kinds[] = {CmKind::kWholly, CmKind::kOffsetGreedy, CmKind::kFairCm,
                          CmKind::kBackoffRetry, CmKind::kNone};
  TextTable tput({"#cores", "Wholly", "Offset-Greedy", "FairCM", "Back-off-Retry", "No CM"});
  TextTable rate({"#cores", "Wholly", "Offset-Greedy", "FairCM", "Back-off-Retry", "No CM"});
  for (uint32_t cores : {2u, 4u, 8u, 16u, 32u, 48u}) {
    std::vector<std::string> trow{std::to_string(cores)};
    std::vector<std::string> rrow{std::to_string(cores)};
    for (CmKind cm : kinds) {
      const Point p = RunOne(cm, cores);
      trow.push_back(TextTable::Num(p.throughput, 2));
      rrow.push_back(TextTable::Num(p.commit_rate, 1));
    }
    tput.AddRow(std::move(trow));
    rate.AddRow(std::move(rrow));
  }
  tput.Print("Figure 5(a) left: bank 20% balance / 80% transfer, throughput (ops/ms)");
  rate.Print("Figure 5(a) right: commit rate (%)");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

// Ablation: pipelined acquisition and the owner-local fast path.
//
// The lockstep protocol (pipeline_depth = 1) waits for every kBatchAcquire
// reply before issuing the next batch, so a transaction touching several
// partitions pays one full round trip per per-node chunk, serially. With
// pipeline_depth > 1 the runtime keeps up to that many batches in flight
// and matches the interleaved replies by request id; the owner-local fast
// path (multitasked deployments) additionally serves own-partition
// acquisitions as direct lock-table calls, skipping the message layer
// entirely.
//
// The workload is a share-little YCSB-C-style read mix on the partitioned
// KV store under the multitasked deployment: 80% of operations Get a key
// from the core's own partition (the layout the fast path exists for), 20%
// scan a 32-word shared directory region that stripes across every
// partition (the cross-partition shape pipelining exists for), issued as
// Prefetch + ReadMany. The sweep is pipeline_depth {1, 2, 4, 8} x
// fast path {off, on}; each row reports local/remote acquire counts and
// the per-stripe mean acquire latency next to the standard metrics.
//
// Default (sim) runs assert the curves this ablation exists to measure:
// pipelining must not cost throughput (deepest depth >= lockstep, per fast
// path setting), and at depth 1 the fast path must turn the acquisition
// mix mostly local and strictly cut the mean acquire latency.
#include <map>

#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint32_t kDepthSweep[] = {1, 2, 4, 8};
constexpr uint64_t kDirWords = 1 << 14;  // shared directory, spans all stripes
constexpr uint64_t kScanWords = 32;

struct SweepPoint {
  double ops_per_ms = 0.0;
  double mean_acquire_us = 0.0;
  uint64_t local_acquires = 0;
  uint64_t remote_acquires = 0;
};

BenchRow RunPoint(BenchContext& ctx, uint32_t depth, bool fast_path, SweepPoint* point) {
  RunSpec spec = ctx.Spec(25, 13);
  spec.total_cores = ctx.Cores(16);
  spec.strategy = DeployStrategy::kMultitasked;
  spec.pipeline_depth = depth;
  spec.local_fast_path = fast_path;
  TmSystem sys(MakeConfig(spec));

  const uint64_t keys = ctx.smoke() ? 2048 : 8192;
  const uint32_t parts = sys.deployment().num_service();
  KvStoreConfig kcfg;
  kcfg.value_words = 4;
  kcfg.buckets_per_partition =
      static_cast<uint32_t>(std::max<uint64_t>(16, keys / (uint64_t{parts} * 4)));
  kcfg.capacity_per_partition = static_cast<uint32_t>(2 * keys / parts + 64);
  KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), kcfg);
  FillStore(store, keys);

  // Share-little layout: each core's "own" keys live in the partition it
  // serves (multitasked: partition index == core id).
  auto keys_by_part = std::make_shared<std::vector<std::vector<uint64_t>>>(parts);
  for (uint64_t key = 1; key <= keys; ++key) {
    (*keys_by_part)[store.PartitionOfKey(key)].push_back(key);
  }

  const uint64_t dir_base = sys.allocator().AllocGlobal(kDirWords * kWordBytes);
  LatencySampler lat;
  InstallLoopBodies(
      sys, spec.duration, spec.seed,
      [&store, keys_by_part, parts, dir_base](CoreEnv& env, TxRuntime& rt, Rng& rng) {
        if (rng.NextBelow(10) < 8) {
          // Own-partition point read: the fast path's bread and butter.
          const auto& own = (*keys_by_part)[env.core_id() % parts];
          store.Get(rt, own[rng.NextBelow(own.size())], nullptr);
          return;
        }
        // Cross-partition directory scan: a strided 32-word ReadMany whose
        // stripes group into many small per-node batches — the shape
        // pipelining overlaps. The prefetch announces the whole set up
        // front so depth > 1 keeps several nodes' round trips in flight.
        const uint64_t start = rng.NextBelow(kDirWords);
        std::vector<uint64_t> addrs;
        addrs.reserve(kScanWords);
        for (uint64_t w = 0; w < kScanWords; ++w) {
          addrs.push_back(dir_base + ((start + w * 257) % kDirWords) * kWordBytes);
        }
        rt.Execute([&addrs](Tx& tx) {
          tx.Prefetch(addrs);
          (void)tx.ReadMany(addrs);
        });
      },
      &lat);
  sys.Run(spec.duration);

  const ThroughputResult r = Summarize(sys, spec.duration);
  BenchRow row;
  row.Param("workload", "share-little-ycsbc")
      .Param("platform", spec.platform_name)
      .Param("cores", uint64_t{spec.total_cores})
      .Param("pipeline_depth", uint64_t{depth})
      .Param("fast_path", fast_path ? "on" : "off")
      .TxMerged(r.stats, r.ops_per_ms, lat);
  point->ops_per_ms = r.ops_per_ms;
  point->local_acquires = r.stats.local_acquires;
  point->remote_acquires = r.stats.remote_acquires;
  row.Extra("local_acquires", static_cast<double>(r.stats.local_acquires));
  row.Extra("remote_acquires", static_cast<double>(r.stats.remote_acquires));
  if (r.stats.lock_acquires > 0) {
    point->mean_acquire_us =
        SimToMicros(r.stats.acquire_time) / static_cast<double>(r.stats.lock_acquires);
    row.Extra("mean_acquire_us", point->mean_acquire_us);
  }
  if (r.stats.commits > 0) {
    row.Extra("msgs_per_op", static_cast<double>(r.stats.messages_sent) /
                                 static_cast<double>(r.stats.commits));
  }
  return row;
}

void Run(BenchContext& ctx) {
  // Self-asserts arm only on default sim runs: overridden shapes and noisy
  // native wall clocks can legitimately bend the curves (see
  // bench_ablation_batching.cc for the full rationale).
  const BenchOptions& o = ctx.opts();
  const bool assert_curve = o.cores == 0 && o.service_cores == 0 && o.duration_ms == 0.0 &&
                            o.seed == 0 && o.cm.empty() && o.pipeline_depth == 0 &&
                            !ctx.native();

  std::vector<uint32_t> depths(std::begin(kDepthSweep), std::end(kDepthSweep));
  if (o.pipeline_depth > 0) {
    depths = {static_cast<uint32_t>(o.pipeline_depth)};
  }

  std::map<std::pair<bool, uint32_t>, SweepPoint> matrix;
  for (const bool fast_path : {false, true}) {
    for (const uint32_t depth : depths) {
      SweepPoint point;
      ctx.Report(RunPoint(ctx, depth, fast_path, &point));
      matrix[{fast_path, depth}] = point;
    }
  }
  if (!assert_curve) {
    return;
  }
  for (const bool fast_path : {false, true}) {
    // Pipelining must never cost throughput against the lockstep baseline.
    TM2C_CHECK_MSG(
        matrix.at({fast_path, 8}).ops_per_ms >= matrix.at({fast_path, 1}).ops_per_ms,
        "pipelined throughput fell below the lockstep baseline");
  }
  // The fast path's acceptance curve: on the share-little layout most
  // acquisitions are served locally, and skipping the message layer must
  // strictly cut the mean per-stripe acquire latency.
  const SweepPoint& off = matrix.at({false, 1});
  const SweepPoint& on = matrix.at({true, 1});
  TM2C_CHECK_MSG(off.local_acquires == 0, "fast path off but local acquisitions recorded");
  TM2C_CHECK_MSG(on.local_acquires > on.remote_acquires,
                 "share-little layout did not turn the acquisition mix local");
  TM2C_CHECK_MSG(on.mean_acquire_us < off.mean_acquire_us,
                 "owner-local fast path did not cut the mean acquire latency");
}

TM2C_REGISTER_BENCH_THREADS_ONLY(  // sweeps multitasked deployments: dedicated-only process backend
    "ablation_pipeline", "ablation",
    "pipelined acquisition depth x owner-local fast path on a share-little KV mix", &Run);

}  // namespace
}  // namespace tm2c

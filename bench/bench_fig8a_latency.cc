// Figure 8(a): round-trip message latency vs core count, on the SCC
// (setting 0), SCC800 (setting 1) and the Opteron-style multi-core.
//
// Methodology as in Section 7.1: half the cores are dedicated service
// cores, each application core sends echo messages evenly across all
// service cores, a service core responds immediately. Expected: ~5.1 us at
// 2 cores and ~12.4 us at 48 on the SCC, scc800 fastest at scale, the
// Opteron in between. One echo round trip is the "operation", so the
// latency percentiles are RTTs and throughput is echoes/ms.
#include "bench/bench_util.h"

namespace tm2c {
namespace {

constexpr int kEchoesPerCore = 300;

BenchRow RunOne(BenchContext& ctx, const std::string& platform, uint32_t cores) {
  const int echoes = ctx.smoke() ? kEchoesPerCore / 10 : kEchoesPerCore;
  const EchoResult echo = RunEchoWorkload(PlatformByName(platform), cores,
                                          ctx.ServiceCores(cores / 2), echoes, ctx.Seed(3));
  BenchRow row;
  row.Param("platform", platform).Param("cores", uint64_t{cores});
  row.Ops(echo.rtt.count(), echo.end, echo.rtt);
  row.Extra("mean_rtt_us", echo.rtt.mean());
  return row;
}

void Run(BenchContext& ctx) {
  const std::vector<std::string> platforms = ctx.PlatformSweep({"scc", "scc800", "opteron"});
  for (const uint32_t cores : ctx.CoreSweep({2, 4, 8, 16, 32, 48})) {
    for (const std::string& platform : platforms) {
      ctx.Report(RunOne(ctx, platform, cores));
    }
  }
}

TM2C_REGISTER_BENCH("fig8a_latency", "8(a)",
                    "round-trip message latency vs core count, per platform model", &Run);

}  // namespace
}  // namespace tm2c

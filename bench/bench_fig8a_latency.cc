// Figure 8(a): round-trip message latency vs core count, on the SCC
// (setting 0), SCC800 (setting 1) and the Opteron-style multi-core.
//
// Methodology as in Section 7.1: half the cores are dedicated service
// cores, each application core sends echo messages evenly across all
// service cores, a service core responds immediately. Expected: ~5.1 us at
// 2 cores and ~12.4 us at 48 on the SCC, scc800 fastest at scale, the
// Opteron in between.
#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/runtime/sim_system.h"

namespace tm2c {
namespace {

constexpr int kEchoesPerCore = 300;

double MeanRttMicros(const std::string& platform, uint32_t cores) {
  SimSystemConfig cfg;
  cfg.platform = PlatformByName(platform);
  cfg.num_cores = cores;
  cfg.num_service = cores / 2;
  cfg.shmem_bytes = 1 << 20;
  cfg.seed = 3;
  SimSystem sys(cfg);
  const auto& plan = sys.deployment();
  auto total_rtt = std::make_shared<StatAccumulator>();
  for (uint32_t core : plan.service_cores()) {
    // Serve until the run drains; a service core blocked in Recv with no
    // events left simply ends the simulation.
    sys.SetCoreMain(core, [](CoreEnv& env) {
      for (;;) {
        Message m = env.Recv();
        Message rsp;
        rsp.type = MsgType::kEchoRsp;
        rsp.w0 = m.w0;
        env.Send(m.src, std::move(rsp));
      }
    });
  }
  for (uint32_t core : plan.app_cores()) {
    sys.SetCoreMain(core, [&plan, total_rtt](CoreEnv& env) {
      for (int i = 0; i < kEchoesPerCore; ++i) {
        const uint32_t dst = plan.ServiceCore(static_cast<uint32_t>(i) % plan.num_service());
        const SimTime start = env.GlobalNow();
        Message m;
        m.type = MsgType::kEcho;
        env.Send(dst, std::move(m));
        Message rsp = env.Recv();
        TM2C_CHECK(rsp.type == MsgType::kEchoRsp);
        total_rtt->Add(SimToMicros(env.GlobalNow() - start));
      }
    });
  }
  sys.Run();
  return total_rtt->mean();
}

void Main() {
  TextTable table({"#cores", "SCC", "SCC800", "Opteron"});
  for (uint32_t cores : {2u, 4u, 8u, 16u, 32u, 48u}) {
    table.AddRow({std::to_string(cores), TextTable::Num(MeanRttMicros("scc", cores), 2),
                  TextTable::Num(MeanRttMicros("scc800", cores), 2),
                  TextTable::Num(MeanRttMicros("opteron", cores), 2)});
  }
  table.Print("Figure 8(a): round-trip message latency (us)");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

// Figure 7: elastic transactions on the sorted linked list.
//
//  (a) speedup of elastic-early over normal transactions — modest (>1 but
//      small), because every early release costs an extra message;
//  (b) speedup of elastic-read over normal — substantial (the paper shows
//      9..17x), because read validation replaces read-lock messages with
//      (cheaper) shared memory reads; it dips past 8 cores from memory
//      congestion.
//
// 20% updates / 80% contains. The paper uses a 2048-element list; we use
// 512 elements to keep simulated transactions (and the bench) short — the
// comparison between modes is unaffected.
#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint64_t kElements = 512;
constexpr uint32_t kUpdatePct = 20;

double RunOne(TxMode mode, uint32_t cores) {
  RunSpec spec;
  spec.total_cores = cores;
  spec.tx_mode = mode;
  spec.duration = MillisToSim(60);
  spec.seed = 81;
  TmSystem sys(MakeConfig(spec));
  ShmSortedList list(sys.sim().allocator(), sys.sim().shmem());
  Rng fill_rng(83);
  const uint64_t key_range = FillList(list, sys.sim().allocator(), fill_rng, kElements);
  InstallLoopBodies(sys, spec.duration, spec.seed, ListMix(&list, kUpdatePct, key_range));
  sys.Run(spec.duration);
  return Summarize(sys, spec.duration).ops_per_ms;
}

void Main() {
  TextTable table({"#cores", "normal (ops/ms)", "elastic-early/normal", "elastic-read/normal"});
  for (uint32_t cores : {2u, 4u, 8u, 16u, 32u, 48u}) {
    const double normal = RunOne(TxMode::kNormal, cores);
    const double early = RunOne(TxMode::kElasticEarly, cores);
    const double readv = RunOne(TxMode::kElasticRead, cores);
    table.AddRow({std::to_string(cores), TextTable::Num(normal, 2),
                  TextTable::Num(early / normal, 2), TextTable::Num(readv / normal, 1)});
  }
  table.Print("Figure 7: linked list, elastic transaction speedups over normal (512 elements)");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

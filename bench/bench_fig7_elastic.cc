// Figure 7: elastic transactions on the sorted linked list.
//
//  (a) speedup of elastic-early over normal transactions — modest (>1 but
//      small), because every early release costs an extra message;
//  (b) speedup of elastic-read over normal — substantial (the paper shows
//      9..17x), because read validation replaces read-lock messages with
//      (cheaper) shared memory reads; it dips past 8 cores from memory
//      congestion.
//
// 20% updates / 80% contains. The paper uses a 2048-element list; we use
// 512 elements to keep simulated transactions (and the bench) short — the
// comparison between modes is unaffected.
#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint64_t kElements = 512;
constexpr uint32_t kUpdatePct = 20;

struct TxRun {
  ThroughputResult result;
  LatencySampler lat;
};

TxRun RunOne(BenchContext& ctx, TxMode mode, uint32_t cores) {
  RunSpec spec = ctx.Spec(60, 81);
  spec.total_cores = cores;
  spec.tx_mode = mode;
  TmSystem sys(MakeConfig(spec));
  ShmSortedList list(sys.allocator(), sys.shmem());
  Rng fill_rng(83);
  const uint64_t key_range = FillList(list, sys.allocator(), fill_rng, kElements);
  TxRun run;
  InstallLoopBodies(sys, spec.duration, spec.seed, ListMix(&list, kUpdatePct, key_range),
                    &run.lat);
  sys.Run(spec.duration);
  run.result = Summarize(sys, spec.duration);
  return run;
}

const char* ModeName(TxMode mode) {
  switch (mode) {
    case TxMode::kNormal:
      return "normal";
    case TxMode::kElasticEarly:
      return "elastic-early";
    case TxMode::kElasticRead:
      return "elastic-read";
  }
  return "?";
}

void Run(BenchContext& ctx) {
  for (const uint32_t cores : ctx.CoreSweep({2, 4, 8, 16, 32, 48})) {
    const TxRun normal = RunOne(ctx, TxMode::kNormal, cores);
    for (const TxMode mode : {TxMode::kNormal, TxMode::kElasticEarly, TxMode::kElasticRead}) {
      const TxRun run = mode == TxMode::kNormal ? normal : RunOne(ctx, mode, cores);
      BenchRow row;
      row.Param("mode", ModeName(mode))
          .Param("cores", uint64_t{cores})
          .TxMerged(run.result.stats, run.result.ops_per_ms, run.lat);
      if (mode != TxMode::kNormal && normal.result.ops_per_ms > 0.0) {
        row.Extra("speedup_vs_normal", run.result.ops_per_ms / normal.result.ops_per_ms);
      }
      ctx.Report(row);
    }
  }
}

TM2C_REGISTER_BENCH("fig7_elastic", "7",
                    "linked list: elastic transaction speedups over normal (512 elements)", &Run);

}  // namespace
}  // namespace tm2c

// Unified entry point for every bench binary.
//
// Parses the shared flag set, runs the one bench the binary registered via
// TM2C_REGISTER_BENCH, prints a uniform results table, and (with --json)
// writes a machine-readable document under the shared schema:
//
//   {
//     "schema_version": 1,
//     "bench": "...", "figure": "...", "description": "...",
//     "backend": "sim" | "threads" | "processes",
//     "smoke": false,
//     "results": [
//       {"scenario": "cores=48 cm=faircm", "params": {...},
//        "throughput_ops_per_ms": ..., "commit_rate": ..., "abort_rate": ...,
//        "commits": ..., "aborts": ...,
//        "latency_us": {"p50": ..., "p95": ..., "p99": ..., "mean": ...,
//                       "samples": ...},
//        "extra": {...}},
//       ...
//     ]
//   }
//
// bench/run_all.sh runs every binary and merges the documents into
// BENCH_results.json; tools/bench_json.py validates the schema.
#include <cstdio>
#include <fstream>

#include "bench/bench_util.h"
#include "src/common/flags.h"
#include "src/common/json.h"
#include "src/common/table.h"

namespace tm2c {
namespace {

const BenchDef* g_bench = nullptr;

// "cores=48 cm=faircm" — the human-readable row label and JSON scenario id.
std::string ScenarioLabel(const BenchRow& row) {
  std::string label;
  for (const auto& [key, value] : row.params) {
    if (!label.empty()) {
      label += ' ';
    }
    label += key + '=' + value;
  }
  return label.empty() ? "default" : label;
}

void PrintRows(const BenchDef& def, const std::vector<BenchRow>& rows) {
  TextTable table({"scenario", "ops/ms", "commit %", "p50 us", "p95 us", "p99 us", "extra"});
  for (const BenchRow& row : rows) {
    std::string extras;
    for (const auto& [key, value] : row.extra) {
      if (!extras.empty()) {
        extras += ' ';
      }
      extras += key + '=' + TextTable::Num(value, 2);
    }
    table.AddRow({ScenarioLabel(row), TextTable::Num(row.ops_per_ms, 2),
                  TextTable::Num(100.0 * row.commit_rate, 1), TextTable::Num(row.latency.p50_us, 1),
                  TextTable::Num(row.latency.p95_us, 1), TextTable::Num(row.latency.p99_us, 1),
                  extras});
  }
  table.Print(std::string(def.figure) + ": " + def.description);
}

std::string ToJson(const BenchDef& def, const BenchOptions& opts,
                   const std::vector<BenchRow>& rows) {
  JsonWriter w;
  w.BeginObject();
  w.KV("schema_version", 1);
  w.KV("bench", def.name);
  w.KV("figure", def.figure);
  w.KV("description", def.description);
  w.KV("backend", BackendKindName(BackendKindByName(opts.backend)));
  w.KV("smoke", opts.smoke);
  w.Key("results");
  w.BeginArray();
  for (const BenchRow& row : rows) {
    w.BeginObject();
    w.KV("scenario", ScenarioLabel(row));
    w.Key("params");
    w.BeginObject();
    for (const auto& [key, value] : row.params) {
      w.KV(key, value);
    }
    w.EndObject();
    w.KV("throughput_ops_per_ms", row.ops_per_ms);
    w.KV("commit_rate", row.commit_rate);
    w.KV("abort_rate", row.abort_rate);
    w.KV("commits", row.commits);
    w.KV("aborts", row.aborts);
    w.Key("latency_us");
    w.BeginObject();
    w.KV("p50", row.latency.p50_us);
    w.KV("p95", row.latency.p95_us);
    w.KV("p99", row.latency.p99_us);
    w.KV("mean", row.latency.mean_us);
    w.KV("samples", row.latency.samples);
    w.EndObject();
    w.Key("extra");
    w.BeginObject();
    for (const auto& [key, value] : row.extra) {
      w.KV(key, value);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace

bool RegisterBench(const BenchDef& def) {
  static BenchDef storage;
  storage = def;
  g_bench = &storage;
  return true;
}

}  // namespace tm2c

int main(int argc, char** argv) {
  using namespace tm2c;

  if (g_bench == nullptr) {
    std::fprintf(stderr, "no bench registered in this binary\n");
    return 1;
  }
  const BenchDef& def = *g_bench;

  BenchOptions opts;
  FlagSet flags;
  flags.Register("platform", &opts.platform, "platform model override: scc|scc800|opteron");
  flags.Register("cores", &opts.cores, "pin the core sweep to one total core count");
  flags.Register("service-cores", &opts.service_cores, "override the DTM service core count");
  flags.Register("cm", &opts.cm,
                 "contention manager override: none|backoff|offset-greedy|wholly|faircm");
  flags.Register("duration-ms", &opts.duration_ms, "simulated duration override per run");
  flags.Register("seed", &opts.seed, "seed override");
  flags.Register("smoke", &opts.smoke, "shrink sweeps/durations for a CI-sized run");
  flags.Register("json", &opts.json_path, "write machine-readable results to this file");
  flags.Register("backend", &opts.backend,
                 "runtime backend: sim (deterministic simulator, default) | threads "
                 "(real OS threads over SPSC channels, wall-clock timing) | processes "
                 "(forked partition servers over Unix sockets, wall-clock timing)");
  flags.Register("channel", &opts.channel,
                 "thread-backend transport: spsc (lock-free rings, default) | mutex "
                 "(v1 mailbox baseline)");
  flags.Register("pin", &opts.pin, "pin thread-backend threads to host CPUs");
  flags.Register("pipeline-depth", &opts.pipeline_depth,
                 "override the acquisition pipeline depth (1 = lockstep request/reply; "
                 "> 1 overlaps per-node batches; 0 = bench default)");
  flags.Register("index", &opts.index,
                 "store index structure for benches on the unified store API: "
                 "hash | btree (default: the bench sweeps both)");
  bool native_capable_probe = false;
  flags.Register("native-capable", &native_capable_probe,
                 "exit 0 if this bench supports --backend=threads, 3 otherwise (run_all.sh "
                 "uses this to discover the native pass)");
  bool processes_capable_probe = false;
  flags.Register("processes-capable", &processes_capable_probe,
                 "exit 0 if this bench supports --backend=processes, 3 otherwise "
                 "(run_all.sh uses this to discover the processes pass)");
  flags.Parse(argc, argv);

  if (native_capable_probe) {
    return def.native ? 0 : 3;
  }
  if (processes_capable_probe) {
    return def.processes ? 0 : 3;
  }

  if (BackendKindByName(opts.backend) == BackendKind::kThreads && !def.native) {
    std::fprintf(stderr,
                 "bench %s drives the simulator directly and has no native counterpart; "
                 "--backend=threads is not supported here\n",
                 def.name);
    return 1;
  }
  if (BackendKindByName(opts.backend) == BackendKind::kProcesses && !def.processes) {
    std::fprintf(stderr,
                 "bench %s sweeps a dimension the dedicated-only process backend does not "
                 "have (or drives the simulator directly); --backend=processes is not "
                 "supported here\n",
                 def.name);
    return 1;
  }

  std::printf("bench %s (figure %s, backend %s)%s\n", def.name, def.figure,
              BackendKindName(BackendKindByName(opts.backend)), opts.smoke ? " [smoke]" : "");

  BenchContext ctx(opts);
  def.fn(ctx);
  if (ctx.rows().empty()) {
    // Fail here, next to the flags that caused it, rather than minutes
    // later when the merge step rejects an empty results array.
    std::fprintf(stderr,
                 "bench %s produced no results; the flag combination filtered out every "
                 "scenario (e.g. --service-cores >= --cores)\n",
                 def.name);
    return 1;
  }
  PrintRows(def, ctx.rows());

  if (!opts.json_path.empty()) {
    std::ofstream out(opts.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", opts.json_path.c_str());
      return 1;
    }
    out << ToJson(def, opts, ctx.rows()) << "\n";
  }
  return 0;
}

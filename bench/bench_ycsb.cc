// YCSB-style workload on the partitioned transactional stores — the
// service-shaped scenario in the suite: skewed, mixed read/write traffic
// against a keyed store, the KVell-style workload the DS-Lock + CM
// machinery must survive at scale.
//
// Sweeps the YCSB core mixes over BOTH store index structures behind the
// unified TxStoreApi (`--index={hash,btree}` pins one): the partitioned
// hash KV store (src/apps/kvstore.h) and the partitioned B+-tree
// (src/apps/ordered_index.h). The point mixes A/B/C/F compare hash-lookup
// cost against tree-descent cost under the same traffic; workload E (95%
// range scans from a zipfian start key, 5% updates) is where the
// structures genuinely diverge — the B+-tree serves an ordered
// leaf-chain scan of `scan_len` entries, the hash store its honest
// bounded partition traversal (see src/apps/tx_store_api.h). The mix
// logic itself is index-agnostic: one OpFn against TxStoreApi.
//
// Both stores pin each partition's slab to its owning DTM service core
// (AddressMap::AddOwnedRange); the B+-tree partitions its key RANGE, so a
// range scan's lock traffic walks the service cores in key order.
//
// Registered native: --backend=threads measures the same stores on real
// OS threads over the SPSC channels.
#include "bench/workloads.h"
#include "src/apps/ordered_index.h"

namespace tm2c {
namespace {

struct Dist {
  const char* name;
  double theta;  // 0 = uniform
};

std::unique_ptr<TxStoreApi> MakeStore(const std::string& index, TmSystem& sys,
                                      uint64_t keys, uint32_t value_words) {
  const uint32_t parts = sys.deployment().num_service();
  if (index == "hash") {
    KvStoreConfig kcfg;
    kcfg.value_words = value_words;
    // Load factor ~4 per bucket; 2x headroom over the mean residency
    // for hash imbalance across partitions.
    kcfg.buckets_per_partition =
        static_cast<uint32_t>(std::max<uint64_t>(16, keys / (uint64_t{parts} * 4)));
    kcfg.capacity_per_partition = static_cast<uint32_t>(2 * keys / parts + 64);
    return std::make_unique<KvStore>(sys.allocator(), sys.shmem(), sys.address_map(),
                                     sys.deployment(), kcfg);
  }
  TM2C_CHECK_MSG(index == "btree", "--index must be hash or btree");
  OrderedIndexConfig ocfg;
  ocfg.key_min = 1;
  ocfg.key_max = keys;
  ocfg.value_words = value_words;
  // The default fanout keeps a full node read within one default-sized
  // acquisition batch: one lock round trip per tree level.
  ocfg.fanout = 6;
  // Half-full leaves put ~fanout/2 entries per leaf; one pool slot per
  // resident key is ~3x that plus inner-node headroom.
  ocfg.capacity_per_partition = static_cast<uint32_t>(keys / parts + 64);
  return std::make_unique<OrderedIndex>(sys.allocator(), sys.shmem(), sys.address_map(),
                                        sys.deployment(), ocfg);
}

void Run(BenchContext& ctx) {
  const uint64_t keys = ctx.smoke() ? 2048 : 16384;
  const auto indexes = ctx.IndexSweep({"hash", "btree"});
  const auto dists = ctx.Sweep<Dist>({{"zipfian", 0.99}, {"uniform", 0.0}});
  const auto value_sizes = ctx.Sweep<uint32_t>({4, 16});
  for (const std::string& index : indexes) {
    for (const Dist& dist : dists) {
      const auto chooser = std::make_shared<const KeyChooser>(keys, dist.theta);
      for (const uint32_t value_words : value_sizes) {
        // The five mixes are not smoke-reduced: together they are one sweep
        // point per mix and the A/B/C/E/F coverage is what the schema gate
        // checks. E additionally sweeps the scan length (smoke keeps the
        // short one).
        for (const YcsbMixSpec& mix : YcsbCoreMixes()) {
          const auto scan_lens = mix.scan_pct > 0 ? ctx.Sweep<uint32_t>({8, 64})
                                                  : std::vector<uint32_t>{0};
          for (const uint32_t scan_len : scan_lens) {
            RunSpec spec = ctx.Spec(25, 11);
            spec.total_cores = ctx.Cores(48);
            // The B+-tree's inline-payload nodes at value_words=16 need
            // more slab than the hash store's chained nodes.
            spec.shmem_bytes = 64ull << 20;
            TmSystem sys(MakeConfig(spec));
            std::unique_ptr<TxStoreApi> store =
                MakeStore(index, sys, keys, value_words);
            FillStore(*store, keys);
            LatencySampler lat;
            InstallLoopBodies(sys, spec.duration, spec.seed,
                              YcsbMix(store.get(), mix, chooser,
                                      scan_len == 0 ? 1 : scan_len),
                              &lat);
            sys.Run(spec.duration);
            BenchRow row;
            row.Param("workload", mix.name)
                .Param("index", store->IndexKindName())
                .Param("dist", dist.name)
                .Param("value_words", uint64_t{value_words});
            if (mix.scan_pct > 0) {
              row.Param("scan_len", uint64_t{scan_len});
            }
            row.Param("platform", spec.platform_name)
                .Param("cores", uint64_t{spec.total_cores})
                .Tx(sys, spec.duration, lat)
                .Extra("theta", dist.theta)
                .Extra("keys", static_cast<double>(keys))
                .Extra("read_pct", mix.read_pct)
                .Extra("scan_pct", mix.scan_pct)
                .Extra("resident_keys", static_cast<double>(store->HostSize()));
            ctx.Report(row);
          }
        }
      }
    }
  }
}

TM2C_REGISTER_BENCH_NATIVE(
    "ycsb_kv", "kv",
    "YCSB A/B/C/E/F on the partitioned transactional stores (hash + btree)",
    &Run);

}  // namespace
}  // namespace tm2c

// YCSB-style workload on the partitioned transactional KV store
// (src/apps/kvstore.h) — the first service-shaped scenario in the suite:
// skewed, mixed read/write traffic against a keyed store, the KVell-style
// workload the DS-Lock + CM machinery must survive at scale.
//
// Sweeps the YCSB core mixes that make sense on a hash store (A, B, C, F)
// under scrambled-zipfian (theta = 0.99, the YCSB default) and uniform key
// choice, for two value sizes. The store pins each partition's slab to its
// owning DTM service core (AddressMap::AddOwnedRange), so every lock
// acquisition routes to the partition owner; the interesting comparison is
// how throughput degrades from C (read-only) through B/A (write contention
// on zipfian-hot keys) to F (read-modify-write holds locks longest).
//
// Registered native: --backend=threads measures the same store on real OS
// threads over the SPSC channels.
#include "bench/workloads.h"

namespace tm2c {
namespace {

struct Dist {
  const char* name;
  double theta;  // 0 = uniform
};

void Run(BenchContext& ctx) {
  const uint64_t keys = ctx.smoke() ? 2048 : 16384;
  const auto dists = ctx.Sweep<Dist>({{"zipfian", 0.99}, {"uniform", 0.0}});
  const auto value_sizes = ctx.Sweep<uint32_t>({4, 16});
  for (const Dist& dist : dists) {
    const auto chooser = std::make_shared<const KeyChooser>(keys, dist.theta);
    for (const uint32_t value_words : value_sizes) {
      // The four mixes are not smoke-reduced: together they are one sweep
      // point per mix and the A/B/C/F coverage is what the schema gate
      // checks.
      for (const YcsbMixSpec& mix : YcsbCoreMixes()) {
        RunSpec spec = ctx.Spec(25, 11);
        spec.total_cores = ctx.Cores(48);
        TmSystem sys(MakeConfig(spec));
        const uint32_t parts = sys.deployment().num_service();
        KvStoreConfig kcfg;
        kcfg.value_words = value_words;
        // Load factor ~4 per bucket; 2x headroom over the mean residency
        // for hash imbalance across partitions.
        kcfg.buckets_per_partition =
            static_cast<uint32_t>(std::max<uint64_t>(16, keys / (uint64_t{parts} * 4)));
        kcfg.capacity_per_partition =
            static_cast<uint32_t>(2 * keys / parts + 64);
        KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(),
                      kcfg);
        FillKvStore(store, keys);
        LatencySampler lat;
        InstallLoopBodies(sys, spec.duration, spec.seed, YcsbMix(&store, mix, chooser),
                          &lat);
        sys.Run(spec.duration);
        BenchRow row;
        row.Param("workload", mix.name)
            .Param("dist", dist.name)
            .Param("value_words", uint64_t{value_words})
            .Param("platform", spec.platform_name)
            .Param("cores", uint64_t{spec.total_cores})
            .Tx(sys, spec.duration, lat)
            .Extra("theta", dist.theta)
            .Extra("keys", static_cast<double>(keys))
            .Extra("read_pct", mix.read_pct)
            .Extra("resident_keys", static_cast<double>(store.HostSize()));
        ctx.Report(row);
      }
    }
  }
}

TM2C_REGISTER_BENCH_NATIVE("ycsb_kv", "kv",
                           "YCSB A/B/C/F on the partitioned transactional KV store",
                           &Run);

}  // namespace
}  // namespace tm2c

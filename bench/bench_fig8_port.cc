// Figures 8(b), 8(c), 8(d): TM2C on the many-core (SCC / SCC800) vs the
// cache-coherent multi-core (Opteron), using the Back-off-Retry CM as the
// common ground (Section 7.1).
//
//  8(b) bank: 20%/80% balance/transfer (high contention — the SCC copes
//       better) and 100% transfers (low contention — follows messaging
//       latency);
//  8(c) linked list: 512 elements, 10% updates (high contention; the
//       multi-core's caches help the traversal hotspot);
//  8(d) hash table: initial size 512, load 4 and 16, 10% updates (low
//       contention — follows messaging latency; scc800 leads).
#include "bench/workloads.h"

namespace tm2c {
namespace {

const char* const kPlatforms[] = {"scc", "scc800", "opteron"};

RunSpec PortSpec(const std::string& platform, uint32_t cores) {
  RunSpec spec;
  spec.platform_name = platform;
  spec.total_cores = cores;
  spec.cm = CmKind::kBackoffRetry;  // the CM ported in Section 7.1
  spec.duration = MillisToSim(30);
  spec.seed = 91;
  return spec;
}

double RunBank(const std::string& platform, uint32_t cores, uint32_t balance_pct) {
  RunSpec spec = PortSpec(platform, cores);
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.sim().allocator(), sys.sim().shmem(), 1024, 100);
  InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, balance_pct));
  sys.Run(spec.duration);
  return Summarize(sys, spec.duration).ops_per_ms;
}

double RunList(const std::string& platform, uint32_t cores) {
  RunSpec spec = PortSpec(platform, cores);
  spec.duration = MillisToSim(50);
  TmSystem sys(MakeConfig(spec));
  ShmSortedList list(sys.sim().allocator(), sys.sim().shmem());
  Rng fill_rng(93);
  const uint64_t key_range = FillList(list, sys.sim().allocator(), fill_rng, 512);
  InstallLoopBodies(sys, spec.duration, spec.seed, ListMix(&list, 10, key_range));
  sys.Run(spec.duration);
  return Summarize(sys, spec.duration).ops_per_ms;
}

double RunHash(const std::string& platform, uint32_t cores, uint32_t load_factor) {
  RunSpec spec = PortSpec(platform, cores);
  TmSystem sys(MakeConfig(spec));
  const uint64_t elements = 512;
  const uint32_t buckets = static_cast<uint32_t>(elements / load_factor);
  ShmHashTable table(sys.sim().allocator(), sys.sim().shmem(), buckets);
  Rng fill_rng(97);
  const uint64_t key_range = FillHashTable(table, sys.sim().allocator(), fill_rng, elements);
  InstallLoopBodies(sys, spec.duration, spec.seed, HashTableMix(&table, 10, key_range));
  sys.Run(spec.duration);
  return Summarize(sys, spec.duration).ops_per_ms;
}

void PrintSweep(const std::string& title, const std::function<double(const std::string&, uint32_t)>& run) {
  TextTable table({"#cores", "SCC", "SCC800", "Opteron"});
  for (uint32_t cores : {2u, 4u, 8u, 16u, 32u, 48u}) {
    std::vector<std::string> row{std::to_string(cores)};
    for (const char* platform : kPlatforms) {
      row.push_back(TextTable::Num(run(platform, cores), 2));
    }
    table.AddRow(std::move(row));
  }
  table.Print(title);
}

void Main() {
  PrintSweep("Figure 8(b) left: bank 20% balance / 80% transfer (ops/ms)",
             [](const std::string& p, uint32_t c) { return RunBank(p, c, 20); });
  PrintSweep("Figure 8(b) right: bank 100% transfers (ops/ms)",
             [](const std::string& p, uint32_t c) { return RunBank(p, c, 0); });
  PrintSweep("Figure 8(c): linked list, 512 elements, 10% updates (ops/ms)",
             [](const std::string& p, uint32_t c) { return RunList(p, c); });
  PrintSweep("Figure 8(d) left: hash table, load factor 4, 10% updates (ops/ms)",
             [](const std::string& p, uint32_t c) { return RunHash(p, c, 4); });
  PrintSweep("Figure 8(d) right: hash table, load factor 16, 10% updates (ops/ms)",
             [](const std::string& p, uint32_t c) { return RunHash(p, c, 16); });
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

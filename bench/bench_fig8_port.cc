// Figures 8(b), 8(c), 8(d): TM2C on the many-core (SCC / SCC800) vs the
// cache-coherent multi-core (Opteron), using the Back-off-Retry CM as the
// common ground (Section 7.1).
//
//  8(b) bank: 20%/80% balance/transfer (high contention — the SCC copes
//       better) and 100% transfers (low contention — follows messaging
//       latency);
//  8(c) linked list: 512 elements, 10% updates (high contention; the
//       multi-core's caches help the traversal hotspot);
//  8(d) hash table: initial size 512, load 4 and 16, 10% updates (low
//       contention — follows messaging latency; scc800 leads).
#include "bench/workloads.h"

namespace tm2c {
namespace {

RunSpec PortSpec(BenchContext& ctx, const std::string& platform, uint32_t cores) {
  // The CM ported in Section 7.1 is Back-off-Retry; --cm still overrides.
  RunSpec spec = ctx.Spec(30, 91, CmKind::kBackoffRetry);
  spec.platform_name = platform;
  spec.total_cores = cores;
  return spec;
}

BenchRow RunBank(BenchContext& ctx, const std::string& platform, uint32_t cores,
                 uint32_t balance_pct) {
  RunSpec spec = PortSpec(ctx, platform, cores);
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.allocator(), sys.shmem(), 1024, 100);
  LatencySampler lat;
  InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, balance_pct), &lat);
  sys.Run(spec.duration);
  BenchRow row;
  row.Param("part", balance_pct > 0 ? "8b-mixed" : "8b-transfers")
      .Param("platform", platform)
      .Param("cores", uint64_t{cores})
      .Tx(sys, spec.duration, lat);
  return row;
}

BenchRow RunList(BenchContext& ctx, const std::string& platform, uint32_t cores) {
  RunSpec spec = PortSpec(ctx, platform, cores);
  spec.duration = ctx.Duration(50);
  TmSystem sys(MakeConfig(spec));
  ShmSortedList list(sys.allocator(), sys.shmem());
  Rng fill_rng(93);
  const uint64_t key_range = FillList(list, sys.allocator(), fill_rng, 512);
  LatencySampler lat;
  InstallLoopBodies(sys, spec.duration, spec.seed, ListMix(&list, 10, key_range), &lat);
  sys.Run(spec.duration);
  BenchRow row;
  row.Param("part", "8c-list").Param("platform", platform).Param("cores", uint64_t{cores});
  row.Tx(sys, spec.duration, lat);
  return row;
}

BenchRow RunHash(BenchContext& ctx, const std::string& platform, uint32_t cores,
                 uint32_t load_factor) {
  RunSpec spec = PortSpec(ctx, platform, cores);
  TmSystem sys(MakeConfig(spec));
  const uint64_t elements = 512;
  const uint32_t buckets = static_cast<uint32_t>(elements / load_factor);
  ShmHashTable table(sys.allocator(), sys.shmem(), buckets);
  Rng fill_rng(97);
  const uint64_t key_range = FillHashTable(table, sys.allocator(), fill_rng, elements);
  LatencySampler lat;
  InstallLoopBodies(sys, spec.duration, spec.seed, HashTableMix(&table, 10, key_range), &lat);
  sys.Run(spec.duration);
  BenchRow row;
  row.Param("part", "8d-hash")
      .Param("load", uint64_t{load_factor})
      .Param("platform", platform)
      .Param("cores", uint64_t{cores})
      .Tx(sys, spec.duration, lat);
  return row;
}

void Run(BenchContext& ctx) {
  const std::vector<std::string> platforms = ctx.PlatformSweep({"scc", "scc800", "opteron"});
  for (const uint32_t cores : ctx.CoreSweep({2, 4, 8, 16, 32, 48})) {
    for (const std::string& platform : platforms) {
      ctx.Report(RunBank(ctx, platform, cores, 20));
      ctx.Report(RunBank(ctx, platform, cores, 0));
      ctx.Report(RunList(ctx, platform, cores));
      for (const uint32_t load : ctx.Sweep<uint32_t>({4, 16})) {
        ctx.Report(RunHash(ctx, platform, cores, load));
      }
    }
  }
}

TM2C_REGISTER_BENCH_NATIVE(
    "fig8_port", "8(b-d)",
    "bank/list/hash table across SCC, SCC800 and Opteron platform models", &Run);

}  // namespace
}  // namespace tm2c

// Figure 5(c): contention manager comparison when one core repeatedly runs
// balance operations while all other application cores run transfers.
//
// Expected shape: Offset-Greedy and Wholly treat the long balance scans and
// the short transfers alike, so the "balance core" keeps aborting transfers
// and drags system throughput down. FairCM charges transactions by the time
// they consume, so the expensive balances lose priority and the system
// scales (the paper: up to 12x better than Wholly, 9x better than
// Offset-Greedy, abort rate under 10%). Back-off-Retry starves the balance
// core instead.
#include "bench/workloads.h"

namespace tm2c {
namespace {

struct Point {
  double throughput;
  double commit_rate;
  uint64_t balance_commits;
};

Point RunOne(CmKind cm, uint32_t cores) {
  RunSpec spec;
  spec.total_cores = cores;
  spec.cm = cm;
  spec.duration = MillisToSim(40);
  spec.seed = 51;
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.sim().allocator(), sys.sim().shmem(), 1024, 100);
  InstallLoopBodiesWithSpecialCore(sys, spec.duration, spec.seed,
                                   /*special=*/BankMix(&bank, /*balance_pct=*/100),
                                   /*op=*/BankMix(&bank, /*balance_pct=*/0));
  sys.Run(spec.duration);
  const ThroughputResult r = Summarize(sys, spec.duration);
  return Point{r.ops_per_ms, 100.0 * r.commit_rate, sys.AppStats(0).commits};
}

void Main() {
  const CmKind kinds[] = {CmKind::kBackoffRetry, CmKind::kOffsetGreedy, CmKind::kWholly,
                          CmKind::kFairCm};
  TextTable tput({"#cores", "Back-off-Retry", "Offset-Greedy", "Wholly", "FairCM"});
  TextTable rate({"#cores", "Back-off-Retry", "Offset-Greedy", "Wholly", "FairCM"});
  TextTable balances({"#cores", "Back-off-Retry", "Offset-Greedy", "Wholly", "FairCM"});
  for (uint32_t cores : {4u, 8u, 16u, 32u, 48u}) {
    std::vector<std::string> trow{std::to_string(cores)};
    std::vector<std::string> rrow{std::to_string(cores)};
    std::vector<std::string> brow{std::to_string(cores)};
    for (CmKind cm : kinds) {
      const Point p = RunOne(cm, cores);
      trow.push_back(TextTable::Num(p.throughput, 2));
      rrow.push_back(TextTable::Num(p.commit_rate, 1));
      brow.push_back(std::to_string(p.balance_commits));
    }
    tput.AddRow(std::move(trow));
    rate.AddRow(std::move(rrow));
    balances.AddRow(std::move(brow));
  }
  tput.Print("Figure 5(c) left: bank, transfers + 1 balance core, throughput (ops/ms)");
  rate.Print("Figure 5(c) right: commit rate (%)");
  balances.Print("Balance-core commits during the run (FairCM trades them for throughput)");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

// Figure 5(c): contention manager comparison when one core repeatedly runs
// balance operations while all other application cores run transfers.
//
// Expected shape: Offset-Greedy and Wholly treat the long balance scans and
// the short transfers alike, so the "balance core" keeps aborting transfers
// and drags system throughput down. FairCM charges transactions by the time
// they consume, so the expensive balances lose priority and the system
// scales (the paper: up to 12x better than Wholly, 9x better than
// Offset-Greedy, abort rate under 10%). Back-off-Retry starves the balance
// core instead; the balance_commits extra column shows the trade.
#include "bench/workloads.h"

namespace tm2c {
namespace {

void Run(BenchContext& ctx) {
  const std::vector<CmKind> kinds = ctx.CmSweep(
      {CmKind::kBackoffRetry, CmKind::kOffsetGreedy, CmKind::kWholly, CmKind::kFairCm});
  for (const uint32_t cores : ctx.CoreSweep({4, 8, 16, 32, 48})) {
    for (const CmKind cm : kinds) {
      RunSpec spec = ctx.Spec(40, 51);
      spec.total_cores = cores;
      spec.cm = cm;
      TmSystem sys(MakeConfig(spec));
      Bank bank(sys.allocator(), sys.shmem(), 1024, 100);
      LatencySampler lat;
      InstallLoopBodiesWithSpecialCore(sys, spec.duration, spec.seed,
                                       /*special=*/BankMix(&bank, /*balance_pct=*/100),
                                       /*op=*/BankMix(&bank, /*balance_pct=*/0), &lat);
      sys.Run(spec.duration);
      BenchRow row;
      row.Param("cm", CmKindName(cm))
          .Param("cores", uint64_t{cores})
          .Tx(sys, spec.duration, lat)
          .Extra("balance_commits", static_cast<double>(sys.AppStats(0).commits));
      ctx.Report(row);
    }
  }
}

TM2C_REGISTER_BENCH("fig5c_cm_compare", "5(c)",
                    "bank, transfers + one balance core: CM comparison", &Run);

}  // namespace
}  // namespace tm2c

// Figure 4(b): hash table speedup of TM2C (24 app + 24 DTM cores) over the
// bare sequential implementation on one core, for load factors 2..8 and
// update ratios 20%..50%.
//
// The paper reports up to 20x, decreasing with the load factor (longer
// buckets -> longer transactions -> more conflicts) and with the update
// ratio (more contention).
#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint32_t kBuckets = 64;

struct TxRun {
  ThroughputResult result;
  LatencySampler lat;
};

TxRun RunTransactional(BenchContext& ctx, uint32_t load_factor, uint32_t update_pct) {
  RunSpec spec = ctx.Spec(25, 9);
  spec.total_cores = ctx.Cores(48);
  TmSystem sys(MakeConfig(spec));
  ShmHashTable table(sys.allocator(), sys.shmem(), kBuckets);
  Rng fill_rng(13);
  const uint64_t key_range =
      FillHashTable(table, sys.allocator(), fill_rng, uint64_t{kBuckets} * load_factor);
  TxRun run;
  InstallLoopBodies(sys, spec.duration, spec.seed,
                    HashTableMix(&table, update_pct, key_range), &run.lat);
  sys.Run(spec.duration);
  run.result = Summarize(sys, spec.duration);
  return run;
}

double RunSequential(BenchContext& ctx, uint32_t load_factor, uint32_t update_pct) {
  RunSpec spec = ctx.Spec(25, 9);
  spec.total_cores = 2;  // one app core, one (idle) service core
  spec.service_cores = 1;  // the sequential baseline is one-core by design
  TmSystem sys(MakeConfig(spec));
  ShmHashTable table(sys.allocator(), sys.shmem(), kBuckets);
  Rng fill_rng(13);
  const uint64_t key_range =
      FillHashTable(table, sys.allocator(), fill_rng, uint64_t{kBuckets} * load_factor);
  uint64_t ops = 0;
  const SimTime horizon = spec.duration;
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime&) {
    Rng rng(77);
    const SimTime t0 = env.GlobalNow();
    while (env.GlobalNow() - t0 < horizon) {
      env.Compute(kOpOverheadCycles);  // same harness cost as the tx version
      const uint64_t key = 1 + rng.NextBelow(key_range);
      if (rng.NextPercent(update_pct)) {
        if (rng.NextPercent(50)) {
          table.SeqAdd(env, env.allocator(), key);
        } else {
          table.SeqRemove(env, key);
        }
      } else {
        table.SeqContains(env, key);
      }
      ++ops;
    }
  });
  sys.Run(spec.duration);
  return OpsPerMs(ops, spec.duration);
}

void Run(BenchContext& ctx) {
  for (const uint32_t load : ctx.Sweep<uint32_t>({2, 4, 6, 8})) {
    for (const uint32_t upd : ctx.Sweep<uint32_t>({20, 30, 40, 50})) {
      const TxRun tx = RunTransactional(ctx, load, upd);
      const double seq = RunSequential(ctx, load, upd);
      BenchRow row;
      row.Param("load", uint64_t{load})
          .Param("updates_pct", uint64_t{upd})
          .TxMerged(tx.result.stats, tx.result.ops_per_ms, tx.lat)
          .Extra("sequential_ops_per_ms", seq)
          .Extra("speedup", seq > 0.0 ? tx.result.ops_per_ms / seq : 0.0);
      ctx.Report(row);
    }
  }
}

TM2C_REGISTER_BENCH_NATIVE("fig4b_speedup", "4(b)",
                           "hash table speedup over bare sequential (24 app + 24 DTM cores)",
                           &Run);

}  // namespace
}  // namespace tm2c

// Figure 4(b): hash table speedup of TM2C (24 app + 24 DTM cores) over the
// bare sequential implementation on one core, for load factors 2..8 and
// update ratios 20%..50%.
//
// The paper reports up to 20x, decreasing with the load factor (longer
// buckets -> longer transactions -> more conflicts) and with the update
// ratio (more contention).
#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint32_t kBuckets = 64;

double RunTransactional(uint32_t load_factor, uint32_t update_pct) {
  RunSpec spec;
  spec.total_cores = 48;
  spec.duration = MillisToSim(25);
  spec.seed = 9;
  TmSystem sys(MakeConfig(spec));
  ShmHashTable table(sys.sim().allocator(), sys.sim().shmem(), kBuckets);
  Rng fill_rng(13);
  const uint64_t key_range =
      FillHashTable(table, sys.sim().allocator(), fill_rng, uint64_t{kBuckets} * load_factor);
  InstallLoopBodies(sys, spec.duration, spec.seed, HashTableMix(&table, update_pct, key_range));
  sys.Run(spec.duration);
  return Summarize(sys, spec.duration).ops_per_ms;
}

double RunSequential(uint32_t load_factor, uint32_t update_pct) {
  RunSpec spec;
  spec.total_cores = 2;  // one app core, one (idle) service core
  spec.service_cores = 1;
  spec.duration = MillisToSim(25);
  spec.seed = 9;
  TmSystem sys(MakeConfig(spec));
  ShmHashTable table(sys.sim().allocator(), sys.sim().shmem(), kBuckets);
  Rng fill_rng(13);
  const uint64_t key_range =
      FillHashTable(table, sys.sim().allocator(), fill_rng, uint64_t{kBuckets} * load_factor);
  uint64_t ops = 0;
  const SimTime horizon = spec.duration;
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime&) {
    Rng rng(77);
    while (env.GlobalNow() < horizon) {
      env.Compute(kOpOverheadCycles);  // same harness cost as the tx version
      const uint64_t key = 1 + rng.NextBelow(key_range);
      if (rng.NextPercent(update_pct)) {
        if (rng.NextPercent(50)) {
          table.SeqAdd(env, env.allocator(), key);
        } else {
          table.SeqRemove(env, key);
        }
      } else {
        table.SeqContains(env, key);
      }
      ++ops;
    }
  });
  sys.Run(spec.duration);
  return OpsPerMs(ops, spec.duration);
}

void Main() {
  TextTable table({"load factor", "20% updates", "30% updates", "40% updates", "50% updates"});
  for (uint32_t load : {2u, 4u, 6u, 8u}) {
    std::vector<std::string> row{std::to_string(load)};
    for (uint32_t upd : {20u, 30u, 40u, 50u}) {
      const double speedup = RunTransactional(load, upd) / RunSequential(load, upd);
      row.push_back(TextTable::Num(speedup, 1));
    }
    table.AddRow(std::move(row));
  }
  table.Print("Figure 4(b): hash table speedup over bare sequential (24 app + 24 DTM cores)");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

// Section 5.1's SCC settings table plus the derived messaging/memory
// parameters of every modelled platform.
#include "bench/bench_util.h"
#include "src/noc/latency.h"

namespace tm2c {
namespace {

void Main() {
  TextTable settings({"setting", "tile MHz", "mesh MHz", "DRAM MHz"});
  for (int s = 0; s < 5; ++s) {
    const PlatformDesc p = MakeSccPlatform(s);
    settings.AddRow({std::to_string(s), std::to_string(p.core_mhz), std::to_string(p.mesh_mhz),
                     std::to_string(p.dram_mhz)});
  }
  settings.Print("Section 5.1: SCC performance settings");

  TextTable derived({"platform", "1-way 2c (us)", "1-way 48c (us)", "mem access (us)",
                     "MC stream (MB/s)"});
  for (const char* name : {"scc", "scc800", "opteron"}) {
    const PlatformDesc p = PlatformByName(name);
    const LatencyModel lat(p);
    derived.AddRow({name, TextTable::Num(SimToMicros(lat.OneWayPs(0, 1, 1)), 2),
                    TextTable::Num(SimToMicros(lat.OneWayPs(0, 40, 24)), 2),
                    TextTable::Num(SimToMicros(lat.MemAccessPs(0, 0, 1 << 20)), 3),
                    TextTable::Num(static_cast<double>(p.mc_stream_bytes_per_us), 0)});
  }
  derived.Print("Derived platform model parameters");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

// Section 5.1's SCC settings table plus the derived messaging/memory
// parameters of every modelled platform.
//
// Each row measures a small echo workload (8 cores, half service) on the
// platform so the standard metrics are real — throughput is echoes/ms and
// the latency percentiles are round-trip times — and attaches the derived
// model parameters (one-way latencies, memory access cost, MC streaming
// bandwidth) as extras.
#include "bench/bench_util.h"
#include "src/noc/latency.h"
#include "src/runtime/sim_system.h"

namespace tm2c {
namespace {

constexpr uint32_t kEchoCores = 8;

BenchRow Measure(BenchContext& ctx, const std::string& label, const PlatformDesc& platform) {
  const int echoes = ctx.smoke() ? 30 : 300;
  const EchoResult echo =
      RunEchoWorkload(platform, kEchoCores, kEchoCores / 2, echoes, ctx.Seed(3));
  const LatencyModel lat(platform);
  BenchRow row;
  row.Param("platform", label);
  row.Ops(echo.rtt.count(), echo.end, echo.rtt);
  row.Extra("tile_mhz", static_cast<double>(platform.core_mhz))
      .Extra("mesh_mhz", static_cast<double>(platform.mesh_mhz))
      .Extra("dram_mhz", static_cast<double>(platform.dram_mhz))
      .Extra("one_way_2c_us", SimToMicros(lat.OneWayPs(0, 1, 1)))
      .Extra("one_way_48c_us", SimToMicros(lat.OneWayPs(0, 40, 24)))
      .Extra("mem_access_us", SimToMicros(lat.MemAccessPs(0, 0, 1 << 20)))
      .Extra("mc_stream_mb_s", static_cast<double>(platform.mc_stream_bytes_per_us));
  return row;
}

void Run(BenchContext& ctx) {
  // The five SCC performance settings of Section 5.1 (skipped when
  // --platform pins the run to one named model) ...
  if (ctx.opts().platform.empty()) {
    for (const int setting : ctx.Sweep<int>({0, 1, 2, 3, 4})) {
      ctx.Report(
          Measure(ctx, "scc-setting-" + std::to_string(setting), MakeSccPlatform(setting)));
    }
  }
  // ... and the named platform models the other benches use.
  for (const std::string& name : ctx.PlatformSweep({"scc", "scc800", "opteron"})) {
    ctx.Report(Measure(ctx, name, PlatformByName(name)));
  }
}

TM2C_REGISTER_BENCH("platforms", "5.1",
                    "SCC performance settings and derived platform model parameters", &Run);

}  // namespace
}  // namespace tm2c

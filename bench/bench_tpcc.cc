// TPC-C-style two-table OLTP workload: warehouse counters in the
// partitioned hash KV store, order lines in the partitioned transactional
// B+-tree — the scenario the ordered index exists for, since every
// order-status needs the lines of one order back in line order.
//
// Tables:
//  - warehouse (KvStore, value_words=2): per-warehouse [next_o_id, ytd].
//  - order-line (OrderedIndex, value_words=1): key packs (warehouse,
//    order slot, line) so one order's lines are contiguous and one
//    warehouse's orders are contiguous — the ordered index doubles as the
//    secondary index on (warehouse, order). Orders recycle through a
//    fixed window of slots; a new order overwrites its slot's lines and
//    deletes the stale tail, so residency stays bounded and the tree
//    exercises splits AND merges at steady state.
//
// Transactions (one TxRuntime::Execute each — cross-table atomicity is
// the point):
//  - new-order (45%): RMW warehouse.next_o_id++, then put 1..kMaxLines
//    lines for the new order and delete the recycled slot's stale tail.
//  - payment (43%): RMW warehouse.ytd += amount.
//  - order-status (12%): read warehouse.next_o_id, then range-scan the
//    lines of a recent order; asserts the scan comes back in ascending
//    key order (the ordered index's contract).
//
// Self-checks after the run: committed new-order count is non-zero and
// equals the total next_o_id advance, and committed payment amounts equal
// the total ytd advance — cross-table lost updates would break either.
//
// Registered native: --backend=threads runs the same two-table workload
// on real OS threads over the SPSC channels.
#include <atomic>

#include "bench/workloads.h"
#include "src/apps/ordered_index.h"

namespace tm2c {
namespace {

constexpr uint32_t kMaxLines = 4;      // line slots per order
constexpr uint64_t kOrderWindow = 64;  // resident orders per warehouse

// Orders recycle through slot = o_id % kOrderWindow; keys start at 1.
uint64_t LineKey(uint32_t warehouse, uint64_t slot, uint32_t line) {
  return (uint64_t{warehouse - 1} * kOrderWindow + slot) * kMaxLines + line + 1;
}

void Run(BenchContext& ctx) {
  const auto warehouse_counts = ctx.Sweep<uint32_t>({4, 16});
  for (const uint32_t warehouses : warehouse_counts) {
    RunSpec spec = ctx.Spec(25, 13);
    spec.total_cores = ctx.Cores(48);
    TmSystem sys(MakeConfig(spec));
    const uint32_t parts = sys.deployment().num_service();

    KvStoreConfig wcfg;
    wcfg.value_words = 2;  // [next_o_id, ytd]
    wcfg.buckets_per_partition = 16;
    wcfg.capacity_per_partition = warehouses + 16;
    KvStore wh(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), wcfg);

    OrderedIndexConfig ocfg;
    ocfg.key_min = 1;
    ocfg.key_max = LineKey(warehouses, kOrderWindow - 1, kMaxLines - 1);
    ocfg.value_words = 1;  // quantity
    ocfg.fanout = 6;
    ocfg.capacity_per_partition =
        static_cast<uint32_t>(ocfg.key_max / parts + 64);
    OrderedIndex lines(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(),
                       ocfg);

    // Load: every warehouse starts with a full window of 2-line orders, so
    // order-status hits resident data from the first transaction and the
    // trees start multi-level.
    for (uint32_t w = 1; w <= warehouses; ++w) {
      const uint64_t init[2] = {kOrderWindow, 0};
      wh.HostPut(w, init);
      for (uint64_t slot = 0; slot < kOrderWindow; ++slot) {
        for (uint32_t l = 0; l < 2; ++l) {
          const uint64_t qty = 1 + (slot + l) % 10;
          lines.HostPut(LineKey(w, slot, l), &qty);
        }
      }
    }

    std::atomic<uint64_t> new_orders{0}, payments{0}, statuses{0};
    std::atomic<uint64_t> paid_total{0};
    auto op = [&wh, &lines, warehouses, &new_orders, &payments, &statuses, &paid_total,
               scratch = OrderedIndex::SmoScratch()](CoreEnv& env, TxRuntime& rt,
                                                     Rng& rng) mutable {
      env.Compute(kOpOverheadCycles);
      const auto w = static_cast<uint32_t>(1 + rng.NextBelow(warehouses));
      const uint64_t roll = rng.NextBelow(100);
      if (roll < 45) {
        // New-order: draw the line count before Execute so every retry
        // builds the same order.
        const auto nlines = static_cast<uint32_t>(1 + rng.NextBelow(kMaxLines));
        rt.Execute([&](Tx& tx) {
          scratch.ResetAttempt();
          uint64_t o_id = 0;
          wh.TxReadModifyWrite(tx, w, [&o_id](uint64_t* v) {
            o_id = v[0];
            v[0] += 1;
          });
          const uint64_t slot = o_id % kOrderWindow;
          for (uint32_t l = 0; l < kMaxLines; ++l) {
            const uint64_t key = LineKey(w, slot, l);
            if (l < nlines) {
              const uint64_t qty = 1 + (o_id + l) % 10;
              lines.TxPut(tx, key, &qty, &scratch);
            } else {
              lines.TxDelete(tx, key, nullptr, &scratch);
            }
          }
        });
        lines.SettleScratch(&scratch);
        new_orders.fetch_add(1, std::memory_order_relaxed);
      } else if (roll < 88) {
        const uint64_t amount = 1 + rng.NextBelow(500);
        wh.ReadModifyWrite(rt, w, [amount](uint64_t* v) { v[1] += amount; });
        paid_total.fetch_add(amount, std::memory_order_relaxed);
        payments.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Order-status: how far back to look is drawn before Execute.
        const uint64_t back = 1 + rng.NextBelow(kOrderWindow / 2);
        std::vector<KvEntry> out;
        rt.Execute([&](Tx& tx) {
          out.clear();
          uint64_t v[2] = {0, 0};
          if (!wh.TxGet(tx, w, v)) {
            return;
          }
          const uint64_t o_id = v[0] - std::min(back, v[0]);
          const uint64_t slot = o_id % kOrderWindow;
          lines.TxRangeScan(tx, LineKey(w, slot, 0), LineKey(w, slot, kMaxLines - 1),
                            kMaxLines, &out);
        });
        for (size_t i = 1; i < out.size(); ++i) {
          TM2C_CHECK_MSG(out[i - 1].key < out[i].key,
                         "order-status scan returned lines out of key order");
        }
        statuses.fetch_add(1, std::memory_order_relaxed);
      }
    };
    LatencySampler lat;
    InstallLoopBodies(sys, spec.duration, spec.seed, op, &lat);
    sys.Run(spec.duration);

    // Cross-table conservation: every committed new-order advanced exactly
    // one next_o_id; every committed payment's amount landed in one ytd.
    // The simulated horizon can freeze a body between its commit and its
    // counter bump, so each total may exceed its counter by at most one
    // in-flight transaction per application core.
    uint64_t o_id_sum = 0, ytd_sum = 0;
    for (uint32_t w = 1; w <= warehouses; ++w) {
      uint64_t v[2] = {0, 0};
      TM2C_CHECK(wh.HostGet(w, v));
      o_id_sum += v[0];
      ytd_sum += v[1];
    }
    const uint64_t app_cores = sys.num_app_cores();
    const uint64_t o_id_advance = o_id_sum - uint64_t{warehouses} * kOrderWindow;
    TM2C_CHECK_MSG(new_orders.load() > 0, "no new-order transaction committed");
    TM2C_CHECK_MSG(
        o_id_advance >= new_orders.load() && o_id_advance <= new_orders.load() + app_cores,
        "next_o_id total does not match committed new-orders");
    TM2C_CHECK_MSG(
        ytd_sum >= paid_total.load() && ytd_sum <= paid_total.load() + app_cores * 500,
        "ytd total does not match committed payment amounts");

    BenchRow row;
    row.Param("warehouses", uint64_t{warehouses})
        .Param("platform", spec.platform_name)
        .Param("cores", uint64_t{spec.total_cores})
        .Tx(sys, spec.duration, lat)
        .Extra("new_orders", static_cast<double>(new_orders.load()))
        .Extra("payments", static_cast<double>(payments.load()))
        .Extra("order_status", static_cast<double>(statuses.load()))
        .Extra("resident_lines", static_cast<double>(lines.HostSize()));
    ctx.Report(row);
  }
}

TM2C_REGISTER_BENCH_NATIVE(
    "tpcc", "oltp",
    "TPC-C-style new-order/payment/order-status on warehouse KV + ordered order lines",
    &Run);

}  // namespace
}  // namespace tm2c

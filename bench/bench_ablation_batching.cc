// Ablation: write-lock batching (Section 3.3 claims batching "can
// significantly reduce the number of messages").
//
// The bank transfer writes two accounts; when both hash to the same DTM
// partition, batching turns two lock requests into one message. The
// 16-word writer (a MapReduce-style histogram merge) shows the effect much
// more strongly. Each row reports throughput plus messages per committed
// operation as an extra.
#include "bench/workloads.h"

namespace tm2c {
namespace {

BenchRow FinishRow(BenchRow row, const TmSystem& sys, SimTime duration,
                   const LatencySampler& lat) {
  const ThroughputResult r = Summarize(sys, duration);
  row.TxMerged(r.stats, r.ops_per_ms, lat);
  if (r.stats.commits > 0) {
    row.Extra("msgs_per_op", static_cast<double>(r.stats.messages_sent) /
                                 static_cast<double>(r.stats.commits));
  }
  return row;
}

BenchRow RunBank(BenchContext& ctx, bool batching, uint32_t cores) {
  RunSpec spec = ctx.Spec(30, 17);
  spec.total_cores = cores;
  spec.batch_write_locks = batching;
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.sim().allocator(), sys.sim().shmem(), 1024, 100);
  LatencySampler lat;
  InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, 0), &lat);
  sys.Run(spec.duration);
  BenchRow row;
  row.Param("workload", "bank-transfers")
      .Param("batching", batching ? "on" : "off")
      .Param("cores", uint64_t{cores});
  return FinishRow(std::move(row), sys, spec.duration, lat);
}

BenchRow RunWideWrites(BenchContext& ctx, bool batching, uint32_t cores) {
  // Each transaction writes 16 consecutive words — a wide write set, the
  // best case for batching.
  RunSpec spec = ctx.Spec(30, 19);
  spec.total_cores = cores;
  spec.batch_write_locks = batching;
  TmSystem sys(MakeConfig(spec));
  const uint64_t base = sys.sim().allocator().AllocGlobal(64 << 10);
  const uint64_t slots = (64 << 10) / kWordBytes;
  LatencySampler lat;
  InstallLoopBodies(sys, spec.duration, spec.seed,
                    [base, slots](CoreEnv&, TxRuntime& rt, Rng& rng) {
                      const uint64_t start = rng.NextBelow(slots - 16);
                      rt.Execute([&](Tx& tx) {
                        for (uint64_t w = 0; w < 16; ++w) {
                          tx.Write(base + (start + w) * kWordBytes, w);
                        }
                      });
                    },
                    &lat);
  sys.Run(spec.duration);
  BenchRow row;
  row.Param("workload", "16-word-writes")
      .Param("batching", batching ? "on" : "off")
      .Param("cores", uint64_t{cores});
  return FinishRow(std::move(row), sys, spec.duration, lat);
}

void Run(BenchContext& ctx) {
  for (const uint32_t cores : ctx.CoreSweep({8, 24, 48})) {
    for (const bool batching : {true, false}) {
      ctx.Report(RunBank(ctx, batching, cores));
      ctx.Report(RunWideWrites(ctx, batching, cores));
    }
  }
}

TM2C_REGISTER_BENCH("ablation_batching", "ablation",
                    "write-lock batching on/off: throughput and messages per operation", &Run);

}  // namespace
}  // namespace tm2c

// Ablation: the batched multi-address DTM protocol (Section 3.3 claims
// batching "can significantly reduce the number of messages").
//
// Sweeps TmConfig::max_batch over {1, 2, 4, 8, 16} on both platforms.
// max_batch = 1 is the unbatched wire protocol (one request/response round
// trip per stripe); larger values let the runtime flush up to that many
// pending acquisitions per responsible node as one kBatchAcquire message,
// paying one fixed message cost plus a small per-entry marshalling cost.
// Two workloads exercise both halves of the protocol: a 16-word writer
// (commit-time write-lock batching) and a 16-word ReadMany scanner
// (read-lock batching). Each row reports throughput plus messages per
// committed operation and the per-stripe mean acquire latency.
//
// The bench asserts the amortization curve it exists to measure: within
// each (platform, workload) sweep, throughput must be monotone
// non-decreasing in max_batch, and on the SCC the mean acquire latency at
// max_batch = 8 must be strictly below the unbatched latency.
#include <map>

#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint32_t kBatchSweep[] = {1, 2, 4, 8, 16};
constexpr uint64_t kRegionBytes = 1 << 20;
constexpr uint64_t kSpanWords = 16;

struct SweepPoint {
  double ops_per_ms = 0.0;
  double mean_acquire_us = 0.0;
};

BenchRow FinishRow(BenchRow row, const TmSystem& sys, SimTime duration,
                   const LatencySampler& lat, SweepPoint* point) {
  const ThroughputResult r = Summarize(sys, duration);
  row.TxMerged(r.stats, r.ops_per_ms, lat);
  if (r.stats.commits > 0) {
    row.Extra("msgs_per_op", static_cast<double>(r.stats.messages_sent) /
                                 static_cast<double>(r.stats.commits));
    row.Extra("batch_msgs_per_op", static_cast<double>(r.stats.batch_messages) /
                                       static_cast<double>(r.stats.commits));
  }
  point->ops_per_ms = r.ops_per_ms;
  if (r.stats.lock_acquires > 0) {
    point->mean_acquire_us =
        SimToMicros(r.stats.acquire_time) / static_cast<double>(r.stats.lock_acquires);
    row.Extra("mean_acquire_us", point->mean_acquire_us);
  }
  return row;
}

RunSpec SpecFor(BenchContext& ctx, const std::string& platform, uint32_t max_batch) {
  RunSpec spec = ctx.Spec(30, 17);
  spec.platform_name = platform;
  spec.total_cores = ctx.Cores(16);
  if (ctx.opts().service_cores == 0) {
    // A quarter of the machine serves: multi-stripe transactions then form
    // per-node groups large enough for batching to bite.
    spec.service_cores = spec.total_cores >= 8 ? spec.total_cores / 4 : 1;
  }
  spec.max_batch = max_batch;
  return spec;
}

BenchRow RunWideWrites(BenchContext& ctx, const std::string& platform, uint32_t max_batch,
                       SweepPoint* point) {
  // Each transaction writes 16 consecutive words — a wide write set whose
  // commit-time lock acquisition is the batch protocol's main user.
  RunSpec spec = SpecFor(ctx, platform, max_batch);
  TmSystem sys(MakeConfig(spec));
  const uint64_t base = sys.allocator().AllocGlobal(kRegionBytes);
  const uint64_t slots = kRegionBytes / kWordBytes;
  LatencySampler lat;
  InstallLoopBodies(sys, spec.duration, spec.seed,
                    [base, slots](CoreEnv&, TxRuntime& rt, Rng& rng) {
                      const uint64_t start = rng.NextBelow(slots - kSpanWords);
                      rt.Execute([&](Tx& tx) {
                        for (uint64_t w = 0; w < kSpanWords; ++w) {
                          tx.Write(base + (start + w) * kWordBytes, w);
                        }
                      });
                    },
                    &lat);
  sys.Run(spec.duration);
  BenchRow row;
  row.Param("workload", "16-word-writes")
      .Param("platform", platform)
      .Param("max_batch", uint64_t{max_batch})
      .Param("cores", uint64_t{spec.total_cores});
  return FinishRow(std::move(row), sys, spec.duration, lat, point);
}

BenchRow RunReadMany(BenchContext& ctx, const std::string& platform, uint32_t max_batch,
                     SweepPoint* point) {
  // Each transaction ReadMany's 16 consecutive words: the read-lock
  // acquisitions group by responsible node into kBatchAcquire messages.
  RunSpec spec = SpecFor(ctx, platform, max_batch);
  TmSystem sys(MakeConfig(spec));
  const uint64_t base = sys.allocator().AllocGlobal(kRegionBytes);
  const uint64_t slots = kRegionBytes / kWordBytes;
  LatencySampler lat;
  InstallLoopBodies(sys, spec.duration, spec.seed,
                    [base, slots](CoreEnv&, TxRuntime& rt, Rng& rng) {
                      const uint64_t start = rng.NextBelow(slots - kSpanWords);
                      std::vector<uint64_t> addrs;
                      addrs.reserve(kSpanWords);
                      for (uint64_t w = 0; w < kSpanWords; ++w) {
                        addrs.push_back(base + (start + w) * kWordBytes);
                      }
                      rt.Execute([&](Tx& tx) { (void)tx.ReadMany(addrs); });
                    },
                    &lat);
  sys.Run(spec.duration);
  BenchRow row;
  row.Param("workload", "16-word-readmany")
      .Param("platform", platform)
      .Param("max_batch", uint64_t{max_batch})
      .Param("cores", uint64_t{spec.total_cores});
  return FinishRow(std::move(row), sys, spec.duration, lat, point);
}

void Run(BenchContext& ctx) {
  // The self-asserts below encode properties of the default sweep
  // (calibrated core counts, service allocation, horizon and seed);
  // run_all.sh forwards arbitrary overrides to every bench, and a shrunken
  // or re-shaped run can legitimately invert adjacent sweep points without
  // the protocol being wrong, so the asserts only arm on default runs
  // (--smoke and --platform included).
  // Native runs never arm them either: wall-clock throughput on a shared
  // host is noisy enough to legitimately invert adjacent sweep points.
  const BenchOptions& o = ctx.opts();
  const bool assert_curve = o.cores == 0 && o.service_cores == 0 && o.duration_ms == 0.0 &&
                            o.seed == 0 && o.cm.empty() && !ctx.native();

  // The max_batch sweep is the point of this ablation, so it is not
  // smoke-reduced; --smoke still shrinks the horizon.
  for (const std::string& platform : ctx.PlatformSweep({"scc", "opteron"})) {
    for (const char* workload : {"writes", "readmany"}) {
      std::map<uint32_t, SweepPoint> curve;
      for (const uint32_t max_batch : kBatchSweep) {
        SweepPoint point;
        ctx.Report(workload[0] == 'w' ? RunWideWrites(ctx, platform, max_batch, &point)
                                      : RunReadMany(ctx, platform, max_batch, &point));
        curve[max_batch] = point;
      }
      if (!assert_curve) {
        continue;
      }
      // The amortization curve this bench exists to reproduce: batching
      // must never cost throughput...
      const SweepPoint* prev = nullptr;
      for (const auto& [max_batch, point] : curve) {
        (void)max_batch;
        if (prev != nullptr) {
          TM2C_CHECK_MSG(point.ops_per_ms >= prev->ops_per_ms,
                         "throughput regressed when max_batch grew");
        }
        prev = &point;
      }
      // ...and on the SCC an 8-deep batch must strictly beat the unbatched
      // per-stripe acquire latency (the acceptance curve of this PR).
      if (platform == "scc") {
        TM2C_CHECK_MSG(curve.at(8).mean_acquire_us < curve.at(1).mean_acquire_us,
                       "batched mean acquire latency not below the unbatched baseline");
      }
    }
  }
}

TM2C_REGISTER_BENCH_NATIVE(
    "ablation_batching", "ablation",
    "batched multi-address protocol: max_batch sweep on both platforms", &Run);

}  // namespace
}  // namespace tm2c

// Ablation: write-lock batching (Section 3.3 claims batching "can
// significantly reduce the number of messages").
//
// The bank transfer writes two accounts; when both hash to the same DTM
// partition, batching turns two lock requests into one message. The
// MapReduce-style histogram merge (26 writes) shows the effect much more
// strongly. We report throughput and total messages with batching on/off.
#include "bench/workloads.h"

namespace tm2c {
namespace {

struct Point {
  double throughput;
  uint64_t messages;
};

Point RunBank(bool batching, uint32_t cores) {
  RunSpec spec;
  spec.total_cores = cores;
  spec.batch_write_locks = batching;
  spec.duration = MillisToSim(30);
  spec.seed = 17;
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.sim().allocator(), sys.sim().shmem(), 1024, 100);
  InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, 0));
  sys.Run(spec.duration);
  const ThroughputResult r = Summarize(sys, spec.duration);
  return Point{r.ops_per_ms, r.stats.messages_sent};
}

Point RunWideWrites(bool batching, uint32_t cores) {
  // Each transaction writes 16 consecutive words — a wide write set, the
  // best case for batching.
  RunSpec spec;
  spec.total_cores = cores;
  spec.batch_write_locks = batching;
  spec.duration = MillisToSim(30);
  spec.seed = 19;
  TmSystem sys(MakeConfig(spec));
  const uint64_t base = sys.sim().allocator().AllocGlobal(64 << 10);
  const uint64_t slots = (64 << 10) / kWordBytes;
  InstallLoopBodies(sys, spec.duration, spec.seed,
                    [base, slots](CoreEnv&, TxRuntime& rt, Rng& rng) {
                      const uint64_t start = rng.NextBelow(slots - 16);
                      rt.Execute([&](Tx& tx) {
                        for (uint64_t w = 0; w < 16; ++w) {
                          tx.Write(base + (start + w) * kWordBytes, w);
                        }
                      });
                    });
  sys.Run(spec.duration);
  const ThroughputResult r = Summarize(sys, spec.duration);
  return Point{r.ops_per_ms, r.stats.messages_sent};
}

void Main() {
  TextTable table({"workload", "#cores", "batched ops/ms", "unbatched ops/ms", "batched msgs/op",
                   "unbatched msgs/op"});
  for (uint32_t cores : {8u, 24u, 48u}) {
    const Point on = RunBank(true, cores);
    const Point off = RunBank(false, cores);
    table.AddRow({"bank transfers", std::to_string(cores), TextTable::Num(on.throughput, 1),
                  TextTable::Num(off.throughput, 1),
                  TextTable::Num(static_cast<double>(on.messages) /
                                     (on.throughput * SimToMillis(MillisToSim(30))), 1),
                  TextTable::Num(static_cast<double>(off.messages) /
                                     (off.throughput * SimToMillis(MillisToSim(30))), 1)});
    const Point won = RunWideWrites(true, cores);
    const Point woff = RunWideWrites(false, cores);
    table.AddRow({"16-word writes", std::to_string(cores), TextTable::Num(won.throughput, 1),
                  TextTable::Num(woff.throughput, 1),
                  TextTable::Num(static_cast<double>(won.messages) /
                                     (won.throughput * SimToMillis(MillisToSim(30))), 1),
                  TextTable::Num(static_cast<double>(woff.messages) /
                                     (woff.throughput * SimToMillis(MillisToSim(30))), 1)});
  }
  table.Print("Ablation: write-lock batching");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

// Elasticity: live stripe migration under a skew shift.
//
// Two identical skew-shift runs, differing only in whether the migration
// policy is armed. The workload is a YCSB-F-style read-modify-write mix
// over three arrays: one large hash-routed array that spreads across both
// partitions, and two stripe-aligned hot ranges pinned to partition 0
// (the share-little layout a partitioned application would choose). For
// the first 40% of the horizon every core draws uniformly from the large
// array — balanced load, the baseline phase. Then the skew shifts: 90% of
// operations start hammering the two hot ranges, both served by partition
// 0, whose service core saturates while partition 1 idles.
//
//   static   migrate_check_every = 0: nobody rescues partition 0; the
//            post-shift window measures the saturated steady state T_sat.
//   elastic  the policy loop tallies per-range traffic and migrates the
//            hottest range off the saturated core; the two hot ranges end
//            up split across the partitions (the policy keeps shuttling
//            them, but the split states dominate the schedule) and the
//            post-shift window measures the recovered throughput T_rec.
//
// Both runs keep admission control armed (overload_high_water), so the
// saturated phase degrades by shedding instead of queueing without bound;
// each row reports the refusal counts behind its throughput.
//
// The bench self-asserts the claim it exists to measure (on default sim
// runs; overrides reshape the workload): T_rec >= 1.3 x T_sat, the shift
// really saturated the static run (post < pre), and the elastic run really
// migrated. A schedule-independent accounting check — every commit is one
// increment, so the array sum may trail the commit count only by the ops
// the horizon froze mid-flight — runs unconditionally.
#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint32_t kHotRanges = 2;
constexpr uint64_t kHotWords = 1024;     // per hot range; stripes = words here
constexpr uint64_t kUniformWords = 8192;  // hash-routed background array

struct PhasePoint {
  double pre_ops_per_ms = 0.0;   // balanced phase, before the skew shift
  double post_ops_per_ms = 0.0;  // measured window after shift + settle
  uint64_t migrations_completed = 0;
  uint64_t overload_refused = 0;
  uint64_t migrating_refused = 0;
};

BenchRow RunOne(BenchContext& ctx, bool elastic, PhasePoint* point) {
  RunSpec spec = ctx.Spec(40, 41);
  spec.total_cores = ctx.Cores(16);
  spec.service_cores = ctx.ServiceCores(2);
  TmSystemConfig cfg = MakeConfig(spec);
  // Elasticity knobs live on TmConfig, not RunSpec: set them after
  // MakeConfig so the shared overrides still apply. The policy window and
  // threshold are sized so a saturated service fires within a fraction of
  // the measurement window even under --smoke's 5 ms horizon.
  cfg.tm.migrate_check_every = elastic ? 128 : 0;
  cfg.tm.migrate_hot_threshold = elastic ? 48 : 0;
  cfg.tm.overload_high_water = 12;

  TmSystem sys(cfg);
  const uint64_t stripe = sys.address_map().stripe_bytes();

  // Hot ranges: stripe-aligned (over-allocate by one stripe, as the KV
  // store does for its slabs) and both pinned to partition 0 — the
  // colocation the skew shift turns into a hotspot.
  uint64_t hot_base[kHotRanges];
  for (uint32_t r = 0; r < kHotRanges; ++r) {
    const uint64_t bytes = kHotWords * kWordBytes;
    const uint64_t raw = sys.allocator().AllocGlobal(bytes + stripe);
    hot_base[r] = (raw + stripe - 1) / stripe * stripe;
    sys.address_map().AddOwnedRange(hot_base[r], bytes, 0);
    for (uint64_t w = 0; w < kHotWords; ++w) {
      sys.shmem().StoreWord(hot_base[r] + w * kWordBytes, 0);
    }
  }
  const uint64_t uniform_base = sys.allocator().AllocGlobal(kUniformWords * kWordBytes);
  for (uint64_t w = 0; w < kUniformWords; ++w) {
    sys.shmem().StoreWord(uniform_base + w * kWordBytes, 0);
  }

  // Phase boundaries in simulated time (bodies start at 0 on the sim
  // backend, so GlobalNow is phase position). The settle gap between the
  // shift and the measured window gives the elastic run its convergence
  // time — and is excluded from the static run's window identically.
  const SimTime shift_at = spec.duration * 2 / 5;
  const SimTime measure_from = shift_at + spec.duration / 5;
  const double pre_ms = SimToMillis(shift_at);
  const double post_ms = SimToMillis(spec.duration - measure_from);

  // Shared per-phase commit counters: the simulator is single-threaded,
  // and this bench is registered sim-only.
  uint64_t pre_ops = 0;
  uint64_t post_ops = 0;

  LatencySampler lat;
  InstallLoopBodies(
      sys, spec.duration, spec.seed,
      [&, uniform_base, shift_at, measure_from](CoreEnv& env, TxRuntime& rt, Rng& rng) {
        env.Compute(kOpOverheadCycles);
        uint64_t addr;
        if (env.GlobalNow() >= shift_at && !rng.NextPercent(10)) {
          const uint64_t r = rng.NextBelow(kHotRanges);
          addr = hot_base[r] + rng.NextBelow(kHotWords) * kWordBytes;
        } else {
          addr = uniform_base + rng.NextBelow(kUniformWords) * kWordBytes;
        }
        rt.Execute([addr](Tx& tx) { tx.Write(addr, tx.Read(addr) + 1); });
        const SimTime done = env.GlobalNow();
        if (done < shift_at) {
          ++pre_ops;
        } else if (done >= measure_from) {
          ++post_ops;
        }
      },
      &lat);
  sys.Run(spec.duration);

  // Exact accounting, schedule-independent: every commit incremented one
  // word by one, and the horizon can freeze at most one op per app core
  // between its write-back and its commit being counted.
  uint64_t sum = 0;
  for (uint32_t r = 0; r < kHotRanges; ++r) {
    for (uint64_t w = 0; w < kHotWords; ++w) {
      sum += sys.shmem().LoadWord(hot_base[r] + w * kWordBytes);
    }
  }
  for (uint64_t w = 0; w < kUniformWords; ++w) {
    sum += sys.shmem().LoadWord(uniform_base + w * kWordBytes);
  }
  const uint64_t commits = sys.MergedStats().commits;
  TM2C_CHECK_MSG(sum >= commits && sum - commits <= sys.num_app_cores(),
                 "increment sum does not account for every commit");

  point->pre_ops_per_ms = static_cast<double>(pre_ops) / pre_ms;
  point->post_ops_per_ms = static_cast<double>(post_ops) / post_ms;
  for (uint32_t p = 0; p < sys.deployment().num_service(); ++p) {
    point->migrations_completed += sys.ServiceAt(p).stats().migrations_completed;
    point->overload_refused += sys.ServiceAt(p).stats().overload_refused;
    point->migrating_refused += sys.ServiceAt(p).stats().migrating_refused;
  }

  BenchRow row;
  row.Param("policy", elastic ? "elastic" : "static")
      .Param("cores", uint64_t{spec.total_cores})
      .Param("migration", uint64_t{1});  // excluded from regression compare
  row.Tx(sys, spec.duration, lat);
  row.Extra("pre_shift_ops_per_ms", point->pre_ops_per_ms);
  row.Extra("post_shift_ops_per_ms", point->post_ops_per_ms);
  row.Extra("migrations_completed", static_cast<double>(point->migrations_completed));
  row.Extra("overload_refused", static_cast<double>(point->overload_refused));
  row.Extra("migrating_refused", static_cast<double>(point->migrating_refused));
  return row;
}

void Run(BenchContext& ctx) {
  // The asserts encode the default workload's expected shape; arbitrary
  // overrides (fewer cores, other CMs, pinned seeds) can legitimately
  // reshape it, so they only arm on default sim runs — mirroring the
  // ablation benches.
  const BenchOptions& o = ctx.opts();
  const bool assert_curve = o.cores == 0 && o.service_cores == 0 && o.duration_ms == 0.0 &&
                            o.seed == 0 && o.cm.empty() && !ctx.native();

  PhasePoint stat;
  ctx.Report(RunOne(ctx, /*elastic=*/false, &stat));
  PhasePoint elas;
  BenchRow row = RunOne(ctx, /*elastic=*/true, &elas);
  if (stat.post_ops_per_ms > 0.0) {
    row.Extra("recovery_ratio", elas.post_ops_per_ms / stat.post_ops_per_ms);
  }
  ctx.Report(std::move(row));

  if (!assert_curve) {
    return;
  }
  // The static run must actually be hurt by the shift (otherwise T_sat is
  // not a saturated steady state and the comparison is vacuous), and must
  // not migrate; the elastic run must.
  TM2C_CHECK_MSG(stat.post_ops_per_ms < stat.pre_ops_per_ms,
                 "the skew shift did not saturate the static run");
  TM2C_CHECK_MSG(stat.migrations_completed == 0,
                 "the static run migrated with the policy disabled");
  TM2C_CHECK_MSG(elas.migrations_completed >= 1, "the elastic run never migrated");
  // Until the first migration the two runs are byte-identical schedules,
  // so the balanced phase must measure identically.
  TM2C_CHECK_MSG(elas.pre_ops_per_ms == stat.pre_ops_per_ms,
                 "pre-shift schedules diverged before any migration");
  // The claim: migrating the hot ranges apart recovers at least 1.3x the
  // saturated throughput.
  TM2C_CHECK_MSG(elas.post_ops_per_ms >= 1.3 * stat.post_ops_per_ms,
                 "migration did not recover 1.3x the saturated throughput");
}

TM2C_REGISTER_BENCH("elastic", "ablation",
                    "skew-shift recovery: live stripe migration off a saturated core", &Run);

}  // namespace
}  // namespace tm2c

// Figure 4(c): eager vs lazy write-lock acquisition on the hash table with
// move operations (30% updates, 20% of all operations are moves).
//
// Expected shape: similar at low core counts, lazy wins under contention
// because write locks are held for less time, giving a higher commit rate.
#include "bench/workloads.h"

namespace tm2c {
namespace {

struct Point {
  double throughput;
  double commit_rate;
};

// The paper labels the series "64" and "128"; we read those as the initial
// element counts over a small (16-bucket) array — the contention level that
// reproduces the paper's 50-100%% commit-rate band. 30%% of operations are
// updates; moves (which write in the middle of the transaction and thus
// separate eager from lazy acquisition) are 20%% of all operations.
Point RunOne(WriteAcquire acquire, uint32_t elements, uint32_t cores) {
  RunSpec spec;
  spec.total_cores = cores;
  spec.write_acquire = acquire;
  spec.duration = MillisToSim(25);
  spec.seed = 21;
  TmSystem sys(MakeConfig(spec));
  ShmHashTable table(sys.sim().allocator(), sys.sim().shmem(), /*num_buckets=*/8);
  Rng fill_rng(23);
  const uint64_t key_range =
      FillHashTable(table, sys.sim().allocator(), fill_rng, elements);
  InstallLoopBodies(sys, spec.duration, spec.seed,
                    HashTableMixWithMoves(&table, /*update_pct=*/30, /*move_pct=*/20, key_range));
  sys.Run(spec.duration);
  const ThroughputResult r = Summarize(sys, spec.duration);
  return Point{r.ops_per_ms, 100.0 * r.commit_rate};
}

void Main() {
  TextTable tput({"#cores", "eager, 64", "lazy, 64", "eager, 128", "lazy, 128"});
  TextTable rate({"#cores", "eager, 64", "lazy, 64", "eager, 128", "lazy, 128"});
  for (uint32_t cores : {2u, 4u, 8u, 16u, 32u, 48u}) {
    const Point e64 = RunOne(WriteAcquire::kEager, 64, cores);
    const Point l64 = RunOne(WriteAcquire::kLazy, 64, cores);
    const Point e128 = RunOne(WriteAcquire::kEager, 128, cores);
    const Point l128 = RunOne(WriteAcquire::kLazy, 128, cores);
    tput.AddRow({std::to_string(cores), TextTable::Num(e64.throughput, 1),
                 TextTable::Num(l64.throughput, 1), TextTable::Num(e128.throughput, 1),
                 TextTable::Num(l128.throughput, 1)});
    rate.AddRow({std::to_string(cores), TextTable::Num(e64.commit_rate, 1),
                 TextTable::Num(l64.commit_rate, 1), TextTable::Num(e128.commit_rate, 1),
                 TextTable::Num(l128.commit_rate, 1)});
  }
  tput.Print("Figure 4(c) left: hash table with moves, throughput (ops/ms)");
  rate.Print("Figure 4(c) right: commit rate (%)");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

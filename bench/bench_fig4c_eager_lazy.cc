// Figure 4(c): eager vs lazy write-lock acquisition on the hash table with
// move operations (30% updates, 20% of all operations are moves).
//
// Expected shape: similar at low core counts, lazy wins under contention
// because write locks are held for less time, giving a higher commit rate.
//
// The paper labels the series "64" and "128"; we read those as the initial
// element counts over a small (8-bucket) array — the contention level that
// reproduces the paper's 50-100% commit-rate band.
#include "bench/workloads.h"

namespace tm2c {
namespace {

void Run(BenchContext& ctx) {
  for (const uint32_t cores : ctx.CoreSweep({2, 4, 8, 16, 32, 48})) {
    for (const uint32_t elements : ctx.Sweep<uint32_t>({64, 128})) {
      for (const WriteAcquire acquire : {WriteAcquire::kEager, WriteAcquire::kLazy}) {
        RunSpec spec = ctx.Spec(25, 21);
        spec.total_cores = cores;
        spec.write_acquire = acquire;
        TmSystem sys(MakeConfig(spec));
        ShmHashTable table(sys.allocator(), sys.shmem(), /*num_buckets=*/8);
        Rng fill_rng(23);
        const uint64_t key_range =
            FillHashTable(table, sys.allocator(), fill_rng, elements);
        LatencySampler lat;
        InstallLoopBodies(
            sys, spec.duration, spec.seed,
            HashTableMixWithMoves(&table, /*update_pct=*/30, /*move_pct=*/20, key_range), &lat);
        sys.Run(spec.duration);
        BenchRow row;
        row.Param("acquire", acquire == WriteAcquire::kEager ? "eager" : "lazy")
            .Param("elements", uint64_t{elements})
            .Param("cores", uint64_t{cores})
            .Tx(sys, spec.duration, lat);
        ctx.Report(row);
      }
    }
  }
}

TM2C_REGISTER_BENCH("fig4c_eager_lazy", "4(c)",
                    "hash table with moves: eager vs lazy write-lock acquisition", &Run);

}  // namespace
}  // namespace tm2c

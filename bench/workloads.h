// The paper's workload mixes, shared by the figure benches.
#ifndef TM2C_BENCH_WORKLOADS_H_
#define TM2C_BENCH_WORKLOADS_H_

#include "bench/bench_util.h"
#include "src/apps/bank.h"
#include "src/apps/hash_table.h"
#include "src/apps/linked_list.h"

namespace tm2c {

// Fixed per-operation application cost, in core cycles: the benchmark
// harness work (operation draw, key generation, hashing, bookkeeping) that
// the 533 MHz in-order P54C pays around every operation, transactional or
// not. Calibrated so that absolute throughputs line up with the paper:
// with ~10k cycles (~19 us on the SCC) the dedicated 48-core hash table
// reaches the paper's ~250 ops/ms (Figure 4(a)) while the lock-based bank
// peaks near the paper's ~350 ops/ms (Figure 5(d)), because the harness
// cost sits outside the lock's critical section.
constexpr uint64_t kOpOverheadCycles = 10000;

// Synchrobench-style hash table mix: `update_pct` of operations try to
// modify (half add, half remove — a failed update counts as a read-only
// transaction, as in the paper); the rest are contains. Keys are uniform in
// [1, key_range].
inline OpFn HashTableMix(const ShmHashTable* table, uint32_t update_pct, uint64_t key_range) {
  return [table, update_pct, key_range](CoreEnv& env, TxRuntime& rt, Rng& rng) {
    env.Compute(kOpOverheadCycles);
    const uint64_t key = 1 + rng.NextBelow(key_range);
    if (rng.NextPercent(update_pct)) {
      if (rng.NextPercent(50)) {
        table->Add(rt, env.allocator(), key);
      } else {
        table->Remove(rt, key);
      }
    } else {
      table->Contains(rt, key);
    }
  };
}

// Figure 4(c)'s mix: `move_pct` moves plus (update_pct - move_pct)
// add/remove updates, the rest contains.
inline OpFn HashTableMixWithMoves(const ShmHashTable* table, uint32_t update_pct,
                                  uint32_t move_pct, uint64_t key_range) {
  return [table, update_pct, move_pct, key_range](CoreEnv& env, TxRuntime& rt, Rng& rng) {
    env.Compute(kOpOverheadCycles);
    const uint64_t key = 1 + rng.NextBelow(key_range);
    const uint64_t roll = rng.NextBelow(100);
    if (roll < move_pct) {
      uint64_t to = 1 + rng.NextBelow(key_range);
      if (to == key) {
        to = 1 + to % key_range;
      }
      table->Move(rt, env.allocator(), key, to);
    } else if (roll < update_pct) {
      if (rng.NextPercent(50)) {
        table->Add(rt, env.allocator(), key);
      } else {
        table->Remove(rt, key);
      }
    } else {
      table->Contains(rt, key);
    }
  };
}

// Populates a table to `elements` keys drawn from [1, 2*elements] so the
// size stays roughly stable under a balanced add/remove mix.
inline uint64_t FillHashTable(ShmHashTable& table, ShmAllocator& allocator, Rng& rng,
                              uint64_t elements) {
  const uint64_t key_range = 2 * elements;
  uint64_t added = 0;
  while (added < elements) {
    if (table.HostAdd(allocator, 1 + rng.NextBelow(key_range))) {
      ++added;
    }
  }
  return key_range;
}

// Bank mix: `balance_pct` balance scans, the rest single-unit transfers
// between uniformly random accounts (Section 5.3).
inline OpFn BankMix(const Bank* bank, uint32_t balance_pct) {
  return [bank, balance_pct](CoreEnv& env, TxRuntime& rt, Rng& rng) {
    env.Compute(kOpOverheadCycles);
    if (balance_pct > 0 && rng.NextPercent(balance_pct)) {
      rt.Execute([bank](Tx& tx) { (void)bank->TxBalance(tx); });
      return;
    }
    const uint32_t n = bank->num_accounts();
    const auto from = static_cast<uint32_t>(rng.NextBelow(n));
    auto to = static_cast<uint32_t>(rng.NextBelow(n));
    if (to == from) {
      to = (to + 1) % n;
    }
    rt.Execute([&](Tx& tx) { bank->TxTransfer(tx, from, to, 1); });
  };
}

// Lock-based bank mix for the Figure 5(d) baseline. Counts operations into
// `*ops` (shared across cores; the simulator is single-threaded).
inline OpFn BankLockMix(const Bank* bank, uint32_t balance_pct, uint64_t* ops) {
  return [bank, balance_pct, ops](CoreEnv& env, TxRuntime&, Rng& rng) {
    env.Compute(kOpOverheadCycles);
    if (balance_pct > 0 && rng.NextPercent(balance_pct)) {
      (void)bank->LockBalance(env);
      ++*ops;
      return;
    }
    const uint32_t n = bank->num_accounts();
    const auto from = static_cast<uint32_t>(rng.NextBelow(n));
    auto to = static_cast<uint32_t>(rng.NextBelow(n));
    if (to == from) {
      to = (to + 1) % n;
    }
    bank->LockTransfer(env, from, to, 1);
    ++*ops;
  };
}

// Linked-list mix (Sections 6.2, 7.2).
inline OpFn ListMix(const ShmSortedList* list, uint32_t update_pct, uint64_t key_range) {
  return [list, update_pct, key_range](CoreEnv& env, TxRuntime& rt, Rng& rng) {
    env.Compute(kOpOverheadCycles);
    const uint64_t key = 1 + rng.NextBelow(key_range);
    if (rng.NextPercent(update_pct)) {
      if (rng.NextPercent(50)) {
        list->Add(rt, env.allocator(), key);
      } else {
        list->Remove(rt, key);
      }
    } else {
      list->Contains(rt, key);
    }
  };
}

inline uint64_t FillList(ShmSortedList& list, ShmAllocator& allocator, Rng& rng,
                         uint64_t elements) {
  const uint64_t key_range = 2 * elements;
  uint64_t added = 0;
  while (added < elements) {
    if (list.HostAdd(allocator, 1 + rng.NextBelow(key_range))) {
      ++added;
    }
  }
  return key_range;
}

}  // namespace tm2c

#endif  // TM2C_BENCH_WORKLOADS_H_

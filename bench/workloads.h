// The paper's workload mixes, shared by the figure benches, plus the
// YCSB-style key-value mixes for bench_ycsb.
#ifndef TM2C_BENCH_WORKLOADS_H_
#define TM2C_BENCH_WORKLOADS_H_

#include <cmath>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/bank.h"
#include "src/apps/hash_table.h"
#include "src/apps/kvstore.h"
#include "src/apps/linked_list.h"

namespace tm2c {

// Fixed per-operation application cost, in core cycles: the benchmark
// harness work (operation draw, key generation, hashing, bookkeeping) that
// the 533 MHz in-order P54C pays around every operation, transactional or
// not. Calibrated so that absolute throughputs line up with the paper:
// with ~10k cycles (~19 us on the SCC) the dedicated 48-core hash table
// reaches the paper's ~250 ops/ms (Figure 4(a)) while the lock-based bank
// peaks near the paper's ~350 ops/ms (Figure 5(d)), because the harness
// cost sits outside the lock's critical section.
constexpr uint64_t kOpOverheadCycles = 10000;

// Synchrobench-style hash table mix: `update_pct` of operations try to
// modify (half add, half remove — a failed update counts as a read-only
// transaction, as in the paper); the rest are contains. Keys are uniform in
// [1, key_range].
inline OpFn HashTableMix(const ShmHashTable* table, uint32_t update_pct, uint64_t key_range) {
  return [table, update_pct, key_range](CoreEnv& env, TxRuntime& rt, Rng& rng) {
    env.Compute(kOpOverheadCycles);
    const uint64_t key = 1 + rng.NextBelow(key_range);
    if (rng.NextPercent(update_pct)) {
      if (rng.NextPercent(50)) {
        table->Add(rt, env.allocator(), key);
      } else {
        table->Remove(rt, key);
      }
    } else {
      table->Contains(rt, key);
    }
  };
}

// Figure 4(c)'s mix: `move_pct` moves plus (update_pct - move_pct)
// add/remove updates, the rest contains.
inline OpFn HashTableMixWithMoves(const ShmHashTable* table, uint32_t update_pct,
                                  uint32_t move_pct, uint64_t key_range) {
  return [table, update_pct, move_pct, key_range](CoreEnv& env, TxRuntime& rt, Rng& rng) {
    env.Compute(kOpOverheadCycles);
    const uint64_t key = 1 + rng.NextBelow(key_range);
    const uint64_t roll = rng.NextBelow(100);
    if (roll < move_pct) {
      uint64_t to = 1 + rng.NextBelow(key_range);
      if (to == key) {
        to = 1 + to % key_range;
      }
      table->Move(rt, env.allocator(), key, to);
    } else if (roll < update_pct) {
      if (rng.NextPercent(50)) {
        table->Add(rt, env.allocator(), key);
      } else {
        table->Remove(rt, key);
      }
    } else {
      table->Contains(rt, key);
    }
  };
}

// Populates a table to `elements` keys drawn from [1, 2*elements] so the
// size stays roughly stable under a balanced add/remove mix.
inline uint64_t FillHashTable(ShmHashTable& table, ShmAllocator& allocator, Rng& rng,
                              uint64_t elements) {
  const uint64_t key_range = 2 * elements;
  uint64_t added = 0;
  while (added < elements) {
    if (table.HostAdd(allocator, 1 + rng.NextBelow(key_range))) {
      ++added;
    }
  }
  return key_range;
}

// Bank mix: `balance_pct` balance scans, the rest single-unit transfers
// between uniformly random accounts (Section 5.3).
inline OpFn BankMix(const Bank* bank, uint32_t balance_pct) {
  return [bank, balance_pct](CoreEnv& env, TxRuntime& rt, Rng& rng) {
    env.Compute(kOpOverheadCycles);
    if (balance_pct > 0 && rng.NextPercent(balance_pct)) {
      rt.Execute([bank](Tx& tx) { (void)bank->TxBalance(tx); });
      return;
    }
    const uint32_t n = bank->num_accounts();
    const auto from = static_cast<uint32_t>(rng.NextBelow(n));
    auto to = static_cast<uint32_t>(rng.NextBelow(n));
    if (to == from) {
      to = (to + 1) % n;
    }
    rt.Execute([&](Tx& tx) { bank->TxTransfer(tx, from, to, 1); });
  };
}

// Lock-based bank mix for the Figure 5(d) baseline. Counts operations into
// `*ops` (shared across cores; the simulator is single-threaded).
inline OpFn BankLockMix(const Bank* bank, uint32_t balance_pct, uint64_t* ops) {
  return [bank, balance_pct, ops](CoreEnv& env, TxRuntime&, Rng& rng) {
    env.Compute(kOpOverheadCycles);
    if (balance_pct > 0 && rng.NextPercent(balance_pct)) {
      (void)bank->LockBalance(env);
      ++*ops;
      return;
    }
    const uint32_t n = bank->num_accounts();
    const auto from = static_cast<uint32_t>(rng.NextBelow(n));
    auto to = static_cast<uint32_t>(rng.NextBelow(n));
    if (to == from) {
      to = (to + 1) % n;
    }
    bank->LockTransfer(env, from, to, 1);
    ++*ops;
  };
}

// Linked-list mix (Sections 6.2, 7.2).
inline OpFn ListMix(const ShmSortedList* list, uint32_t update_pct, uint64_t key_range) {
  return [list, update_pct, key_range](CoreEnv& env, TxRuntime& rt, Rng& rng) {
    env.Compute(kOpOverheadCycles);
    const uint64_t key = 1 + rng.NextBelow(key_range);
    if (rng.NextPercent(update_pct)) {
      if (rng.NextPercent(50)) {
        list->Add(rt, env.allocator(), key);
      } else {
        list->Remove(rt, key);
      }
    } else {
      list->Contains(rt, key);
    }
  };
}

inline uint64_t FillList(ShmSortedList& list, ShmAllocator& allocator, Rng& rng,
                         uint64_t elements) {
  const uint64_t key_range = 2 * elements;
  uint64_t added = 0;
  while (added < elements) {
    if (list.HostAdd(allocator, 1 + rng.NextBelow(key_range))) {
      ++added;
    }
  }
  return key_range;
}

// ---------------------------------------------------------------------------
// YCSB-style key-value workload (bench_ycsb)
// ---------------------------------------------------------------------------

// Zipfian rank generator over [0, n), Gray et al.'s "Quickly generating
// billion-record synthetic databases" rejection-free algorithm (the one
// YCSB uses). theta in (0, 1); YCSB's default skew is theta = 0.99, where
// the hottest key draws a few percent of all requests. Ranks are scrambled
// through a full-avalanche hash before use (YCSB's "scrambled zipfian") so
// the hot keys spread over the whole keyspace instead of clustering at the
// low ids — without it, hot keys would also share store partitions.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
    TM2C_CHECK(n >= 2 && theta > 0.0 && theta < 1.0);
    zetan_ = Zeta(n, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - Zeta(2, theta) / zetan_);
  }

  // Next rank, 0 = the hottest. O(1) per draw.
  uint64_t NextRank(Rng& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    const auto rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0.0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_, alpha_, zetan_, eta_;
};

// Draws keys in [1, num_keys] (keys are non-zero), either uniformly or
// zipfian-skewed with scrambling. theta == 0 selects uniform. Stateless
// per draw, so one shared instance serves every core.
class KeyChooser {
 public:
  KeyChooser(uint64_t num_keys, double theta) : num_keys_(num_keys) {
    if (theta > 0.0) {
      zipf_ = std::make_unique<ZipfianGenerator>(num_keys, theta);
    }
  }

  uint64_t Next(Rng& rng) const {
    if (zipf_ == nullptr) {
      return 1 + rng.NextBelow(num_keys_);
    }
    // FNV-1a-style scramble of the rank (see ZipfianGenerator).
    uint64_t h = zipf_->NextRank(rng) * 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    return 1 + h % num_keys_;
  }

  uint64_t num_keys() const { return num_keys_; }

 private:
  uint64_t num_keys_;
  std::unique_ptr<ZipfianGenerator> zipf_;
};

// The YCSB core workload mixes, written against TxStoreApi so the same
// mix logic measures either index structure (`--index={hash,btree}`).
// Every point operation targets one key drawn from the chooser. Updates
// overwrite the whole value (YCSB writes whole records); workload F's
// read-modify-write increments the first value word inside one
// transaction; workload E's scans read the next `scan_len` entries from a
// zipfian-drawn start key via TxStoreApi::Scan — a real ordered range scan
// on the B+-tree, the hash store's honest bounded partition traversal on
// the hash index (see src/apps/tx_store_api.h).
//
//   A: 50% read / 50% update   (session store)
//   B: 95% read /  5% update   (photo tagging)
//   C: 100% read               (profile cache)
//   E:  5% update / 95% scan   (threaded conversations)
//   F: 50% read / 50% RMW      (user database)
struct YcsbMixSpec {
  const char* name;
  uint32_t read_pct;
  uint32_t update_pct;
  uint32_t rmw_pct;
  uint32_t scan_pct;
};

inline const std::vector<YcsbMixSpec>& YcsbCoreMixes() {
  static const std::vector<YcsbMixSpec> mixes = {
      {"A", 50, 50, 0, 0},
      {"B", 95, 5, 0, 0},
      {"C", 100, 0, 0, 0},
      {"E", 0, 5, 0, 95},
      {"F", 50, 0, 50, 0},
  };
  return mixes;
}

inline OpFn YcsbMix(TxStoreApi* store, const YcsbMixSpec& mix,
                    std::shared_ptr<const KeyChooser> keys, uint32_t scan_len = 1) {
  // The update-value and scan-result buffers live in the lambda (one per
  // core: InstallLoopBodies copies the OpFn per body) so value generation
  // adds no per-op allocation. The store wrappers' ReadMany plumbing still
  // allocates small scratch vectors per call — equally on every path and
  // every bench that uses the Tx API, so relative numbers are unaffected.
  return [store, mix, keys, scan_len,
          value = std::vector<uint64_t>(store->value_words()),
          scanned = std::vector<KvEntry>()](
             CoreEnv& env, TxRuntime& rt, Rng& rng) mutable {
    env.Compute(kOpOverheadCycles);
    const uint64_t key = keys->Next(rng);
    const uint64_t roll = rng.NextBelow(100);
    if (roll < mix.read_pct) {
      store->Get(rt, key, nullptr);
    } else if (roll < mix.read_pct + mix.update_pct) {
      for (uint64_t& w : value) {
        w = rng.Next();
      }
      store->Put(rt, key, value.data());
    } else if (roll < mix.read_pct + mix.update_pct + mix.rmw_pct) {
      store->ReadModifyWrite(rt, key, [](uint64_t* v) { v[0] += 1; });
    } else {
      scanned = store->Scan(rt, key, scan_len);
    }
  };
}

// Load phase: every key in [1, num_keys] resident, with a deterministic
// value derived from the key (host-side, zero simulated cost).
inline void FillStore(TxStoreApi& store, uint64_t num_keys) {
  std::vector<uint64_t> value(store.value_words());
  for (uint64_t key = 1; key <= num_keys; ++key) {
    for (uint32_t w = 0; w < store.value_words(); ++w) {
      value[w] = key * 1000003 + w;
    }
    store.HostPut(key, value.data());
  }
}

}  // namespace tm2c

#endif  // TM2C_BENCH_WORKLOADS_H_

// Ablation: Offset-Greedy under clock imperfection (Section 4.3).
//
// Offset-Greedy estimates transaction start times by subtracting a
// piggybacked offset from the service core's local clock. Constant skew
// cancels out of the offsets, but (a) the message delay is silently folded
// into every estimate, and (b) clock *drift* corrupts the measured offsets
// themselves. We sweep per-core drift and report abort rates and the
// worst-case retry count, with FairCM (which uses no clocks across nodes)
// as the control.
#include "bench/workloads.h"

namespace tm2c {
namespace {

BenchRow RunOne(BenchContext& ctx, CmKind cm, double drift_ppm, const std::string& label) {
  RunSpec spec = ctx.Spec(30, 29);
  spec.total_cores = ctx.Cores(32);
  spec.cm = cm;
  TmSystemConfig cfg = MakeConfig(spec);
  cfg.sim.clock_drift_ppm = drift_ppm;
  cfg.sim.clock_skew_max_us = 200.0;
  TmSystem sys(std::move(cfg));
  Bank bank(sys.allocator(), sys.shmem(), 256, 100);
  LatencySampler lat;
  InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, 10), &lat);
  sys.Run(spec.duration);
  BenchRow row;
  row.Param("cm", label).Param("drift_ppm", static_cast<uint64_t>(drift_ppm));
  row.Tx(sys, spec.duration, lat);
  row.Extra("max_attempts", static_cast<double>(sys.MergedStats().max_attempts_per_tx));
  return row;
}

void Run(BenchContext& ctx) {
  // --cm swaps the CM under test; the clock-free FairCM control row only
  // makes sense against the default subject, so it is skipped on override.
  for (const CmKind cm : ctx.CmSweep({CmKind::kOffsetGreedy})) {
    for (const double drift : ctx.Sweep<double>({0.0, 1000.0, 100000.0})) {
      ctx.Report(RunOne(ctx, cm, drift, CmKindName(cm)));
    }
  }
  if (ctx.opts().cm.empty()) {
    ctx.Report(RunOne(ctx, CmKind::kFairCm, 100000.0, "faircm-control"));
  }
}

TM2C_REGISTER_BENCH("ablation_skew", "ablation",
                    "Offset-Greedy sensitivity to clock drift (bank, 32 cores)", &Run);

}  // namespace
}  // namespace tm2c

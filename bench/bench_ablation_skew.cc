// Ablation: Offset-Greedy under clock imperfection (Section 4.3).
//
// Offset-Greedy estimates transaction start times by subtracting a
// piggybacked offset from the service core's local clock. Constant skew
// cancels out of the offsets, but (a) the message delay is silently folded
// into every estimate, and (b) clock *drift* corrupts the measured offsets
// themselves. We sweep per-core drift and report abort rates and the
// worst-case retry count, with FairCM (which uses no clocks across nodes)
// as the control.
#include "bench/workloads.h"

namespace tm2c {
namespace {

struct Point {
  double commit_rate;
  uint64_t max_attempts;
  double throughput;
};

Point RunOne(CmKind cm, double drift_ppm) {
  RunSpec spec;
  spec.total_cores = 32;
  spec.cm = cm;
  spec.duration = MillisToSim(30);
  spec.seed = 29;
  TmSystemConfig cfg = MakeConfig(spec);
  cfg.sim.clock_drift_ppm = drift_ppm;
  cfg.sim.clock_skew_max_us = 200.0;
  TmSystem sys(std::move(cfg));
  Bank bank(sys.sim().allocator(), sys.sim().shmem(), 256, 100);
  InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, 10));
  sys.Run(spec.duration);
  const ThroughputResult r = Summarize(sys, spec.duration);
  return Point{100.0 * r.commit_rate, r.stats.max_attempts_per_tx, r.ops_per_ms};
}

void Main() {
  TextTable table({"CM", "drift (ppm)", "commit rate (%)", "max attempts", "ops/ms"});
  for (double drift : {0.0, 1000.0, 100000.0}) {
    const Point og = RunOne(CmKind::kOffsetGreedy, drift);
    table.AddRow({"offset-greedy", TextTable::Num(drift, 0), TextTable::Num(og.commit_rate, 1),
                  std::to_string(og.max_attempts), TextTable::Num(og.throughput, 2)});
  }
  const Point fair = RunOne(CmKind::kFairCm, 100000.0);
  table.AddRow({"faircm (control)", "100000", TextTable::Num(fair.commit_rate, 1),
                std::to_string(fair.max_attempts), TextTable::Num(fair.throughput, 2)});
  table.Print("Ablation: Offset-Greedy sensitivity to clock drift (bank, 32 cores)");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

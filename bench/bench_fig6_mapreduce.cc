// Figure 6: the MapReduce letter-count application.
//
//  (a) duration vs number of cores, for three input sizes;
//  (b) speedup over sequential vs input size, for 4/8/16 KB chunk sizes.
//
// The paper ran 256MB..2GB inputs on the SCC; we scale inputs by 1/64
// (4MB..32MB) to keep the bench short and label rows with the paper-scale
// names. One core runs the DTM service, all remaining cores are workers
// (Section 5.4). Expected shapes: near-linear scaling with cores, and 8KB
// chunks beating both 4KB (claim overhead) and 16KB (falls out of the
// effective L1 share).
#include "bench/bench_util.h"
#include "src/apps/mapreduce.h"

namespace tm2c {
namespace {

constexpr uint64_t kScale = 64;  // paper input bytes / our input bytes

SimTime RunParallel(uint64_t input_bytes, uint32_t cores, uint64_t chunk_bytes) {
  RunSpec spec;
  spec.total_cores = cores;
  spec.service_cores = 1;
  spec.shmem_bytes = 4 * input_bytes + (8 << 20);
  spec.seed = 71;
  TmSystem sys(MakeConfig(spec));
  MapReduceConfig mr;
  mr.input_bytes = input_bytes;
  MapReduceApp app(sys.sim().allocator(), sys.sim().shmem(), mr);
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&app, chunk_bytes](CoreEnv& env, TxRuntime& rt) {
      app.RunWorker(env, rt, chunk_bytes);
    });
  }
  const SimTime t = sys.Run();
  TM2C_CHECK(app.HostResultCounts() == app.HostExpectedCounts());
  return t;
}

SimTime RunSequentialOnce(uint64_t input_bytes) {
  RunSpec spec;
  spec.total_cores = 2;
  spec.service_cores = 1;
  spec.shmem_bytes = 4 * input_bytes + (8 << 20);
  spec.seed = 71;
  TmSystem sys(MakeConfig(spec));
  MapReduceConfig mr;
  mr.input_bytes = input_bytes;
  MapReduceApp app(sys.sim().allocator(), sys.sim().shmem(), mr);
  sys.SetAppBody(0, [&app](CoreEnv& env, TxRuntime&) { app.RunSequential(env); });
  return sys.Run();
}

std::string PaperSize(uint64_t input_bytes) {
  const uint64_t mb = input_bytes * kScale >> 20;
  if (mb >= 1024) {
    return std::to_string(mb >> 10) + "GB*";
  }
  return std::to_string(mb) + "MB*";
}

void Main() {
  // Figure 6(a): duration vs cores (8KB chunks).
  {
    const uint64_t sizes[] = {4ull << 20, 8ull << 20, 16ull << 20};
    TextTable table({"#cores", PaperSize(sizes[0]), PaperSize(sizes[1]), PaperSize(sizes[2])});
    for (uint32_t cores : {2u, 4u, 8u, 16u, 32u, 48u}) {
      std::vector<std::string> row{std::to_string(cores)};
      for (uint64_t size : sizes) {
        row.push_back(TextTable::Num(SimToSeconds(RunParallel(size, cores, 8 << 10)), 2));
      }
      table.AddRow(std::move(row));
    }
    table.Print(
        "Figure 6(a): MapReduce duration (simulated s) vs cores; * = paper-scale name, "
        "inputs scaled 1/64");
  }

  // Figure 6(b): speedup over sequential vs input size per chunk size, on
  // 48 cores (1 DTM + 47 workers).
  {
    TextTable table({"input size", "4KB", "8KB", "16KB"});
    for (uint64_t size : {4ull << 20, 8ull << 20, 16ull << 20, 32ull << 20}) {
      std::vector<std::string> row{PaperSize(size)};
      const SimTime seq = RunSequentialOnce(size);
      for (uint64_t chunk : {4u << 10, 8u << 10, 16u << 10}) {
        const SimTime par = RunParallel(size, 48, chunk);
        row.push_back(TextTable::Num(static_cast<double>(seq) / static_cast<double>(par), 1));
      }
      table.AddRow(std::move(row));
    }
    table.Print("Figure 6(b): MapReduce speedup over sequential, by chunk size (48 cores)");
  }
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

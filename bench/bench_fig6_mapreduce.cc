// Figure 6: the MapReduce letter-count application.
//
//  (a) duration vs number of cores, for three input sizes;
//  (b) speedup over sequential vs input size, for 4/8/16 KB chunk sizes.
//
// The paper ran 256MB..2GB inputs on the SCC; we scale inputs by 1/64
// (4MB..32MB) to keep the bench short and label rows with the paper-scale
// names. One core runs the DTM service, all remaining cores are workers
// (Section 5.4). Expected shapes: near-linear scaling with cores, and 8KB
// chunks beating both 4KB (claim overhead) and 16KB (falls out of the
// effective L1 share).
//
// A MapReduce "operation" is one whole job, so each row's latency is the
// job duration (one sample) and throughput is raw jobs/ms; the processed
// input size lives in the input_mb extra (plus duration_s and, for part
// 6b, speedup over sequential).
#include "bench/bench_util.h"
#include "src/apps/mapreduce.h"

namespace tm2c {
namespace {

constexpr uint64_t kScale = 64;  // paper input bytes / our input bytes

SimTime RunParallel(BenchContext& ctx, uint64_t input_bytes, uint32_t cores,
                    uint64_t chunk_bytes) {
  RunSpec spec = ctx.Spec(0, 71);  // runs to completion, no horizon
  spec.total_cores = cores;
  spec.service_cores = ctx.ServiceCores(1);  // tx load is low (Section 5.4)
  spec.shmem_bytes = 4 * input_bytes + (8 << 20);
  TmSystem sys(MakeConfig(spec));
  MapReduceConfig mr;
  mr.input_bytes = input_bytes;
  MapReduceApp app(sys.allocator(), sys.shmem(), mr);
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&app, chunk_bytes](CoreEnv& env, TxRuntime& rt) {
      app.RunWorker(env, rt, chunk_bytes);
    });
  }
  const SimTime t = sys.Run();
  TM2C_CHECK(app.HostResultCounts() == app.HostExpectedCounts());
  return t;
}

SimTime RunSequentialOnce(BenchContext& ctx, uint64_t input_bytes) {
  RunSpec spec = ctx.Spec(0, 71);
  spec.total_cores = 2;
  spec.service_cores = 1;  // the sequential baseline is one worker by design
  spec.shmem_bytes = 4 * input_bytes + (8 << 20);
  TmSystem sys(MakeConfig(spec));
  MapReduceConfig mr;
  mr.input_bytes = input_bytes;
  MapReduceApp app(sys.allocator(), sys.shmem(), mr);
  sys.SetAppBody(0, [&app](CoreEnv& env, TxRuntime&) { app.RunSequential(env); });
  return sys.Run();
}

std::string PaperSize(uint64_t input_bytes) {
  const uint64_t mb = input_bytes * kScale >> 20;
  if (mb >= 1024) {
    return std::to_string(mb >> 10) + "GB*";
  }
  return std::to_string(mb) + "MB*";
}

BenchRow JobRow(uint64_t input_bytes, SimTime duration) {
  LatencySampler lat;
  lat.Add(SimToMicros(duration));
  BenchRow row;
  // One committed "operation" (the whole job); throughput in jobs/ms.
  row.Ops(1, duration, lat);
  row.Extra("duration_s", SimToSeconds(duration))
      .Extra("input_mb", static_cast<double>(input_bytes >> 20));
  return row;
}

void Run(BenchContext& ctx) {
  // Figure 6(a): duration vs cores (8KB chunks).
  for (const uint64_t size : ctx.Sweep<uint64_t>({4ull << 20, 8ull << 20, 16ull << 20})) {
    for (const uint32_t cores : ctx.CoreSweep({2, 4, 8, 16, 32, 48})) {
      const SimTime t = RunParallel(ctx, size, cores, 8 << 10);
      BenchRow row = JobRow(size, t);
      row.Param("part", "6a").Param("input", PaperSize(size)).Param("cores", uint64_t{cores});
      ctx.Report(row);
    }
  }

  // Figure 6(b): speedup over sequential vs input size per chunk size, on
  // 48 cores (1 DTM + 47 workers).
  const uint32_t cores_b = ctx.Cores(48);
  for (const uint64_t size :
       ctx.Sweep<uint64_t>({4ull << 20, 8ull << 20, 16ull << 20, 32ull << 20})) {
    const SimTime seq = RunSequentialOnce(ctx, size);
    for (const uint64_t chunk : ctx.Sweep<uint64_t>({4u << 10, 8u << 10, 16u << 10})) {
      const SimTime par = RunParallel(ctx, size, cores_b, chunk);
      BenchRow row = JobRow(size, par);
      row.Param("part", "6b")
          .Param("input", PaperSize(size))
          .Param("chunk_kb", chunk >> 10);
      row.Extra("speedup", static_cast<double>(seq) / static_cast<double>(par));
      ctx.Report(row);
    }
  }
}

TM2C_REGISTER_BENCH("fig6_mapreduce", "6",
                    "MapReduce letter-count: duration vs cores, speedup vs chunk size", &Run);

}  // namespace
}  // namespace tm2c

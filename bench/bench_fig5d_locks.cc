// Figure 5(d): the bank on TM2C vs a single global test-and-set lock, 2048
// accounts, 28..48 cores.
//
// Workload 1 (all transfers): the lock version wins at lower core counts
// (a sequential transfer is only four shared accesses) but collapses under
// contention on the one lock, while the transactional version keeps
// scaling. Workload 2 (one core runs balances, the rest transfer): the
// balance holder blocks every transfer under the global lock, so TM wins
// at every core count.
#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint32_t kAccounts = 2048;

struct OneReaderDetail {
  double ops_per_ms = 0.0;
  uint64_t reader_commits = 0;  // balances the reader core completed
};

double RunTx(uint32_t cores, bool one_reader) {
  RunSpec spec;
  spec.total_cores = cores;
  spec.duration = MillisToSim(40);
  spec.seed = 61;
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.sim().allocator(), sys.sim().shmem(), kAccounts, 100);
  if (one_reader) {
    InstallLoopBodiesWithSpecialCore(sys, spec.duration, spec.seed, BankMix(&bank, 100),
                                     BankMix(&bank, 0));
  } else {
    InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, 0));
  }
  sys.Run(spec.duration);
  return Summarize(sys, spec.duration).ops_per_ms;
}

// Like RunTx/RunLock with one_reader=true, but also reports how many
// balance operations the reader core completed. Under FairCM the reader
// commits rarely by design — the CM deprioritizes the expensive scans in
// favour of system throughput, the paper's 44-vs-81 balances/s trade
// (Section 5.3); under the global lock the reader takes its turn whenever
// it wins the test-and-set race.
OneReaderDetail RunTxDetail(uint32_t cores) {
  RunSpec spec;
  spec.total_cores = cores;
  spec.duration = MillisToSim(40);
  spec.seed = 61;
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.sim().allocator(), sys.sim().shmem(), kAccounts, 100);
  InstallLoopBodiesWithSpecialCore(sys, spec.duration, spec.seed, BankMix(&bank, 100),
                                   BankMix(&bank, 0));
  sys.Run(spec.duration);
  return OneReaderDetail{Summarize(sys, spec.duration).ops_per_ms, sys.AppStats(0).commits};
}

OneReaderDetail RunLockDetail(uint32_t cores) {
  RunSpec spec;
  spec.total_cores = cores;
  spec.service_cores = 1;
  spec.duration = MillisToSim(40);
  spec.seed = 61;
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.sim().allocator(), sys.sim().shmem(), kAccounts, 100);
  uint64_t ops = 0;
  uint64_t reader_ops = 0;
  OpFn transfers = BankLockMix(&bank, 0, &ops);
  OpFn balances = BankLockMix(&bank, 100, &reader_ops);
  InstallLoopBodiesWithSpecialCore(sys, spec.duration, spec.seed, balances, transfers);
  sys.Run(spec.duration);
  return OneReaderDetail{OpsPerMs(ops + reader_ops, spec.duration), reader_ops};
}

double RunLock(uint32_t cores, bool one_reader) {
  RunSpec spec;
  spec.total_cores = cores;
  // The lock-based version needs no DTM service: all but one core (the
  // deployment requires at least one service core, which stays idle) run
  // the application, as on the real SCC.
  spec.service_cores = 1;
  spec.duration = MillisToSim(40);
  spec.seed = 61;
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.sim().allocator(), sys.sim().shmem(), kAccounts, 100);
  uint64_t ops = 0;
  if (one_reader) {
    InstallLoopBodiesWithSpecialCore(sys, spec.duration, spec.seed,
                                     BankLockMix(&bank, 100, &ops), BankLockMix(&bank, 0, &ops));
  } else {
    InstallLoopBodies(sys, spec.duration, spec.seed, BankLockMix(&bank, 0, &ops));
  }
  sys.Run(spec.duration);
  return OpsPerMs(ops, spec.duration);
}

void Main() {
  TextTable table({"#cores", "lock, transfers", "tx, transfers", "lock, 1 reader", "tx, 1 reader"});
  for (uint32_t cores : {28u, 32u, 36u, 40u, 44u, 48u}) {
    table.AddRow({std::to_string(cores), TextTable::Num(RunLock(cores, false), 1),
                  TextTable::Num(RunTx(cores, false), 1),
                  TextTable::Num(RunLock(cores, true), 1),
                  TextTable::Num(RunTx(cores, true), 1)});
  }
  table.Print("Figure 5(d): bank, global lock vs transactions (ops/ms), 2048 accounts");

  TextTable reader({"#cores", "lock reader balances", "tx reader balances"});
  for (uint32_t cores : {28u, 48u}) {
    const OneReaderDetail lockd = RunLockDetail(cores);
    const OneReaderDetail txd = RunTxDetail(cores);
    reader.AddRow({std::to_string(cores), std::to_string(lockd.reader_commits),
                   std::to_string(txd.reader_commits)});
  }
  reader.Print("Figure 5(d) detail: balances completed by the reader core in 40 ms "
               "(FairCM deliberately deprioritizes the expensive scans)");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

// Figure 5(d): the bank on TM2C vs a single global test-and-set lock, 2048
// accounts, 28..48 cores.
//
// Workload 1 (all transfers): the lock version wins at lower core counts
// (a sequential transfer is only four shared accesses) but collapses under
// contention on the one lock, while the transactional version keeps
// scaling. Workload 2 (one core runs balances, the rest transfer): the
// balance holder blocks every transfer under the global lock, so TM wins
// at every core count. The reader_commits extra reports how many balance
// scans the reader core completed — under FairCM the reader commits rarely
// by design (the paper's 44-vs-81 balances/s trade, Section 5.3); under the
// global lock it takes its turn whenever it wins the test-and-set race.
#include "bench/workloads.h"

namespace tm2c {
namespace {

constexpr uint32_t kAccounts = 2048;

BenchRow RunTx(BenchContext& ctx, uint32_t cores, bool one_reader) {
  RunSpec spec = ctx.Spec(40, 61);
  spec.total_cores = cores;
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.allocator(), sys.shmem(), kAccounts, 100);
  LatencySampler lat;
  if (one_reader) {
    InstallLoopBodiesWithSpecialCore(sys, spec.duration, spec.seed, BankMix(&bank, 100),
                                     BankMix(&bank, 0), &lat);
  } else {
    InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, 0), &lat);
  }
  sys.Run(spec.duration);
  BenchRow row;
  row.Param("impl", "tx")
      .Param("workload", one_reader ? "one-reader" : "transfers")
      .Param("cores", uint64_t{cores})
      .Tx(sys, spec.duration, lat);
  if (one_reader) {
    row.Extra("reader_commits", static_cast<double>(sys.AppStats(0).commits));
  }
  return row;
}

BenchRow RunLock(BenchContext& ctx, uint32_t cores, bool one_reader) {
  RunSpec spec = ctx.Spec(40, 61);
  spec.total_cores = cores;
  // The lock-based version needs no DTM service: all but one core (the
  // deployment requires at least one service core, which stays idle) run
  // the application, as on the real SCC.
  spec.service_cores = 1;
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.allocator(), sys.shmem(), kAccounts, 100);
  uint64_t ops = 0;
  uint64_t reader_ops = 0;
  LatencySampler lat;
  if (one_reader) {
    InstallLoopBodiesWithSpecialCore(sys, spec.duration, spec.seed,
                                     BankLockMix(&bank, 100, &reader_ops),
                                     BankLockMix(&bank, 0, &ops), &lat);
  } else {
    InstallLoopBodies(sys, spec.duration, spec.seed, BankLockMix(&bank, 0, &ops), &lat);
  }
  sys.Run(spec.duration);
  BenchRow row;
  row.Param("impl", "lock")
      .Param("workload", one_reader ? "one-reader" : "transfers")
      .Param("cores", uint64_t{cores})
      .Ops(ops + reader_ops, spec.duration, lat);
  if (one_reader) {
    row.Extra("reader_commits", static_cast<double>(reader_ops));
  }
  return row;
}

void Run(BenchContext& ctx) {
  for (const uint32_t cores : ctx.CoreSweep({28, 32, 36, 40, 44, 48})) {
    for (const bool one_reader : {false, true}) {
      ctx.Report(RunLock(ctx, cores, one_reader));
      ctx.Report(RunTx(ctx, cores, one_reader));
    }
  }
}

TM2C_REGISTER_BENCH("fig5d_locks", "5(d)",
                    "bank: global test-and-set lock vs transactions, 2048 accounts", &Run);

}  // namespace
}  // namespace tm2c

// Figure 5(b): throughput as a function of the number of DTM service cores
// (out of 48 total), for the bank with 20%/80% balance/transfer (left) and
// 100% transfers (right).
//
// Expected shape: throughput grows with service cores but sub-linearly —
// the SCC's message passing does not scale (receive cost grows with the
// number of polled peers), which is why the paper settles on a half/half
// split.
#include "bench/workloads.h"

namespace tm2c {
namespace {

double RunOne(uint32_t service_cores, uint32_t balance_pct) {
  RunSpec spec;
  spec.total_cores = 48;
  spec.service_cores = service_cores;
  spec.duration = MillisToSim(40);
  spec.seed = 41;
  TmSystem sys(MakeConfig(spec));
  Bank bank(sys.sim().allocator(), sys.sim().shmem(), 1024, 100);
  InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, balance_pct));
  sys.Run(spec.duration);
  return Summarize(sys, spec.duration).ops_per_ms;
}

void Main() {
  TextTable table({"#service cores", "20% balance / 80% transfer", "100% transfer"});
  for (uint32_t s : {1u, 2u, 4u, 8u, 16u, 24u}) {
    table.AddRow({std::to_string(s), TextTable::Num(RunOne(s, 20), 2),
                  TextTable::Num(RunOne(s, 0), 1)});
  }
  table.Print("Figure 5(b): bank throughput (ops/ms) vs number of service cores (48 total)");
}

}  // namespace
}  // namespace tm2c

int main() {
  tm2c::Main();
  return 0;
}

// Figure 5(b): throughput as a function of the number of DTM service cores
// (out of 48 total), for the bank with 20%/80% balance/transfer and with
// 100% transfers.
//
// Expected shape: throughput grows with service cores but sub-linearly —
// the SCC's message passing does not scale (receive cost grows with the
// number of polled peers), which is why the paper settles on a half/half
// split.
#include "bench/workloads.h"

namespace tm2c {
namespace {

void Run(BenchContext& ctx) {
  const uint32_t total = ctx.Cores(48);
  for (const uint32_t service : ctx.ServiceCoreSweep({1, 2, 4, 8, 16, 24})) {
    if (service >= total) {
      continue;  // the deployment needs at least one application core
    }
    for (const uint32_t balance_pct : {20u, 0u}) {
      RunSpec spec = ctx.Spec(40, 41);
      spec.total_cores = total;
      spec.service_cores = service;
      TmSystem sys(MakeConfig(spec));
      Bank bank(sys.allocator(), sys.shmem(), 1024, 100);
      LatencySampler lat;
      InstallLoopBodies(sys, spec.duration, spec.seed, BankMix(&bank, balance_pct), &lat);
      sys.Run(spec.duration);
      BenchRow row;
      row.Param("service_cores", uint64_t{spec.service_cores})
          .Param("balance_pct", uint64_t{balance_pct})
          .Tx(sys, spec.duration, lat);
      ctx.Report(row);
    }
  }
}

TM2C_REGISTER_BENCH_NATIVE("fig5b_service_cores", "5(b)",
                           "bank throughput vs number of DTM service cores (48 total)", &Run);

}  // namespace
}  // namespace tm2c

#!/usr/bin/env python3
"""Merge, validate and compare the bench JSON documents.

Every bench binary emits one document under the shared schema (see
bench/bench_main.cc); the `backend` field says whether its rows were
measured on the deterministic simulator ("sim"), on real OS threads
("threads") or on forked partition-server processes over Unix sockets
("processes"), so one merged file carries every kind side by side. `merge`
combines documents into BENCH_results.json; `validate` checks either a
per-bench document or a merged file, so CI can gate on the schema staying
intact; `compare` diffs mean throughput per (bench, backend, platform,
index) between two merged files and fails on regressions beyond a
threshold.

  tools/bench_json.py merge --out BENCH_results.json [--smoke] a.json b.json ...
  tools/bench_json.py validate BENCH_results.json
  tools/bench_json.py compare old.json new.json --max-regress=15
  tools/bench_json.py report BENCH_results.json --out docs/BENCHMARKS.md

`report` renders a merged file into a markdown summary (the committed
docs/BENCHMARKS.md): one row per bench with its best-throughput scenario on
each backend. The output is deterministic for a given input, so CI can
regenerate it and diff against the committed file as a freshness check.

`compare` gates sim rows only by default: they are deterministic, so any
drift is a real code change. Native (threads and processes) rows are
wall-clock numbers from whatever host ran them — they are reported but only
enforced with --gate-native (for dedicated, quiet perf hosts). The backend
is part of every group key, so processes rows gate (or advise) against
processes history, never against the threads numbers. Rows measured at
pipeline_depth != 1 are excluded from the compare groups: the lockstep
depth-1 rows are the regression baseline. Rows carrying a truthy
`migration` param (bench_elastic's live-handoff scenarios) are excluded
too: they deliberately measure saturated and mid-migration phases, so
their throughput tracks the elasticity scenario, not the protocol
baseline. Rows carrying a non-zero `scan_len` param (YCSB-E range-scan
sweeps) are likewise excluded — their throughput tracks the swept scan
length. The `index` param (hash vs btree store) is a grouping dimension,
not an exclusion: each index structure forms its own compare group, so
hash-index lockstep rows stay a stable baseline while btree rows are
gated separately rather than diluting it.
"""
import argparse
import json
import os
import sys

SCHEMA_VERSION = 1
BACKENDS = ("sim", "threads", "processes")

RESULT_NUMBER_FIELDS = [
    "throughput_ops_per_ms",
    "commit_rate",
    "abort_rate",
    "commits",
    "aborts",
]
LATENCY_FIELDS = ["p50", "p95", "p99", "mean", "samples"]


def fail(msg):
    print(f"bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check_result(bench_name, i, result):
    where = f"{bench_name} results[{i}]"
    if not isinstance(result.get("scenario"), str):
        fail(f"{where}: missing scenario string")
    if not isinstance(result.get("params"), dict):
        fail(f"{where}: missing params object")
    for field in RESULT_NUMBER_FIELDS:
        if not isinstance(result.get(field), (int, float)):
            fail(f"{where}: missing numeric field '{field}'")
    lat = result.get("latency_us")
    if not isinstance(lat, dict):
        fail(f"{where}: missing latency_us object")
    for field in LATENCY_FIELDS:
        if not isinstance(lat.get(field), (int, float)):
            fail(f"{where}: latency_us missing numeric field '{field}'")
    if not isinstance(result.get("extra"), dict):
        fail(f"{where}: missing extra object")
    if not 0.0 <= result["commit_rate"] <= 1.0:
        fail(f"{where}: commit_rate {result['commit_rate']} outside [0,1]")
    if not 0.0 <= result["abort_rate"] <= 1.0:
        fail(f"{where}: abort_rate {result['abort_rate']} outside [0,1]")


def check_bench(doc):
    for field in ("bench", "figure", "description"):
        if not isinstance(doc.get(field), str):
            fail(f"bench document missing string field '{field}'")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"{doc.get('bench')}: schema_version {doc.get('schema_version')} "
             f"!= {SCHEMA_VERSION}")
    if doc.get("backend", "sim") not in BACKENDS:
        fail(f"{doc['bench']}: backend '{doc.get('backend')}' not in {BACKENDS}")
    if not isinstance(doc.get("smoke"), bool):
        fail(f"{doc['bench']}: missing bool field 'smoke'")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(f"{doc['bench']}: results must be a non-empty array")
    for i, result in enumerate(results):
        check_result(doc["bench"], i, result)


def cmd_merge(args):
    benches = []
    for path in args.inputs:
        with open(path) as f:
            doc = json.load(f)
        check_bench(doc)
        benches.append(doc)
    benches.sort(key=lambda d: (d["bench"], d.get("backend", "sim")))
    merged = {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "bench/run_all.sh",
        "smoke": args.smoke,
        "benches": benches,
    }
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print(f"merged {len(benches)} bench documents into {args.out}")


def cmd_validate(args):
    with open(args.input) as f:
        doc = json.load(f)
    if "benches" in doc:  # merged file
        if doc.get("schema_version") != SCHEMA_VERSION:
            fail(f"merged schema_version {doc.get('schema_version')} != {SCHEMA_VERSION}")
        if not isinstance(doc["benches"], list) or not doc["benches"]:
            fail("merged file has no bench documents")
        for bench in doc["benches"]:
            check_bench(bench)
        n = len(doc["benches"])
        rows = sum(len(b["results"]) for b in doc["benches"])
        print(f"{args.input}: OK ({n} benches, {rows} result rows)")
    else:  # single bench document
        check_bench(doc)
        print(f"{args.input}: OK ({len(doc['results'])} result rows)")


def load_benches(path):
    """Returns the list of bench documents in a merged or per-bench file."""
    with open(path) as f:
        doc = json.load(f)
    return doc["benches"] if "benches" in doc else [doc]


def throughput_groups(benches):
    """Mean throughput per (bench, backend, platform, index) across rows.

    Rows swept at pipeline_depth != 1 are excluded: the lockstep depth-1
    protocol is the regression baseline, and pipelined rows shifting (in
    either direction) as the overlap machinery evolves must neither mask
    nor fake a baseline regression. The depth-1 rows of the same sweep
    still count. Rows marked with a truthy `migration` param are excluded
    for the same reason: elasticity scenarios measure deliberately
    saturated and mid-migration throughput, which moves with the scenario
    (policy windows, backoffs, admission control), not with the baseline
    protocol. Rows with a non-zero `scan_len` param (YCSB-E scan-length
    sweeps) are excluded for the same reason again: their throughput
    tracks the swept scan length, not the protocol.

    The `index` param is different: hash and btree rows are both
    legitimate baselines, just not each other's. It joins the group key
    (default "-" for benches that predate it), so each store structure is
    gated against its own history and hash rows stay a stable baseline
    as index sweeps grow.
    """
    sums = {}
    for bench in benches:
        for result in bench.get("results", []):
            params = result.get("params", {})
            if str(params.get("pipeline_depth", "1")) != "1":
                continue
            if str(params.get("migration", "0")) not in ("0", ""):
                continue
            if str(params.get("scan_len", "0")) not in ("0", ""):
                continue
            key = (bench["bench"], bench.get("backend", "sim"),
                   params.get("platform", "-"), params.get("index", "-"))
            total, count = sums.get(key, (0.0, 0))
            sums[key] = (total + result["throughput_ops_per_ms"], count + 1)
    return {key: total / count for key, (total, count) in sums.items() if count > 0}


def file_schema_version(path):
    with open(path) as f:
        return json.load(f).get("schema_version")


def cmd_compare(args):
    # A baseline written under an older schema predates whatever field the
    # current reader expects; comparing against it would die in a KeyError
    # deep in throughput_groups. The baseline is historical data — skip the
    # compare (success: there is nothing to gate against yet). The NEW file
    # was produced by this checkout, so a mismatch there is a real bug.
    old_version = file_schema_version(args.old)
    if old_version != SCHEMA_VERSION:
        print(f"compare: baseline {args.old} incompatible "
              f"(schema_version {old_version} != {SCHEMA_VERSION}), skipping")
        sys.exit(0)
    new_version = file_schema_version(args.new)
    if new_version != SCHEMA_VERSION:
        fail(f"{args.new}: schema_version {new_version} != {SCHEMA_VERSION}")
    old = throughput_groups(load_benches(args.old))
    new = throughput_groups(load_benches(args.new))
    regressions = []
    advisories = []
    print(f"{'bench':<24} {'backend':<8} {'platform':<9} {'index':<6} "
          f"{'old op/ms':>10} {'new op/ms':>10} {'delta %':>8}")
    for key in sorted(set(old) | set(new)):
        bench, backend, platform, index = key
        if key not in old:
            print(f"{bench:<24} {backend:<8} {platform:<9} {index:<6} {'-':>10} "
                  f"{new[key]:>10.2f}    (new)")
            continue
        if key not in new:
            print(f"{bench:<24} {backend:<8} {platform:<9} {index:<6} "
                  f"{old[key]:>10.2f} {'-':>10}    (gone)")
            continue
        delta_pct = (100.0 * (new[key] - old[key]) / old[key]) if old[key] > 0 else 0.0
        flag = ""
        if delta_pct < -args.max_regress:
            if backend == "sim" or args.gate_native:
                regressions.append((key, delta_pct))
                flag = "  REGRESSION"
            else:
                advisories.append((key, delta_pct))
                flag = "  (native, advisory)"
        print(f"{bench:<24} {backend:<8} {platform:<9} {index:<6} "
              f"{old[key]:>10.2f} {new[key]:>10.2f} {delta_pct:>+8.1f}{flag}")
    if advisories:
        print(f"{len(advisories)} native group(s) regressed beyond "
              f"{args.max_regress}% (advisory only; use --gate-native to enforce)")
    if regressions:
        print(f"FAIL: {len(regressions)} group(s) regressed beyond "
              f"{args.max_regress}%", file=sys.stderr)
        sys.exit(1)
    print("compare: OK")


def best_row(bench):
    """The result row with the highest throughput in a bench document."""
    return max(bench["results"], key=lambda r: r["throughput_ops_per_ms"])


def render_report(benches, source_name):
    """Markdown summary of a merged file: best row per (bench, backend)."""
    by_name = {}
    for bench in benches:
        entry = by_name.setdefault(bench["bench"], {"figure": bench["figure"],
                                                    "description": bench["description"]})
        entry[bench.get("backend", "sim")] = bench
    lines = [
        "# Benchmark results",
        "",
        "<!-- Generated file, do not edit. Regenerate with:",
        "       bench/run_all.sh --with-native --with-processes --native-cores 4",
        f"       tools/bench_json.py report {source_name} --out docs/BENCHMARKS.md -->",
        "",
        "Best-throughput scenario per bench and backend, rendered from the",
        f"committed `{source_name}`. Simulator rows are deterministic modelled",
        "time (reproducible to the byte under a fixed seed); threads and",
        "processes rows are wall-clock measurements from whatever host produced",
        "the file and are comparable only to themselves.",
        "",
        "| Bench | Figure | Best sim scenario | Sim ops/ms | Commit % "
        "| Best threads scenario | Threads ops/ms "
        "| Best processes scenario | Processes ops/ms |",
        "| --- | --- | --- | --- | --- | --- | --- | --- | --- |",
    ]
    total_rows = 0
    any_smoke = False
    for name in sorted(by_name):
        entry = by_name[name]
        cells = [name, entry["figure"]]
        for backend in BACKENDS:
            bench = entry.get(backend)
            if bench is None:
                cells += ["—", "—", "—"] if backend == "sim" else ["—", "—"]
                continue
            total_rows += len(bench["results"])
            any_smoke = any_smoke or bench.get("smoke", False)
            best = best_row(bench)
            cells += [f"`{best['scenario']}`", f"{best['throughput_ops_per_ms']:.2f}"]
            if backend == "sim":
                cells.append(f"{100.0 * best['commit_rate']:.1f}")
        lines.append("| " + " | ".join(cells) + " |")
    lines += [
        "",
        f"{len(by_name)} benches, {total_rows} result rows in the source file.",
    ]
    if any_smoke:
        lines += ["", "**Warning:** contains smoke-mode rows (CI-sized sweeps), "
                      "not full-length runs."]
    lines.append("")
    return "\n".join(lines)


def cmd_report(args):
    benches = load_benches(args.input)
    for bench in benches:
        check_bench(bench)
    text = render_report(benches, os.path.basename(args.input))
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"wrote {args.out} ({len(benches)} bench documents)")
    else:
        print(text, end="")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)
    merge = sub.add_parser("merge")
    merge.add_argument("--out", required=True)
    merge.add_argument("--smoke", action="store_true")
    merge.add_argument("inputs", nargs="+")
    merge.set_defaults(fn=cmd_merge)
    validate = sub.add_parser("validate")
    validate.add_argument("input")
    validate.set_defaults(fn=cmd_validate)
    compare = sub.add_parser("compare")
    compare.add_argument("old")
    compare.add_argument("new")
    compare.add_argument("--max-regress", type=float, default=15.0,
                         help="tolerated throughput drop per group, percent")
    compare.add_argument("--gate-native", action="store_true",
                         help="fail on wall-clock (threads/processes) regressions too")
    compare.set_defaults(fn=cmd_compare)
    report = sub.add_parser("report")
    report.add_argument("input")
    report.add_argument("--out", help="output path (default: stdout)")
    report.set_defaults(fn=cmd_report)
    args = parser.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Merge and validate the bench JSON documents.

Every bench binary emits one document under the shared schema (see
bench/bench_main.cc). `merge` combines them into BENCH_results.json;
`validate` checks either a per-bench document or a merged file, so CI can
gate on the schema staying intact.

  tools/bench_json.py merge --out BENCH_results.json [--smoke] a.json b.json ...
  tools/bench_json.py validate BENCH_results.json
"""
import argparse
import json
import sys

SCHEMA_VERSION = 1

RESULT_NUMBER_FIELDS = [
    "throughput_ops_per_ms",
    "commit_rate",
    "abort_rate",
    "commits",
    "aborts",
]
LATENCY_FIELDS = ["p50", "p95", "p99", "mean", "samples"]


def fail(msg):
    print(f"bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def check_result(bench_name, i, result):
    where = f"{bench_name} results[{i}]"
    if not isinstance(result.get("scenario"), str):
        fail(f"{where}: missing scenario string")
    if not isinstance(result.get("params"), dict):
        fail(f"{where}: missing params object")
    for field in RESULT_NUMBER_FIELDS:
        if not isinstance(result.get(field), (int, float)):
            fail(f"{where}: missing numeric field '{field}'")
    lat = result.get("latency_us")
    if not isinstance(lat, dict):
        fail(f"{where}: missing latency_us object")
    for field in LATENCY_FIELDS:
        if not isinstance(lat.get(field), (int, float)):
            fail(f"{where}: latency_us missing numeric field '{field}'")
    if not isinstance(result.get("extra"), dict):
        fail(f"{where}: missing extra object")
    if not 0.0 <= result["commit_rate"] <= 1.0:
        fail(f"{where}: commit_rate {result['commit_rate']} outside [0,1]")
    if not 0.0 <= result["abort_rate"] <= 1.0:
        fail(f"{where}: abort_rate {result['abort_rate']} outside [0,1]")


def check_bench(doc):
    for field in ("bench", "figure", "description"):
        if not isinstance(doc.get(field), str):
            fail(f"bench document missing string field '{field}'")
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(f"{doc.get('bench')}: schema_version {doc.get('schema_version')} "
             f"!= {SCHEMA_VERSION}")
    if not isinstance(doc.get("smoke"), bool):
        fail(f"{doc['bench']}: missing bool field 'smoke'")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail(f"{doc['bench']}: results must be a non-empty array")
    for i, result in enumerate(results):
        check_result(doc["bench"], i, result)


def cmd_merge(args):
    benches = []
    for path in args.inputs:
        with open(path) as f:
            doc = json.load(f)
        check_bench(doc)
        benches.append(doc)
    benches.sort(key=lambda d: d["bench"])
    merged = {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "bench/run_all.sh",
        "smoke": args.smoke,
        "benches": benches,
    }
    with open(args.out, "w") as f:
        json.dump(merged, f, indent=1)
        f.write("\n")
    print(f"merged {len(benches)} bench documents into {args.out}")


def cmd_validate(args):
    with open(args.input) as f:
        doc = json.load(f)
    if "benches" in doc:  # merged file
        if doc.get("schema_version") != SCHEMA_VERSION:
            fail(f"merged schema_version {doc.get('schema_version')} != {SCHEMA_VERSION}")
        if not isinstance(doc["benches"], list) or not doc["benches"]:
            fail("merged file has no bench documents")
        for bench in doc["benches"]:
            check_bench(bench)
        n = len(doc["benches"])
        rows = sum(len(b["results"]) for b in doc["benches"])
        print(f"{args.input}: OK ({n} benches, {rows} result rows)")
    else:  # single bench document
        check_bench(doc)
        print(f"{args.input}: OK ({len(doc['results'])} result rows)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="cmd", required=True)
    merge = sub.add_parser("merge")
    merge.add_argument("--out", required=True)
    merge.add_argument("--smoke", action="store_true")
    merge.add_argument("inputs", nargs="+")
    merge.set_defaults(fn=cmd_merge)
    validate = sub.add_parser("validate")
    validate.add_argument("input")
    validate.set_defaults(fn=cmd_validate)
    args = parser.parse_args()
    args.fn(args)


if __name__ == "__main__":
    main()

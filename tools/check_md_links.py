#!/usr/bin/env python3
"""Check that relative links in markdown files point at existing paths.

  tools/check_md_links.py README.md docs/*.md

Scans `[text](target)` links (images included). External targets
(http/https/mailto) and pure in-page anchors (#...) are skipped; a relative
target is resolved against the markdown file's own directory, with any
#fragment stripped, and must exist in the working tree. Fenced code blocks
and inline code spans are ignored so documentation examples cannot trip
the check. Exits non-zero listing every broken link.
"""
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~)")
INLINE_CODE_RE = re.compile(r"`[^`]*`")


def links_in(path):
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(INLINE_CODE_RE.sub("``", line)):
                yield lineno, match.group(1)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    broken = []
    checked = 0
    for md in argv[1:]:
        base = os.path.dirname(md)
        for lineno, target in links_in(md):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            checked += 1
            if not os.path.exists(os.path.join(base, rel) if base else rel):
                broken.append(f"{md}:{lineno}: broken link -> {target}")
    for line in broken:
        print(line, file=sys.stderr)
    print(f"check_md_links: {checked} relative links checked, {len(broken)} broken")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// tm2c_check: schedule-exploration chaos sweep + serializability oracle.
//
// Sweeps seeds x {cm, tx_mode, max_batch, pipeline_depth, platform},
// running the recorded chaos workload for every combination and the offline
// oracle on each history. Any violation is printed, the full history is dumped as JSON
// into --dump-dir for replay, and the exit status is non-zero.
//
//   tm2c_check --seeds=20                         # the nightly gate
//   tm2c_check --seeds=8 --fault=skip-read-lock   # watch the oracle bite
//   tm2c_check --crash --seeds=10                 # crash-restart recovery sweep
//   tm2c_check --crash --fault=ack-before-log-flush --seeds=5
//                                                 # the write-ahead rule bites
//   tm2c_check --migrate --seeds=10               # live stripe-migration sweep
//   tm2c_check --migrate --fault=grant-during-migration --seeds=5
//                                                 # the migration oracle bites
//   tm2c_check --seeds=1 --seed-base=17 --cms=faircm --modes=normal
//       --batches=8 --platforms=scc               # replay one failure
//   tm2c_check --backend=processes --kill-partition --seeds=5
//                                                 # real process-death sweep:
//                                                 # SIGKILL a partition server
//                                                 # mid-run, recover from the
//                                                 # WAL, crash-restart oracle
#include <stdlib.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/check/checker.h"
#include "src/check/process_kill.h"
#include "src/common/flags.h"

namespace tm2c {
namespace {

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) {
      out.push_back(csv.substr(start, end - start));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

bool ParseCm(const std::string& name, CmKind* out) {
  if (name == "wholly") {
    *out = CmKind::kWholly;
  } else if (name == "faircm") {
    *out = CmKind::kFairCm;
  } else if (name == "backoff") {
    *out = CmKind::kBackoffRetry;
  } else {
    return false;
  }
  return true;
}

bool ParseMode(const std::string& name, TxMode* out) {
  if (name == "normal") {
    *out = TxMode::kNormal;
  } else if (name == "early") {
    *out = TxMode::kElasticEarly;
  } else if (name == "eread") {
    *out = TxMode::kElasticRead;
  } else {
    return false;
  }
  return true;
}

bool ParseFault(const std::string& name, FaultMode* out) {
  if (name == "none") {
    *out = FaultMode::kNone;
  } else if (name == "skip-read-lock") {
    *out = FaultMode::kSkipReadLock;
  } else if (name == "ignore-revocation") {
    *out = FaultMode::kIgnoreRevocation;
  } else if (name == "release-before-persist") {
    *out = FaultMode::kReleaseBeforePersist;
  } else if (name == "ack-before-log-flush") {
    *out = FaultMode::kAckBeforeLogFlush;
  } else if (name == "grant-during-migration") {
    *out = FaultMode::kGrantDuringMigration;
  } else if (name == "smo-skip-parent-link") {
    *out = FaultMode::kSmoSkipParentLink;
  } else {
    return false;
  }
  return true;
}

bool ParseDurability(const std::string& name, DurabilityMode* out) {
  if (name == "off") {
    *out = DurabilityMode::kOff;
  } else if (name == "buffered") {
    *out = DurabilityMode::kBuffered;
  } else if (name == "fsync") {
    *out = DurabilityMode::kFsync;
  } else {
    return false;
  }
  return true;
}

bool ParseWorkload(const std::string& name, CheckWorkload* out) {
  if (name == "bank") {
    *out = CheckWorkload::kBank;
  } else if (name == "kv") {
    *out = CheckWorkload::kKv;
  } else if (name == "index") {
    *out = CheckWorkload::kIndex;
  } else {
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  uint64_t seeds = 20;
  uint64_t seed_base = 1;
  std::string platforms = "scc,opteron";
  std::string cms = "wholly,faircm";
  std::string modes;  // "" -> per-workload default, resolved below
  std::string batches = "1,8";
  std::string pipeline_depths = "1";
  std::string fault_name = "none";
  std::string workload_name = "bank";
  std::string durability_name;  // "" -> off, or buffered when --crash is set
  uint64_t group_commit = 1;
  uint64_t checkpoint_every = 0;
  bool crash = false;
  bool migrate = false;
  int cores = 8;
  int service_cores = 4;
  int txs_per_core = 30;
  int accounts = 12;
  bool no_chaos = false;
  bool verbose = false;
  std::string dump_dir = "failed_histories";
  std::string backend_name = "sim";
  bool kill_partition = false;
  int kill_target = 0;
  int ops_per_core = 400;

  FlagSet flags;
  flags.Register("backend", &backend_name,
                 "sim (default: the chaos matrix above) or processes (real "
                 "partition-server processes; combine with --kill-partition)");
  flags.Register("kill-partition", &kill_partition,
                 "processes backend: SIGKILL one partition's server halfway "
                 "through app core 0's fixed workload and hold the WAL "
                 "recovery to the crash-restart oracle");
  flags.Register("kill-target", &kill_target,
                 "processes backend: which partition's server to kill");
  flags.Register("ops-per-core", &ops_per_core,
                 "processes backend: fixed transactions per app core");
  flags.Register("seeds", &seeds, "number of seeds per configuration");
  flags.Register("seed-base", &seed_base, "first seed of the sweep");
  flags.Register("platforms", &platforms, "comma list: scc, scc800, opteron");
  flags.Register("cms", &cms, "comma list: wholly, faircm, backoff");
  flags.Register("modes", &modes,
                 "comma list: normal, early, eread (default: all three for bank; "
                 "normal,early for kv and index — value-validated elastic reads "
                 "admit pointer ABA when recycled nodes restore old link values, "
                 "which is value-serializable by eread's contract but flagged by "
                 "the order-based oracle; pass --modes=eread explicitly to see it)");
  flags.Register("batches", &batches, "comma list of max_batch values");
  flags.Register("pipeline-depths", &pipeline_depths,
                 "comma list of pipeline_depth values (1 = lockstep; depths > 1 "
                 "overlap batched acquisitions and add a Prefetch to the scans)");
  flags.Register("fault", &fault_name,
                 "planted fault: none, skip-read-lock, ignore-revocation, "
                 "release-before-persist, ack-before-log-flush, "
                 "grant-during-migration, smo-skip-parent-link (index workload: "
                 "a leaf split skips the parent link; the tree-shape invariants, "
                 "not the oracle, must flag it)");
  flags.Register("durability", &durability_name,
                 "per-partition commit logging: off, buffered, fsync "
                 "(default: off, or buffered when --crash is set)");
  flags.Register("group-commit", &group_commit,
                 "acks deferred until this many unflushed records (1 = flush per tx)");
  flags.Register("checkpoint-every", &checkpoint_every,
                 "take a partition checkpoint every N log records (0 = never)");
  flags.Register("crash", &crash,
                 "after each run, crash at a seeded event, truncate the logs to "
                 "their durable watermark, recover the store and run the "
                 "crash-restart oracle (forces --workload=kv)");
  flags.Register("migrate", &migrate,
                 "hand the partition-0 slab off to partition 1 mid-run and run "
                 "the migration oracle on the history (forces --workload=kv)");
  flags.Register("workload", &workload_name,
                 "adversarial workload: bank (hot accounts, default), kv "
                 "(KV store delete/reinsert mix) or index (the same mix on the "
                 "partitioned B+-tree via TxStoreApi, plus post-run tree-shape "
                 "invariants)");
  flags.Register("cores", &cores, "simulated cores per run");
  flags.Register("service-cores", &service_cores, "dedicated DTM service cores");
  flags.Register("txs-per-core", &txs_per_core, "transactions per app core");
  flags.Register("accounts", &accounts, "hot shared words in the workload");
  flags.Register("no-chaos", &no_chaos, "disable schedule perturbation (one FIFO schedule)");
  flags.Register("verbose", &verbose, "print every run, not just failures");
  flags.Register("dump-dir", &dump_dir, "directory for failing-history JSON dumps");
  flags.Parse(argc, argv);

  if (backend_name == "processes") {
    // Real-death sweep: no simulated chaos matrix — the schedule space is
    // the host's, the adversary is SIGKILL. One run per seed.
    if (!kill_partition) {
      std::fprintf(stderr, "--backend=processes requires --kill-partition\n");
      return 2;
    }
    if (kill_target < 0 || kill_target >= service_cores) {
      std::fprintf(stderr, "--kill-target must be in [0, --service-cores)\n");
      return 2;
    }
    uint64_t runs = 0;
    uint64_t failures = 0;
    bool dump_dir_made = false;
    for (uint64_t s = 0; s < seeds; ++s) {
      ProcessKillConfig cfg;
      cfg.seed = seed_base + s;
      cfg.num_cores = static_cast<uint32_t>(cores);
      cfg.num_service = static_cast<uint32_t>(service_cores);
      cfg.kill_partition = static_cast<uint32_t>(kill_target);
      cfg.ops_per_core = static_cast<uint32_t>(ops_per_core);
      cfg.group_commit_txs = static_cast<uint32_t>(group_commit);
      cfg.checkpoint_every_records = checkpoint_every;
      std::string run_dir = "/tmp/tm2c_check_kill_XXXXXX";
      if (::mkdtemp(run_dir.data()) == nullptr) {
        std::fprintf(stderr, "could not create a run directory under /tmp\n");
        return 2;
      }
      cfg.run_dir = run_dir;

      const ProcessKillResult result = RunProcessKillWorkload(cfg);
      ++runs;
      const bool ok = result.report.violations.empty();
      if (verbose || !ok) {
        std::printf("%-48s %s\n", cfg.Name().c_str(), ok ? "ok" : "VIOLATION");
      }
      if (!ok) {
        ++failures;
        for (const OracleViolation& v : result.report.violations) {
          std::printf("  [%s] %s\n", v.kind.c_str(), v.detail.c_str());
        }
        if (!dump_dir_made) {
          ::mkdir(dump_dir.c_str(), 0755);  // best effort; may exist
          dump_dir_made = true;
        }
        const std::string path = dump_dir + "/" + cfg.Name() + ".json";
        std::ofstream out(path);
        if (out) {
          out << result.history.ToJson() << "\n";
          std::printf("  history dumped to %s\n", path.c_str());
        } else {
          std::fprintf(stderr, "  could not write %s\n", path.c_str());
        }
      }
    }
    std::printf("tm2c_check: %llu process-kill runs, %llu with violations (partition %d)\n",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(failures), kill_target);
    return failures == 0 ? 0 : 1;
  }
  if (backend_name != "sim") {
    std::fprintf(stderr, "unknown --backend value (expected sim|processes): %s\n",
                 backend_name.c_str());
    return 2;
  }

  FaultMode fault = FaultMode::kNone;
  if (!ParseFault(fault_name, &fault)) {
    std::fprintf(stderr, "unknown --fault value: %s\n", fault_name.c_str());
    return 2;
  }
  CheckWorkload workload = CheckWorkload::kBank;
  if (!ParseWorkload(workload_name, &workload)) {
    std::fprintf(stderr, "unknown --workload value: %s\n", workload_name.c_str());
    return 2;
  }
  if (crash || migrate) {
    workload = CheckWorkload::kKv;  // recovery and migration need the owned-range store
  }
  if (migrate && service_cores < 2) {
    std::fprintf(stderr, "--migrate needs --service-cores >= 2\n");
    return 2;
  }
  if (durability_name.empty()) {
    durability_name = crash ? "buffered" : "off";
  }
  DurabilityMode durability = DurabilityMode::kOff;
  if (!ParseDurability(durability_name, &durability)) {
    std::fprintf(stderr, "unknown --durability value: %s\n", durability_name.c_str());
    return 2;
  }
  if (crash && durability == DurabilityMode::kOff) {
    std::fprintf(stderr, "--crash needs --durability=buffered or fsync\n");
    return 2;
  }
  if (modes.empty()) {
    // The store workloads skip eread by default: value-validated elastic
    // reads admit pointer ABA on recycled structure words (see --modes).
    modes = workload == CheckWorkload::kBank ? "normal,early,eread" : "normal,early";
  }

  uint64_t runs = 0;
  uint64_t failures = 0;
  bool dump_dir_made = false;
  for (const std::string& platform : SplitCsv(platforms)) {
    for (const std::string& cm_name : SplitCsv(cms)) {
      CmKind cm;
      if (!ParseCm(cm_name, &cm)) {
        std::fprintf(stderr, "unknown --cms entry: %s\n", cm_name.c_str());
        return 2;
      }
      for (const std::string& mode_name : SplitCsv(modes)) {
        TxMode mode;
        if (!ParseMode(mode_name, &mode)) {
          std::fprintf(stderr, "unknown --modes entry: %s\n", mode_name.c_str());
          return 2;
        }
        for (const std::string& batch : SplitCsv(batches)) {
          uint64_t max_batch = 0;
          for (char c : batch) {
            if (c < '0' || c > '9') {
              max_batch = 0;
              break;
            }
            max_batch = max_batch * 10 + static_cast<uint64_t>(c - '0');
          }
          if (max_batch < 1 || max_batch > kMaxBatchEntries) {
            std::fprintf(stderr, "bad --batches entry (want 1..%u): %s\n", kMaxBatchEntries,
                         batch.c_str());
            return 2;
          }
          for (const std::string& depth_str : SplitCsv(pipeline_depths)) {
            uint64_t depth = 0;
            for (char c : depth_str) {
              if (c < '0' || c > '9') {
                depth = 0;
                break;
              }
              depth = depth * 10 + static_cast<uint64_t>(c - '0');
            }
            if (depth < 1 || depth > 64) {
              std::fprintf(stderr, "bad --pipeline-depths entry (want 1..64): %s\n",
                           depth_str.c_str());
              return 2;
            }
            for (uint64_t s = 0; s < seeds; ++s) {
              CheckRunConfig cfg;
              cfg.platform = platform;
              cfg.num_cores = static_cast<uint32_t>(cores);
              cfg.num_service = static_cast<uint32_t>(service_cores);
              cfg.cm = cm;
              cfg.tx_mode = mode;
              cfg.max_batch = static_cast<uint32_t>(max_batch);
              cfg.pipeline_depth = static_cast<uint32_t>(depth);
              cfg.fault = fault;
              cfg.workload = workload;
              cfg.seed = seed_base + s;
              cfg.chaos = !no_chaos;
              cfg.txs_per_core = static_cast<uint32_t>(txs_per_core);
              cfg.accounts = static_cast<uint32_t>(accounts);
              cfg.durability = durability;
              cfg.group_commit_txs = static_cast<uint32_t>(group_commit);
              cfg.checkpoint_every_records = checkpoint_every;
              cfg.crash = crash;
              cfg.migrate = migrate;

              const CheckRunResult result = RunCheckedWorkload(cfg);
              ++runs;
              if (verbose || !result.report.ok()) {
                std::printf("%-48s %s\n", cfg.Name().c_str(),
                            result.report.ok() ? "ok" : "VIOLATION");
              }
              if (!result.report.ok()) {
                ++failures;
                std::printf("  %s\n", result.report.Summary().c_str());
                if (!dump_dir_made) {
                  ::mkdir(dump_dir.c_str(), 0755);  // best effort; may exist
                  dump_dir_made = true;
                }
                const std::string path = dump_dir + "/" + cfg.Name() + ".json";
                std::ofstream out(path);
                if (out) {
                  out << result.history.ToJson() << "\n";
                  std::printf("  history dumped to %s\n", path.c_str());
                } else {
                  std::fprintf(stderr, "  could not write %s\n", path.c_str());
                }
              }
            }
          }
        }
      }
    }
  }

  std::printf("tm2c_check: %llu runs, %llu with violations (workload=%s, fault=%s)\n",
              static_cast<unsigned long long>(runs), static_cast<unsigned long long>(failures),
              CheckWorkloadName(workload), FaultModeName(fault));
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tm2c

int main(int argc, char** argv) { return tm2c::Main(argc, argv); }

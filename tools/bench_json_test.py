#!/usr/bin/env python3
"""Unit tests for tools/bench_json.py.

Focused on the compare-grouping policy: which rows count towards the
regression baseline. Registered with CTest (see CMakeLists.txt) so the
gating logic is itself gated.

  python3 tools/bench_json_test.py
"""
import argparse
import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_json


def row(tput, **params):
    return {
        "scenario": " ".join(f"{k}={v}" for k, v in params.items()) or "default",
        "params": {k: str(v) for k, v in params.items()},
        "throughput_ops_per_ms": tput,
        "commit_rate": 1.0,
        "abort_rate": 0.0,
        "commits": 100,
        "aborts": 0,
        "latency_us": {"p50": 1.0, "p95": 2.0, "p99": 3.0, "mean": 1.5, "samples": 100},
        "extra": {},
    }


def bench(name, results, backend="sim"):
    return {
        "bench": name,
        "figure": "test",
        "description": "test bench",
        "schema_version": bench_json.SCHEMA_VERSION,
        "backend": backend,
        "smoke": False,
        "results": results,
    }


class ThroughputGroupsTest(unittest.TestCase):
    def test_groups_mean_per_bench_backend_platform(self):
        groups = bench_json.throughput_groups([
            bench("a", [row(10.0, platform="scc"), row(20.0, platform="scc")]),
            bench("a", [row(40.0, platform="scc")], backend="threads"),
        ])
        self.assertEqual(groups[("a", "sim", "scc", "-")], 15.0)
        self.assertEqual(groups[("a", "threads", "scc", "-")], 40.0)

    def test_processes_rows_form_their_own_group(self):
        # The same bench measured on all three backends must yield three
        # separate compare groups: processes rows gate against processes
        # history, never against the sim or threads numbers.
        groups = bench_json.throughput_groups([
            bench("a", [row(10.0, platform="scc")]),
            bench("a", [row(40.0, platform="scc")], backend="threads"),
            bench("a", [row(25.0, platform="scc")], backend="processes"),
        ])
        self.assertEqual(groups[("a", "sim", "scc", "-")], 10.0)
        self.assertEqual(groups[("a", "threads", "scc", "-")], 40.0)
        self.assertEqual(groups[("a", "processes", "scc", "-")], 25.0)

    def test_excludes_pipelined_rows_but_keeps_depth_one(self):
        groups = bench_json.throughput_groups([
            bench("p", [row(10.0, pipeline_depth=1), row(99.0, pipeline_depth=4)]),
        ])
        self.assertEqual(groups[("p", "sim", "-", "-")], 10.0)

    def test_excludes_migration_rows(self):
        # bench_elastic's rows all carry migration=1: its saturated and
        # mid-migration phases must not drag a regression group.
        groups = bench_json.throughput_groups([
            bench("elastic", [row(36.0, policy="static", migration=1),
                              row(80.0, policy="elastic", migration=1)]),
            bench("ycsb", [row(50.0)]),
        ])
        self.assertNotIn(("elastic", "sim", "-", "-"), groups)
        self.assertEqual(groups[("ycsb", "sim", "-", "-")], 50.0)

    def test_migration_zero_or_absent_rows_still_count(self):
        groups = bench_json.throughput_groups([
            bench("m", [row(10.0, migration=0), row(30.0)]),
        ])
        self.assertEqual(groups[("m", "sim", "-", "-")], 20.0)

    def test_mixed_bench_only_marked_rows_excluded(self):
        groups = bench_json.throughput_groups([
            bench("mix", [row(10.0), row(99.0, migration=1)]),
        ])
        self.assertEqual(groups[("mix", "sim", "-", "-")], 10.0)

    def test_index_param_is_a_grouping_dimension(self):
        # Hash and btree rows are both legitimate baselines — each against
        # its own history. Adding btree rows to a sweep must not shift the
        # pre-existing hash group's mean.
        groups = bench_json.throughput_groups([
            bench("ycsb_kv", [row(10.0, index="hash"), row(20.0, index="hash"),
                              row(4.0, index="btree")]),
        ])
        self.assertEqual(groups[("ycsb_kv", "sim", "-", "hash")], 15.0)
        self.assertEqual(groups[("ycsb_kv", "sim", "-", "btree")], 4.0)
        self.assertNotIn(("ycsb_kv", "sim", "-", "-"), groups)

    def test_excludes_scan_len_rows_but_keeps_point_ops(self):
        # YCSB-E rows carry scan_len; their throughput tracks the swept
        # scan length, so only the point-op rows form the baseline.
        groups = bench_json.throughput_groups([
            bench("ycsb_kv", [row(50.0, index="hash"),
                              row(9.0, index="hash", scan_len=8),
                              row(2.0, index="hash", scan_len=64)]),
        ])
        self.assertEqual(groups[("ycsb_kv", "sim", "-", "hash")], 50.0)

    def test_scan_len_zero_or_absent_rows_still_count(self):
        groups = bench_json.throughput_groups([
            bench("s", [row(10.0, scan_len=0), row(30.0)]),
        ])
        self.assertEqual(groups[("s", "sim", "-", "-")], 20.0)


class CompareGateTest(unittest.TestCase):
    """Wall-clock (threads/processes) regressions advise; sim ones gate."""

    def _compare(self, old_benches, new_benches, gate_native=False):
        with tempfile.TemporaryDirectory() as d:
            old_path = os.path.join(d, "old.json")
            new_path = os.path.join(d, "new.json")
            for path, benches in ((old_path, old_benches), (new_path, new_benches)):
                with open(path, "w") as f:
                    json.dump({"schema_version": bench_json.SCHEMA_VERSION,
                               "benches": benches}, f)
            args = argparse.Namespace(old=old_path, new=new_path,
                                      max_regress=15.0, gate_native=gate_native)
            with contextlib.redirect_stdout(io.StringIO()):
                bench_json.cmd_compare(args)

    def test_processes_regression_is_advisory_by_default(self):
        old = [bench("a", [row(100.0)], backend="processes")]
        new = [bench("a", [row(40.0)], backend="processes")]
        self._compare(old, new)  # must not raise SystemExit

    def test_processes_regression_gates_with_gate_native(self):
        old = [bench("a", [row(100.0)], backend="processes")]
        new = [bench("a", [row(40.0)], backend="processes")]
        with self.assertRaises(SystemExit):
            self._compare(old, new, gate_native=True)

    def test_sim_regression_always_gates(self):
        old = [bench("a", [row(100.0)])]
        new = [bench("a", [row(40.0)])]
        with self.assertRaises(SystemExit):
            self._compare(old, new)


class SchemaCheckTest(unittest.TestCase):
    def test_valid_document_passes(self):
        bench_json.check_bench(bench("ok", [row(1.0)]))

    def test_processes_backend_is_valid(self):
        bench_json.check_bench(bench("ok", [row(1.0)], backend="processes"))

    def test_unknown_backend_fails(self):
        with self.assertRaises(SystemExit):
            bench_json.check_bench(bench("bad", [row(1.0)], backend="fibers"))

    def test_missing_field_fails(self):
        bad = bench("bad", [row(1.0)])
        del bad["results"][0]["latency_us"]
        with self.assertRaises(SystemExit):
            bench_json.check_bench(bad)


if __name__ == "__main__":
    unittest.main()

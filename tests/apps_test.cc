// Tests of the benchmark applications on the simulated many-core.
#include <gtest/gtest.h>

#include <set>

#include "src/apps/bank.h"
#include "src/apps/hash_table.h"
#include "src/apps/linked_list.h"
#include "src/apps/mapreduce.h"
#include "src/tm/tm_system.h"

namespace tm2c {
namespace {

constexpr SimTime kTestHorizon = MillisToSim(4000);

TmSystemConfig BaseConfig(uint32_t cores = 8, uint32_t service = 4,
                          CmKind cm = CmKind::kFairCm) {
  TmSystemConfig cfg;
  cfg.sim.platform = MakeSccPlatform(0);
  cfg.sim.num_cores = cores;
  cfg.sim.num_service = service;
  cfg.sim.shmem_bytes = 8 << 20;
  cfg.sim.seed = 7;
  cfg.tm.cm = cm;
  return cfg;
}

// ---------------------------------------------------------------- Bank --

TEST(BankApp, TransfersConserveTotalUnderContention) {
  TmSystem sys(BaseConfig());
  Bank bank(sys.allocator(), sys.shmem(), 128, 1000);
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&bank, i](CoreEnv&, TxRuntime& rt) {
      Rng rng(100 + i);
      for (int k = 0; k < 60; ++k) {
        const auto from = static_cast<uint32_t>(rng.NextBelow(bank.num_accounts()));
        const auto to = static_cast<uint32_t>(rng.NextBelow(bank.num_accounts()));
        if (from == to) {
          continue;
        }
        rt.Execute([&](Tx& tx) { bank.TxTransfer(tx, from, to, 3); });
      }
    });
  }
  sys.Run(kTestHorizon);
  EXPECT_EQ(bank.HostTotal(), 128u * 1000);
}

TEST(BankApp, TxBalanceSeesConstantTotal) {
  TmSystem sys(BaseConfig());
  Bank bank(sys.allocator(), sys.shmem(), 64, 500);
  bool bad_balance = false;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    for (int k = 0; k < 15; ++k) {
      uint64_t total = 0;
      rt.Execute([&](Tx& tx) { total = bank.TxBalance(tx); });
      if (total != 64u * 500) {
        bad_balance = true;
      }
    }
  });
  for (uint32_t i = 1; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&bank, i](CoreEnv&, TxRuntime& rt) {
      Rng rng(i);
      for (int k = 0; k < 40; ++k) {
        const auto from = static_cast<uint32_t>(rng.NextBelow(64));
        const auto to = static_cast<uint32_t>((from + 1 + rng.NextBelow(62)) % 64);
        rt.Execute([&](Tx& tx) { bank.TxTransfer(tx, from, to, 1); });
      }
    });
  }
  sys.Run(kTestHorizon);
  EXPECT_FALSE(bad_balance);
  EXPECT_EQ(bank.HostTotal(), 64u * 500);
}

TEST(BankApp, GlobalLockVersionConservesTotal) {
  TmSystem sys(BaseConfig());
  Bank bank(sys.allocator(), sys.shmem(), 64, 100);
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&bank, i](CoreEnv& env, TxRuntime&) {
      Rng rng(200 + i);
      for (int k = 0; k < 50; ++k) {
        const auto from = static_cast<uint32_t>(rng.NextBelow(64));
        const auto to = static_cast<uint32_t>((from + 1) % 64);
        bank.LockTransfer(env, from, to, 2);
      }
    });
  }
  sys.Run(kTestHorizon);
  EXPECT_EQ(bank.HostTotal(), 64u * 100);
}

TEST(BankApp, LockBalanceConsistentWithConcurrentLockTransfers) {
  TmSystem sys(BaseConfig(4, 1));
  Bank bank(sys.allocator(), sys.shmem(), 32, 100);
  bool bad = false;
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime&) {
    for (int k = 0; k < 20; ++k) {
      if (bank.LockBalance(env) != 32u * 100) {
        bad = true;
      }
    }
  });
  for (uint32_t i = 1; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&bank, i](CoreEnv& env, TxRuntime&) {
      Rng rng(i);
      for (int k = 0; k < 40; ++k) {
        const auto from = static_cast<uint32_t>(rng.NextBelow(32));
        bank.LockTransfer(env, from, (from + 3) % 32, 1);
      }
    });
  }
  sys.Run(kTestHorizon);
  EXPECT_FALSE(bad);
}

// ---------------------------------------------------------- Hash table --

TEST(HashTableApp, HostSetupAndLookup) {
  TmSystem sys(BaseConfig());
  ShmHashTable table(sys.allocator(), sys.shmem(), 16);
  EXPECT_TRUE(table.HostAdd(sys.allocator(), 5));
  EXPECT_TRUE(table.HostAdd(sys.allocator(), 21));  // same bucket likely
  EXPECT_FALSE(table.HostAdd(sys.allocator(), 5));
  EXPECT_TRUE(table.HostContains(5));
  EXPECT_TRUE(table.HostContains(21));
  EXPECT_FALSE(table.HostContains(6));
  EXPECT_EQ(table.HostSize(), 2u);
}

TEST(HashTableApp, TransactionalOpsMatchReferenceSet) {
  TmSystem sys(BaseConfig(4, 2));
  ShmHashTable table(sys.allocator(), sys.shmem(), 8);
  // Deterministic single-core op stream checked against std::set.
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime& rt) {
    std::set<uint64_t> reference;
    Rng rng(99);
    for (int k = 0; k < 300; ++k) {
      const uint64_t key = 1 + rng.NextBelow(50);
      const uint64_t op = rng.NextBelow(3);
      if (op == 0) {
        EXPECT_EQ(table.Add(rt, env.allocator(), key), reference.insert(key).second);
      } else if (op == 1) {
        EXPECT_EQ(table.Remove(rt, key), reference.erase(key) == 1);
      } else {
        EXPECT_EQ(table.Contains(rt, key), reference.count(key) == 1);
      }
    }
    EXPECT_EQ(table.HostSize(), reference.size());
  });
  sys.Run(kTestHorizon);
}

TEST(HashTableApp, ConcurrentMixedOpsKeepStructureSane) {
  TmSystem sys(BaseConfig());
  ShmHashTable table(sys.allocator(), sys.shmem(), 32);
  for (uint64_t key = 1; key <= 64; ++key) {
    table.HostAdd(sys.allocator(), key);
  }
  std::vector<int64_t> net_adds(sys.num_app_cores(), 0);
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv& env, TxRuntime& rt) {
      Rng rng(31 * (i + 1));
      for (int k = 0; k < 60; ++k) {
        const uint64_t key = 1 + rng.NextBelow(128);
        if (rng.NextPercent(50)) {
          if (table.Add(rt, env.allocator(), key)) {
            ++net_adds[i];
          }
        } else {
          if (table.Remove(rt, key)) {
            --net_adds[i];
          }
        }
      }
    });
  }
  sys.Run(kTestHorizon);
  int64_t net = 64;
  for (int64_t d : net_adds) {
    net += d;
  }
  EXPECT_EQ(static_cast<int64_t>(table.HostSize()), net);
}

TEST(HashTableApp, MoveIsAtomic) {
  TmSystem sys(BaseConfig());
  ShmHashTable table(sys.allocator(), sys.shmem(), 16);
  // Start with even keys present; movers shuffle between even and odd,
  // scanners verify the element count never changes.
  for (uint64_t key = 2; key <= 128; key += 2) {
    table.HostAdd(sys.allocator(), key);
  }
  const uint64_t initial = table.HostSize();
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv& env, TxRuntime& rt) {
      Rng rng(17 * (i + 1));
      for (int k = 0; k < 40; ++k) {
        const uint64_t from = 1 + rng.NextBelow(128);
        const uint64_t to = 1 + rng.NextBelow(128);
        if (from != to) {
          table.Move(rt, env.allocator(), from, to);
        }
      }
    });
  }
  sys.Run(kTestHorizon);
  EXPECT_EQ(table.HostSize(), initial);  // moves never create or destroy
}

TEST(HashTableApp, SequentialBaselineWorks) {
  TmSystem sys(BaseConfig(2, 1));
  ShmHashTable table(sys.allocator(), sys.shmem(), 8);
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime&) {
    EXPECT_TRUE(table.SeqAdd(env, env.allocator(), 10));
    EXPECT_TRUE(table.SeqAdd(env, env.allocator(), 3));
    EXPECT_FALSE(table.SeqAdd(env, env.allocator(), 10));
    EXPECT_TRUE(table.SeqContains(env, 3));
    EXPECT_TRUE(table.SeqRemove(env, 10));
    EXPECT_FALSE(table.SeqContains(env, 10));
  });
  sys.Run(kTestHorizon);
  EXPECT_EQ(table.HostSize(), 1u);
}

// --------------------------------------------------------- Linked list --

TEST(LinkedListApp, SortedSetSemantics) {
  TmSystem sys(BaseConfig(4, 2));
  ShmSortedList list(sys.allocator(), sys.shmem());
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime& rt) {
    std::set<uint64_t> reference;
    Rng rng(5);
    for (int k = 0; k < 200; ++k) {
      const uint64_t key = 1 + rng.NextBelow(40);
      const uint64_t op = rng.NextBelow(3);
      if (op == 0) {
        EXPECT_EQ(list.Add(rt, env.allocator(), key), reference.insert(key).second);
      } else if (op == 1) {
        EXPECT_EQ(list.Remove(rt, key), reference.erase(key) == 1);
      } else {
        EXPECT_EQ(list.Contains(rt, key), reference.count(key) == 1);
      }
    }
    EXPECT_EQ(list.HostSize(), reference.size());
  });
  sys.Run(kTestHorizon);
}

void RunListConcurrencyTest(TxMode mode) {
  TmSystemConfig cfg = BaseConfig(6, 3);
  cfg.tm.tx_mode = mode;
  TmSystem sys(std::move(cfg));
  ShmSortedList list(sys.allocator(), sys.shmem());
  for (uint64_t key = 2; key <= 64; key += 2) {
    list.HostAdd(sys.allocator(), key);
  }
  std::vector<int64_t> net(sys.num_app_cores(), 0);
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv& env, TxRuntime& rt) {
      Rng rng(7 * (i + 1));
      for (int k = 0; k < 50; ++k) {
        const uint64_t key = 1 + rng.NextBelow(96);
        const uint64_t op = rng.NextBelow(10);
        if (op < 1) {
          if (list.Add(rt, env.allocator(), key)) {
            ++net[i];
          }
        } else if (op < 2) {
          if (list.Remove(rt, key)) {
            --net[i];
          }
        } else {
          (void)list.Contains(rt, key);
        }
      }
    });
  }
  sys.Run(kTestHorizon);
  int64_t expected = 32;
  for (int64_t d : net) {
    expected += d;
  }
  EXPECT_EQ(static_cast<int64_t>(list.HostSize()), expected)
      << "mode=" << static_cast<int>(mode);
}

TEST(LinkedListApp, ConcurrentOpsNormalMode) { RunListConcurrencyTest(TxMode::kNormal); }
TEST(LinkedListApp, ConcurrentOpsElasticEarly) { RunListConcurrencyTest(TxMode::kElasticEarly); }
TEST(LinkedListApp, ConcurrentOpsElasticRead) { RunListConcurrencyTest(TxMode::kElasticRead); }

TEST(LinkedListApp, ElasticModesReduceAborts) {
  // The headline claim of Section 6: elastic transactions diminish the
  // abort rate of list traversals under concurrent updates.
  auto run = [](TxMode mode) {
    TmSystemConfig cfg = BaseConfig(6, 3);
    cfg.tm.tx_mode = mode;
    cfg.sim.seed = 11;
    TmSystem sys(std::move(cfg));
    ShmSortedList list(sys.allocator(), sys.shmem());
    for (uint64_t key = 1; key <= 128; ++key) {
      list.HostAdd(sys.allocator(), key);
    }
    for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
      sys.SetAppBody(i, [&list, i](CoreEnv& env, TxRuntime& rt) {
        Rng rng(13 * (i + 1));
        for (int k = 0; k < 40; ++k) {
          const uint64_t key = 1 + rng.NextBelow(128);
          if (rng.NextPercent(20)) {
            if (rng.NextPercent(50)) {
              list.Add(rt, env.allocator(), key);
            } else {
              list.Remove(rt, key);
            }
          } else {
            (void)list.Contains(rt, key);
          }
        }
      });
    }
    sys.Run(kTestHorizon);
    return sys.MergedStats();
  };
  const TxStats normal = run(TxMode::kNormal);
  const TxStats elastic = run(TxMode::kElasticRead);
  EXPECT_LT(elastic.aborts, normal.aborts);
}

// ----------------------------------------------------------- MapReduce --

TEST(MapReduceApp, ParallelCountMatchesGroundTruth) {
  TmSystemConfig cfg = BaseConfig(8, 1);
  cfg.sim.shmem_bytes = 4 << 20;
  TmSystem sys(std::move(cfg));
  MapReduceConfig mr_cfg;
  mr_cfg.input_bytes = 256 << 10;
  MapReduceApp app(sys.allocator(), sys.shmem(), mr_cfg);
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&app](CoreEnv& env, TxRuntime& rt) { app.RunWorker(env, rt, 8 << 10); });
  }
  sys.Run(kTestHorizon);
  EXPECT_EQ(app.HostResultCounts(), app.HostExpectedCounts());
}

TEST(MapReduceApp, SequentialCountMatchesGroundTruth) {
  TmSystemConfig cfg = BaseConfig(2, 1);
  cfg.sim.shmem_bytes = 4 << 20;
  TmSystem sys(std::move(cfg));
  MapReduceConfig mr_cfg;
  mr_cfg.input_bytes = 128 << 10;
  MapReduceApp app(sys.allocator(), sys.shmem(), mr_cfg);
  sys.SetAppBody(0, [&app](CoreEnv& env, TxRuntime&) { app.RunSequential(env); });
  sys.Run(kTestHorizon);
  EXPECT_EQ(app.HostResultCounts(), app.HostExpectedCounts());
}

TEST(MapReduceApp, ParallelIsFasterThanSequential) {
  MapReduceConfig mr_cfg;
  // Large enough that per-chunk compute dominates the chunk-claim
  // transactions (the paper's inputs are 256MB+; Section 5.4 notes the
  // transactional load is low).
  mr_cfg.input_bytes = 512 << 10;

  auto run = [&mr_cfg](bool parallel) {
    TmSystemConfig cfg = BaseConfig(parallel ? 8 : 2, 1);
    cfg.sim.shmem_bytes = 16 << 20;
    TmSystem sys(std::move(cfg));
    MapReduceApp app(sys.allocator(), sys.shmem(), mr_cfg);
    SimTime duration = 0;
    if (parallel) {
      for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
        sys.SetAppBody(i, [&app](CoreEnv& env, TxRuntime& rt) { app.RunWorker(env, rt, 8 << 10); });
      }
    } else {
      sys.SetAppBody(0, [&app](CoreEnv& env, TxRuntime&) { app.RunSequential(env); });
    }
    duration = sys.Run(kTestHorizon);
    EXPECT_EQ(app.HostResultCounts(), app.HostExpectedCounts());
    return duration;
  };
  const SimTime seq = run(false);
  const SimTime par = run(true);
  EXPECT_LT(par, seq);
}

TEST(MapReduceApp, ResetRunClearsState) {
  TmSystemConfig cfg = BaseConfig(2, 1);
  cfg.sim.shmem_bytes = 2 << 20;
  TmSystem sys(std::move(cfg));
  MapReduceConfig mr_cfg;
  mr_cfg.input_bytes = 64 << 10;
  MapReduceApp app(sys.allocator(), sys.shmem(), mr_cfg);
  sys.SetAppBody(0, [&app](CoreEnv& env, TxRuntime&) { app.RunSequential(env); });
  sys.Run(kTestHorizon);
  EXPECT_EQ(app.HostResultCounts(), app.HostExpectedCounts());
  app.ResetRun();
  std::array<uint64_t, MapReduceApp::kLetters> zeros{};
  EXPECT_EQ(app.HostResultCounts(), zeros);
}

}  // namespace
}  // namespace tm2c

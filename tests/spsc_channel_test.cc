// The lock-free SPSC ring in isolation: wraparound, backpressure, FIFO
// under a concurrent producer/consumer, and payload (extra vector)
// integrity across the ring. TSan-targeted: the concurrent cases are the
// ones the sanitizer job exists to watch.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/runtime/spsc_channel.h"

namespace tm2c {
namespace {

Message AppMsg(uint64_t value) {
  Message m;
  m.type = MsgType::kApp;
  m.w0 = value;
  return m;
}

TEST(SpscChannel, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscChannel(2).capacity(), 2u);
  EXPECT_EQ(SpscChannel(3).capacity(), 4u);
  EXPECT_EQ(SpscChannel(64).capacity(), 64u);
  EXPECT_EQ(SpscChannel(100).capacity(), 128u);
}

TEST(SpscChannel, PushPopSingleThreaded) {
  SpscChannel ch(8);
  Message out;
  EXPECT_FALSE(ch.TryPop(&out));
  Message in = AppMsg(42);
  EXPECT_TRUE(ch.TryPush(in));
  ASSERT_TRUE(ch.TryPop(&out));
  EXPECT_EQ(out.w0, 42u);
  EXPECT_FALSE(ch.TryPop(&out));
}

TEST(SpscChannel, WrapsAroundManyTimesPastCapacity) {
  SpscChannel ch(4);  // tiny ring: every 4 messages wrap the indices
  Message out;
  for (uint64_t i = 0; i < 1000; ++i) {
    Message in = AppMsg(i);
    ASSERT_TRUE(ch.TryPush(in));
    ASSERT_TRUE(ch.TryPop(&out));
    EXPECT_EQ(out.w0, i);
  }
  EXPECT_TRUE(ch.EmptyHint());
}

TEST(SpscChannel, FullRingRefusesUntilDrained) {
  SpscChannel ch(4);
  for (uint64_t i = 0; i < 4; ++i) {
    Message in = AppMsg(i);
    ASSERT_TRUE(ch.TryPush(in));
  }
  Message refused = AppMsg(99);
  EXPECT_FALSE(ch.TryPush(refused));
  EXPECT_EQ(refused.w0, 99u);  // refused push leaves the message intact
  Message out;
  ASSERT_TRUE(ch.TryPop(&out));
  EXPECT_EQ(out.w0, 0u);
  EXPECT_TRUE(ch.TryPush(refused));  // one slot freed, push succeeds again
  for (uint64_t expect : {1u, 2u, 3u, 99u}) {
    ASSERT_TRUE(ch.TryPop(&out));
    EXPECT_EQ(out.w0, expect);
  }
}

TEST(SpscChannel, ExtraPayloadSurvivesTheRing) {
  SpscChannel ch(2);
  Message in = AppMsg(7);
  in.extra = std::vector<uint64_t>{10, 20, 30};
  ASSERT_TRUE(ch.TryPush(in));
  Message out;
  ASSERT_TRUE(ch.TryPop(&out));
  EXPECT_EQ(out.extra, (std::vector<uint64_t>{10, 20, 30}));
}

TEST(SpscChannel, ConcurrentProducerConsumerKeepsFifoOrder) {
  // Small capacity forces constant wraparound and real backpressure while
  // both sides run full speed on separate threads.
  constexpr uint64_t kMessages = 200000;
  SpscChannel ch(8);
  std::thread producer([&ch]() {
    for (uint64_t i = 0; i < kMessages; ++i) {
      Message in = AppMsg(i);
      while (!ch.TryPush(in)) {
        std::this_thread::yield();
      }
    }
  });
  uint64_t received = 0;
  uint64_t order_violations = 0;
  Message out;
  while (received < kMessages) {
    if (ch.TryPop(&out)) {
      if (out.w0 != received) {
        ++order_violations;
      }
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(order_violations, 0u);
  EXPECT_FALSE(ch.TryPop(&out));
}

TEST(SpscChannel, ConcurrentPayloadIntegrity) {
  // Every message carries an extra vector derived from its sequence
  // number; the consumer validates contents, catching torn publication.
  constexpr uint64_t kMessages = 20000;
  SpscChannel ch(4);
  std::thread producer([&ch]() {
    for (uint64_t i = 0; i < kMessages; ++i) {
      Message in = AppMsg(i);
      in.extra = std::vector<uint64_t>{i, i * 2, i * 3};
      while (!ch.TryPush(in)) {
        std::this_thread::yield();
      }
    }
  });
  Message out;
  for (uint64_t i = 0; i < kMessages; ++i) {
    while (!ch.TryPop(&out)) {
      std::this_thread::yield();
    }
    ASSERT_EQ(out.w0, i);
    ASSERT_EQ(out.extra, (std::vector<uint64_t>{i, i * 2, i * 3}));
  }
  producer.join();
}

}  // namespace
}  // namespace tm2c

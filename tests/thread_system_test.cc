// ThreadSystem transport semantics on real OS threads, exercised over both
// channel kinds (lock-free SPSC rings and the v1 mutex mailboxes):
// delivery, per-pair FIFO, shutdown delivered to a receiver blocked in
// Recv, and a barrier stress. No simulator, no fibers — this suite (plus
// spsc_channel_test and tm_thread_test) is what the TSan CI job runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/runtime/thread_system.h"

namespace tm2c {
namespace {

constexpr ChannelKind kBothChannels[] = {ChannelKind::kSpscRing, ChannelKind::kMutexMailbox};

ThreadSystemConfig SmallConfig(ChannelKind channel, uint32_t cores = 4, uint32_t service = 1) {
  ThreadSystemConfig cfg;
  cfg.platform = MakeSccPlatform(0);
  cfg.num_cores = cores;
  cfg.num_service = service;
  cfg.shmem_bytes = 1 << 16;
  cfg.channel = channel;
  return cfg;
}

TEST(ThreadSystem, PingPongAcrossRealThreads) {
  for (const ChannelKind channel : kBothChannels) {
    ThreadSystem sys(SmallConfig(channel, 2));
    std::atomic<uint64_t> answer{0};
    sys.SetCoreMain(0, [](CoreEnv& env) {
      Message m = env.Recv();
      if (m.type == MsgType::kShutdown) {
        return;
      }
      Message rsp;
      rsp.type = MsgType::kEchoRsp;
      rsp.w0 = m.w0 + 1;
      env.Send(m.src, std::move(rsp));
    });
    sys.SetCoreMain(1, [&answer](CoreEnv& env) {
      Message m;
      m.type = MsgType::kEcho;
      m.w0 = 41;
      env.Send(0, std::move(m));
      answer = env.Recv().w0;
    });
    sys.RunToCompletion();
    EXPECT_EQ(answer.load(), 42u) << ChannelKindName(channel);
  }
}

TEST(ThreadSystem, FifoPerSenderReceiverPairUnderLoad) {
  // Three producers blast one consumer; per-source sequence numbers must
  // arrive monotonically even though the sources interleave arbitrarily.
  constexpr uint64_t kPerSource = 20000;
  for (const ChannelKind channel : kBothChannels) {
    ThreadSystemConfig cfg = SmallConfig(channel, 4);
    cfg.channel_capacity = 8;  // tiny rings: constant wraparound + backpressure
    ThreadSystem sys(cfg);
    for (uint32_t src = 1; src < 4; ++src) {
      sys.SetCoreMain(src, [](CoreEnv& env) {
        for (uint64_t i = 0; i < kPerSource; ++i) {
          Message m;
          m.type = MsgType::kApp;
          m.w0 = i;
          env.Send(0, std::move(m));
        }
      });
    }
    std::atomic<uint64_t> violations{0};
    sys.SetCoreMain(0, [&violations](CoreEnv& env) {
      uint64_t next_from[4] = {0, 0, 0, 0};
      for (uint64_t received = 0; received < 3 * kPerSource; ++received) {
        Message m = env.Recv();
        if (m.w0 != next_from[m.src]) {
          violations.fetch_add(1);
        }
        next_from[m.src] = m.w0 + 1;
      }
    });
    sys.RunToCompletion();
    EXPECT_EQ(violations.load(), 0u) << ChannelKindName(channel);
  }
}

TEST(ThreadSystem, ShutdownWakesReceiverBlockedInRecv) {
  // The receiver parks in Recv with nothing in flight; SendShutdown from
  // the harness thread (outside any core) must wake it. Covers the SPSC
  // injection lane and its eventcount wake.
  for (const ChannelKind channel : kBothChannels) {
    ThreadSystemConfig cfg = SmallConfig(channel, 2);
    cfg.spin_rounds = 0;  // park almost immediately: the worst case
    cfg.yield_rounds = 1;
    ThreadSystem sys(cfg);
    std::atomic<bool> got_shutdown{false};
    std::atomic<bool> receiver_entered{false};
    sys.SetCoreMain(0, [&](CoreEnv& env) {
      receiver_entered = true;
      Message m = env.Recv();
      got_shutdown = m.type == MsgType::kShutdown;
    });
    sys.SetCoreMain(1, [&](CoreEnv&) {
      while (!receiver_entered.load()) {
        std::this_thread::yield();
      }
      // Give the receiver time to actually park before the shutdown.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    });
    std::thread harness([&sys, &receiver_entered]() {
      while (!receiver_entered.load()) {
        std::this_thread::yield();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      sys.SendShutdown(0);
    });
    sys.RunToCompletion();
    harness.join();
    EXPECT_TRUE(got_shutdown.load()) << ChannelKindName(channel);
  }
}

TEST(ThreadSystem, ShutdownArrivesAfterPendingRingTraffic) {
  // The injection lane is polled only when the rings are empty, so a
  // shutdown never overtakes protocol messages already queued for the
  // receiver.
  ThreadSystem sys(SmallConfig(ChannelKind::kSpscRing, 2));
  std::atomic<uint64_t> drained{0};
  std::atomic<bool> sender_done{false};
  sys.SetCoreMain(1, [&](CoreEnv& env) {
    for (uint64_t i = 0; i < 100; ++i) {
      Message m;
      m.type = MsgType::kApp;
      m.w0 = i;
      env.Send(0, std::move(m));
    }
    sender_done = true;
  });
  std::thread harness([&]() {
    while (!sender_done.load()) {
      std::this_thread::yield();
    }
    sys.SendShutdown(0);
  });
  sys.SetCoreMain(0, [&](CoreEnv& env) {
    // Do not touch the inbox until both the traffic and the shutdown are
    // in place: the first 100 Recvs must then all be kApp.
    while (!sender_done.load()) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    for (;;) {
      Message m = env.Recv();
      if (m.type == MsgType::kShutdown) {
        return;
      }
      ASSERT_EQ(m.type, MsgType::kApp);
      drained.fetch_add(1);
    }
  });
  sys.RunToCompletion();
  harness.join();
  EXPECT_EQ(drained.load(), 100u);
}

TEST(ThreadSystem, BarrierAndShmem) {
  for (const ChannelKind channel : kBothChannels) {
    ThreadSystem sys(SmallConfig(channel, 4));
    for (uint32_t c = 0; c < 4; ++c) {
      sys.SetCoreMain(c, [c](CoreEnv& env) {
        env.ShmemWrite(c * 8, c + 1);
        env.Barrier();
        // After the barrier every core sees every write.
        uint64_t sum = 0;
        for (uint32_t i = 0; i < 4; ++i) {
          sum += env.ShmemRead(i * 8);
        }
        env.ShmemWrite((4 + c) * 8, sum);
      });
    }
    sys.RunToCompletion();
    for (uint32_t c = 0; c < 4; ++c) {
      EXPECT_EQ(sys.shmem().LoadWord((4 + c) * 8), 10u) << ChannelKindName(channel);
    }
  }
}

TEST(ThreadSystem, BarrierStressManyGenerations) {
  // Every core publishes its arrival count before each barrier and checks
  // after it that every peer reached the same generation: a barrier that
  // ever lets a thread slip through early trips the assertion.
  constexpr uint32_t kCores = 8;
  constexpr uint64_t kGenerations = 500;
  ThreadSystem sys(SmallConfig(ChannelKind::kSpscRing, kCores, 2));
  std::atomic<uint64_t> violations{0};
  for (uint32_t c = 0; c < kCores; ++c) {
    sys.SetCoreMain(c, [c, &violations](CoreEnv& env) {
      for (uint64_t g = 1; g <= kGenerations; ++g) {
        env.ShmemWrite(c * 8, g);
        env.Barrier();
        for (uint32_t peer = 0; peer < kCores; ++peer) {
          if (env.ShmemRead(peer * 8) < g) {
            violations.fetch_add(1);
          }
        }
        env.Barrier();  // keep generations separated
      }
    });
  }
  sys.RunToCompletion();
  EXPECT_EQ(violations.load(), 0u);
}

TEST(ThreadSystem, TestAndSetIsExclusive) {
  // All cores hammer the same modelled TAS register; exactly one winner
  // per round, counted exactly.
  constexpr uint32_t kCores = 4;
  constexpr uint64_t kRounds = 2000;
  ThreadSystem sys(SmallConfig(ChannelKind::kSpscRing, kCores, 1));
  const uint64_t tas_addr = 0;
  const uint64_t wins_base = 64;
  for (uint32_t c = 0; c < kCores; ++c) {
    sys.SetCoreMain(c, [c, tas_addr, wins_base](CoreEnv& env) {
      uint64_t wins = 0;
      for (uint64_t r = 0; r < kRounds; ++r) {
        const bool won = env.ShmemTestAndSet(tas_addr);
        env.Barrier();  // all attempts settled: exactly one core holds it
        if (won) {
          ++wins;
          env.ShmemWrite(tas_addr, 0);  // release for the next round
        }
        env.Barrier();
      }
      env.ShmemWrite(wins_base + c * 8, wins);
    });
  }
  sys.RunToCompletion();
  uint64_t total_wins = 0;
  for (uint32_t c = 0; c < kCores; ++c) {
    total_wins += sys.shmem().LoadWord(wins_base + c * 8);
  }
  // The register starts free each round and is only released after the
  // settling barrier, so every round has exactly one winner.
  EXPECT_EQ(total_wins, kRounds);
}

}  // namespace
}  // namespace tm2c

#include <gtest/gtest.h>

#include "src/cm/contention_manager.h"

namespace tm2c {
namespace {

TxInfo Info(uint32_t core, uint64_t metric) {
  TxInfo info;
  info.core = core;
  info.epoch = (static_cast<uint64_t>(core) << 32) | 1;
  info.metric = metric;
  return info;
}

TEST(CmNames, RoundTrip) {
  for (CmKind kind : {CmKind::kNone, CmKind::kBackoffRetry, CmKind::kOffsetGreedy,
                      CmKind::kWholly, CmKind::kFairCm}) {
    EXPECT_EQ(CmKindByName(CmKindName(kind)), kind);
  }
}

TEST(CmNames, UnknownNameDies) { EXPECT_DEATH(CmKindByName("bogus"), "unknown"); }

TEST(PriorityWins, LowerMetricWins) {
  EXPECT_TRUE(PriorityWins(Info(5, 10), Info(1, 20)));
  EXPECT_FALSE(PriorityWins(Info(1, 20), Info(5, 10)));
}

TEST(PriorityWins, TieBrokenByCoreId) {
  EXPECT_TRUE(PriorityWins(Info(1, 10), Info(2, 10)));
  EXPECT_FALSE(PriorityWins(Info(2, 10), Info(1, 10)));
}

TEST(PriorityWins, TotalOrder) {
  // Antisymmetric for distinct transactions: exactly one side wins.
  const TxInfo a = Info(3, 7);
  const TxInfo b = Info(4, 7);
  const TxInfo c = Info(5, 3);
  for (const TxInfo& x : {a, b, c}) {
    for (const TxInfo& y : {a, b, c}) {
      if (x.core == y.core) {
        continue;
      }
      EXPECT_NE(PriorityWins(x, y), PriorityWins(y, x));
    }
  }
  // Transitive on this sample: c < a < b.
  EXPECT_TRUE(PriorityWins(c, a));
  EXPECT_TRUE(PriorityWins(a, b));
  EXPECT_TRUE(PriorityWins(c, b));
}

TEST(SelfAbortCms, RequesterAlwaysLoses) {
  for (CmKind kind : {CmKind::kNone, CmKind::kBackoffRetry}) {
    const auto cm = MakeContentionManager(kind);
    EXPECT_EQ(cm->kind(), kind);
    // Even a requester with a much better metric loses: these policies
    // never arbitrate.
    EXPECT_EQ(cm->Decide(Info(1, 0), {Info(2, 1000)}, ConflictKind::kReadAfterWrite),
              CmDecision::kAbortRequester);
    EXPECT_EQ(cm->Decide(Info(1, 0), {Info(2, 1000)}, ConflictKind::kWriteAfterRead),
              CmDecision::kAbortRequester);
  }
}

TEST(PriorityCms, RequesterWinsWithStrictlyBetterMetric) {
  for (CmKind kind : {CmKind::kWholly, CmKind::kFairCm}) {
    const auto cm = MakeContentionManager(kind);
    EXPECT_EQ(cm->Decide(Info(1, 5), {Info(2, 9)}, ConflictKind::kWriteAfterWrite),
              CmDecision::kAbortEnemies);
    EXPECT_EQ(cm->Decide(Info(1, 9), {Info(2, 5)}, ConflictKind::kWriteAfterWrite),
              CmDecision::kAbortRequester);
  }
}

TEST(PriorityCms, MustBeatEveryHolder) {
  const auto cm = MakeContentionManager(CmKind::kFairCm);
  // Beats holder 2 but not holder 3: requester aborts (all-but-one rule).
  EXPECT_EQ(cm->Decide(Info(5, 10), {Info(2, 20), Info(3, 5)}, ConflictKind::kWriteAfterRead),
            CmDecision::kAbortRequester);
  // Beats both.
  EXPECT_EQ(cm->Decide(Info(5, 1), {Info(2, 20), Info(3, 5)}, ConflictKind::kWriteAfterRead),
            CmDecision::kAbortEnemies);
}

TEST(PriorityCms, WireMetricPassesThrough) {
  const auto cm = MakeContentionManager(CmKind::kWholly);
  EXPECT_EQ(cm->MetricFromWire(1234, /*service_local_now=*/99999), 1234u);
}

TEST(OffsetGreedy, EstimatesStartFromOffset) {
  const auto cm = MakeContentionManager(CmKind::kOffsetGreedy);
  // Local clock reads 1000; the requester reports having started 300 time
  // units before sending: estimated start is 700 (the message delay is
  // silently absorbed into the estimate — the policy's known flaw).
  EXPECT_EQ(cm->MetricFromWire(300, 1000), 700u);
  // Saturates instead of wrapping when the offset exceeds the clock.
  EXPECT_EQ(cm->MetricFromWire(5000, 1000), 0u);
}

TEST(OffsetGreedy, OlderTransactionWins) {
  const auto cm = MakeContentionManager(CmKind::kOffsetGreedy);
  // Metrics are estimated start timestamps: lower (older) wins.
  EXPECT_EQ(cm->Decide(Info(1, 100), {Info(2, 200)}, ConflictKind::kReadAfterWrite),
            CmDecision::kAbortEnemies);
  EXPECT_EQ(cm->Decide(Info(1, 200), {Info(2, 100)}, ConflictKind::kReadAfterWrite),
            CmDecision::kAbortRequester);
}

}  // namespace
}  // namespace tm2c

// Shared TxStoreApi semantics cases.
//
// Both store implementations — the partitioned hash KV store and the
// partitioned B+-tree — must satisfy exactly the same keyed-operation
// contract; these cases are written once against TxStoreApi and
// instantiated by tests/kvstore_test.cc and tests/ordered_index_test.cc so
// the contract cannot drift between them. Each case takes the TmSystem and
// a freshly constructed store; structure-specific checks (hash chain
// accounting, tree-shape invariants) stay in the per-store suites.
#ifndef TM2C_TESTS_STORE_SEMANTICS_H_
#define TM2C_TESTS_STORE_SEMANTICS_H_

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/apps/tx_store_api.h"
#include "src/tm/tm_system.h"

namespace tm2c {

// Put/Get/Delete/ReadModifyWrite round trip through the one-transaction
// wrappers. Requires value_words == 2.
inline void RunStoreMutationSemanticsCase(TmSystem& sys, TxStoreApi& store) {
  ASSERT_EQ(store.value_words(), 2u);
  struct Outcome {
    bool inserted = false, updated_is_insert = true, found_after_put = false;
    bool rmw_applied = false, removed = false, found_after_delete = true;
    bool second_remove = true, rmw_after_delete = true;
    std::vector<uint64_t> got, after_rmw, removed_value;
  } out;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    const uint64_t v1[2] = {10, 20};
    const uint64_t v2[2] = {30, 40};
    out.inserted = store.Put(rt, 5, v1);
    out.updated_is_insert = store.Put(rt, 5, v2);
    out.found_after_put = store.Get(rt, 5, &out.got);
    out.rmw_applied = store.ReadModifyWrite(rt, 5, [](uint64_t* v) { v[0] += 5; });
    store.Get(rt, 5, &out.after_rmw);
    out.removed = store.Delete(rt, 5, &out.removed_value);
    out.found_after_delete = store.Get(rt, 5, nullptr);
    out.second_remove = store.Delete(rt, 5);
    out.rmw_after_delete = store.ReadModifyWrite(rt, 5, [](uint64_t* v) { v[0] += 1; });
  });
  sys.Run();
  EXPECT_TRUE(out.inserted);
  EXPECT_FALSE(out.updated_is_insert);
  ASSERT_TRUE(out.found_after_put);
  EXPECT_EQ(out.got, (std::vector<uint64_t>{30, 40}));
  EXPECT_TRUE(out.rmw_applied);
  EXPECT_EQ(out.after_rmw, (std::vector<uint64_t>{35, 40}));
  ASSERT_TRUE(out.removed);
  EXPECT_EQ(out.removed_value, (std::vector<uint64_t>{35, 40}));
  EXPECT_FALSE(out.found_after_delete);
  EXPECT_FALSE(out.second_remove);
  EXPECT_FALSE(out.rmw_after_delete);
  EXPECT_EQ(store.HostSize(), 0u);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

// Insert is insert-only: a second insert of the same key must leave the
// existing value alone. Requires value_words == 1.
inline void RunStoreInsertOnlyCase(TmSystem& sys, TxStoreApi& store) {
  ASSERT_EQ(store.value_words(), 1u);
  bool first = false, second = true;
  std::vector<uint64_t> got;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    const uint64_t a = 7, b = 9;
    first = store.Insert(rt, 42, &a);
    second = store.Insert(rt, 42, &b);
    store.Get(rt, 42, &got);
  });
  sys.Run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
  EXPECT_EQ(got, (std::vector<uint64_t>{7}));
}

// Host-side load/inspect helpers: HostPut insert-vs-update return value,
// HostGet hit/miss, HostSize, and HostForEach visiting every resident
// entry exactly once with its value. Works for any value_words.
inline void RunStoreHostHelpersCase(TxStoreApi& store, uint64_t num_keys = 40) {
  const uint32_t vw = store.value_words();
  std::vector<uint64_t> value(vw);
  for (uint64_t key = 1; key <= num_keys; ++key) {
    for (uint32_t w = 0; w < vw; ++w) {
      value[w] = key * (w + 1);
    }
    EXPECT_TRUE(store.HostPut(key, value.data()));
  }
  for (uint32_t w = 0; w < vw; ++w) {
    value[w] = 99 - w;
  }
  EXPECT_FALSE(store.HostPut(17, value.data()));  // update, not insert
  EXPECT_EQ(store.HostSize(), num_keys);
  std::vector<uint64_t> got(vw, 0);
  ASSERT_TRUE(store.HostGet(17, got.data()));
  EXPECT_EQ(got[0], 99u);
  EXPECT_FALSE(store.HostGet(num_keys + 1, got.data()));
  uint64_t seen = 0;
  std::set<uint64_t> keys;
  store.HostForEach([&](uint64_t key, const uint64_t* v) {
    ++seen;
    keys.insert(key);
    if (key != 17 && vw >= 2) {
      EXPECT_EQ(v[1], key * 2);
    }
  });
  EXPECT_EQ(seen, num_keys);
  EXPECT_EQ(keys.size(), num_keys);
}

// Every word of every slab must route to the slab's owning partition: the
// share-little property both stores exist to provide.
inline void RunStoreSlabRoutingCase(TmSystem& sys, TxStoreApi& store) {
  const AddressMap& map = sys.address_map();
  for (uint32_t p = 0; p < store.num_partitions(); ++p) {
    const auto [base, bytes] = store.SlabRange(p);
    for (uint64_t addr = base; addr < base + bytes; addr += kWordBytes) {
      ASSERT_EQ(map.PartitionOf(addr), p) << "addr " << addr;
      ASSERT_EQ(map.ResponsibleCore(addr), sys.deployment().ServiceCore(p));
    }
  }
}

}  // namespace tm2c

#endif  // TM2C_TESTS_STORE_SEMANTICS_H_

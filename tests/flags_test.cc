#include <gtest/gtest.h>

#include "src/common/flags.h"

namespace tm2c {
namespace {

TEST(FlagSet, ParsesEqualsForm) {
  int cores = 4;
  double ratio = 0.5;
  std::string name = "default";
  FlagSet flags;
  flags.Register("cores", &cores, "core count");
  flags.Register("ratio", &ratio, "a ratio");
  flags.Register("name", &name, "a name");
  const char* argv[] = {"prog", "--cores=48", "--ratio=0.25", "--name=scc800"};
  flags.Parse(4, const_cast<char**>(argv));
  EXPECT_EQ(cores, 48);
  EXPECT_DOUBLE_EQ(ratio, 0.25);
  EXPECT_EQ(name, "scc800");
}

TEST(FlagSet, ParsesSpaceSeparatedForm) {
  int cores = 4;
  FlagSet flags;
  flags.Register("cores", &cores, "core count");
  const char* argv[] = {"prog", "--cores", "24"};
  flags.Parse(3, const_cast<char**>(argv));
  EXPECT_EQ(cores, 24);
}

TEST(FlagSet, BoolFlagsDefaultTrueWhenBare) {
  bool verbose = false;
  FlagSet flags;
  flags.Register("verbose", &verbose, "chatty");
  const char* argv[] = {"prog", "--verbose"};
  flags.Parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(verbose);
}

TEST(FlagSet, BoolFlagsAcceptExplicitValues) {
  bool verbose = true;
  FlagSet flags;
  flags.Register("verbose", &verbose, "chatty");
  const char* argv[] = {"prog", "--verbose=false"};
  flags.Parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(verbose);
}

TEST(FlagSet, CollectsPositionalArguments) {
  int n = 0;
  FlagSet flags;
  flags.Register("n", &n, "count");
  const char* argv[] = {"prog", "input.txt", "--n=3", "output.txt"};
  const auto positional = flags.Parse(4, const_cast<char**>(argv));
  ASSERT_EQ(positional.size(), 2u);
  EXPECT_EQ(positional[0], "input.txt");
  EXPECT_EQ(positional[1], "output.txt");
  EXPECT_EQ(n, 3);
}

TEST(FlagSet, Uint64RejectsNegative) {
  uint64_t v = 1;
  FlagSet flags;
  flags.Register("v", &v, "a value");
  const char* argv[] = {"prog", "--v=-5"};
  EXPECT_EXIT(flags.Parse(2, const_cast<char**>(argv)), ::testing::ExitedWithCode(2),
              "bad value");
}

TEST(FlagSet, UnknownFlagExits) {
  FlagSet flags;
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_EXIT(flags.Parse(2, const_cast<char**>(argv)), ::testing::ExitedWithCode(2),
              "unknown flag");
}

TEST(FlagSet, IllFormedIntExits) {
  int v = 0;
  FlagSet flags;
  flags.Register("v", &v, "a value");
  const char* argv[] = {"prog", "--v=12abc"};
  EXPECT_EXIT(flags.Parse(2, const_cast<char**>(argv)), ::testing::ExitedWithCode(2),
              "bad value");
}

TEST(FlagSet, MissingValueExits) {
  int v = 0;
  FlagSet flags;
  flags.Register("v", &v, "a value");
  const char* argv[] = {"prog", "--v"};
  EXPECT_EXIT(flags.Parse(2, const_cast<char**>(argv)), ::testing::ExitedWithCode(2),
              "needs a value");
}

}  // namespace
}  // namespace tm2c

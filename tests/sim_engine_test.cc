#include <gtest/gtest.h>

#include <vector>

#include "src/sim/engine.h"
#include "src/sim/fiber.h"
#include "src/sim/time.h"

namespace tm2c {
namespace {

TEST(Fiber, RunsToCompletion) {
  int state = 0;
  Fiber f([&state]() { state = 1; });
  EXPECT_FALSE(f.finished());
  f.Resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(state, 1);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> trace;
  Fiber* handle = nullptr;
  Fiber f([&trace, &handle]() {
    trace.push_back(1);
    handle->Yield();
    trace.push_back(3);
  });
  handle = &f;
  f.Resume();
  trace.push_back(2);
  f.Resume();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksRunningFiber) {
  EXPECT_EQ(Fiber::Current(), nullptr);
  Fiber* observed = nullptr;
  Fiber f([&observed]() { observed = Fiber::Current(); });
  f.Resume();
  EXPECT_EQ(observed, &f);
  EXPECT_EQ(Fiber::Current(), nullptr);
}

TEST(SimEngine, EventsRunInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.ScheduleAt(30, [&order]() { order.push_back(3); });
  engine.ScheduleAt(10, [&order]() { order.push_back(1); });
  engine.ScheduleAt(20, [&order]() { order.push_back(2); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30u);
}

TEST(SimEngine, EqualTimestampsRunFifo) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.ScheduleAt(5, [&order, i]() { order.push_back(i); });
  }
  engine.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimEngine, SleepAdvancesTime) {
  SimEngine engine;
  SimTime woke_at = 0;
  engine.AddActor([&engine, &woke_at]() {
    engine.Sleep(100);
    woke_at = engine.now();
    engine.Sleep(50);
  });
  engine.Run();
  EXPECT_EQ(woke_at, 100u);
  EXPECT_EQ(engine.now(), 150u);
}

TEST(SimEngine, RunUntilStopsEarly) {
  SimEngine engine;
  int steps = 0;
  engine.AddActor([&engine, &steps]() {
    for (int i = 0; i < 100; ++i) {
      engine.Sleep(10);
      ++steps;
    }
  });
  engine.Run(55);
  EXPECT_EQ(steps, 5);
  // now() reflects the last executed event, not the horizon.
  EXPECT_EQ(engine.now(), 50u);
}

TEST(SimEngine, BlockAndWake) {
  SimEngine engine;
  SimTime woke_at = 0;
  const size_t sleeper = engine.AddActor([&engine, &woke_at]() {
    woke_at = engine.BlockCurrent();
  });
  engine.AddActor([&engine, sleeper]() {
    engine.Sleep(200);
    engine.WakeActor(sleeper, 25);
  });
  engine.Run();
  EXPECT_EQ(woke_at, 225u);
}

TEST(SimEngine, ActorBlockedReflectsState) {
  SimEngine engine;
  const size_t sleeper = engine.AddActor([&engine]() { engine.BlockCurrent(); });
  bool blocked_seen = false;
  engine.AddActor([&engine, sleeper, &blocked_seen]() {
    engine.Sleep(10);
    blocked_seen = engine.ActorBlocked(sleeper);
    engine.WakeActor(sleeper);
  });
  engine.Run();
  EXPECT_TRUE(blocked_seen);
  EXPECT_FALSE(engine.ActorBlocked(sleeper));
}

TEST(SimEngine, CurrentActorIdentifiesCaller) {
  SimEngine engine;
  std::vector<size_t> seen;
  for (int i = 0; i < 3; ++i) {
    engine.AddActor([&engine, &seen]() { seen.push_back(engine.CurrentActor()); });
  }
  engine.Run();
  EXPECT_EQ(seen, (std::vector<size_t>{0, 1, 2}));
}

TEST(SimEngine, RequestStopHaltsLoop) {
  SimEngine engine;
  int ticks = 0;
  engine.AddActor([&engine, &ticks]() {
    for (int i = 0; i < 1000; ++i) {
      engine.Sleep(1);
      if (++ticks == 10) {
        engine.RequestStop();
        // The actor keeps running after the stop request until it yields.
      }
    }
  });
  engine.Run();
  EXPECT_EQ(ticks, 10);
}

TEST(SimEngineChaos, ShuffleTiesIsSeededAndDeterministic) {
  auto run = [](uint64_t seed, bool shuffle) {
    SimEngine engine;
    ChaosConfig chaos;
    chaos.seed = seed;
    chaos.shuffle_ties = shuffle;
    engine.SetChaos(chaos);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
      engine.ScheduleAt(5, [&order, i]() { order.push_back(i); });
    }
    engine.Run();
    return order;
  };
  std::vector<int> fifo(16);
  for (int i = 0; i < 16; ++i) {
    fifo[i] = i;
  }
  // Chaos off: the explicit sequence-number tie-break keeps FIFO order
  // regardless of the seed.
  EXPECT_EQ(run(7, false), fifo);
  EXPECT_EQ(run(8, false), fifo);
  // Chaos on: a seed is one deterministic permutation; different seeds
  // explore different ones.
  EXPECT_EQ(run(7, true), run(7, true));
  EXPECT_NE(run(7, true), fifo);
  EXPECT_NE(run(7, true), run(8, true));
}

TEST(SimEngineChaos, ShuffledEventsStillRespectTimeOrder) {
  SimEngine engine;
  ChaosConfig chaos;
  chaos.seed = 42;
  chaos.shuffle_ties = true;
  engine.SetChaos(chaos);
  std::vector<int> order;
  // Ties only exist within one instant: cross-instant order is inviolable.
  for (int i = 0; i < 8; ++i) {
    engine.ScheduleAt(20, [&order, i]() { order.push_back(100 + i); });
    engine.ScheduleAt(10, [&order, i]() { order.push_back(i); });
  }
  engine.Run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_LT(order[i], 100);
    EXPECT_GE(order[8 + i], 100);
  }
}

TEST(SimEngine, ManyActorsInterleaveDeterministically) {
  // Two identical engines must produce identical interleavings.
  auto run_once = []() {
    SimEngine engine;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i) {
      engine.AddActor([&engine, &order, i]() {
        for (int k = 0; k < 5; ++k) {
          engine.Sleep(static_cast<SimTime>(7 * (i + 1)));
          order.push_back(i);
        }
      });
    }
    engine.Run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ(MicrosToSim(5), 5u * kPicosPerMicro);
  EXPECT_DOUBLE_EQ(SimToMicros(MicrosToSim(5)), 5.0);
  // 533 MHz -> ~1876 ps period.
  const SimTime period = PeriodPsFromMhz(533);
  EXPECT_NEAR(static_cast<double>(period), 1876.0, 1.0);
  EXPECT_EQ(CyclesToSim(10, period), 10 * period);
}

}  // namespace
}  // namespace tm2c

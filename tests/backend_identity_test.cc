// Backend identity: the same TmSystem workload, run once on the simulator
// and once on real threads (both channel kinds), must commit exactly the
// same transactions and leave identical shared-memory state. This is the
// contract that makes native bench rows comparable to simulated ones —
// the backend changes the clock and the transport, never the protocol
// outcome of a fixed-work workload.
//
// Uses the simulator (fibers) as well as threads, so it is deliberately
// NOT part of the TSan-labelled suites.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tm/tm_system.h"

namespace tm2c {
namespace {

struct RunResult {
  uint64_t commits = 0;
  uint64_t counter_sum = 0;
  bool tables_empty = false;
};

// Fixed work per app core: every core performs kIncsPerCore transactional
// increments spread over kAccounts shared words. Commit count is workload-
// determined (every increment eventually commits), so it must match across
// backends exactly; the final memory state likewise.
RunResult RunCounterWorkload(TmSystemConfig cfg) {
  constexpr uint32_t kAccounts = 16;
  constexpr int kIncsPerCore = 200;
  TmSystem sys(cfg);
  const uint64_t base = sys.allocator().AllocGlobal(kAccounts * kWordBytes);
  for (uint32_t a = 0; a < kAccounts; ++a) {
    sys.shmem().StoreWord(base + a * kWordBytes, 0);
  }
  sys.SetAllAppBodies([base](CoreEnv& env, TxRuntime& rt) {
    Rng rng(env.core_id() * 97 + 13);
    for (int k = 0; k < kIncsPerCore; ++k) {
      const uint64_t addr = base + rng.NextBelow(kAccounts) * kWordBytes;
      rt.Execute([addr](Tx& tx) { tx.Write(addr, tx.Read(addr) + 1); });
    }
  });
  sys.Run();
  RunResult result;
  result.commits = sys.MergedStats().commits;
  for (uint32_t a = 0; a < kAccounts; ++a) {
    result.counter_sum += sys.shmem().LoadWord(base + a * kWordBytes);
  }
  result.tables_empty = sys.AllLockTablesEmpty();
  return result;
}

TmSystemConfig BaseConfig() {
  TmSystemConfig cfg;
  cfg.sim.platform = MakeOpteronPlatform();
  cfg.sim.num_cores = 4;
  cfg.sim.num_service = 2;
  cfg.sim.shmem_bytes = 1 << 20;
  cfg.tm.cm = CmKind::kFairCm;
  return cfg;
}

TEST(BackendIdentity, SimAndThreadsCommitTheSameWorkload) {
  TmSystemConfig sim_cfg = BaseConfig();
  sim_cfg.backend = BackendKind::kSim;
  const RunResult sim = RunCounterWorkload(sim_cfg);

  const uint64_t expected_commits = 2ull * 200;  // 2 app cores x 200 incs
  EXPECT_EQ(sim.commits, expected_commits);
  EXPECT_EQ(sim.counter_sum, expected_commits);
  EXPECT_TRUE(sim.tables_empty);

  for (const ChannelKind channel : {ChannelKind::kSpscRing, ChannelKind::kMutexMailbox}) {
    TmSystemConfig thr_cfg = BaseConfig();
    thr_cfg.backend = BackendKind::kThreads;
    thr_cfg.channel = channel;
    const RunResult thr = RunCounterWorkload(thr_cfg);
    EXPECT_EQ(thr.commits, sim.commits) << ChannelKindName(channel);
    EXPECT_EQ(thr.counter_sum, sim.counter_sum) << ChannelKindName(channel);
  }
}

TEST(BackendIdentity, ThreadBackendRunReturnsWallClock) {
  TmSystemConfig cfg = BaseConfig();
  cfg.backend = BackendKind::kThreads;
  TmSystem sys(cfg);
  sys.SetAllAppBodies([](CoreEnv& env, TxRuntime&) { env.Compute(100000); });
  const SimTime elapsed = sys.Run();
  EXPECT_GT(elapsed, 0u);  // host time passed; nothing modelled about it
}

TEST(BackendIdentity, MultitaskedStrategyRunsOnThreads) {
  // The multitasked deployment (every core both serves and runs the app)
  // uses the post-body serve loop + broadcast shutdown path.
  TmSystemConfig cfg = BaseConfig();
  cfg.backend = BackendKind::kThreads;
  cfg.sim.strategy = DeployStrategy::kMultitasked;
  cfg.sim.num_service = 0;
  const RunResult result = RunCounterWorkload(cfg);
  EXPECT_EQ(result.commits, 4ull * 200);  // all 4 cores are app cores
  EXPECT_EQ(result.counter_sum, 4ull * 200);
}

}  // namespace
}  // namespace tm2c

// Backend identity: the same TmSystem workload, run on the simulator, on
// real threads (both channel kinds), AND on the multi-process backend
// (partition servers as forked processes over sockets), must commit
// exactly the same transactions and leave identical shared-memory state.
// This is the contract that makes native bench rows comparable to
// simulated ones — the backend changes the clock and the transport, never
// the protocol outcome of a fixed-work workload.
//
// Uses the simulator (fibers) as well as threads and fork, so it is
// deliberately NOT part of the TSan-labelled suites.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>

#include "src/apps/kvstore.h"
#include "src/apps/ordered_index.h"
#include "src/common/rng.h"
#include "src/tm/tm_system.h"

namespace tm2c {
namespace {

struct RunResult {
  uint64_t commits = 0;
  uint64_t counter_sum = 0;
  bool tables_empty = false;
};

// Fixed work per app core: every core performs kIncsPerCore transactional
// increments spread over kAccounts shared words. Commit count is workload-
// determined (every increment eventually commits), so it must match across
// backends exactly; the final memory state likewise.
RunResult RunCounterWorkload(TmSystemConfig cfg) {
  constexpr uint32_t kAccounts = 16;
  constexpr int kIncsPerCore = 200;
  TmSystem sys(cfg);
  const uint64_t base = sys.allocator().AllocGlobal(kAccounts * kWordBytes);
  for (uint32_t a = 0; a < kAccounts; ++a) {
    sys.shmem().StoreWord(base + a * kWordBytes, 0);
  }
  sys.SetAllAppBodies([base](CoreEnv& env, TxRuntime& rt) {
    Rng rng(env.core_id() * 97 + 13);
    for (int k = 0; k < kIncsPerCore; ++k) {
      const uint64_t addr = base + rng.NextBelow(kAccounts) * kWordBytes;
      rt.Execute([addr](Tx& tx) { tx.Write(addr, tx.Read(addr) + 1); });
    }
  });
  sys.Run();
  RunResult result;
  result.commits = sys.MergedStats().commits;
  for (uint32_t a = 0; a < kAccounts; ++a) {
    result.counter_sum += sys.shmem().LoadWord(base + a * kWordBytes);
  }
  result.tables_empty = sys.AllLockTablesEmpty();
  return result;
}

TmSystemConfig BaseConfig() {
  TmSystemConfig cfg;
  cfg.sim.platform = MakeOpteronPlatform();
  cfg.sim.num_cores = 4;
  cfg.sim.num_service = 2;
  cfg.sim.shmem_bytes = 1 << 20;
  cfg.tm.cm = CmKind::kFairCm;
  return cfg;
}

// A process-backend run needs a fresh directory for its per-generation
// socket files (and WAL files, when durability is on).
TmSystemConfig ProcessConfig(const std::string& tag) {
  TmSystemConfig cfg = BaseConfig();
  cfg.backend = BackendKind::kProcesses;
  std::string templ = ::testing::TempDir() + "tm2c_bid_" + tag + "_XXXXXX";
  EXPECT_NE(::mkdtemp(templ.data()), nullptr);
  cfg.run_dir = templ;
  return cfg;
}

TEST(BackendIdentity, SimAndThreadsCommitTheSameWorkload) {
  TmSystemConfig sim_cfg = BaseConfig();
  sim_cfg.backend = BackendKind::kSim;
  const RunResult sim = RunCounterWorkload(sim_cfg);

  const uint64_t expected_commits = 2ull * 200;  // 2 app cores x 200 incs
  EXPECT_EQ(sim.commits, expected_commits);
  EXPECT_EQ(sim.counter_sum, expected_commits);
  EXPECT_TRUE(sim.tables_empty);

  for (const ChannelKind channel : {ChannelKind::kSpscRing, ChannelKind::kMutexMailbox}) {
    TmSystemConfig thr_cfg = BaseConfig();
    thr_cfg.backend = BackendKind::kThreads;
    thr_cfg.channel = channel;
    const RunResult thr = RunCounterWorkload(thr_cfg);
    EXPECT_EQ(thr.commits, sim.commits) << ChannelKindName(channel);
    EXPECT_EQ(thr.counter_sum, sim.counter_sum) << ChannelKindName(channel);
  }

  // Third side of the triangle: partition servers as forked processes.
  const RunResult proc = RunCounterWorkload(ProcessConfig("counter"));
  EXPECT_EQ(proc.commits, sim.commits);
  EXPECT_EQ(proc.counter_sum, sim.counter_sum);
  EXPECT_TRUE(proc.tables_empty);
}

// KV-store identity: the same fixed KV workload must leave byte-identical
// store contents on the simulator and on real threads. The workload is
// deterministic by construction — each core owns a private key range for
// its put/delete churn, and the shared keys receive only commutative
// read-modify-write increments — so the final contents do not depend on
// the interleaving, only on the protocol executing every operation exactly
// once.
struct KvRunResult {
  uint64_t commits = 0;
  uint64_t migrations_completed = 0;
  uint32_t slab0_partition = 0;
  std::map<uint64_t, std::vector<uint64_t>> contents;
};

KvRunResult RunKvWorkload(TmSystemConfig cfg, bool migrate = false) {
  constexpr uint64_t kSharedKeys = 8;
  constexpr uint64_t kPrivateKeys = 8;  // per core, above the shared range
  constexpr int kOpsPerCore = 120;
  TmSystem sys(cfg);
  KvStoreConfig kv_cfg;
  kv_cfg.buckets_per_partition = 4;
  kv_cfg.value_words = 2;
  kv_cfg.capacity_per_partition = 128;
  KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), kv_cfg);
  for (uint64_t key = 1; key <= kSharedKeys; ++key) {
    const uint64_t value[2] = {0, key};
    store.HostPut(key, value);
  }
  // Mid-run live handoff (when asked): the first app core moves the
  // partition-0 slab's lock ownership to partition 1 halfway through its
  // workload, while every core keeps operating on the store.
  const std::pair<uint64_t, uint64_t> slab0 = store.SlabRange(0);
  const uint32_t migrating_core = sys.deployment().app_cores()[0];
  sys.SetAllAppBodies([&store, slab0, migrate, migrating_core](CoreEnv& env, TxRuntime& rt) {
    const uint64_t private_base = kSharedKeys + 1 + env.core_id() * kPrivateKeys;
    Rng rng(env.core_id() * 131 + 7);
    for (int k = 0; k < kOpsPerCore; ++k) {
      if (migrate && env.core_id() == migrating_core && k == kOpsPerCore / 2) {
        rt.RequestMigration(slab0.first, slab0.second, 1);
      }
      const uint64_t pick = rng.NextBelow(10);
      if (pick < 4) {
        const uint64_t key = 1 + rng.NextBelow(kSharedKeys);
        store.ReadModifyWrite(rt, key, [](uint64_t* v) { v[0] += 1; });
      } else if (pick < 7) {
        const uint64_t key = private_base + rng.NextBelow(kPrivateKeys);
        const uint64_t value[2] = {key * 3, key * 5};
        store.Put(rt, key, value);
      } else if (pick < 9) {
        store.Delete(rt, private_base + rng.NextBelow(kPrivateKeys));
      } else {
        store.Get(rt, 1 + rng.NextBelow(kSharedKeys), nullptr);
      }
    }
  });
  sys.Run();
  KvRunResult result;
  result.commits = sys.MergedStats().commits;
  for (uint32_t p = 0; p < sys.deployment().num_service(); ++p) {
    result.migrations_completed += sys.ServiceStats(p).migrations_completed;
  }
  result.slab0_partition = sys.address_map().PartitionOf(slab0.first);
  store.HostForEach([&result, &kv_cfg](uint64_t key, const uint64_t* value) {
    result.contents[key] = std::vector<uint64_t>(value, value + kv_cfg.value_words);
  });
  return result;
}

TEST(BackendIdentity, KvStoreCommitsIdenticalFinalContents) {
  TmSystemConfig sim_cfg = BaseConfig();
  sim_cfg.backend = BackendKind::kSim;
  const KvRunResult sim = RunKvWorkload(sim_cfg);

  // 2 app cores x 120 ops, one committed transaction per op.
  EXPECT_EQ(sim.commits, 2ull * 120);
  EXPECT_FALSE(sim.contents.empty());

  for (const ChannelKind channel : {ChannelKind::kSpscRing, ChannelKind::kMutexMailbox}) {
    TmSystemConfig thr_cfg = BaseConfig();
    thr_cfg.backend = BackendKind::kThreads;
    thr_cfg.channel = channel;
    const KvRunResult thr = RunKvWorkload(thr_cfg);
    EXPECT_EQ(thr.commits, sim.commits) << ChannelKindName(channel);
    EXPECT_EQ(thr.contents, sim.contents) << ChannelKindName(channel);
  }

  const KvRunResult proc = RunKvWorkload(ProcessConfig("kv"));
  EXPECT_EQ(proc.commits, sim.commits);
  EXPECT_EQ(proc.contents, sim.contents);
}

TEST(BackendIdentity, KvStoreContentsIdenticalAcrossMidRunMigration) {
  // Same contract as above, now with a live ownership handoff in the
  // middle of the run: the drain, the directory flip and the kMigrating
  // retries must not change any protocol outcome — contents and commit
  // counts stay byte-identical between the simulator and real threads.
  TmSystemConfig sim_cfg = BaseConfig();
  sim_cfg.backend = BackendKind::kSim;
  const KvRunResult sim = RunKvWorkload(sim_cfg, /*migrate=*/true);

  EXPECT_EQ(sim.commits, 2ull * 120);
  EXPECT_FALSE(sim.contents.empty());
  // On the simulator the workload comfortably outlives the drain: the
  // handoff must have completed and flipped the slab to partition 1.
  EXPECT_EQ(sim.migrations_completed, 1u);
  EXPECT_EQ(sim.slab0_partition, 1u);

  for (const ChannelKind channel : {ChannelKind::kSpscRing, ChannelKind::kMutexMailbox}) {
    TmSystemConfig thr_cfg = BaseConfig();
    thr_cfg.backend = BackendKind::kThreads;
    thr_cfg.channel = channel;
    const KvRunResult thr = RunKvWorkload(thr_cfg, /*migrate=*/true);
    EXPECT_EQ(thr.commits, sim.commits) << ChannelKindName(channel);
    EXPECT_EQ(thr.contents, sim.contents) << ChannelKindName(channel);
    // Wall-clock timing decides how fast the drain closes on threads, but
    // a requested handoff of a quiescing slab must still complete by the
    // end of a fixed-work run.
    EXPECT_EQ(thr.migrations_completed, 1u) << ChannelKindName(channel);
    EXPECT_EQ(thr.slab0_partition, 1u) << ChannelKindName(channel);
  }
}

// Ordered-index identity: the same fixed B+-tree workload — inserts,
// updates, deletes and commutative shared RMW through the range-partitioned
// index — must leave identical key/value contents on all three backends.
// The tree SHAPE may differ run to run (splits and merges depend on the
// interleaving); the CONTENTS may not, and every backend's tree must pass
// the structural invariants.
struct IndexRunResult {
  uint64_t commits = 0;
  std::map<uint64_t, std::vector<uint64_t>> contents;
  std::vector<std::string> structure_problems;
  bool tables_empty = false;
};

IndexRunResult RunIndexWorkload(TmSystemConfig cfg) {
  constexpr uint64_t kSharedKeys = 8;
  constexpr uint64_t kPrivateKeys = 12;  // per core, above the shared range
  constexpr int kOpsPerCore = 150;
  TmSystem sys(cfg);
  OrderedIndexConfig ix_cfg;
  ix_cfg.key_min = 1;
  ix_cfg.key_max = 256;
  ix_cfg.value_words = 2;
  ix_cfg.fanout = 4;  // small fanout: splits and merges happen for real
  ix_cfg.capacity_per_partition = 256;
  OrderedIndex index(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), ix_cfg);
  for (uint64_t key = 1; key <= kSharedKeys; ++key) {
    const uint64_t value[2] = {0, key};
    index.HostPut(key, value);
  }
  sys.SetAllAppBodies([&index](CoreEnv& env, TxRuntime& rt) {
    const uint64_t private_base = kSharedKeys + 1 + env.core_id() * kPrivateKeys;
    Rng rng(env.core_id() * 211 + 3);
    for (int k = 0; k < kOpsPerCore; ++k) {
      const uint64_t pick = rng.NextBelow(10);
      if (pick < 3) {
        const uint64_t key = 1 + rng.NextBelow(kSharedKeys);
        index.ReadModifyWrite(rt, key, [](uint64_t* v) { v[0] += 1; });
      } else if (pick < 6) {
        const uint64_t key = private_base + rng.NextBelow(kPrivateKeys);
        const uint64_t value[2] = {key * 3, key * 7};
        index.Put(rt, key, value);
      } else if (pick < 8) {
        index.Delete(rt, private_base + rng.NextBelow(kPrivateKeys));
      } else {
        index.Scan(rt, 1 + rng.NextBelow(kSharedKeys), 4);
      }
    }
  });
  sys.Run();
  IndexRunResult result;
  result.commits = sys.MergedStats().commits;
  result.tables_empty = sys.AllLockTablesEmpty();
  index.HostForEach([&result, &ix_cfg](uint64_t key, const uint64_t* value) {
    result.contents[key] = std::vector<uint64_t>(value, value + ix_cfg.value_words);
  });
  index.HostCheckStructure(&result.structure_problems);
  return result;
}

TEST(BackendIdentity, OrderedIndexIdenticalContentsAcrossAllThreeBackends) {
  TmSystemConfig sim_cfg = BaseConfig();
  sim_cfg.backend = BackendKind::kSim;
  const IndexRunResult sim = RunIndexWorkload(sim_cfg);

  // 2 app cores x 150 ops, one committed transaction per op.
  EXPECT_EQ(sim.commits, 2ull * 150);
  EXPECT_FALSE(sim.contents.empty());
  EXPECT_TRUE(sim.tables_empty);
  EXPECT_TRUE(sim.structure_problems.empty());

  for (const ChannelKind channel : {ChannelKind::kSpscRing, ChannelKind::kMutexMailbox}) {
    TmSystemConfig thr_cfg = BaseConfig();
    thr_cfg.backend = BackendKind::kThreads;
    thr_cfg.channel = channel;
    const IndexRunResult thr = RunIndexWorkload(thr_cfg);
    EXPECT_EQ(thr.commits, sim.commits) << ChannelKindName(channel);
    EXPECT_EQ(thr.contents, sim.contents) << ChannelKindName(channel);
    EXPECT_TRUE(thr.structure_problems.empty()) << ChannelKindName(channel);
  }

  const IndexRunResult proc = RunIndexWorkload(ProcessConfig("index"));
  EXPECT_EQ(proc.commits, sim.commits);
  EXPECT_EQ(proc.contents, sim.contents);
  EXPECT_TRUE(proc.tables_empty);
  EXPECT_TRUE(proc.structure_problems.empty());
}

TEST(BackendIdentity, ThreadBackendRunReturnsWallClock) {
  TmSystemConfig cfg = BaseConfig();
  cfg.backend = BackendKind::kThreads;
  TmSystem sys(cfg);
  sys.SetAllAppBodies([](CoreEnv& env, TxRuntime&) { env.Compute(100000); });
  const SimTime elapsed = sys.Run();
  EXPECT_GT(elapsed, 0u);  // host time passed; nothing modelled about it
}

TEST(BackendIdentity, MultitaskedStrategyRunsOnThreads) {
  // The multitasked deployment (every core both serves and runs the app)
  // uses the post-body serve loop + broadcast shutdown path.
  TmSystemConfig cfg = BaseConfig();
  cfg.backend = BackendKind::kThreads;
  cfg.sim.strategy = DeployStrategy::kMultitasked;
  cfg.sim.num_service = 0;
  const RunResult result = RunCounterWorkload(cfg);
  EXPECT_EQ(result.commits, 4ull * 200);  // all 4 cores are app cores
  EXPECT_EQ(result.counter_sum, 4ull * 200);
}

}  // namespace
}  // namespace tm2c

// Backend identity: the same TmSystem workload, run once on the simulator
// and once on real threads (both channel kinds), must commit exactly the
// same transactions and leave identical shared-memory state. This is the
// contract that makes native bench rows comparable to simulated ones —
// the backend changes the clock and the transport, never the protocol
// outcome of a fixed-work workload.
//
// Uses the simulator (fibers) as well as threads, so it is deliberately
// NOT part of the TSan-labelled suites.
#include <gtest/gtest.h>

#include <map>

#include "src/apps/kvstore.h"
#include "src/common/rng.h"
#include "src/tm/tm_system.h"

namespace tm2c {
namespace {

struct RunResult {
  uint64_t commits = 0;
  uint64_t counter_sum = 0;
  bool tables_empty = false;
};

// Fixed work per app core: every core performs kIncsPerCore transactional
// increments spread over kAccounts shared words. Commit count is workload-
// determined (every increment eventually commits), so it must match across
// backends exactly; the final memory state likewise.
RunResult RunCounterWorkload(TmSystemConfig cfg) {
  constexpr uint32_t kAccounts = 16;
  constexpr int kIncsPerCore = 200;
  TmSystem sys(cfg);
  const uint64_t base = sys.allocator().AllocGlobal(kAccounts * kWordBytes);
  for (uint32_t a = 0; a < kAccounts; ++a) {
    sys.shmem().StoreWord(base + a * kWordBytes, 0);
  }
  sys.SetAllAppBodies([base](CoreEnv& env, TxRuntime& rt) {
    Rng rng(env.core_id() * 97 + 13);
    for (int k = 0; k < kIncsPerCore; ++k) {
      const uint64_t addr = base + rng.NextBelow(kAccounts) * kWordBytes;
      rt.Execute([addr](Tx& tx) { tx.Write(addr, tx.Read(addr) + 1); });
    }
  });
  sys.Run();
  RunResult result;
  result.commits = sys.MergedStats().commits;
  for (uint32_t a = 0; a < kAccounts; ++a) {
    result.counter_sum += sys.shmem().LoadWord(base + a * kWordBytes);
  }
  result.tables_empty = sys.AllLockTablesEmpty();
  return result;
}

TmSystemConfig BaseConfig() {
  TmSystemConfig cfg;
  cfg.sim.platform = MakeOpteronPlatform();
  cfg.sim.num_cores = 4;
  cfg.sim.num_service = 2;
  cfg.sim.shmem_bytes = 1 << 20;
  cfg.tm.cm = CmKind::kFairCm;
  return cfg;
}

TEST(BackendIdentity, SimAndThreadsCommitTheSameWorkload) {
  TmSystemConfig sim_cfg = BaseConfig();
  sim_cfg.backend = BackendKind::kSim;
  const RunResult sim = RunCounterWorkload(sim_cfg);

  const uint64_t expected_commits = 2ull * 200;  // 2 app cores x 200 incs
  EXPECT_EQ(sim.commits, expected_commits);
  EXPECT_EQ(sim.counter_sum, expected_commits);
  EXPECT_TRUE(sim.tables_empty);

  for (const ChannelKind channel : {ChannelKind::kSpscRing, ChannelKind::kMutexMailbox}) {
    TmSystemConfig thr_cfg = BaseConfig();
    thr_cfg.backend = BackendKind::kThreads;
    thr_cfg.channel = channel;
    const RunResult thr = RunCounterWorkload(thr_cfg);
    EXPECT_EQ(thr.commits, sim.commits) << ChannelKindName(channel);
    EXPECT_EQ(thr.counter_sum, sim.counter_sum) << ChannelKindName(channel);
  }
}

// KV-store identity: the same fixed KV workload must leave byte-identical
// store contents on the simulator and on real threads. The workload is
// deterministic by construction — each core owns a private key range for
// its put/delete churn, and the shared keys receive only commutative
// read-modify-write increments — so the final contents do not depend on
// the interleaving, only on the protocol executing every operation exactly
// once.
struct KvRunResult {
  uint64_t commits = 0;
  std::map<uint64_t, std::vector<uint64_t>> contents;
};

KvRunResult RunKvWorkload(TmSystemConfig cfg) {
  constexpr uint64_t kSharedKeys = 8;
  constexpr uint64_t kPrivateKeys = 8;  // per core, above the shared range
  constexpr int kOpsPerCore = 120;
  TmSystem sys(cfg);
  KvStoreConfig kv_cfg;
  kv_cfg.buckets_per_partition = 4;
  kv_cfg.value_words = 2;
  kv_cfg.capacity_per_partition = 128;
  KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), kv_cfg);
  for (uint64_t key = 1; key <= kSharedKeys; ++key) {
    const uint64_t value[2] = {0, key};
    store.HostPut(key, value);
  }
  sys.SetAllAppBodies([&store](CoreEnv& env, TxRuntime& rt) {
    const uint64_t private_base = kSharedKeys + 1 + env.core_id() * kPrivateKeys;
    Rng rng(env.core_id() * 131 + 7);
    for (int k = 0; k < kOpsPerCore; ++k) {
      const uint64_t pick = rng.NextBelow(10);
      if (pick < 4) {
        const uint64_t key = 1 + rng.NextBelow(kSharedKeys);
        store.ReadModifyWrite(rt, key, [](uint64_t* v) { v[0] += 1; });
      } else if (pick < 7) {
        const uint64_t key = private_base + rng.NextBelow(kPrivateKeys);
        const uint64_t value[2] = {key * 3, key * 5};
        store.Put(rt, key, value);
      } else if (pick < 9) {
        store.Delete(rt, private_base + rng.NextBelow(kPrivateKeys));
      } else {
        store.Get(rt, 1 + rng.NextBelow(kSharedKeys), nullptr);
      }
    }
  });
  sys.Run();
  KvRunResult result;
  result.commits = sys.MergedStats().commits;
  store.HostForEach([&result, &kv_cfg](uint64_t key, const uint64_t* value) {
    result.contents[key] = std::vector<uint64_t>(value, value + kv_cfg.value_words);
  });
  return result;
}

TEST(BackendIdentity, KvStoreCommitsIdenticalFinalContents) {
  TmSystemConfig sim_cfg = BaseConfig();
  sim_cfg.backend = BackendKind::kSim;
  const KvRunResult sim = RunKvWorkload(sim_cfg);

  // 2 app cores x 120 ops, one committed transaction per op.
  EXPECT_EQ(sim.commits, 2ull * 120);
  EXPECT_FALSE(sim.contents.empty());

  for (const ChannelKind channel : {ChannelKind::kSpscRing, ChannelKind::kMutexMailbox}) {
    TmSystemConfig thr_cfg = BaseConfig();
    thr_cfg.backend = BackendKind::kThreads;
    thr_cfg.channel = channel;
    const KvRunResult thr = RunKvWorkload(thr_cfg);
    EXPECT_EQ(thr.commits, sim.commits) << ChannelKindName(channel);
    EXPECT_EQ(thr.contents, sim.contents) << ChannelKindName(channel);
  }
}

TEST(BackendIdentity, ThreadBackendRunReturnsWallClock) {
  TmSystemConfig cfg = BaseConfig();
  cfg.backend = BackendKind::kThreads;
  TmSystem sys(cfg);
  sys.SetAllAppBodies([](CoreEnv& env, TxRuntime&) { env.Compute(100000); });
  const SimTime elapsed = sys.Run();
  EXPECT_GT(elapsed, 0u);  // host time passed; nothing modelled about it
}

TEST(BackendIdentity, MultitaskedStrategyRunsOnThreads) {
  // The multitasked deployment (every core both serves and runs the app)
  // uses the post-body serve loop + broadcast shutdown path.
  TmSystemConfig cfg = BaseConfig();
  cfg.backend = BackendKind::kThreads;
  cfg.sim.strategy = DeployStrategy::kMultitasked;
  cfg.sim.num_service = 0;
  const RunResult result = RunCounterWorkload(cfg);
  EXPECT_EQ(result.commits, 4ull * 200);  // all 4 cores are app cores
  EXPECT_EQ(result.counter_sum, 4ull * 200);
}

}  // namespace
}  // namespace tm2c

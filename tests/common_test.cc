#include <gtest/gtest.h>

#include <set>

#include "src/common/core_set.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace tm2c {
namespace {

TEST(Rng, DeterministicUnderSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextInRangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, PercentRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextPercent(20)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.20, 0.01);
}

TEST(StatAccumulator, BasicMoments) {
  StatAccumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    acc.Add(v);
  }
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  StatAccumulator all;
  StatAccumulator left;
  StatAccumulator right;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 100.0;
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
}

TEST(Histogram, QuantileOrdering) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i));
  }
  EXPECT_LT(h.Quantile(0.1), h.Quantile(0.9));
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
}

TEST(Histogram, OverflowBucketCatchesLargeSamples) {
  Histogram h(1.0, 4);
  h.Add(1000.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.counts().back(), 1u);
}

TEST(CoreSet, InsertEraseContains) {
  CoreSet s;
  EXPECT_TRUE(s.Empty());
  s.Insert(3);
  s.Insert(47);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(47));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 2u);
  s.Erase(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_FALSE(s.Empty());
  s.Erase(47);
  EXPECT_TRUE(s.Empty());
}

TEST(CoreSet, HandlesCoresAbove64) {
  CoreSet s;
  s.Insert(63);
  s.Insert(64);
  s.Insert(200);
  EXPECT_TRUE(s.Contains(63));
  EXPECT_TRUE(s.Contains(64));
  EXPECT_TRUE(s.Contains(200));
  EXPECT_EQ(s.Count(), 3u);
  const auto v = s.ToVector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 63u);
  EXPECT_EQ(v[1], 64u);
  EXPECT_EQ(v[2], 200u);
}

TEST(CoreSet, IsExactly) {
  CoreSet s;
  s.Insert(5);
  EXPECT_TRUE(s.IsExactly(5));
  s.Insert(6);
  EXPECT_FALSE(s.IsExactly(5));
}

TEST(CoreSet, ForEachVisitsAscending) {
  CoreSet s;
  for (uint32_t c : {40u, 1u, 99u, 64u}) {
    s.Insert(c);
  }
  std::vector<uint32_t> visited;
  s.ForEach([&visited](uint32_t c) { visited.push_back(c); });
  EXPECT_EQ(visited, (std::vector<uint32_t>{1, 40, 64, 99}));
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace tm2c

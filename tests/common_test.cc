#include <gtest/gtest.h>

#include <set>

#include "src/common/core_set.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace tm2c {
namespace {

TEST(Rng, DeterministicUnderSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextInRangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextInRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, PercentRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextPercent(20)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.20, 0.01);
}

TEST(StatAccumulator, BasicMoments) {
  StatAccumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    acc.Add(v);
  }
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(StatAccumulator, MergeMatchesSequential) {
  StatAccumulator all;
  StatAccumulator left;
  StatAccumulator right;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble() * 100.0;
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
}

// The empty accumulator must answer every query with a defined value, not
// the +/-inf sentinels it tracks internally.
TEST(StatAccumulator, EmptyIsAllZero) {
  const StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.sum(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 0.0);
  EXPECT_DOUBLE_EQ(acc.max(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

// A single sample has no spread: variance must be 0, not NaN (0/0).
TEST(StatAccumulator, SingleSampleVarianceIsZero) {
  StatAccumulator acc;
  acc.Add(42.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 42.0);
  EXPECT_DOUBLE_EQ(acc.min(), 42.0);
  EXPECT_DOUBLE_EQ(acc.max(), 42.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulator, MergeWithEmptySides) {
  StatAccumulator empty1;
  StatAccumulator empty2;
  empty1.Merge(empty2);
  EXPECT_EQ(empty1.count(), 0u);
  EXPECT_DOUBLE_EQ(empty1.variance(), 0.0);

  StatAccumulator filled;
  filled.Add(1.0);
  filled.Add(3.0);
  // Empty into filled: a no-op.
  StatAccumulator lhs = filled;
  lhs.Merge(empty2);
  EXPECT_EQ(lhs.count(), 2u);
  EXPECT_DOUBLE_EQ(lhs.mean(), 2.0);
  EXPECT_DOUBLE_EQ(lhs.variance(), 2.0);
  // Filled into empty: adopts the other side wholesale.
  StatAccumulator adopter;
  adopter.Merge(filled);
  EXPECT_EQ(adopter.count(), 2u);
  EXPECT_DOUBLE_EQ(adopter.mean(), 2.0);
  EXPECT_DOUBLE_EQ(adopter.min(), 1.0);
  EXPECT_DOUBLE_EQ(adopter.max(), 3.0);
  EXPECT_DOUBLE_EQ(adopter.variance(), 2.0);
}

TEST(StatAccumulator, MergeOfSingletonsMatchesSequential) {
  StatAccumulator a;
  StatAccumulator b;
  a.Add(10.0);
  b.Add(20.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 15.0);
  EXPECT_DOUBLE_EQ(a.variance(), 50.0);
}

TEST(LatencySampler, EmptyIsAllZero) {
  const LatencySampler lat;
  EXPECT_EQ(lat.count(), 0u);
  EXPECT_DOUBLE_EQ(lat.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(lat.Percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(lat.mean(), 0.0);
}

TEST(LatencySampler, SingleSampleIsEveryPercentile) {
  LatencySampler lat;
  lat.Add(7.5);
  EXPECT_DOUBLE_EQ(lat.Percentile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(lat.Percentile(0.5), 7.5);
  EXPECT_DOUBLE_EQ(lat.Percentile(1.0), 7.5);
}

TEST(LatencySampler, NearestRankPercentiles) {
  LatencySampler lat;
  // 1..100 shuffled in (deterministically): percentiles are exact ranks.
  Rng rng(3);
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) {
    values.push_back(static_cast<double>(i));
  }
  for (size_t i = values.size() - 1; i > 0; --i) {
    std::swap(values[i], values[rng.NextBelow(i + 1)]);
  }
  for (const double v : values) {
    lat.Add(v);
  }
  EXPECT_DOUBLE_EQ(lat.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(lat.Percentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(lat.Percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(lat.Percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(lat.Percentile(1.0), 100.0);
  // Out-of-range q clamps instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(lat.Percentile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(lat.Percentile(2.0), 100.0);
}

TEST(LatencySampler, PercentilesMatchesPercentile) {
  LatencySampler lat;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    lat.Add(rng.NextDouble() * 1000.0);
  }
  const std::vector<double> qs = {0.0, 0.5, 0.95, 0.99, 1.0};
  const std::vector<double> batch = lat.Percentiles(qs);
  ASSERT_EQ(batch.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], lat.Percentile(qs[i]));
  }
  const LatencySampler empty;
  EXPECT_EQ(empty.Percentiles({0.5, 0.99}), (std::vector<double>{0.0, 0.0}));
}

TEST(LatencySampler, MergeCombinesSamplesAndMoments) {
  LatencySampler a;
  LatencySampler b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(3.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.Percentile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(a.Percentile(0.5), 2.0);
}

TEST(Histogram, QuantileOrdering) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i));
  }
  EXPECT_LT(h.Quantile(0.1), h.Quantile(0.9));
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 2.0);
}

TEST(Histogram, OverflowBucketCatchesLargeSamples) {
  Histogram h(1.0, 4);
  h.Add(1000.0);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.counts().back(), 1u);
}

TEST(CoreSet, InsertEraseContains) {
  CoreSet s;
  EXPECT_TRUE(s.Empty());
  s.Insert(3);
  s.Insert(47);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(47));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.Count(), 2u);
  s.Erase(3);
  EXPECT_FALSE(s.Contains(3));
  EXPECT_FALSE(s.Empty());
  s.Erase(47);
  EXPECT_TRUE(s.Empty());
}

TEST(CoreSet, HandlesCoresAbove64) {
  CoreSet s;
  s.Insert(63);
  s.Insert(64);
  s.Insert(200);
  EXPECT_TRUE(s.Contains(63));
  EXPECT_TRUE(s.Contains(64));
  EXPECT_TRUE(s.Contains(200));
  EXPECT_EQ(s.Count(), 3u);
  const auto v = s.ToVector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 63u);
  EXPECT_EQ(v[1], 64u);
  EXPECT_EQ(v[2], 200u);
}

TEST(CoreSet, IsExactly) {
  CoreSet s;
  s.Insert(5);
  EXPECT_TRUE(s.IsExactly(5));
  s.Insert(6);
  EXPECT_FALSE(s.IsExactly(5));
}

TEST(CoreSet, ForEachVisitsAscending) {
  CoreSet s;
  for (uint32_t c : {40u, 1u, 99u, 64u}) {
    s.Insert(c);
  }
  std::vector<uint32_t> visited;
  s.ForEach([&visited](uint32_t c) { visited.push_back(c); });
  EXPECT_EQ(visited, (std::vector<uint32_t>{1, 40, 64, 99}));
}

TEST(Histogram, EmptyQuantileIsZero) {
  const Histogram h(1.0, 10);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
}

// Regression: a low quantile used to report the midpoint of bucket 0 even
// when every sample sat in a higher bucket (target rank of 0 was satisfied
// by the empty prefix).
TEST(Histogram, LowQuantileSkipsEmptyLeadingBuckets) {
  Histogram h(1.0, 10);
  h.Add(7.2);
  h.Add(7.3);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 7.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.01), 7.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 7.5);
}

TEST(Histogram, QuantileClampsOutOfRangeQ) {
  Histogram h(1.0, 10);
  h.Add(2.5);
  EXPECT_DOUBLE_EQ(h.Quantile(-0.5), 2.5);
  EXPECT_DOUBLE_EQ(h.Quantile(1.5), 2.5);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(2.0, 0), "2");
}

TEST(JsonWriter, NestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", "bench");
  w.KV("n", uint64_t{3});
  w.Key("rows");
  w.BeginArray();
  w.Number(1.5);
  w.Bool(false);
  w.BeginObject();
  w.KV("ok", true);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.Take(), "{\"name\":\"bench\",\"n\":3,\"rows\":[1.5,false,{\"ok\":true}]}");
}

TEST(JsonWriter, EscapesControlCharactersAndQuotes) {
  JsonWriter w;
  w.BeginObject();
  w.KV("k\"ey", "a\\b\n\t\x01");
  w.EndObject();
  EXPECT_EQ(w.Take(), "{\"k\\\"ey\":\"a\\\\b\\n\\t\\u0001\"}");
}

// Degenerate runs can produce NaN/inf metrics; the document must still
// parse, so non-finite numbers serialize as null.
TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Number(std::numeric_limits<double>::quiet_NaN());
  w.Number(std::numeric_limits<double>::infinity());
  w.Number(1.0);
  w.EndArray();
  EXPECT_EQ(w.Take(), "[null,null,1]");
}

}  // namespace
}  // namespace tm2c

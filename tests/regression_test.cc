// Named regression tests for the protocol races found during development
// (DESIGN.md §6). Each test reconstructs the scenario that originally
// corrupted state or hung, with the tightest workload that triggered it.
#include <gtest/gtest.h>

#include "src/apps/linked_list.h"
#include "src/tm/tm_system.h"

namespace tm2c {
namespace {

constexpr SimTime kHorizon = MillisToSim(4000);

TmSystemConfig Config(CmKind cm, TxMode mode, DeployStrategy strategy) {
  TmSystemConfig cfg;
  cfg.sim.platform = MakeSccPlatform(0);
  cfg.sim.num_cores = 8;
  cfg.sim.num_service = strategy == DeployStrategy::kMultitasked ? 0 : 4;
  cfg.sim.strategy = strategy;
  cfg.sim.shmem_bytes = 2 << 20;
  cfg.sim.seed = 1234;
  cfg.tm.cm = cm;
  cfg.tm.tx_mode = mode;
  return cfg;
}

// DESIGN.md §6 item 2: a mid-commit core serving two peers whose refusals
// instantly regenerate requests must not serve forever. With unbounded
// ServePending slices this exact configuration (multitasked, Wholly,
// transfers + short list churn) wedged: one core held a commit-phase lock
// while serving its two hottest clients for the rest of the run.
TEST(Regression, ServingLivelockMultitasked) {
  TmSystem sys(Config(CmKind::kWholly, TxMode::kNormal, DeployStrategy::kMultitasked));
  constexpr uint32_t kAccounts = 24;
  const uint64_t base = sys.allocator().AllocGlobal(kAccounts * 8);
  for (uint32_t a = 0; a < kAccounts; ++a) {
    sys.shmem().StoreWord(base + a * 8, 100);
  }
  ShmSortedList list(sys.allocator(), sys.shmem());
  for (uint64_t key = 2; key <= 32; key += 2) {
    list.HostAdd(sys.allocator(), key);
  }
  std::vector<bool> done(sys.num_app_cores(), false);
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv& env, TxRuntime& rt) {
      Rng rng(31 * (i + 1));
      for (int k = 0; k < 40; ++k) {
        if (rng.NextPercent(40)) {
          const uint64_t from = base + rng.NextBelow(kAccounts) * 8;
          const uint64_t to = base + ((from - base) / 8 + 1) % kAccounts * 8;
          rt.Execute([from, to](Tx& tx) {
            tx.Write(from, tx.Read(from) - 1);
            tx.Write(to, tx.Read(to) + 1);
          });
        } else {
          const uint64_t key = 1 + rng.NextBelow(12);
          if (rng.NextPercent(50)) {
            list.Add(rt, env.allocator(), key);
          } else {
            list.Remove(rt, key);
          }
        }
      }
      done[i] = true;
    });
  }
  sys.Run(kHorizon);
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    EXPECT_TRUE(done[i]) << "core " << i << " wedged (serving livelock)";
  }
  EXPECT_EQ(sys.shmem().LoadWord(base) + [&] {
    uint64_t t = 0;
    for (uint32_t a = 1; a < kAccounts; ++a) {
      t += sys.shmem().LoadWord(base + a * 8);
    }
    return t;
  }(), static_cast<uint64_t>(kAccounts) * 100);
}

// DESIGN.md §6 item 1: revoking a write lock between the holder's final
// pending-abort check and its persist must not interleave two write-sets.
// The abort status word closes the race; this test hammers the pattern
// that exposed it (single-word upgrades with a priority CM that revokes
// aggressively) and checks no increment is ever lost or duplicated.
TEST(Regression, RevocationVsPersistRace) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    TmSystemConfig cfg = Config(CmKind::kFairCm, TxMode::kNormal, DeployStrategy::kDedicated);
    cfg.sim.seed = seed;
    TmSystem sys(std::move(cfg));
    constexpr uint64_t kWords = 4;  // few words -> constant WAW/WAR revocation
    const uint64_t base = sys.allocator().AllocGlobal(kWords * 8);
    constexpr int kIncs = 60;
    for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
      sys.SetAppBody(i, [&, i](CoreEnv&, TxRuntime& rt) {
        Rng rng(seed * 100 + i);
        for (int k = 0; k < kIncs; ++k) {
          const uint64_t addr = base + rng.NextBelow(kWords) * 8;
          rt.Execute([addr](Tx& tx) { tx.Write(addr, tx.Read(addr) + 1); });
        }
      });
    }
    sys.Run(kHorizon);
    uint64_t total = 0;
    for (uint64_t w = 0; w < kWords; ++w) {
      total += sys.shmem().LoadWord(base + w * 8);
    }
    EXPECT_EQ(total, static_cast<uint64_t>(sys.num_app_cores()) * kIncs) << "seed " << seed;
  }
}

// DESIGN.md §6 items 3 & 4: structural updates under both elastic modes
// must not lose or resurrect list nodes, even though their traversal reads
// are unprotected (elastic-read) or early-released (elastic-early). The
// original failures lost one element per few hundred operations; the seeds
// here covered both directions (a resurrected node and a lost insert).
class ElasticStructuralRegression : public ::testing::TestWithParam<TxMode> {};

TEST_P(ElasticStructuralRegression, SetSemanticsPreserved) {
  for (DeployStrategy strategy : {DeployStrategy::kDedicated, DeployStrategy::kMultitasked}) {
    TmSystemConfig cfg = Config(CmKind::kFairCm, GetParam(), strategy);
    TmSystem sys(std::move(cfg));
    ShmSortedList list(sys.allocator(), sys.shmem());
    for (uint64_t key = 2; key <= 24; key += 2) {
      list.HostAdd(sys.allocator(), key);
    }
    std::vector<int64_t> net(sys.num_app_cores(), 0);
    std::vector<bool> done(sys.num_app_cores(), false);
    for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
      sys.SetAppBody(i, [&, i](CoreEnv& env, TxRuntime& rt) {
        Rng rng(17 * (i + 1));
        for (int k = 0; k < 80; ++k) {
          // Update-heavy on a short range: maximizes adjacent-node races
          // (insert into / remove of the same neighbourhood).
          const uint64_t key = 1 + rng.NextBelow(12);
          if (rng.NextPercent(50)) {
            if (list.Add(rt, env.allocator(), key)) {
              ++net[i];
            }
          } else {
            if (list.Remove(rt, key)) {
              --net[i];
            }
          }
        }
        done[i] = true;
      });
    }
    sys.Run(kHorizon);
    int64_t expected = 12;
    for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
      ASSERT_TRUE(done[i]);
      expected += net[i];
    }
    EXPECT_EQ(static_cast<int64_t>(list.HostSize()), expected)
        << "mode=" << static_cast<int>(GetParam())
        << " strategy=" << static_cast<int>(strategy);
    // No duplicate keys may survive (a resurrected node manifests as one).
    for (uint64_t key = 1; key <= 12; ++key) {
      (void)key;  // HostSize mismatch above is the primary signal
    }
    EXPECT_TRUE(sys.AllLockTablesEmpty());
  }
}

INSTANTIATE_TEST_SUITE_P(ElasticModes, ElasticStructuralRegression,
                         ::testing::Values(TxMode::kElasticEarly, TxMode::kElasticRead),
                         [](const ::testing::TestParamInfo<TxMode>& info) {
                           return info.param == TxMode::kElasticEarly ? "early" : "read";
                         });

// The multitasked inbox-drain fix: a read-only scan on a core that serves
// its own partition synchronously must still observe its revocation before
// committing (the original bug returned torn totals).
TEST(Regression, SelfPartitionScanSeesRevocation) {
  for (uint64_t seed : {1u, 5u, 9u}) {
    TmSystemConfig cfg = Config(CmKind::kFairCm, TxMode::kNormal, DeployStrategy::kMultitasked);
    cfg.sim.num_cores = 6;
    cfg.sim.seed = seed;
    TmSystem sys(std::move(cfg));
    constexpr uint32_t kAccounts = 64;
    const uint64_t base = sys.allocator().AllocGlobal(kAccounts * 8);
    for (uint32_t a = 0; a < kAccounts; ++a) {
      sys.shmem().StoreWord(base + a * 8, 1000);
    }
    bool torn = false;
    for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
      sys.SetAppBody(i, [&, i](CoreEnv&, TxRuntime& rt) {
        Rng rng(seed + i);
        for (int k = 0; k < 30; ++k) {
          if (i % 2 == 0) {
            uint64_t total = 0;
            rt.Execute([&](Tx& tx) {
              total = 0;
              for (uint32_t a = 0; a < kAccounts; ++a) {
                total += tx.Read(base + a * 8);
              }
            });
            if (total != static_cast<uint64_t>(kAccounts) * 1000) {
              torn = true;
            }
          } else {
            const uint64_t from = base + rng.NextBelow(kAccounts) * 8;
            const uint64_t to = base + ((from - base) / 8 + 7) % kAccounts * 8;
            if (from != to) {
              rt.Execute([from, to](Tx& tx) {
                tx.Write(from, tx.Read(from) - 1);
                tx.Write(to, tx.Read(to) + 1);
              });
            }
          }
        }
      });
    }
    sys.Run(kHorizon);
    EXPECT_FALSE(torn) << "seed " << seed;
  }
}

// The async-acquisition refactor's safety net: with the default
// pipeline_depth the runtime must reproduce the lockstep request/reply
// path byte for byte. The constants below were captured from the
// pre-refactor runtime (one synchronous round trip per batch) on this
// exact workload; every field of the merged TxStats — including the
// timing-derived busy_time and acquire_time — must stay identical, on
// both deployments. Any drift means the depth-1 fast path is no longer
// the old wire behaviour.
struct GoldenStats {
  uint64_t commits, aborts, raw, waw, war, notify_aborts, reads, writes;
  uint64_t messages_sent, lock_acquires, batch_messages, max_attempts;
  SimTime busy_time, acquire_time;
};

TxStats RunLockstepGoldenWorkload(DeployStrategy strategy) {
  TmSystemConfig cfg = Config(CmKind::kFairCm, TxMode::kNormal, strategy);
  cfg.tm.max_batch = 8;
  TmSystem sys(std::move(cfg));
  constexpr uint32_t kAccounts = 32;
  const uint64_t base = sys.allocator().AllocGlobal(kAccounts * 8);
  for (uint32_t a = 0; a < kAccounts; ++a) {
    sys.shmem().StoreWord(base + a * 8, 100);
  }
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv&, TxRuntime& rt) {
      Rng rng(41 * (i + 1));
      for (int k = 0; k < 30; ++k) {
        const uint32_t pick = rng.NextBelow(100);
        if (pick < 40) {
          const uint64_t from = base + rng.NextBelow(kAccounts) * 8;
          const uint64_t to = base + ((from - base) / 8 + 3) % kAccounts * 8;
          rt.Execute([from, to](Tx& tx) {
            tx.Write(from, tx.Read(from) - 1);
            tx.Write(to, tx.Read(to) + 1);
          });
        } else if (pick < 70) {
          // Strided ReadMany: stripes spread over every partition, so the
          // acquisition breaks into several per-node batches.
          const uint64_t start = rng.NextBelow(kAccounts);
          rt.Execute([&, start](Tx& tx) {
            std::vector<uint64_t> addrs;
            for (uint64_t j = 0; j < 12; ++j) {
              addrs.push_back(base + (start + j * 5) % kAccounts * 8);
            }
            (void)tx.ReadMany(addrs);
          });
        } else {
          // Scan-then-update: batched read acquisition plus a commit-time
          // batched write-set acquisition.
          const uint64_t a = rng.NextBelow(kAccounts);
          const uint64_t b = (a + 7) % kAccounts;
          rt.Execute([&, a, b](Tx& tx) {
            std::vector<uint64_t> addrs;
            for (uint64_t j = 0; j < 8; ++j) {
              addrs.push_back(base + (a + j) % kAccounts * 8);
            }
            const std::vector<uint64_t> vals = tx.ReadMany(addrs);
            tx.Write(base + a * 8, vals[0] + 1);
            tx.Write(base + b * 8, tx.Read(base + b * 8) - 1);
          });
        }
      }
    });
  }
  sys.Run(kHorizon);
  uint64_t total = 0;
  for (uint32_t a = 0; a < kAccounts; ++a) {
    total += sys.shmem().LoadWord(base + a * 8);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kAccounts) * 100);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
  return sys.MergedStats();
}

void ExpectGolden(const TxStats& s, const GoldenStats& g) {
  EXPECT_EQ(s.commits, g.commits);
  EXPECT_EQ(s.aborts, g.aborts);
  EXPECT_EQ(s.raw_conflicts, g.raw);
  EXPECT_EQ(s.waw_conflicts, g.waw);
  EXPECT_EQ(s.war_conflicts, g.war);
  EXPECT_EQ(s.notify_aborts, g.notify_aborts);
  EXPECT_EQ(s.reads, g.reads);
  EXPECT_EQ(s.writes, g.writes);
  EXPECT_EQ(s.messages_sent, g.messages_sent);
  EXPECT_EQ(s.lock_acquires, g.lock_acquires);
  EXPECT_EQ(s.batch_messages, g.batch_messages);
  EXPECT_EQ(s.max_attempts_per_tx, g.max_attempts);
  EXPECT_EQ(s.busy_time, g.busy_time);
  EXPECT_EQ(s.acquire_time, g.acquire_time);
}

TEST(Regression, LockstepGoldenStatsDedicated) {
  const GoldenStats golden{120, 115,  28, 0,   87, 35,         1542,      287,
                           1701, 1636, 710, 6, 8759956912ull, 7564466152ull};
  ExpectGolden(RunLockstepGoldenWorkload(DeployStrategy::kDedicated), golden);
}

TEST(Regression, LockstepGoldenStatsMultitasked) {
  const GoldenStats golden{240,  669,  248,  0,  421, 132,         5090,       996,
                           7272, 4949, 3042, 56, 53730913976ull, 44215565976ull};
  ExpectGolden(RunLockstepGoldenWorkload(DeployStrategy::kMultitasked), golden);
}

}  // namespace
}  // namespace tm2c

// KvStore: semantics of the partitioned transactional KV store, the
// owned-range address routing underneath it, and its behaviour under
// contention and chaos (delete/reinsert node recycling, scans racing
// writers, the serializability oracle over the KV chaos workload).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "src/apps/kvstore.h"
#include "src/check/checker.h"
#include "src/common/rng.h"
#include "src/tm/tm_system.h"
#include "tests/store_semantics.h"

namespace tm2c {
namespace {

TmSystemConfig SmallConfig(uint32_t cores = 4, uint32_t service = 2) {
  TmSystemConfig cfg;
  cfg.sim.platform = MakeOpteronPlatform();
  cfg.sim.num_cores = cores;
  cfg.sim.num_service = service;
  cfg.sim.shmem_bytes = 2 << 20;
  cfg.tm.cm = CmKind::kFairCm;
  cfg.tm.max_batch = 8;
  return cfg;
}

KvStoreConfig SmallStore(uint32_t value_words = 2) {
  KvStoreConfig cfg;
  cfg.buckets_per_partition = 4;
  cfg.value_words = value_words;
  cfg.capacity_per_partition = 64;
  return cfg;
}

// ---------------------------------------------------------------------------
// AddressMap owned ranges
// ---------------------------------------------------------------------------

TEST(AddressMapOwnedRange, OverridesHashInsideRangeOnly) {
  DeploymentPlan plan(8, 4, DeployStrategy::kDedicated);
  AddressMap map(plan, 8);
  map.AddOwnedRange(1024, 256, 3);
  map.AddOwnedRange(4096, 64, 1);
  for (uint64_t addr = 1024; addr < 1280; addr += 8) {
    EXPECT_EQ(map.PartitionOf(addr), 3u);
    EXPECT_EQ(map.ResponsibleCore(addr), plan.ServiceCore(3));
  }
  EXPECT_EQ(map.PartitionOf(4096), 1u);
  // Outside every range the Fibonacci stripe hash still decides.
  AddressMap hash_only(plan, 8);
  EXPECT_EQ(map.PartitionOf(1016), hash_only.PartitionOf(1016));
  EXPECT_EQ(map.PartitionOf(1280), hash_only.PartitionOf(1280));
  EXPECT_EQ(map.PartitionOf(8192), hash_only.PartitionOf(8192));
}

TEST(AddressMapOwnedRange, CopiesShareTheDirectory) {
  DeploymentPlan plan(8, 4, DeployStrategy::kDedicated);
  AddressMap map(plan, 8);
  AddressMap copy = map;  // e.g. the copy a TxRuntime holds
  map.AddOwnedRange(512, 128, 2);
  EXPECT_EQ(copy.PartitionOf(512), 2u);
  EXPECT_EQ(copy.num_owned_ranges(), 1u);
}

TEST(AddressMapOwnedRangeDeathTest, RejectsOverlapAndMisalignment) {
  DeploymentPlan plan(8, 4, DeployStrategy::kDedicated);
  AddressMap map(plan, 8);
  map.AddOwnedRange(1024, 256, 0);
  EXPECT_DEATH(map.AddOwnedRange(1152, 64, 1), "overlap");
  EXPECT_DEATH(map.AddOwnedRange(896, 256, 1), "overlap");
  // Exact-fit neighbours on both sides are still overlaps.
  EXPECT_DEATH(map.AddOwnedRange(1024, 8, 1), "overlap");
  EXPECT_DEATH(map.AddOwnedRange(1272, 16, 1), "overlap");
  EXPECT_DEATH(map.AddOwnedRange(2049, 64, 1), "aligned");
  AddressMap wide(plan, 64);
  EXPECT_DEATH(wide.AddOwnedRange(4096, 96, 1), "aligned");
}

TEST(AddressMapOwnedRange, HashFallbackTakesOverExactlyAtStripeEdges) {
  DeploymentPlan plan(8, 4, DeployStrategy::kDedicated);
  const uint64_t stripe = 64;
  AddressMap map(plan, stripe);
  map.AddOwnedRange(1024, 4 * stripe, 2);
  AddressMap hash_only(plan, stripe);

  // Every byte of the last owned stripe routes to the owner; the very next
  // byte starts a fresh stripe and falls back to the Fibonacci hash.
  const uint64_t last_owned = 1024 + 4 * stripe - 1;
  EXPECT_EQ(map.PartitionOf(last_owned), 2u);
  EXPECT_EQ(map.PartitionOf(last_owned + 1), hash_only.PartitionOf(last_owned + 1));
  // Same at the front edge: the byte before the range is hash-routed.
  EXPECT_EQ(map.PartitionOf(1024), 2u);
  EXPECT_EQ(map.PartitionOf(1023), hash_only.PartitionOf(1023));
  // And a stripe is atomic: the owner answers for any offset inside it.
  EXPECT_EQ(map.StripeOf(last_owned), 1024 + 3 * stripe);
  EXPECT_EQ(map.PartitionOf(map.StripeOf(last_owned)), 2u);
}

TEST(AddressMapOwnedRange, DescribeListsEveryRangeAndTheFallback) {
  DeploymentPlan plan(8, 4, DeployStrategy::kDedicated);
  AddressMap map(plan, 64);
  map.AddOwnedRange(0x1000, 0x400, 3);
  map.AddOwnedRange(0x4000, 0x40, 1);
  const std::string dump = map.Describe();
  EXPECT_NE(dump.find("stripe_bytes=64"), std::string::npos);
  EXPECT_NE(dump.find("owned_ranges=2"), std::string::npos);
  EXPECT_NE(dump.find("hash fallback"), std::string::npos);
  EXPECT_NE(dump.find("[0x1000, 0x1400) -> partition 3"), std::string::npos);
  EXPECT_NE(dump.find("[0x4000, 0x4040) -> partition 1"), std::string::npos);
  // The owning core is resolved through the deployment plan, and each range
  // reports its frozen durability home next to it.
  std::ostringstream core;
  core << "(core " << plan.ServiceCore(3) << ", durable home 3)";
  EXPECT_NE(dump.find(core.str()), std::string::npos);
  EXPECT_NE(dump.find("version=0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Store semantics
// ---------------------------------------------------------------------------

// The wrapper/host/routing contract is shared with the B+-tree: the cases
// live in tests/store_semantics.h and run against TxStoreApi.
TEST(KvStore, PutGetDeleteReadModifyWrite) {
  TmSystem sys(SmallConfig());
  KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(),
                SmallStore());
  RunStoreMutationSemanticsCase(sys, store);
}

TEST(KvStore, InsertLeavesExistingValueAlone) {
  TmSystem sys(SmallConfig());
  KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(),
                SmallStore(1));
  RunStoreInsertOnlyCase(sys, store);
}

TEST(KvStore, HostHelpersAndLoadPhase) {
  TmSystem sys(SmallConfig());
  KvStoreConfig cfg = SmallStore(3);
  KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), cfg);
  RunStoreHostHelpersCase(store, 40);
  // Hash-specific accounting: one pool node per resident entry, and the
  // per-partition sizes add up.
  uint64_t per_partition = 0;
  for (uint32_t p = 0; p < store.num_partitions(); ++p) {
    per_partition += store.HostSizeOfPartition(p);
    EXPECT_EQ(store.NodesInUse(p), store.HostSizeOfPartition(p));
  }
  EXPECT_EQ(per_partition, 40u);
}

TEST(KvStore, AllSlabAddressesRouteToTheOwningPartition) {
  TmSystem sys(SmallConfig(8, 4));
  KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(),
                SmallStore());
  RunStoreSlabRoutingCase(sys, store);
  // And the key hash agrees with the map: a key's bucket lives in the
  // partition the store reports for it.
  for (uint64_t key = 1; key <= 100; ++key) {
    EXPECT_EQ(store.OwnerCore(key),
              sys.deployment().ServiceCore(store.PartitionOfKey(key)));
  }
}

// ---------------------------------------------------------------------------
// Contention
// ---------------------------------------------------------------------------

// Several cores hammer a tiny keyspace with delete/reinsert (recycling on).
// Conservation of node count: successful inserts minus successful deletes
// must equal the final resident count, the pool accounting must agree with
// a host-side chain walk, and no lock may remain held.
TEST(KvStore, DeleteReinsertUnderContention) {
  TmSystem sys(SmallConfig(8, 4));
  KvStoreConfig cfg = SmallStore(1);
  cfg.buckets_per_partition = 2;  // long chains: overlapping traversals
  cfg.capacity_per_partition = 16;
  KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), cfg);
  constexpr uint64_t kKeys = 6;
  constexpr int kOpsPerCore = 150;
  const uint32_t n = sys.num_app_cores();
  std::vector<uint64_t> inserts(n, 0), deletes(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv&, TxRuntime& rt) {
      Rng rng(1000 + i * 37);
      for (int k = 0; k < kOpsPerCore; ++k) {
        const uint64_t key = 1 + rng.NextBelow(kKeys);
        if (rng.NextPercent(50)) {
          const uint64_t value = (uint64_t{i} << 32) | static_cast<uint64_t>(k);
          if (store.Insert(rt, key, &value)) {
            ++inserts[i];
          }
        } else {
          if (store.Delete(rt, key)) {
            ++deletes[i];
          }
        }
      }
    });
  }
  sys.Run();
  uint64_t total_inserts = 0, total_deletes = 0;
  for (uint32_t i = 0; i < n; ++i) {
    total_inserts += inserts[i];
    total_deletes += deletes[i];
  }
  EXPECT_EQ(total_inserts - total_deletes, store.HostSize());
  EXPECT_LE(store.HostSize(), kKeys);
  uint64_t pool_in_use = 0;
  for (uint32_t p = 0; p < store.num_partitions(); ++p) {
    pool_in_use += store.NodesInUse(p);
  }
  EXPECT_EQ(pool_in_use, store.HostSize());
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

// One core scans while the others churn puts and deletes. Every scan must
// be a consistent snapshot: entries carry the deterministic value their
// key always maps to (a torn scan would observe a half-written node), no
// duplicate keys, and never more than the limit.
TEST(KvStore, ScanVsConcurrentPut) {
  TmSystem sys(SmallConfig(6, 2));
  KvStoreConfig cfg = SmallStore(2);
  cfg.buckets_per_partition = 2;
  cfg.capacity_per_partition = 32;
  KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), cfg);
  constexpr uint64_t kKeys = 16;
  for (uint64_t key = 1; key <= kKeys; ++key) {
    const uint64_t value[2] = {key * 7, key * 11};
    store.HostPut(key, value);
  }
  const uint32_t n = sys.num_app_cores();
  uint64_t scans_done = 0, entries_seen = 0;
  bool scans_consistent = true;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    Rng rng(7);
    for (int s = 0; s < 60; ++s) {
      const uint64_t start = 1 + rng.NextBelow(kKeys);
      const std::vector<KvEntry> got = store.HashScan(rt, start, 8);
      ++scans_done;
      entries_seen += got.size();
      std::set<uint64_t> seen;
      if (got.size() > 8) {
        scans_consistent = false;
      }
      for (const KvEntry& e : got) {
        if (e.key < 1 || e.key > kKeys || !seen.insert(e.key).second ||
            e.value[0] != e.key * 7 || e.value[1] != e.key * 11) {
          scans_consistent = false;
        }
      }
    }
  });
  for (uint32_t i = 1; i < n; ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv&, TxRuntime& rt) {
      Rng rng(100 + i);
      for (int k = 0; k < 120; ++k) {
        const uint64_t key = 1 + rng.NextBelow(kKeys);
        if (rng.NextPercent(50)) {
          const uint64_t value[2] = {key * 7, key * 11};  // key-deterministic
          store.Put(rt, key, value);
        } else {
          store.Delete(rt, key);
        }
      }
    });
  }
  sys.Run();
  EXPECT_EQ(scans_done, 60u);
  EXPECT_GT(entries_seen, 0u);
  EXPECT_TRUE(scans_consistent);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

// ---------------------------------------------------------------------------
// Chaos + oracle
// ---------------------------------------------------------------------------

CheckRunConfig KvCheckConfig(uint64_t seed, TxMode mode = TxMode::kNormal) {
  CheckRunConfig cfg;
  cfg.workload = CheckWorkload::kKv;
  cfg.platform = "scc";
  cfg.cm = CmKind::kFairCm;
  cfg.tx_mode = mode;
  cfg.max_batch = 8;
  cfg.seed = seed;
  return cfg;
}

TEST(KvStoreChaos, CleanUnderNormalAndElasticEarly) {
  for (const TxMode mode : {TxMode::kNormal, TxMode::kElasticEarly}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      const CheckRunResult result = RunCheckedWorkload(KvCheckConfig(seed, mode));
      EXPECT_TRUE(result.report.ok())
          << KvCheckConfig(seed, mode).Name() << ": " << result.report.Summary();
    }
  }
}

// The oracle must keep its teeth on the KV workload: a protocol broken on
// purpose has to be flagged. Runs are deterministic per seed, so these are
// fixed detections, not probabilistic ones.
TEST(KvStoreChaos, SkipReadLockIsFlagged) {
  bool flagged = false;
  for (uint64_t seed = 1; seed <= 4 && !flagged; ++seed) {
    CheckRunConfig cfg = KvCheckConfig(seed);
    cfg.fault = FaultMode::kSkipReadLock;
    flagged = !RunCheckedWorkload(cfg).report.ok();
  }
  EXPECT_TRUE(flagged) << "skip-read-lock survived 4 seeds of the KV chaos workload";
}

TEST(KvStoreChaos, ReleaseBeforePersistIsFlagged) {
  // The word-at-a-time persist window this fault opens is sub-microsecond,
  // while every locked read needs a service round trip — so on this
  // workload only eread's lock-free validated reads can race the persist
  // and observe the torn state. Extra heat (6 keys, 60 txs/core) makes the
  // race land in about half the seeds; 6 deterministic seeds cover it.
  bool flagged = false;
  for (uint64_t seed = 1; seed <= 6 && !flagged; ++seed) {
    CheckRunConfig cfg = KvCheckConfig(seed, TxMode::kElasticRead);
    cfg.fault = FaultMode::kReleaseBeforePersist;
    cfg.accounts = 6;
    cfg.txs_per_core = 60;
    flagged = !RunCheckedWorkload(cfg).report.ok();
  }
  EXPECT_TRUE(flagged) << "release-before-persist survived 6 seeds of the KV chaos workload";
}

// Value-validated elastic reads (eread) admit pointer ABA when a recycled
// node restores an old link value — by contract that execution is value-
// serializable, so the order-based oracle may report a cycle, but the
// store's semantic invariants (counter conservation, node accounting,
// final state) must still hold. This pins the documented relaxation.
TEST(KvStoreChaos, ElasticReadStaysValueSerializable) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const CheckRunResult result =
        RunCheckedWorkload(KvCheckConfig(seed, TxMode::kElasticRead));
    for (const OracleViolation& v : result.report.violations) {
      EXPECT_NE(v.kind, "conservation") << v.detail;
      EXPECT_NE(v.kind, "node-accounting") << v.detail;
      EXPECT_NE(v.kind, "final-state") << v.detail;
    }
  }
}

}  // namespace
}  // namespace tm2c

#include <gtest/gtest.h>

#include "src/noc/latency.h"
#include "src/noc/platform.h"
#include "src/noc/topology.h"

namespace tm2c {
namespace {

TEST(Platform, SccSettingTable) {
  // Section 5.1's settings table (tile/mesh/DRAM MHz).
  const PlatformDesc s0 = MakeSccPlatform(0);
  EXPECT_EQ(s0.core_mhz, 533u);
  EXPECT_EQ(s0.mesh_mhz, 800u);
  EXPECT_EQ(s0.dram_mhz, 800u);
  const PlatformDesc s1 = MakeSccPlatform(1);
  EXPECT_EQ(s1.core_mhz, 800u);
  EXPECT_EQ(s1.mesh_mhz, 1600u);
  EXPECT_EQ(s1.dram_mhz, 1066u);
  const PlatformDesc s4 = MakeSccPlatform(4);
  EXPECT_EQ(s4.core_mhz, 800u);
  EXPECT_EQ(s4.mesh_mhz, 800u);
  EXPECT_EQ(s4.dram_mhz, 800u);
}

TEST(Platform, ByNameLookup) {
  EXPECT_EQ(PlatformByName("scc").name, "scc");
  EXPECT_EQ(PlatformByName("scc800").core_mhz, 800u);
  EXPECT_EQ(PlatformByName("opteron").kind, PlatformKind::kOpteron);
  EXPECT_EQ(PlatformByName("scc-setting-3").mesh_mhz, 800u);
}

TEST(Platform, SccShape) {
  const PlatformDesc p = MakeSccPlatform(0);
  EXPECT_EQ(p.mesh_cols * p.mesh_rows * p.cores_per_tile, 48u);
  EXPECT_EQ(p.num_mem_controllers, 4u);
}

TEST(Topology, TileCoordinates) {
  const Topology topo(MakeSccPlatform(0));
  // Cores 0 and 1 share tile (0,0); cores 2,3 are tile (1,0).
  EXPECT_EQ(topo.TileOf(0).x, 0u);
  EXPECT_EQ(topo.TileOf(1).x, 0u);
  EXPECT_EQ(topo.TileOf(2).x, 1u);
  // Core 12 starts the second row (6 tiles * 2 cores per row).
  EXPECT_EQ(topo.TileOf(12).y, 1u);
  EXPECT_EQ(topo.TileOf(12).x, 0u);
  // Last core is on tile (5,3).
  EXPECT_EQ(topo.TileOf(47).x, 5u);
  EXPECT_EQ(topo.TileOf(47).y, 3u);
}

TEST(Topology, HopsIsManhattanDistance) {
  const Topology topo(MakeSccPlatform(0));
  EXPECT_EQ(topo.Hops(0, 1), 0u);    // same tile
  EXPECT_EQ(topo.Hops(0, 2), 1u);    // adjacent tile
  EXPECT_EQ(topo.Hops(0, 47), 8u);   // opposite corners: 5 + 3
  EXPECT_EQ(topo.Hops(47, 0), 8u);   // symmetric
}

TEST(Topology, OpteronSocketHops) {
  const Topology topo(MakeOpteronPlatform());
  EXPECT_EQ(topo.Hops(0, 11), 0u);   // same socket
  EXPECT_EQ(topo.Hops(0, 12), 1u);   // cross socket
  EXPECT_EQ(topo.Hops(13, 14), 0u);
}

TEST(Topology, MemControllerStriping) {
  const Topology topo(MakeSccPlatform(0));
  const uint64_t bytes = 4096;
  EXPECT_EQ(topo.MemControllerOf(0, bytes), 0u);
  EXPECT_EQ(topo.MemControllerOf(1024, bytes), 1u);
  EXPECT_EQ(topo.MemControllerOf(2048, bytes), 2u);
  EXPECT_EQ(topo.MemControllerOf(4095, bytes), 3u);
}

TEST(Latency, RoundTripMatchesPaperCalibration) {
  // Figure 8(a): ~5.1 us round trip with 2 cores, ~12.4 us with 48 cores
  // (24 app + 24 service) on SCC setting 0.
  const PlatformDesc p = MakeSccPlatform(0);
  const LatencyModel lat(p);

  // 2 cores: each side polls a single peer.
  const double rt2 = SimToMicros(lat.OneWayPs(0, 1, 1) + lat.OneWayPs(1, 0, 1));
  EXPECT_NEAR(rt2, 5.1, 0.8);

  // 48 cores: a service core polls 24 app cores; an app core polls 24
  // service cores; average hop distance on the mesh is about 3.6.
  const double rt48 = SimToMicros(lat.OneWayPs(0, 40, 24) + lat.OneWayPs(40, 0, 24));
  EXPECT_NEAR(rt48, 12.4, 2.0);
}

TEST(Latency, GrowsWithPolledPeers) {
  const LatencyModel lat(MakeSccPlatform(0));
  EXPECT_LT(lat.RecvOverheadPs(2), lat.RecvOverheadPs(24));
  EXPECT_LT(lat.OneWayPs(0, 2, 1), lat.OneWayPs(0, 2, 48));
}

TEST(Latency, Scc800FasterThanDefault) {
  const LatencyModel slow(MakeSccPlatform(0));
  const LatencyModel fast(MakeSccPlatform(1));
  EXPECT_LT(fast.OneWayPs(0, 40, 24), slow.OneWayPs(0, 40, 24));
}

TEST(Latency, OpteronBetweenSccSettingsAtScale) {
  // Figure 8(a) at 48 cores: scc800 < opteron < scc.
  const LatencyModel scc(MakeSccPlatform(0));
  const LatencyModel scc800(MakeSccPlatform(1));
  const LatencyModel opt(MakeOpteronPlatform());
  const SimTime scc_rt = scc.OneWayPs(0, 40, 24) + scc.OneWayPs(40, 0, 24);
  const SimTime scc800_rt = scc800.OneWayPs(0, 40, 24) + scc800.OneWayPs(40, 0, 24);
  const SimTime opt_rt = opt.OneWayPs(0, 40, 24) + opt.OneWayPs(40, 0, 24);
  EXPECT_LT(scc800_rt, opt_rt);
  EXPECT_LT(opt_rt, scc_rt);
}

TEST(Latency, MemAccessChargesMeshDistance) {
  const PlatformDesc p = MakeSccPlatform(0);
  const LatencyModel lat(p);
  const uint64_t bytes = 1 << 20;
  // Core 0 sits at tile (0,0) next to controller 0's corner; address 0 is
  // in controller 0's region, the last address in controller 3's region.
  const SimTime near = lat.MemAccessPs(0, 0, bytes);
  const SimTime far = lat.MemAccessPs(0, bytes - 8, bytes);
  EXPECT_LT(near, far);
}

}  // namespace
}  // namespace tm2c

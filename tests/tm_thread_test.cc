// TM2C protocol on the std::thread backend: the same DtmService/TxRuntime
// code under real OS concurrency (the Section 7 port), over both the
// lock-free SPSC rings and the mutex-mailbox baseline. These tests are
// nondeterministic by nature and assert only safety and completion.
#include <gtest/gtest.h>

#include <atomic>

#include "src/runtime/thread_system.h"
#include "src/tm/dtm_service.h"
#include "src/tm/tx_runtime.h"

namespace tm2c {
namespace {

constexpr ChannelKind kBothChannels[] = {ChannelKind::kSpscRing, ChannelKind::kMutexMailbox};

struct ThreadTmHarness {
  ThreadTmHarness(uint32_t cores, uint32_t service, TmConfig tm_config,
                  ChannelKind channel = ChannelKind::kSpscRing)
      : tm(tm_config) {
    ThreadSystemConfig cfg;
    cfg.platform = MakeOpteronPlatform();
    cfg.num_cores = cores;
    cfg.num_service = service;
    cfg.shmem_bytes = 1 << 20;
    cfg.channel = channel;
    sys = std::make_unique<ThreadSystem>(cfg);
    map = std::make_unique<AddressMap>(sys->deployment(), tm.stripe_bytes);
    for (uint32_t core : sys->deployment().service_cores()) {
      sys->SetCoreMain(core, [this](CoreEnv& env) {
        DtmService service_loop(env, tm);
        service_loop.RunLoop();
      });
    }
    running.store(sys->deployment().num_app());
  }

  // Installs `body` on every app thread; the last to finish shuts the
  // services down.
  void SetAppBodies(const std::function<void(CoreEnv&, TxRuntime&)>& body) {
    const auto& plan = sys->deployment();
    for (uint32_t i = 0; i < plan.num_app(); ++i) {
      const uint32_t core = plan.app_cores()[i];
      sys->SetCoreMain(core, [this, body](CoreEnv& env) {
        TxRuntime rt(env, tm, *map);
        body(env, rt);
        if (running.fetch_sub(1) == 1) {
          for (uint32_t sc : sys->deployment().service_cores()) {
            sys->SendShutdown(sc);
          }
        }
      });
    }
  }

  TmConfig tm;
  std::unique_ptr<ThreadSystem> sys;
  std::unique_ptr<AddressMap> map;
  std::atomic<uint32_t> running{0};
};

TEST(ThreadTm, ConcurrentIncrementsExact) {
  for (const ChannelKind channel : kBothChannels) {
    for (CmKind cm : {CmKind::kBackoffRetry, CmKind::kFairCm}) {
      TmConfig tm;
      tm.cm = cm;
      ThreadTmHarness h(4, 2, tm, channel);
      const uint64_t counter = h.sys->allocator().AllocGlobal(8);
      constexpr int kIncs = 500;
      h.SetAppBodies([counter](CoreEnv&, TxRuntime& rt) {
        for (int k = 0; k < kIncs; ++k) {
          rt.Execute([counter](Tx& tx) { tx.Write(counter, tx.Read(counter) + 1); });
        }
      });
      h.sys->RunToCompletion();
      EXPECT_EQ(h.sys->shmem().LoadWord(counter),
                static_cast<uint64_t>(h.sys->deployment().num_app()) * kIncs)
          << "cm=" << CmKindName(cm) << " channel=" << ChannelKindName(channel);
    }
  }
}

TEST(ThreadTm, BankTransfersConserveTotal) {
  for (const ChannelKind channel : kBothChannels) {
    TmConfig tm;
    tm.cm = CmKind::kFairCm;
    ThreadTmHarness h(4, 1, tm, channel);
    constexpr uint32_t kAccounts = 32;
    const uint64_t base = h.sys->allocator().AllocGlobal(kAccounts * 8);
    for (uint32_t a = 0; a < kAccounts; ++a) {
      h.sys->shmem().StoreWord(base + a * 8, 100);
    }
    std::atomic<uint32_t> next_seed{1};
    h.SetAppBodies([base, &next_seed](CoreEnv&, TxRuntime& rt) {
      Rng rng(next_seed.fetch_add(1));
      for (int k = 0; k < 300; ++k) {
        const uint64_t from = base + rng.NextBelow(kAccounts) * 8;
        uint64_t to = base + rng.NextBelow(kAccounts) * 8;
        if (to == from) {
          to = base + ((to - base) / 8 + 1) % kAccounts * 8;
        }
        rt.Execute([from, to](Tx& tx) {
          tx.Write(from, tx.Read(from) - 1);
          tx.Write(to, tx.Read(to) + 1);
        });
      }
    });
    h.sys->RunToCompletion();
    uint64_t total = 0;
    for (uint32_t a = 0; a < kAccounts; ++a) {
      total += h.sys->shmem().LoadWord(base + a * 8);
    }
    EXPECT_EQ(total, static_cast<uint64_t>(kAccounts) * 100) << ChannelKindName(channel);
  }
}

TEST(ThreadTm, ScansSeeConsistentPairs) {
  TmConfig tm;
  tm.cm = CmKind::kFairCm;
  ThreadTmHarness h(4, 2, tm);
  const uint64_t base = h.sys->allocator().AllocGlobal(16);
  h.sys->shmem().StoreWord(base, 500);
  h.sys->shmem().StoreWord(base + 8, 500);
  std::atomic<bool> violation{false};
  std::atomic<uint32_t> role{0};
  h.SetAppBodies([base, &violation, &role](CoreEnv&, TxRuntime& rt) {
    const uint32_t my_role = role.fetch_add(1);
    if (my_role % 2 == 0) {
      Rng rng(my_role + 10);
      for (int k = 0; k < 200; ++k) {
        const uint64_t d = rng.NextBelow(5);
        rt.Execute([base, d](Tx& tx) {
          tx.Write(base, tx.Read(base) - d);
          tx.Write(base + 8, tx.Read(base + 8) + d);
        });
      }
    } else {
      for (int k = 0; k < 200; ++k) {
        uint64_t a = 0;
        uint64_t b = 0;
        rt.Execute([&](Tx& tx) {
          a = tx.Read(base);
          b = tx.Read(base + 8);
        });
        if (a + b != 1000) {
          violation.store(true);
        }
      }
    }
  });
  h.sys->RunToCompletion();
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace tm2c

// Wire-protocol-level tests of the DTM service: one service core driven by
// a raw-message client core on the simulator.
#include <gtest/gtest.h>

#include "src/tm/dtm_service.h"

#include "src/runtime/sim_system.h"
#include "src/tm/address_map.h"

namespace tm2c {
namespace {

// Harness: core 0 runs the service loop; core 1 runs `client` and can send
// raw protocol messages and await responses.
class ServiceHarness {
 public:
  explicit ServiceHarness(TmConfig tm = TmConfig{}) {
    SimSystemConfig cfg;
    cfg.platform = MakeSccPlatform(0);
    cfg.num_cores = 4;
    cfg.num_service = 1;  // core 0
    cfg.shmem_bytes = 1 << 20;
    cfg.seed = 3;
    sys_ = std::make_unique<SimSystem>(cfg);
    service_ = std::make_unique<DtmService>(sys_->env(0), tm);
    sys_->SetCoreMain(0, [this](CoreEnv&) { service_->RunLoop(); });
  }

  void RunClient(std::function<void(CoreEnv&)> client) {
    sys_->SetCoreMain(1, std::move(client));
    sys_->Run(MillisToSim(1000));
  }

  DtmService& service() { return *service_; }
  SimSystem& sys() { return *sys_; }

  static Message ReadReq(uint64_t addr, uint64_t epoch, uint64_t metric = 0) {
    Message m;
    m.type = MsgType::kReadLockReq;
    m.w0 = addr;
    m.w1 = epoch;
    m.w2 = metric;
    return m;
  }
  static Message WriteReq(uint64_t addr, uint64_t epoch, uint64_t metric = 0) {
    Message m = ReadReq(addr, epoch, metric);
    m.type = MsgType::kWriteLockReq;
    return m;
  }

 private:
  std::unique_ptr<SimSystem> sys_;
  std::unique_ptr<DtmService> service_;
};

TEST(DtmService, EchoRespondsImmediately) {
  ServiceHarness h;
  bool ok = false;
  h.RunClient([&ok](CoreEnv& env) {
    Message m;
    m.type = MsgType::kEcho;
    m.w0 = 77;
    env.Send(0, std::move(m));
    const Message rsp = env.Recv();
    ok = rsp.type == MsgType::kEchoRsp && rsp.w0 == 77;
  });
  EXPECT_TRUE(ok);
}

TEST(DtmService, GrantsFreeLocksAndEchoesEpoch) {
  ServiceHarness h;
  h.RunClient([](CoreEnv& env) {
    env.Send(0, ServiceHarness::ReadReq(0x100, 11));
    Message rsp = env.Recv();
    ASSERT_EQ(rsp.type, MsgType::kLockGranted);
    EXPECT_EQ(rsp.w0, 0x100u);
    EXPECT_EQ(rsp.w1, 11u);
    env.Send(0, ServiceHarness::WriteReq(0x100, 11));
    rsp = env.Recv();
    ASSERT_EQ(rsp.type, MsgType::kLockGranted);  // own-lock upgrade
  });
  EXPECT_TRUE(h.service().lock_table().HasReader(0x100, 1));
  EXPECT_TRUE(h.service().lock_table().HasWriter(0x100, nullptr));
}

TEST(DtmService, ConflictResponseCarriesKind) {
  TmConfig tm;
  tm.cm = CmKind::kNone;  // requester always loses
  ServiceHarness h(tm);
  ConflictKind kind = ConflictKind::kNone;
  h.RunClient([&kind](CoreEnv& env) {
    env.Send(0, ServiceHarness::WriteReq(0x200, 1));
    (void)env.Recv();  // granted
    // Second client (core 2) not used; reuse core 1 with a different
    // epoch — but the same core never conflicts with itself, so drive the
    // conflict through a direct HandleLocal-style message from core 2.
    env.Send(0, ServiceHarness::ReadReq(0x200, 2));
    const Message rsp = env.Recv();
    kind = static_cast<ConflictKind>(rsp.w2);
  });
  // Same core: no conflict. This asserts the OWN-lock path instead.
  EXPECT_EQ(kind, ConflictKind::kNone);
}

TEST(DtmService, ForeignConflictRefusedWithKind) {
  TmConfig tm;
  tm.cm = CmKind::kNone;
  ServiceHarness h(tm);
  ConflictKind kind = ConflictKind::kNone;
  // Core 2 takes the write lock; core 1's read is refused RAW.
  h.sys().SetCoreMain(2, [](CoreEnv& env) {
    env.Send(0, ServiceHarness::WriteReq(0x300, 21));
    (void)env.Recv();
  });
  h.RunClient([&kind](CoreEnv& env) {
    env.Compute(1000000);  // let core 2 acquire first
    env.Send(0, ServiceHarness::ReadReq(0x300, 11));
    const Message rsp = env.Recv();
    ASSERT_EQ(rsp.type, MsgType::kLockConflict);
    kind = static_cast<ConflictKind>(rsp.w2);
  });
  EXPECT_EQ(kind, ConflictKind::kReadAfterWrite);
}

TEST(DtmService, RevocationNotifiesVictimOnce) {
  TmConfig tm;
  tm.cm = CmKind::kFairCm;
  ServiceHarness h(tm);
  int notifies = 0;
  // Core 2 (victim, worse metric) read-locks two addresses; core 1 write-
  // locks both with a better metric, revoking core 2 twice — but only one
  // notification per transaction attempt may be sent.
  h.sys().SetCoreMain(2, [&notifies](CoreEnv& env) {
    env.Send(0, ServiceHarness::ReadReq(0x400, 42, /*metric=*/100));
    (void)env.Recv();
    env.Send(0, ServiceHarness::ReadReq(0x408, 42, /*metric=*/100));
    (void)env.Recv();
    for (;;) {
      const Message m = env.Recv();
      if (m.type == MsgType::kAbortNotify) {
        EXPECT_EQ(m.w1, 42u);
        ++notifies;
      }
    }
  });
  h.RunClient([](CoreEnv& env) {
    env.Compute(2000000);  // let the victim acquire first
    env.Send(0, ServiceHarness::WriteReq(0x400, 7, /*metric=*/1));
    ASSERT_EQ(env.Recv().type, MsgType::kLockGranted);
    env.Send(0, ServiceHarness::WriteReq(0x408, 7, /*metric=*/1));
    ASSERT_EQ(env.Recv().type, MsgType::kLockGranted);
  });
  EXPECT_EQ(notifies, 1);
}

TEST(DtmService, StaleEpochRequestsRefused) {
  TmConfig tm;
  tm.cm = CmKind::kFairCm;
  ServiceHarness h(tm);
  bool second_refused = false;
  // Victim core 2 is revoked under epoch 42, then (not having processed
  // the notification) sends another request with the same epoch: the node
  // must refuse it outright.
  h.sys().SetCoreMain(2, [&second_refused](CoreEnv& env) {
    env.Send(0, ServiceHarness::ReadReq(0x500, 42, 100));
    (void)env.Recv();
    env.Compute(4000000);  // revoked meanwhile; notification ignored here
    env.Send(0, ServiceHarness::ReadReq(0x508, 42, 100));
    for (;;) {
      const Message m = env.Recv();
      if (m.type == MsgType::kLockConflict) {
        second_refused = true;
        return;
      }
      if (m.type == MsgType::kLockGranted) {
        return;
      }
    }
  });
  h.RunClient([](CoreEnv& env) {
    env.Compute(2000000);
    env.Send(0, ServiceHarness::WriteReq(0x500, 7, 1));  // revokes core 2
    ASSERT_EQ(env.Recv().type, MsgType::kLockGranted);
  });
  EXPECT_TRUE(second_refused);
  EXPECT_GT(h.service().stats().stale_requests_refused, 0u);
}

TEST(DtmService, BatchPrefixGrantStopsAtConflict) {
  TmConfig tm;
  tm.cm = CmKind::kNone;  // requester always loses a foreign conflict
  ServiceHarness h(tm);
  // Core 2 holds 0x610; core 1's batch {0x600, 0x608, 0x610} is granted as
  // the prefix {0x600, 0x608} — all-or-prefix, no rollback: the requester
  // keeps (and later releases) what was granted.
  h.sys().SetCoreMain(2, [](CoreEnv& env) {
    env.Send(0, ServiceHarness::WriteReq(0x610, 21));
    (void)env.Recv();
  });
  h.RunClient([](CoreEnv& env) {
    env.Compute(1000000);
    Message batch;
    batch.type = MsgType::kBatchAcquire;
    batch.w1 = 11;
    batch.w3 = PrefixBitmap(3);  // all three entries want the write lock
    batch.extra = {0x600, 0x608, 0x610};
    env.Send(0, std::move(batch));
    const Message rsp = env.Recv();
    ASSERT_EQ(rsp.type, MsgType::kBatchReply);
    EXPECT_EQ(rsp.w0, PrefixBitmap(2));  // grant bitmap: entries 0 and 1
    EXPECT_EQ(rsp.w3, 2u);               // granted count
    EXPECT_EQ(static_cast<ConflictKind>(rsp.w2), ConflictKind::kWriteAfterWrite);
  });
  uint32_t writer = 0;
  ASSERT_TRUE(h.service().lock_table().HasWriter(0x600, &writer));
  EXPECT_EQ(writer, 1u);
  EXPECT_TRUE(h.service().lock_table().HasWriter(0x608, nullptr));
  ASSERT_TRUE(h.service().lock_table().HasWriter(0x610, &writer));
  EXPECT_EQ(writer, 2u);  // the holder was untouched
}

TEST(DtmService, BatchMixedReadWriteFullyGranted) {
  ServiceHarness h;
  h.RunClient([](CoreEnv& env) {
    Message batch;
    batch.type = MsgType::kBatchAcquire;
    batch.w1 = 11;
    batch.w3 = 0b101;  // entries 0 and 2 write, entry 1 read
    batch.extra = {0x700, 0x708, 0x710};
    env.Send(0, std::move(batch));
    const Message rsp = env.Recv();
    ASSERT_EQ(rsp.type, MsgType::kBatchReply);
    EXPECT_EQ(rsp.w0, PrefixBitmap(3));
    EXPECT_EQ(rsp.w3, 3u);
    EXPECT_EQ(static_cast<ConflictKind>(rsp.w2), ConflictKind::kNone);
  });
  EXPECT_TRUE(h.service().lock_table().HasWriter(0x700, nullptr));
  EXPECT_TRUE(h.service().lock_table().HasReader(0x708, 1));
  EXPECT_FALSE(h.service().lock_table().HasWriter(0x708, nullptr));
  EXPECT_TRUE(h.service().lock_table().HasWriter(0x710, nullptr));
  EXPECT_EQ(h.service().stats().batch_requests, 1u);
  EXPECT_EQ(h.service().stats().batch_entries, 3u);
}

TEST(DtmService, BatchEmptyIsTriviallyGranted) {
  ServiceHarness h;
  h.RunClient([](CoreEnv& env) {
    Message batch;
    batch.type = MsgType::kBatchAcquire;
    batch.w1 = 11;
    env.Send(0, std::move(batch));
    const Message rsp = env.Recv();
    ASSERT_EQ(rsp.type, MsgType::kBatchReply);
    EXPECT_EQ(rsp.w0, 0u);
    EXPECT_EQ(rsp.w3, 0u);
    EXPECT_EQ(static_cast<ConflictKind>(rsp.w2), ConflictKind::kNone);
  });
  EXPECT_EQ(h.service().lock_table().NumEntries(), 0u);
}

TEST(DtmService, BatchStaleEpochRefusedWhole) {
  TmConfig tm;
  tm.cm = CmKind::kFairCm;
  ServiceHarness h(tm);
  // Core 2's read lock under epoch 42 is revoked by core 1's write; core
  // 2's follow-up batch under the same epoch must get zero grants.
  h.sys().SetCoreMain(2, [](CoreEnv& env) {
    env.Send(0, ServiceHarness::ReadReq(0xA00, 42, /*metric=*/100));
    (void)env.Recv();
    env.Compute(4000000);  // revoked meanwhile
    Message batch;
    batch.type = MsgType::kBatchAcquire;
    batch.w1 = 42;
    batch.w3 = PrefixBitmap(2);
    batch.extra = {0xA08, 0xA10};
    env.Send(0, std::move(batch));
    for (;;) {
      const Message m = env.Recv();
      if (m.type == MsgType::kBatchReply) {
        EXPECT_EQ(m.w0, 0u);
        EXPECT_EQ(m.w3, 0u);
        EXPECT_NE(static_cast<ConflictKind>(m.w2), ConflictKind::kNone);
        return;
      }
    }
  });
  h.RunClient([](CoreEnv& env) {
    env.Compute(2000000);
    env.Send(0, ServiceHarness::WriteReq(0xA00, 7, /*metric=*/1));  // revokes core 2
    ASSERT_EQ(env.Recv().type, MsgType::kLockGranted);
  });
  EXPECT_GT(h.service().stats().stale_requests_refused, 0u);
  EXPECT_FALSE(h.service().lock_table().HasWriter(0xA08, nullptr));
  EXPECT_FALSE(h.service().lock_table().HasWriter(0xA10, nullptr));
}

TEST(DtmService, BatchMisroutedEntryTerminatesPrefix) {
  // Two service cores (0 and 2) and an AddressMap: a batch sent to core 0
  // containing a stripe that hashes to core 2 must stop the grant prefix at
  // the misrouted entry instead of splitting that stripe's lock state
  // across two tables.
  SimSystemConfig cfg;
  cfg.platform = MakeSccPlatform(0);
  cfg.num_cores = 4;
  cfg.num_service = 2;  // service cores 0 and 2
  cfg.shmem_bytes = 1 << 20;
  cfg.seed = 3;
  SimSystem sys(cfg);
  TmConfig tm;
  AddressMap map(sys.deployment(), tm.stripe_bytes);
  DtmService service(sys.env(0), tm, &map);
  sys.SetCoreMain(0, [&service](CoreEnv&) { service.RunLoop(); });

  // Find one stripe owned by core 0 and one owned by core 2.
  uint64_t own = UINT64_MAX;
  uint64_t foreign = UINT64_MAX;
  for (uint64_t addr = 0x100; own == UINT64_MAX || foreign == UINT64_MAX; addr += 8) {
    (map.ResponsibleCore(addr) == 0 ? own : foreign) = addr;
  }
  sys.SetCoreMain(1, [own, foreign](CoreEnv& env) {
    Message batch;
    batch.type = MsgType::kBatchAcquire;
    batch.w1 = 5;
    batch.w3 = PrefixBitmap(3);
    batch.extra = {own, foreign, own};
    env.Send(0, std::move(batch));
    const Message rsp = env.Recv();
    ASSERT_EQ(rsp.type, MsgType::kBatchReply);
    EXPECT_EQ(rsp.w0, PrefixBitmap(1));  // only the leading owned entry
    EXPECT_EQ(rsp.w3, 1u);
  });
  sys.Run(MillisToSim(1000));
  EXPECT_TRUE(service.lock_table().HasWriter(own, nullptr));
  EXPECT_FALSE(service.lock_table().HasWriter(foreign, nullptr));
  EXPECT_EQ(service.stats().misrouted_refused, 1u);
}

// Two-service fixture with an AddressMap that pins [0x1000, +0x100) to
// partition 0: the migration protocol needs a registered owned range and a
// second partition to move it to.
struct MigrationFixture {
  MigrationFixture() {
    SimSystemConfig cfg;
    cfg.platform = MakeSccPlatform(0);
    cfg.num_cores = 4;
    cfg.num_service = 2;  // service cores 0 and 2
    cfg.shmem_bytes = 1 << 20;
    cfg.seed = 3;
    sys = std::make_unique<SimSystem>(cfg);
    map = std::make_unique<AddressMap>(sys->deployment(), TmConfig{}.stripe_bytes);
    map->AddOwnedRange(0x1000, 0x100, 0);
    service = std::make_unique<DtmService>(sys->env(0), TmConfig{}, map.get());
    sys->SetCoreMain(0, [this](CoreEnv&) { service->RunLoop(); });
  }

  static Message MigrateReq(uint64_t base, uint64_t bytes, uint32_t target) {
    Message m;
    m.type = MsgType::kMigrateRange;
    m.w0 = base;
    m.w1 = bytes;
    m.w2 = target;
    return m;
  }

  std::unique_ptr<SimSystem> sys;
  std::unique_ptr<AddressMap> map;
  std::unique_ptr<DtmService> service;
};

TEST(DtmServiceMigration, DrainRevokesHoldersAndFlipsOwnership) {
  MigrationFixture f;
  ConflictKind notify_kind = ConflictKind::kNone;
  ConflictKind stale_route_kind = ConflictKind::kNone;
  Message update;
  f.sys->SetCoreMain(1, [&](CoreEnv& env) {
    env.Send(0, ServiceHarness::ReadReq(0x1000, 7, /*metric=*/100));
    ASSERT_EQ(env.Recv().type, MsgType::kLockGranted);
    env.Send(0, MigrationFixture::MigrateReq(0x1000, 0x100, 1));
    // The drain revokes our revocable read lock through the CM path...
    Message m = env.Recv();
    ASSERT_EQ(m.type, MsgType::kAbortNotify);
    EXPECT_EQ(m.w1, 7u);
    notify_kind = static_cast<ConflictKind>(m.w2);
    // ...the range is then empty, so the flip broadcast follows at once.
    update = env.Recv();
    ASSERT_EQ(update.type, MsgType::kOwnershipUpdate);
    // A request still routed to the old owner is refused whole, retryably.
    env.Send(0, ServiceHarness::ReadReq(0x1040, 9));
    m = env.Recv();
    ASSERT_EQ(m.type, MsgType::kLockConflict);
    stale_route_kind = static_cast<ConflictKind>(m.w2);
  });
  f.sys->Run(MillisToSim(1000));
  EXPECT_EQ(notify_kind, ConflictKind::kMigrating);
  EXPECT_EQ(stale_route_kind, ConflictKind::kMigrating);
  EXPECT_EQ(update.w0, 0x1000u);
  EXPECT_EQ(update.w1, 0x100u);
  EXPECT_EQ(update.w2, 1u);  // new owning partition
  EXPECT_EQ(update.w3, 1u);  // directory version after the flip
  EXPECT_EQ(f.map->PartitionOf(0x1000), 1u);
  EXPECT_EQ(f.map->version(), 1u);
  EXPECT_EQ(f.service->stats().migrations_started, 1u);
  EXPECT_EQ(f.service->stats().migrations_completed, 1u);
  EXPECT_EQ(f.service->stats().misrouted_refused, 1u);
  EXPECT_EQ(f.service->lock_table().NumEntries(), 0u);
}

TEST(DtmServiceMigration, CommittingWriterHoldsTheWindowOpenUntilRelease) {
  MigrationFixture f;
  ConflictKind refused_kind = ConflictKind::kNone;
  bool refused_while_draining = false;
  f.sys->SetCoreMain(1, [&](CoreEnv& env) {
    // A commit-phase write lock (w3 != 0) is not revocable by the drain.
    Message commit_write = ServiceHarness::WriteReq(0x1000, 7);
    commit_write.w3 = 1;
    env.Send(0, std::move(commit_write));
    ASSERT_EQ(env.Recv().type, MsgType::kLockGranted);
    env.Send(0, MigrationFixture::MigrateReq(0x1000, 0x100, 1));
    // While the window is open, new acquires in the range are refused.
    env.Send(0, ServiceHarness::ReadReq(0x1080, 9));
    const Message m = env.Recv();
    refused_while_draining = m.type == MsgType::kLockConflict;
    refused_kind = static_cast<ConflictKind>(m.w2);
    // The committing writer's release closes the window.
    Message rel;
    rel.type = MsgType::kReleaseAllWrites;
    rel.w1 = 7;
    rel.extra = {0x1000};
    env.Send(0, std::move(rel));
    ASSERT_EQ(env.Recv().type, MsgType::kOwnershipUpdate);
  });
  f.sys->Run(MillisToSim(1000));
  EXPECT_TRUE(refused_while_draining);
  EXPECT_EQ(refused_kind, ConflictKind::kMigrating);
  EXPECT_GE(f.service->stats().migrating_refused, 1u);
  EXPECT_EQ(f.service->stats().migrations_completed, 1u);
  EXPECT_EQ(f.map->PartitionOf(0x1000), 1u);
}

TEST(DtmServiceMigration, StaleAndNonsenseMigrateRequestsIgnored) {
  MigrationFixture f;
  f.sys->SetCoreMain(1, [&](CoreEnv& env) {
    // Target == current owner: nothing to move.
    env.Send(0, MigrationFixture::MigrateReq(0x1000, 0x100, 0));
    // Target out of range: ignored rather than crashing the service.
    env.Send(0, MigrationFixture::MigrateReq(0x1000, 0x100, 9));
    // The range must still be owned and servable afterwards.
    env.Send(0, ServiceHarness::ReadReq(0x1000, 5));
    ASSERT_EQ(env.Recv().type, MsgType::kLockGranted);
  });
  f.sys->Run(MillisToSim(1000));
  EXPECT_EQ(f.service->stats().migrations_started, 0u);
  EXPECT_EQ(f.map->PartitionOf(0x1000), 0u);
}

TEST(DtmService, OverloadRefusesNonCommittingAcquiresAboveHighWater) {
  TmConfig tm;
  tm.overload_high_water = 2;
  ServiceHarness h(tm);
  uint64_t overload_refusals = 0;
  uint64_t grants = 0;
  bool committing_granted = false;
  h.RunClient([&](CoreEnv& env) {
    // Flood the service: six scalar read acquires queued back-to-back. The
    // service sees the first with five still queued behind it (> high
    // water), so leading requests are shed with kOverload; as the backlog
    // drains below the mark, grants resume.
    for (uint64_t i = 0; i < 6; ++i) {
      env.Send(0, ServiceHarness::ReadReq(0x100 + i * 64, 5));
    }
    // A commit-phase write acquire is exempt: shedding a committer that
    // already holds its read set would only prolong the backlog.
    Message commit_write = ServiceHarness::WriteReq(0x900, 5);
    commit_write.w3 = 1;
    env.Send(0, std::move(commit_write));
    for (uint64_t i = 0; i < 7; ++i) {
      const Message m = env.Recv();
      if (m.type == MsgType::kLockGranted) {
        ++grants;
        committing_granted = committing_granted || m.w0 == 0x900;
      } else if (m.type == MsgType::kLockConflict &&
                 static_cast<ConflictKind>(m.w2) == ConflictKind::kOverload) {
        ++overload_refusals;
      }
    }
  });
  EXPECT_GT(overload_refusals, 0u);
  EXPECT_GT(grants, 0u);
  EXPECT_TRUE(committing_granted);
  EXPECT_EQ(h.service().stats().overload_refused, overload_refusals);
}

TEST(DtmService, ReleaseAllDrainsLocks) {
  ServiceHarness h;
  h.RunClient([](CoreEnv& env) {
    env.Send(0, ServiceHarness::ReadReq(0x800, 5));
    (void)env.Recv();
    env.Send(0, ServiceHarness::ReadReq(0x808, 5));
    (void)env.Recv();
    Message wb;
    wb.type = MsgType::kBatchAcquire;
    wb.w1 = 5;
    wb.w3 = PrefixBitmap(1);
    wb.extra = {0x810};
    env.Send(0, std::move(wb));
    (void)env.Recv();

    Message rel_reads;
    rel_reads.type = MsgType::kReleaseAllReads;
    rel_reads.w1 = 5;
    rel_reads.extra = {0x800, 0x808};
    env.Send(0, std::move(rel_reads));
    Message rel_writes;
    rel_writes.type = MsgType::kReleaseAllWrites;
    rel_writes.w1 = 5;
    rel_writes.extra = {0x810};
    env.Send(0, std::move(rel_writes));
  });
  EXPECT_EQ(h.service().lock_table().NumEntries(), 0u);
  EXPECT_EQ(h.service().stats().releases, 2u);
}

TEST(DtmService, EarlyReadReleaseDropsSingleLock) {
  ServiceHarness h;
  h.RunClient([](CoreEnv& env) {
    env.Send(0, ServiceHarness::ReadReq(0x900, 5));
    (void)env.Recv();
    env.Send(0, ServiceHarness::ReadReq(0x908, 5));
    (void)env.Recv();
    Message rel;
    rel.type = MsgType::kEarlyReadRelease;
    rel.w0 = 0x900;
    rel.w1 = 5;
    env.Send(0, std::move(rel));
  });
  EXPECT_FALSE(h.service().lock_table().HasReader(0x900, 1));
  EXPECT_TRUE(h.service().lock_table().HasReader(0x908, 1));
}

}  // namespace
}  // namespace tm2c

// Parameterized property sweep: the safety invariants must hold for every
// combination of contention manager, transaction mode, write-acquisition
// policy, batching, deployment strategy and platform. Each configuration
// runs a mixed adversarial workload (transfers + scans + a shared set) and
// checks:
//   1. conservation    — transfers never create or destroy money,
//   2. snapshot safety — scans only ever observe constant pair sums,
//   3. exactness       — per-core operation counts all took effect,
//   4. quiescence      — every lock table drains once the work completes.
//
// Scope notes. Offset-Greedy is excluded: it is livelock-prone by the
// paper's own analysis (Section 4.3) and this adversarial mix reliably
// triggers it. The multitasked deployment runs without the full-array
// scans: long read-lock footprints combined with zero-pause retries tip
// cooperative multitasking into the congestion-collapse regime documented
// in EXPERIMENTS.md (one of the reasons the paper adopted dedicated
// service cores); the dedicated rows keep the scans.
#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

#include "src/apps/linked_list.h"
#include "src/tm/tm_system.h"

namespace tm2c {
namespace {

struct SweepParam {
  CmKind cm;
  TxMode mode;
  WriteAcquire acquire;
  uint32_t max_batch;  // 1 = unbatched protocol, >1 = kBatchAcquire chunks
  DeployStrategy strategy;
  const char* platform;
  // Simulation + workload seed. The default matrix runs one seed (tier-1
  // speed); the LongSeedMatrix instantiation sweeps several and only runs
  // when TM2C_LONG_TESTS is set (nightly breadth).
  uint64_t seed = 1234;
  bool long_run = false;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string name = CmKindName(p.cm);
  name += p.mode == TxMode::kNormal ? "_normal"
          : p.mode == TxMode::kElasticEarly ? "_early" : "_eread";
  name += p.acquire == WriteAcquire::kLazy ? "_lazy" : "_eager";
  name += p.max_batch > 1 ? "_b" + std::to_string(p.max_batch) : "_nobatch";
  name += p.strategy == DeployStrategy::kDedicated ? "_ded" : "_multi";
  name += "_";
  name += p.platform;
  name += "_s" + std::to_string(p.seed);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

class TmPropertySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TmPropertySweep, InvariantsHold) {
  const SweepParam& p = GetParam();
  if (p.long_run && std::getenv("TM2C_LONG_TESTS") == nullptr) {
    GTEST_SKIP() << "set TM2C_LONG_TESTS=1 (nightly) to run the seed-sweep breadth suite";
  }
  TmSystemConfig cfg;
  cfg.sim.platform = PlatformByName(p.platform);
  cfg.sim.num_cores = 8;
  cfg.sim.num_service = p.strategy == DeployStrategy::kMultitasked ? 0 : 4;
  cfg.sim.strategy = p.strategy;
  cfg.sim.shmem_bytes = 2 << 20;
  cfg.sim.seed = p.seed;
  cfg.tm.cm = p.cm;
  cfg.tm.tx_mode = p.mode;
  cfg.tm.write_acquire = p.acquire;
  cfg.tm.max_batch = p.max_batch;
  TmSystem sys(std::move(cfg));

  constexpr uint32_t kAccounts = 24;
  constexpr uint64_t kInitial = 100;
  const uint64_t base = sys.allocator().AllocGlobal(kAccounts * 8);
  for (uint32_t a = 0; a < kAccounts; ++a) {
    sys.shmem().StoreWord(base + a * 8, kInitial);
  }
  ShmSortedList list(sys.allocator(), sys.shmem());
  for (uint64_t key = 2; key <= 32; key += 2) {
    list.HostAdd(sys.allocator(), key);
  }

  const uint32_t n = sys.num_app_cores();
  std::vector<bool> snapshot_ok(n, true);
  std::vector<int64_t> list_net(n, 0);
  std::vector<bool> done(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv& env, TxRuntime& rt) {
      Rng rng(31 * (i + 1) + p.seed);
      for (int k = 0; k < 40; ++k) {
        const uint64_t kind = rng.NextBelow(3);
        if (kind == 0) {
          // Transfer between two accounts.
          const uint64_t from = base + rng.NextBelow(kAccounts) * 8;
          uint64_t to = base + rng.NextBelow(kAccounts) * 8;
          if (to == from) {
            to = base + ((to - base) / 8 + 1) % kAccounts * 8;
          }
          rt.Execute([from, to](Tx& tx) {
            tx.Write(from, tx.Read(from) - 1);
            tx.Write(to, tx.Read(to) + 1);
          });
        } else if (kind == 1 && p.strategy == DeployStrategy::kDedicated) {
          // Scan: under normal transactions the total must be invariant
          // inside one transaction. Elastic modes deliberately relax the
          // read prefix's atomicity (they are meant for search structures),
          // so a torn scan there is expected, not a bug.
          uint64_t total = 0;
          rt.Execute([&](Tx& tx) {
            total = 0;
            for (uint32_t a = 0; a < kAccounts; ++a) {
              total += tx.Read(base + a * 8);
            }
          });
          if (p.mode == TxMode::kNormal && total != kAccounts * kInitial) {
            snapshot_ok[i] = false;
          }
        } else {
          // Shared set churn. Multitasked rows use a short key range
          // (short traversals): long read-lock chains tip cooperative
          // multitasking into its congestion-collapse regime (see the
          // scope notes above).
          const uint64_t key =
              1 + rng.NextBelow(p.strategy == DeployStrategy::kDedicated ? 48 : 12);
          if (rng.NextPercent(50)) {
            if (list.Add(rt, env.allocator(), key)) {
              ++list_net[i];
            }
          } else {
            if (list.Remove(rt, key)) {
              --list_net[i];
            }
          }
        }
      }
      done[i] = true;
    });
  }
  sys.Run(MillisToSim(4000));

  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(done[i]) << "core " << i << " did not finish (livelock?)";
    EXPECT_TRUE(snapshot_ok[i]) << "core " << i << " observed a torn scan";
  }
  uint64_t total = 0;
  for (uint32_t a = 0; a < kAccounts; ++a) {
    total += sys.shmem().LoadWord(base + a * 8);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kAccounts) * kInitial);
  int64_t expected_size = 16;
  for (int64_t d : list_net) {
    expected_size += d;
  }
  EXPECT_EQ(static_cast<int64_t>(list.HostSize()), expected_size);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

// Starvation-free CMs across every mode/acquisition/batching/deployment
// combination, on two platforms. (kNone/kBackoffRetry/kOffsetGreedy are
// excluded: they may legitimately livelock this adversarial mix.)
INSTANTIATE_TEST_SUITE_P(
    ConfigMatrix, TmPropertySweep,
    ::testing::ValuesIn([] {
      std::vector<SweepParam> params;
      for (CmKind cm : {CmKind::kWholly, CmKind::kFairCm}) {
        for (TxMode mode : {TxMode::kNormal, TxMode::kElasticEarly, TxMode::kElasticRead}) {
          for (WriteAcquire acq : {WriteAcquire::kLazy, WriteAcquire::kEager}) {
            for (uint32_t max_batch : {uint32_t{8}, uint32_t{1}}) {
              for (DeployStrategy strategy :
                   {DeployStrategy::kDedicated, DeployStrategy::kMultitasked}) {
                params.push_back(
                    SweepParam{cm, mode, acq, max_batch, strategy, "scc"});
              }
            }
          }
        }
      }
      // Platform variation on the default configuration.
      params.push_back(SweepParam{CmKind::kFairCm, TxMode::kNormal, WriteAcquire::kLazy, 8,
                                  DeployStrategy::kDedicated, "scc800"});
      params.push_back(SweepParam{CmKind::kFairCm, TxMode::kNormal, WriteAcquire::kLazy, 8,
                                  DeployStrategy::kDedicated, "opteron"});
      return params;
    }()),
    ParamName);

// Nightly breadth: the same invariants over five more seeds, on a reduced
// but representative matrix (both starvation-free CMs, every tx mode, both
// batch settings, dedicated deployment, plus one opteron row per seed).
// Each case GTEST_SKIPs unless TM2C_LONG_TESTS is set; the `long`-labelled
// ctest entry registered under -DTM2C_ENABLE_LONG_TESTS=ON sets it.
INSTANTIATE_TEST_SUITE_P(
    LongSeedMatrix, TmPropertySweep,
    ::testing::ValuesIn([] {
      std::vector<SweepParam> params;
      for (uint64_t seed : {7u, 1001u, 4242u, 90210u, 31337u}) {
        for (CmKind cm : {CmKind::kWholly, CmKind::kFairCm}) {
          for (TxMode mode : {TxMode::kNormal, TxMode::kElasticEarly, TxMode::kElasticRead}) {
            for (uint32_t max_batch : {uint32_t{8}, uint32_t{1}}) {
              params.push_back(SweepParam{cm, mode, WriteAcquire::kLazy, max_batch,
                                          DeployStrategy::kDedicated, "scc", seed, true});
            }
          }
        }
        params.push_back(SweepParam{CmKind::kFairCm, TxMode::kNormal, WriteAcquire::kLazy, 8,
                                    DeployStrategy::kDedicated, "opteron", seed, true});
      }
      return params;
    }()),
    ParamName);

}  // namespace
}  // namespace tm2c

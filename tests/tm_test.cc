// End-to-end protocol tests of TM2C on the simulated many-core.
#include <gtest/gtest.h>

#include <numeric>

#include "src/tm/tm_system.h"

namespace tm2c {
namespace {

// Generous safety horizon: tests assert completion, so a livelocked
// configuration fails visibly instead of hanging the suite.
constexpr SimTime kTestHorizon = MillisToSim(2000);

TmSystemConfig BaseConfig(uint32_t cores = 8, uint32_t service = 4,
                          CmKind cm = CmKind::kFairCm) {
  TmSystemConfig cfg;
  cfg.sim.platform = MakeSccPlatform(0);
  cfg.sim.num_cores = cores;
  cfg.sim.num_service = service;
  cfg.sim.shmem_bytes = 1 << 20;
  cfg.sim.seed = 42;
  cfg.tm.cm = cm;
  return cfg;
}

TEST(TmBasic, SingleTransactionReadsAndWrites) {
  TmSystem sys(BaseConfig());
  sys.SetAppBody(0, [](CoreEnv& env, TxRuntime& rt) {
    rt.Execute([](Tx& tx) {
      tx.Write(0x100, 7);
      tx.Write(0x108, 35);
    });
    rt.Execute([&env](Tx& tx) {
      const uint64_t sum = tx.Read(0x100) + tx.Read(0x108);
      tx.Write(0x110, sum);
    });
  });
  sys.Run(kTestHorizon);
  EXPECT_EQ(sys.shmem().LoadWord(0x110), 42u);
  EXPECT_EQ(sys.MergedStats().commits, 2u);
  EXPECT_EQ(sys.MergedStats().aborts, 0u);
}

TEST(TmBasic, ReadYourOwnWrites) {
  TmSystem sys(BaseConfig());
  uint64_t observed = 0;
  sys.SetAppBody(0, [&observed](CoreEnv&, TxRuntime& rt) {
    rt.Execute([&observed](Tx& tx) {
      tx.Write(0x200, 5);
      observed = tx.Read(0x200);  // must see the buffered write
      tx.Write(0x200, observed + 1);
      observed = tx.Read(0x200);
    });
  });
  sys.Run(kTestHorizon);
  EXPECT_EQ(observed, 6u);
  EXPECT_EQ(sys.shmem().LoadWord(0x200), 6u);
}

TEST(TmBasic, DeferredWritesInvisibleBeforeCommit) {
  // Core A writes then spins inside the transaction; core B (non-
  // transactionally, weak atomicity) must not see the value until commit.
  TmSystem sys(BaseConfig());
  uint64_t seen_mid_tx = 1;
  sys.SetAppBody(0, [](CoreEnv& env, TxRuntime& rt) {
    rt.Execute([&env](Tx& tx) {
      tx.Write(0x300, 77);
      env.Compute(500000);  // hold the transaction open ~1ms
    });
  });
  sys.SetAppBody(1, [&seen_mid_tx](CoreEnv& env, TxRuntime& /*rt*/) {
    env.Compute(100000);  // inside core A's window
    seen_mid_tx = env.ShmemRead(0x300);
  });
  sys.Run(kTestHorizon);
  EXPECT_EQ(seen_mid_tx, 0u);
  EXPECT_EQ(sys.shmem().LoadWord(0x300), 77u);
}

// The canonical atomicity check: concurrent increments never lose updates.
// kNone is excluded: it livelocks on symmetric contention by design (see
// NoCmLivelocksUnderSymmetricContention below).
TEST(TmConcurrency, ConcurrentIncrementsAllApplied) {
  for (CmKind cm : {CmKind::kBackoffRetry, CmKind::kOffsetGreedy,
                    CmKind::kWholly, CmKind::kFairCm}) {
    TmSystem sys(BaseConfig(8, 4, cm));
    constexpr uint64_t kCounter = 0x400;
    constexpr int kIncsPerCore = 25;
    for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
      sys.SetAppBody(i, [](CoreEnv&, TxRuntime& rt) {
        for (int k = 0; k < kIncsPerCore; ++k) {
          rt.Execute([](Tx& tx) { tx.Write(kCounter, tx.Read(kCounter) + 1); });
        }
      });
    }
    sys.Run(kTestHorizon);
    EXPECT_EQ(sys.shmem().LoadWord(kCounter),
              static_cast<uint64_t>(sys.num_app_cores()) * kIncsPerCore)
        << "lost updates under CM " << CmKindName(cm);
    EXPECT_EQ(sys.MergedStats().commits,
              static_cast<uint64_t>(sys.num_app_cores()) * kIncsPerCore);
  }
}

// Without any contention management, symmetric conflicts (every core reads
// then writes the same counter) abort each other forever — the livelock the
// paper's Figure 5(a) shows and the reason TM2C ships contention managers.
// Atomicity still holds: the counter equals the number of commits.
TEST(TmConcurrency, NoCmLivelocksUnderSymmetricContention) {
  TmSystem sys(BaseConfig(8, 4, CmKind::kNone));
  constexpr uint64_t kCounter = 0x400;
  std::vector<uint64_t> committed(sys.num_app_cores(), 0);
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [i, &committed](CoreEnv&, TxRuntime& rt) {
      for (int k = 0; k < 10; ++k) {
        if (rt.TryExecute([](Tx& tx) { tx.Write(kCounter, tx.Read(kCounter) + 1); },
                          /*max_attempts=*/50)) {
          ++committed[i];
        }
      }
    });
  }
  sys.Run(kTestHorizon);
  const uint64_t total_commits =
      std::accumulate(committed.begin(), committed.end(), uint64_t{0});
  EXPECT_EQ(sys.shmem().LoadWord(kCounter), total_commits);
  // The livelock manifests as a large abort count relative to commits.
  const TxStats stats = sys.MergedStats();
  EXPECT_GT(stats.aborts, stats.commits);
}

// Bank-style invariant: transfers conserve the total. This exercises
// multi-location transactions, WAR/WAW conflicts and revocations.
void RunBankInvariantTest(TmSystemConfig cfg, int transfers_per_core) {
  constexpr uint32_t kAccounts = 64;
  constexpr uint64_t kInitial = 1000;
  TmSystem sys(std::move(cfg));
  auto addr = [](uint32_t account) { return 0x1000 + account * 8; };
  for (uint32_t a = 0; a < kAccounts; ++a) {
    sys.shmem().StoreWord(addr(a), kInitial);
  }
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [i, transfers_per_core, &addr](CoreEnv& /*env*/, TxRuntime& rt) {
      Rng rng(1000 + i);
      for (int k = 0; k < transfers_per_core; ++k) {
        const uint32_t from = static_cast<uint32_t>(rng.NextBelow(kAccounts));
        uint32_t to = static_cast<uint32_t>(rng.NextBelow(kAccounts));
        if (to == from) {
          to = (to + 1) % kAccounts;
        }
        rt.Execute([&](Tx& tx) {
          const uint64_t fv = tx.Read(addr(from));
          const uint64_t tv = tx.Read(addr(to));
          tx.Write(addr(from), fv - 1);
          tx.Write(addr(to), tv + 1);
        });
      }
      // One balance scan (long read-only transaction) at the end.
      uint64_t total = 0;
      rt.Execute([&](Tx& tx) {
        total = 0;
        for (uint32_t a = 0; a < kAccounts; ++a) {
          total += tx.Read(addr(a));
        }
      });
      ASSERT_EQ(total, static_cast<uint64_t>(kAccounts) * kInitial);
    });
  }
  sys.Run(kTestHorizon);
  uint64_t total = 0;
  for (uint32_t a = 0; a < kAccounts; ++a) {
    total += sys.shmem().LoadWord(addr(a));
  }
  EXPECT_EQ(total, static_cast<uint64_t>(kAccounts) * kInitial);
}

TEST(TmConcurrency, BankInvariantFairCm) { RunBankInvariantTest(BaseConfig(8, 4, CmKind::kFairCm), 40); }
TEST(TmConcurrency, BankInvariantWholly) { RunBankInvariantTest(BaseConfig(8, 4, CmKind::kWholly), 40); }
TEST(TmConcurrency, BankInvariantOffsetGreedy) {
  RunBankInvariantTest(BaseConfig(8, 4, CmKind::kOffsetGreedy), 40);
}
TEST(TmConcurrency, BankInvariantBackoff) {
  RunBankInvariantTest(BaseConfig(8, 4, CmKind::kBackoffRetry), 40);
}

TEST(TmConcurrency, BankInvariantEagerAcquisition) {
  TmSystemConfig cfg = BaseConfig(8, 4, CmKind::kFairCm);
  cfg.tm.write_acquire = WriteAcquire::kEager;
  RunBankInvariantTest(std::move(cfg), 30);
}

TEST(TmConcurrency, BankInvariantUnbatched) {
  TmSystemConfig cfg = BaseConfig(8, 4, CmKind::kFairCm);
  cfg.tm.max_batch = 1;  // scalar lock requests only
  RunBankInvariantTest(std::move(cfg), 30);
}

TEST(TmConcurrency, BankInvariantBatched) {
  TmSystemConfig cfg = BaseConfig(8, 4, CmKind::kFairCm);
  cfg.tm.max_batch = 8;  // commit write-sets travel as kBatchAcquire
  RunBankInvariantTest(std::move(cfg), 30);
}

TEST(TmConcurrency, BankInvariantMultitasked) {
  TmSystemConfig cfg = BaseConfig(6, 0, CmKind::kFairCm);
  cfg.sim.strategy = DeployStrategy::kMultitasked;
  RunBankInvariantTest(std::move(cfg), 25);
}

TEST(TmConcurrency, BankInvariantSingleServiceCore) {
  RunBankInvariantTest(BaseConfig(5, 1, CmKind::kFairCm), 30);
}

TEST(TmConflicts, VisibleReadsDetectWarEagerly) {
  // The defining property of TM2C's visible reads: a writer conflicts with
  // concurrent readers at write-lock time (WAR), not at the readers' commit
  // validation. With scanners continuously read-locking a region, writers
  // must record WAR conflicts (either refused or by revoking the readers).
  TmSystem sys(BaseConfig(4, 2, CmKind::kFairCm));
  constexpr uint64_t kBase = 0x2000;
  for (uint32_t a = 0; a < 16; ++a) {
    sys.shmem().StoreWord(kBase + a * 8, 1);
  }
  sys.SetAppBody(0, [](CoreEnv&, TxRuntime& rt) {
    for (int k = 0; k < 40; ++k) {
      rt.Execute([](Tx& tx) {
        for (uint32_t a = 0; a < 16; ++a) {
          (void)tx.Read(kBase + a * 8);
        }
      });
    }
  });
  sys.SetAppBody(1, [](CoreEnv&, TxRuntime& rt) {
    Rng rng(5);
    for (int k = 0; k < 40; ++k) {
      const uint64_t a = rng.NextBelow(16);
      rt.Execute([a](Tx& tx) { tx.Write(kBase + a * 8, tx.Read(kBase + a * 8) + 1); });
    }
  });
  sys.Run(kTestHorizon);
  const TxStats stats = sys.MergedStats();
  // WAR shows up either as refusals on the writer side or as notify-aborts
  // on the revoked reader side.
  EXPECT_GT(stats.war_conflicts + stats.notify_aborts, 0u);
}

TEST(TmConflicts, ScanSeesConsistentSnapshot) {
  // Writers keep two cells summing to a constant; scanners must never
  // observe a half-updated pair (opacity of visible reads + 2PL commit).
  TmSystem sys(BaseConfig(6, 3, CmKind::kFairCm));
  constexpr uint64_t kA = 0x3000;
  constexpr uint64_t kB = 0x3008;
  sys.shmem().StoreWord(kA, 100);
  sys.shmem().StoreWord(kB, 100);
  bool violation = false;
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    if (i % 2 == 0) {
      sys.SetAppBody(i, [i](CoreEnv&, TxRuntime& rt) {
        Rng rng(7 * (i + 1));
        for (int k = 0; k < 30; ++k) {
          const uint64_t delta = rng.NextBelow(10);
          rt.Execute([delta](Tx& tx) {
            const uint64_t a = tx.Read(kA);
            const uint64_t b = tx.Read(kB);
            tx.Write(kA, a - delta);
            tx.Write(kB, b + delta);
          });
        }
      });
    } else {
      sys.SetAppBody(i, [&violation](CoreEnv&, TxRuntime& rt) {
        for (int k = 0; k < 30; ++k) {
          uint64_t a = 0;
          uint64_t b = 0;
          rt.Execute([&a, &b](Tx& tx) {
            a = tx.Read(kA);
            b = tx.Read(kB);
          });
          if (a + b != 200) {
            violation = true;
          }
        }
      });
    }
  }
  sys.Run(kTestHorizon);
  EXPECT_FALSE(violation);
  EXPECT_EQ(sys.shmem().LoadWord(kA) + sys.shmem().LoadWord(kB), 200u);
}

TEST(TmElastic, ElasticReadTraversalCorrect) {
  // A linked-list-style chain traversed with elastic-read while another
  // core mutates values transactionally: the traversal must abort/retry on
  // changes within the validation window but still terminate and the chain
  // stays intact.
  TmSystemConfig cfg = BaseConfig(4, 2, CmKind::kFairCm);
  cfg.tm.tx_mode = TxMode::kElasticRead;
  TmSystem sys(std::move(cfg));
  // Chain of 32 nodes: node i at 0x4000+i*16, [value, next_index].
  auto node_addr = [](uint64_t i) { return 0x4000 + i * 16; };
  for (uint64_t i = 0; i < 32; ++i) {
    sys.shmem().StoreWord(node_addr(i), i * 10);
    sys.shmem().StoreWord(node_addr(i) + 8, i + 1 < 32 ? i + 1 : UINT64_MAX);
  }
  uint64_t traversals = 0;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    for (int k = 0; k < 20; ++k) {
      uint64_t count = 0;
      rt.Execute([&](Tx& tx) {
        count = 0;
        uint64_t idx = 0;
        while (idx != UINT64_MAX) {
          (void)tx.Read(node_addr(idx));
          idx = tx.Read(node_addr(idx) + 8);
          ++count;
        }
      });
      ASSERT_EQ(count, 32u);
      ++traversals;
    }
  });
  sys.SetAppBody(1, [&](CoreEnv&, TxRuntime& rt) {
    Rng rng(3);
    for (int k = 0; k < 40; ++k) {
      const uint64_t i = rng.NextBelow(32);
      rt.Execute([&](Tx& tx) {
        tx.Write(node_addr(i), tx.Read(node_addr(i)) + 1);
      });
    }
  });
  sys.Run(kTestHorizon);
  EXPECT_EQ(traversals, 20u);
}

TEST(TmElastic, ElasticEarlyReleasesLocks) {
  TmSystemConfig cfg = BaseConfig(4, 2, CmKind::kFairCm);
  cfg.tm.tx_mode = TxMode::kElasticEarly;
  cfg.tm.elastic_window = 2;
  TmSystem sys(std::move(cfg));
  for (uint64_t i = 0; i < 16; ++i) {
    sys.shmem().StoreWord(0x5000 + i * 8, i);
  }
  sys.SetAppBody(0, [](CoreEnv&, TxRuntime& rt) {
    rt.Execute([](Tx& tx) {
      for (uint64_t i = 0; i < 16; ++i) {
        (void)tx.Read(0x5000 + i * 8);
      }
    });
  });
  sys.Run(kTestHorizon);
  const TxStats stats = sys.MergedStats();
  // 16 reads, window of 2: at least a dozen early releases.
  EXPECT_GE(stats.early_releases, 12u);
  EXPECT_EQ(stats.commits, 1u);
}

TEST(TmMigration, LiveHandoffKeepsCountersExact) {
  // Counters live in an owned range pinned to partition 0; halfway through
  // its workload, app core 0 requests a live handoff to partition 1 while
  // every core keeps incrementing. No increment may be lost across the
  // drain, the flip, or the post-flip re-routing.
  TmSystem sys(BaseConfig(8, 4, CmKind::kFairCm));
  constexpr uint64_t kBase = 0x10000;
  constexpr uint64_t kBytes = 0x200;
  constexpr uint64_t kWords = 8;
  constexpr int kIncsPerCore = 25;
  sys.address_map().AddOwnedRange(kBase, kBytes, 0);
  for (uint64_t a = 0; a < kWords; ++a) {
    sys.shmem().StoreWord(kBase + a * 8, 0);
  }
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [i](CoreEnv&, TxRuntime& rt) {
      Rng rng(100 + i);
      for (int k = 0; k < kIncsPerCore; ++k) {
        if (i == 0 && k == kIncsPerCore / 2) {
          rt.RequestMigration(kBase, kBytes, 1);
        }
        const uint64_t addr = kBase + rng.NextBelow(kWords) * 8;
        rt.Execute([addr](Tx& tx) { tx.Write(addr, tx.Read(addr) + 1); });
      }
    });
  }
  sys.Run(kTestHorizon);
  uint64_t total = 0;
  for (uint64_t a = 0; a < kWords; ++a) {
    total += sys.shmem().LoadWord(kBase + a * 8);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(sys.num_app_cores()) * kIncsPerCore);
  EXPECT_EQ(sys.MergedStats().commits,
            static_cast<uint64_t>(sys.num_app_cores()) * kIncsPerCore);
  EXPECT_EQ(sys.address_map().PartitionOf(kBase), 1u);
  EXPECT_EQ(sys.ServiceAt(0).stats().migrations_started, 1u);
  EXPECT_EQ(sys.ServiceAt(0).stats().migrations_completed, 1u);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

TEST(TmMigration, PolicyMovesHotRangeAndLeavesColdOneAlone) {
  // The policy loop: with migrate_check_every/hot_threshold armed, the
  // service partition that owns the hammered range must migrate it off on
  // its own, while the idle range it also owns stays put.
  TmSystemConfig cfg = BaseConfig(8, 4, CmKind::kFairCm);
  cfg.tm.migrate_check_every = 64;
  cfg.tm.migrate_hot_threshold = 32;
  TmSystem sys(std::move(cfg));
  constexpr uint64_t kHot = 0x20000;
  constexpr uint64_t kCold = 0x30000;
  sys.address_map().AddOwnedRange(kHot, 0x100, 0);
  sys.address_map().AddOwnedRange(kCold, 0x100, 0);
  constexpr int kIncsPerCore = 25;
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [i](CoreEnv&, TxRuntime& rt) {
      Rng rng(200 + i);
      for (int k = 0; k < kIncsPerCore; ++k) {
        const uint64_t addr = kHot + rng.NextBelow(8) * 8;
        rt.Execute([addr](Tx& tx) { tx.Write(addr, tx.Read(addr) + 1); });
      }
    });
  }
  sys.Run(kTestHorizon);
  uint64_t total = 0;
  for (uint64_t a = 0; a < 8; ++a) {
    total += sys.shmem().LoadWord(kHot + a * 8);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(sys.num_app_cores()) * kIncsPerCore);
  uint64_t started = 0;
  uint64_t completed = 0;
  for (uint32_t p = 0; p < 4; ++p) {
    started += sys.ServiceAt(p).stats().migrations_started;
    completed += sys.ServiceAt(p).stats().migrations_completed;
  }
  // The hot range moved at least once, and successive owners keep passing
  // it along (each sees the same heat): every completed hop goes to the
  // next partition, so the final owner is the hop count mod the partition
  // count. The cold range never moved.
  EXPECT_GE(started, 1u);
  EXPECT_GE(completed, 1u);
  EXPECT_EQ(sys.address_map().version(), completed);
  EXPECT_EQ(sys.address_map().PartitionOf(kHot), completed % 4);
  EXPECT_EQ(sys.address_map().PartitionOf(kCold), 0u);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

TEST(TmFastPath, StaleRefusalAccountingParityWithWirePath) {
  // The owner-local fast path (AcquireSpanDirect) must account a request
  // from an already-revoked attempt exactly like the wire path does:
  // counted as stale_requests_refused, refused with the original conflict
  // kind. Same multitasked hot-counter workload, fast path off then on:
  // both runs complete exactly, and both account stale refusals from the
  // revocations the contention necessarily produces.
  for (const bool fast_path : {false, true}) {
    TmSystemConfig cfg = BaseConfig(6, 0, CmKind::kFairCm);
    cfg.sim.strategy = DeployStrategy::kMultitasked;
    cfg.tm.local_fast_path = fast_path;
    TmSystem sys(std::move(cfg));
    constexpr uint64_t kBase = 0x40000;
    constexpr uint64_t kWords = 4;
    constexpr int kIncsPerCore = 30;
    sys.address_map().AddOwnedRange(kBase, kWords * 8, 0);
    for (uint64_t a = 0; a < kWords; ++a) {
      sys.shmem().StoreWord(kBase + a * 8, 0);
    }
    for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
      sys.SetAppBody(i, [i](CoreEnv&, TxRuntime& rt) {
        Rng rng(300 + i);
        for (int k = 0; k < kIncsPerCore; ++k) {
          const uint64_t addr = kBase + rng.NextBelow(kWords) * 8;
          rt.Execute([addr](Tx& tx) { tx.Write(addr, tx.Read(addr) + 1); });
        }
      });
    }
    sys.Run(kTestHorizon);
    uint64_t total = 0;
    for (uint64_t a = 0; a < kWords; ++a) {
      total += sys.shmem().LoadWord(kBase + a * 8);
    }
    EXPECT_EQ(total, static_cast<uint64_t>(sys.num_app_cores()) * kIncsPerCore)
        << "fast_path=" << fast_path;
    uint64_t stale = 0;
    uint64_t direct = 0;
    for (uint32_t p = 0; p < sys.deployment().num_service(); ++p) {
      stale += sys.ServiceAt(p).stats().stale_requests_refused;
      direct += sys.ServiceAt(p).stats().local_direct_requests;
    }
    EXPECT_GT(stale, 0u) << "fast_path=" << fast_path;
    if (fast_path) {
      EXPECT_GT(direct, 0u);
    } else {
      EXPECT_EQ(direct, 0u);
    }
  }
}

TEST(TmProgress, FairCmStarvationFree) {
  // Adversarial workload: one long scanner vs 5 writers hammering the same
  // region. Under FairCM every transaction must commit within a bounded
  // number of attempts.
  TmSystem sys(BaseConfig(8, 2, CmKind::kFairCm));
  for (uint32_t a = 0; a < 32; ++a) {
    sys.shmem().StoreWord(0x6000 + a * 8, 0);
  }
  bool scanner_ok = false;
  sys.SetAppBody(0, [&scanner_ok](CoreEnv&, TxRuntime& rt) {
    for (int k = 0; k < 10; ++k) {
      const bool committed = rt.TryExecute(
          [](Tx& tx) {
            for (uint32_t a = 0; a < 32; ++a) {
              (void)tx.Read(0x6000 + a * 8);
            }
          },
          /*max_attempts=*/200);
      ASSERT_TRUE(committed) << "scanner starved at iteration " << k;
    }
    scanner_ok = true;
  });
  for (uint32_t i = 1; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [i](CoreEnv&, TxRuntime& rt) {
      Rng rng(i);
      for (int k = 0; k < 150; ++k) {
        const uint64_t a = rng.NextBelow(32);
        rt.Execute([a](Tx& tx) { tx.Write(0x6000 + a * 8, tx.Read(0x6000 + a * 8) + 1); });
      }
    });
  }
  sys.Run(kTestHorizon);
  EXPECT_TRUE(scanner_ok);
}

TEST(TmProgress, WhollyStarvationFree) {
  TmSystem sys(BaseConfig(8, 2, CmKind::kWholly));
  for (uint32_t a = 0; a < 32; ++a) {
    sys.shmem().StoreWord(0x6000 + a * 8, 0);
  }
  bool scanner_ok = false;
  sys.SetAppBody(0, [&scanner_ok](CoreEnv&, TxRuntime& rt) {
    for (int k = 0; k < 5; ++k) {
      const bool committed = rt.TryExecute(
          [](Tx& tx) {
            for (uint32_t a = 0; a < 32; ++a) {
              (void)tx.Read(0x6000 + a * 8);
            }
          },
          /*max_attempts=*/500);
      ASSERT_TRUE(committed) << "scanner starved at iteration " << k;
    }
    scanner_ok = true;
  });
  for (uint32_t i = 1; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [i](CoreEnv&, TxRuntime& rt) {
      Rng rng(i);
      for (int k = 0; k < 120; ++k) {
        const uint64_t a = rng.NextBelow(32);
        rt.Execute([a](Tx& tx) { tx.Write(0x6000 + a * 8, tx.Read(0x6000 + a * 8) + 1); });
      }
    });
  }
  sys.Run(kTestHorizon);
  EXPECT_TRUE(scanner_ok);
}

TEST(TmStats, AbortsAndConflictsAreCounted) {
  TmSystem sys(BaseConfig(8, 4, CmKind::kBackoffRetry));
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [](CoreEnv&, TxRuntime& rt) {
      for (int k = 0; k < 30; ++k) {
        rt.Execute([](Tx& tx) { tx.Write(0x7000, tx.Read(0x7000) + 1); });
      }
    });
  }
  sys.Run(kTestHorizon);
  const TxStats stats = sys.MergedStats();
  EXPECT_EQ(stats.commits, static_cast<uint64_t>(sys.num_app_cores()) * 30);
  EXPECT_GT(stats.aborts, 0u);  // contention on one word must cause aborts
  EXPECT_GT(stats.raw_conflicts + stats.waw_conflicts + stats.war_conflicts +
                stats.notify_aborts,
            0u);
  EXPECT_GT(stats.messages_sent, 0u);
  EXPECT_LT(stats.CommitRate(), 1.0);
}

}  // namespace
}  // namespace tm2c

// Behavioural tests of the transaction runtime on top of TmSystem.
#include <gtest/gtest.h>

#include "src/tm/tm_system.h"

namespace tm2c {
namespace {

constexpr SimTime kHorizon = MillisToSim(2000);

TmSystemConfig Config(CmKind cm = CmKind::kFairCm) {
  TmSystemConfig cfg;
  cfg.sim.platform = MakeSccPlatform(0);
  cfg.sim.num_cores = 6;
  cfg.sim.num_service = 3;
  cfg.sim.shmem_bytes = 1 << 20;
  cfg.sim.seed = 17;
  cfg.tm.cm = cm;
  return cfg;
}

TEST(TxRuntime, ReadCachingSendsNoSecondMessage) {
  TmSystem sys(Config());
  uint64_t msgs_first = 0;
  uint64_t msgs_second = 0;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    rt.Execute([&](Tx& tx) {
      (void)tx.Read(0x100);
      msgs_first = rt.stats().messages_sent;
      (void)tx.Read(0x100);  // cached: same value, no message
      msgs_second = rt.stats().messages_sent;
    });
  });
  sys.Run(kHorizon);
  EXPECT_GT(msgs_first, 0u);
  EXPECT_EQ(msgs_second, msgs_first);
}

TEST(TxRuntime, WriteIsBufferedUntilCommit) {
  TmSystem sys(Config());
  uint64_t mid_tx_value = 1;
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime& rt) {
    rt.Execute([&](Tx& tx) {
      tx.Write(0x200, 9);
      mid_tx_value = env.shmem().LoadWord(0x200);  // host peek: not yet visible
    });
  });
  sys.Run(kHorizon);
  EXPECT_EQ(mid_tx_value, 0u);
  EXPECT_EQ(sys.shmem().LoadWord(0x200), 9u);
}

TEST(TxRuntime, EagerModeTakesWriteLockAtWriteTime) {
  TmSystemConfig cfg = Config();
  cfg.tm.write_acquire = WriteAcquire::kEager;
  TmSystem sys(std::move(cfg));
  bool locked_mid_tx = false;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    const uint64_t addr = 0x300;
    const uint32_t partition = sys.address_map().PartitionOf(addr);
    rt.Execute([&](Tx& tx) {
      tx.Write(addr, 1);
      // The simulator is single-threaded: it is safe to inspect the remote
      // lock table from inside the transaction body.
      locked_mid_tx = sys.ServiceAt(partition).lock_table().HasWriter(addr, nullptr);
    });
  });
  sys.Run(kHorizon);
  EXPECT_TRUE(locked_mid_tx);
}

TEST(TxRuntime, LazyModeDelaysWriteLockToCommit) {
  TmSystem sys(Config());
  bool locked_mid_tx = true;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    const uint64_t addr = 0x300;
    const uint32_t partition = sys.address_map().PartitionOf(addr);
    rt.Execute([&](Tx& tx) {
      tx.Write(addr, 1);
      locked_mid_tx = sys.ServiceAt(partition).lock_table().HasWriter(addr, nullptr);
    });
  });
  sys.Run(kHorizon);
  EXPECT_FALSE(locked_mid_tx);
}

TEST(TxRuntime, LocksDrainAfterCompletion) {
  TmSystem sys(Config());
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [i](CoreEnv&, TxRuntime& rt) {
      Rng rng(i);
      for (int k = 0; k < 50; ++k) {
        const uint64_t a = 0x400 + rng.NextBelow(32) * 8;
        const uint64_t b = 0x400 + rng.NextBelow(32) * 8;
        rt.Execute([a, b](Tx& tx) {
          const uint64_t va = tx.Read(a);
          tx.Write(b, va + tx.Read(b));
        });
      }
    });
  }
  sys.Run(kHorizon);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

TEST(TxRuntime, FairCmEffectiveTimeCountsOnlyCommits) {
  TmSystem sys(Config(CmKind::kFairCm));
  SimTime eff_after_commit = 0;
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime& rt) {
    EXPECT_EQ(rt.effective_tx_time(), 0u);
    rt.Execute([&env](Tx& tx) {
      tx.Write(0x500, 1);
      env.Compute(100000);
    });
    eff_after_commit = rt.effective_tx_time();
    EXPECT_EQ(rt.commits_count(), 1u);
  });
  sys.Run(kHorizon);
  // At least the explicit compute time must be accounted.
  EXPECT_GE(eff_after_commit, MakeSccPlatform(0).CoreCyclesToPs(100000));
}

TEST(TxRuntime, TryExecuteGivesUpAfterMaxAttempts) {
  // A transaction that always hits a foreign writer under no-CM: core 1
  // parks an (eagerly acquired) write lock on the word for the whole test,
  // so core 0's reads keep being refused.
  TmSystemConfig cfg = Config(CmKind::kNone);
  cfg.tm.write_acquire = WriteAcquire::kEager;
  TmSystem sys(std::move(cfg));
  uint64_t attempts_used = 0;
  bool committed = true;
  sys.SetAppBody(1, [](CoreEnv& env, TxRuntime& rt) {
    rt.Execute([&env](Tx& tx) {
      tx.Write(0x600, 1);          // eager: write lock held from here on
      env.Compute(100000000);      // ~187 ms of simulated hold time
    });
  });
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime& rt) {
    env.Compute(1000000);  // let core 1 acquire its read lock first
    committed = rt.TryExecute([](Tx& tx) { (void)tx.Read(0x600); }, /*max_attempts=*/7);
    attempts_used = rt.stats().aborts;
  });
  sys.Run(kHorizon);
  EXPECT_FALSE(committed);
  EXPECT_EQ(attempts_used, 7u);
}

TEST(TxRuntime, ElasticEarlyKeepsOnlyWindowLocks) {
  TmSystemConfig cfg = Config();
  cfg.tm.tx_mode = TxMode::kElasticEarly;
  cfg.tm.elastic_window = 2;
  TmSystem sys(std::move(cfg));
  size_t held_after_ten_reads = 99;
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime& rt) {
    rt.Execute([&](Tx& tx) {
      for (uint64_t i = 0; i < 10; ++i) {
        (void)tx.Read(0x700 + i * 8);
      }
      size_t held = 0;
      for (uint64_t i = 0; i < 10; ++i) {
        const uint64_t addr = 0x700 + i * 8;
        if (sys.ServiceAt(sys.address_map().PartitionOf(addr))
                .lock_table()
                .HasReader(addr, env.core_id())) {
          ++held;
        }
      }
      held_after_ten_reads = held;
    });
  });
  sys.Run(kHorizon);
  // Early releases are fire-and-forget messages: a release may still be in
  // flight when we count, so allow window..window+2.
  EXPECT_GE(held_after_ten_reads, 2u);
  EXPECT_LE(held_after_ten_reads, 4u);
}

TEST(TxRuntime, ElasticReadTakesNoReadLocks) {
  TmSystemConfig cfg = Config();
  cfg.tm.tx_mode = TxMode::kElasticRead;
  TmSystem sys(std::move(cfg));
  size_t read_locks_seen = 99;
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime& rt) {
    rt.Execute([&](Tx& tx) {
      for (uint64_t i = 0; i < 8; ++i) {
        (void)tx.Read(0x800 + i * 8);
      }
      size_t held = 0;
      for (uint64_t i = 0; i < 8; ++i) {
        const uint64_t addr = 0x800 + i * 8;
        if (sys.ServiceAt(sys.address_map().PartitionOf(addr))
                .lock_table()
                .HasReader(addr, env.core_id())) {
          ++held;
        }
      }
      read_locks_seen = held;
    });
  });
  sys.Run(kHorizon);
  EXPECT_EQ(read_locks_seen, 0u);
}

TEST(TxRuntime, ElasticReadValidationFailureAborts) {
  TmSystemConfig cfg = Config();
  cfg.tm.tx_mode = TxMode::kElasticRead;
  cfg.tm.elastic_window = 2;
  TmSystem sys(std::move(cfg));
  sys.shmem().StoreWord(0x900, 5);
  uint64_t failures = 0;
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime& rt) {
    int attempt = 0;
    rt.Execute([&](Tx& tx) {
      ++attempt;
      (void)tx.Read(0x900);
      if (attempt == 1) {
        // A "concurrent" writer changes the word inside the window —
        // host-side poke stands in for a committed foreign transaction
        // (weak atomicity makes this legal).
        env.shmem().StoreWord(0x900, 6);
      }
      (void)tx.Read(0x908);  // validates 0x900: fails on attempt 1
    });
    failures = rt.stats().validation_failures;
  });
  sys.Run(kHorizon);
  EXPECT_EQ(failures, 1u);
}

TEST(TxRuntime, PrivatizationBarrierSynchronizesAppCores) {
  TmSystem sys(Config());
  const uint32_t n = sys.num_app_cores();
  std::vector<uint64_t> seen_sum(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv& env, TxRuntime& rt) {
      // Phase 1: every core transactionally publishes a value.
      rt.Execute([&, i](Tx& tx) { tx.Write(0xA00 + i * 8, i + 1); });
      env.Compute(1000 * (i + 1));  // desynchronize arrival
      rt.PrivatizationBarrier();
      // Phase 2: data is private; read it without transactions.
      uint64_t sum = 0;
      for (uint32_t j = 0; j < n; ++j) {
        sum += env.ShmemRead(0xA00 + j * 8);
      }
      seen_sum[i] = sum;
    });
  }
  sys.Run(kHorizon);
  const uint64_t expected = static_cast<uint64_t>(n) * (n + 1) / 2;
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(seen_sum[i], expected) << "core " << i;
  }
}

TEST(TxRuntime, PrivatizationBarrierReusableAcrossGenerations) {
  TmSystem sys(Config());
  const uint32_t n = sys.num_app_cores();
  std::vector<int> rounds_done(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv& env, TxRuntime& rt) {
      Rng rng(i + 1);
      for (int round = 0; round < 5; ++round) {
        rt.Execute([&](Tx& tx) { tx.Write(0xB00 + i * 8, rng.Next()); });
        env.Compute(rng.NextBelow(50000));  // races between generations
        rt.PrivatizationBarrier();
        ++rounds_done[i];
      }
    });
  }
  sys.Run(kHorizon);
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(rounds_done[i], 5) << "core " << i;
  }
}

// Field-by-field equality for the max_batch=1 identity test below.
void ExpectStatsIdentical(const TxStats& a, const TxStats& b) {
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.raw_conflicts, b.raw_conflicts);
  EXPECT_EQ(a.waw_conflicts, b.waw_conflicts);
  EXPECT_EQ(a.war_conflicts, b.war_conflicts);
  EXPECT_EQ(a.notify_aborts, b.notify_aborts);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.early_releases, b.early_releases);
  EXPECT_EQ(a.validation_failures, b.validation_failures);
  EXPECT_EQ(a.busy_time, b.busy_time);
  EXPECT_EQ(a.max_attempts_per_tx, b.max_attempts_per_tx);
  EXPECT_EQ(a.lock_acquires, b.lock_acquires);
  EXPECT_EQ(a.batch_messages, b.batch_messages);
  EXPECT_EQ(a.acquire_time, b.acquire_time);
  EXPECT_EQ(a.local_acquires, b.local_acquires);
  EXPECT_EQ(a.remote_acquires, b.remote_acquires);
  for (size_t i = 0; i < a.inflight_depth_hist.size(); ++i) {
    EXPECT_EQ(a.inflight_depth_hist[i], b.inflight_depth_hist[i]) << "depth bucket " << i;
  }
}

// The determinism regressions compare whole TxStats values, so equality and
// Merge must see every field — in particular the pipelining additions
// (local/remote acquire split, in-flight depth histogram). A field missed
// here would make two genuinely different runs compare equal.
TEST(TxStatsValue, EqualityDistinguishesPipelineFields) {
  TxStats base;
  base.commits = 3;
  base.lock_acquires = 10;
  base.remote_acquires = 10;
  base.inflight_depth_hist[0] = 10;

  TxStats same = base;
  EXPECT_TRUE(base == same);

  TxStats local_differs = base;
  local_differs.local_acquires = 1;
  EXPECT_TRUE(base != local_differs);

  TxStats remote_differs = base;
  remote_differs.remote_acquires = 9;
  EXPECT_TRUE(base != remote_differs);

  TxStats hist_differs = base;
  hist_differs.inflight_depth_hist[0] = 9;
  hist_differs.inflight_depth_hist[3] = 1;
  EXPECT_TRUE(base != hist_differs);
}

TEST(TxStatsValue, MergeSumsPipelineFieldsAndKeepsMaxAttempts) {
  TxStats a;
  a.lock_acquires = 8;
  a.local_acquires = 5;
  a.remote_acquires = 3;
  a.inflight_depth_hist[0] = 2;
  a.inflight_depth_hist[2] = 1;
  a.max_attempts_per_tx = 4;

  TxStats b;
  b.lock_acquires = 6;
  b.local_acquires = 1;
  b.remote_acquires = 5;
  b.inflight_depth_hist[2] = 3;
  b.inflight_depth_hist[7] = 2;
  b.max_attempts_per_tx = 2;

  a.Merge(b);
  EXPECT_EQ(a.lock_acquires, 14u);
  EXPECT_EQ(a.local_acquires, 6u);
  EXPECT_EQ(a.remote_acquires, 8u);
  EXPECT_EQ(a.local_acquires + a.remote_acquires, a.lock_acquires);
  EXPECT_EQ(a.inflight_depth_hist[0], 2u);
  EXPECT_EQ(a.inflight_depth_hist[2], 4u);
  EXPECT_EQ(a.inflight_depth_hist[7], 2u);
  EXPECT_EQ(a.max_attempts_per_tx, 4u);  // max, not sum
}

// Shared multi-address workload: every core runs transactions that touch
// several stripes, so commit-time write-lock acquisition has something to
// batch.
TxStats RunBatchWorkload(TmSystemConfig cfg) {
  TmSystem sys(std::move(cfg));
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [i](CoreEnv&, TxRuntime& rt) {
      Rng rng(1000 + i);
      for (int k = 0; k < 30; ++k) {
        const uint64_t base = 0x1000 + rng.NextBelow(256) * 8;
        rt.Execute([base](Tx& tx) {
          for (uint64_t w = 0; w < 6; ++w) {
            const uint64_t addr = base + w * 8;
            tx.Write(addr, tx.Read(addr) + 1);
          }
        });
      }
    });
  }
  sys.Run(kHorizon);
  return sys.MergedStats();
}

TEST(TxRuntime, MaxBatchOneIsByteIdenticalToUnbatchedDefault) {
  // TmConfig's default (max_batch unset) IS the unbatched path; an
  // explicit max_batch = 1 must not engage any part of the batch protocol,
  // down to every timing-sensitive statistic.
  TmSystemConfig defaults = Config();
  TmSystemConfig explicit_one = Config();
  explicit_one.tm.max_batch = 1;
  const TxStats a = RunBatchWorkload(std::move(defaults));
  const TxStats b = RunBatchWorkload(std::move(explicit_one));
  ExpectStatsIdentical(a, b);
  EXPECT_EQ(a.batch_messages, 0u);  // the batch protocol never fired
  EXPECT_GT(a.commits, 0u);
}

TEST(TxRuntime, BatchedCommitSendsFewerMessages) {
  TmSystemConfig unbatched = Config();
  unbatched.tm.max_batch = 1;
  TmSystemConfig batched = Config();
  batched.tm.max_batch = 8;
  const TxStats a = RunBatchWorkload(std::move(unbatched));
  const TxStats b = RunBatchWorkload(std::move(batched));
  ASSERT_GT(a.commits, 0u);
  ASSERT_GT(b.commits, 0u);
  EXPECT_GT(b.batch_messages, 0u);
  // Same number of stripes acquired per committed transaction, carried by
  // fewer messages: compare per-commit message rates (commit counts differ
  // because batching changes the timing).
  const double msgs_per_commit_unbatched =
      static_cast<double>(a.messages_sent) / static_cast<double>(a.commits);
  const double msgs_per_commit_batched =
      static_cast<double>(b.messages_sent) / static_cast<double>(b.commits);
  EXPECT_LT(msgs_per_commit_batched, msgs_per_commit_unbatched);
  // And the per-stripe mean acquire latency drops: one round trip covers
  // several stripes.
  const double mean_acquire_unbatched =
      static_cast<double>(a.acquire_time) / static_cast<double>(a.lock_acquires);
  const double mean_acquire_batched =
      static_cast<double>(b.acquire_time) / static_cast<double>(b.lock_acquires);
  EXPECT_LT(mean_acquire_batched, mean_acquire_unbatched);
}

TEST(TxRuntime, BatchedRunDrainsAllLocks) {
  TmSystemConfig cfg = Config();
  cfg.tm.max_batch = 8;
  TmSystem sys(std::move(cfg));
  for (uint32_t i = 0; i < sys.num_app_cores(); ++i) {
    sys.SetAppBody(i, [i](CoreEnv&, TxRuntime& rt) {
      Rng rng(i);
      for (int k = 0; k < 50; ++k) {
        const uint64_t a = 0x400 + rng.NextBelow(32) * 8;
        const uint64_t b = 0x400 + rng.NextBelow(32) * 8;
        rt.Execute([a, b](Tx& tx) {
          const uint64_t va = tx.Read(a);
          tx.Write(b, va + tx.Read(b));
        });
      }
    });
  }
  sys.Run(kHorizon);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

TEST(TxRuntime, ReadManyMatchesScalarReadsAndBatchesLocks) {
  TmSystemConfig cfg = Config();
  cfg.tm.max_batch = 8;
  TmSystem sys(std::move(cfg));
  std::vector<uint64_t> addrs;
  for (uint64_t i = 0; i < 12; ++i) {
    const uint64_t addr = 0x2000 + i * 8;
    addrs.push_back(addr);
    sys.shmem().StoreWord(addr, 100 + i);
  }
  std::vector<uint64_t> batched_values;
  std::vector<uint64_t> scalar_values;
  uint64_t batch_msgs = 0;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    rt.Execute([&](Tx& tx) { batched_values = tx.ReadMany(addrs); });
    batch_msgs = rt.stats().batch_messages;
    rt.Execute([&](Tx& tx) {
      scalar_values.clear();  // aborts would otherwise accumulate
      for (uint64_t addr : addrs) {
        scalar_values.push_back(tx.Read(addr));
      }
    });
  });
  sys.Run(kHorizon);
  EXPECT_EQ(batched_values, scalar_values);
  ASSERT_EQ(batched_values.size(), addrs.size());
  for (uint64_t i = 0; i < addrs.size(); ++i) {
    EXPECT_EQ(batched_values[i], 100 + i);
  }
  EXPECT_GT(batch_msgs, 0u);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

TEST(TxRuntime, ReadManyFallsBackToScalarWhenUnbatched) {
  TmSystem sys(Config());  // max_batch defaults to 1
  std::vector<uint64_t> values;
  uint64_t batch_msgs = 99;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    rt.Execute([&](Tx& tx) { values = tx.ReadMany({0x3000, 0x3008, 0x3010}); });
    batch_msgs = rt.stats().batch_messages;
  });
  sys.Run(kHorizon);
  EXPECT_EQ(values.size(), 3u);
  EXPECT_EQ(batch_msgs, 0u);
}

// ---------------------------------------------------------------------------
// Elastic-mode edge cases: degenerate windows and the interplay between
// early release and ReadMany (the kEarlyReadRelease path).
// ---------------------------------------------------------------------------

TEST(TxElasticEdge, WindowZeroPinsEveryReadLock) {
  // elastic_window = 0 degenerates to normal-mode locking: the
  // just-acquired stripe is popped from the order list but is "still
  // needed", so it stays locked (and untracked for release) until commit.
  // No early release is ever sent.
  TmSystemConfig cfg = Config();
  cfg.tm.tx_mode = TxMode::kElasticEarly;
  cfg.tm.elastic_window = 0;
  TmSystem sys(std::move(cfg));
  size_t held_mid_tx = 0;
  uint64_t releases = 99;
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime& rt) {
    rt.Execute([&](Tx& tx) {
      for (uint64_t i = 0; i < 8; ++i) {
        (void)tx.Read(0x700 + i * 8);
      }
      held_mid_tx = 0;
      for (uint64_t i = 0; i < 8; ++i) {
        const uint64_t addr = 0x700 + i * 8;
        if (sys.ServiceAt(sys.address_map().PartitionOf(addr))
                .lock_table()
                .HasReader(addr, env.core_id())) {
          ++held_mid_tx;
        }
      }
    });
    releases = rt.stats().early_releases;
  });
  sys.Run(kHorizon);
  EXPECT_EQ(held_mid_tx, 8u);
  EXPECT_EQ(releases, 0u);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

TEST(TxElasticEdge, WindowLargerThanReadSetReleasesNothing) {
  TmSystemConfig cfg = Config();
  cfg.tm.tx_mode = TxMode::kElasticEarly;
  cfg.tm.elastic_window = 64;  // far larger than the 8-read set
  TmSystem sys(std::move(cfg));
  size_t held_mid_tx = 0;
  uint64_t releases = 99;
  sys.SetAppBody(0, [&](CoreEnv& env, TxRuntime& rt) {
    rt.Execute([&](Tx& tx) {
      for (uint64_t i = 0; i < 8; ++i) {
        (void)tx.Read(0x700 + i * 8);
      }
      held_mid_tx = 0;
      for (uint64_t i = 0; i < 8; ++i) {
        const uint64_t addr = 0x700 + i * 8;
        if (sys.ServiceAt(sys.address_map().PartitionOf(addr))
                .lock_table()
                .HasReader(addr, env.core_id())) {
          ++held_mid_tx;
        }
      }
    });
    releases = rt.stats().early_releases;
  });
  sys.Run(kHorizon);
  // The window never fills: behaviour is exactly normal-mode visible reads.
  EXPECT_EQ(held_mid_tx, 8u);
  EXPECT_EQ(releases, 0u);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

TEST(TxElasticEdge, ReadManyUnderElasticEarlyMatchesScalarReads) {
  // Elastic modes keep their per-read window semantics: ReadMany must fall
  // back to the scalar path even when batching is enabled, down to every
  // statistic (batching the acquisitions would change which reads are
  // protected when).
  auto run = [](bool use_read_many) {
    TmSystemConfig cfg = Config();
    cfg.tm.tx_mode = TxMode::kElasticEarly;
    cfg.tm.elastic_window = 2;
    cfg.tm.max_batch = 8;
    TmSystem sys(std::move(cfg));
    std::vector<uint64_t> addrs;
    for (uint64_t i = 0; i < 10; ++i) {
      addrs.push_back(0x900 + i * 8);
      sys.shmem().StoreWord(0x900 + i * 8, 500 + i);
    }
    std::vector<uint64_t> values;
    sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
      rt.Execute([&](Tx& tx) {
        if (use_read_many) {
          values = tx.ReadMany(addrs);
        } else {
          values.clear();
          for (uint64_t addr : addrs) {
            values.push_back(tx.Read(addr));
          }
        }
      });
    });
    sys.Run(kHorizon);
    return std::make_pair(values, sys.MergedStats());
  };
  const auto [many_values, many_stats] = run(true);
  const auto [scalar_values, scalar_stats] = run(false);
  EXPECT_EQ(many_values, scalar_values);
  ExpectStatsIdentical(many_stats, scalar_stats);
  EXPECT_EQ(many_stats.batch_messages, 0u);  // fallback: no batch protocol
  EXPECT_GT(many_stats.early_releases, 0u);  // the window did slide
}

TEST(TxElasticEdge, EarlyReleaseInterleavesWithReadManyWindow) {
  // Scalar reads fill the window, then a ReadMany continues sliding it:
  // with window = 2, reads r0..r5 early-release r0..r3 (each read beyond
  // the second evicts the then-oldest).
  TmSystemConfig cfg = Config();
  cfg.tm.tx_mode = TxMode::kElasticEarly;
  cfg.tm.elastic_window = 2;
  cfg.tm.max_batch = 8;
  TmSystem sys(std::move(cfg));
  for (uint64_t i = 0; i < 6; ++i) {
    sys.shmem().StoreWord(0xA00 + i * 8, 30 + i);
  }
  std::vector<uint64_t> values;
  uint64_t releases = 0;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    rt.Execute([&](Tx& tx) {
      values.clear();
      values.push_back(tx.Read(0xA00));
      values.push_back(tx.Read(0xA08));
      values.push_back(tx.Read(0xA10));  // evicts 0xA00
      const std::vector<uint64_t> tail = tx.ReadMany({0xA18, 0xA20, 0xA28});
      values.insert(values.end(), tail.begin(), tail.end());
    });
    releases = rt.stats().early_releases;
  });
  sys.Run(kHorizon);
  ASSERT_EQ(values.size(), 6u);
  for (uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(values[i], 30 + i);
  }
  EXPECT_EQ(releases, 4u);
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

TEST(TxRuntime, NestedTransactionsRejected) {
  TmSystem sys(Config());
  sys.SetAppBody(0, [](CoreEnv&, TxRuntime& rt) {
    rt.Execute([&rt](Tx&) {
      EXPECT_DEATH(rt.Execute([](Tx&) {}), "nested");
    });
  });
  sys.Run(kHorizon);
}


}  // namespace
}  // namespace tm2c

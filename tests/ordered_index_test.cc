// OrderedIndex: semantics of the partitioned transactional B+-tree — the
// shared TxStoreApi contract, range-partitioned key routing, ordered range
// scans, split/merge structure modifications at boundary fanouts, a seeded
// property test against std::map in both host and tx mode, and behaviour
// under chaos (the serializability oracle over the index workload, plus
// the planted publish-child-before-parent-link SMO fault that the
// tree-shape invariants must flag on every seed).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include "src/apps/ordered_index.h"
#include "src/check/checker.h"
#include "src/common/rng.h"
#include "src/tm/tm_system.h"
#include "tests/store_semantics.h"

namespace tm2c {
namespace {

TmSystemConfig SmallConfig(uint32_t cores = 4, uint32_t service = 2) {
  TmSystemConfig cfg;
  cfg.sim.platform = MakeOpteronPlatform();
  cfg.sim.num_cores = cores;
  cfg.sim.num_service = service;
  cfg.sim.shmem_bytes = 2 << 20;
  cfg.tm.cm = CmKind::kFairCm;
  cfg.tm.max_batch = 8;
  return cfg;
}

OrderedIndexConfig SmallIndex(uint32_t value_words = 2, uint32_t fanout = 4,
                              uint64_t key_max = 96) {
  OrderedIndexConfig cfg;
  cfg.key_min = 1;
  cfg.key_max = key_max;
  cfg.value_words = value_words;
  cfg.fanout = fanout;
  cfg.capacity_per_partition = 256;
  return cfg;
}

void ExpectStructureClean(const OrderedIndex& idx, const char* when) {
  std::vector<std::string> problems;
  idx.HostCheckStructure(&problems);
  EXPECT_TRUE(problems.empty()) << when << ": " << problems.front() << " (+"
                                << problems.size() - 1 << " more)";
}

// ---------------------------------------------------------------------------
// Shared TxStoreApi contract (cases in tests/store_semantics.h)
// ---------------------------------------------------------------------------

TEST(OrderedIndex, PutGetDeleteReadModifyWrite) {
  TmSystem sys(SmallConfig());
  OrderedIndex idx(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(),
                   SmallIndex());
  RunStoreMutationSemanticsCase(sys, idx);
  ExpectStructureClean(idx, "after mutation case");
}

TEST(OrderedIndex, InsertLeavesExistingValueAlone) {
  TmSystem sys(SmallConfig());
  OrderedIndex idx(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(),
                   SmallIndex(1));
  RunStoreInsertOnlyCase(sys, idx);
}

TEST(OrderedIndex, HostHelpersAndLoadPhase) {
  TmSystem sys(SmallConfig());
  OrderedIndex idx(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(),
                   SmallIndex(3));
  RunStoreHostHelpersCase(idx, 40);
  ExpectStructureClean(idx, "after host load");
  // Ordered-index specific: HostForEach visits in ascending key order.
  uint64_t prev = 0;
  idx.HostForEach([&](uint64_t key, const uint64_t*) {
    EXPECT_GT(key, prev);
    prev = key;
  });
}

TEST(OrderedIndex, AllSlabAddressesRouteToTheOwningPartition) {
  TmSystem sys(SmallConfig(8, 4));
  OrderedIndex idx(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(),
                   SmallIndex());
  RunStoreSlabRoutingCase(sys, idx);
}

// ---------------------------------------------------------------------------
// Range partitioning
// ---------------------------------------------------------------------------

TEST(OrderedIndex, RangePartitioningIsContiguousAndMonotone) {
  TmSystem sys(SmallConfig(8, 4));
  OrderedIndexConfig cfg = SmallIndex(1, 4, 1000);
  OrderedIndex idx(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), cfg);
  ASSERT_EQ(idx.num_partitions(), 4u);
  // Partition ids are non-decreasing in the key, every partition is hit,
  // and PartitionMinKey is exactly the first key mapping to the partition.
  uint32_t prev = 0;
  std::set<uint32_t> hit;
  for (uint64_t key = cfg.key_min; key <= cfg.key_max; ++key) {
    const uint32_t p = idx.PartitionOfKey(key);
    EXPECT_GE(p, prev);
    prev = p;
    hit.insert(p);
    EXPECT_EQ(idx.OwnerCore(key), sys.deployment().ServiceCore(p));
  }
  EXPECT_EQ(hit.size(), 4u);
  for (uint32_t p = 0; p < 4; ++p) {
    const uint64_t lo = idx.PartitionMinKey(p);
    EXPECT_EQ(idx.PartitionOfKey(lo), p);
    if (lo > cfg.key_min) {
      EXPECT_EQ(idx.PartitionOfKey(lo - 1), p - 1);
    }
  }
}

// ---------------------------------------------------------------------------
// Ordered scans
// ---------------------------------------------------------------------------

TEST(OrderedIndex, RangeScanIsOrderedAcrossPartitionBoundaries) {
  TmSystem sys(SmallConfig(4, 2));
  OrderedIndexConfig cfg = SmallIndex(1, 4, 64);
  OrderedIndex idx(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), cfg);
  // Every third key resident, spanning both partitions.
  std::map<uint64_t, uint64_t> ref;
  for (uint64_t key = 1; key <= 64; key += 3) {
    const uint64_t v = key * 5;
    idx.HostPut(key, &v);
    ref[key] = v;
  }
  struct Case {
    uint64_t lo, hi;
    uint32_t limit;
  };
  const std::vector<Case> cases = {{1, 64, 100}, {2, 40, 100}, {30, 35, 100},
                                   {1, 64, 7},   {60, 64, 3},  {65, 64, 4}};
  std::vector<std::vector<KvEntry>> got(cases.size());
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    for (size_t i = 0; i < cases.size(); ++i) {
      got[i] = idx.RangeScan(rt, cases[i].lo, cases[i].hi, cases[i].limit);
    }
  });
  sys.Run();
  for (size_t i = 0; i < cases.size(); ++i) {
    std::vector<KvEntry> want;
    for (auto it = ref.lower_bound(cases[i].lo);
         it != ref.end() && it->first <= cases[i].hi && want.size() < cases[i].limit;
         ++it) {
      want.push_back({it->first, {it->second}});
    }
    ASSERT_EQ(got[i].size(), want.size()) << "case " << i;
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(got[i][j].key, want[j].key) << "case " << i;
      EXPECT_EQ(got[i][j].value, want[j].value) << "case " << i;
    }
  }
  // The TxStoreApi Scan is the same walk from start_key to the range end.
  const std::vector<KvEntry> host = idx.HostRangeScan(2, 40, 100);
  ASSERT_EQ(host.size(), got[1].size());
  for (size_t j = 0; j < host.size(); ++j) {
    EXPECT_EQ(host[j].key, got[1][j].key);
  }
}

// ---------------------------------------------------------------------------
// Split/merge structure modifications
// ---------------------------------------------------------------------------

// Sequential insert then sequential delete at both fanout extremes, with
// the tree-shape invariants checked after every operation: every split,
// borrow, merge and root transition happens at these sizes.
TEST(OrderedIndex, BoundaryFanoutsStayWellFormedThroughSplitsAndMerges) {
  for (const uint32_t fanout : {3u, 4u, 16u}) {
    TmSystem sys(SmallConfig());
    OrderedIndexConfig cfg = SmallIndex(1, fanout, 96);
    OrderedIndex idx(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(),
                     cfg);
    for (uint64_t key = 1; key <= 96; ++key) {
      const uint64_t v = key * 3;
      ASSERT_TRUE(idx.HostPut(key, &v)) << "fanout " << fanout << " key " << key;
      ExpectStructureClean(idx, "after sequential insert");
    }
    EXPECT_EQ(idx.HostSize(), 96u);
    for (uint32_t p = 0; p < idx.num_partitions(); ++p) {
      EXPECT_GE(idx.HostDepthOfPartition(p), 2u) << "fanout " << fanout;
    }
    // Descending deletes drain the right spine; every underflow rebalances.
    for (uint64_t key = 96; key >= 1; --key) {
      uint64_t old = 0;
      ASSERT_TRUE(idx.HostDelete(key, &old)) << "fanout " << fanout << " key " << key;
      EXPECT_EQ(old, key * 3);
      ExpectStructureClean(idx, "after sequential delete");
    }
    EXPECT_EQ(idx.HostSize(), 0u);
    // Delete-to-empty must return every node to the pools.
    for (uint32_t p = 0; p < idx.num_partitions(); ++p) {
      EXPECT_EQ(idx.NodesInUse(p), 1u) << "only the empty root leaf should remain";
    }
  }
}

// ---------------------------------------------------------------------------
// Seeded property test against std::map
// ---------------------------------------------------------------------------

void HostPropertyRun(uint32_t fanout, uint64_t seed, int ops) {
  TmSystem sys(SmallConfig());
  OrderedIndexConfig cfg = SmallIndex(1, fanout, 96);
  OrderedIndex idx(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), cfg);
  std::map<uint64_t, uint64_t> ref;
  Rng rng(seed);
  for (int k = 0; k < ops; ++k) {
    const uint64_t key = 1 + rng.NextBelow(96);
    const uint64_t roll = rng.NextBelow(10);
    if (roll < 4) {
      const uint64_t v = rng.Next();
      const bool inserted = idx.HostPut(key, &v);
      EXPECT_EQ(inserted, ref.find(key) == ref.end());
      ref[key] = v;
    } else if (roll < 7) {
      uint64_t old = 0;
      const bool removed = idx.HostDelete(key, &old);
      const auto it = ref.find(key);
      EXPECT_EQ(removed, it != ref.end());
      if (it != ref.end()) {
        EXPECT_EQ(old, it->second);
        ref.erase(it);
      }
    } else if (roll < 9) {
      uint64_t v = 0;
      const bool found = idx.HostGet(key, &v);
      const auto it = ref.find(key);
      EXPECT_EQ(found, it != ref.end());
      if (it != ref.end()) {
        EXPECT_EQ(v, it->second);
      }
    } else {
      const uint64_t hi = key + rng.NextBelow(16);
      const std::vector<KvEntry> got = idx.HostRangeScan(key, hi, 100);
      std::vector<uint64_t> want;
      for (auto it = ref.lower_bound(key); it != ref.end() && it->first <= hi; ++it) {
        want.push_back(it->first);
      }
      ASSERT_EQ(got.size(), want.size());
      for (size_t j = 0; j < want.size(); ++j) {
        EXPECT_EQ(got[j].key, want[j]);
        EXPECT_EQ(got[j].value[0], ref[want[j]]);
      }
    }
    if (k % 64 == 0) {
      ExpectStructureClean(idx, "mid property run");
    }
  }
  ExpectStructureClean(idx, "after property run");
  // Full-order comparison against the reference.
  std::vector<std::pair<uint64_t, uint64_t>> all;
  idx.HostForEach([&](uint64_t key, const uint64_t* v) { all.emplace_back(key, v[0]); });
  ASSERT_EQ(all.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [key, value] : all) {
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(value, it->second);
    ++it;
  }
  // Drain to empty, refill, and re-verify: node recycling across the whole
  // lifecycle.
  while (!ref.empty()) {
    EXPECT_TRUE(idx.HostDelete(ref.begin()->first, nullptr));
    ref.erase(ref.begin());
  }
  EXPECT_EQ(idx.HostSize(), 0u);
  ExpectStructureClean(idx, "after drain to empty");
  for (uint64_t key = 1; key <= 96; ++key) {
    const uint64_t v = key + seed;
    EXPECT_TRUE(idx.HostPut(key, &v));
  }
  EXPECT_EQ(idx.HostSize(), 96u);
  ExpectStructureClean(idx, "after refill");
}

TEST(OrderedIndexProperty, HostModeMatchesStdMap) {
  for (const uint32_t fanout : {3u, 4u, 6u}) {
    HostPropertyRun(fanout, 17 * fanout + 1, 600);
  }
}

// The same mix through the transactional wrappers (splits/merges as
// deferred write-sets, scratch-carried node allocation), single-core so
// every wrapper call's outcome is deterministic against the reference.
TEST(OrderedIndexProperty, TxModeMatchesStdMap) {
  TmSystem sys(SmallConfig());
  OrderedIndexConfig cfg = SmallIndex(1, 4, 96);
  OrderedIndex idx(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), cfg);
  std::map<uint64_t, uint64_t> ref;
  bool agree = true;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    Rng rng(99);
    for (int k = 0; k < 300; ++k) {
      const uint64_t key = 1 + rng.NextBelow(96);
      const uint64_t roll = rng.NextBelow(10);
      if (roll < 3) {
        const uint64_t v = rng.Next();
        agree &= idx.Put(rt, key, &v) == (ref.find(key) == ref.end());
        ref[key] = v;
      } else if (roll < 5) {
        const uint64_t v = rng.Next();
        const bool was_absent = ref.find(key) == ref.end();
        agree &= idx.Insert(rt, key, &v) == was_absent;
        if (was_absent) {
          ref[key] = v;
        }
      } else if (roll < 8) {
        std::vector<uint64_t> old;
        const auto it = ref.find(key);
        agree &= idx.Delete(rt, key, &old) == (it != ref.end());
        if (it != ref.end()) {
          agree &= old.size() == 1 && old[0] == it->second;
          ref.erase(it);
        }
      } else {
        std::vector<uint64_t> got;
        const auto it = ref.find(key);
        agree &= idx.Get(rt, key, &got) == (it != ref.end());
        if (it != ref.end()) {
          agree &= got.size() == 1 && got[0] == it->second;
        }
      }
    }
  });
  sys.Run();
  EXPECT_TRUE(agree);
  ExpectStructureClean(idx, "after tx property run");
  EXPECT_EQ(idx.HostSize(), ref.size());
  auto it = ref.begin();
  idx.HostForEach([&](uint64_t key, const uint64_t* v) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(v[0], it->second);
    ++it;
  });
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

// ---------------------------------------------------------------------------
// Contention
// ---------------------------------------------------------------------------

// Several cores hammer a tiny keyspace with insert/delete. Conservation:
// successful inserts minus successful deletes equals the final resident
// count, the tree stays well-formed, and no lock remains held.
TEST(OrderedIndex, InsertDeleteUnderContention) {
  TmSystem sys(SmallConfig(8, 4));
  OrderedIndexConfig cfg = SmallIndex(1, 4, 24);
  cfg.capacity_per_partition = 64;
  OrderedIndex idx(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), cfg);
  constexpr uint64_t kKeys = 24;
  constexpr int kOpsPerCore = 120;
  const uint32_t n = sys.num_app_cores();
  std::vector<uint64_t> inserts(n, 0), deletes(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv&, TxRuntime& rt) {
      Rng rng(1000 + i * 37);
      for (int k = 0; k < kOpsPerCore; ++k) {
        const uint64_t key = 1 + rng.NextBelow(kKeys);
        if (rng.NextPercent(50)) {
          const uint64_t value = (uint64_t{i} << 32) | static_cast<uint64_t>(k);
          if (idx.Insert(rt, key, &value)) {
            ++inserts[i];
          }
        } else {
          if (idx.Delete(rt, key)) {
            ++deletes[i];
          }
        }
      }
    });
  }
  sys.Run();
  uint64_t total_inserts = 0, total_deletes = 0;
  for (uint32_t i = 0; i < n; ++i) {
    total_inserts += inserts[i];
    total_deletes += deletes[i];
  }
  EXPECT_EQ(total_inserts - total_deletes, idx.HostSize());
  EXPECT_LE(idx.HostSize(), kKeys);
  ExpectStructureClean(idx, "after contention run");
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

// One core range-scans while the others churn puts and deletes through
// split/merge territory. Every scan must be a consistent ordered snapshot:
// strictly ascending keys within bounds carrying their key-deterministic
// values.
TEST(OrderedIndex, ScanVsConcurrentSplitsAndMerges) {
  TmSystem sys(SmallConfig(6, 2));
  OrderedIndexConfig cfg = SmallIndex(2, 4, 32);
  cfg.capacity_per_partition = 64;
  OrderedIndex idx(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), cfg);
  constexpr uint64_t kKeys = 32;
  for (uint64_t key = 1; key <= kKeys; ++key) {
    const uint64_t value[2] = {key * 7, key * 11};
    idx.HostPut(key, value);
  }
  const uint32_t n = sys.num_app_cores();
  uint64_t scans_done = 0, entries_seen = 0;
  bool scans_consistent = true;
  sys.SetAppBody(0, [&](CoreEnv&, TxRuntime& rt) {
    Rng rng(7);
    for (int s = 0; s < 60; ++s) {
      const uint64_t start = 1 + rng.NextBelow(kKeys);
      const std::vector<KvEntry> got = idx.RangeScan(rt, start, start + 9, 8);
      ++scans_done;
      entries_seen += got.size();
      if (got.size() > 8) {
        scans_consistent = false;
      }
      uint64_t prev = 0;
      for (const KvEntry& e : got) {
        if (e.key < start || e.key > start + 9 || e.key <= prev ||
            e.value[0] != e.key * 7 || e.value[1] != e.key * 11) {
          scans_consistent = false;
        }
        prev = e.key;
      }
    }
  });
  for (uint32_t i = 1; i < n; ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv&, TxRuntime& rt) {
      Rng rng(100 + i);
      for (int k = 0; k < 120; ++k) {
        const uint64_t key = 1 + rng.NextBelow(kKeys);
        if (rng.NextPercent(50)) {
          const uint64_t value[2] = {key * 7, key * 11};  // key-deterministic
          idx.Put(rt, key, value);
        } else {
          idx.Delete(rt, key);
        }
      }
    });
  }
  sys.Run();
  EXPECT_EQ(scans_done, 60u);
  EXPECT_GT(entries_seen, 0u);
  EXPECT_TRUE(scans_consistent);
  ExpectStructureClean(idx, "after scan-vs-writers run");
  EXPECT_TRUE(sys.AllLockTablesEmpty());
}

// ---------------------------------------------------------------------------
// Chaos + oracle (the --workload=index harness)
// ---------------------------------------------------------------------------

CheckRunConfig IndexCheckConfig(uint64_t seed, TxMode mode = TxMode::kNormal) {
  CheckRunConfig cfg;
  cfg.workload = CheckWorkload::kIndex;
  cfg.platform = "scc";
  cfg.cm = CmKind::kFairCm;
  cfg.tx_mode = mode;
  cfg.max_batch = 8;
  cfg.seed = seed;
  return cfg;
}

TEST(OrderedIndexChaos, CleanUnderNormalAndElasticEarly) {
  for (const TxMode mode : {TxMode::kNormal, TxMode::kElasticEarly}) {
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      const CheckRunResult result = RunCheckedWorkload(IndexCheckConfig(seed, mode));
      EXPECT_TRUE(result.report.ok())
          << IndexCheckConfig(seed, mode).Name() << ": " << result.report.Summary();
    }
  }
}

// The planted SMO fault — a leaf split that publishes the new leaf in the
// chain but skips the parent link — is invisible to the serializability
// oracle (every transaction is internally consistent), so the tree-shape
// invariants must flag it. The load phase already forces splits in every
// partition, so the detection is deterministic on EVERY seed, not
// probabilistic.
TEST(OrderedIndexChaos, SmoSkipParentLinkFlaggedOnEverySeed) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    CheckRunConfig cfg = IndexCheckConfig(seed);
    cfg.fault = FaultMode::kSmoSkipParentLink;
    const CheckRunResult result = RunCheckedWorkload(cfg);
    EXPECT_FALSE(result.report.ok()) << "seed " << seed;
    bool tree_shape = false;
    for (const OracleViolation& v : result.report.violations) {
      tree_shape |= v.kind == "tree-shape";
    }
    EXPECT_TRUE(tree_shape) << "seed " << seed
                            << ": no tree-shape violation; " << result.report.Summary();
  }
}

// Nightly breadth: the property run over more fanouts and seeds, plus the
// chaos matrix (both CMs, batch on/off) clean and the SMO fault flagged on
// every seed of a 10-seed sweep. GTEST_SKIPs unless TM2C_LONG_TESTS is set;
// the `long`-labelled ctest entry (-DTM2C_ENABLE_LONG_TESTS=ON) sets it.
TEST(OrderedIndexLong, LongPropertySweep) {
  if (std::getenv("TM2C_LONG_TESTS") == nullptr) {
    GTEST_SKIP() << "set TM2C_LONG_TESTS=1 (nightly) to run the breadth sweep";
  }
  for (const uint32_t fanout : {3u, 4u, 6u, 8u, 16u}) {
    for (const uint64_t seed : {7u, 1001u, 4242u}) {
      HostPropertyRun(fanout, seed, 1500);
    }
  }
  for (const CmKind cm : {CmKind::kFairCm, CmKind::kWholly}) {
    for (const uint32_t max_batch : {1u, 8u}) {
      for (uint64_t seed = 1; seed <= 10; ++seed) {
        CheckRunConfig cfg = IndexCheckConfig(seed);
        cfg.cm = cm;
        cfg.max_batch = max_batch;
        const CheckRunResult clean = RunCheckedWorkload(cfg);
        EXPECT_TRUE(clean.report.ok()) << cfg.Name() << ": " << clean.report.Summary();
        cfg.fault = FaultMode::kSmoSkipParentLink;
        const CheckRunResult faulty = RunCheckedWorkload(cfg);
        bool tree_shape = false;
        for (const OracleViolation& v : faulty.report.violations) {
          tree_shape |= v.kind == "tree-shape";
        }
        EXPECT_TRUE(tree_shape) << cfg.Name() << ": SMO fault not flagged";
      }
    }
  }
}

}  // namespace
}  // namespace tm2c

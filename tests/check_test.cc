// Tests for the verification subsystem (src/check/): oracle unit tests on
// hand-built histories, chaos-schedule determinism, planted-fault
// detection (the oracle must flag every FaultMode), clean-protocol chaos
// sweeps, and the runtime's control-flow contract (no catch(...) swallows).
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/check/checker.h"

namespace tm2c {
namespace {

// ---------------------------------------------------------------------------
// Oracle unit tests on hand-built histories.
// ---------------------------------------------------------------------------

TEST(Oracle, AcceptsSerialHistory) {
  History h;
  h.RecordInitial(0x10, 5);
  h.OnTxBegin(0, 1, 0);
  h.OnTxRead(0, 0x10, 5);
  h.OnTxPersist(0, 0x10, 6);
  h.OnTxCommit(0, 10);
  h.OnTxBegin(1, 1, 11);
  h.OnTxRead(1, 0x10, 6);
  h.OnTxPersist(1, 0x10, 7);
  h.OnTxCommit(1, 20);
  const OracleReport report = CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.committed, 2u);
  EXPECT_EQ(report.reads_checked, 2u);
}

TEST(Oracle, AcceptsInterleavedButSerializableHistory) {
  // Two transactions on disjoint addresses, fully interleaved: fine.
  History h;
  h.OnTxBegin(0, 1, 0);
  h.OnTxBegin(1, 1, 0);
  h.OnTxRead(0, 0x10, 0);
  h.OnTxRead(1, 0x20, 0);
  h.OnTxPersist(0, 0x10, 1);
  h.OnTxPersist(1, 0x20, 1);
  h.OnTxCommit(0, 10);
  h.OnTxCommit(1, 10);
  const OracleReport report = CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(Oracle, FlagsLostUpdateAsCycle) {
  // Both transactions read the initial version of 0x10, then both write it:
  // the classic lost update. RW (t1 -> t0's version successor) + WW close
  // the cycle.
  History h;
  h.OnTxBegin(0, 1, 0);
  h.OnTxBegin(1, 1, 0);
  h.OnTxRead(0, 0x10, 5);
  h.OnTxRead(1, 0x10, 5);
  h.OnTxPersist(0, 0x10, 6);
  h.OnTxCommit(0, 10);
  h.OnTxPersist(1, 0x10, 6);
  h.OnTxCommit(1, 20);
  const OracleReport report = CheckHistory(h);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "cycle");
}

TEST(Oracle, FlagsTornScanAsCycle) {
  // A read-only scan observes x before W's commit and y after it: torn.
  History h;
  h.RecordInitial(0x10, 1);
  h.RecordInitial(0x18, 1);
  h.OnTxBegin(0, 1, 0);  // the scan
  h.OnTxBegin(1, 1, 0);  // the writer
  h.OnTxRead(0, 0x10, 1);
  h.OnTxPersist(1, 0x10, 2);
  h.OnTxPersist(1, 0x18, 2);
  h.OnTxCommit(1, 10);
  h.OnTxRead(0, 0x18, 2);
  h.OnTxCommit(0, 20);
  OracleReport report = CheckHistory(h);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "cycle");

  // Under elastic relaxation the committed read-only scan is exempt: a
  // torn search prefix is elasticity's documented semantics.
  OracleOptions relaxed;
  relaxed.elastic_relaxed = true;
  report = CheckHistory(h, relaxed);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(Oracle, FlagsOutOfThinAirRead) {
  History h;
  h.OnTxBegin(0, 1, 0);
  h.OnTxPersist(0, 0x10, 9);
  h.OnTxCommit(0, 5);
  h.OnTxBegin(1, 1, 6);
  h.OnTxRead(1, 0x10, 5);  // the last persisted value is 9
  h.OnTxCommit(1, 10);
  const OracleReport report = CheckHistory(h);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "stale-read");
}

TEST(Oracle, ChecksReadsOfAbortedTransactions) {
  // Opacity: even a transaction that later aborts must never observe a
  // value no serialization-consistent writer produced.
  History h;
  h.OnTxBegin(0, 1, 0);
  h.OnTxPersist(0, 0x10, 9);
  h.OnTxCommit(0, 5);
  h.OnTxBegin(1, 1, 6);
  h.OnTxRead(1, 0x10, 7);  // neither initial nor any writer stored 7
  h.OnTxAbort(1, 10, ConflictKind::kReadAfterWrite);
  const OracleReport report = CheckHistory(h);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "stale-read");
  EXPECT_EQ(report.aborted, 1u);
}

TEST(Oracle, FlagsInconsistentInitialRead) {
  History h;
  h.RecordInitial(0x10, 5);
  h.OnTxBegin(0, 1, 0);
  h.OnTxRead(0, 0x10, 6);  // pre-write read disagreeing with the snapshot
  h.OnTxCommit(0, 10);
  const OracleReport report = CheckHistory(h);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "inconsistent-initial-read");
}

TEST(Oracle, FinalStateMismatchIsFlagged) {
  History h;
  h.OnTxBegin(0, 1, 0);
  h.OnTxPersist(0, 0x10, 9);
  h.OnTxCommit(0, 5);
  OracleReport report = CheckHistory(h);
  ASSERT_TRUE(report.ok());
  CheckFinalState(h, [](uint64_t) { return uint64_t{3}; }, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "final-state");
}

TEST(Oracle, HistoryJsonDumpContainsOutcomes) {
  History h;
  h.RecordInitial(0x10, 5);
  h.OnTxBegin(0, 1, 0);
  h.OnTxRead(0, 0x10, 5);
  h.OnTxPersist(0, 0x10, 6);
  h.OnTxCommit(0, 10);
  h.OnRevocation(3, 0, 42, ConflictKind::kWriteAfterRead);
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"transactions\""), std::string::npos);
  EXPECT_NE(json.find("\"committed\":true"), std::string::npos);
  EXPECT_NE(json.find("\"revocations\""), std::string::npos);
  EXPECT_NE(json.find("\"victim_epoch\":42"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Migration oracle: unit tests on hand-built grant/migration streams.
// ---------------------------------------------------------------------------

TEST(MigrationOracle, AcceptsCleanHandoff) {
  History h;
  h.OnLockGrant(2, 5, 0x140);  // pre-drain grant by the owner: fine
  h.OnMigrationBegin(2, 3, 0x100, 0x200);
  h.OnMigrationComplete(2, 3, 0x100, 0x200, 1);
  h.OnLockGrant(3, 5, 0x140);  // post-flip grant by the new owner: fine
  h.OnLockGrant(2, 5, 0x900);  // outside the tracked range: untracked
  OracleReport report;
  CheckMigrationHistory(h, &report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(MigrationOracle, FlagsGrantInsideOpenDrainWindow) {
  History h;
  h.OnMigrationBegin(2, 3, 0x100, 0x200);
  h.OnLockGrant(2, 5, 0x140);  // the old owner grants while draining
  OracleReport report;
  CheckMigrationHistory(h, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "grant-during-migration");
}

TEST(MigrationOracle, FlagsStaleOwnerGrantAfterFlip) {
  History h;
  h.OnMigrationBegin(2, 3, 0x100, 0x200);
  h.OnMigrationComplete(2, 3, 0x100, 0x200, 1);
  h.OnLockGrant(2, 5, 0x140);  // ownership moved to core 3
  OracleReport report;
  CheckMigrationHistory(h, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "grant-by-non-owner");
}

TEST(MigrationOracle, FlagsCompleteWithoutBegin) {
  History h;
  h.OnMigrationComplete(2, 3, 0x100, 0x200, 1);
  OracleReport report;
  CheckMigrationHistory(h, &report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].kind, "migration-complete-without-begin");
}

TEST(MigrationOracle, OpenWindowAtEndOfRunIsNotAViolation) {
  // A horizon can legitimately cut a run mid-drain; only grants inside the
  // window are wrong, not the unfinished drain itself.
  History h;
  h.OnMigrationBegin(2, 3, 0x100, 0x200);
  OracleReport report;
  CheckMigrationHistory(h, &report);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

// ---------------------------------------------------------------------------
// Chaos-schedule determinism: one seed is one schedule, bit for bit.
// ---------------------------------------------------------------------------

TEST(ChaosDeterminism, SameSeedGivesByteIdenticalStats) {
  CheckRunConfig cfg;
  cfg.seed = 3;
  const CheckRunResult a = RunCheckedWorkload(cfg);
  const CheckRunResult b = RunCheckedWorkload(cfg);
  EXPECT_TRUE(a.report.ok()) << a.report.Summary();
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_EQ(a.history.num_events(), b.history.num_events());
  EXPECT_EQ(a.history.transactions().size(), b.history.transactions().size());
}

TEST(ChaosDeterminism, PipelinedSameSeedGivesByteIdenticalStats) {
  CheckRunConfig cfg;
  cfg.max_batch = 8;
  cfg.pipeline_depth = 4;
  cfg.seed = 3;
  const CheckRunResult a = RunCheckedWorkload(cfg);
  const CheckRunResult b = RunCheckedWorkload(cfg);
  EXPECT_TRUE(a.report.ok()) << a.report.Summary();
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_EQ(a.history.num_events(), b.history.num_events());
}

TEST(ChaosDeterminism, PipelinedRunRecordsOverlappingAcquires) {
  CheckRunConfig cfg;
  cfg.max_batch = 4;  // small chunks: one scan needs several batches per node
  cfg.pipeline_depth = 4;
  cfg.seed = 5;
  const CheckRunResult result = RunCheckedWorkload(cfg);
  EXPECT_TRUE(result.report.ok()) << result.report.Summary();
  const auto& acquires = result.history.acquires();
  ASSERT_FALSE(acquires.empty());
  // At depth 4 some request must have been issued while another from the
  // same core was still outstanding — the whole point of pipelining.
  bool overlapped = false;
  for (const auto& a : acquires) {
    for (const auto& b : acquires) {
      if (a.core == b.core && a.issue_seq < b.issue_seq && b.issue_seq < a.complete_seq) {
        overlapped = true;
        break;
      }
    }
    if (overlapped) {
      break;
    }
  }
  EXPECT_TRUE(overlapped);
  EXPECT_NE(result.history.ToJson().find("\"acquires\""), std::string::npos);
}

TEST(ChaosDeterminism, ChaosActuallyPerturbsTheSchedule) {
  CheckRunConfig with_chaos;
  with_chaos.seed = 3;
  CheckRunConfig without = with_chaos;
  without.chaos = false;
  const CheckRunResult a = RunCheckedWorkload(with_chaos);
  const CheckRunResult b = RunCheckedWorkload(without);
  EXPECT_TRUE(b.report.ok()) << b.report.Summary();
  // Same workload, different schedule: the timing-sensitive statistics
  // cannot line up.
  EXPECT_TRUE(a.stats != b.stats);
}

// ---------------------------------------------------------------------------
// Planted faults: the oracle must flag every FaultMode (proof it has teeth).
// ---------------------------------------------------------------------------

bool FaultDetected(FaultMode fault, uint32_t max_batch, uint32_t pipeline_depth = 1) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    CheckRunConfig cfg;
    cfg.cm = CmKind::kFairCm;
    cfg.max_batch = max_batch;
    cfg.pipeline_depth = pipeline_depth;
    cfg.fault = fault;
    cfg.seed = seed;
    cfg.accounts = 6;  // extra heat: more overlap, faster detection
    if (!RunCheckedWorkload(cfg).report.ok()) {
      return true;
    }
  }
  return false;
}

TEST(PlantedFaults, SkipReadLockIsDetected) {
  EXPECT_TRUE(FaultDetected(FaultMode::kSkipReadLock, 1));
}

TEST(PlantedFaults, IgnoreRevocationIsDetected) {
  // max_batch 8: the victim's post-revocation acquisitions travel as
  // kBatchAcquire messages, i.e. the fault grants stale-epoch batch entries.
  EXPECT_TRUE(FaultDetected(FaultMode::kIgnoreRevocation, 8));
}

TEST(PlantedFaults, ReleaseBeforePersistIsDetected) {
  EXPECT_TRUE(FaultDetected(FaultMode::kReleaseBeforePersist, 1));
}

TEST(PlantedFaults, GrantDuringMigrationIsDetectedOnEverySeed) {
  // The fault opens the drain window but keeps granting (and never
  // completes the handoff), so every seed that migrates must be flagged —
  // not merely some seed in a sweep: the grant stream inside the window is
  // dense, so a single miss would mean the oracle lost the window.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    CheckRunConfig cfg;
    cfg.workload = CheckWorkload::kKv;
    cfg.migrate = true;
    cfg.fault = FaultMode::kGrantDuringMigration;
    cfg.max_batch = 8;
    cfg.seed = seed;
    const CheckRunResult result = RunCheckedWorkload(cfg);
    ASSERT_FALSE(result.report.ok()) << cfg.Name() << ": planted fault not flagged";
    bool flagged = false;
    for (const auto& v : result.report.violations) {
      flagged = flagged || v.kind == "grant-during-migration";
    }
    EXPECT_TRUE(flagged) << cfg.Name() << "\n" << result.report.Summary();
  }
}

TEST(PlantedFaults, FaultsStayDetectedUnderPipelining) {
  // Pipelining must not blunt the oracle: with depth 4, stale-epoch grants
  // (ignore-revocation) and broken 2PL (release-before-persist) are still
  // flagged across the same 10 seeds.
  EXPECT_TRUE(FaultDetected(FaultMode::kIgnoreRevocation, 8, 4));
  EXPECT_TRUE(FaultDetected(FaultMode::kReleaseBeforePersist, 8, 4));
  EXPECT_TRUE(FaultDetected(FaultMode::kSkipReadLock, 8, 4));
}

// ---------------------------------------------------------------------------
// Clean protocol under chaos: no violations on any explored schedule.
// ---------------------------------------------------------------------------

TEST(CleanProtocol, SmallChaosSweepFindsNothing) {
  for (CmKind cm : {CmKind::kFairCm, CmKind::kWholly}) {
    for (TxMode mode : {TxMode::kNormal, TxMode::kElasticRead}) {
      for (uint32_t max_batch : {uint32_t{1}, uint32_t{8}}) {
        for (uint64_t seed = 1; seed <= 3; ++seed) {
          CheckRunConfig cfg;
          cfg.cm = cm;
          cfg.tx_mode = mode;
          cfg.max_batch = max_batch;
          cfg.seed = seed;
          const CheckRunResult result = RunCheckedWorkload(cfg);
          ASSERT_TRUE(result.report.ok())
              << cfg.Name() << "\n" << result.report.Summary();
        }
      }
    }
  }
}

TEST(CleanProtocol, PipelinedChaosSweepFindsNothing) {
  for (uint32_t depth : {uint32_t{2}, uint32_t{4}}) {
    for (uint32_t max_batch : {uint32_t{4}, uint32_t{8}}) {
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        CheckRunConfig cfg;
        cfg.max_batch = max_batch;
        cfg.pipeline_depth = depth;
        cfg.seed = seed;
        const CheckRunResult result = RunCheckedWorkload(cfg);
        ASSERT_TRUE(result.report.ok())
            << cfg.Name() << "\n" << result.report.Summary();
      }
    }
  }
}

TEST(CleanProtocol, LiveMigrationChaosSweepFindsNothing) {
  // Mid-run ownership handoff of the partition-0 slab under full chaos:
  // the oracle (serializability + migration replay), conservation and
  // node accounting must all stay clean, and the handoff must actually
  // complete — a sweep that never flips ownership would pass vacuously.
  for (uint32_t max_batch : {uint32_t{1}, uint32_t{8}}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      CheckRunConfig cfg;
      cfg.workload = CheckWorkload::kKv;
      cfg.migrate = true;
      cfg.max_batch = max_batch;
      cfg.seed = seed;
      const CheckRunResult result = RunCheckedWorkload(cfg);
      ASSERT_TRUE(result.report.ok()) << cfg.Name() << "\n" << result.report.Summary();
      bool began = false;
      bool completed = false;
      for (const auto& m : result.history.migrations()) {
        began = began || m.kind == History::MigrationEvent::Kind::kBegin;
        completed = completed || m.kind == History::MigrationEvent::Kind::kComplete;
      }
      EXPECT_TRUE(began) << cfg.Name() << ": migration never started";
      EXPECT_TRUE(completed) << cfg.Name() << ": drain window never closed";
      EXPECT_FALSE(result.history.grants().empty()) << cfg.Name();
    }
  }
}

TEST(ChaosDeterminism, MigrationRunSameSeedGivesByteIdenticalStats) {
  CheckRunConfig cfg;
  cfg.workload = CheckWorkload::kKv;
  cfg.migrate = true;
  cfg.max_batch = 8;
  cfg.seed = 7;
  const CheckRunResult a = RunCheckedWorkload(cfg);
  const CheckRunResult b = RunCheckedWorkload(cfg);
  EXPECT_TRUE(a.report.ok()) << a.report.Summary();
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_EQ(a.history.num_events(), b.history.num_events());
  EXPECT_EQ(a.history.migrations().size(), b.history.migrations().size());
}

// Regression: the first extended chaos sweep flagged this configuration,
// which turned out to be an oracle false positive, not a protocol bug —
// value-validated elastic reads legitimately admit ABA (a transfer pair
// restored an old balance between a read and its validation), which is
// value-serializable but looks like a stale read when different writes can
// produce identical values. The workload now writes globally unique values
// (tag in the high word), making the writer of every observed value
// unambiguous. This run must stay clean.
TEST(CleanProtocol, RegressionElasticReadAbaIsNotMiscalled) {
  CheckRunConfig cfg;
  cfg.platform = "scc";
  cfg.cm = CmKind::kFairCm;
  cfg.tx_mode = TxMode::kElasticRead;
  cfg.max_batch = 8;
  cfg.seed = 15;
  const CheckRunResult result = RunCheckedWorkload(cfg);
  EXPECT_TRUE(result.report.ok()) << result.report.Summary();
}

// The acceptance-grade breadth sweep: >= 20 seeds over the full
// {cm x tx_mode x max_batch} matrix on both platforms. Gated behind
// TM2C_LONG_TESTS so tier-1 stays fast; nightly CI runs it via the
// `long`-labelled ctest entry (see CMakeLists.txt).
TEST(CleanProtocol, LongChaosSweepFindsNothing) {
  if (std::getenv("TM2C_LONG_TESTS") == nullptr) {
    GTEST_SKIP() << "set TM2C_LONG_TESTS=1 (nightly) to run the 20-seed breadth sweep";
  }
  for (const char* platform : {"scc", "opteron"}) {
    for (CmKind cm : {CmKind::kFairCm, CmKind::kWholly}) {
      for (TxMode mode : {TxMode::kNormal, TxMode::kElasticEarly, TxMode::kElasticRead}) {
        for (uint32_t max_batch : {uint32_t{1}, uint32_t{8}}) {
          for (uint64_t seed = 1; seed <= 20; ++seed) {
            CheckRunConfig cfg;
            cfg.platform = platform;
            cfg.cm = cm;
            cfg.tx_mode = mode;
            cfg.max_batch = max_batch;
            cfg.seed = seed;
            const CheckRunResult result = RunCheckedWorkload(cfg);
            ASSERT_TRUE(result.report.ok())
                << cfg.Name() << "\n" << result.report.Summary();
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Control-flow contract: a transaction body must not swallow the runtime's
// control-flow exceptions with a catch-all.
// ---------------------------------------------------------------------------

TmSystemConfig ContractConfig() {
  TmSystemConfig cfg;
  cfg.sim.platform = PlatformByName("scc");
  cfg.sim.num_cores = 6;
  cfg.sim.num_service = 3;
  cfg.sim.shmem_bytes = 1 << 20;
  cfg.sim.seed = 11;
  return cfg;
}

using ControlFlowContractDeathTest = ::testing::Test;

TEST(ControlFlowContractDeathTest, CatchAllCannotSwallowAbort) {
  EXPECT_DEATH(
      {
        TmSystemConfig cfg = ContractConfig();
        // Back-off-Retry always refuses the requester, so the reader below
        // deterministically aborts while the writer holds the lock.
        cfg.tm.cm = CmKind::kBackoffRetry;
        cfg.tm.write_acquire = WriteAcquire::kEager;
        TmSystem sys(std::move(cfg));
        sys.SetAppBody(0, [](CoreEnv& env, TxRuntime& rt) {
          rt.Execute([&env](Tx& tx) {
            tx.Write(0x100, 1);     // eager: write lock held from here
            env.Compute(10000000);  // sit on it
          });
        });
        sys.SetAppBody(1, [](CoreEnv& env, TxRuntime& rt) {
          env.Compute(100000);  // let core 0 take the lock first
          rt.TryExecute(
              [](Tx& tx) {
                try {
                  (void)tx.Read(0x100);  // refused -> TxAbortException
                } catch (...) {
                  // Swallowing the abort is a contract violation the
                  // runtime must turn into a hard failure.
                }
              },
              5);
        });
        sys.Run(MillisToSim(2000));
      },
      "swallowed TxAbortException");
}

TEST(ControlFlowContractDeathTest, CatchAllCannotSwallowUnwound) {
  EXPECT_DEATH(
      {
        auto sys = std::make_unique<TmSystem>(ContractConfig());
        sys->SetAppBody(0, [](CoreEnv&, TxRuntime& rt) {
          rt.Execute([](Tx& tx) {
            try {
              (void)tx.Read(0x100);
            } catch (...) {
              // At teardown the pending read is unwound with
              // Fiber::Unwound; swallowing it would let the body keep
              // running during destruction.
            }
            (void)tx.Read(0x108);
          });
        });
        // Stop almost immediately: core 0 is suspended inside the first
        // read. Destroying the system unwinds it.
        sys->Run(NanosToSim(50));
        sys.reset();
      },
      "swallowed Fiber::Unwound");
}

}  // namespace
}  // namespace tm2c

#include <gtest/gtest.h>

#include <vector>

#include "src/runtime/deployment.h"
#include "src/runtime/sim_system.h"

namespace tm2c {
namespace {

SimSystemConfig SmallConfig(uint32_t cores = 4, uint32_t service = 2) {
  SimSystemConfig cfg;
  cfg.platform = MakeSccPlatform(0);
  cfg.num_cores = cores;
  cfg.num_service = service;
  cfg.shmem_bytes = 1 << 20;
  cfg.seed = 1;
  return cfg;
}

TEST(DeploymentPlan, DedicatedSplitsRoles) {
  DeploymentPlan plan(48, 24, DeployStrategy::kDedicated);
  EXPECT_EQ(plan.num_service(), 24u);
  EXPECT_EQ(plan.num_app(), 24u);
  uint32_t service_count = 0;
  for (uint32_t c = 0; c < 48; ++c) {
    EXPECT_NE(plan.IsService(c), plan.IsApp(c));
    if (plan.IsService(c)) {
      ++service_count;
    }
  }
  EXPECT_EQ(service_count, 24u);
}

TEST(DeploymentPlan, ServiceCoresSpreadAcrossRange) {
  DeploymentPlan plan(48, 4, DeployStrategy::kDedicated);
  const auto& sc = plan.service_cores();
  ASSERT_EQ(sc.size(), 4u);
  // Evenly spread: 0, 12, 24, 36.
  EXPECT_EQ(sc[0], 0u);
  EXPECT_EQ(sc[1], 12u);
  EXPECT_EQ(sc[2], 24u);
  EXPECT_EQ(sc[3], 36u);
}

TEST(DeploymentPlan, PartitionRoundTrip) {
  DeploymentPlan plan(24, 8, DeployStrategy::kDedicated);
  for (uint32_t p = 0; p < plan.num_service(); ++p) {
    EXPECT_EQ(plan.PartitionOf(plan.ServiceCore(p)), p);
  }
}

TEST(DeploymentPlan, MultitaskedEveryCoreIsBoth) {
  DeploymentPlan plan(8, 0, DeployStrategy::kMultitasked);
  EXPECT_EQ(plan.num_service(), 8u);
  EXPECT_EQ(plan.num_app(), 8u);
  for (uint32_t c = 0; c < 8; ++c) {
    EXPECT_TRUE(plan.IsService(c));
    EXPECT_TRUE(plan.IsApp(c));
  }
  EXPECT_EQ(plan.PolledPeers(3), 7u);
}

TEST(DeploymentPlan, PolledPeerCounts) {
  DeploymentPlan plan(48, 24, DeployStrategy::kDedicated);
  EXPECT_EQ(plan.PolledPeersOfService(), 24u);
  EXPECT_EQ(plan.PolledPeersOfApp(), 24u);
  DeploymentPlan lopsided(48, 1, DeployStrategy::kDedicated);
  EXPECT_EQ(lopsided.PolledPeersOfService(), 47u);
  EXPECT_EQ(lopsided.PolledPeersOfApp(), 1u);
}

TEST(SimSystem, PingPongDeliversAndTakesTime) {
  SimSystem sys(SmallConfig());
  SimTime echo_rtt = 0;
  sys.SetCoreMain(1, [](CoreEnv& env) {
    Message m = env.Recv();
    ASSERT_EQ(m.type, MsgType::kEcho);
    Message rsp;
    rsp.type = MsgType::kEchoRsp;
    rsp.w0 = m.w0 + 1;
    env.Send(m.src, std::move(rsp));
  });
  sys.SetCoreMain(2, [&echo_rtt](CoreEnv& env) {
    const SimTime start = env.GlobalNow();
    Message m;
    m.type = MsgType::kEcho;
    m.w0 = 41;
    env.Send(1, std::move(m));
    Message rsp = env.Recv();
    ASSERT_EQ(rsp.type, MsgType::kEchoRsp);
    ASSERT_EQ(rsp.w0, 42u);
    echo_rtt = env.GlobalNow() - start;
  });
  sys.Run();
  // Round trip on SCC setting 0 should be in the microsecond range.
  EXPECT_GT(SimToMicros(echo_rtt), 1.0);
  EXPECT_LT(SimToMicros(echo_rtt), 20.0);
}

TEST(SimSystem, FifoPerSenderReceiverPair) {
  SimSystem sys(SmallConfig());
  std::vector<uint64_t> received;
  sys.SetCoreMain(0, [](CoreEnv& env) {
    for (uint64_t i = 0; i < 10; ++i) {
      Message m;
      m.type = MsgType::kApp;
      m.w0 = i;
      env.Send(3, std::move(m));
    }
  });
  sys.SetCoreMain(3, [&received](CoreEnv& env) {
    for (int i = 0; i < 10; ++i) {
      received.push_back(env.Recv().w0);
    }
  });
  sys.Run();
  ASSERT_EQ(received.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(received[i], i);
  }
}

TEST(SimSystem, TryRecvNonBlocking) {
  SimSystem sys(SmallConfig());
  bool empty_at_start = false;
  bool got_after_wait = false;
  sys.SetCoreMain(0, [](CoreEnv& env) {
    env.Compute(10000);
    Message m;
    m.type = MsgType::kApp;
    env.Send(1, std::move(m));
  });
  sys.SetCoreMain(1, [&](CoreEnv& env) {
    Message out;
    empty_at_start = !env.TryRecv(&out);
    env.Compute(1000000);  // long enough for the message to arrive
    got_after_wait = env.TryRecv(&out);
  });
  sys.Run();
  EXPECT_TRUE(empty_at_start);
  EXPECT_TRUE(got_after_wait);
}

TEST(SimSystem, ComputeAdvancesLocalTimeOnly) {
  SimSystem sys(SmallConfig());
  SimTime spent = 0;
  sys.SetCoreMain(0, [&spent](CoreEnv& env) {
    const SimTime start = env.GlobalNow();
    env.Compute(533);  // 533 cycles at 533 MHz = 1 us
    spent = env.GlobalNow() - start;
  });
  sys.Run();
  EXPECT_NEAR(SimToMicros(spent), 1.0, 0.01);
}

TEST(SimSystem, LocalClockSkewIsStable) {
  SimSystemConfig cfg = SmallConfig();
  cfg.clock_skew_max_us = 100.0;
  SimSystem sys(cfg);
  SimTime offset_a = 0;
  SimTime offset_b = 0;
  sys.SetCoreMain(0, [&](CoreEnv& env) {
    offset_a = env.LocalNow() - env.GlobalNow();
    env.Compute(100000);
    offset_b = env.LocalNow() - env.GlobalNow();
  });
  sys.Run();
  EXPECT_EQ(offset_a, offset_b);  // constant skew, no drift by default
}

TEST(SimSystem, ShmemReadWriteThroughEnv) {
  SimSystem sys(SmallConfig());
  uint64_t read_back = 0;
  sys.SetCoreMain(0, [](CoreEnv& env) { env.ShmemWrite(128, 99); });
  sys.SetCoreMain(1, [&read_back](CoreEnv& env) {
    env.Compute(1000000);
    read_back = env.ShmemRead(128);
  });
  sys.Run();
  EXPECT_EQ(read_back, 99u);
}

TEST(SimSystem, BarrierSynchronizesAllCores) {
  SimSystem sys(SmallConfig(4, 2));
  std::vector<SimTime> after(4, 0);
  for (uint32_t c = 0; c < 4; ++c) {
    sys.SetCoreMain(c, [c, &after](CoreEnv& env) {
      env.Compute((c + 1) * 100000);
      env.Barrier();
      after[c] = env.GlobalNow();
    });
  }
  sys.Run();
  for (uint32_t c = 1; c < 4; ++c) {
    EXPECT_EQ(after[c], after[0]);
  }
}

TEST(SimSystem, DeterministicAcrossRuns) {
  auto run_once = []() {
    SimSystem sys(SmallConfig());
    std::vector<uint64_t> log;
    sys.SetCoreMain(0, [&log](CoreEnv& env) {
      for (int i = 0; i < 20; ++i) {
        Message m;
        m.type = MsgType::kEcho;
        m.w0 = static_cast<uint64_t>(i);
        env.Send(1, std::move(m));
        Message rsp = env.Recv();
        log.push_back(env.GlobalNow());
        log.push_back(rsp.w0);
      }
    });
    sys.SetCoreMain(1, [](CoreEnv& env) {
      for (int i = 0; i < 20; ++i) {
        Message m = env.Recv();
        Message rsp;
        rsp.type = MsgType::kEchoRsp;
        rsp.w0 = m.w0 * 2;
        env.Send(m.src, std::move(rsp));
      }
    });
    sys.Run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimSystem, RejectsMoreCoresThanPlatform) {
  SimSystemConfig cfg = SmallConfig();
  cfg.num_cores = 64;  // SCC caps at 48
  cfg.num_service = 32;
  EXPECT_DEATH(SimSystem{cfg}, "more cores");
}

// ThreadSystem transport tests live in tests/thread_system_test.cc (a
// fiber-free suite the TSan CI job can run).

}  // namespace
}  // namespace tm2c

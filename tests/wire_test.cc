// Wire-format tests for the process backend (src/runtime/wire.{h,cc}):
// round-trips for every message kind, then adversarial sweeps mirroring
// the WAL torn-tail tests in tests/durability_test.cc — truncated,
// bit-flipped and duplicated frames must be rejected (or re-delivered)
// cleanly, with no crash and no partial apply. Also pins the value-only
// payload contract: a Message is fully described by the words the codec
// serializes, so no backend can smuggle a raw pointer across a process
// boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/durability/wal.h"  // Crc32: the shared framing discipline
#include "src/runtime/message.h"
#include "src/runtime/wire.h"

namespace tm2c {
namespace {

// Every message kind the protocol can put on a socket, with representative
// word and extra payloads (values chosen to exercise all 64 bits).
std::vector<std::pair<uint32_t, Message>> AllKindsCorpus() {
  std::vector<std::pair<uint32_t, Message>> corpus;
  uint32_t dst = 1;
  uint64_t salt = 0x9e3779b97f4a7c15ull;
  for (uint8_t t = 0; t <= kWireMaxMsgType; ++t) {
    Message m;
    m.type = static_cast<MsgType>(t);
    m.src = 100 + t;
    m.w0 = salt * (t + 1);
    m.w1 = ~m.w0;
    m.w2 = m.w0 >> 7;
    m.w3 = m.w0 << 9;
    // Vary the extra length across the corpus: empty, short, batch-sized.
    const uint32_t n = t % 3 == 0 ? 0 : (t % 3 == 1 ? 3 : kMaxBatchEntries);
    for (uint32_t i = 0; i < n; ++i) {
      m.extra.push_back(salt * (i + 1) ^ (uint64_t{t} << 56));
    }
    corpus.emplace_back(dst++, std::move(m));
  }
  return corpus;
}

void ExpectEqual(const Message& a, const Message& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.src, b.src);
  EXPECT_EQ(a.w0, b.w0);
  EXPECT_EQ(a.w1, b.w1);
  EXPECT_EQ(a.w2, b.w2);
  EXPECT_EQ(a.w3, b.w3);
  EXPECT_EQ(a.extra, b.extra);
}

TEST(Wire, RoundTripsEveryMessageKind) {
  for (const auto& [dst, msg] : AllKindsCorpus()) {
    const std::vector<uint8_t> bytes = EncodeMessage(dst, msg);
    ASSERT_GE(bytes.size(), kWireMinFrameBytes);
    uint32_t got_dst = 0;
    Message got;
    uint64_t consumed = 0;
    ASSERT_EQ(DecodeFrame(bytes, &got_dst, &got, &consumed), WireDecodeStatus::kOk)
        << "type " << static_cast<int>(msg.type);
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(got_dst, dst);
    ExpectEqual(got, msg);
  }
}

TEST(Wire, HostDstRoundTrips) {
  Message m;
  m.type = MsgType::kTraceWalFlush;
  m.src = 3;
  m.w0 = 17;
  m.w1 = 2048;
  const std::vector<uint8_t> bytes = EncodeMessage(kWireHostDst, m);
  uint32_t dst = 0;
  Message got;
  uint64_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes, &dst, &got, &consumed), WireDecodeStatus::kOk);
  EXPECT_EQ(dst, kWireHostDst);
  ExpectEqual(got, m);
}

// The stream decoder reassembles frames from arbitrary chunkings: feeding
// one byte at a time must yield exactly the encoded sequence, in order.
TEST(Wire, StreamingDecoderHandlesArbitraryChunking) {
  const auto corpus = AllKindsCorpus();
  std::vector<uint8_t> stream;
  for (const auto& [dst, msg] : corpus) {
    EncodeFrame(dst, msg, &stream);
  }
  WireDecoder decoder;
  size_t decoded = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    decoder.Feed(&stream[i], 1);
    uint32_t dst = 0;
    Message msg;
    while (decoder.TryNext(&dst, &msg) == WireDecodeStatus::kOk) {
      ASSERT_LT(decoded, corpus.size());
      EXPECT_EQ(dst, corpus[decoded].first);
      ExpectEqual(msg, corpus[decoded].second);
      ++decoded;
    }
    EXPECT_FALSE(decoder.corrupt());
  }
  EXPECT_EQ(decoded, corpus.size());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

// Truncation sweep, the torn-tail analogue: every strict prefix of a frame
// is kNeedMore — never corruption, never a partial message.
TEST(Wire, TruncatedFrameIsNeedMoreAtEveryCut) {
  Message m;
  m.type = MsgType::kBatchAcquire;
  m.src = 5;
  m.w0 = (uint64_t{42} << kBatchReqIdShift) | kBatchFlagCommit;
  m.w1 = 7;
  m.w3 = 0b1011;
  m.extra = {0x1000, 0x2000, 0x3000, 0x4000};
  const std::vector<uint8_t> bytes = EncodeMessage(2, m);
  for (uint64_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> torn(bytes.begin(), bytes.begin() + cut);
    uint32_t dst = 0;
    Message got;
    uint64_t consumed = 0;
    EXPECT_EQ(DecodeFrame(torn, &dst, &got, &consumed), WireDecodeStatus::kNeedMore)
        << "cut at " << cut;
  }
}

// Bit-flip sweep, the CRC-corruption analogue: flipping one bit anywhere in
// a frame must be rejected as kCorrupt (or, for length-field flips that
// enlarge the frame, held as kNeedMore — still never a wrong message).
TEST(Wire, BitFlipAnywhereIsCaught) {
  Message m;
  m.type = MsgType::kCommitLog;
  m.src = 9;
  m.w1 = (uint64_t{9} << 32) | 4;
  m.extra = {0x100, 42, 0x108, 43};
  const std::vector<uint8_t> clean = EncodeMessage(3, m);
  for (uint64_t off = 0; off < clean.size(); ++off) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::vector<uint8_t> bytes = clean;
      bytes[off] ^= static_cast<uint8_t>(1u << bit);
      uint32_t dst = 0;
      Message got;
      uint64_t consumed = 0;
      const WireDecodeStatus status = DecodeFrame(bytes, &dst, &got, &consumed);
      EXPECT_NE(status, WireDecodeStatus::kOk) << "offset " << off << " bit " << bit;
      // Only a flip in the 4-byte length prefix may read as a longer,
      // still-incomplete frame; everywhere else the CRC must bite now.
      if (status == WireDecodeStatus::kNeedMore) {
        EXPECT_LT(off, 4u) << "offset " << off << " bit " << bit;
      }
    }
  }
}

// A bit-flipped frame in the middle of a stream poisons the decoder: the
// prefix is delivered, nothing after the corruption is, and the decoder
// stays kCorrupt (the connection-drop signal) instead of resyncing onto
// garbage frame boundaries.
TEST(Wire, CorruptionMidStreamPoisonsWithoutPartialApply) {
  Message a;
  a.type = MsgType::kLockGranted;
  a.w0 = 0x100;
  Message b;
  b.type = MsgType::kLockConflict;
  b.w0 = 0x108;
  b.w2 = static_cast<uint64_t>(ConflictKind::kWriteAfterWrite);
  std::vector<uint8_t> stream;
  EncodeFrame(1, a, &stream);
  const uint64_t second_frame_start = stream.size();
  EncodeFrame(1, b, &stream);
  stream[second_frame_start + kWireFrameOverheadBytes + 3] ^= 0x40;

  WireDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  uint32_t dst = 0;
  Message got;
  ASSERT_EQ(decoder.TryNext(&dst, &got), WireDecodeStatus::kOk);
  ExpectEqual(got, a);
  EXPECT_EQ(decoder.TryNext(&dst, &got), WireDecodeStatus::kCorrupt);
  EXPECT_TRUE(decoder.corrupt());
  EXPECT_EQ(decoder.TryNext(&dst, &got), WireDecodeStatus::kCorrupt);
  EXPECT_EQ(decoder.frames_decoded(), 1u);
}

// Duplicated frames decode as two identical messages — the transport does
// not deduplicate (retransmission after a reconnect legitimately repeats
// kCommitLog frames; the service's recovered-commit table handles it).
TEST(Wire, DuplicatedFrameDecodesTwice) {
  Message m;
  m.type = MsgType::kCommitLog;
  m.src = 4;
  m.w1 = (uint64_t{4} << 32) | 9;
  m.extra = {0x200, 77};
  std::vector<uint8_t> stream;
  EncodeFrame(6, m, &stream);
  EncodeFrame(6, m, &stream);
  WireDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  for (int i = 0; i < 2; ++i) {
    uint32_t dst = 0;
    Message got;
    ASSERT_EQ(decoder.TryNext(&dst, &got), WireDecodeStatus::kOk) << i;
    EXPECT_EQ(dst, 6u);
    ExpectEqual(got, m);
  }
  uint32_t dst = 0;
  Message got;
  EXPECT_EQ(decoder.TryNext(&dst, &got), WireDecodeStatus::kNeedMore);
}

// Structurally impossible frames: zero/short/misaligned lengths, an extra
// count disagreeing with the length, an unknown message type. All kCorrupt.
TEST(Wire, ImpossibleFramesAreCorrupt) {
  Message m;
  m.type = MsgType::kEcho;
  const std::vector<uint8_t> clean = EncodeMessage(1, m);

  auto expect_corrupt = [](std::vector<uint8_t> bytes, const char* what) {
    uint32_t dst = 0;
    Message got;
    uint64_t consumed = 0;
    EXPECT_EQ(DecodeFrame(bytes, &dst, &got, &consumed), WireDecodeStatus::kCorrupt)
        << what;
  };

  std::vector<uint8_t> zero_len = clean;
  zero_len[0] = zero_len[1] = zero_len[2] = zero_len[3] = 0;
  expect_corrupt(zero_len, "zero length");

  std::vector<uint8_t> short_len = clean;
  short_len[0] = 8;  // one word: below the fixed prologue
  short_len[1] = short_len[2] = short_len[3] = 0;
  expect_corrupt(short_len, "below-minimum length");

  std::vector<uint8_t> misaligned = clean;
  misaligned[0] = static_cast<uint8_t>(kWireFixedPayloadWords * 8 + 4);
  expect_corrupt(misaligned, "non-word length");

  std::vector<uint8_t> huge = clean;
  huge[0] = 0xFF;
  huge[1] = 0xFF;
  huge[2] = 0xFF;
  huge[3] = 0x7F;
  expect_corrupt(huge, "length beyond the extra-word cap");

  // Patch the type byte past the last known MsgType; the CRC is recomputed
  // so only the type check can reject it.
  {
    std::vector<uint8_t> unknown_type;
    Message bad = m;
    EncodeFrame(1, bad, &unknown_type);
    unknown_type[kWireFrameOverheadBytes] = kWireMaxMsgType + 1;
    const uint64_t payload_len = unknown_type.size() - kWireFrameOverheadBytes;
    const uint32_t crc = Crc32(unknown_type.data() + kWireFrameOverheadBytes, payload_len);
    unknown_type[4] = static_cast<uint8_t>(crc);
    unknown_type[5] = static_cast<uint8_t>(crc >> 8);
    unknown_type[6] = static_cast<uint8_t>(crc >> 16);
    unknown_type[7] = static_cast<uint8_t>(crc >> 24);
    expect_corrupt(unknown_type, "unknown message type");
  }

  // Extra count word disagreeing with the frame length, CRC made valid.
  {
    std::vector<uint8_t> bad_count = EncodeMessage(1, m);
    bad_count[kWireFrameOverheadBytes + 6 * 8] = 5;
    const uint64_t payload_len = bad_count.size() - kWireFrameOverheadBytes;
    const uint32_t crc = Crc32(bad_count.data() + kWireFrameOverheadBytes, payload_len);
    bad_count[4] = static_cast<uint8_t>(crc);
    bad_count[5] = static_cast<uint8_t>(crc >> 8);
    bad_count[6] = static_cast<uint8_t>(crc >> 16);
    bad_count[7] = static_cast<uint8_t>(crc >> 24);
    expect_corrupt(bad_count, "extra count mismatch");
  }
}

// The satellite-4 pin: a Message is exactly the seven value members the
// codec serializes. If anyone adds a field (say, a raw pointer payload for
// an in-process fast path), this binding stops compiling and forces the
// wire format — and every cross-process assumption — to be revisited.
TEST(Wire, MessageIsValuesOnly) {
  Message m;
  m.type = MsgType::kApp;
  m.src = 1;
  m.extra = {0xdeadbeefull};
  auto& [type, src, w0, w1, w2, w3, extra] = m;
  EXPECT_EQ(type, MsgType::kApp);
  EXPECT_EQ(src, 1u);
  EXPECT_EQ(w0, 0u);
  EXPECT_EQ(w1, 0u);
  EXPECT_EQ(w2, 0u);
  EXPECT_EQ(w3, 0u);
  EXPECT_EQ(extra.size(), 1u);
  // And the members themselves are integral words or word vectors — the
  // codec can carry everything; nothing references the sender's address
  // space.
  static_assert(std::is_same_v<decltype(m.w0), uint64_t>);
  static_assert(std::is_same_v<decltype(m.extra), std::vector<uint64_t>>);
}

}  // namespace
}  // namespace tm2c

// Tests for the durability layer (src/durability/) and the crash-restart
// oracle on top of it: WAL framing edge cases (torn tails, CRC corruption,
// empty logs, file round trips), partition log + checkpoint mechanics,
// KvStore recovery determinism, group-commit flush accounting, planted
// write-ahead-rule violations, and small crash-recovery chaos sweeps.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "src/apps/kvstore.h"
#include "src/check/checker.h"
#include "src/check/crash.h"
#include "src/durability/partition_log.h"
#include "src/durability/wal.h"
#include "src/tm/tm_system.h"

namespace tm2c {
namespace {

// ---------------------------------------------------------------------------
// WAL framing
// ---------------------------------------------------------------------------

TEST(Wal, EmptyLogIsCleanAndHoldsOnlyTheHeader) {
  Wal wal(Wal::Options{});
  EXPECT_EQ(wal.image().size(), kWalHeaderBytes);
  EXPECT_EQ(wal.durable_bytes(), kWalHeaderBytes);
  EXPECT_EQ(wal.appended_records(), 0u);
  const WalReadResult r = ReadWal(wal.image());
  EXPECT_TRUE(r.clean());
  EXPECT_FALSE(r.torn_tail);
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.valid_bytes, kWalHeaderBytes);
}

TEST(Wal, MissingOrWrongMagicIsBadMagic) {
  EXPECT_TRUE(ReadWal({}).bad_magic);
  EXPECT_TRUE(ReadWal({'T', 'M'}).bad_magic);
  std::vector<uint8_t> wrong(kWalHeaderBytes, 0x42);
  EXPECT_TRUE(ReadWal(wrong).bad_magic);
}

TEST(Wal, AppendedRecordsReadBackInOrder) {
  Wal wal(Wal::Options{});
  const uint64_t a[] = {1, 2, 3};
  const uint64_t b[] = {0xdeadbeefcafef00dull};
  EXPECT_EQ(wal.Append(a, 3), 0u);
  EXPECT_EQ(wal.Append(b, 1), 1u);
  EXPECT_EQ(wal.unflushed_records(), 2u);
  wal.Flush();
  EXPECT_EQ(wal.unflushed_records(), 0u);
  EXPECT_EQ(wal.durable_bytes(), wal.image().size());

  const WalReadResult r = ReadWal(wal.image());
  ASSERT_TRUE(r.clean());
  EXPECT_FALSE(r.torn_tail);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0].payload, (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(r.records[1].payload, (std::vector<uint64_t>{0xdeadbeefcafef00dull}));
  EXPECT_EQ(r.valid_bytes, wal.image().size());
}

TEST(Wal, TornFinalRecordKeepsThePrefix) {
  Wal wal(Wal::Options{});
  const uint64_t a[] = {10, 11};
  const uint64_t b[] = {20, 21, 22};
  wal.Append(a, 2);
  const uint64_t prefix_bytes = wal.image().size();
  wal.Append(b, 3);

  // Cut the image anywhere strictly inside the second frame: incomplete
  // header and incomplete payload are both torn tails, never corruption.
  for (uint64_t cut = prefix_bytes + 1; cut < wal.image().size(); ++cut) {
    std::vector<uint8_t> torn(wal.image().begin(), wal.image().begin() + cut);
    const WalReadResult r = ReadWal(torn);
    EXPECT_TRUE(r.clean()) << "cut at " << cut;
    EXPECT_TRUE(r.torn_tail) << "cut at " << cut;
    ASSERT_EQ(r.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(r.records[0].payload, (std::vector<uint64_t>{10, 11}));
    EXPECT_EQ(r.valid_bytes, prefix_bytes) << "cut at " << cut;
  }
}

TEST(Wal, CorruptByteAnywhereInAFrameIsCaught) {
  Wal wal(Wal::Options{});
  const uint64_t a[] = {10, 11};
  const uint64_t b[] = {20};
  wal.Append(a, 2);
  wal.Append(b, 1);
  const uint64_t first_frame_end = kWalHeaderBytes + kWalFrameOverheadBytes + 2 * 8;

  // Flip one bit at a sweep of offsets inside the first frame: the scan
  // must stop there (crc/length mismatch) and keep zero records.
  for (uint64_t off = kWalHeaderBytes; off < first_frame_end; off += 3) {
    std::vector<uint8_t> img = wal.image();
    img[off] ^= 0x40;
    const WalReadResult r = ReadWal(img);
    EXPECT_TRUE(r.bad_magic || r.crc_mismatch || r.torn_tail) << "offset " << off;
    if (r.crc_mismatch) {
      EXPECT_TRUE(r.records.empty()) << "offset " << off;
      EXPECT_EQ(r.valid_bytes, kWalHeaderBytes) << "offset " << off;
    }
  }

  // A zero or non-word-multiple length field is corruption, not a tear.
  std::vector<uint8_t> img = wal.image();
  img[kWalHeaderBytes] = 0;
  img[kWalHeaderBytes + 1] = 0;
  img[kWalHeaderBytes + 2] = 0;
  img[kWalHeaderBytes + 3] = 0;
  EXPECT_TRUE(ReadWal(img).crc_mismatch);
}

TEST(Wal, FileBackedLogRoundTripsThroughFsync) {
  const std::string path = testing::TempDir() + "/tm2c_wal_test.log";
  Wal::Options opts;
  opts.path = path;
  opts.fsync_on_flush = true;
  Wal wal(opts);
  const uint64_t payload[] = {7, 8, 9};
  wal.Append(payload, 3);
  wal.Flush();

  const WalReadResult r = ReadWalFile(path);
  ASSERT_TRUE(r.clean());
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].payload, (std::vector<uint64_t>{7, 8, 9}));
  EXPECT_TRUE(ReadWalFile(path + ".does-not-exist").bad_magic);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Partition log + checkpoints
// ---------------------------------------------------------------------------

TEST(PartitionLog, CommitRecordRoundTripAndMalformedPayloads) {
  PartitionDurability::Options opts;
  PartitionDurability dur(0, opts);
  dur.SealInitialCheckpoint();
  dur.LogCommit(3, 17, {{0x100, 42}, {0x108, 43}});
  dur.Flush();

  const WalReadResult r = ReadWal(dur.wal().image());
  ASSERT_TRUE(r.clean());
  ASSERT_EQ(r.records.size(), 1u);
  CommitRecord rec;
  ASSERT_TRUE(ParseCommitRecord(r.records[0], &rec));
  EXPECT_EQ(rec.core, 3u);
  EXPECT_EQ(rec.epoch, 17u);
  EXPECT_EQ(rec.pairs,
            (std::vector<std::pair<uint64_t, uint64_t>>{{0x100, 42}, {0x108, 43}}));

  CommitRecord bad;
  EXPECT_FALSE(ParseCommitRecord(WalRecord{{1, 2}}, &bad));        // too short
  EXPECT_FALSE(ParseCommitRecord(WalRecord{{1, 2, 2, 5, 6}}, &bad));  // n mismatch
}

TEST(PartitionLog, CheckpointCadenceAndShadowContents) {
  PartitionDurability::Options opts;
  opts.checkpoint_every_records = 2;
  PartitionDurability dur(1, opts);
  dur.CaptureInitial(0x100, 7);
  dur.CaptureInitial(0x108, 8);
  dur.SealInitialCheckpoint();
  ASSERT_EQ(dur.checkpoints().size(), 1u);
  EXPECT_EQ(dur.checkpoints()[0].records_covered, 0u);
  EXPECT_EQ(dur.checkpoints()[0].pairs,
            (std::vector<std::pair<uint64_t, uint64_t>>{{0x100, 7}, {0x108, 8}}));

  EXPECT_FALSE(dur.LogCommit(0, 1, {{0x100, 70}}));
  EXPECT_TRUE(dur.LogCommit(1, 1, {{0x108, 80}}));  // 2nd record: due
  EXPECT_EQ(dur.Flush(), 2u);
  dur.TakeCheckpoint();
  ASSERT_EQ(dur.checkpoints().size(), 2u);
  const CheckpointImage& ck = dur.checkpoints()[1];
  EXPECT_EQ(ck.index, 1u);
  EXPECT_EQ(ck.records_covered, 2u);
  EXPECT_EQ(ck.pairs, (std::vector<std::pair<uint64_t, uint64_t>>{{0x100, 70}, {0x108, 80}}));
  EXPECT_EQ(dur.Flush(), 0u);  // nothing new: no event, no progress
}

// ---------------------------------------------------------------------------
// KvStore recovery
// ---------------------------------------------------------------------------

class RecoveryFixture : public testing::Test {
 protected:
  RecoveryFixture() {
    TmSystemConfig cfg;
    cfg.sim.platform = PlatformByName("scc");
    cfg.sim.num_cores = 4;
    cfg.sim.num_service = 2;
    cfg.sim.shmem_bytes = 2 << 20;
    sys_ = std::make_unique<TmSystem>(cfg);
    KvStoreConfig kv;
    kv.buckets_per_partition = 4;
    kv.capacity_per_partition = 32;
    store_ = std::make_unique<KvStore>(sys_->allocator(), sys_->shmem(), sys_->address_map(),
                                       sys_->deployment(), kv);
  }

  std::vector<uint64_t> SlabWords(uint32_t p) {
    const auto [base, bytes] = store_->SlabRange(p);
    std::vector<uint64_t> words;
    for (uint64_t addr = base; addr < base + bytes; addr += kWordBytes) {
      words.push_back(sys_->shmem().LoadWord(addr));
    }
    return words;
  }

  std::vector<std::pair<uint64_t, uint64_t>> SlabPairs(uint32_t p) {
    const auto [base, bytes] = store_->SlabRange(p);
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    for (uint64_t addr = base; addr < base + bytes; addr += kWordBytes) {
      pairs.emplace_back(addr, sys_->shmem().LoadWord(addr));
    }
    return pairs;
  }

  std::unique_ptr<TmSystem> sys_;
  std::unique_ptr<KvStore> store_;
};

TEST_F(RecoveryFixture, RecoverTwiceIsByteIdenticalAndRebuildsThePool) {
  for (uint64_t key = 1; key <= 12; ++key) {
    const uint64_t value = key * 1000 + 7;
    store_->HostPut(key, &value);
  }
  for (uint32_t p = 0; p < store_->num_partitions(); ++p) {
    const auto checkpoint = SlabPairs(p);
    const uint64_t in_use_before = store_->NodesInUse(p);
    const auto words_before = SlabWords(p);

    // Clobber, recover, compare.
    const auto [base, bytes] = store_->SlabRange(p);
    for (uint64_t addr = base; addr < base + bytes; addr += kWordBytes) {
      sys_->shmem().StoreWord(addr, 0xDEADDEADDEADDEADull);
    }
    store_->RecoverPartition(p, checkpoint, {});
    EXPECT_EQ(SlabWords(p), words_before);
    EXPECT_EQ(store_->NodesInUse(p), in_use_before);

    // Recover again from the same inputs: byte-identical (idempotent).
    store_->RecoverPartition(p, checkpoint, {});
    EXPECT_EQ(SlabWords(p), words_before);
    EXPECT_EQ(store_->NodesInUse(p), in_use_before);

    // Replaying the same pairs as a log suffix is an idempotent overlay.
    store_->RecoverPartition(p, checkpoint, checkpoint);
    EXPECT_EQ(SlabWords(p), words_before);
  }
  for (uint64_t key = 1; key <= 12; ++key) {
    uint64_t value = 0;
    ASSERT_TRUE(store_->HostGet(key, &value));
    EXPECT_EQ(value, key * 1000 + 7);
  }
}

// ---------------------------------------------------------------------------
// Checked runs with durability on
// ---------------------------------------------------------------------------

uint64_t CountEvents(const History& h, History::DurabilityEvent::Kind kind) {
  uint64_t n = 0;
  for (const auto& ev : h.durability_events()) {
    n += ev.kind == kind ? 1 : 0;
  }
  return n;
}

CheckRunConfig DurableKvConfig(uint64_t seed) {
  CheckRunConfig cfg;
  cfg.workload = CheckWorkload::kKv;
  cfg.durability = DurabilityMode::kBuffered;
  cfg.seed = seed;
  return cfg;
}

TEST(DurableRuns, GroupCommitStrictlyCutsFlushes) {
  CheckRunConfig cfg = DurableKvConfig(5);
  cfg.group_commit_txs = 1;
  const CheckRunResult per_tx = RunCheckedWorkload(cfg);
  ASSERT_TRUE(per_tx.report.ok()) << per_tx.report.Summary();

  cfg.group_commit_txs = 8;
  const CheckRunResult grouped = RunCheckedWorkload(cfg);
  ASSERT_TRUE(grouped.report.ok()) << grouped.report.Summary();

  const uint64_t appends1 = CountEvents(per_tx.history, History::DurabilityEvent::Kind::kAppend);
  const uint64_t appendsG = CountEvents(grouped.history, History::DurabilityEvent::Kind::kAppend);
  const uint64_t flushes1 = CountEvents(per_tx.history, History::DurabilityEvent::Kind::kFlush);
  const uint64_t flushesG = CountEvents(grouped.history, History::DurabilityEvent::Kind::kFlush);
  ASSERT_GT(appends1, 0u);
  ASSERT_GT(appendsG, 0u);
  // Per-tx commit flushes once per record; the same workload under group
  // commit flushes strictly less often.
  EXPECT_EQ(flushes1, appends1);
  EXPECT_LT(flushesG, flushes1);
}

TEST(DurableRuns, DurabilityOffRecordsNoEvents) {
  CheckRunConfig cfg;
  cfg.workload = CheckWorkload::kKv;
  cfg.seed = 3;
  const CheckRunResult result = RunCheckedWorkload(cfg);
  ASSERT_TRUE(result.report.ok()) << result.report.Summary();
  EXPECT_TRUE(result.history.durability_events().empty());
}

TEST(DurableRuns, CrashSweepRecoversCleanly) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    CheckRunConfig cfg = DurableKvConfig(seed);
    cfg.crash = true;
    cfg.group_commit_txs = 4;
    cfg.checkpoint_every_records = 8;
    const CheckRunResult result = RunCheckedWorkload(cfg);
    EXPECT_TRUE(result.report.ok()) << "seed " << seed << ": " << result.report.Summary();
  }
}

TEST(DurableRuns, CrashSweepRecoversCleanlyUnderFsync) {
  CheckRunConfig cfg = DurableKvConfig(2);
  cfg.crash = true;
  cfg.durability = DurabilityMode::kFsync;
  const CheckRunResult result = RunCheckedWorkload(cfg);
  EXPECT_TRUE(result.report.ok()) << result.report.Summary();
}

TEST(DurableRuns, AckBeforeLogFlushIsFlaggedOnEverySeed) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    CheckRunConfig cfg = DurableKvConfig(seed);
    cfg.crash = true;
    cfg.group_commit_txs = 4;  // deferred acks are the whole point of the fault
    cfg.fault = FaultMode::kAckBeforeLogFlush;
    const CheckRunResult result = RunCheckedWorkload(cfg);
    ASSERT_FALSE(result.report.ok()) << "seed " << seed;
    bool write_ahead_flagged = false;
    for (const OracleViolation& v : result.report.violations) {
      write_ahead_flagged |= v.kind == "ack-before-durable";
    }
    EXPECT_TRUE(write_ahead_flagged)
        << "seed " << seed << ": " << result.report.Summary();
  }
}

TEST(DurableRuns, HistoryJsonCarriesDurabilityEvents) {
  CheckRunConfig cfg = DurableKvConfig(1);
  cfg.checkpoint_every_records = 8;
  const CheckRunResult result = RunCheckedWorkload(cfg);
  ASSERT_TRUE(result.report.ok()) << result.report.Summary();
  const std::string json = result.history.ToJson();
  EXPECT_NE(json.find("\"durability_events\""), std::string::npos);
  EXPECT_NE(json.find("\"flush\""), std::string::npos);
  EXPECT_NE(json.find("\"append\""), std::string::npos);
}

// AnalyzeCrashCut on a hand-built event sequence: the watermark must track
// flushes and checkpoints monotonically, per partition.
TEST(CrashCut, WatermarksFollowFlushesAndCheckpoints) {
  History h;
  h.OnWalAppend(0, 1, 1, 0, {{0x10, 1}});       // seq 1
  h.OnWalFlush(0, 1, 40);                        // seq 2
  h.OnCommitLogAck(0, 1, 1, 0);                  // seq 3
  h.OnWalAppend(1, 2, 1, 0, {{0x20, 2}});        // seq 4
  h.OnWalAppend(0, 3, 1, 1, {{0x18, 3}});        // seq 5
  h.OnWalFlush(0, 2, 72);                        // seq 6
  h.OnCheckpoint(0, 1, 2);                       // seq 7

  const CrashCutReport early = AnalyzeCrashCut(h, 2, 2);
  EXPECT_EQ(early.partitions[0].durable_records, 1u);
  EXPECT_EQ(early.partitions[0].durable_bytes, 40u);
  EXPECT_EQ(early.partitions[1].durable_records, 0u);
  EXPECT_EQ(early.partitions[1].durable_bytes, kWalHeaderBytes);

  const CrashCutReport late = AnalyzeCrashCut(h, 7, 2);
  EXPECT_EQ(late.partitions[0].durable_records, 2u);
  EXPECT_EQ(late.partitions[0].checkpoint_index, 1u);
  EXPECT_EQ(late.partitions[0].checkpoint_records, 2u);
  EXPECT_EQ(late.partitions[1].durable_records, 0u);
}

}  // namespace
}  // namespace tm2c

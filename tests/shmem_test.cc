#include <gtest/gtest.h>

#include <set>

#include "src/shmem/allocator.h"
#include "src/shmem/shared_memory.h"

namespace tm2c {
namespace {

TEST(SharedMemory, LoadStoreRoundTrip) {
  SharedMemory mem(4096);
  mem.StoreWord(0, 42);
  mem.StoreWord(4088, 7);
  EXPECT_EQ(mem.LoadWord(0), 42u);
  EXPECT_EQ(mem.LoadWord(4088), 7u);
  EXPECT_EQ(mem.LoadWord(8), 0u);  // zero-initialized
}

TEST(SharedMemory, RoundsSizeUpToWords) {
  SharedMemory mem(13);
  EXPECT_EQ(mem.size_bytes(), 16u);
}

TEST(MemController, QueueingDelaysBackToBackAccesses) {
  const PlatformDesc p = MakeSccPlatform(0);
  const LatencyModel lat(p);
  MemControllerModel mc(p, 1 << 20);
  // Two accesses to the same controller at the same instant: the second
  // completes later because the controller is occupied.
  const SimTime t1 = mc.Access(0, 0, 0, lat);
  const SimTime t2 = mc.Access(0, 1, 8, lat);
  EXPECT_GT(t2, t1);
}

TEST(MemController, DistinctControllersDoNotInterfere) {
  const PlatformDesc p = MakeSccPlatform(0);
  const LatencyModel lat(p);
  const uint64_t bytes = 1 << 20;
  MemControllerModel mc(p, bytes);
  const SimTime t1 = mc.Access(0, 0, 0, lat);
  MemControllerModel fresh(p, bytes);
  // Same-time access to a different controller's region is not queued
  // behind the first.
  const SimTime t2 = mc.Access(0, 0, bytes / 2, lat);
  const SimTime t2_fresh = fresh.Access(0, 0, bytes / 2, lat);
  EXPECT_EQ(t2, t2_fresh);
  (void)t1;
}

class AllocatorTest : public ::testing::Test {
 protected:
  AllocatorTest()
      : mem_(1 << 20), topo_(MakeSccPlatform(0)), alloc_(&mem_, topo_) {}

  SharedMemory mem_;
  Topology topo_;
  ShmAllocator alloc_;
};

TEST_F(AllocatorTest, AllocReturnsAlignedDistinctBlocks) {
  std::set<uint64_t> addrs;
  for (int i = 0; i < 100; ++i) {
    const uint64_t a = alloc_.Alloc(24, /*core=*/0);
    EXPECT_EQ(a % kWordBytes, 0u);
    EXPECT_TRUE(addrs.insert(a).second) << "duplicate address";
  }
  EXPECT_EQ(alloc_.bytes_in_use(), 100u * 24);
}

TEST_F(AllocatorTest, FreeMakesMemoryReusable) {
  const uint64_t a = alloc_.Alloc(64, 0);
  alloc_.Free(a);
  EXPECT_EQ(alloc_.bytes_in_use(), 0u);
  const uint64_t b = alloc_.Alloc(64, 0);
  EXPECT_EQ(a, b);  // first-fit reuses the freed block
}

TEST_F(AllocatorTest, CoalescingAllowsLargeRealloc) {
  const uint64_t a = alloc_.Alloc(64, 0);
  const uint64_t b = alloc_.Alloc(64, 0);
  const uint64_t c = alloc_.Alloc(64, 0);
  alloc_.Free(a);
  alloc_.Free(c);
  alloc_.Free(b);  // middle free coalesces with both neighbours
  const uint64_t big = alloc_.Alloc(192, 0);
  EXPECT_EQ(big, a);
}

TEST_F(AllocatorTest, GlobalAllocStartsInRegionZero) {
  const uint64_t a = alloc_.AllocGlobal(128);
  EXPECT_EQ(topo_.MemControllerOf(a, mem_.size_bytes()), 0u);
}

TEST_F(AllocatorTest, CoreLocalAllocPrefersClosestController) {
  // Core 47 sits at tile (5,3) next to controller 3's corner.
  const uint64_t a = alloc_.Alloc(128, /*core=*/47);
  EXPECT_EQ(topo_.MemControllerOf(a, mem_.size_bytes()), 3u);
  // Core 0 sits at tile (0,0) next to controller 0.
  const uint64_t b = alloc_.Alloc(128, /*core=*/0);
  EXPECT_EQ(topo_.MemControllerOf(b, mem_.size_bytes()), 0u);
}

TEST_F(AllocatorTest, FallsBackWhenPreferredRegionFull) {
  // Exhaust region 3 (core 47's preferred region).
  const uint64_t region_bytes = mem_.size_bytes() / 4;
  uint64_t allocated = 0;
  while (allocated + 4096 <= region_bytes) {
    alloc_.Alloc(4096, 47);
    allocated += 4096;
  }
  // The next allocation must succeed from another region.
  const uint64_t a = alloc_.Alloc(4096, 47);
  EXPECT_NE(topo_.MemControllerOf(a, mem_.size_bytes()), 3u);
}

TEST(AllocatorDeath, DoubleFreeIsChecked) {
  SharedMemory mem(1 << 16);
  Topology topo(MakeSccPlatform(0));
  ShmAllocator alloc(&mem, topo);
  const uint64_t a = alloc.Alloc(32, 0);
  alloc.Free(a);
  EXPECT_DEATH(alloc.Free(a), "unknown or already-freed");
}

}  // namespace
}  // namespace tm2c

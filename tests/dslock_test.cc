#include <gtest/gtest.h>

#include "src/dslock/lock_table.h"

namespace tm2c {
namespace {

TxInfo Tx1(uint32_t core, uint64_t metric = 0) {
  TxInfo info;
  info.core = core;
  info.epoch = (static_cast<uint64_t>(core) << 32) | 1;
  info.metric = metric;
  return info;
}

class LockTableTest : public ::testing::Test {
 protected:
  LockTableTest() : faircm_(MakeContentionManager(CmKind::kFairCm)),
                    nocm_(MakeContentionManager(CmKind::kNone)) {}

  LockTable table_;
  std::unique_ptr<ContentionManager> faircm_;
  std::unique_ptr<ContentionManager> nocm_;
};

TEST_F(LockTableTest, ReadLockGrantedOnFreeObject) {
  const auto r = table_.ReadLock(Tx1(1), 0x100, *faircm_);
  EXPECT_EQ(r.refused, ConflictKind::kNone);
  EXPECT_TRUE(r.victims.empty());
  EXPECT_TRUE(table_.HasReader(0x100, 1));
  EXPECT_TRUE(table_.CheckInvariants());
}

TEST_F(LockTableTest, MultipleReadersShareTheLock) {
  for (uint32_t core = 1; core <= 5; ++core) {
    EXPECT_EQ(table_.ReadLock(Tx1(core), 0x100, *faircm_).refused, ConflictKind::kNone);
  }
  for (uint32_t core = 1; core <= 5; ++core) {
    EXPECT_TRUE(table_.HasReader(0x100, core));
  }
  EXPECT_TRUE(table_.CheckInvariants());
}

TEST_F(LockTableTest, WriteLockGrantedOnFreeObject) {
  const auto r = table_.WriteLock(Tx1(2), 0x200, *faircm_);
  EXPECT_EQ(r.refused, ConflictKind::kNone);
  uint32_t writer = 0;
  EXPECT_TRUE(table_.HasWriter(0x200, &writer));
  EXPECT_EQ(writer, 2u);
}

TEST_F(LockTableTest, RawConflictRequesterLoses) {
  // Writer core 1 has metric 5; reader core 2 with worse metric 9 loses.
  ASSERT_EQ(table_.WriteLock(Tx1(1, 5), 0x300, *faircm_).refused, ConflictKind::kNone);
  const auto r = table_.ReadLock(Tx1(2, 9), 0x300, *faircm_);
  EXPECT_EQ(r.refused, ConflictKind::kReadAfterWrite);
  EXPECT_TRUE(r.victims.empty());
  EXPECT_TRUE(table_.HasWriter(0x300, nullptr));  // writer keeps the lock
}

TEST_F(LockTableTest, RawConflictRequesterWinsRevokesWriter) {
  ASSERT_EQ(table_.WriteLock(Tx1(1, 9), 0x300, *faircm_).refused, ConflictKind::kNone);
  const auto r = table_.ReadLock(Tx1(2, 5), 0x300, *faircm_);
  EXPECT_EQ(r.refused, ConflictKind::kNone);
  ASSERT_EQ(r.victims.size(), 1u);
  EXPECT_EQ(r.victims[0].info.core, 1u);
  EXPECT_EQ(r.victims[0].kind, ConflictKind::kReadAfterWrite);
  EXPECT_FALSE(table_.HasWriter(0x300, nullptr));
  EXPECT_TRUE(table_.HasReader(0x300, 2));
  EXPECT_TRUE(table_.CheckInvariants());
}

TEST_F(LockTableTest, WawConflictResolvedByPriority) {
  ASSERT_EQ(table_.WriteLock(Tx1(1, 5), 0x400, *faircm_).refused, ConflictKind::kNone);
  // Worse requester loses.
  EXPECT_EQ(table_.WriteLock(Tx1(2, 9), 0x400, *faircm_).refused,
            ConflictKind::kWriteAfterWrite);
  // Better requester revokes.
  const auto r = table_.WriteLock(Tx1(3, 1), 0x400, *faircm_);
  EXPECT_EQ(r.refused, ConflictKind::kNone);
  ASSERT_EQ(r.victims.size(), 1u);
  EXPECT_EQ(r.victims[0].info.core, 1u);
  EXPECT_EQ(r.victims[0].kind, ConflictKind::kWriteAfterWrite);
  uint32_t writer = 0;
  ASSERT_TRUE(table_.HasWriter(0x400, &writer));
  EXPECT_EQ(writer, 3u);
}

TEST_F(LockTableTest, WarConflictMustBeatAllReaders) {
  ASSERT_EQ(table_.ReadLock(Tx1(1, 3), 0x500, *faircm_).refused, ConflictKind::kNone);
  ASSERT_EQ(table_.ReadLock(Tx1(2, 7), 0x500, *faircm_).refused, ConflictKind::kNone);
  // Beats reader 2 but not reader 1: refused with WAR.
  EXPECT_EQ(table_.WriteLock(Tx1(3, 5), 0x500, *faircm_).refused,
            ConflictKind::kWriteAfterRead);
  EXPECT_TRUE(table_.HasReader(0x500, 1));
  EXPECT_TRUE(table_.HasReader(0x500, 2));
  // Beats both: all readers revoked, each reported as a WAR victim.
  const auto r = table_.WriteLock(Tx1(4, 1), 0x500, *faircm_);
  EXPECT_EQ(r.refused, ConflictKind::kNone);
  EXPECT_EQ(r.victims.size(), 2u);
  for (const auto& v : r.victims) {
    EXPECT_EQ(v.kind, ConflictKind::kWriteAfterRead);
  }
  EXPECT_FALSE(table_.HasReader(0x500, 1));
  EXPECT_FALSE(table_.HasReader(0x500, 2));
  EXPECT_TRUE(table_.CheckInvariants());
}

TEST_F(LockTableTest, OwnReadLockDoesNotBlockUpgrade) {
  ASSERT_EQ(table_.ReadLock(Tx1(1), 0x600, *nocm_).refused, ConflictKind::kNone);
  // Under no-CM any conflict aborts the requester — but upgrading one's own
  // read lock is not a conflict.
  const auto r = table_.WriteLock(Tx1(1), 0x600, *nocm_);
  EXPECT_EQ(r.refused, ConflictKind::kNone);
  EXPECT_TRUE(r.victims.empty());
  EXPECT_TRUE(table_.HasReader(0x600, 1));
  EXPECT_TRUE(table_.HasWriter(0x600, nullptr));
  EXPECT_TRUE(table_.CheckInvariants());
}

TEST_F(LockTableTest, OwnWriteLockAllowsReacquire) {
  ASSERT_EQ(table_.WriteLock(Tx1(1), 0x700, *nocm_).refused, ConflictKind::kNone);
  EXPECT_EQ(table_.WriteLock(Tx1(1), 0x700, *nocm_).refused, ConflictKind::kNone);
  EXPECT_EQ(table_.ReadLock(Tx1(1), 0x700, *nocm_).refused, ConflictKind::kNone);
}

TEST_F(LockTableTest, NoCmRefusesForeignConflicts) {
  ASSERT_EQ(table_.WriteLock(Tx1(1), 0x800, *nocm_).refused, ConflictKind::kNone);
  EXPECT_EQ(table_.ReadLock(Tx1(2), 0x800, *nocm_).refused, ConflictKind::kReadAfterWrite);
  EXPECT_EQ(table_.WriteLock(Tx1(2), 0x800, *nocm_).refused, ConflictKind::kWriteAfterWrite);
}

TEST_F(LockTableTest, ReleaseReadIsIdempotent) {
  ASSERT_EQ(table_.ReadLock(Tx1(1), 0x900, *faircm_).refused, ConflictKind::kNone);
  table_.ReleaseRead(1, 0x900);
  EXPECT_FALSE(table_.HasReader(0x900, 1));
  table_.ReleaseRead(1, 0x900);  // no-op
  table_.ReleaseRead(2, 0xAAA);  // never held: no-op
  EXPECT_EQ(table_.NumEntries(), 0u);  // empty entries erased
}

TEST_F(LockTableTest, StaleWriteReleaseCannotClobberNewOwner) {
  ASSERT_EQ(table_.WriteLock(Tx1(1, 9), 0xB00, *faircm_).refused, ConflictKind::kNone);
  // Core 2 revokes core 1 and takes the lock.
  ASSERT_EQ(table_.WriteLock(Tx1(2, 1), 0xB00, *faircm_).refused, ConflictKind::kNone);
  // Core 1's release (sent before it learned of the revocation) arrives.
  table_.ReleaseWrite(1, 0xB00);
  uint32_t writer = 0;
  ASSERT_TRUE(table_.HasWriter(0xB00, &writer));
  EXPECT_EQ(writer, 2u);  // unaffected
}

TEST_F(LockTableTest, ReleaseAllOfClearsEverything) {
  table_.ReadLock(Tx1(1), 0x10, *faircm_);
  table_.ReadLock(Tx1(1), 0x20, *faircm_);
  table_.WriteLock(Tx1(1), 0x30, *faircm_);
  table_.ReadLock(Tx1(2), 0x20, *faircm_);
  table_.ReleaseAllOf(1);
  EXPECT_FALSE(table_.HasReader(0x10, 1));
  EXPECT_FALSE(table_.HasReader(0x20, 1));
  EXPECT_FALSE(table_.HasWriter(0x30, nullptr));
  EXPECT_TRUE(table_.HasReader(0x20, 2));
  EXPECT_TRUE(table_.CheckInvariants());
}

TEST_F(LockTableTest, EntriesErasedWhenFullyReleased) {
  table_.ReadLock(Tx1(1), 0x10, *faircm_);
  table_.WriteLock(Tx1(1), 0x10, *faircm_);
  EXPECT_EQ(table_.NumEntries(), 1u);
  table_.ReleaseWrite(1, 0x10);
  table_.ReleaseRead(1, 0x10);
  EXPECT_EQ(table_.NumEntries(), 0u);
}

TEST_F(LockTableTest, TryAcquireManyEmptyBatchIsFullyGranted) {
  const BatchAcquireResult r = table_.TryAcquireMany(Tx1(1), nullptr, 0, 0, *faircm_);
  EXPECT_EQ(r.granted_bitmap, 0u);
  EXPECT_EQ(r.granted_count, 0u);
  EXPECT_EQ(r.refused, ConflictKind::kNone);
  EXPECT_TRUE(r.victims.empty());
  EXPECT_EQ(table_.NumEntries(), 0u);
}

TEST_F(LockTableTest, TryAcquireManyMixedReadWriteGrants) {
  const uint64_t addrs[] = {0x10, 0x20, 0x30};
  // Entries 0 and 2 want the write lock, entry 1 the read lock.
  const BatchAcquireResult r = table_.TryAcquireMany(Tx1(1), addrs, 3, 0b101, *faircm_);
  EXPECT_EQ(r.granted_bitmap, PrefixBitmap(3));
  EXPECT_EQ(r.granted_count, 3u);
  EXPECT_EQ(r.refused, ConflictKind::kNone);
  EXPECT_TRUE(table_.HasWriter(0x10, nullptr));
  EXPECT_TRUE(table_.HasReader(0x20, 1));
  EXPECT_FALSE(table_.HasWriter(0x20, nullptr));
  EXPECT_TRUE(table_.HasWriter(0x30, nullptr));
  EXPECT_TRUE(table_.CheckInvariants());
}

TEST_F(LockTableTest, TryAcquireManyDuplicateAddressesAreReacquisitions) {
  // Read+write of the same stripe in one batch: the write upgrades the
  // requester's own read lock, the second write re-acquires; no conflicts.
  const uint64_t addrs[] = {0x40, 0x40, 0x40};
  const BatchAcquireResult r = table_.TryAcquireMany(Tx1(1), addrs, 3, 0b110, *nocm_);
  EXPECT_EQ(r.granted_bitmap, PrefixBitmap(3));
  EXPECT_EQ(r.granted_count, 3u);
  EXPECT_TRUE(r.victims.empty());
  EXPECT_TRUE(table_.HasReader(0x40, 1));
  EXPECT_TRUE(table_.HasWriter(0x40, nullptr));
  EXPECT_TRUE(table_.CheckInvariants());
}

TEST_F(LockTableTest, TryAcquireManyPartialGrantStopsAtFirstRefusal) {
  // A foreign writer sits on the third of five stripes: the batch is
  // granted as the two-entry prefix, entries after the refusal untouched.
  ASSERT_EQ(table_.WriteLock(Tx1(9), 0x70, *nocm_).refused, ConflictKind::kNone);
  const uint64_t addrs[] = {0x50, 0x60, 0x70, 0x80, 0x90};
  const BatchAcquireResult r = table_.TryAcquireMany(Tx1(1), addrs, 5, PrefixBitmap(5), *nocm_);
  EXPECT_EQ(r.granted_bitmap, PrefixBitmap(2));
  EXPECT_EQ(r.granted_count, 2u);
  EXPECT_EQ(r.refused, ConflictKind::kWriteAfterWrite);
  EXPECT_TRUE(table_.HasWriter(0x50, nullptr));
  EXPECT_TRUE(table_.HasWriter(0x60, nullptr));
  EXPECT_FALSE(table_.HasWriter(0x80, nullptr));  // never attempted
  EXPECT_FALSE(table_.HasWriter(0x90, nullptr));
  uint32_t writer = 0;
  ASSERT_TRUE(table_.HasWriter(0x70, &writer));
  EXPECT_EQ(writer, 9u);  // the holder kept its lock
  EXPECT_TRUE(table_.CheckInvariants());
}

TEST_F(LockTableTest, TryAcquireManyCollectsVictimsAcrossThePrefix) {
  // Two foreign readers on different stripes, both beaten by the batch's
  // writer: every revocation across the prefix is reported.
  ASSERT_EQ(table_.ReadLock(Tx1(7, 100), 0xA0, *faircm_).refused, ConflictKind::kNone);
  ASSERT_EQ(table_.ReadLock(Tx1(8, 100), 0xB0, *faircm_).refused, ConflictKind::kNone);
  const uint64_t addrs[] = {0xA0, 0xB0};
  const BatchAcquireResult r =
      table_.TryAcquireMany(Tx1(1, /*metric=*/1), addrs, 2, PrefixBitmap(2), *faircm_);
  EXPECT_EQ(r.granted_count, 2u);
  ASSERT_EQ(r.victims.size(), 2u);
  EXPECT_EQ(r.victims[0].info.core, 7u);
  EXPECT_EQ(r.victims[1].info.core, 8u);
  EXPECT_TRUE(table_.CheckInvariants());
}

TEST_F(LockTableTest, StatsCountAcquiresRefusalsRevocations) {
  table_.ReadLock(Tx1(1, 1), 0x10, *faircm_);
  table_.WriteLock(Tx1(2, 0), 0x10, *faircm_);  // revokes reader 1
  table_.ReadLock(Tx1(3, 9), 0x10, *faircm_);   // refused (RAW vs writer 2)
  const LockTableStats& s = table_.stats();
  EXPECT_EQ(s.read_acquires, 1u);
  EXPECT_EQ(s.write_acquires, 1u);
  EXPECT_EQ(s.read_refused, 1u);
  EXPECT_EQ(s.revocations, 1u);
}

// Regression: revoking a writer that acquired via lock upgrade (reader +
// writer on the same stripe) must also revoke its read bit. Leaving the bit
// behind created a ghost reader with no TxInfo whose default metric (0)
// beat every subsequent write request — on the thread backend two cores
// could revoke/refuse each other through that ghost forever (the
// FairCm livelock the native backend exposed).
TEST_F(LockTableTest, RevokingUpgradedWriterClearsItsReadBit) {
  // Core 2 (weaker, higher metric) read-locks then upgrades: holds the
  // stripe as reader + committing writer.
  EXPECT_EQ(table_.ReadLock(Tx1(2, 100), 0x38, *faircm_).refused, ConflictKind::kNone);
  EXPECT_EQ(table_.WriteLock(Tx1(2, 100), 0x38, *faircm_, /*committing=*/true).refused,
            ConflictKind::kNone);

  // Core 1 (stronger, lower metric) reads: RAW, core 1 wins, core 2's
  // write lock is revoked — and its upgrade read bit must die with it.
  const auto r = table_.ReadLock(Tx1(1, 10), 0x38, *faircm_);
  EXPECT_EQ(r.refused, ConflictKind::kNone);
  ASSERT_EQ(r.victims.size(), 1u);
  EXPECT_EQ(r.victims[0].info.core, 2u);
  EXPECT_FALSE(table_.HasReader(0x38, 2));
  EXPECT_TRUE(table_.CheckInvariants());

  // Core 1's own commit-time upgrade must now succeed: no ghost reader
  // refuses it, no phantom victim is reported.
  const auto w = table_.WriteLock(Tx1(1, 10), 0x38, *faircm_, /*committing=*/true);
  EXPECT_EQ(w.refused, ConflictKind::kNone);
  EXPECT_TRUE(w.victims.empty());
  EXPECT_TRUE(table_.CheckInvariants());
}

// Same ghost via the WAW path: a stronger writer revokes a weaker upgraded
// writer; the loser must leave no reader bit behind.
TEST_F(LockTableTest, WawRevocationClearsLosersReadBit) {
  EXPECT_EQ(table_.ReadLock(Tx1(2, 100), 0x40, *faircm_).refused, ConflictKind::kNone);
  EXPECT_EQ(table_.WriteLock(Tx1(2, 100), 0x40, *faircm_, /*committing=*/true).refused,
            ConflictKind::kNone);

  const auto w = table_.WriteLock(Tx1(1, 10), 0x40, *faircm_, /*committing=*/true);
  EXPECT_EQ(w.refused, ConflictKind::kNone);
  ASSERT_EQ(w.victims.size(), 1u);
  EXPECT_EQ(w.victims[0].info.core, 2u);
  EXPECT_FALSE(table_.HasReader(0x40, 2));
  EXPECT_TRUE(table_.CheckInvariants());
}

}  // namespace
}  // namespace tm2c

// Process-kill regression: SIGKILL a partition server mid-run, let the
// cold standby recover it from the on-disk WAL, and hold the surviving run
// to the crash-restart oracle's standard (src/check/process_kill.h). This
// is the real-death counterpart of the simulated crash cuts in
// tests/check_test.cc: the same oracle, wired to an actual process corpse
// instead of a post-hoc watermark.
//
// Failing seeds dump their full history JSON into failed_histories/ next
// to the test binary, same convention as the chaos suites.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/check/process_kill.h"

namespace tm2c {
namespace {

std::string FreshRunDir(const std::string& tag) {
  std::string templ = ::testing::TempDir() + "tm2c_" + tag + "_XXXXXX";
  char* made = ::mkdtemp(templ.data());
  EXPECT_NE(made, nullptr);
  return templ;
}

void DumpOnFailure(const ProcessKillConfig& cfg, const ProcessKillResult& result) {
  if (result.report.violations.empty()) {
    return;
  }
  ::mkdir("failed_histories", 0755);
  const std::string path = "failed_histories/" + cfg.Name() + ".json";
  std::ofstream out(path);
  out << result.history.ToJson();
  ADD_FAILURE() << "history dumped to " << path;
}

TEST(ProcessKill, KilledPartitionRecoversAcrossFiveSeeds) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    ProcessKillConfig cfg;
    cfg.seed = seed;
    cfg.run_dir = FreshRunDir("kill_s" + std::to_string(seed));
    const ProcessKillResult result = RunProcessKillWorkload(cfg);

    EXPECT_EQ(result.commits, result.expected_commits) << "seed " << seed;
    EXPECT_EQ(result.restarts, 1u) << "seed " << seed;
    EXPECT_TRUE(result.truncate_seen) << "seed " << seed;
    EXPECT_TRUE(result.tables_empty) << "seed " << seed;
    for (const OracleViolation& v : result.report.violations) {
      ADD_FAILURE() << "seed " << seed << ": [" << v.kind << "] " << v.detail;
    }
    DumpOnFailure(cfg, result);
  }
}

TEST(ProcessKill, KillingTheOtherPartitionRecoversToo) {
  // The kill target must not be special-cased: partition 1's server dies
  // under a different request mix (it is not app core 0's local target).
  ProcessKillConfig cfg;
  cfg.seed = 7;
  cfg.kill_partition = 1;
  cfg.run_dir = FreshRunDir("kill_p1");
  const ProcessKillResult result = RunProcessKillWorkload(cfg);

  EXPECT_EQ(result.commits, result.expected_commits);
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_TRUE(result.truncate_seen);
  EXPECT_TRUE(result.tables_empty);
  for (const OracleViolation& v : result.report.violations) {
    ADD_FAILURE() << "[" << v.kind << "] " << v.detail;
  }
  DumpOnFailure(cfg, result);
}

TEST(ProcessKill, GroupCommitWindowsSurviveTheKill) {
  // Larger group-commit windows widen the in-doubt set at the kill: more
  // appended-but-unflushed records to void, more unacked kCommitLogs to
  // retransmit. With periodic checkpoints on top, the recovery replays
  // checkpoint + suffix instead of the whole log.
  ProcessKillConfig cfg;
  cfg.seed = 11;
  cfg.group_commit_txs = 8;
  cfg.checkpoint_every_records = 32;
  cfg.run_dir = FreshRunDir("kill_gc8");
  const ProcessKillResult result = RunProcessKillWorkload(cfg);

  EXPECT_EQ(result.commits, result.expected_commits);
  EXPECT_TRUE(result.truncate_seen);
  for (const OracleViolation& v : result.report.violations) {
    ADD_FAILURE() << "[" << v.kind << "] " << v.detail;
  }
  DumpOnFailure(cfg, result);
}

}  // namespace
}  // namespace tm2c

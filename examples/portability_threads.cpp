// Portability (Section 7): the exact same protocol code — DtmService,
// TxRuntime, contention managers — running on real OS threads instead of
// the simulator. The mailboxes stand in for the Barrelfish-style cache-line
// channels of the paper's multi-core port.
//
//   $ ./examples/portability_threads --cores=4 --service-cores=2
#include <atomic>
#include <cstdio>

#include "src/common/flags.h"
#include "src/runtime/thread_system.h"
#include "src/tm/dtm_service.h"
#include "src/tm/tx_runtime.h"

int main(int argc, char** argv) {
  using namespace tm2c;

  int cores = 4;
  int service_cores = 2;
  int increments = 2000;
  std::string channel = "spsc";
  bool pin = false;

  FlagSet flags;
  flags.Register("cores", &cores, "OS threads to spawn");
  flags.Register("service-cores", &service_cores, "how many of them run the DTM service");
  flags.Register("increments", &increments, "transactional increments per app thread");
  flags.Register("channel", &channel, "transport: spsc (lock-free rings) | mutex (v1 mailboxes)");
  flags.Register("pin", &pin, "pin each core thread to a host CPU");
  flags.Parse(argc, argv);

  ThreadSystemConfig config;
  config.platform = MakeOpteronPlatform();
  config.num_cores = static_cast<uint32_t>(cores);
  config.num_service = static_cast<uint32_t>(service_cores);
  config.shmem_bytes = 1 << 20;
  config.channel = ChannelKindByName(channel);
  config.pin_threads = pin;
  ThreadSystem system(config);

  TmConfig tm;
  tm.cm = CmKind::kBackoffRetry;  // the CM the paper ported first
  const AddressMap map(system.deployment(), tm.stripe_bytes);
  const uint64_t counter = system.allocator().AllocGlobal(8);

  // Service threads run the very same DtmService loop as the simulator.
  for (uint32_t core : system.deployment().service_cores()) {
    system.SetCoreMain(core, [tm](CoreEnv& env) {
      DtmService service(env, tm);
      service.RunLoop();  // exits on kShutdown
    });
  }
  // App threads run transactions through the very same TxRuntime. The last
  // app thread to finish shuts the service loops down.
  const auto& plan = system.deployment();
  std::vector<TxStats> stats(plan.num_app());
  std::atomic<uint32_t> running{plan.num_app()};
  for (uint32_t i = 0; i < plan.num_app(); ++i) {
    const uint32_t core = plan.app_cores()[i];
    system.SetCoreMain(core, [&, i, tm](CoreEnv& env) {
      TxRuntime rt(env, tm, map);
      for (int k = 0; k < increments; ++k) {
        rt.Execute([counter](Tx& tx) { tx.Write(counter, tx.Read(counter) + 1); });
      }
      stats[i] = rt.stats();
      if (running.fetch_sub(1) == 1) {
        for (uint32_t sc : plan.service_cores()) {
          system.SendShutdown(sc);
        }
      }
    });
  }
  system.RunToCompletion();

  uint64_t total_commits = 0;
  uint64_t total_aborts = 0;
  for (const TxStats& s : stats) {
    total_commits += s.commits;
    total_aborts += s.aborts;
  }
  const uint64_t expected = static_cast<uint64_t>(plan.num_app()) * increments;
  const uint64_t value = system.shmem().LoadWord(counter);
  std::printf("threads=%d (%u app / %u dtm), %d increments each\n", cores, plan.num_app(),
              static_cast<uint32_t>(service_cores), increments);
  std::printf("counter = %llu (expected %llu) -> %s\n", static_cast<unsigned long long>(value),
              static_cast<unsigned long long>(expected), value == expected ? "OK" : "WRONG");
  std::printf("commits = %llu, aborts = %llu (real concurrency, real races)\n",
              static_cast<unsigned long long>(total_commits),
              static_cast<unsigned long long>(total_aborts));
  return value == expected ? 0 : 1;
}

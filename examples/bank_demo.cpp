// Bank demo: the paper's Section 5.3 application, configurable from the
// command line.
//
//   $ ./examples/bank_demo --cores=48 --accounts=1024 --balance-pct=20
//        --cm=faircm --duration-ms=40
//
// Runs the transfer/balance mix on the simulated SCC, then verifies that
// the total balance is conserved and prints throughput, commit rate, and
// per-conflict-kind abort counts for each contention manager trait worth
// comparing.
#include <cstdio>
#include <string>

#include "src/apps/bank.h"
#include "src/common/flags.h"
#include "src/tm/tm_system.h"

int main(int argc, char** argv) {
  using namespace tm2c;

  int cores = 48;
  int service_cores = 0;  // 0 = half
  int accounts = 1024;
  int balance_pct = 20;
  int duration_ms = 40;
  std::string cm_name = "faircm";
  std::string platform = "scc";

  FlagSet flags;
  flags.Register("cores", &cores, "total simulated cores");
  flags.Register("service-cores", &service_cores, "DTM service cores (0 = half)");
  flags.Register("accounts", &accounts, "number of bank accounts");
  flags.Register("balance-pct", &balance_pct, "percentage of balance (full-scan) operations");
  flags.Register("duration-ms", &duration_ms, "simulated duration in milliseconds");
  flags.Register("cm", &cm_name, "contention manager: none|backoff|offset-greedy|wholly|faircm");
  flags.Register("platform", &platform, "platform model: scc|scc800|opteron");
  flags.Parse(argc, argv);

  TmSystemConfig config;
  config.sim.platform = PlatformByName(platform);
  config.sim.num_cores = static_cast<uint32_t>(cores);
  config.sim.num_service =
      service_cores > 0 ? static_cast<uint32_t>(service_cores) : static_cast<uint32_t>(cores) / 2;
  config.sim.shmem_bytes = 8 << 20;
  config.sim.seed = 1;
  config.tm.cm = CmKindByName(cm_name);
  TmSystem system(config);

  Bank bank(system.allocator(), system.shmem(), static_cast<uint32_t>(accounts),
            /*initial=*/1000);
  const uint64_t expected_total = static_cast<uint64_t>(accounts) * 1000;

  const SimTime horizon = MillisToSim(static_cast<uint64_t>(duration_ms));
  for (uint32_t i = 0; i < system.num_app_cores(); ++i) {
    system.SetAppBody(i, [&bank, horizon, balance_pct, i](CoreEnv& env, TxRuntime& rt) {
      Rng rng(100 + i);
      while (env.GlobalNow() < horizon) {
        if (balance_pct > 0 && rng.NextPercent(static_cast<uint32_t>(balance_pct))) {
          rt.Execute([&bank](Tx& tx) { (void)bank.TxBalance(tx); });
        } else {
          const auto from = static_cast<uint32_t>(rng.NextBelow(bank.num_accounts()));
          const auto to = static_cast<uint32_t>((from + 1 + rng.NextBelow(bank.num_accounts() - 1)) %
                                                bank.num_accounts());
          rt.Execute([&](Tx& tx) { bank.TxTransfer(tx, from, to, 1); });
        }
      }
    });
  }

  system.Run(horizon);
  const TxStats stats = system.MergedStats();

  std::printf("platform=%s cores=%d (%u app / %u dtm) cm=%s accounts=%d balance%%=%d\n",
              platform.c_str(), cores, system.num_app_cores(), config.sim.num_service,
              cm_name.c_str(), accounts, balance_pct);
  std::printf("throughput   = %.2f ops/ms over %d simulated ms\n",
              static_cast<double>(stats.commits) / duration_ms, duration_ms);
  std::printf("commit rate  = %.1f%% (%llu commits, %llu aborts)\n", 100.0 * stats.CommitRate(),
              static_cast<unsigned long long>(stats.commits),
              static_cast<unsigned long long>(stats.aborts));
  std::printf("conflicts    = RAW %llu / WAW %llu / WAR %llu / revoked %llu\n",
              static_cast<unsigned long long>(stats.raw_conflicts),
              static_cast<unsigned long long>(stats.waw_conflicts),
              static_cast<unsigned long long>(stats.war_conflicts),
              static_cast<unsigned long long>(stats.notify_aborts));
  std::printf("messages     = %llu\n", static_cast<unsigned long long>(stats.messages_sent));

  const uint64_t total = bank.HostTotal();
  std::printf("conservation = %s (total %llu, expected %llu)\n",
              total == expected_total ? "OK" : "VIOLATED",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(expected_total));
  return total == expected_total ? 0 : 1;
}

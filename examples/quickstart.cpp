// Quickstart: the smallest complete TM2C program.
//
// Builds a simulated 8-core SCC (4 application cores + 4 DTM service
// cores), runs concurrent transactional increments from every application
// core, and prints the result — which is exact, because transactions make
// the read-modify-write atomic.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/tm/tm_system.h"

int main() {
  using namespace tm2c;

  // 1. Describe the machine and the TM configuration.
  TmSystemConfig config;
  config.sim.platform = MakeSccPlatform(0);  // 533 MHz tiles, 6x4 mesh
  config.sim.num_cores = 8;
  config.sim.num_service = 4;                // dedicated DTM cores
  config.sim.shmem_bytes = 1 << 20;
  config.sim.seed = 42;
  config.tm.cm = CmKind::kFairCm;            // starvation-free CM

  TmSystem system(config);

  // 2. Lay out shared data (host-side, before the run starts).
  const uint64_t counter = system.allocator().AllocGlobal(8);

  // 3. Give every application core a program.
  for (uint32_t i = 0; i < system.num_app_cores(); ++i) {
    system.SetAppBody(i, [counter](CoreEnv& /*env*/, TxRuntime& rt) {
      for (int k = 0; k < 1000; ++k) {
        rt.Execute([counter](Tx& tx) {
          tx.Write(counter, tx.Read(counter) + 1);  // atomic increment
        });
      }
    });
  }

  // 4. Run and inspect.
  const SimTime end = system.Run();
  const TxStats stats = system.MergedStats();
  std::printf("counter      = %llu (expected %u)\n",
              static_cast<unsigned long long>(system.shmem().LoadWord(counter)),
              system.num_app_cores() * 1000);
  std::printf("commits      = %llu\n", static_cast<unsigned long long>(stats.commits));
  std::printf("aborts       = %llu (conflicts resolved by FairCM)\n",
              static_cast<unsigned long long>(stats.aborts));
  std::printf("simulated    = %.2f ms\n", SimToMillis(end));
  std::printf("throughput   = %.1f increments/ms\n",
              static_cast<double>(stats.commits) / SimToMillis(end));
  return 0;
}

// Master-less MapReduce (Section 5.4): count letter frequencies of a text
// in shared memory, with TM2C replacing the master node for chunk
// allocation and result merging.
//
//   $ ./examples/mapreduce_lettercount --cores=48 --input-kb=2048 --chunk-kb=8
#include <cstdio>
#include <string>

#include "src/apps/mapreduce.h"
#include "src/common/flags.h"
#include "src/tm/tm_system.h"

int main(int argc, char** argv) {
  using namespace tm2c;

  int cores = 48;
  int input_kb = 2048;
  int chunk_kb = 8;

  FlagSet flags;
  flags.Register("cores", &cores, "total simulated cores (1 DTM + N-1 workers)");
  flags.Register("input-kb", &input_kb, "input text size in KB");
  flags.Register("chunk-kb", &chunk_kb, "chunk size in KB");
  flags.Parse(argc, argv);

  TmSystemConfig config;
  config.sim.platform = MakeSccPlatform(0);
  config.sim.num_cores = static_cast<uint32_t>(cores);
  config.sim.num_service = 1;  // the transactional load is low (Section 5.4)
  config.sim.shmem_bytes = static_cast<uint64_t>(input_kb) * 1024 * 4 + (8 << 20);
  config.sim.seed = 2026;
  TmSystem system(config);

  MapReduceConfig mr;
  mr.input_bytes = static_cast<uint64_t>(input_kb) * 1024;
  MapReduceApp app(system.allocator(), system.shmem(), mr);

  const uint64_t chunk_bytes = static_cast<uint64_t>(chunk_kb) * 1024;
  for (uint32_t i = 0; i < system.num_app_cores(); ++i) {
    system.SetAppBody(i, [&app, chunk_bytes](CoreEnv& env, TxRuntime& rt) {
      app.RunWorker(env, rt, chunk_bytes);
    });
  }
  const SimTime parallel_time = system.Run();

  // Verify against the host-side ground truth and print the histogram.
  const auto result = app.HostResultCounts();
  const auto expected = app.HostExpectedCounts();
  bool correct = result == expected;
  std::printf("input=%dKB chunk=%dKB workers=%u  simulated time=%.3f s  result=%s\n", input_kb,
              chunk_kb, system.num_app_cores(), SimToSeconds(parallel_time),
              correct ? "CORRECT" : "WRONG");
  for (uint32_t l = 0; l < MapReduceApp::kLetters; ++l) {
    std::printf("  %c: %-8llu%s", static_cast<char>('a' + l),
                static_cast<unsigned long long>(result[l]), (l + 1) % 6 == 0 ? "\n" : "");
  }
  std::printf("\n");
  return correct ? 0 : 1;
}

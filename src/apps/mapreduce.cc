#include "src/apps/mapreduce.h"

#include "src/common/check.h"
#include "src/common/rng.h"

namespace tm2c {

MapReduceApp::MapReduceApp(ShmAllocator& allocator, SharedMemory& mem,
                           const MapReduceConfig& config)
    : mem_(&mem), config_(config) {
  TM2C_CHECK(config_.input_bytes >= kWordBytes);
  config_.input_bytes = config_.input_bytes / kWordBytes * kWordBytes;
  text_base_ = allocator.AllocGlobal(config_.input_bytes);
  counter_addr_ = allocator.AllocGlobal(kWordBytes);
  histogram_base_ = allocator.AllocGlobal(kLetters * kWordBytes);

  // Synthetic text: letters with a skewed distribution plus spaces, packed
  // eight characters per word.
  Rng rng(config_.seed);
  for (uint64_t off = 0; off < config_.input_bytes; off += kWordBytes) {
    uint64_t word = 0;
    for (int b = 0; b < 8; ++b) {
      const uint64_t draw = rng.NextBelow(32);
      const char c = draw < kLetters ? static_cast<char>('a' + draw) : ' ';
      word |= static_cast<uint64_t>(static_cast<uint8_t>(c)) << (b * 8);
    }
    mem_->StoreWord(text_base_ + off, word);
  }
  ResetRun();
}

void MapReduceApp::ResetRun() {
  mem_->StoreWord(counter_addr_, 0);
  for (uint32_t l = 0; l < kLetters; ++l) {
    mem_->StoreWord(histogram_base_ + l * kWordBytes, 0);
  }
}

uint64_t MapReduceApp::ChunkComputeCycles(const PlatformDesc& platform,
                                          uint64_t chunk_bytes) const {
  const double effective_l1 =
      static_cast<double>(platform.l1_data_kb) * 1024.0 * platform.l1_app_fraction;
  const double penalty =
      static_cast<double>(chunk_bytes) > effective_l1 ? platform.cache_miss_penalty : 1.0;
  return static_cast<uint64_t>(static_cast<double>(chunk_bytes) *
                               static_cast<double>(config_.compute_cycles_per_byte) * penalty);
}

void MapReduceApp::CountChunkHost(uint64_t offset, uint64_t bytes,
                                  std::array<uint64_t, kLetters>* counts) const {
  const uint64_t end = offset + bytes;
  for (uint64_t off = offset; off < end; off += kWordBytes) {
    uint64_t word = mem_->LoadWord(text_base_ + off);
    for (int b = 0; b < 8; ++b) {
      const char c = static_cast<char>(word & 0xff);
      word >>= 8;
      if (c >= 'a' && c <= 'z') {
        ++(*counts)[static_cast<size_t>(c - 'a')];
      }
    }
  }
}

void MapReduceApp::RunWorker(CoreEnv& env, TxRuntime& rt, uint64_t chunk_bytes) const {
  TM2C_CHECK(chunk_bytes >= kWordBytes && chunk_bytes % kWordBytes == 0);
  const uint64_t num_chunks = (config_.input_bytes + chunk_bytes - 1) / chunk_bytes;
  std::array<uint64_t, kLetters> local{};
  for (;;) {
    // Claim the next chunk: the transactional replacement for a master.
    uint64_t chunk = 0;
    rt.Execute([&](Tx& tx) {
      chunk = tx.Read(counter_addr_);
      if (chunk < num_chunks) {
        tx.Write(counter_addr_, chunk + 1);
      }
    });
    if (chunk >= num_chunks) {
      break;
    }
    const uint64_t offset = chunk * chunk_bytes;
    const uint64_t bytes =
        offset + chunk_bytes <= config_.input_bytes ? chunk_bytes : config_.input_bytes - offset;
    // Map the chunk's shared pages (fixed per-chunk cost), stream it (pays
    // memory-controller time), then count: the simulated compute charge
    // models the scan; the actual counting runs host-side against the same
    // bytes.
    env.Compute(config_.chunk_overhead_cycles);
    env.ShmemBulkAccess(text_base_ + offset, bytes);
    // Chunk processing time varies a few percent with content (branch
    // behaviour of the counting loop). Without this, identical chunk times
    // phase-lock every worker into the same claim instant and the single
    // DTM core sees synchronized conflict storms no real system exhibits.
    const uint64_t base_cycles = ChunkComputeCycles(env.platform(), bytes);
    const uint64_t mix = (chunk * 0x9e3779b97f4a7c15ull) ^ (env.core_id() * 0xff51afd7ed558ccdull);
    const uint64_t jitter_pct = (mix >> 57) % 6;  // 0..5%
    env.Compute(base_cycles + base_cycles * jitter_pct / 100);
    CountChunkHost(offset, bytes, &local);
  }
  // Merge this worker's histogram into the shared one, atomically.
  rt.Execute([&](Tx& tx) {
    for (uint32_t l = 0; l < kLetters; ++l) {
      const uint64_t addr = histogram_base_ + l * kWordBytes;
      tx.Write(addr, tx.Read(addr) + local[l]);
    }
  });
}

void MapReduceApp::RunSequential(CoreEnv& env) const {
  std::array<uint64_t, kLetters> local{};
  // One linear scan: bandwidth-limited streaming, cache-friendly (no
  // chunk-size penalty), no page remapping churn.
  env.ShmemBulkAccess(text_base_, config_.input_bytes);
  env.Compute(static_cast<uint64_t>(config_.input_bytes) * config_.compute_cycles_per_byte);
  CountChunkHost(0, config_.input_bytes, &local);
  for (uint32_t l = 0; l < kLetters; ++l) {
    const uint64_t addr = histogram_base_ + l * kWordBytes;
    env.ShmemWrite(addr, env.ShmemRead(addr) + local[l]);
  }
}

std::array<uint64_t, MapReduceApp::kLetters> MapReduceApp::HostExpectedCounts() const {
  std::array<uint64_t, kLetters> counts{};
  CountChunkHost(0, config_.input_bytes, &counts);
  return counts;
}

std::array<uint64_t, MapReduceApp::kLetters> MapReduceApp::HostResultCounts() const {
  std::array<uint64_t, kLetters> counts{};
  for (uint32_t l = 0; l < kLetters; ++l) {
    counts[l] = mem_->LoadWord(histogram_base_ + l * kWordBytes);
  }
  return counts;
}

}  // namespace tm2c

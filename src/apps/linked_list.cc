#include "src/apps/linked_list.h"

#include "src/common/check.h"

namespace tm2c {

ShmSortedList::ShmSortedList(ShmAllocator& allocator, SharedMemory& mem) : mem_(&mem) {
  head_ = allocator.AllocGlobal(kWordBytes);
  mem_->StoreWord(head_, 0);
}

bool ShmSortedList::TxContains(Tx& tx, uint64_t key) const {
  TM2C_DCHECK(key != 0);
  uint64_t node = tx.Read(head_);
  while (node != 0) {
    const uint64_t node_key = tx.Read(KeyAddr(node));
    if (node_key == key) {
      return true;
    }
    if (node_key > key) {
      return false;
    }
    node = tx.Read(NextAddr(node));
  }
  return false;
}

bool ShmSortedList::TxAdd(Tx& tx, uint64_t key, uint64_t node_addr) const {
  TM2C_DCHECK(key != 0 && node_addr != 0);
  uint64_t prev_link = head_;
  uint64_t node = tx.Read(prev_link);
  while (node != 0) {
    const uint64_t node_key = tx.Read(KeyAddr(node));
    if (node_key == key) {
      return false;
    }
    if (node_key > key) {
      break;
    }
    prev_link = NextAddr(node);
    node = tx.Read(prev_link);
  }
  tx.Write(KeyAddr(node_addr), key);
  tx.Write(NextAddr(node_addr), node);
  tx.Write(prev_link, node_addr);
  return true;
}

bool ShmSortedList::TxRemove(Tx& tx, uint64_t key) const {
  TM2C_DCHECK(key != 0);
  uint64_t prev_link = head_;
  uint64_t node = tx.Read(prev_link);
  while (node != 0) {
    const uint64_t node_key = tx.Read(KeyAddr(node));
    if (node_key == key) {
      tx.Write(prev_link, tx.Read(NextAddr(node)));
      return true;
    }
    if (node_key > key) {
      return false;
    }
    prev_link = NextAddr(node);
    node = tx.Read(prev_link);
  }
  return false;
}

bool ShmSortedList::Contains(TxRuntime& rt, uint64_t key) const {
  bool found = false;
  rt.Execute([&](Tx& tx) { found = TxContains(tx, key); });
  return found;
}

bool ShmSortedList::Add(TxRuntime& rt, ShmAllocator& allocator, uint64_t key) const {
  uint64_t node = 0;
  bool inserted = false;
  rt.Execute([&](Tx& tx) {
    if (node == 0) {
      node = allocator.Alloc(kNodeBytes, rt.env().core_id());
    }
    inserted = TxAdd(tx, key, node);
  });
  if (!inserted && node != 0) {
    allocator.Free(node);
  }
  return inserted;
}

bool ShmSortedList::Remove(TxRuntime& rt, uint64_t key) const {
  bool removed = false;
  rt.Execute([&](Tx& tx) { removed = TxRemove(tx, key); });
  return removed;
}

bool ShmSortedList::SeqContains(CoreEnv& env, uint64_t key) const {
  uint64_t node = env.ShmemRead(head_);
  while (node != 0) {
    const uint64_t node_key = env.ShmemRead(KeyAddr(node));
    if (node_key == key) {
      return true;
    }
    if (node_key > key) {
      return false;
    }
    node = env.ShmemRead(NextAddr(node));
  }
  return false;
}

bool ShmSortedList::SeqAdd(CoreEnv& env, ShmAllocator& allocator, uint64_t key) const {
  uint64_t prev_link = head_;
  uint64_t node = env.ShmemRead(prev_link);
  while (node != 0) {
    const uint64_t node_key = env.ShmemRead(KeyAddr(node));
    if (node_key == key) {
      return false;
    }
    if (node_key > key) {
      break;
    }
    prev_link = NextAddr(node);
    node = env.ShmemRead(prev_link);
  }
  const uint64_t fresh = allocator.Alloc(kNodeBytes, env.core_id());
  env.ShmemWrite(KeyAddr(fresh), key);
  env.ShmemWrite(NextAddr(fresh), node);
  env.ShmemWrite(prev_link, fresh);
  return true;
}

bool ShmSortedList::SeqRemove(CoreEnv& env, uint64_t key) const {
  uint64_t prev_link = head_;
  uint64_t node = env.ShmemRead(prev_link);
  while (node != 0) {
    const uint64_t node_key = env.ShmemRead(KeyAddr(node));
    if (node_key == key) {
      env.ShmemWrite(prev_link, env.ShmemRead(NextAddr(node)));
      return true;
    }
    if (node_key > key) {
      return false;
    }
    prev_link = NextAddr(node);
    node = env.ShmemRead(prev_link);
  }
  return false;
}

bool ShmSortedList::HostAdd(ShmAllocator& allocator, uint64_t key) const {
  uint64_t prev_link = head_;
  uint64_t node = mem_->LoadWord(prev_link);
  while (node != 0) {
    const uint64_t node_key = mem_->LoadWord(KeyAddr(node));
    if (node_key == key) {
      return false;
    }
    if (node_key > key) {
      break;
    }
    prev_link = NextAddr(node);
    node = mem_->LoadWord(prev_link);
  }
  const uint64_t fresh = allocator.AllocGlobal(kNodeBytes);
  mem_->StoreWord(KeyAddr(fresh), key);
  mem_->StoreWord(NextAddr(fresh), node);
  mem_->StoreWord(prev_link, fresh);
  return true;
}

bool ShmSortedList::HostContains(uint64_t key) const {
  uint64_t node = mem_->LoadWord(head_);
  while (node != 0) {
    const uint64_t node_key = mem_->LoadWord(KeyAddr(node));
    if (node_key == key) {
      return true;
    }
    if (node_key > key) {
      return false;
    }
    node = mem_->LoadWord(NextAddr(node));
  }
  return false;
}

uint64_t ShmSortedList::HostSize() const {
  uint64_t count = 0;
  uint64_t node = mem_->LoadWord(head_);
  while (node != 0) {
    ++count;
    node = mem_->LoadWord(NextAddr(node));
  }
  return count;
}

}  // namespace tm2c

// Partitioned transactional key-value store (the service-shaped workload).
//
// The store divides its keyspace into one partition per DTM service core
// and lays each partition's memory — a bucket array plus a node pool — in
// its own slab, registered with AddressMap::AddOwnedRange so every lock
// acquisition for a partition's data is routed to the partition's owning
// service core. This is the KVell share-little design: each service core
// owns the locks (and, via the locality-aware allocator, usually the
// memory controller) of exactly the keys that hash to it, so a mixed
// read/write workload decomposes into per-core request streams instead of
// scattering every transaction across all partitions.
//
// Within a partition, keys hash to chained buckets; each bucket is a
// singly linked list sorted by key. Keys are non-zero 64-bit integers; 0
// is the null pointer. Values are a fixed number of words
// (KvStoreConfig::value_words), stored inline in the node:
//
//   node layout: [key][next][v0][v1]...[v_{value_words-1}]
//
// Operations: Get / Put (insert-or-update) / Delete / ReadModifyWrite,
// plus a bounded Scan whose bucket-head traversal goes through
// Tx::ReadMany — under the batched protocol that amortizes the lock
// round trips, and under the elastic modes it is exactly the paper's
// Section 6 traversal (a sliding window of protected reads).
//
// Deleted nodes are recycled through a per-partition free list (a real
// store cannot leak memory under a delete/reinsert workload); recycling is
// safe because every node word is read and written under the DS-Lock
// protocol — address reuse is just another write-after-release. The chaos
// harness (tm2c_check --workload=kv) sweeps exactly this: lost updates on
// hot keys and delete/reinsert node reuse under adversarial schedules.
//
// Three access modes share the layout, as in the other apps:
//  - Tx* methods compose inside a caller-provided transaction,
//  - wrapper methods run their own transaction via a TxRuntime, handling
//    node allocation/recycling across retries,
//  - Host* helpers touch memory directly at zero simulated cost for the
//    load phase and for verification.
#ifndef TM2C_SRC_APPS_KVSTORE_H_
#define TM2C_SRC_APPS_KVSTORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/apps/tx_store_api.h"
#include "src/runtime/core_env.h"
#include "src/shmem/allocator.h"
#include "src/tm/address_map.h"
#include "src/tm/tx_runtime.h"

namespace tm2c {

struct KvStoreConfig {
  // Buckets per partition; keys hash to (partition, bucket) independently.
  uint32_t buckets_per_partition = 64;
  // Inline value payload, in words (>= 1).
  uint32_t value_words = 1;
  // Node-pool capacity per partition: the maximum number of resident
  // entries a partition can hold (plus, with reuse off, every node ever
  // deleted). Sized by the caller; exhaustion is a checked error.
  uint32_t capacity_per_partition = 1024;
  // Recycle deleted nodes through the partition free list. On by default;
  // tests turn it off to compare against the synchrobench-style leak.
  bool reuse_nodes = true;
};

class KvStore : public TxStoreApi {
 public:
  // Carves one slab per DTM partition out of `allocator` (placed near the
  // owning service core) and registers each slab with `map` so the
  // partition's lock traffic routes to its owner. Registration happens
  // here, at setup time — construct the store before the system runs.
  // Typical wiring from a TmSystem `sys`:
  //   KvStore store(sys.allocator(), sys.shmem(), sys.address_map(),
  //                 sys.deployment(), cfg);
  KvStore(ShmAllocator& allocator, SharedMemory& mem, AddressMap& map,
          const DeploymentPlan& plan, KvStoreConfig cfg);

  // -- Composable transactional operations --------------------------------
  // Reads `key`'s value into value[0..value_words) (batched via ReadMany).
  // Returns false when the key is absent.
  bool TxGet(Tx& tx, uint64_t key, uint64_t* value) const override;
  // Insert-or-update. On update the value is written in place and the
  // caller keeps `node_addr` (returns false: node not consumed). On insert
  // `node_addr` is linked in (returns true: node consumed).
  bool TxPut(Tx& tx, uint64_t key, const uint64_t* value, uint64_t node_addr) const;
  // Unlinks `key`. When present, the removed value is read into
  // `old_value` (if non-null) and the removed node's address is stored in
  // `removed_node` (if non-null) so the caller can recycle it after the
  // transaction commits. Returns false when the key is absent.
  bool TxDelete(Tx& tx, uint64_t key, uint64_t* old_value, uint64_t* removed_node) const;
  // Reads the value, applies `fn` to it in place, writes it back. Returns
  // false when the key is absent. `fn` must be side-effect-free: it runs
  // once per attempt.
  bool TxReadModifyWrite(Tx& tx, uint64_t key,
                         const std::function<void(uint64_t*)>& fn) const override;
  // Bounded scan, hash-ordered (the honest semantics of a hash store —
  // hence the name): walks the owning partition's buckets starting at
  // `start_key`'s bucket (within that first bucket, at the first key >=
  // start_key), wrapping around the partition, and appends entries to
  // `out` until `limit` entries were collected or the whole partition was
  // visited. Bucket heads are read in ReadMany batches; chains are walked
  // read-by-read. Returns the number of entries appended. No key-order or
  // cross-partition completeness promise — the ordered range scan is
  // OrderedIndex::TxScan.
  uint32_t TxHashScan(Tx& tx, uint64_t start_key, uint32_t limit,
                      std::vector<KvEntry>* out) const;
  // TxStoreApi's generic scan delegates to TxHashScan (hash-order
  // semantics; see the interface header's honesty contract).
  uint32_t TxScan(Tx& tx, uint64_t start_key, uint32_t limit,
                  std::vector<KvEntry>* out) const override {
    return TxHashScan(tx, start_key, limit, out);
  }

  // -- One-transaction wrappers -------------------------------------------
  bool Get(TxRuntime& rt, uint64_t key, std::vector<uint64_t>* value) const override;
  // Returns true if the key was inserted, false if an existing value was
  // overwritten. `value` must point at value_words() words.
  bool Put(TxRuntime& rt, uint64_t key, const uint64_t* value) override;
  // Returns true if the key was removed; the removed value lands in
  // `old_value` (if non-null). The node returns to the partition pool.
  bool Delete(TxRuntime& rt, uint64_t key,
              std::vector<uint64_t>* old_value = nullptr) override;
  // Insert-only variant: returns false (and writes nothing) when the key
  // already exists. The conservation-checked chaos workload needs "put if
  // absent" — a blind Put would overwrite a concurrent counter.
  bool Insert(TxRuntime& rt, uint64_t key, const uint64_t* value) override;
  bool ReadModifyWrite(TxRuntime& rt, uint64_t key,
                       const std::function<void(uint64_t*)>& fn) const override;
  std::vector<KvEntry> HashScan(TxRuntime& rt, uint64_t start_key, uint32_t limit) const;
  std::vector<KvEntry> Scan(TxRuntime& rt, uint64_t start_key,
                            uint32_t limit) const override {
    return HashScan(rt, start_key, limit);
  }

  // -- Crash recovery ------------------------------------------------------
  // Rebuilds one partition from its durable state: zeroes the slab, applies
  // the checkpoint image, replays the log suffix (both as [addr, value]
  // pairs in append order), then reconstructs the host-side pool metadata
  // (in_use / next_unused / free list) by walking the recovered bucket
  // chains. Checked errors on pairs outside the slab or on structurally
  // corrupt chains. Deterministic: recovering twice from the same inputs
  // yields a byte-identical slab and identical pool state.
  void RecoverPartition(uint32_t partition,
                        const std::vector<std::pair<uint64_t, uint64_t>>& checkpoint_pairs,
                        const std::vector<std::pair<uint64_t, uint64_t>>& replay_pairs);

  // -- Host-side helpers (zero simulated cost; load phase + verification) --
  bool HostPut(uint64_t key, const uint64_t* value) override;  // insert-or-update
  bool HostGet(uint64_t key, uint64_t* value) const override;
  uint64_t HostSize() const override;
  uint64_t HostSizeOfPartition(uint32_t partition) const;
  // Invokes fn(key, value_ptr) for every resident entry (host-side).
  void HostForEach(const std::function<void(uint64_t, const uint64_t*)>& fn) const override;

  // -- Introspection -------------------------------------------------------
  uint32_t PartitionOfKey(uint64_t key) const;
  uint32_t OwnerCore(uint64_t key) const;  // service core of the partition
  uint32_t num_partitions() const override { return static_cast<uint32_t>(parts_.size()); }
  uint32_t value_words() const override { return cfg_.value_words; }
  uint32_t buckets_per_partition() const { return cfg_.buckets_per_partition; }
  // [base, base + bytes) of a partition's slab, for tests and the chaos
  // harness's initial-state recording.
  std::pair<uint64_t, uint64_t> SlabRange(uint32_t partition) const override;
  // Live nodes currently allocated out of a partition's pool.
  uint64_t NodesInUse(uint32_t partition) const override;
  const char* IndexKindName() const override { return "hash"; }

  uint64_t node_words() const { return 2 + cfg_.value_words; }
  uint64_t node_bytes() const { return node_words() * kWordBytes; }

 private:
  struct Partition {
    uint64_t slab_base = 0;   // stripe-aligned, registered with the map
    uint64_t slab_bytes = 0;
    uint64_t pool_base = 0;   // first node of the pool
    uint32_t next_unused = 0; // bump index into the pool
    std::vector<uint64_t> free_nodes;
    uint64_t in_use = 0;
    // Wrappers on the thread backend allocate/recycle concurrently.
    std::mutex mu;
  };

  // 64-bit finalizer; low half selects the partition, high half the bucket.
  static uint64_t Hash(uint64_t key);
  uint32_t BucketIndexOf(uint64_t key) const;
  uint64_t BucketAddr(uint64_t key) const;
  uint64_t BucketAddrAt(uint32_t partition, uint32_t bucket) const;
  static uint64_t KeyAddr(uint64_t node) { return node; }
  static uint64_t NextAddr(uint64_t node) { return node + kWordBytes; }
  static uint64_t ValueAddr(uint64_t node) { return node + 2 * kWordBytes; }

  // Pool management (host-side metadata). AllocNode returns 0 on
  // exhaustion; the wrappers turn that into a checked error.
  uint64_t AllocNode(uint32_t partition);
  void FreeNode(uint32_t partition, uint64_t node);

  // Walks the bucket chain for `key`. Returns the node address (0 when
  // absent) and stores the address of the link pointing at it (the bucket
  // head or a predecessor's next word) in `prev_link`.
  uint64_t TxLocate(Tx& tx, uint64_t key, uint64_t* prev_link) const;
  // Links `node` in at `prev_link` (as returned by a missing TxLocate):
  // fills key/next/value, then publishes by writing the link word last.
  void TxLinkNew(Tx& tx, uint64_t prev_link, uint64_t node, uint64_t key,
                 const uint64_t* value) const;

  SharedMemory* mem_;
  KvStoreConfig cfg_;
  const DeploymentPlan* plan_;
  std::vector<std::unique_ptr<Partition>> parts_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_APPS_KVSTORE_H_

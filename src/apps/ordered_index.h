// Partitioned transactional B+-tree (the ordered store).
//
// The index divides its key RANGE — not a hash of it — into one contiguous
// sub-range per DTM service core and gives each partition its own B+-tree
// in its own slab (root pointer + node pool), registered with
// AddressMap::AddOwnedRange. As in the KV store this is the share-little
// layout: every lock acquisition for a partition's keys routes to the
// partition's owning service core, and because the partitioning is by
// range, a range scan's lock traffic walks the service cores in key order
// instead of spraying them.
//
// Within a partition the tree is a B+-tree of uniform node slots. Every
// node — leaf or inner — holds up to `fanout` sorted entries:
//
//   node layout: [meta][next][k0..k_{F-1}][payload0 .. payload_{F-1}]
//
// where meta packs (is_leaf, count), `next` chains leaves left-to-right
// (0-terminated per partition; inner nodes keep it 0), and each payload
// slot is `value_words` wide: a leaf entry's inline value, or — word 0
// only — an inner entry's child pointer. Inner entries are (separator,
// child) pairs where the separator is the child subtree's minimum key at
// the time it was linked; routing descends the rightmost entry whose
// separator is <= the key (entry 0 also catches smaller keys), which keeps
// lookups and inserts consistent even while separators age.
//
// Node reads go through one Tx::ReadMany covering meta, next, keys and
// payload word 0 of every slot, so one tree level costs one batched lock
// round trip to the owning service core (or zero messages on the
// owner-local fast path); under the elastic modes the descent is exactly
// the paper's Section 6 sliding-window traversal.
//
// Structure-modification operations — leaf/inner splits, sibling merges,
// borrows, root growth and collapse — are ordinary deferred writes inside
// the caller's transaction: the whole SMO commits atomically or not at
// all. Node allocation is host-side (per-partition pools with free-list
// recycling, as in the KV store); an SmoScratch carries allocations across
// the retries of one transaction and returns unused or unlinked nodes to
// the pools only after the commit.
//
// Scan(lo, hi) descends once to the leaf containing `lo`, then walks the
// leaf chain, hopping to the next partition's tree when a chain ends.
// Under TxMode::kNormal the scan is snapshot-consistent (every visited
// word stays read-locked to the commit); the elastic modes trade that for
// the paper's sliding window, exactly as in their list traversals.
#ifndef TM2C_SRC_APPS_ORDERED_INDEX_H_
#define TM2C_SRC_APPS_ORDERED_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/apps/tx_store_api.h"
#include "src/runtime/core_env.h"
#include "src/shmem/allocator.h"
#include "src/tm/address_map.h"
#include "src/tm/tx_runtime.h"

namespace tm2c {

struct OrderedIndexConfig {
  // Inclusive key range served by the index; keys are non-zero and the
  // range is split evenly into one contiguous sub-range per partition.
  uint64_t key_min = 1;
  uint64_t key_max = 1 << 20;
  // Inline value payload, in words (>= 1).
  uint32_t value_words = 1;
  // Maximum entries per node (leaf values or inner children). The default
  // keeps a full node read (2 + 2*fanout words) within one default-sized
  // acquisition batch. 3 <= fanout <= 16.
  uint32_t fanout = 6;
  // Node-pool capacity per partition (leaves + inner nodes). Sized by the
  // caller; exhaustion is a checked error. A tree of N entries needs at
  // most ~2*ceil(2N/fanout) nodes.
  uint32_t capacity_per_partition = 1024;
  // Recycle merged-away nodes through the partition free list.
  bool reuse_nodes = true;
  // Planted SMO fault (verification only; FaultMode::kSmoSkipParentLink):
  // a leaf split publishes the new right leaf in the leaf chain but SKIPS
  // linking it into its parent — the classic publish-child-before-
  // parent-link bug. Descents miss every key in the orphan leaf while
  // chain scans still see them; HostCheckStructure must flag the tree.
  bool smo_skip_parent_link = false;
};

class OrderedIndex : public TxStoreApi {
 public:
  // Carves one slab per DTM partition out of `allocator` (placed near the
  // owning service core) and registers each slab with `map`. Each
  // partition starts as a single empty leaf. Setup-time only.
  OrderedIndex(ShmAllocator& allocator, SharedMemory& mem, AddressMap& map,
               const DeploymentPlan& plan, OrderedIndexConfig cfg);

  // Node allocations carried across the retries of one transaction.
  // Pattern (the wrappers below do exactly this):
  //   OrderedIndex::SmoScratch scratch;
  //   rt.Execute([&](Tx& tx) {
  //     scratch.ResetAttempt();
  //     index.TxPut(tx, key, value, &scratch);
  //   });
  //   index.SettleScratch(&scratch);  // after commit
  struct SmoScratch {
    // Nodes handed out by the pools for this transaction; `taken` flags
    // which ones the current attempt consumed (an abort resets the flags,
    // so a retry reuses the same nodes instead of leaking them).
    std::vector<std::pair<uint32_t, uint64_t>> fresh;  // (partition, node)
    std::vector<bool> taken;
    // Nodes the current attempt unlinked (merge victims, collapsed
    // roots); recycled by SettleScratch once the unlink has committed.
    std::vector<std::pair<uint32_t, uint64_t>> freed;

    void ResetAttempt() {
      std::fill(taken.begin(), taken.end(), false);
      freed.clear();
    }
  };

  // -- Composable transactional operations --------------------------------
  bool TxGet(Tx& tx, uint64_t key, uint64_t* value) const override;
  bool TxReadModifyWrite(Tx& tx, uint64_t key,
                         const std::function<void(uint64_t*)>& fn) const override;
  // Ordered range scan over [lo, hi]: entries in ascending key order,
  // appended to `out`, at most `limit` of them. Returns the count.
  uint32_t TxRangeScan(Tx& tx, uint64_t lo, uint64_t hi, uint32_t limit,
                       std::vector<KvEntry>* out) const;
  // TxStoreApi scan: ascending from `start_key` to the end of the range.
  uint32_t TxScan(Tx& tx, uint64_t start_key, uint32_t limit,
                  std::vector<KvEntry>* out) const override {
    return TxRangeScan(tx, start_key, cfg_.key_max, limit, out);
  }
  // Insert-or-update; returns true on insert. Splits draw from `scratch`.
  bool TxPut(Tx& tx, uint64_t key, const uint64_t* value, SmoScratch* scratch);
  // Insert-only; returns false (writing nothing) when the key exists.
  bool TxInsert(Tx& tx, uint64_t key, const uint64_t* value, SmoScratch* scratch);
  // Removes `key`; the old value lands in `old_value` (if non-null).
  // Underfull leaves merge with or borrow from a sibling; unlinked nodes
  // land in scratch->freed for SettleScratch.
  bool TxDelete(Tx& tx, uint64_t key, uint64_t* old_value, SmoScratch* scratch);
  // After the transaction committed: recycles scratch->freed and the
  // untaken remainder of scratch->fresh back to the pools.
  void SettleScratch(SmoScratch* scratch);

  // -- One-transaction wrappers -------------------------------------------
  bool Get(TxRuntime& rt, uint64_t key, std::vector<uint64_t>* value) const override;
  bool Put(TxRuntime& rt, uint64_t key, const uint64_t* value) override;
  bool Insert(TxRuntime& rt, uint64_t key, const uint64_t* value) override;
  bool Delete(TxRuntime& rt, uint64_t key,
              std::vector<uint64_t>* old_value = nullptr) override;
  bool ReadModifyWrite(TxRuntime& rt, uint64_t key,
                       const std::function<void(uint64_t*)>& fn) const override;
  std::vector<KvEntry> Scan(TxRuntime& rt, uint64_t start_key,
                            uint32_t limit) const override;
  std::vector<KvEntry> RangeScan(TxRuntime& rt, uint64_t lo, uint64_t hi,
                                 uint32_t limit) const;

  // -- Host-side helpers (zero simulated cost; load phase + verification) --
  bool HostPut(uint64_t key, const uint64_t* value) override;  // insert-or-update
  bool HostInsert(uint64_t key, const uint64_t* value);        // insert-only
  bool HostDelete(uint64_t key, uint64_t* old_value = nullptr);
  bool HostGet(uint64_t key, uint64_t* value) const override;
  uint64_t HostSize() const override;
  // Ascending key order (the leaf chains, partition by partition).
  void HostForEach(const std::function<void(uint64_t, const uint64_t*)>& fn) const override;
  std::vector<KvEntry> HostRangeScan(uint64_t lo, uint64_t hi, uint32_t limit) const;

  // Tree-shape invariants, host-side, appended to `problems` as one string
  // each (empty = intact). Checks, per partition: node counts and key
  // order within every reachable node; separator consistency (child
  // subtrees strictly ordered around their parent separators); leaf keys
  // strictly ascending along the chain and within the partition's key
  // sub-range; linked-leaf completeness (the leaf chain visits exactly the
  // leaves the inner nodes reach, in the same order); and node accounting
  // (reachable nodes == the pool's live-node count). This is what catches
  // the planted SMO fault: an orphan leaf is chained but not parented.
  void HostCheckStructure(std::vector<std::string>* problems) const;

  // -- Introspection -------------------------------------------------------
  uint32_t PartitionOfKey(uint64_t key) const;
  uint32_t OwnerCore(uint64_t key) const;  // service core of the partition
  // First key of a partition's contiguous sub-range.
  uint64_t PartitionMinKey(uint32_t partition) const;
  // Tree height of a partition (1 = the root is a leaf). Host-side; the
  // chaos harness uses it to assert its trees are non-vacuously deep.
  uint32_t HostDepthOfPartition(uint32_t partition) const;
  uint32_t num_partitions() const override { return static_cast<uint32_t>(parts_.size()); }
  uint32_t value_words() const override { return cfg_.value_words; }
  uint32_t fanout() const { return cfg_.fanout; }
  uint64_t key_min() const { return cfg_.key_min; }
  uint64_t key_max() const { return cfg_.key_max; }
  std::pair<uint64_t, uint64_t> SlabRange(uint32_t partition) const override;
  uint64_t NodesInUse(uint32_t partition) const override;
  const char* IndexKindName() const override { return "btree"; }

  // [meta][next][keys][payloads]; each payload slot is value_words wide.
  uint64_t node_words() const { return 2 + uint64_t{cfg_.fanout} * (1 + cfg_.value_words); }
  uint64_t node_bytes() const { return node_words() * kWordBytes; }

 private:
  struct Partition {
    uint64_t slab_base = 0;   // stripe-aligned; word 0 is the root pointer
    uint64_t slab_bytes = 0;
    uint64_t pool_base = 0;
    uint32_t next_unused = 0;
    std::vector<uint64_t> free_nodes;
    uint64_t in_use = 0;
    // Wrappers on the thread backend allocate/recycle concurrently.
    std::mutex mu;
  };

  // One node as read by a single ReadMany: meta, next, every key and
  // payload word 0 of every slot (an inner entry's child pointer, a leaf
  // entry's first value word). Counts are clamped to the fanout on read so
  // a corrupted meta word yields a bounded wrong answer, not a wild walk.
  struct NodeView {
    uint64_t addr = 0;
    bool is_leaf = false;
    uint32_t count = 0;
    uint64_t next = 0;
    uint32_t down_index = 0;  // child slot a descent took (inner nodes)
    std::vector<uint64_t> keys;      // fanout words
    std::vector<uint64_t> payload0;  // fanout words
  };
  // One entry with its full payload (value_words words; inner entries use
  // word 0 as the child pointer and keep the rest zero).
  struct FullEntry {
    uint64_t key = 0;
    std::vector<uint64_t> payload;
  };
  struct Descent {
    std::vector<NodeView> path;  // root..parent-of-leaf, with down_index
    NodeView leaf;
  };

  uint64_t RootPtrAddr(uint32_t partition) const { return parts_[partition]->slab_base; }
  uint64_t MetaAddr(uint64_t node) const { return node; }
  uint64_t NextAddr(uint64_t node) const { return node + kWordBytes; }
  uint64_t KeyAddr(uint64_t node, uint32_t i) const {
    return node + (2 + uint64_t{i}) * kWordBytes;
  }
  uint64_t PayloadAddr(uint64_t node, uint32_t i) const {
    return node + (2 + uint64_t{cfg_.fanout} + uint64_t{i} * cfg_.value_words) * kWordBytes;
  }

  // Pool management (host-side metadata). AllocNode returns 0 on
  // exhaustion; callers turn that into a checked error.
  uint64_t AllocNode(uint32_t partition);
  void FreeNode(uint32_t partition, uint64_t node);
  // Draws a node for `partition` from the scratch (reusing an untaken
  // earlier allocation first). Checked error on pool exhaustion.
  uint64_t TakeScratchNode(uint32_t partition, SmoScratch* scratch);
  // True iff `node` is a properly aligned slot of the partition's pool —
  // the guard every pointer read from shared memory passes before it is
  // dereferenced, so corrupted links dead-end instead of walking wild.
  bool InPool(uint32_t partition, uint64_t node) const;

  // The algorithms, templated over a memory accessor so the transactional
  // and host paths share one implementation (defined in the .cc; both
  // accessors live there too).
  template <typename Acc>
  NodeView ReadNode(const Acc& acc, uint64_t node) const;
  template <typename Acc>
  bool Descend(const Acc& acc, uint32_t partition, uint64_t key, bool want_path,
               Descent* d) const;
  template <typename Acc>
  std::vector<FullEntry> MaterializeEntries(const Acc& acc, const NodeView& view) const;
  template <typename Acc>
  void WriteEntries(const Acc& acc, uint64_t node, bool is_leaf,
                    const std::vector<FullEntry>& entries, uint32_t from) const;
  template <typename Acc>
  void WriteMeta(const Acc& acc, uint64_t node, bool is_leaf, uint32_t count) const;
  // Links a freshly split-off child into the ancestors: inserts
  // (separator, child) right of the slot the descent took, splitting inner
  // nodes upward as needed, growing a new root when the old one splits.
  template <typename Acc>
  void InsertUpImpl(const Acc& acc, uint32_t partition, const std::vector<NodeView>& path,
                    uint64_t split_node, uint64_t separator, uint64_t child,
                    SmoScratch* scratch);
  // Merges/borrows an underfull node back to health, ascending while inner
  // nodes underflow in turn, collapsing the root when it ends up with a
  // single child.
  template <typename Acc>
  void RebalanceImpl(const Acc& acc, uint32_t partition, const Descent& d,
                     std::vector<FullEntry> cur_entries, SmoScratch* scratch);
  template <typename Acc>
  bool GetImpl(const Acc& acc, uint64_t key, uint64_t* value) const;
  template <typename Acc>
  bool RmwImpl(const Acc& acc, uint64_t key,
               const std::function<void(uint64_t*)>& fn) const;
  template <typename Acc>
  uint32_t ScanImpl(const Acc& acc, uint64_t lo, uint64_t hi, uint32_t limit,
                    const std::function<void(uint64_t, const uint64_t*)>& sink) const;
  template <typename Acc>
  bool PutImpl(const Acc& acc, uint64_t key, const uint64_t* value, bool insert_only,
               SmoScratch* scratch);
  template <typename Acc>
  bool DeleteImpl(const Acc& acc, uint64_t key, uint64_t* old_value, SmoScratch* scratch);

  SharedMemory* mem_;
  OrderedIndexConfig cfg_;
  const DeploymentPlan* plan_;
  std::vector<std::unique_ptr<Partition>> parts_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_APPS_ORDERED_INDEX_H_

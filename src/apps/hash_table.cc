#include "src/apps/hash_table.h"

#include "src/common/check.h"

namespace tm2c {

ShmHashTable::ShmHashTable(ShmAllocator& allocator, SharedMemory& mem, uint32_t num_buckets)
    : mem_(&mem), num_buckets_(num_buckets) {
  TM2C_CHECK(num_buckets >= 1);
  base_ = allocator.AllocGlobal(static_cast<uint64_t>(num_buckets) * kWordBytes);
  for (uint32_t b = 0; b < num_buckets; ++b) {
    mem_->StoreWord(base_ + b * kWordBytes, 0);
  }
}

bool ShmHashTable::TxContains(Tx& tx, uint64_t key) const {
  TM2C_DCHECK(key != 0);
  uint64_t node = tx.Read(BucketAddr(key));
  while (node != 0) {
    const uint64_t node_key = tx.Read(KeyAddr(node));
    if (node_key == key) {
      return true;
    }
    if (node_key > key) {
      return false;  // sorted bucket: passed the insertion point
    }
    node = tx.Read(NextAddr(node));
  }
  return false;
}

bool ShmHashTable::TxAdd(Tx& tx, uint64_t key, uint64_t node_addr) const {
  TM2C_DCHECK(key != 0 && node_addr != 0);
  uint64_t prev_link = BucketAddr(key);
  uint64_t node = tx.Read(prev_link);
  while (node != 0) {
    const uint64_t node_key = tx.Read(KeyAddr(node));
    if (node_key == key) {
      return false;
    }
    if (node_key > key) {
      break;
    }
    prev_link = NextAddr(node);
    node = tx.Read(prev_link);
  }
  tx.Write(KeyAddr(node_addr), key);
  tx.Write(NextAddr(node_addr), node);
  tx.Write(prev_link, node_addr);
  return true;
}

bool ShmHashTable::TxRemove(Tx& tx, uint64_t key) const {
  TM2C_DCHECK(key != 0);
  uint64_t prev_link = BucketAddr(key);
  uint64_t node = tx.Read(prev_link);
  while (node != 0) {
    const uint64_t node_key = tx.Read(KeyAddr(node));
    if (node_key == key) {
      tx.Write(prev_link, tx.Read(NextAddr(node)));
      return true;  // node itself is leaked (see header)
    }
    if (node_key > key) {
      return false;
    }
    prev_link = NextAddr(node);
    node = tx.Read(prev_link);
  }
  return false;
}

bool ShmHashTable::Contains(TxRuntime& rt, uint64_t key) const {
  bool found = false;
  rt.Execute([&](Tx& tx) { found = TxContains(tx, key); });
  return found;
}

bool ShmHashTable::Add(TxRuntime& rt, ShmAllocator& allocator, uint64_t key) const {
  uint64_t node = 0;  // allocated once, reused across retries
  bool inserted = false;
  rt.Execute([&](Tx& tx) {
    if (node == 0) {
      node = allocator.Alloc(kNodeBytes, rt.env().core_id());
    }
    inserted = TxAdd(tx, key, node);
  });
  if (!inserted && node != 0) {
    allocator.Free(node);
  }
  return inserted;
}

bool ShmHashTable::Remove(TxRuntime& rt, uint64_t key) const {
  bool removed = false;
  rt.Execute([&](Tx& tx) { removed = TxRemove(tx, key); });
  return removed;
}

bool ShmHashTable::Move(TxRuntime& rt, ShmAllocator& allocator, uint64_t from_key,
                        uint64_t to_key) const {
  uint64_t node = 0;
  uint64_t undo_node = 0;
  bool moved = false;
  bool used_undo = false;
  rt.Execute([&](Tx& tx) {
    moved = false;
    used_undo = false;
    // Remove first, insert second — the paper's move "removes an element
    // and inserts a new one". Under eager acquisition the removal's write
    // lock is held across the insertion's traversal, which is exactly the
    // window Figure 4(c) measures. If the destination turns out to be
    // occupied, the removal is undone inside the same transaction (the
    // reads stay consistent, so the re-insertion cannot fail).
    if (!TxRemove(tx, from_key)) {
      return;  // source missing: nothing to move
    }
    if (node == 0) {
      node = allocator.Alloc(kNodeBytes, rt.env().core_id());
    }
    if (!TxAdd(tx, to_key, node)) {
      if (undo_node == 0) {
        undo_node = allocator.Alloc(kNodeBytes, rt.env().core_id());
      }
      const bool restored = TxAdd(tx, from_key, undo_node);
      TM2C_CHECK(restored);
      used_undo = true;
      return;  // destination occupied: commit restores the original state
    }
    moved = true;
  });
  if (!moved && node != 0) {
    allocator.Free(node);
  }
  if (!used_undo && undo_node != 0) {
    allocator.Free(undo_node);
  }
  return moved;
}

bool ShmHashTable::SeqContains(CoreEnv& env, uint64_t key) const {
  uint64_t node = env.ShmemRead(BucketAddr(key));
  while (node != 0) {
    const uint64_t node_key = env.ShmemRead(KeyAddr(node));
    if (node_key == key) {
      return true;
    }
    if (node_key > key) {
      return false;
    }
    node = env.ShmemRead(NextAddr(node));
  }
  return false;
}

bool ShmHashTable::SeqAdd(CoreEnv& env, ShmAllocator& allocator, uint64_t key) const {
  uint64_t prev_link = BucketAddr(key);
  uint64_t node = env.ShmemRead(prev_link);
  while (node != 0) {
    const uint64_t node_key = env.ShmemRead(KeyAddr(node));
    if (node_key == key) {
      return false;
    }
    if (node_key > key) {
      break;
    }
    prev_link = NextAddr(node);
    node = env.ShmemRead(prev_link);
  }
  const uint64_t fresh = allocator.Alloc(kNodeBytes, env.core_id());
  env.ShmemWrite(KeyAddr(fresh), key);
  env.ShmemWrite(NextAddr(fresh), node);
  env.ShmemWrite(prev_link, fresh);
  return true;
}

bool ShmHashTable::SeqRemove(CoreEnv& env, uint64_t key) const {
  uint64_t prev_link = BucketAddr(key);
  uint64_t node = env.ShmemRead(prev_link);
  while (node != 0) {
    const uint64_t node_key = env.ShmemRead(KeyAddr(node));
    if (node_key == key) {
      env.ShmemWrite(prev_link, env.ShmemRead(NextAddr(node)));
      return true;
    }
    if (node_key > key) {
      return false;
    }
    prev_link = NextAddr(node);
    node = env.ShmemRead(prev_link);
  }
  return false;
}

bool ShmHashTable::HostAdd(ShmAllocator& allocator, uint64_t key) const {
  uint64_t prev_link = BucketAddr(key);
  uint64_t node = mem_->LoadWord(prev_link);
  while (node != 0) {
    const uint64_t node_key = mem_->LoadWord(KeyAddr(node));
    if (node_key == key) {
      return false;
    }
    if (node_key > key) {
      break;
    }
    prev_link = NextAddr(node);
    node = mem_->LoadWord(prev_link);
  }
  const uint64_t fresh = allocator.AllocGlobal(kNodeBytes);
  mem_->StoreWord(KeyAddr(fresh), key);
  mem_->StoreWord(NextAddr(fresh), node);
  mem_->StoreWord(prev_link, fresh);
  return true;
}

bool ShmHashTable::HostContains(uint64_t key) const {
  uint64_t node = mem_->LoadWord(BucketAddr(key));
  while (node != 0) {
    const uint64_t node_key = mem_->LoadWord(KeyAddr(node));
    if (node_key == key) {
      return true;
    }
    if (node_key > key) {
      return false;
    }
    node = mem_->LoadWord(NextAddr(node));
  }
  return false;
}

uint64_t ShmHashTable::HostSize() const {
  uint64_t count = 0;
  for (uint32_t b = 0; b < num_buckets_; ++b) {
    uint64_t node = mem_->LoadWord(base_ + b * kWordBytes);
    while (node != 0) {
      ++count;
      node = mem_->LoadWord(NextAddr(node));
    }
  }
  return count;
}

}  // namespace tm2c

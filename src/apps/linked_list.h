// The synchrobench-style sorted linked list benchmark structure
// (Sections 6.2 and 7.2).
//
// One global sorted singly linked list of [key, next] nodes implementing a
// set. Same access modes as ShmHashTable. This is the structure the elastic
// transaction evaluation uses: run the Tx* operations under
// TxMode::kElasticEarly or kElasticRead to relax the read-prefix atomicity,
// exactly as Section 6 describes (node i no longer matters once the search
// passed node i+1).
#ifndef TM2C_SRC_APPS_LINKED_LIST_H_
#define TM2C_SRC_APPS_LINKED_LIST_H_

#include <cstdint>

#include "src/runtime/core_env.h"
#include "src/shmem/allocator.h"
#include "src/tm/tx_runtime.h"

namespace tm2c {

class ShmSortedList {
 public:
  ShmSortedList(ShmAllocator& allocator, SharedMemory& mem);

  // -- Composable transactional operations --------------------------------
  bool TxContains(Tx& tx, uint64_t key) const;
  bool TxAdd(Tx& tx, uint64_t key, uint64_t node_addr) const;
  bool TxRemove(Tx& tx, uint64_t key) const;

  // -- One-transaction wrappers -------------------------------------------
  bool Contains(TxRuntime& rt, uint64_t key) const;
  bool Add(TxRuntime& rt, ShmAllocator& allocator, uint64_t key) const;
  bool Remove(TxRuntime& rt, uint64_t key) const;

  // -- Sequential baseline --------------------------------------------------
  bool SeqContains(CoreEnv& env, uint64_t key) const;
  bool SeqAdd(CoreEnv& env, ShmAllocator& allocator, uint64_t key) const;
  bool SeqRemove(CoreEnv& env, uint64_t key) const;

  // -- Host-side helpers ----------------------------------------------------
  bool HostAdd(ShmAllocator& allocator, uint64_t key) const;
  bool HostContains(uint64_t key) const;
  uint64_t HostSize() const;

  static constexpr uint64_t kNodeBytes = 2 * kWordBytes;

 private:
  static uint64_t KeyAddr(uint64_t node) { return node; }
  static uint64_t NextAddr(uint64_t node) { return node + kWordBytes; }

  SharedMemory* mem_;
  uint64_t head_ = 0;  // address of the head pointer word
};

}  // namespace tm2c

#endif  // TM2C_SRC_APPS_LINKED_LIST_H_

// The master-less MapReduce letter-count application (Section 5.4).
//
// A synthetic text lives in shared memory (the paper used 256MB-2GB files;
// we generate seeded random text at a configurable, smaller scale and note
// the scale factor in EXPERIMENTS.md). Worker cores repeatedly claim the
// next chunk through a small transaction on a shared chunk counter — TM2C
// replaces the master node — stream the chunk from memory, count letter
// occurrences locally, and finally merge their local histogram into the
// shared one with one closing transaction.
//
// The per-chunk compute cost models the P54C's small L1: chunks larger than
// the application's effective share of the data cache pay the platform's
// cache-miss penalty, which is why 8KB chunks beat 16KB ones on the SCC
// (Figure 6(b)); the per-chunk claim transaction is why 4KB chunks lose to
// 8KB.
#ifndef TM2C_SRC_APPS_MAPREDUCE_H_
#define TM2C_SRC_APPS_MAPREDUCE_H_

#include <array>
#include <cstdint>

#include "src/runtime/core_env.h"
#include "src/shmem/allocator.h"
#include "src/tm/tx_runtime.h"

namespace tm2c {

struct MapReduceConfig {
  uint64_t input_bytes = 4 << 20;
  uint64_t seed = 1;
  // Letter-counting cost per byte, in core cycles (before cache penalty).
  // Calibrated from the paper's own Figure 6(a): 256MB in ~700s at 2 cores
  // (1 worker) is ~2.7 us per byte on the 533 MHz P54C — about 1400 cycles
  // per byte of uncached word-by-word reading plus counting. This also
  // makes the per-chunk claim transaction negligible, matching the paper's
  // "transactional load is low" observation.
  uint64_t compute_cycles_per_byte = 1400;
  // Fixed per-chunk cost on workers: remapping the chunk's shared pages
  // into the core's LUT entries and the attendant TLB invalidation, a
  // well-known SCC overhead. This is what penalizes small (4KB) chunks
  // relative to 8KB ones in Figure 6(b).
  uint64_t chunk_overhead_cycles = 533000;  // ~1 ms at 533 MHz
};

class MapReduceApp {
 public:
  static constexpr uint32_t kLetters = 26;

  // Generates the input text host-side and allocates the shared chunk
  // counter and histogram.
  MapReduceApp(ShmAllocator& allocator, SharedMemory& mem, const MapReduceConfig& config);

  // Worker loop: claims chunks until the input is exhausted, then merges
  // its local histogram transactionally.
  void RunWorker(CoreEnv& env, TxRuntime& rt, uint64_t chunk_bytes) const;

  // Sequential baseline: one core scans the whole input linearly — no
  // transactions, no per-chunk page remapping, and streaming access that
  // stays cache-friendly (no chunk-size cache penalty). This is the "bare
  // sequential" program the paper's speedups are measured against.
  void RunSequential(CoreEnv& env) const;

  // Clears the chunk counter and shared histogram between runs.
  void ResetRun();

  // Host-side ground truth and the shared result.
  std::array<uint64_t, kLetters> HostExpectedCounts() const;
  std::array<uint64_t, kLetters> HostResultCounts() const;

  uint64_t input_bytes() const { return config_.input_bytes; }

 private:
  uint64_t ChunkComputeCycles(const PlatformDesc& platform, uint64_t chunk_bytes) const;
  void CountChunkHost(uint64_t offset, uint64_t bytes,
                      std::array<uint64_t, kLetters>* counts) const;

  SharedMemory* mem_;
  MapReduceConfig config_;
  uint64_t text_base_ = 0;
  uint64_t counter_addr_ = 0;
  uint64_t histogram_base_ = 0;
};

}  // namespace tm2c

#endif  // TM2C_SRC_APPS_MAPREDUCE_H_

#include "src/apps/bank.h"

#include "src/common/check.h"

namespace tm2c {

Bank::Bank(ShmAllocator& allocator, SharedMemory& mem, uint32_t num_accounts, uint64_t initial)
    : mem_(&mem), num_accounts_(num_accounts) {
  TM2C_CHECK(num_accounts >= 2);
  base_ = allocator.AllocGlobal(static_cast<uint64_t>(num_accounts) * kWordBytes);
  lock_addr_ = allocator.AllocGlobal(kWordBytes);
  for (uint32_t a = 0; a < num_accounts; ++a) {
    mem_->StoreWord(AccountAddr(a), initial);
  }
  mem_->StoreWord(lock_addr_, 0);
}

void Bank::TxTransfer(Tx& tx, uint32_t from, uint32_t to, uint64_t amount) const {
  const uint64_t from_balance = tx.Read(AccountAddr(from));
  const uint64_t to_balance = tx.Read(AccountAddr(to));
  tx.Write(AccountAddr(from), from_balance - amount);
  tx.Write(AccountAddr(to), to_balance + amount);
}

uint64_t Bank::TxBalance(Tx& tx) const {
  uint64_t total = 0;
  for (uint32_t a = 0; a < num_accounts_; ++a) {
    total += tx.Read(AccountAddr(a));
  }
  return total;
}

void Bank::AcquireGlobalLock(CoreEnv& env) const {
  // Test-and-test-and-set: spin on a plain read, attempt the TAS only when
  // the lock looks free — the usual way to keep a TAS register usable.
  for (;;) {
    if (env.ShmemTestAndSet(lock_addr_)) {
      return;
    }
    while (env.ShmemRead(lock_addr_) != 0) {
      env.Compute(50);
    }
  }
}

void Bank::ReleaseGlobalLock(CoreEnv& env) const { env.ShmemWrite(lock_addr_, 0); }

void Bank::LockTransfer(CoreEnv& env, uint32_t from, uint32_t to, uint64_t amount) const {
  AcquireGlobalLock(env);
  const uint64_t from_balance = env.ShmemRead(AccountAddr(from));
  const uint64_t to_balance = env.ShmemRead(AccountAddr(to));
  env.ShmemWrite(AccountAddr(from), from_balance - amount);
  env.ShmemWrite(AccountAddr(to), to_balance + amount);
  ReleaseGlobalLock(env);
}

uint64_t Bank::LockBalance(CoreEnv& env) const {
  AcquireGlobalLock(env);
  uint64_t total = 0;
  for (uint32_t a = 0; a < num_accounts_; ++a) {
    total += env.ShmemRead(AccountAddr(a));
  }
  ReleaseGlobalLock(env);
  return total;
}

void Bank::SeqTransfer(CoreEnv& env, uint32_t from, uint32_t to, uint64_t amount) const {
  const uint64_t from_balance = env.ShmemRead(AccountAddr(from));
  const uint64_t to_balance = env.ShmemRead(AccountAddr(to));
  env.ShmemWrite(AccountAddr(from), from_balance - amount);
  env.ShmemWrite(AccountAddr(to), to_balance + amount);
}

uint64_t Bank::SeqBalance(CoreEnv& env) const {
  uint64_t total = 0;
  for (uint32_t a = 0; a < num_accounts_; ++a) {
    total += env.ShmemRead(AccountAddr(a));
  }
  return total;
}

uint64_t Bank::HostTotal() const {
  uint64_t total = 0;
  for (uint32_t a = 0; a < num_accounts_; ++a) {
    total += mem_->LoadWord(AccountAddr(a));
  }
  return total;
}

}  // namespace tm2c

// The synchrobench-style hash table benchmark structure (Section 5.2).
//
// A fixed bucket array in shared memory; each bucket is a sorted singly
// linked list of nodes [key, next]. Keys are non-zero 64-bit integers; 0 is
// the null pointer. Operations: contains / add / remove, plus the move
// operation (remove one key, insert another, atomically) introduced for the
// eager-vs-lazy write acquisition experiment (Figure 4(c)).
//
// Three access modes share the layout:
//  - Tx* methods compose inside a caller-provided transaction,
//  - wrapper methods (Add/Remove/Contains/Move) run their own transaction
//    via a TxRuntime, handling node allocation across retries,
//  - Seq* methods run unsynchronized through a CoreEnv (the sequential
//    baseline), and Host* helpers touch memory directly at zero cost for
//    setup and verification.
//
// Removed nodes are leaked, as in synchrobench: reclamation would require
// epochs/quiescence, which neither the paper nor the benchmarks model.
#ifndef TM2C_SRC_APPS_HASH_TABLE_H_
#define TM2C_SRC_APPS_HASH_TABLE_H_

#include <cstdint>

#include "src/runtime/core_env.h"
#include "src/shmem/allocator.h"
#include "src/tm/tx_runtime.h"

namespace tm2c {

class ShmHashTable {
 public:
  // Allocates the bucket array host-side (region 0, like the paper's
  // initial table living in a single memory controller).
  ShmHashTable(ShmAllocator& allocator, SharedMemory& mem, uint32_t num_buckets);

  // -- Composable transactional operations --------------------------------
  bool TxContains(Tx& tx, uint64_t key) const;
  // Inserts `key` using `node_addr` as the new node if insertion happens.
  // Returns true if inserted (node consumed), false if the key existed.
  bool TxAdd(Tx& tx, uint64_t key, uint64_t node_addr) const;
  bool TxRemove(Tx& tx, uint64_t key) const;

  // -- One-transaction wrappers -------------------------------------------
  bool Contains(TxRuntime& rt, uint64_t key) const;
  bool Add(TxRuntime& rt, ShmAllocator& allocator, uint64_t key) const;
  bool Remove(TxRuntime& rt, uint64_t key) const;
  // Atomically removes `from_key` and inserts `to_key`. Returns true if
  // both halves took effect.
  bool Move(TxRuntime& rt, ShmAllocator& allocator, uint64_t from_key, uint64_t to_key) const;

  // -- Sequential baseline (unsynchronized, timed through env) ------------
  bool SeqContains(CoreEnv& env, uint64_t key) const;
  bool SeqAdd(CoreEnv& env, ShmAllocator& allocator, uint64_t key) const;
  bool SeqRemove(CoreEnv& env, uint64_t key) const;

  // -- Host-side helpers (zero simulated cost) -----------------------------
  bool HostAdd(ShmAllocator& allocator, uint64_t key) const;
  bool HostContains(uint64_t key) const;
  uint64_t HostSize() const;

  uint32_t num_buckets() const { return num_buckets_; }
  static constexpr uint64_t kNodeBytes = 2 * kWordBytes;

 private:
  uint64_t BucketAddr(uint64_t key) const {
    const uint64_t h = key * 0xff51afd7ed558ccdull;
    return base_ + (h >> 32) % num_buckets_ * kWordBytes;
  }
  static uint64_t KeyAddr(uint64_t node) { return node; }
  static uint64_t NextAddr(uint64_t node) { return node + kWordBytes; }

  SharedMemory* mem_;
  uint32_t num_buckets_;
  uint64_t base_ = 0;
};

}  // namespace tm2c

#endif  // TM2C_SRC_APPS_HASH_TABLE_H_

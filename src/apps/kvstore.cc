#include "src/apps/kvstore.h"

#include <algorithm>

#include "src/common/check.h"

namespace tm2c {

KvStore::KvStore(ShmAllocator& allocator, SharedMemory& mem, AddressMap& map,
                 const DeploymentPlan& plan, KvStoreConfig cfg)
    : mem_(&mem), cfg_(cfg), plan_(&plan) {
  TM2C_CHECK(cfg_.buckets_per_partition >= 1);
  TM2C_CHECK(cfg_.value_words >= 1);
  TM2C_CHECK(cfg_.capacity_per_partition >= 1);
  const uint32_t num_parts = plan.num_service();
  TM2C_CHECK(num_parts >= 1);

  const uint64_t stripe = map.stripe_bytes();
  const uint64_t raw_bytes =
      (cfg_.buckets_per_partition + uint64_t{cfg_.capacity_per_partition} * node_words()) *
      kWordBytes;
  const uint64_t slab_bytes = (raw_bytes + stripe - 1) / stripe * stripe;
  parts_.reserve(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    auto part = std::make_unique<Partition>();
    // Over-allocate by one stripe so the slab can be aligned to a stripe
    // boundary (AddOwnedRange requires it; a stripe must not straddle
    // partitions). Placed near the owning service core: the partition that
    // serves the locks also sits next to the memory.
    const uint64_t raw = allocator.Alloc(slab_bytes + stripe, plan.ServiceCore(p));
    part->slab_base = (raw + stripe - 1) / stripe * stripe;
    part->slab_bytes = slab_bytes;
    part->pool_base = part->slab_base + uint64_t{cfg_.buckets_per_partition} * kWordBytes;
    map.AddOwnedRange(part->slab_base, part->slab_bytes, p);
    // The allocator may hand back recycled memory; the store's invariants
    // (0 = null pointer / empty bucket) need a clean slab.
    for (uint64_t off = 0; off < slab_bytes; off += kWordBytes) {
      mem_->StoreWord(part->slab_base + off, 0);
    }
    parts_.push_back(std::move(part));
  }
}

uint64_t KvStore::Hash(uint64_t key) {
  // MurmurHash3 finalizer: full-avalanche, so the partition (low half) and
  // bucket (high half) selections are decorrelated.
  uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

uint32_t KvStore::PartitionOfKey(uint64_t key) const {
  return static_cast<uint32_t>(Hash(key)) % num_partitions();
}

uint32_t KvStore::OwnerCore(uint64_t key) const {
  return plan_->ServiceCore(PartitionOfKey(key));
}

uint32_t KvStore::BucketIndexOf(uint64_t key) const {
  return static_cast<uint32_t>(Hash(key) >> 32) % cfg_.buckets_per_partition;
}

uint64_t KvStore::BucketAddrAt(uint32_t partition, uint32_t bucket) const {
  return parts_[partition]->slab_base + uint64_t{bucket} * kWordBytes;
}

uint64_t KvStore::BucketAddr(uint64_t key) const {
  return BucketAddrAt(PartitionOfKey(key), BucketIndexOf(key));
}

std::pair<uint64_t, uint64_t> KvStore::SlabRange(uint32_t partition) const {
  TM2C_CHECK(partition < parts_.size());
  return {parts_[partition]->slab_base, parts_[partition]->slab_bytes};
}

uint64_t KvStore::NodesInUse(uint32_t partition) const {
  TM2C_CHECK(partition < parts_.size());
  std::lock_guard<std::mutex> lock(parts_[partition]->mu);
  return parts_[partition]->in_use;
}

uint64_t KvStore::AllocNode(uint32_t partition) {
  Partition& part = *parts_[partition];
  std::lock_guard<std::mutex> lock(part.mu);
  uint64_t node = 0;
  if (!part.free_nodes.empty()) {
    node = part.free_nodes.back();
    part.free_nodes.pop_back();
  } else if (part.next_unused < cfg_.capacity_per_partition) {
    node = part.pool_base + uint64_t{part.next_unused} * node_bytes();
    ++part.next_unused;
  }
  if (node != 0) {
    ++part.in_use;
  }
  return node;
}

void KvStore::FreeNode(uint32_t partition, uint64_t node) {
  Partition& part = *parts_[partition];
  std::lock_guard<std::mutex> lock(part.mu);
  TM2C_DCHECK(part.in_use > 0);
  --part.in_use;
  part.free_nodes.push_back(node);
}

// ---------------------------------------------------------------------------
// Composable transactional operations
// ---------------------------------------------------------------------------

// A chain can never legally hold more nodes than the partition pool owns,
// so every chain walk is bounded by capacity_per_partition. The bound only
// bites when the structure is corrupted — which cannot happen under the
// intact protocol, but is the expected outcome of the planted FaultModes
// the verification harness runs: a lost link update can weave a cycle into
// a chain, and an unbounded traversal would wedge the checked run instead
// of letting the oracle flag the corruption. Past the bound the walk gives
// up (not-found / partial scan): a bounded wrong answer the invariants see.
uint64_t KvStore::TxLocate(Tx& tx, uint64_t key, uint64_t* prev_link) const {
  TM2C_DCHECK(key != 0);
  uint64_t prev = BucketAddr(key);
  uint64_t node = tx.Read(prev);
  uint32_t steps = 0;
  while (node != 0 && ++steps <= cfg_.capacity_per_partition) {
    const uint64_t node_key = tx.Read(KeyAddr(node));
    if (node_key == key) {
      *prev_link = prev;
      return node;
    }
    if (node_key > key) {
      break;  // sorted chain: passed the insertion point
    }
    prev = NextAddr(node);
    node = tx.Read(prev);
  }
  *prev_link = prev;
  return 0;
}

bool KvStore::TxGet(Tx& tx, uint64_t key, uint64_t* value) const {
  uint64_t prev_link = 0;
  const uint64_t node = TxLocate(tx, key, &prev_link);
  if (node == 0) {
    return false;
  }
  std::vector<uint64_t> addrs(cfg_.value_words);
  for (uint32_t w = 0; w < cfg_.value_words; ++w) {
    addrs[w] = ValueAddr(node) + uint64_t{w} * kWordBytes;
  }
  const std::vector<uint64_t> vals = tx.ReadMany(addrs);
  std::copy(vals.begin(), vals.end(), value);
  return true;
}

void KvStore::TxLinkNew(Tx& tx, uint64_t prev_link, uint64_t node, uint64_t key,
                        const uint64_t* value) const {
  // The successor is the node the locate loop stopped at: re-read the link
  // (served from the attempt's read cache, no extra round trip). The link
  // word is written last — the node is fully initialized before it is
  // reachable.
  const uint64_t succ = tx.Read(prev_link);
  tx.Write(KeyAddr(node), key);
  tx.Write(NextAddr(node), succ);
  for (uint32_t w = 0; w < cfg_.value_words; ++w) {
    tx.Write(ValueAddr(node) + uint64_t{w} * kWordBytes, value[w]);
  }
  tx.Write(prev_link, node);
}

bool KvStore::TxPut(Tx& tx, uint64_t key, const uint64_t* value, uint64_t node_addr) const {
  uint64_t prev_link = 0;
  const uint64_t node = TxLocate(tx, key, &prev_link);
  if (node != 0) {
    for (uint32_t w = 0; w < cfg_.value_words; ++w) {
      tx.Write(ValueAddr(node) + uint64_t{w} * kWordBytes, value[w]);
    }
    return false;
  }
  TM2C_CHECK_MSG(node_addr != 0, "KvStore insert needs a node (partition pool exhausted?)");
  TxLinkNew(tx, prev_link, node_addr, key, value);
  return true;
}

bool KvStore::TxDelete(Tx& tx, uint64_t key, uint64_t* old_value,
                       uint64_t* removed_node) const {
  uint64_t prev_link = 0;
  const uint64_t node = TxLocate(tx, key, &prev_link);
  if (node == 0) {
    return false;
  }
  if (old_value != nullptr) {
    std::vector<uint64_t> addrs(cfg_.value_words);
    for (uint32_t w = 0; w < cfg_.value_words; ++w) {
      addrs[w] = ValueAddr(node) + uint64_t{w} * kWordBytes;
    }
    const std::vector<uint64_t> vals = tx.ReadMany(addrs);
    std::copy(vals.begin(), vals.end(), old_value);
  }
  tx.Write(prev_link, tx.Read(NextAddr(node)));
  if (removed_node != nullptr) {
    *removed_node = node;
  }
  return true;
}

bool KvStore::TxReadModifyWrite(Tx& tx, uint64_t key,
                                const std::function<void(uint64_t*)>& fn) const {
  uint64_t prev_link = 0;
  const uint64_t node = TxLocate(tx, key, &prev_link);
  if (node == 0) {
    return false;
  }
  std::vector<uint64_t> addrs(cfg_.value_words);
  for (uint32_t w = 0; w < cfg_.value_words; ++w) {
    addrs[w] = ValueAddr(node) + uint64_t{w} * kWordBytes;
  }
  std::vector<uint64_t> vals = tx.ReadMany(addrs);
  fn(vals.data());
  for (uint32_t w = 0; w < cfg_.value_words; ++w) {
    tx.Write(addrs[w], vals[w]);
  }
  return true;
}

uint32_t KvStore::TxHashScan(Tx& tx, uint64_t start_key, uint32_t limit,
                             std::vector<KvEntry>* out) const {
  TM2C_DCHECK(start_key != 0);
  constexpr uint32_t kHeadBatch = 8;
  const uint32_t partition = PartitionOfKey(start_key);
  const uint32_t first_bucket = BucketIndexOf(start_key);
  const uint32_t num_buckets = cfg_.buckets_per_partition;
  uint32_t appended = 0;
  uint32_t visited = 0;
  while (visited < num_buckets && appended < limit) {
    const uint32_t window = std::min(kHeadBatch, num_buckets - visited);
    std::vector<uint64_t> head_addrs(window);
    for (uint32_t i = 0; i < window; ++i) {
      head_addrs[i] = BucketAddrAt(partition, (first_bucket + visited + i) % num_buckets);
    }
    const std::vector<uint64_t> heads = tx.ReadMany(head_addrs);
    for (uint32_t i = 0; i < window && appended < limit; ++i) {
      uint64_t node = heads[i];
      uint32_t steps = 0;  // corruption bound, see TxLocate
      while (node != 0 && appended < limit && ++steps <= cfg_.capacity_per_partition) {
        const uint64_t node_key = tx.Read(KeyAddr(node));
        // In the start bucket, skip the sorted prefix below start_key.
        if (visited + i > 0 || node_key >= start_key) {
          KvEntry entry;
          entry.key = node_key;
          std::vector<uint64_t> addrs(cfg_.value_words);
          for (uint32_t w = 0; w < cfg_.value_words; ++w) {
            addrs[w] = ValueAddr(node) + uint64_t{w} * kWordBytes;
          }
          entry.value = tx.ReadMany(addrs);
          out->push_back(std::move(entry));
          ++appended;
        }
        node = tx.Read(NextAddr(node));
      }
    }
    visited += window;
  }
  return appended;
}

// ---------------------------------------------------------------------------
// One-transaction wrappers
// ---------------------------------------------------------------------------

bool KvStore::Get(TxRuntime& rt, uint64_t key, std::vector<uint64_t>* value) const {
  bool found = false;
  std::vector<uint64_t> buf(cfg_.value_words);
  rt.Execute([&](Tx& tx) { found = TxGet(tx, key, buf.data()); });
  if (found && value != nullptr) {
    *value = std::move(buf);
  }
  return found;
}

bool KvStore::Put(TxRuntime& rt, uint64_t key, const uint64_t* value) {
  const uint32_t partition = PartitionOfKey(key);
  uint64_t node = 0;  // allocated lazily on first miss, reused across retries
  bool inserted = false;
  rt.Execute([&](Tx& tx) {
    uint64_t prev_link = 0;
    const uint64_t found = TxLocate(tx, key, &prev_link);
    if (found != 0) {
      for (uint32_t w = 0; w < cfg_.value_words; ++w) {
        tx.Write(ValueAddr(found) + uint64_t{w} * kWordBytes, value[w]);
      }
      inserted = false;
      return;
    }
    if (node == 0) {
      node = AllocNode(partition);
    }
    TM2C_CHECK_MSG(node != 0, "KvStore insert needs a node (partition pool exhausted?)");
    TxLinkNew(tx, prev_link, node, key, value);
    inserted = true;
  });
  if (!inserted && node != 0) {
    FreeNode(partition, node);  // a retry switched from insert to update
  }
  return inserted;
}

bool KvStore::Insert(TxRuntime& rt, uint64_t key, const uint64_t* value) {
  const uint32_t partition = PartitionOfKey(key);
  uint64_t node = 0;
  bool inserted = false;
  rt.Execute([&](Tx& tx) {
    uint64_t prev_link = 0;
    if (TxLocate(tx, key, &prev_link) != 0) {
      inserted = false;  // present: insert-only leaves the value alone
      return;
    }
    if (node == 0) {
      node = AllocNode(partition);
    }
    TM2C_CHECK_MSG(node != 0, "KvStore insert needs a node (partition pool exhausted?)");
    TxLinkNew(tx, prev_link, node, key, value);
    inserted = true;
  });
  if (!inserted && node != 0) {
    FreeNode(partition, node);
  }
  return inserted;
}

bool KvStore::Delete(TxRuntime& rt, uint64_t key, std::vector<uint64_t>* old_value) {
  const uint32_t partition = PartitionOfKey(key);
  bool removed = false;
  uint64_t removed_node = 0;
  std::vector<uint64_t> buf(cfg_.value_words);
  rt.Execute([&](Tx& tx) {
    removed_node = 0;
    removed = TxDelete(tx, key, old_value != nullptr ? buf.data() : nullptr, &removed_node);
  });
  if (removed) {
    if (old_value != nullptr) {
      *old_value = std::move(buf);
    }
    // Recycle only after the unlink committed: until then another attempt
    // could still need the node in place.
    if (cfg_.reuse_nodes && removed_node != 0) {
      FreeNode(partition, removed_node);
    }
  }
  return removed;
}

bool KvStore::ReadModifyWrite(TxRuntime& rt, uint64_t key,
                              const std::function<void(uint64_t*)>& fn) const {
  bool found = false;
  rt.Execute([&](Tx& tx) { found = TxReadModifyWrite(tx, key, fn); });
  return found;
}

std::vector<KvEntry> KvStore::HashScan(TxRuntime& rt, uint64_t start_key,
                                       uint32_t limit) const {
  std::vector<KvEntry> out;
  rt.Execute([&](Tx& tx) {
    out.clear();  // an aborted attempt may have appended partial results
    TxHashScan(tx, start_key, limit, &out);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

void KvStore::RecoverPartition(uint32_t partition,
                               const std::vector<std::pair<uint64_t, uint64_t>>& checkpoint_pairs,
                               const std::vector<std::pair<uint64_t, uint64_t>>& replay_pairs) {
  TM2C_CHECK(partition < parts_.size());
  Partition& part = *parts_[partition];
  std::lock_guard<std::mutex> lock(part.mu);
  // Start from a clean slab: the crash may have left arbitrary garbage, and
  // every word the durable state does not mention must read as 0 (null).
  for (uint64_t off = 0; off < part.slab_bytes; off += kWordBytes) {
    mem_->StoreWord(part.slab_base + off, 0);
  }
  const auto apply = [&](const std::vector<std::pair<uint64_t, uint64_t>>& pairs) {
    for (const auto& [addr, value] : pairs) {
      TM2C_CHECK_MSG(addr >= part.slab_base && addr < part.slab_base + part.slab_bytes,
                     "recovery pair addressed outside the partition slab");
      TM2C_CHECK(addr % kWordBytes == 0);
      mem_->StoreWord(addr, value);
    }
  };
  apply(checkpoint_pairs);
  apply(replay_pairs);

  // Rebuild the pool bookkeeping from the recovered structure alone. A pool
  // slot is live iff some bucket chain reaches it; slots past the highest
  // live index were either never handed out or belong to transactions whose
  // link-in never became durable — either way the bump allocator can reuse
  // them. Unreachable slots below the bump point go back on the free list
  // (ascending, so recovery order is deterministic).
  std::vector<bool> reachable(cfg_.capacity_per_partition, false);
  uint64_t live = 0;
  uint32_t next_unused = 0;
  for (uint32_t b = 0; b < cfg_.buckets_per_partition; ++b) {
    uint64_t node = mem_->LoadWord(BucketAddrAt(partition, b));
    uint32_t steps = 0;
    while (node != 0 && ++steps <= cfg_.capacity_per_partition) {
      TM2C_CHECK_MSG(node >= part.pool_base && (node - part.pool_base) % node_bytes() == 0,
                     "recovered chain points outside the node pool");
      const uint64_t index = (node - part.pool_base) / node_bytes();
      TM2C_CHECK(index < cfg_.capacity_per_partition);
      TM2C_CHECK_MSG(!reachable[index], "recovered chains share a node");
      reachable[index] = true;
      ++live;
      next_unused = std::max(next_unused, static_cast<uint32_t>(index) + 1);
      node = mem_->LoadWord(NextAddr(node));
    }
    TM2C_CHECK_MSG(node == 0, "recovered chain longer than the pool (cycle?)");
  }
  part.in_use = live;
  part.next_unused = next_unused;
  part.free_nodes.clear();
  for (uint32_t i = 0; i < next_unused; ++i) {
    if (!reachable[i]) {
      part.free_nodes.push_back(part.pool_base + uint64_t{i} * node_bytes());
    }
  }
}

// ---------------------------------------------------------------------------
// Host-side helpers
// ---------------------------------------------------------------------------

bool KvStore::HostPut(uint64_t key, const uint64_t* value) {
  TM2C_DCHECK(key != 0);
  const uint32_t partition = PartitionOfKey(key);
  uint64_t prev_link = BucketAddr(key);
  uint64_t node = mem_->LoadWord(prev_link);
  uint32_t steps = 0;  // corruption bound, see TxLocate
  while (node != 0 && ++steps <= cfg_.capacity_per_partition) {
    const uint64_t node_key = mem_->LoadWord(KeyAddr(node));
    if (node_key == key) {
      for (uint32_t w = 0; w < cfg_.value_words; ++w) {
        mem_->StoreWord(ValueAddr(node) + uint64_t{w} * kWordBytes, value[w]);
      }
      return false;
    }
    if (node_key > key) {
      break;
    }
    prev_link = NextAddr(node);
    node = mem_->LoadWord(prev_link);
  }
  const uint64_t fresh = AllocNode(partition);
  TM2C_CHECK_MSG(fresh != 0, "KvStore load exceeds capacity_per_partition");
  mem_->StoreWord(KeyAddr(fresh), key);
  mem_->StoreWord(NextAddr(fresh), node);
  for (uint32_t w = 0; w < cfg_.value_words; ++w) {
    mem_->StoreWord(ValueAddr(fresh) + uint64_t{w} * kWordBytes, value[w]);
  }
  mem_->StoreWord(prev_link, fresh);
  return true;
}

bool KvStore::HostGet(uint64_t key, uint64_t* value) const {
  uint64_t node = mem_->LoadWord(BucketAddr(key));
  uint32_t steps = 0;  // corruption bound, see TxLocate
  while (node != 0 && ++steps <= cfg_.capacity_per_partition) {
    const uint64_t node_key = mem_->LoadWord(KeyAddr(node));
    if (node_key == key) {
      for (uint32_t w = 0; w < cfg_.value_words; ++w) {
        value[w] = mem_->LoadWord(ValueAddr(node) + uint64_t{w} * kWordBytes);
      }
      return true;
    }
    if (node_key > key) {
      return false;
    }
    node = mem_->LoadWord(NextAddr(node));
  }
  return false;
}

uint64_t KvStore::HostSizeOfPartition(uint32_t partition) const {
  TM2C_CHECK(partition < parts_.size());
  uint64_t count = 0;
  for (uint32_t b = 0; b < cfg_.buckets_per_partition; ++b) {
    uint64_t node = mem_->LoadWord(BucketAddrAt(partition, b));
    uint32_t steps = 0;  // corruption bound, see TxLocate
    while (node != 0 && ++steps <= cfg_.capacity_per_partition) {
      ++count;
      node = mem_->LoadWord(NextAddr(node));
    }
  }
  return count;
}

uint64_t KvStore::HostSize() const {
  uint64_t count = 0;
  for (uint32_t p = 0; p < num_partitions(); ++p) {
    count += HostSizeOfPartition(p);
  }
  return count;
}

void KvStore::HostForEach(const std::function<void(uint64_t, const uint64_t*)>& fn) const {
  std::vector<uint64_t> value(cfg_.value_words);
  for (uint32_t p = 0; p < num_partitions(); ++p) {
    for (uint32_t b = 0; b < cfg_.buckets_per_partition; ++b) {
      uint64_t node = mem_->LoadWord(BucketAddrAt(p, b));
      uint32_t steps = 0;  // corruption bound, see TxLocate
      while (node != 0 && ++steps <= cfg_.capacity_per_partition) {
        for (uint32_t w = 0; w < cfg_.value_words; ++w) {
          value[w] = mem_->LoadWord(ValueAddr(node) + uint64_t{w} * kWordBytes);
        }
        fn(mem_->LoadWord(KeyAddr(node)), value.data());
        node = mem_->LoadWord(NextAddr(node));
      }
    }
  }
}

}  // namespace tm2c

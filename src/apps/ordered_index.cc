#include "src/apps/ordered_index.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "src/common/check.h"

namespace tm2c {
namespace {

// Descents give up past this depth: a fanout-3 tree over 2^64 keys is
// ~40 levels in theory, but every pool this suite sizes tops out far
// shallower; past the bound the structure is corrupt and a bounded wrong
// answer beats a wedged walk.
constexpr uint32_t kMaxDepth = 24;

// The two memory accessors the shared algorithms are instantiated with:
// transactional (reads acquire DS-Locks, writes defer to commit) and host
// (direct shared-memory access at zero simulated cost).
struct TxAccess {
  Tx* tx;
  uint64_t Load(uint64_t addr) const { return tx->Read(addr); }
  void Store(uint64_t addr, uint64_t value) const { tx->Write(addr, value); }
  std::vector<uint64_t> LoadMany(const std::vector<uint64_t>& addrs) const {
    return tx->ReadMany(addrs);
  }
};

struct HostAccess {
  SharedMemory* mem;
  uint64_t Load(uint64_t addr) const { return mem->LoadWord(addr); }
  void Store(uint64_t addr, uint64_t value) const { mem->StoreWord(addr, value); }
  std::vector<uint64_t> LoadMany(const std::vector<uint64_t>& addrs) const {
    std::vector<uint64_t> vals(addrs.size());
    for (size_t i = 0; i < addrs.size(); ++i) {
      vals[i] = mem->LoadWord(addrs[i]);
    }
    return vals;
  }
};

uint64_t PackMeta(bool is_leaf, uint32_t count) {
  return (uint64_t{count} << 1) | (is_leaf ? 1u : 0u);
}

}  // namespace

OrderedIndex::OrderedIndex(ShmAllocator& allocator, SharedMemory& mem, AddressMap& map,
                           const DeploymentPlan& plan, OrderedIndexConfig cfg)
    : mem_(&mem), cfg_(cfg), plan_(&plan) {
  TM2C_CHECK(cfg_.key_min >= 1);  // 0 is the null pointer everywhere
  TM2C_CHECK(cfg_.key_max >= cfg_.key_min);
  TM2C_CHECK(cfg_.value_words >= 1);
  TM2C_CHECK(cfg_.fanout >= 3 && cfg_.fanout <= 16);
  TM2C_CHECK(cfg_.capacity_per_partition >= 4);
  const uint32_t num_parts = plan.num_service();
  TM2C_CHECK(num_parts >= 1);
  // Every partition must own a non-empty key sub-range.
  TM2C_CHECK(cfg_.key_max - cfg_.key_min + 1 >= num_parts);

  const uint64_t stripe = map.stripe_bytes();
  const uint64_t raw_bytes =
      (1 + uint64_t{cfg_.capacity_per_partition} * node_words()) * kWordBytes;
  const uint64_t slab_bytes = (raw_bytes + stripe - 1) / stripe * stripe;
  parts_.reserve(num_parts);
  for (uint32_t p = 0; p < num_parts; ++p) {
    auto part = std::make_unique<Partition>();
    // Over-allocate by one stripe so the slab can be aligned to a stripe
    // boundary (AddOwnedRange requires it); placed near the owning service
    // core, as in the KV store.
    const uint64_t raw = allocator.Alloc(slab_bytes + stripe, plan.ServiceCore(p));
    part->slab_base = (raw + stripe - 1) / stripe * stripe;
    part->slab_bytes = slab_bytes;
    part->pool_base = part->slab_base + kWordBytes;
    map.AddOwnedRange(part->slab_base, part->slab_bytes, p);
    for (uint64_t off = 0; off < slab_bytes; off += kWordBytes) {
      mem_->StoreWord(part->slab_base + off, 0);
    }
    // Each partition starts as one empty leaf (pool slot 0) as the root.
    mem_->StoreWord(part->slab_base, part->pool_base);
    mem_->StoreWord(part->pool_base, PackMeta(/*is_leaf=*/true, 0));
    part->next_unused = 1;
    part->in_use = 1;
    parts_.push_back(std::move(part));
  }
}

// ---------------------------------------------------------------------------
// Partitioning and pool management
// ---------------------------------------------------------------------------

uint64_t OrderedIndex::PartitionMinKey(uint32_t partition) const {
  const unsigned __int128 span =
      static_cast<unsigned __int128>(cfg_.key_max - cfg_.key_min) + 1;
  return cfg_.key_min +
         static_cast<uint64_t>(span * partition / num_partitions());
}

uint32_t OrderedIndex::PartitionOfKey(uint64_t key) const {
  TM2C_DCHECK(key >= cfg_.key_min && key <= cfg_.key_max);
  const unsigned __int128 span =
      static_cast<unsigned __int128>(cfg_.key_max - cfg_.key_min) + 1;
  const unsigned __int128 off = key - cfg_.key_min;
  uint32_t p = static_cast<uint32_t>(off * num_partitions() / span);
  // Floor-division rounding can land one partition off the boundary table
  // PartitionMinKey defines; nudge into agreement (at most one step).
  while (p + 1 < num_partitions() && key >= PartitionMinKey(p + 1)) {
    ++p;
  }
  while (p > 0 && key < PartitionMinKey(p)) {
    --p;
  }
  return p;
}

uint32_t OrderedIndex::OwnerCore(uint64_t key) const {
  return plan_->ServiceCore(PartitionOfKey(key));
}

std::pair<uint64_t, uint64_t> OrderedIndex::SlabRange(uint32_t partition) const {
  TM2C_CHECK(partition < parts_.size());
  return {parts_[partition]->slab_base, parts_[partition]->slab_bytes};
}

uint64_t OrderedIndex::NodesInUse(uint32_t partition) const {
  TM2C_CHECK(partition < parts_.size());
  std::lock_guard<std::mutex> lock(parts_[partition]->mu);
  return parts_[partition]->in_use;
}

bool OrderedIndex::InPool(uint32_t partition, uint64_t node) const {
  const Partition& part = *parts_[partition];
  return node >= part.pool_base &&
         node < part.pool_base + uint64_t{cfg_.capacity_per_partition} * node_bytes() &&
         (node - part.pool_base) % node_bytes() == 0;
}

uint64_t OrderedIndex::AllocNode(uint32_t partition) {
  Partition& part = *parts_[partition];
  std::lock_guard<std::mutex> lock(part.mu);
  uint64_t node = 0;
  if (!part.free_nodes.empty()) {
    node = part.free_nodes.back();
    part.free_nodes.pop_back();
  } else if (part.next_unused < cfg_.capacity_per_partition) {
    node = part.pool_base + uint64_t{part.next_unused} * node_bytes();
    ++part.next_unused;
  }
  if (node != 0) {
    ++part.in_use;
  }
  return node;
}

void OrderedIndex::FreeNode(uint32_t partition, uint64_t node) {
  Partition& part = *parts_[partition];
  std::lock_guard<std::mutex> lock(part.mu);
  TM2C_DCHECK(part.in_use > 0);
  --part.in_use;
  part.free_nodes.push_back(node);
}

uint64_t OrderedIndex::TakeScratchNode(uint32_t partition, SmoScratch* scratch) {
  for (size_t i = 0; i < scratch->fresh.size(); ++i) {
    if (!scratch->taken[i] && scratch->fresh[i].first == partition) {
      scratch->taken[i] = true;
      return scratch->fresh[i].second;
    }
  }
  const uint64_t node = AllocNode(partition);
  TM2C_CHECK_MSG(node != 0, "OrderedIndex SMO needs a node (partition pool exhausted?)");
  scratch->fresh.emplace_back(partition, node);
  scratch->taken.push_back(true);
  return node;
}

void OrderedIndex::SettleScratch(SmoScratch* scratch) {
  for (size_t i = 0; i < scratch->fresh.size(); ++i) {
    if (!scratch->taken[i]) {
      FreeNode(scratch->fresh[i].first, scratch->fresh[i].second);
    }
  }
  scratch->fresh.clear();
  scratch->taken.clear();
  if (cfg_.reuse_nodes) {
    for (const auto& [p, node] : scratch->freed) {
      FreeNode(p, node);
    }
  }
  // With reuse off, unlinked nodes stay counted as in-use — the
  // synchrobench-style leak; HostCheckStructure skips node accounting then.
  scratch->freed.clear();
}

// ---------------------------------------------------------------------------
// Shared node primitives
// ---------------------------------------------------------------------------

template <typename Acc>
OrderedIndex::NodeView OrderedIndex::ReadNode(const Acc& acc, uint64_t node) const {
  const uint32_t fan = cfg_.fanout;
  std::vector<uint64_t> addrs;
  addrs.reserve(2 + 2 * size_t{fan});
  addrs.push_back(MetaAddr(node));
  addrs.push_back(NextAddr(node));
  for (uint32_t i = 0; i < fan; ++i) {
    addrs.push_back(KeyAddr(node, i));
  }
  for (uint32_t i = 0; i < fan; ++i) {
    addrs.push_back(PayloadAddr(node, i));
  }
  const std::vector<uint64_t> vals = acc.LoadMany(addrs);
  NodeView v;
  v.addr = node;
  v.is_leaf = (vals[0] & 1) != 0;
  v.count = std::min<uint32_t>(static_cast<uint32_t>(vals[0] >> 1), fan);
  v.next = vals[1];
  v.keys.assign(vals.begin() + 2, vals.begin() + 2 + fan);
  v.payload0.assign(vals.begin() + 2 + fan, vals.end());
  return v;
}

template <typename Acc>
bool OrderedIndex::Descend(const Acc& acc, uint32_t partition, uint64_t key,
                           bool want_path, Descent* d) const {
  d->path.clear();
  uint64_t node = acc.Load(RootPtrAddr(partition));
  for (uint32_t depth = 0; depth < kMaxDepth; ++depth) {
    if (!InPool(partition, node)) {
      return false;
    }
    NodeView v = ReadNode(acc, node);
    if (v.is_leaf) {
      d->leaf = std::move(v);
      return true;
    }
    if (v.count == 0) {
      return false;
    }
    // Rightmost separator <= key; entry 0 also catches smaller keys.
    uint32_t i = v.count - 1;
    while (i > 0 && v.keys[i] > key) {
      --i;
    }
    v.down_index = i;
    node = v.payload0[i];
    if (want_path) {
      d->path.push_back(std::move(v));
    }
  }
  return false;  // deeper than any intact tree: corrupt
}

template <typename Acc>
std::vector<OrderedIndex::FullEntry> OrderedIndex::MaterializeEntries(
    const Acc& acc, const NodeView& view) const {
  std::vector<FullEntry> entries(view.count);
  for (uint32_t i = 0; i < view.count; ++i) {
    entries[i].key = view.keys[i];
    entries[i].payload.assign(cfg_.value_words, 0);
    entries[i].payload[0] = view.payload0[i];
  }
  if (view.is_leaf && cfg_.value_words > 1) {
    // One batch for every remaining value word of every entry.
    std::vector<uint64_t> addrs;
    addrs.reserve(size_t{view.count} * (cfg_.value_words - 1));
    for (uint32_t i = 0; i < view.count; ++i) {
      for (uint32_t w = 1; w < cfg_.value_words; ++w) {
        addrs.push_back(PayloadAddr(view.addr, i) + uint64_t{w} * kWordBytes);
      }
    }
    const std::vector<uint64_t> vals = acc.LoadMany(addrs);
    size_t at = 0;
    for (uint32_t i = 0; i < view.count; ++i) {
      for (uint32_t w = 1; w < cfg_.value_words; ++w) {
        entries[i].payload[w] = vals[at++];
      }
    }
  }
  return entries;
}

template <typename Acc>
void OrderedIndex::WriteEntries(const Acc& acc, uint64_t node, bool is_leaf,
                                const std::vector<FullEntry>& entries,
                                uint32_t from) const {
  for (uint32_t i = from; i < entries.size(); ++i) {
    acc.Store(KeyAddr(node, i), entries[i].key);
    const uint32_t words = is_leaf ? cfg_.value_words : 1;
    for (uint32_t w = 0; w < words; ++w) {
      acc.Store(PayloadAddr(node, i) + uint64_t{w} * kWordBytes, entries[i].payload[w]);
    }
  }
}

template <typename Acc>
void OrderedIndex::WriteMeta(const Acc& acc, uint64_t node, bool is_leaf,
                             uint32_t count) const {
  acc.Store(MetaAddr(node), PackMeta(is_leaf, count));
}

// ---------------------------------------------------------------------------
// Core algorithms (shared by the Tx and Host paths)
// ---------------------------------------------------------------------------

template <typename Acc>
bool OrderedIndex::GetImpl(const Acc& acc, uint64_t key, uint64_t* value) const {
  Descent d;
  if (!Descend(acc, PartitionOfKey(key), key, /*want_path=*/false, &d)) {
    return false;
  }
  const NodeView& leaf = d.leaf;
  for (uint32_t i = 0; i < leaf.count; ++i) {
    if (leaf.keys[i] != key) {
      continue;
    }
    value[0] = leaf.payload0[i];
    if (cfg_.value_words > 1) {
      std::vector<uint64_t> addrs(cfg_.value_words - 1);
      for (uint32_t w = 1; w < cfg_.value_words; ++w) {
        addrs[w - 1] = PayloadAddr(leaf.addr, i) + uint64_t{w} * kWordBytes;
      }
      const std::vector<uint64_t> vals = acc.LoadMany(addrs);
      std::copy(vals.begin(), vals.end(), value + 1);
    }
    return true;
  }
  return false;
}

template <typename Acc>
bool OrderedIndex::RmwImpl(const Acc& acc, uint64_t key,
                           const std::function<void(uint64_t*)>& fn) const {
  std::vector<uint64_t> value(cfg_.value_words);
  Descent d;
  if (!Descend(acc, PartitionOfKey(key), key, /*want_path=*/false, &d)) {
    return false;
  }
  const NodeView& leaf = d.leaf;
  for (uint32_t i = 0; i < leaf.count; ++i) {
    if (leaf.keys[i] != key) {
      continue;
    }
    value[0] = leaf.payload0[i];
    if (cfg_.value_words > 1) {
      std::vector<uint64_t> addrs(cfg_.value_words - 1);
      for (uint32_t w = 1; w < cfg_.value_words; ++w) {
        addrs[w - 1] = PayloadAddr(leaf.addr, i) + uint64_t{w} * kWordBytes;
      }
      const std::vector<uint64_t> vals = acc.LoadMany(addrs);
      std::copy(vals.begin(), vals.end(), value.data() + 1);
    }
    fn(value.data());
    for (uint32_t w = 0; w < cfg_.value_words; ++w) {
      acc.Store(PayloadAddr(leaf.addr, i) + uint64_t{w} * kWordBytes, value[w]);
    }
    return true;
  }
  return false;
}

template <typename Acc>
uint32_t OrderedIndex::ScanImpl(
    const Acc& acc, uint64_t lo, uint64_t hi, uint32_t limit,
    const std::function<void(uint64_t, const uint64_t*)>& sink) const {
  if (limit == 0 || hi < cfg_.key_min || lo > cfg_.key_max || lo > hi) {
    return 0;
  }
  lo = std::max(lo, cfg_.key_min);
  hi = std::min(hi, cfg_.key_max);
  uint32_t appended = 0;
  std::vector<uint64_t> value(cfg_.value_words);
  for (uint32_t p = PartitionOfKey(lo); p < num_partitions(); ++p) {
    if (PartitionMinKey(p) > hi) {
      break;
    }
    Descent d;
    if (!Descend(acc, p, std::max(lo, PartitionMinKey(p)), /*want_path=*/false, &d)) {
      continue;  // corrupt partition: bounded wrong answer, skip it
    }
    NodeView v = std::move(d.leaf);
    uint32_t steps = 0;  // corruption bound: a chain never exceeds the pool
    while (true) {
      // Qualifying slots of this leaf (keys are sorted within a leaf).
      uint32_t a = 0;
      while (a < v.count && v.keys[a] < lo) {
        ++a;
      }
      uint32_t b = a;
      while (b < v.count && v.keys[b] <= hi && b - a < limit - appended) {
        ++b;
      }
      // One batch for the remaining value words of every reported entry.
      std::vector<uint64_t> rest;
      if (cfg_.value_words > 1 && b > a) {
        std::vector<uint64_t> addrs;
        addrs.reserve(size_t{b - a} * (cfg_.value_words - 1));
        for (uint32_t i = a; i < b; ++i) {
          for (uint32_t w = 1; w < cfg_.value_words; ++w) {
            addrs.push_back(PayloadAddr(v.addr, i) + uint64_t{w} * kWordBytes);
          }
        }
        rest = acc.LoadMany(addrs);
      }
      for (uint32_t i = a; i < b; ++i) {
        value[0] = v.payload0[i];
        for (uint32_t w = 1; w < cfg_.value_words; ++w) {
          value[w] = rest[size_t{i - a} * (cfg_.value_words - 1) + (w - 1)];
        }
        sink(v.keys[i], value.data());
        ++appended;
      }
      if (appended >= limit) {
        return appended;
      }
      if (b < v.count && v.keys[b] > hi) {
        return appended;  // sorted leaves: nothing beyond hi anywhere
      }
      if (v.next == 0 || !InPool(p, v.next) ||
          ++steps > cfg_.capacity_per_partition) {
        break;  // end of this partition's chain (or corrupt link)
      }
      v = ReadNode(acc, v.next);
    }
  }
  return appended;
}

template <typename Acc>
void OrderedIndex::InsertUpImpl(const Acc& acc, uint32_t partition,
                                const std::vector<NodeView>& path, uint64_t split_node,
                                uint64_t separator, uint64_t child,
                                SmoScratch* scratch) {
  uint64_t sep = separator;
  uint64_t new_child = child;
  uint64_t left_top = split_node;  // the node whose split bubbles upward
  for (size_t level = path.size(); level-- > 0;) {
    const NodeView& parent = path[level];
    std::vector<FullEntry> entries = MaterializeEntries(acc, parent);
    const uint32_t pos = parent.down_index + 1;  // right of the child we took
    FullEntry entry;
    entry.key = sep;
    entry.payload.assign(cfg_.value_words, 0);
    entry.payload[0] = new_child;
    entries.insert(entries.begin() + pos, std::move(entry));
    if (entries.size() <= cfg_.fanout) {
      WriteEntries(acc, parent.addr, /*is_leaf=*/false, entries, pos);
      WriteMeta(acc, parent.addr, /*is_leaf=*/false, static_cast<uint32_t>(entries.size()));
      return;
    }
    // Parent overflows: split it and keep bubbling.
    const uint32_t keep = (cfg_.fanout + 2) / 2;
    const uint64_t right = TakeScratchNode(partition, scratch);
    std::vector<FullEntry> right_entries(entries.begin() + keep, entries.end());
    entries.resize(keep);
    WriteEntries(acc, parent.addr, /*is_leaf=*/false, entries, 0);
    WriteMeta(acc, parent.addr, /*is_leaf=*/false, keep);
    acc.Store(NextAddr(right), 0);
    WriteEntries(acc, right, /*is_leaf=*/false, right_entries, 0);
    WriteMeta(acc, right, /*is_leaf=*/false, static_cast<uint32_t>(right_entries.size()));
    sep = right_entries[0].key;
    new_child = right;
    left_top = parent.addr;
  }
  // The root itself split: grow the tree by one level. Entry 0's separator
  // is a catch-all (routing forces slot 0 for smaller keys), so 0 is fine.
  const uint64_t new_root = TakeScratchNode(partition, scratch);
  std::vector<FullEntry> entries(2);
  entries[0].key = 0;
  entries[0].payload.assign(cfg_.value_words, 0);
  entries[0].payload[0] = left_top;
  entries[1].key = sep;
  entries[1].payload.assign(cfg_.value_words, 0);
  entries[1].payload[0] = new_child;
  acc.Store(NextAddr(new_root), 0);
  WriteEntries(acc, new_root, /*is_leaf=*/false, entries, 0);
  WriteMeta(acc, new_root, /*is_leaf=*/false, 2);
  acc.Store(RootPtrAddr(partition), new_root);
}

template <typename Acc>
bool OrderedIndex::PutImpl(const Acc& acc, uint64_t key, const uint64_t* value,
                           bool insert_only, SmoScratch* scratch) {
  TM2C_DCHECK(key >= cfg_.key_min && key <= cfg_.key_max);
  const uint32_t partition = PartitionOfKey(key);
  Descent d;
  if (!Descend(acc, partition, key, /*want_path=*/true, &d)) {
    return false;  // corrupt tree: bounded wrong answer
  }
  const NodeView& leaf = d.leaf;
  uint32_t pos = 0;
  while (pos < leaf.count && leaf.keys[pos] < key) {
    ++pos;
  }
  if (pos < leaf.count && leaf.keys[pos] == key) {
    if (insert_only) {
      return false;
    }
    for (uint32_t w = 0; w < cfg_.value_words; ++w) {
      acc.Store(PayloadAddr(leaf.addr, pos) + uint64_t{w} * kWordBytes, value[w]);
    }
    return false;  // updated in place
  }
  std::vector<FullEntry> entries = MaterializeEntries(acc, leaf);
  FullEntry entry;
  entry.key = key;
  entry.payload.assign(value, value + cfg_.value_words);
  entries.insert(entries.begin() + pos, std::move(entry));
  if (entries.size() <= cfg_.fanout) {
    WriteEntries(acc, leaf.addr, /*is_leaf=*/true, entries, pos);
    WriteMeta(acc, leaf.addr, /*is_leaf=*/true, static_cast<uint32_t>(entries.size()));
    return true;
  }
  // Leaf split: left keeps the lower half, the new right leaf takes the
  // rest and slots into the chain; all writes commit atomically with the
  // parent link InsertUpImpl adds.
  const uint32_t keep = (cfg_.fanout + 2) / 2;
  const uint64_t right = TakeScratchNode(partition, scratch);
  std::vector<FullEntry> right_entries(entries.begin() + keep, entries.end());
  entries.resize(keep);
  WriteEntries(acc, leaf.addr, /*is_leaf=*/true, entries, 0);
  WriteMeta(acc, leaf.addr, /*is_leaf=*/true, keep);
  acc.Store(NextAddr(leaf.addr), right);
  acc.Store(NextAddr(right), leaf.next);
  WriteEntries(acc, right, /*is_leaf=*/true, right_entries, 0);
  WriteMeta(acc, right, /*is_leaf=*/true, static_cast<uint32_t>(right_entries.size()));
  if (cfg_.smo_skip_parent_link) {
    // Planted SMO fault (kSmoSkipParentLink): the new leaf is live in the
    // chain but never linked into its parent — descents miss its keys,
    // scans still see them, HostCheckStructure must cry foul.
    return true;
  }
  InsertUpImpl(acc, partition, d.path, leaf.addr, right_entries[0].key, right, scratch);
  return true;
}

template <typename Acc>
void OrderedIndex::RebalanceImpl(const Acc& acc, uint32_t partition, const Descent& d,
                                 std::vector<FullEntry> cur_entries,
                                 SmoScratch* scratch) {
  const uint32_t min_fill = (cfg_.fanout + 1) / 2;
  uint64_t cur_addr = d.leaf.addr;
  bool cur_leaf = true;
  uint64_t cur_next = d.leaf.next;
  for (size_t level = d.path.size(); /* see breaks */; --level) {
    if (level == 0) {
      // `cur` is the partition root: collapse an inner root down to its
      // only child; a root leaf may hold any count, including zero.
      if (!cur_leaf && cur_entries.size() == 1) {
        acc.Store(RootPtrAddr(partition), cur_entries[0].payload[0]);
        scratch->freed.emplace_back(partition, cur_addr);
      }
      return;
    }
    if (cur_entries.size() >= min_fill) {
      return;
    }
    const NodeView& parent = d.path[level - 1];
    if (parent.count < 2) {
      return;  // degenerate (corrupt) parent: give up boundedly
    }
    const uint32_t di = parent.down_index;
    const bool cur_is_left = di + 1 < parent.count;
    const uint32_t li = cur_is_left ? di : di - 1;  // left child's slot
    const uint32_t ri = li + 1;
    const uint64_t sibling_addr = parent.payload0[cur_is_left ? ri : li];
    if (!InPool(partition, sibling_addr)) {
      return;
    }
    const NodeView sib = ReadNode(acc, sibling_addr);
    if (sib.is_leaf != cur_leaf) {
      return;  // corrupt
    }
    std::vector<FullEntry> sib_entries = MaterializeEntries(acc, sib);
    std::vector<FullEntry>& left = cur_is_left ? cur_entries : sib_entries;
    std::vector<FullEntry>& right = cur_is_left ? sib_entries : cur_entries;
    const uint64_t left_addr = cur_is_left ? cur_addr : sib.addr;
    const uint64_t right_addr = cur_is_left ? sib.addr : cur_addr;
    const uint64_t right_next = cur_is_left ? sib.next : cur_next;
    if (left.size() + right.size() <= cfg_.fanout) {
      // Merge the right node into the left and drop it from the parent.
      const uint32_t left_old = static_cast<uint32_t>(left.size());
      left.insert(left.end(), right.begin(), right.end());
      WriteEntries(acc, left_addr, cur_leaf, left, left_old);
      WriteMeta(acc, left_addr, cur_leaf, static_cast<uint32_t>(left.size()));
      if (cur_leaf) {
        acc.Store(NextAddr(left_addr), right_next);
      }
      scratch->freed.emplace_back(partition, right_addr);
      std::vector<FullEntry> parent_entries = MaterializeEntries(acc, parent);
      parent_entries.erase(parent_entries.begin() + ri);
      WriteEntries(acc, parent.addr, /*is_leaf=*/false, parent_entries, ri);
      WriteMeta(acc, parent.addr, /*is_leaf=*/false,
                static_cast<uint32_t>(parent_entries.size()));
      // The parent shrank: ascend and re-check it.
      cur_entries = std::move(parent_entries);
      cur_addr = parent.addr;
      cur_leaf = false;
      cur_next = 0;
      continue;
    }
    // Borrow one entry from the richer sibling and fix the separator.
    if (cur_is_left) {
      left.push_back(std::move(right.front()));
      right.erase(right.begin());
      WriteEntries(acc, left_addr, cur_leaf, left,
                   static_cast<uint32_t>(left.size()) - 1);
      WriteMeta(acc, left_addr, cur_leaf, static_cast<uint32_t>(left.size()));
      WriteEntries(acc, right_addr, cur_leaf, right, 0);
      WriteMeta(acc, right_addr, cur_leaf, static_cast<uint32_t>(right.size()));
    } else {
      right.insert(right.begin(), std::move(left.back()));
      left.pop_back();
      WriteEntries(acc, right_addr, cur_leaf, right, 0);
      WriteMeta(acc, right_addr, cur_leaf, static_cast<uint32_t>(right.size()));
      WriteMeta(acc, left_addr, cur_leaf, static_cast<uint32_t>(left.size()));
    }
    acc.Store(KeyAddr(parent.addr, ri), right.front().key);
    return;
  }
}

template <typename Acc>
bool OrderedIndex::DeleteImpl(const Acc& acc, uint64_t key, uint64_t* old_value,
                              SmoScratch* scratch) {
  TM2C_DCHECK(key >= cfg_.key_min && key <= cfg_.key_max);
  const uint32_t partition = PartitionOfKey(key);
  Descent d;
  if (!Descend(acc, partition, key, /*want_path=*/true, &d)) {
    return false;
  }
  const NodeView& leaf = d.leaf;
  uint32_t pos = 0;
  while (pos < leaf.count && leaf.keys[pos] != key) {
    ++pos;
  }
  if (pos == leaf.count) {
    return false;
  }
  std::vector<FullEntry> entries = MaterializeEntries(acc, leaf);
  if (old_value != nullptr) {
    std::copy(entries[pos].payload.begin(), entries[pos].payload.end(), old_value);
  }
  entries.erase(entries.begin() + pos);
  WriteEntries(acc, leaf.addr, /*is_leaf=*/true, entries, pos);
  WriteMeta(acc, leaf.addr, /*is_leaf=*/true, static_cast<uint32_t>(entries.size()));
  RebalanceImpl(acc, partition, d, std::move(entries), scratch);
  return true;
}

// ---------------------------------------------------------------------------
// Composable transactional operations
// ---------------------------------------------------------------------------

bool OrderedIndex::TxGet(Tx& tx, uint64_t key, uint64_t* value) const {
  return GetImpl(TxAccess{&tx}, key, value);
}

bool OrderedIndex::TxReadModifyWrite(Tx& tx, uint64_t key,
                                     const std::function<void(uint64_t*)>& fn) const {
  return RmwImpl(TxAccess{&tx}, key, fn);
}

uint32_t OrderedIndex::TxRangeScan(Tx& tx, uint64_t lo, uint64_t hi, uint32_t limit,
                                   std::vector<KvEntry>* out) const {
  return ScanImpl(TxAccess{&tx}, lo, hi, limit,
                  [&](uint64_t key, const uint64_t* value) {
                    KvEntry entry;
                    entry.key = key;
                    entry.value.assign(value, value + cfg_.value_words);
                    out->push_back(std::move(entry));
                  });
}

bool OrderedIndex::TxPut(Tx& tx, uint64_t key, const uint64_t* value,
                         SmoScratch* scratch) {
  return PutImpl(TxAccess{&tx}, key, value, /*insert_only=*/false, scratch);
}

bool OrderedIndex::TxInsert(Tx& tx, uint64_t key, const uint64_t* value,
                            SmoScratch* scratch) {
  return PutImpl(TxAccess{&tx}, key, value, /*insert_only=*/true, scratch);
}

bool OrderedIndex::TxDelete(Tx& tx, uint64_t key, uint64_t* old_value,
                            SmoScratch* scratch) {
  return DeleteImpl(TxAccess{&tx}, key, old_value, scratch);
}

// ---------------------------------------------------------------------------
// One-transaction wrappers
// ---------------------------------------------------------------------------

bool OrderedIndex::Get(TxRuntime& rt, uint64_t key, std::vector<uint64_t>* value) const {
  bool found = false;
  std::vector<uint64_t> buf(cfg_.value_words);
  rt.Execute([&](Tx& tx) { found = TxGet(tx, key, buf.data()); });
  if (found && value != nullptr) {
    *value = std::move(buf);
  }
  return found;
}

bool OrderedIndex::Put(TxRuntime& rt, uint64_t key, const uint64_t* value) {
  SmoScratch scratch;
  bool inserted = false;
  rt.Execute([&](Tx& tx) {
    scratch.ResetAttempt();
    inserted = TxPut(tx, key, value, &scratch);
  });
  SettleScratch(&scratch);
  return inserted;
}

bool OrderedIndex::Insert(TxRuntime& rt, uint64_t key, const uint64_t* value) {
  SmoScratch scratch;
  bool inserted = false;
  rt.Execute([&](Tx& tx) {
    scratch.ResetAttempt();
    inserted = TxInsert(tx, key, value, &scratch);
  });
  SettleScratch(&scratch);
  return inserted;
}

bool OrderedIndex::Delete(TxRuntime& rt, uint64_t key, std::vector<uint64_t>* old_value) {
  SmoScratch scratch;
  bool removed = false;
  std::vector<uint64_t> buf(cfg_.value_words);
  rt.Execute([&](Tx& tx) {
    scratch.ResetAttempt();
    removed = TxDelete(tx, key, old_value != nullptr ? buf.data() : nullptr, &scratch);
  });
  SettleScratch(&scratch);
  if (removed && old_value != nullptr) {
    *old_value = std::move(buf);
  }
  return removed;
}

bool OrderedIndex::ReadModifyWrite(TxRuntime& rt, uint64_t key,
                                   const std::function<void(uint64_t*)>& fn) const {
  bool found = false;
  rt.Execute([&](Tx& tx) { found = TxReadModifyWrite(tx, key, fn); });
  return found;
}

std::vector<KvEntry> OrderedIndex::Scan(TxRuntime& rt, uint64_t start_key,
                                        uint32_t limit) const {
  return RangeScan(rt, start_key, cfg_.key_max, limit);
}

std::vector<KvEntry> OrderedIndex::RangeScan(TxRuntime& rt, uint64_t lo, uint64_t hi,
                                             uint32_t limit) const {
  std::vector<KvEntry> out;
  rt.Execute([&](Tx& tx) {
    out.clear();  // an aborted attempt may have appended partial results
    TxRangeScan(tx, lo, hi, limit, &out);
  });
  return out;
}

// ---------------------------------------------------------------------------
// Host-side helpers
// ---------------------------------------------------------------------------

bool OrderedIndex::HostPut(uint64_t key, const uint64_t* value) {
  SmoScratch scratch;
  scratch.ResetAttempt();
  const bool inserted =
      PutImpl(HostAccess{mem_}, key, value, /*insert_only=*/false, &scratch);
  SettleScratch(&scratch);
  return inserted;
}

bool OrderedIndex::HostInsert(uint64_t key, const uint64_t* value) {
  SmoScratch scratch;
  scratch.ResetAttempt();
  const bool inserted =
      PutImpl(HostAccess{mem_}, key, value, /*insert_only=*/true, &scratch);
  SettleScratch(&scratch);
  return inserted;
}

bool OrderedIndex::HostDelete(uint64_t key, uint64_t* old_value) {
  SmoScratch scratch;
  scratch.ResetAttempt();
  const bool removed = DeleteImpl(HostAccess{mem_}, key, old_value, &scratch);
  SettleScratch(&scratch);
  return removed;
}

bool OrderedIndex::HostGet(uint64_t key, uint64_t* value) const {
  return GetImpl(HostAccess{mem_}, key, value);
}

uint64_t OrderedIndex::HostSize() const {
  uint64_t count = 0;
  ScanImpl(HostAccess{mem_}, cfg_.key_min, cfg_.key_max, UINT32_MAX,
           [&](uint64_t, const uint64_t*) { ++count; });
  return count;
}

void OrderedIndex::HostForEach(
    const std::function<void(uint64_t, const uint64_t*)>& fn) const {
  ScanImpl(HostAccess{mem_}, cfg_.key_min, cfg_.key_max, UINT32_MAX, fn);
}

std::vector<KvEntry> OrderedIndex::HostRangeScan(uint64_t lo, uint64_t hi,
                                                 uint32_t limit) const {
  std::vector<KvEntry> out;
  ScanImpl(HostAccess{mem_}, lo, hi, limit, [&](uint64_t key, const uint64_t* value) {
    KvEntry entry;
    entry.key = key;
    entry.value.assign(value, value + cfg_.value_words);
    out.push_back(std::move(entry));
  });
  return out;
}

uint32_t OrderedIndex::HostDepthOfPartition(uint32_t partition) const {
  TM2C_CHECK(partition < parts_.size());
  uint64_t node = mem_->LoadWord(RootPtrAddr(partition));
  uint32_t depth = 0;
  while (InPool(partition, node) && depth < kMaxDepth) {
    ++depth;
    const uint64_t meta = mem_->LoadWord(MetaAddr(node));
    if ((meta & 1) != 0) {
      break;  // reached the leaf level
    }
    node = mem_->LoadWord(PayloadAddr(node, 0));
  }
  return depth;
}

// ---------------------------------------------------------------------------
// Structural verification
// ---------------------------------------------------------------------------

void OrderedIndex::HostCheckStructure(std::vector<std::string>* problems) const {
  const HostAccess acc{mem_};
  for (uint32_t p = 0; p < num_partitions(); ++p) {
    const auto complain = [&](const std::string& what) {
      std::ostringstream os;
      os << "partition " << p << ": " << what;
      problems->push_back(os.str());
    };
    const uint64_t part_lo = PartitionMinKey(p);
    const uint64_t part_hi =
        p + 1 < num_partitions() ? PartitionMinKey(p + 1) - 1 : cfg_.key_max;

    // Pass 1: descend-reachable structure. A DFS collects every reachable
    // node, the leaves in left-to-right order, and each subtree's key
    // range, checking per-node shape and the separator invariants (entry 0
    // is a routing catch-all and carries no lower bound).
    std::set<uint64_t> reachable;
    std::vector<uint64_t> leaves;
    uint64_t descend_keys = 0;
    struct Range {
      bool any = false;
      uint64_t min = 0;
      uint64_t max = 0;
    };
    const std::function<Range(uint64_t, uint32_t)> dfs = [&](uint64_t node,
                                                             uint32_t depth) -> Range {
      Range range;
      if (depth > kMaxDepth) {
        complain("tree deeper than the corruption bound");
        return range;
      }
      if (!InPool(p, node)) {
        complain("child pointer outside the node pool");
        return range;
      }
      if (!reachable.insert(node).second) {
        complain("node reachable twice (cycle or shared child)");
        return range;
      }
      const uint64_t meta = mem_->LoadWord(MetaAddr(node));
      const bool is_leaf = (meta & 1) != 0;
      const uint64_t raw_count = meta >> 1;
      if (raw_count > cfg_.fanout) {
        complain("node count exceeds the fanout");
        return range;
      }
      const uint32_t count = static_cast<uint32_t>(raw_count);
      const NodeView v = ReadNode(acc, node);
      for (uint32_t i = 1; i < count; ++i) {
        if (v.keys[i] <= v.keys[i - 1]) {
          complain(is_leaf ? "leaf keys not strictly ascending"
                           : "inner separators not strictly ascending");
          break;
        }
      }
      if (is_leaf) {
        leaves.push_back(node);
        descend_keys += count;
        for (uint32_t i = 0; i < count; ++i) {
          if (v.keys[i] < part_lo || v.keys[i] > part_hi) {
            complain("leaf key outside the partition's key sub-range");
            break;
          }
        }
        if (count > 0) {
          range.any = true;
          range.min = v.keys[0];
          range.max = v.keys[count - 1];
        }
        return range;
      }
      if (count == 0) {
        complain("inner node with no children");
        return range;
      }
      std::vector<Range> child_ranges(count);
      for (uint32_t i = 0; i < count; ++i) {
        child_ranges[i] = dfs(v.payload0[i], depth + 1);
        if (child_ranges[i].any) {
          if (!range.any) {
            range = child_ranges[i];
          } else {
            range.min = std::min(range.min, child_ranges[i].min);
            range.max = std::max(range.max, child_ranges[i].max);
          }
        }
      }
      for (uint32_t i = 1; i < count; ++i) {
        if (child_ranges[i].any && child_ranges[i].min < v.keys[i]) {
          complain("subtree holds a key below its separator");
        }
        if (child_ranges[i - 1].any && child_ranges[i - 1].max >= v.keys[i]) {
          complain("subtree holds a key at or above the next separator");
        }
      }
      return range;
    };
    const uint64_t root = mem_->LoadWord(RootPtrAddr(p));
    if (!InPool(p, root)) {
      complain("root pointer outside the node pool");
      continue;
    }
    dfs(root, 1);

    // Pass 2: the leaf chain, walked from the leftmost reachable leaf, must
    // visit exactly the descend-reachable leaves in the same order (the
    // linked-leaf completeness invariant — this is what an orphaned split
    // child violates), with keys ascending across consecutive leaves.
    std::vector<uint64_t> chain;
    uint64_t chain_keys = 0;
    uint64_t prev_last_key = 0;
    bool have_prev = false;
    uint64_t node = leaves.empty() ? 0 : leaves.front();
    uint32_t steps = 0;
    while (node != 0) {
      if (!InPool(p, node)) {
        complain("leaf chain link outside the node pool");
        break;
      }
      if (++steps > cfg_.capacity_per_partition) {
        complain("leaf chain longer than the pool (cycle?)");
        break;
      }
      const NodeView v = ReadNode(acc, node);
      if (!v.is_leaf) {
        complain("leaf chain reaches a non-leaf node");
        break;
      }
      chain.push_back(node);
      chain_keys += v.count;
      if (v.count > 0) {
        if (have_prev && v.keys[0] <= prev_last_key) {
          complain("leaf chain keys not ascending across leaves");
        }
        prev_last_key = v.keys[v.count - 1];
        have_prev = true;
      }
      node = v.next;
    }
    if (chain != leaves) {
      complain("leaf chain and tree descent disagree about the leaves"
               " (orphaned or missing leaf)");
    }
    if (chain_keys != descend_keys) {
      complain("key counts differ between the leaf chain and the descent");
    }

    // Pass 3: node accounting — every live pool node must be reachable
    // from the root. (With reuse_nodes off, merged-away nodes deliberately
    // stay counted as in-use, so the comparison would misfire.)
    if (cfg_.reuse_nodes) {
      const uint64_t in_use = NodesInUse(p);
      if (reachable.size() != in_use) {
        std::ostringstream os;
        os << "node accounting: " << reachable.size() << " reachable vs " << in_use
           << " allocated";
        complain(os.str());
      }
    }
  }
}

}  // namespace tm2c

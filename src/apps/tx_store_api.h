// The common transactional-store interface.
//
// Two service-shaped stores share it: the partitioned hash KV store
// (src/apps/kvstore.h) and the partitioned B+-tree (src/apps/
// ordered_index.h). Both lay one slab per DTM partition, register it as an
// owned range, and expose the same keyed operations in the suite's three
// established access modes:
//
//  - composable Tx* methods that run inside a caller-provided transaction
//    (the read/update subset lives on the interface; structural mutations
//    stay on the concrete types because their node-allocation protocols
//    differ — a hash insert consumes one spare node, a B+-tree insert may
//    consume a whole split path),
//  - self-retrying wrappers that run their own transaction via a TxRuntime
//    and handle node allocation/recycling across retries,
//  - zero-cost Host* helpers for the load phase and verification.
//
// Benches and the chaos checker drive stores exclusively through this
// interface (`--index={hash,btree}` selects the implementation), so a
// workload mix is written once and measures index structure, not plumbing.
//
// Scan semantics are per-implementation and deliberately honest:
// OrderedIndex::Scan is a real range scan — entries with key >= start, in
// ascending key order, over the leaf chain. KvStore::Scan delegates to its
// HashScan: a bounded hash-order traversal of the start key's partition
// that makes no ordering or completeness promise beyond "up to `limit`
// resident entries". Callers that need ordered results must pick the
// btree index; YCSB-E on the hash index measures exactly what a
// hash-backed store can give that workload.
#ifndef TM2C_SRC_APPS_TX_STORE_API_H_
#define TM2C_SRC_APPS_TX_STORE_API_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/tm/tx_runtime.h"

namespace tm2c {

struct KvEntry {
  uint64_t key = 0;
  std::vector<uint64_t> value;
};

class TxStoreApi {
 public:
  virtual ~TxStoreApi() = default;

  // -- Composable transactional operations (read/update subset) -----------
  // Reads `key`'s value into value[0..value_words()). Returns false when
  // the key is absent.
  virtual bool TxGet(Tx& tx, uint64_t key, uint64_t* value) const = 0;
  // Reads the value, applies `fn` to it in place, writes it back. Returns
  // false when the key is absent. `fn` must be side-effect-free: it runs
  // once per attempt.
  virtual bool TxReadModifyWrite(Tx& tx, uint64_t key,
                                 const std::function<void(uint64_t*)>& fn) const = 0;
  // Bounded scan from `start_key` (see the header comment for the
  // per-implementation ordering contract). Appends to `out`, returns the
  // number of entries appended.
  virtual uint32_t TxScan(Tx& tx, uint64_t start_key, uint32_t limit,
                          std::vector<KvEntry>* out) const = 0;

  // -- One-transaction wrappers -------------------------------------------
  virtual bool Get(TxRuntime& rt, uint64_t key, std::vector<uint64_t>* value) const = 0;
  // Insert-or-update. Returns true if the key was inserted, false if an
  // existing value was overwritten. `value` must point at value_words()
  // words.
  virtual bool Put(TxRuntime& rt, uint64_t key, const uint64_t* value) = 0;
  // Insert-only: returns false (and writes nothing) when the key already
  // exists. The conservation-checked chaos workloads need "put if absent".
  virtual bool Insert(TxRuntime& rt, uint64_t key, const uint64_t* value) = 0;
  // Returns true if the key was removed; the removed value lands in
  // `old_value` (if non-null). Removed nodes return to their pools.
  virtual bool Delete(TxRuntime& rt, uint64_t key,
                      std::vector<uint64_t>* old_value = nullptr) = 0;
  virtual bool ReadModifyWrite(TxRuntime& rt, uint64_t key,
                               const std::function<void(uint64_t*)>& fn) const = 0;
  virtual std::vector<KvEntry> Scan(TxRuntime& rt, uint64_t start_key,
                                    uint32_t limit) const = 0;

  // -- Host-side helpers (zero simulated cost) -----------------------------
  virtual bool HostPut(uint64_t key, const uint64_t* value) = 0;  // insert-or-update
  virtual bool HostGet(uint64_t key, uint64_t* value) const = 0;
  virtual uint64_t HostSize() const = 0;
  // Invokes fn(key, value_ptr) for every resident entry (host-side). No
  // ordering promise; OrderedIndex visits in ascending key order.
  virtual void HostForEach(const std::function<void(uint64_t, const uint64_t*)>& fn) const = 0;

  // -- Introspection --------------------------------------------------------
  virtual uint32_t value_words() const = 0;
  virtual uint32_t num_partitions() const = 0;
  // Live nodes currently allocated out of a partition's pool.
  virtual uint64_t NodesInUse(uint32_t partition) const = 0;
  // [base, base + bytes) of a partition's slab, for the chaos harness's
  // initial-state recording.
  virtual std::pair<uint64_t, uint64_t> SlabRange(uint32_t partition) const = 0;
  // "hash" or "btree" — the `--index` selector value and bench row param.
  virtual const char* IndexKindName() const = 0;
};

}  // namespace tm2c

#endif  // TM2C_SRC_APPS_TX_STORE_API_H_

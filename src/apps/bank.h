// The bank application (Section 5.3).
//
// A fixed array of accounts in shared memory. Operations:
//  - transfer: move one unit between two accounts (4 shared accesses),
//  - balance: sum every account (long read-only scan).
//
// Three implementations share the same layout:
//  - transactional (TM2C),
//  - lock-based, using a single global test-and-set spin lock (the paper
//    compares against this because the SCC's one-TAS-register-per-core
//    budget precludes fine-grained locking),
//  - sequential host-side helpers for initialization and verification.
#ifndef TM2C_SRC_APPS_BANK_H_
#define TM2C_SRC_APPS_BANK_H_

#include <cstdint>

#include "src/runtime/core_env.h"
#include "src/shmem/allocator.h"
#include "src/tm/tx_runtime.h"

namespace tm2c {

class Bank {
 public:
  // Allocates the account array (and the global lock word) in shared
  // memory region 0 and deposits `initial` in every account. Host-side.
  Bank(ShmAllocator& allocator, SharedMemory& mem, uint32_t num_accounts, uint64_t initial);

  uint32_t num_accounts() const { return num_accounts_; }
  uint64_t AccountAddr(uint32_t account) const { return base_ + account * kWordBytes; }

  // -- Transactional operations -----------------------------------------
  void TxTransfer(Tx& tx, uint32_t from, uint32_t to, uint64_t amount) const;
  uint64_t TxBalance(Tx& tx) const;

  // -- Lock-based operations (global spin lock) --------------------------
  void LockTransfer(CoreEnv& env, uint32_t from, uint32_t to, uint64_t amount) const;
  uint64_t LockBalance(CoreEnv& env) const;

  // -- Sequential operations (single core, no synchronization) -----------
  void SeqTransfer(CoreEnv& env, uint32_t from, uint32_t to, uint64_t amount) const;
  uint64_t SeqBalance(CoreEnv& env) const;

  // Host-side verification: total across all accounts at zero cost.
  uint64_t HostTotal() const;

 private:
  void AcquireGlobalLock(CoreEnv& env) const;
  void ReleaseGlobalLock(CoreEnv& env) const;

  SharedMemory* mem_;
  uint32_t num_accounts_;
  uint64_t base_ = 0;
  uint64_t lock_addr_ = 0;
};

}  // namespace tm2c

#endif  // TM2C_SRC_APPS_BANK_H_

// Shared-memory allocator.
//
// Carves the flat shared address space into one region per memory
// controller and hands out word-aligned blocks. A core-aware Alloc prefers
// the region closest to the requesting core on the mesh, reproducing the
// paper's observation that cores inserting new hash-table elements store
// them in their closest controller and thereby balance memory load.
// Metadata (free lists, block sizes) lives on the host side, outside the
// simulated memory, as a real SCC allocator would keep it in private RAM.
#ifndef TM2C_SRC_SHMEM_ALLOCATOR_H_
#define TM2C_SRC_SHMEM_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/noc/topology.h"
#include "src/shmem/shared_memory.h"

namespace tm2c {

class ShmAllocator {
 public:
  ShmAllocator(SharedMemory* mem, const Topology& topology);

  // Allocates `bytes` (rounded up to words) from the region closest to
  // `core`; falls back to other regions when the preferred one is full.
  // Returns the byte address. Checked error when memory is exhausted.
  uint64_t Alloc(uint64_t bytes, uint32_t core);

  // Allocates from region 0 regardless of caller locality. Used for initial
  // data structures, matching the paper's note that the initial hash table
  // resides in a single controller's region.
  uint64_t AllocGlobal(uint64_t bytes);

  // Returns a block to its free list. The address must come from Alloc/
  // AllocGlobal and must not be freed twice.
  void Free(uint64_t addr);

  uint64_t bytes_in_use() const { return bytes_in_use_; }

 private:
  uint64_t AllocFromRegion(uint32_t region, uint64_t bytes);
  uint32_t ClosestRegion(uint32_t core) const;

  SharedMemory* mem_;
  Topology topology_;
  uint32_t num_regions_;
  // Free ranges per region: start -> length (bytes), coalesced on free.
  std::vector<std::map<uint64_t, uint64_t>> free_lists_;
  // Live block sizes for Free().
  std::unordered_map<uint64_t, uint64_t> block_sizes_;
  uint64_t bytes_in_use_ = 0;
  std::mutex mu_;  // the std::thread backend allocates concurrently
};

}  // namespace tm2c

#endif  // TM2C_SRC_SHMEM_ALLOCATOR_H_

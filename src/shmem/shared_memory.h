// Non-coherent shared memory.
//
// The SCC exposes off-chip DRAM that any core can address but that no
// hardware keeps coherent; TM2C treats it as a flat array of bytes whose
// consistency is managed entirely by the DS-Lock protocol. We model it as a
// flat word array (64-bit words, the simulator's access granularity) plus a
// memory-controller occupancy model that charges queueing delay when many
// cores hit the same controller (the effect behind the paper's elastic-read
// congestion and hash-table balancing observations).
#ifndef TM2C_SRC_SHMEM_SHARED_MEMORY_H_
#define TM2C_SRC_SHMEM_SHARED_MEMORY_H_

#include <sys/mman.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/noc/latency.h"
#include "src/sim/time.h"

namespace tm2c {

constexpr uint64_t kWordBytes = 8;

class SharedMemory {
 public:
  // `interprocess` backs the word array with an anonymous MAP_SHARED
  // mapping instead of heap memory, so forked partition servers (the
  // process backend) address the same physical words as the parent —
  // exactly the SCC's off-chip DRAM: shared, addressable by everyone,
  // kept consistent only by the DS-Lock protocol. std::atomic<uint64_t>
  // is address-free when lock-free, so the atomics work across the
  // process boundary.
  explicit SharedMemory(uint64_t bytes, bool interprocess = false)
      : size_bytes_((bytes + kWordBytes - 1) / kWordBytes * kWordBytes) {
    static_assert(std::atomic<uint64_t>::is_always_lock_free,
                  "cross-process shared words need address-free atomics");
    const uint64_t num_words = size_bytes_ / kWordBytes;
    if (interprocess) {
      void* mem = ::mmap(nullptr, size_bytes_, PROT_READ | PROT_WRITE,
                         MAP_SHARED | MAP_ANONYMOUS, -1, 0);
      TM2C_CHECK_MSG(mem != MAP_FAILED, "shmem: mmap(MAP_SHARED) failed");
      mapped_bytes_ = size_bytes_;
      words_ = static_cast<std::atomic<uint64_t>*>(mem);
      for (uint64_t i = 0; i < num_words; ++i) {
        new (&words_[i]) std::atomic<uint64_t>();
      }
    } else {
      owned_.reset(new std::atomic<uint64_t>[num_words]);
      words_ = owned_.get();
    }
    for (uint64_t i = 0; i < num_words; ++i) {
      words_[i].store(0, std::memory_order_relaxed);
    }
  }

  ~SharedMemory() {
    if (mapped_bytes_ != 0) {
      ::munmap(words_, mapped_bytes_);
    }
  }

  SharedMemory(const SharedMemory&) = delete;
  SharedMemory& operator=(const SharedMemory&) = delete;

  // Acquire/release word accesses: free on x86 (plain MOVs) and what the
  // thread backend needs so a word used as a flag or lock register orders
  // the data it protects — in particular the modelled TAS register is
  // released by a plain StoreWord(addr, 0), which must pair with the next
  // winner's CasWord acquire. The simulator backend is single-threaded and
  // unaffected.
  uint64_t LoadWord(uint64_t addr) const {
    return words_[WordIndex(addr)].load(std::memory_order_acquire);
  }

  void StoreWord(uint64_t addr, uint64_t value) {
    words_[WordIndex(addr)].store(value, std::memory_order_release);
  }

  // Atomic compare-and-swap on one word: installs `desired` and returns
  // true iff the word held `expected`. The thread backend builds its
  // test-and-set register from this; the simulator never needs it (one
  // host thread runs everything).
  bool CasWord(uint64_t addr, uint64_t expected, uint64_t desired) {
    return words_[WordIndex(addr)].compare_exchange_strong(
        expected, desired, std::memory_order_acq_rel, std::memory_order_acquire);
  }

  uint64_t size_bytes() const { return size_bytes_; }

 private:
  uint64_t WordIndex(uint64_t addr) const {
    TM2C_DCHECK(addr % kWordBytes == 0);
    TM2C_DCHECK(addr < size_bytes_);
    return addr / kWordBytes;
  }

  uint64_t size_bytes_;
  // Atomic words so the std::thread backend can share the array without
  // data races; the simulator backend is single-threaded and unaffected.
  // Backed by the heap (owned_) or an anonymous shared mapping (mapped_),
  // depending on the backend's process topology.
  std::atomic<uint64_t>* words_ = nullptr;
  std::unique_ptr<std::atomic<uint64_t>[]> owned_;
  uint64_t mapped_bytes_ = 0;
};

// Queueing model for the platform's memory controllers. Each controller
// serves one request at a time with a fixed occupancy; a request issued at
// time t to a busy controller waits until the controller frees up. Only the
// simulator backend uses this (real threads experience real memory timing).
class MemControllerModel {
 public:
  MemControllerModel(const PlatformDesc& platform, uint64_t shmem_bytes)
      : shmem_bytes_(shmem_bytes),
        service_ps_(platform.mc_service_ns * kPicosPerNano),
        stream_bytes_per_us_(platform.mc_stream_bytes_per_us),
        busy_until_(platform.num_mem_controllers, 0) {}

  // Completion time of a word access issued at `now` from `core`; advances
  // the controller's occupancy window.
  SimTime Access(SimTime now, uint32_t core, uint64_t addr, const LatencyModel& latency) {
    const uint32_t mc = latency.topology().MemControllerOf(addr, shmem_bytes_);
    const SimTime start = now > busy_until_[mc] ? now : busy_until_[mc];
    busy_until_[mc] = start + service_ps_;
    return start + latency.MemAccessPs(core, addr, shmem_bytes_);
  }

  // Completion time of streaming `bytes` starting at `addr`: one initial
  // latency plus bandwidth-limited transfer, occupying the controller for
  // the whole burst.
  SimTime BulkAccess(SimTime now, uint32_t core, uint64_t addr, uint64_t bytes,
                     const LatencyModel& latency) {
    const uint32_t mc = latency.topology().MemControllerOf(addr, shmem_bytes_);
    const SimTime start = now > busy_until_[mc] ? now : busy_until_[mc];
    const SimTime transfer = bytes * kPicosPerMicro / stream_bytes_per_us_;
    busy_until_[mc] = start + transfer;
    return start + transfer + latency.MemAccessPs(core, addr, shmem_bytes_);
  }

 private:
  uint64_t shmem_bytes_;
  SimTime service_ps_;
  uint64_t stream_bytes_per_us_;
  std::vector<SimTime> busy_until_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_SHMEM_SHARED_MEMORY_H_

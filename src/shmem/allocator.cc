#include "src/shmem/allocator.h"

#include <limits>

#include "src/common/check.h"

namespace tm2c {

ShmAllocator::ShmAllocator(SharedMemory* mem, const Topology& topology)
    : mem_(mem), topology_(topology), num_regions_(topology.platform().num_mem_controllers) {
  TM2C_CHECK(num_regions_ >= 1);
  free_lists_.resize(num_regions_);
  const uint64_t total = mem_->size_bytes();
  const uint64_t region_bytes = (total / num_regions_) / kWordBytes * kWordBytes;
  TM2C_CHECK_MSG(region_bytes >= kWordBytes, "shared memory too small for region split");
  for (uint32_t r = 0; r < num_regions_; ++r) {
    const uint64_t start = static_cast<uint64_t>(r) * region_bytes;
    const uint64_t len = (r == num_regions_ - 1) ? total - start : region_bytes;
    free_lists_[r].emplace(start, len);
  }
  // Address 0 doubles as the null pointer for in-memory data structures;
  // never hand it out.
  const uint64_t reserved = AllocFromRegion(0, kWordBytes);
  TM2C_CHECK(reserved == 0);
}

uint32_t ShmAllocator::ClosestRegion(uint32_t core) const {
  uint32_t best = 0;
  uint32_t best_hops = std::numeric_limits<uint32_t>::max();
  for (uint32_t mc = 0; mc < num_regions_; ++mc) {
    const uint32_t hops = topology_.HopsToMemController(core, mc);
    if (hops < best_hops) {
      best_hops = hops;
      best = mc;
    }
  }
  return best;
}

uint64_t ShmAllocator::AllocFromRegion(uint32_t region, uint64_t bytes) {
  auto& fl = free_lists_[region];
  for (auto it = fl.begin(); it != fl.end(); ++it) {
    if (it->second >= bytes) {
      const uint64_t addr = it->first;
      const uint64_t remaining = it->second - bytes;
      fl.erase(it);
      if (remaining > 0) {
        fl.emplace(addr + bytes, remaining);
      }
      return addr;
    }
  }
  return UINT64_MAX;
}

uint64_t ShmAllocator::Alloc(uint64_t bytes, uint32_t core) {
  TM2C_CHECK(bytes > 0);
  bytes = (bytes + kWordBytes - 1) / kWordBytes * kWordBytes;
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t preferred = ClosestRegion(core);
  for (uint32_t i = 0; i < num_regions_; ++i) {
    const uint32_t region = (preferred + i) % num_regions_;
    const uint64_t addr = AllocFromRegion(region, bytes);
    if (addr != UINT64_MAX) {
      block_sizes_[addr] = bytes;
      bytes_in_use_ += bytes;
      return addr;
    }
  }
  TM2C_FATAL("shared memory exhausted");
}

uint64_t ShmAllocator::AllocGlobal(uint64_t bytes) {
  TM2C_CHECK(bytes > 0);
  bytes = (bytes + kWordBytes - 1) / kWordBytes * kWordBytes;
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t region = 0; region < num_regions_; ++region) {
    const uint64_t addr = AllocFromRegion(region, bytes);
    if (addr != UINT64_MAX) {
      block_sizes_[addr] = bytes;
      bytes_in_use_ += bytes;
      return addr;
    }
  }
  TM2C_FATAL("shared memory exhausted");
}

void ShmAllocator::Free(uint64_t addr) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = block_sizes_.find(addr);
  TM2C_CHECK_MSG(it != block_sizes_.end(), "Free of unknown or already-freed block");
  uint64_t len = it->second;
  bytes_in_use_ -= len;
  block_sizes_.erase(it);

  // Reinsert into the owning region's free list and coalesce neighbours.
  const uint64_t total = mem_->size_bytes();
  const uint64_t region_bytes = (total / num_regions_) / kWordBytes * kWordBytes;
  uint32_t region = static_cast<uint32_t>(addr / region_bytes);
  if (region >= num_regions_) {
    region = num_regions_ - 1;
  }
  auto& fl = free_lists_[region];
  auto next = fl.lower_bound(addr);
  if (next != fl.end() && addr + len == next->first) {
    len += next->second;
    next = fl.erase(next);
  }
  if (next != fl.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == addr) {
      prev->second += len;
      return;
    }
  }
  fl.emplace(addr, len);
}

}  // namespace tm2c

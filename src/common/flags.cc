#include "src/common/flags.h"

#include <cstdio>
#include <cstdlib>

namespace tm2c {
namespace {

bool ParseInt(const std::string& s, long long* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

void FlagSet::Add(Flag flag) { flags_.push_back(std::move(flag)); }

void FlagSet::Register(const std::string& name, int* value, const std::string& help) {
  Flag f;
  f.name = name;
  f.help = help;
  f.default_repr = std::to_string(*value);
  f.setter = [value](const std::string& s) {
    long long v = 0;
    if (!ParseInt(s, &v)) {
      return false;
    }
    *value = static_cast<int>(v);
    return true;
  };
  Add(std::move(f));
}

void FlagSet::Register(const std::string& name, uint64_t* value, const std::string& help) {
  Flag f;
  f.name = name;
  f.help = help;
  f.default_repr = std::to_string(*value);
  f.setter = [value](const std::string& s) {
    long long v = 0;
    if (!ParseInt(s, &v) || v < 0) {
      return false;
    }
    *value = static_cast<uint64_t>(v);
    return true;
  };
  Add(std::move(f));
}

void FlagSet::Register(const std::string& name, double* value, const std::string& help) {
  Flag f;
  f.name = name;
  f.help = help;
  f.default_repr = std::to_string(*value);
  f.setter = [value](const std::string& s) {
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (s.empty() || end == nullptr || *end != '\0') {
      return false;
    }
    *value = v;
    return true;
  };
  Add(std::move(f));
}

void FlagSet::Register(const std::string& name, bool* value, const std::string& help) {
  Flag f;
  f.name = name;
  f.help = help;
  f.default_repr = *value ? "true" : "false";
  f.is_bool = true;
  f.setter = [value](const std::string& s) {
    if (s == "true" || s == "1" || s.empty()) {
      *value = true;
      return true;
    }
    if (s == "false" || s == "0") {
      *value = false;
      return true;
    }
    return false;
  };
  Add(std::move(f));
}

void FlagSet::Register(const std::string& name, std::string* value, const std::string& help) {
  Flag f;
  f.name = name;
  f.help = help;
  f.default_repr = *value;
  f.setter = [value](const std::string& s) {
    *value = s;
    return true;
  };
  Add(std::move(f));
}

void FlagSet::PrintUsage(const char* argv0) const {
  std::fprintf(stderr, "usage: %s [flags]\n", argv0);
  for (const Flag& f : flags_) {
    std::fprintf(stderr, "  --%s (default %s): %s\n", f.name.c_str(), f.default_repr.c_str(),
                 f.help.c_str());
  }
}

std::vector<std::string> FlagSet::Parse(int argc, char** argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    Flag* match = nullptr;
    for (Flag& f : flags_) {
      if (f.name == name) {
        match = &f;
        break;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr, "unknown flag --%s\n", name.c_str());
      PrintUsage(argv[0]);
      std::exit(2);
    }
    if (!has_value && !match->is_bool) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
        std::exit(2);
      }
      value = argv[++i];
    }
    if (!match->setter(value)) {
      std::fprintf(stderr, "bad value '%s' for flag --%s\n", value.c_str(), name.c_str());
      std::exit(2);
    }
  }
  return positional;
}

}  // namespace tm2c

// Deterministic pseudo-random number generation.
//
// Everything in the simulator that needs randomness (workload key choices,
// back-off draws, clock skew, text generation) draws from an Xorshift128+
// generator seeded explicitly, so whole experiments replay bit-for-bit.
#ifndef TM2C_SRC_COMMON_RNG_H_
#define TM2C_SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/check.h"

namespace tm2c {

// Xorshift128+ generator (Vigna, 2014). Small, fast, and good enough for
// workload generation; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 seeding avoids the all-zero state and decorrelates nearby
    // seeds (consecutive core ids are typical callers).
    uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    auto next = [&z]() {
      z += 0x9e3779b97f4a7c15ull;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return x ^ (x >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) {
      s1_ = 1;
    }
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform in [0, bound). bound must be positive.
  uint64_t NextBelow(uint64_t bound) {
    TM2C_DCHECK(bound > 0);
    // Modulo bias is negligible for the small bounds used by workloads
    // relative to 2^64, and determinism matters more than perfection here.
    return Next() % bound;
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    TM2C_DCHECK(lo <= hi);
    return lo + NextBelow(hi - lo + 1);
  }

  // True with probability pct/100.
  bool NextPercent(uint32_t pct) { return NextBelow(100) < pct; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_COMMON_RNG_H_

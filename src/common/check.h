// Assertion macros for invariant checking.
//
// CHECK(cond) aborts the process with a diagnostic when `cond` is false; it
// is always compiled in, because the simulator and protocol code rely on
// these invariants for correctness and silent corruption is worse than an
// abort. DCHECK compiles away in NDEBUG builds and is meant for hot paths.
#ifndef TM2C_SRC_COMMON_CHECK_H_
#define TM2C_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace tm2c {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace tm2c

#define TM2C_CHECK(cond)                                \
  do {                                                  \
    if (!(cond)) {                                      \
      ::tm2c::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                   \
  } while (0)

#define TM2C_CHECK_MSG(cond, msg)                       \
  do {                                                  \
    if (!(cond)) {                                      \
      ::tm2c::CheckFailed(__FILE__, __LINE__, msg);     \
    }                                                   \
  } while (0)

// Unconditional failure for unreachable paths (exhausted switches, "cannot
// happen" fallthroughs). Unlike TM2C_CHECK_MSG(false, ...) the compiler
// sees the [[noreturn]] call on every path even at -O0, so -Wreturn-type
// stays quiet in Debug builds.
#define TM2C_FATAL(msg) ::tm2c::CheckFailed(__FILE__, __LINE__, msg)

#ifdef NDEBUG
#define TM2C_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define TM2C_DCHECK(cond) TM2C_CHECK(cond)
#endif

#endif  // TM2C_SRC_COMMON_CHECK_H_

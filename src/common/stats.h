// Lightweight statistics accumulators used by benches and runtime counters.
#ifndef TM2C_SRC_COMMON_STATS_H_
#define TM2C_SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace tm2c {

// Streaming accumulator: count, sum, min, max, mean, variance (Welford).
class StatAccumulator {
 public:
  void Add(double x) {
    ++count_;
    sum_ += x;
    if (x < min_) {
      min_ = x;
    }
    if (x > max_) {
      max_ = x;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  void Merge(const StatAccumulator& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    sum_ += other.sum_;
    count_ += other.count_;
    if (other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }

 private:
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Streaming moments plus exact percentiles: keeps every sample, so use it
// for bounded runs (a bench records one sample per completed operation).
// All queries are well-defined on an empty sampler and return 0.
class LatencySampler {
 public:
  void Add(double x) {
    acc_.Add(x);
    samples_.push_back(x);
  }

  void Merge(const LatencySampler& other) {
    acc_.Merge(other.acc_);
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  }

  // Nearest-rank percentile, q in [0,1]: the smallest sample such that at
  // least ceil(q * count) samples are <= it. Percentile(0) is the minimum,
  // Percentile(1) the maximum; 0.0 when no samples were recorded.
  double Percentile(double q) const;

  // Several percentiles from one sort of one copy — what the bench
  // reporter uses for p50/p95/p99 so large sample sets are not re-copied
  // per quantile.
  std::vector<double> Percentiles(const std::vector<double>& qs) const;

  uint64_t count() const { return acc_.count(); }
  double mean() const { return acc_.mean(); }
  double min() const { return acc_.min(); }
  double max() const { return acc_.max(); }
  const StatAccumulator& moments() const { return acc_; }

 private:
  StatAccumulator acc_;
  std::vector<double> samples_;
};

// Fixed-bucket histogram over [0, bucket_width * num_buckets); out-of-range
// samples land in the last (overflow) bucket.
class Histogram {
 public:
  Histogram(double bucket_width, size_t num_buckets)
      : bucket_width_(bucket_width), counts_(num_buckets + 1, 0) {}

  void Add(double x) {
    size_t idx = x < 0 ? 0 : static_cast<size_t>(x / bucket_width_);
    if (idx >= counts_.size() - 1) {
      idx = counts_.size() - 1;
    }
    ++counts_[idx];
    ++total_;
  }

  // Value below which `q` (in [0,1]) of the samples fall; linear in buckets.
  double Quantile(double q) const;

  uint64_t total() const { return total_; }
  const std::vector<uint64_t>& counts() const { return counts_; }
  double bucket_width() const { return bucket_width_; }

 private:
  double bucket_width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace tm2c

#endif  // TM2C_SRC_COMMON_STATS_H_

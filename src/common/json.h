// Minimal streaming JSON writer for machine-readable bench results.
//
// The writer manages commas and nesting; callers produce values in document
// order. Doubles that are not finite (NaN/inf from degenerate runs) are
// emitted as null so the output always parses.
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("throughput_ops_per_ms");
//   w.Number(123.4);
//   w.EndObject();
//   std::string doc = w.Take();
#ifndef TM2C_SRC_COMMON_JSON_H_
#define TM2C_SRC_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tm2c {

class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(const std::string& key);

  void String(const std::string& value);
  void Number(double value);
  void Number(uint64_t value);
  void Number(int value);
  void Bool(bool value);
  void Null();

  // Convenience for the common `"key": value` pair.
  template <typename T>
  void KV(const std::string& key, const T& value) {
    Key(key);
    Put(value);
  }

  // The serialized document; the writer is left empty.
  std::string Take();
  const std::string& str() const { return out_; }

  static std::string Escape(const std::string& s);

 private:
  void Put(const std::string& v) { String(v); }
  void Put(const char* v) { String(v); }
  void Put(double v) { Number(v); }
  void Put(uint64_t v) { Number(v); }
  void Put(int v) { Number(v); }
  void Put(bool v) { Bool(v); }

  // Writes the separator a new value needs in the current container.
  void BeforeValue();

  std::string out_;
  // One entry per open container: true once it holds at least one element.
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace tm2c

#endif  // TM2C_SRC_COMMON_JSON_H_

// Minimal leveled logger.
//
// The simulator is single-threaded so no synchronization is needed on that
// path; the std::thread runtime backend serializes writes with a mutex
// internally in LogMessage. Verbosity is a process-wide level settable by
// tests and the TM2C_LOG environment variable.
#ifndef TM2C_SRC_COMMON_LOG_H_
#define TM2C_SRC_COMMON_LOG_H_

#include <cstdarg>

namespace tm2c {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

// Returns the current process-wide verbosity (default kWarn, overridable via
// the TM2C_LOG environment variable: error|warn|info|debug|trace).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// printf-style log statement; cheap no-op when `level` is above the current
// verbosity.
void LogMessage(LogLevel level, const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 4, 5)));

}  // namespace tm2c

#define TM2C_LOG(level, ...)                                            \
  do {                                                                  \
    if (static_cast<int>(level) <= static_cast<int>(::tm2c::GetLogLevel())) { \
      ::tm2c::LogMessage(level, __FILE__, __LINE__, __VA_ARGS__);       \
    }                                                                   \
  } while (0)

#define TM2C_LOG_ERROR(...) TM2C_LOG(::tm2c::LogLevel::kError, __VA_ARGS__)
#define TM2C_LOG_WARN(...) TM2C_LOG(::tm2c::LogLevel::kWarn, __VA_ARGS__)
#define TM2C_LOG_INFO(...) TM2C_LOG(::tm2c::LogLevel::kInfo, __VA_ARGS__)
#define TM2C_LOG_DEBUG(...) TM2C_LOG(::tm2c::LogLevel::kDebug, __VA_ARGS__)
#define TM2C_LOG_TRACE(...) TM2C_LOG(::tm2c::LogLevel::kTrace, __VA_ARGS__)

#endif  // TM2C_SRC_COMMON_LOG_H_

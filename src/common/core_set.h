// Compact set of core identifiers, used for reader sets in the lock table.
//
// Optimized for the common case of at most 64 cores (one inline word, no
// allocation); transparently spills to heap words for larger machines so the
// library is not artificially capped at SCC size.
#ifndef TM2C_SRC_COMMON_CORE_SET_H_
#define TM2C_SRC_COMMON_CORE_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace tm2c {

class CoreSet {
 public:
  CoreSet() = default;

  void Insert(uint32_t core) {
    if (core < 64) {
      inline_bits_ |= (1ull << core);
      return;
    }
    const size_t word = core / 64 - 1;
    if (word >= overflow_.size()) {
      overflow_.resize(word + 1, 0);
    }
    overflow_[word] |= (1ull << (core % 64));
  }

  void Erase(uint32_t core) {
    if (core < 64) {
      inline_bits_ &= ~(1ull << core);
      return;
    }
    const size_t word = core / 64 - 1;
    if (word < overflow_.size()) {
      overflow_[word] &= ~(1ull << (core % 64));
    }
  }

  bool Contains(uint32_t core) const {
    if (core < 64) {
      return (inline_bits_ & (1ull << core)) != 0;
    }
    const size_t word = core / 64 - 1;
    return word < overflow_.size() && (overflow_[word] & (1ull << (core % 64))) != 0;
  }

  bool Empty() const {
    if (inline_bits_ != 0) {
      return false;
    }
    for (uint64_t w : overflow_) {
      if (w != 0) {
        return false;
      }
    }
    return true;
  }

  size_t Count() const {
    size_t n = static_cast<size_t>(__builtin_popcountll(inline_bits_));
    for (uint64_t w : overflow_) {
      n += static_cast<size_t>(__builtin_popcountll(w));
    }
    return n;
  }

  void Clear() {
    inline_bits_ = 0;
    overflow_.clear();
  }

  // True when `core` is the only member.
  bool IsExactly(uint32_t core) const { return Contains(core) && Count() == 1; }

  // Invokes fn(core_id) for every member in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    uint64_t bits = inline_bits_;
    while (bits != 0) {
      const uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(bits));
      fn(bit);
      bits &= bits - 1;
    }
    for (size_t w = 0; w < overflow_.size(); ++w) {
      uint64_t word_bits = overflow_[w];
      while (word_bits != 0) {
        const uint32_t bit = static_cast<uint32_t>(__builtin_ctzll(word_bits));
        fn(static_cast<uint32_t>((w + 1) * 64) + bit);
        word_bits &= word_bits - 1;
      }
    }
  }

  // Collects the members into a vector (ascending order).
  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> out;
    out.reserve(Count());
    ForEach([&out](uint32_t c) { out.push_back(c); });
    return out;
  }

 private:
  uint64_t inline_bits_ = 0;
  std::vector<uint64_t> overflow_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_COMMON_CORE_SET_H_

#include "src/common/table.h"

#include <cstdio>

#include "src/common/check.h"

namespace tm2c {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  TM2C_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TextTable::Print(const std::string& title) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) {
        widths[c] = row[c].size();
      }
    }
  }
  std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&widths](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
  std::fflush(stdout);
}

}  // namespace tm2c

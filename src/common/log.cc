#include "src/common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace tm2c {
namespace {

LogLevel ParseLevel(const char* s) {
  if (std::strcmp(s, "error") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(s, "warn") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(s, "info") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(s, "debug") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(s, "trace") == 0) {
    return LogLevel::kTrace;
  }
  return LogLevel::kWarn;
}

LogLevel InitialLevel() {
  const char* env = std::getenv("TM2C_LOG");
  return env != nullptr ? ParseLevel(env) : LogLevel::kWarn;
}

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelStorage().load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) {
  LevelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const char* file, int line, const char* fmt, ...) {
  static std::mutex mu;
  // Strip the directory prefix for readability.
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;

  char body[1024];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof(body), fmt, ap);
  va_end(ap);

  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, body);
}

}  // namespace tm2c

// Column-aligned plain-text table printer for the benchmark harness.
//
// Each bench prints the same rows/series the paper's figure reports; this
// helper keeps that output consistent and machine-greppable.
#ifndef TM2C_SRC_COMMON_TABLE_H_
#define TM2C_SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace tm2c {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  // Renders with aligned columns to stdout, preceded by `title`.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_COMMON_TABLE_H_

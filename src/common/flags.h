// Tiny command-line flag parser for bench and example binaries.
//
// Usage:
//   FlagSet flags;
//   int cores = 48;
//   flags.Register("cores", &cores, "number of simulated cores");
//   flags.Parse(argc, argv);   // accepts --cores=24 and --cores 24
#ifndef TM2C_SRC_COMMON_FLAGS_H_
#define TM2C_SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tm2c {

class FlagSet {
 public:
  void Register(const std::string& name, int* value, const std::string& help);
  void Register(const std::string& name, uint64_t* value, const std::string& help);
  void Register(const std::string& name, double* value, const std::string& help);
  void Register(const std::string& name, bool* value, const std::string& help);
  void Register(const std::string& name, std::string* value, const std::string& help);

  // Parses argv; prints usage and exits on --help or an unknown/ill-formed
  // flag. Returns positional (non-flag) arguments.
  std::vector<std::string> Parse(int argc, char** argv);

  void PrintUsage(const char* argv0) const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string default_repr;
    bool is_bool = false;
    std::function<bool(const std::string&)> setter;
  };

  void Add(Flag flag);

  std::vector<Flag> flags_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_COMMON_FLAGS_H_

#include "src/common/json.h"

#include <cmath>
#include <cstdio>

namespace tm2c {

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) {
      out_ += ',';
    }
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(const std::string& key) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
}

void JsonWriter::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::Number(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Number(int value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

std::string JsonWriter::Take() {
  std::string result = std::move(out_);
  out_.clear();
  has_element_.clear();
  pending_key_ = false;
  return result;
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
        break;
    }
  }
  return out;
}

}  // namespace tm2c

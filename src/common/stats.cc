#include "src/common/stats.h"

namespace tm2c {

double Histogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  const auto target = static_cast<uint64_t>(q * static_cast<double>(total_));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      // Midpoint of the bucket is a reasonable point estimate.
      return (static_cast<double>(i) + 0.5) * bucket_width_;
    }
  }
  return static_cast<double>(counts_.size()) * bucket_width_;
}

}  // namespace tm2c

#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace tm2c {

namespace {

// Nearest rank: the k-th smallest with k = ceil(q * n), clamped to [1, n].
size_t NearestRank(double q, size_t n) {
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) {
    rank = 1;
  }
  if (rank > n) {
    rank = n;
  }
  return rank;
}

}  // namespace

double LatencySampler::Percentile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  const size_t rank = NearestRank(q, samples_.size());
  std::vector<double> sorted = samples_;
  std::nth_element(sorted.begin(), sorted.begin() + (rank - 1), sorted.end());
  return sorted[rank - 1];
}

std::vector<double> LatencySampler::Percentiles(const std::vector<double>& qs) const {
  if (samples_.empty()) {
    return std::vector<double>(qs.size(), 0.0);
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> out;
  out.reserve(qs.size());
  for (const double q : qs) {
    out.push_back(sorted[NearestRank(q, sorted.size()) - 1]);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) {
    return 0.0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  // Nearest rank, at least 1: a target of 0 would otherwise report the
  // midpoint of bucket 0 even when every sample sits in a higher bucket.
  auto target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(total_)));
  if (target == 0) {
    target = 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target) {
      // Midpoint of the bucket is a reasonable point estimate.
      return (static_cast<double>(i) + 0.5) * bucket_width_;
    }
  }
  return static_cast<double>(counts_.size()) * bucket_width_;
}

}  // namespace tm2c

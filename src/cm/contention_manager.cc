#include "src/cm/contention_manager.h"

#include "src/common/check.h"

namespace tm2c {

const char* CmKindName(CmKind kind) {
  switch (kind) {
    case CmKind::kNone:
      return "none";
    case CmKind::kBackoffRetry:
      return "backoff";
    case CmKind::kOffsetGreedy:
      return "offset-greedy";
    case CmKind::kWholly:
      return "wholly";
    case CmKind::kFairCm:
      return "faircm";
  }
  return "?";
}

CmKind CmKindByName(const std::string& name) {
  if (name == "none") {
    return CmKind::kNone;
  }
  if (name == "backoff") {
    return CmKind::kBackoffRetry;
  }
  if (name == "offset-greedy") {
    return CmKind::kOffsetGreedy;
  }
  if (name == "wholly") {
    return CmKind::kWholly;
  }
  if (name == "faircm") {
    return CmKind::kFairCm;
  }
  TM2C_FATAL("unknown contention manager name");
}

bool PriorityWins(const TxInfo& a, const TxInfo& b) {
  if (a.metric != b.metric) {
    return a.metric < b.metric;
  }
  return a.core < b.core;
}

namespace {

// kNone and kBackoffRetry: the transaction that detects the conflict always
// aborts itself; the difference (randomized exponential wait before retry)
// is applied by the requester's runtime, not at the service node.
class SelfAbortCm : public ContentionManager {
 public:
  explicit SelfAbortCm(CmKind kind) : kind_(kind) {}
  CmKind kind() const override { return kind_; }
  // Decides against the requester unconditionally: these policies never
  // arbitrate, so the conflict details stay unnamed by design.
  CmDecision Decide(const TxInfo& /*requester*/, const std::vector<TxInfo>& /*holders*/,
                    ConflictKind /*conflict*/) const override {
    return CmDecision::kAbortRequester;
  }

 private:
  CmKind kind_;
};

// Shared implementation for the three priority-ordered CMs: the requester
// wins only if it beats every current holder.
class PriorityCm : public ContentionManager {
 public:
  explicit PriorityCm(CmKind kind) : kind_(kind) {}
  CmKind kind() const override { return kind_; }

  // Priority arbitration is conflict-kind-agnostic (Property 1 only needs
  // the total order), so `conflict` stays unnamed by design.
  CmDecision Decide(const TxInfo& requester, const std::vector<TxInfo>& holders,
                    ConflictKind /*conflict*/) const override {
    TM2C_DCHECK(!holders.empty());
    for (const TxInfo& holder : holders) {
      if (!PriorityWins(requester, holder)) {
        return CmDecision::kAbortRequester;
      }
    }
    return CmDecision::kAbortEnemies;
  }

 private:
  CmKind kind_;
};

// Offset-Greedy (Section 4.3): the wire metric is the offset between the
// requester's transaction start and the send time, measured on the
// requester's clock. The service core subtracts it from its own local clock
// to estimate the start timestamp. The message delay between send and
// receive inflates the estimate and differs across nodes with load — the
// reason rule (b) of Property 1 (a consistent total order) can be violated.
class OffsetGreedyCm : public PriorityCm {
 public:
  OffsetGreedyCm() : PriorityCm(CmKind::kOffsetGreedy) {}

  uint64_t MetricFromWire(uint64_t wire_metric, SimTime service_local_now) const override {
    return service_local_now > wire_metric ? service_local_now - wire_metric : 0;
  }
};

}  // namespace

std::unique_ptr<ContentionManager> MakeContentionManager(CmKind kind) {
  switch (kind) {
    case CmKind::kNone:
    case CmKind::kBackoffRetry:
      return std::make_unique<SelfAbortCm>(kind);
    case CmKind::kOffsetGreedy:
      return std::make_unique<OffsetGreedyCm>();
    case CmKind::kWholly:
    case CmKind::kFairCm:
      return std::make_unique<PriorityCm>(kind);
  }
  TM2C_FATAL("unknown contention manager kind");
}

}  // namespace tm2c

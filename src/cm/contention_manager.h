// Distributed contention management (Section 4).
//
// A contention manager runs on every DTM service core. When the DS-Lock
// detects a conflict it asks the CM to pick a winner; the CM sees only the
// information available at this node — the requester's metadata piggybacked
// on the request and the metadata remembered from the lock holders' earlier
// requests. Property 1 of the paper shows this local information is
// sufficient for a coherent global decision as long as a transaction's
// priority never changes during its lifespan.
//
// Five policies are implemented:
//   kNone          abort-and-retry, no arbitration (livelock-prone)
//   kBackoffRetry  like kNone but the requester backs off exponentially
//   kOffsetGreedy  Greedy via clock-offset-estimated start times; the
//                  estimate absorbs the message delay, so concurrent
//                  conflicts can see inconsistent orders (Section 4.3)
//   kWholly        priority = -(number of committed transactions);
//                  starvation-free (Property 2)
//   kFairCm        priority = -(cumulative effective transactional time);
//                  starvation-free and favours short transactions
//                  (Property 3)
#ifndef TM2C_SRC_CM_CONTENTION_MANAGER_H_
#define TM2C_SRC_CM_CONTENTION_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/message.h"
#include "src/sim/time.h"

namespace tm2c {

enum class CmKind : uint8_t {
  kNone = 0,
  kBackoffRetry,
  kOffsetGreedy,
  kWholly,
  kFairCm,
};

const char* CmKindName(CmKind kind);
CmKind CmKindByName(const std::string& name);

// What a service node knows about one in-flight transaction.
struct TxInfo {
  uint32_t core = 0;
  uint64_t epoch = 0;    // (core << 32) | attempt counter; monotonic per core
  uint64_t metric = 0;   // CM-specific priority metric (lower wins)
};

enum class CmDecision : uint8_t {
  kAbortRequester = 0,  // the requesting transaction must abort
  kAbortEnemies = 1,    // revoke the holders' locks, grant the requester
};

class ContentionManager {
 public:
  virtual ~ContentionManager() = default;

  virtual CmKind kind() const = 0;

  // Resolves a conflict between the requester and the current holders.
  // `holders` is one writer (RAW/WAW) or all readers (WAR); the requester
  // wins only by beating every holder, since all-but-one of the conflicting
  // transactions must abort.
  virtual CmDecision Decide(const TxInfo& requester, const std::vector<TxInfo>& holders,
                            ConflictKind conflict) const = 0;

  // Translates the metric payload carried on the wire into the metric used
  // for comparison. Offset-Greedy overrides this: the payload is the
  // time-offset since transaction start, turned into an estimated start
  // timestamp against this service core's own clock — the step that bakes
  // the (load-dependent) message delay into the priority.
  // The base policies compare wire metrics directly; only clock-based CMs
  // (Offset-Greedy) need the service core's local time, so it is unnamed
  // here by design.
  virtual uint64_t MetricFromWire(uint64_t wire_metric, SimTime /*service_local_now*/) const {
    return wire_metric;
  }
};

// Factory. All five policies are stateless service-side; one instance can
// be shared by all partitions of a service core.
std::unique_ptr<ContentionManager> MakeContentionManager(CmKind kind);

// Total-order comparison shared by the priority CMs: true when `a` beats
// `b` (strictly lower metric, core id as tie-break).
bool PriorityWins(const TxInfo& a, const TxInfo& b);

}  // namespace tm2c

#endif  // TM2C_SRC_CM_CONTENTION_MANAGER_H_

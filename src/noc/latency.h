// Message and memory latency model.
//
// One-way message cost =
//     send overhead (sender core cycles)
//   + wire time (mesh cycles per hop x hops, or socket penalty)
//   + receive overhead (receiver core cycles)
//   + poll scan (receiver core cycles per polled peer).
//
// The poll term models the SCC's software message-passing: to receive
// asynchronously a core repeatedly scans one flag per potential sender, so
// the cost of noticing a message grows linearly with the number of peers it
// serves. This is the effect the paper blames for Figure 8(a)'s latency
// growth from ~5.1 us (2 cores) to ~12.4 us (48 cores) round trip.
#ifndef TM2C_SRC_NOC_LATENCY_H_
#define TM2C_SRC_NOC_LATENCY_H_

#include <cstdint>

#include "src/noc/topology.h"
#include "src/sim/time.h"

namespace tm2c {

class LatencyModel {
 public:
  explicit LatencyModel(const PlatformDesc& platform) : topo_(platform) {}

  // Sender-side occupancy of a message (the core is busy this long before
  // the message is on the wire).
  SimTime SendOverheadPs() const {
    return topo_.platform().CoreCyclesToPs(topo_.platform().msg_send_cycles);
  }

  // Marginal marshalling cost of a message's variable payload, paid by the
  // sender and again by the receiver. One fixed SendOverheadPs/
  // RecvOverheadPs per message plus this per-entry term is what makes the
  // batched multi-address protocol cheaper than one message per address.
  SimTime PayloadPs(size_t payload_words) const {
    const PlatformDesc& p = topo_.platform();
    return p.CoreCyclesToPs(p.msg_payload_cycles_per_word * static_cast<uint64_t>(payload_words));
  }

  // Wire time from src to dst after leaving the sender.
  SimTime WirePs(uint32_t src, uint32_t dst) const {
    const PlatformDesc& p = topo_.platform();
    const uint32_t hops = topo_.Hops(src, dst);
    if (p.kind == PlatformKind::kOpteron) {
      return p.CoreCyclesToPs(static_cast<uint64_t>(hops) * p.socket_hop_extra_cycles);
    }
    return CyclesToSim(static_cast<uint64_t>(hops) * p.mesh_cycles_per_hop, p.MeshPeriodPs());
  }

  // Receiver-side cost to notice and ingest one message when the receiver
  // polls `polled_peers` potential senders.
  SimTime RecvOverheadPs(uint32_t polled_peers) const {
    const PlatformDesc& p = topo_.platform();
    const uint64_t poll = polled_peers > 0
                              ? p.msg_poll_cycles_per_peer * static_cast<uint64_t>(polled_peers - 1)
                              : 0;
    return p.CoreCyclesToPs(p.msg_recv_cycles + poll);
  }

  // Uncontended end-to-end one-way latency (excludes queueing at a busy
  // receiver, which the runtime models by serializing service).
  SimTime OneWayPs(uint32_t src, uint32_t dst, uint32_t polled_peers) const {
    return SendOverheadPs() + WirePs(src, dst) + RecvOverheadPs(polled_peers);
  }

  // Uncontended shared-memory access time from `core` for one word at
  // `addr` (memory-controller queueing is added by the shmem module).
  SimTime MemAccessPs(uint32_t core, uint64_t addr, uint64_t shmem_bytes) const {
    const PlatformDesc& p = topo_.platform();
    const uint32_t mc = topo_.MemControllerOf(addr, shmem_bytes);
    const uint32_t hops = topo_.HopsToMemController(core, mc);
    SimTime wire;
    if (p.kind == PlatformKind::kOpteron) {
      wire = p.CoreCyclesToPs(static_cast<uint64_t>(hops) * p.socket_hop_extra_cycles);
    } else {
      // Request and reply both cross the mesh.
      wire = CyclesToSim(2ull * hops * p.mesh_cycles_per_hop, p.MeshPeriodPs());
    }
    return p.CoreCyclesToPs(p.mem_latency_cycles) + wire;
  }

  const Topology& topology() const { return topo_; }

 private:
  Topology topo_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_NOC_LATENCY_H_

#include "src/noc/platform.h"

#include "src/common/check.h"

namespace tm2c {
namespace {

struct SccSetting {
  uint64_t tile_mhz;
  uint64_t mesh_mhz;
  uint64_t dram_mhz;
};

// Section 5.1 settings table.
constexpr SccSetting kSccSettings[] = {
    {533, 800, 800}, {800, 1600, 1066}, {800, 1600, 800}, {800, 800, 1066}, {800, 800, 800},
};

}  // namespace

PlatformDesc MakeSccPlatform(int setting) {
  TM2C_CHECK_MSG(setting >= 0 && setting < 5, "SCC setting must be in [0,4]");
  const SccSetting& s = kSccSettings[setting];
  PlatformDesc p;
  p.name = setting == 0 ? "scc" : (setting == 1 ? "scc800" : "scc-setting-" + std::to_string(setting));
  p.kind = PlatformKind::kScc;
  p.mesh_cols = 6;
  p.mesh_rows = 4;
  p.cores_per_tile = 2;
  p.max_cores = 48;
  p.core_mhz = s.tile_mhz;
  p.mesh_mhz = s.mesh_mhz;
  p.dram_mhz = s.dram_mhz;
  // Messaging calibration targets the paper's Figure 8(a): about a 5.1 us
  // round trip between 2 cores at setting 0, growing to about 12.4 us with
  // 48 cores, the growth being dominated by per-peer software flag polling.
  p.msg_send_cycles = 500;
  p.msg_recv_cycles = 860;
  p.msg_poll_cycles_per_peer = 85;
  // Copying one extra payload word into/out of the MPB is a handful of
  // uncached accesses — two orders of magnitude below the fixed cost a
  // whole extra message would pay.
  p.msg_payload_cycles_per_word = 8;
  p.mesh_cycles_per_hop = 4;
  p.num_mem_controllers = 4;
  p.mem_latency_cycles = 160;
  // DRAM service time and bandwidth scale with the memory clock relative to
  // setting 0.
  p.mc_service_ns = 12 * 800 / s.dram_mhz;
  p.mc_stream_bytes_per_us = 6400 * s.dram_mhz / 800;
  p.l1_data_kb = 16;
  p.l1_app_fraction = 0.75;
  p.cache_miss_penalty = 1.8;
  return p;
}

PlatformDesc MakeOpteronPlatform() {
  PlatformDesc p;
  p.name = "opteron";
  p.kind = PlatformKind::kOpteron;
  p.num_sockets = 4;
  p.cores_per_socket = 12;
  p.max_cores = 48;
  p.core_mhz = 2100;
  p.mesh_mhz = 2100;  // unused for kOpteron routing; kept for reporting
  p.dram_mhz = 1333;
  // Cache-line-channel messaging: each message costs coherence round trips.
  // In core cycles the fixed cost is much larger than the SCC's MPB path,
  // but the 2.1 GHz clock makes the absolute base latency similar; polling
  // many channels still scales with peer count (the library polls one cache
  // line per peer). Calibrated so that at 48 cores the Opteron round trip
  // sits between scc800 and scc (Figure 8(a)).
  p.msg_send_cycles = 2200;
  p.msg_recv_cycles = 2600;
  p.msg_poll_cycles_per_peer = 220;
  // Extra payload words stream through already-owned cache lines; cheap
  // relative to the coherence round trips of the fixed path.
  p.msg_payload_cycles_per_word = 8;
  p.mesh_cycles_per_hop = 0;
  p.socket_hop_extra_cycles = 350;
  p.num_mem_controllers = 4;
  // Coherent caches hide most shared-memory latency for read-mostly
  // hotspots; model an effective latency well below the SCC's.
  p.mem_latency_cycles = 40;  // at 2.1 GHz this is ~19 ns effective
  p.mc_service_ns = 6;
  p.mc_stream_bytes_per_us = 12800;
  p.l1_data_kb = 128;
  p.l1_app_fraction = 0.9;
  p.cache_miss_penalty = 1.3;
  return p;
}

PlatformDesc PlatformByName(const std::string& name) {
  if (name == "scc") {
    return MakeSccPlatform(0);
  }
  if (name == "scc800") {
    return MakeSccPlatform(1);
  }
  if (name == "opteron") {
    return MakeOpteronPlatform();
  }
  constexpr const char* kPrefix = "scc-setting-";
  if (name.rfind(kPrefix, 0) == 0) {
    const int setting = std::stoi(name.substr(std::string(kPrefix).size()));
    return MakeSccPlatform(setting);
  }
  TM2C_FATAL("unknown platform name");
}

}  // namespace tm2c

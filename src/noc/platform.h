// Platform descriptors: calibrated timing models of the machines the paper
// evaluates on.
//
// The Intel SCC is a 6x4 mesh of tiles, two P54C cores per tile, per-tile
// message-passing buffers, four DDR3 memory controllers and no hardware
// cache coherence. The paper's Section 5.1 lists five frequency settings
// (tile/mesh/DRAM MHz); all SCC figures use setting 0 (533/800/800) except
// the Section 7 port study which also uses "SCC800" (setting 1:
// 800/1600/1066). The multi-core comparison machine is a 48-core 2.1 GHz
// AMD Opteron with a Barrelfish-style cache-line message-passing library.
//
// We model each platform by a handful of parameters that drive the
// discrete-event simulator: core/mesh/DRAM clocks, per-message fixed costs,
// a per-polled-peer receive cost (the paper attributes the SCC's latency
// growth with core count to software flag polling), mesh hop latency, and
// memory-controller service occupancy.
#ifndef TM2C_SRC_NOC_PLATFORM_H_
#define TM2C_SRC_NOC_PLATFORM_H_

#include <cstdint>
#include <string>

#include "src/sim/time.h"

namespace tm2c {

enum class PlatformKind {
  kScc,      // mesh NoC, MPB message passing, non-coherent
  kOpteron,  // cache-coherent multi-core, cache-line channels
};

struct PlatformDesc {
  std::string name;
  PlatformKind kind = PlatformKind::kScc;

  // Topology. For kScc: mesh_cols x mesh_rows tiles, cores_per_tile each.
  // For kOpteron: cores_per_socket cores per socket, num_sockets sockets.
  uint32_t mesh_cols = 6;
  uint32_t mesh_rows = 4;
  uint32_t cores_per_tile = 2;
  uint32_t num_sockets = 4;
  uint32_t cores_per_socket = 12;
  uint32_t max_cores = 48;

  // Clocks (MHz).
  uint64_t core_mhz = 533;
  uint64_t mesh_mhz = 800;
  uint64_t dram_mhz = 800;

  // Messaging costs, in core cycles unless noted.
  uint64_t msg_send_cycles = 450;          // marshalling + MPB write
  uint64_t msg_recv_cycles = 700;          // MPB read + dispatch
  uint64_t msg_poll_cycles_per_peer = 85;  // flag scan per polled peer
  // Marshalling cost per variable-payload word, paid on both the send and
  // the receive side. This is the marginal cost of growing a message (the
  // batched multi-address protocol); the fixed msg_send/msg_recv costs are
  // what batching amortizes.
  uint64_t msg_payload_cycles_per_word = 8;
  uint64_t mesh_cycles_per_hop = 4;        // mesh clock cycles per hop
  uint64_t socket_hop_extra_cycles = 350;  // kOpteron: cross-socket penalty

  // Memory model.
  uint32_t num_mem_controllers = 4;
  uint64_t mem_latency_cycles = 160;  // uncontended shared access, core cycles
  uint64_t mc_service_ns = 12;       // controller occupancy per request
  // Streaming bandwidth per controller, in bytes per microsecond (DDR3-800
  // is roughly 6.4 GB/s = 6400 B/us).
  uint64_t mc_stream_bytes_per_us = 6400;
  uint64_t l1_data_kb = 16;          // per-core data cache
  // Effective fraction of L1 available to the application (the OS takes the
  // rest; the paper uses this to explain the 8KB MapReduce sweet spot).
  double l1_app_fraction = 0.75;
  double cache_miss_penalty = 1.8;   // compute multiplier past the cache

  // Derived helpers.
  SimTime CorePeriodPs() const { return PeriodPsFromMhz(core_mhz); }
  SimTime MeshPeriodPs() const { return PeriodPsFromMhz(mesh_mhz); }
  SimTime CoreCyclesToPs(uint64_t cycles) const { return cycles * CorePeriodPs(); }
};

// SCC frequency settings from Section 5.1 (tile/mesh/DRAM MHz):
//   0: 533/800/800 (default, used by all Section 5 experiments)
//   1: 800/1600/1066 ("SCC800", the fastest setting, used in Section 7)
//   2: 800/1600/800    3: 800/800/1066    4: 800/800/800
PlatformDesc MakeSccPlatform(int setting = 0);

// The Section 7 comparison machine: 4 x 12-core 2.1 GHz AMD Opteron with a
// cache-line-channel message-passing library and coherent caches.
PlatformDesc MakeOpteronPlatform();

// Looks up a platform by name: "scc", "scc800", "scc-setting-N", "opteron".
// Checked error on unknown names.
PlatformDesc PlatformByName(const std::string& name);

}  // namespace tm2c

#endif  // TM2C_SRC_NOC_PLATFORM_H_

// Core placement and routing distance.
//
// SCC: cores are packed two per tile onto a mesh_cols x mesh_rows mesh;
// messages follow dimension-ordered (XY) routing, so the hop count between
// tiles is the Manhattan distance. Opteron: distance is 0 within a socket
// and 1 "socket hop" across sockets.
#ifndef TM2C_SRC_NOC_TOPOLOGY_H_
#define TM2C_SRC_NOC_TOPOLOGY_H_

#include <cstdint>

#include "src/common/check.h"
#include "src/noc/platform.h"

namespace tm2c {

struct TileCoord {
  uint32_t x = 0;
  uint32_t y = 0;
};

class Topology {
 public:
  explicit Topology(const PlatformDesc& platform) : platform_(platform) {}

  uint32_t max_cores() const { return platform_.max_cores; }

  // Mesh coordinates of the tile hosting `core` (kScc only).
  TileCoord TileOf(uint32_t core) const {
    TM2C_DCHECK(core < platform_.max_cores);
    const uint32_t tile = core / platform_.cores_per_tile;
    return TileCoord{tile % platform_.mesh_cols, tile / platform_.mesh_cols};
  }

  // Routing distance between two cores, in mesh hops (kScc: XY Manhattan
  // distance; kOpteron: 0 same-socket, 1 cross-socket).
  uint32_t Hops(uint32_t src, uint32_t dst) const {
    if (platform_.kind == PlatformKind::kOpteron) {
      return src / platform_.cores_per_socket == dst / platform_.cores_per_socket ? 0 : 1;
    }
    const TileCoord a = TileOf(src);
    const TileCoord b = TileOf(dst);
    const uint32_t dx = a.x > b.x ? a.x - b.x : b.x - a.x;
    const uint32_t dy = a.y > b.y ? a.y - b.y : b.y - a.y;
    return dx + dy;
  }

  // Which memory controller serves physical address `addr`. The SCC's four
  // controllers sit at the mesh corners; we stripe the address space across
  // them in large contiguous regions, matching the paper's observation that
  // an initial structure can land entirely in one controller's region.
  uint32_t MemControllerOf(uint64_t addr, uint64_t shmem_bytes) const {
    const uint32_t n = platform_.num_mem_controllers;
    if (n <= 1 || shmem_bytes == 0) {
      return 0;
    }
    const uint64_t region = (shmem_bytes + n - 1) / n;
    uint32_t mc = static_cast<uint32_t>(addr / region);
    return mc < n ? mc : n - 1;
  }

  // Hop distance from a core to a memory controller (kScc: controllers sit
  // at the four mesh corners).
  uint32_t HopsToMemController(uint32_t core, uint32_t mc) const {
    if (platform_.kind == PlatformKind::kOpteron) {
      return core / platform_.cores_per_socket == mc % platform_.num_sockets ? 0 : 1;
    }
    const TileCoord a = TileOf(core);
    const uint32_t corner_x = (mc % 2 == 0) ? 0 : platform_.mesh_cols - 1;
    const uint32_t corner_y = (mc / 2 == 0) ? 0 : platform_.mesh_rows - 1;
    const uint32_t dx = a.x > corner_x ? a.x - corner_x : corner_x - a.x;
    const uint32_t dy = a.y > corner_y ? a.y - corner_y : corner_y - a.y;
    return dx + dy;
  }

  const PlatformDesc& platform() const { return platform_; }

 private:
  PlatformDesc platform_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_NOC_TOPOLOGY_H_

// Simulated time base.
//
// Global simulated time is measured in integer picoseconds so that cores
// with different clock frequencies (SCC tiles at 533 or 800 MHz, the mesh,
// DDR3 controllers, an "Opteron" at 2.1 GHz) can all be expressed without
// floating-point drift. 2^64 ps is about 213 days of simulated time.
#ifndef TM2C_SRC_SIM_TIME_H_
#define TM2C_SRC_SIM_TIME_H_

#include <cstdint>

namespace tm2c {

using SimTime = uint64_t;  // picoseconds

constexpr SimTime kPicosPerNano = 1000;
constexpr SimTime kPicosPerMicro = 1000 * 1000;
constexpr SimTime kPicosPerMilli = 1000ull * 1000 * 1000;
constexpr SimTime kPicosPerSecond = 1000ull * 1000 * 1000 * 1000;

constexpr SimTime NanosToSim(uint64_t ns) { return ns * kPicosPerNano; }
constexpr SimTime MicrosToSim(uint64_t us) { return us * kPicosPerMicro; }
constexpr SimTime MillisToSim(uint64_t ms) { return ms * kPicosPerMilli; }

constexpr double SimToNanos(SimTime t) { return static_cast<double>(t) / kPicosPerNano; }
constexpr double SimToMicros(SimTime t) { return static_cast<double>(t) / kPicosPerMicro; }
constexpr double SimToMillis(SimTime t) { return static_cast<double>(t) / kPicosPerMilli; }
constexpr double SimToSeconds(SimTime t) { return static_cast<double>(t) / kPicosPerSecond; }

// Period of a clock in picoseconds, from a frequency in MHz.
constexpr SimTime PeriodPsFromMhz(uint64_t mhz) { return kPicosPerSecond / (mhz * 1000 * 1000); }

// Duration of `cycles` ticks of a clock with the given period.
constexpr SimTime CyclesToSim(uint64_t cycles, SimTime period_ps) { return cycles * period_ps; }

}  // namespace tm2c

#endif  // TM2C_SRC_SIM_TIME_H_

// Cooperative fibers (stackful coroutines) built on POSIX ucontext.
//
// Each simulated core runs its program on a fiber so that protocol and
// benchmark code can be written in plain blocking style (txread() blocks on
// a reply) while the single-threaded discrete-event engine interleaves
// cores at simulated-time granularity.
#ifndef TM2C_SRC_SIM_FIBER_H_
#define TM2C_SRC_SIM_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace tm2c {

class Fiber {
 public:
  using Fn = std::function<void()>;

  // Creates a suspended fiber that will execute `fn` when first resumed.
  // `stack_size` is rounded up to page granularity.
  explicit Fiber(Fn fn, size_t stack_size = kDefaultStackSize);

  // Destroying a live suspended fiber first unwinds it (see Unwind) so the
  // objects on its stack are destructed; the engine relies on this when a
  // run ends with cores still blocked mid-protocol.
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Transfers control from the calling (scheduler) context into the fiber.
  // Returns when the fiber calls Yield() or its function returns. Must not
  // be called from inside any fiber.
  void Resume();

  // Transfers control from inside this fiber back to the context that
  // resumed it. Must be called from inside the fiber.
  void Yield();

  // True once fn has returned; a finished fiber must not be resumed.
  bool finished() const { return finished_; }

  // True while Unwind() is tearing this fiber down. Runtime code uses this
  // to detect application code that swallowed the Unwound exception with a
  // catch(...) and kept executing during teardown.
  bool unwinding() const { return unwinding_; }

  // Thrown through a suspended fiber's stack by Unwind(); must not be
  // swallowed by application code (catch TxAbortException and friends by
  // concrete type, never `...`).
  struct Unwound {};

  // Unwinds a suspended fiber: resumes it one last time with the unwind
  // flag set so the pending Yield() throws Unwound, running every
  // destructor on the fiber's stack on the way out. No-op for fibers that
  // never ran or already finished. Must be called from the scheduler
  // context; the destructor calls it automatically.
  void Unwind();

  // The fiber currently executing on this thread, or nullptr when running
  // in the scheduler context.
  static Fiber* Current();

  static constexpr size_t kDefaultStackSize = 256 * 1024;

 private:
  static void Trampoline(unsigned int hi, unsigned int lo);

  Fn fn_;
  std::unique_ptr<char[]> stack_;
  size_t stack_size_ = 0;
  ucontext_t context_;
  ucontext_t return_context_;
  bool started_ = false;
  bool began_ = false;  // first Resume happened: fn_ is on the stack
  bool finished_ = false;
  bool unwinding_ = false;

  // AddressSanitizer fiber-switch bookkeeping (see fiber.cc); unused in
  // non-sanitized builds. Each context saves its fake-stack handle when it
  // leaves and the stack bounds of the peer it switches to.
  void* sched_fake_stack_ = nullptr;
  void* fiber_fake_stack_ = nullptr;
  const void* sched_stack_bottom_ = nullptr;
  size_t sched_stack_size_ = 0;
};

}  // namespace tm2c

#endif  // TM2C_SRC_SIM_FIBER_H_

// Cooperative fibers (stackful coroutines) built on POSIX ucontext.
//
// Each simulated core runs its program on a fiber so that protocol and
// benchmark code can be written in plain blocking style (txread() blocks on
// a reply) while the single-threaded discrete-event engine interleaves
// cores at simulated-time granularity.
#ifndef TM2C_SRC_SIM_FIBER_H_
#define TM2C_SRC_SIM_FIBER_H_

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace tm2c {

class Fiber {
 public:
  using Fn = std::function<void()>;

  // Creates a suspended fiber that will execute `fn` when first resumed.
  // `stack_size` is rounded up to page granularity.
  explicit Fiber(Fn fn, size_t stack_size = kDefaultStackSize);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Transfers control from the calling (scheduler) context into the fiber.
  // Returns when the fiber calls Yield() or its function returns. Must not
  // be called from inside any fiber.
  void Resume();

  // Transfers control from inside this fiber back to the context that
  // resumed it. Must be called from inside the fiber.
  void Yield();

  // True once fn has returned; a finished fiber must not be resumed.
  bool finished() const { return finished_; }

  // The fiber currently executing on this thread, or nullptr when running
  // in the scheduler context.
  static Fiber* Current();

  static constexpr size_t kDefaultStackSize = 256 * 1024;

 private:
  static void Trampoline(unsigned int hi, unsigned int lo);

  Fn fn_;
  std::unique_ptr<char[]> stack_;
  ucontext_t context_;
  ucontext_t return_context_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace tm2c

#endif  // TM2C_SRC_SIM_FIBER_H_

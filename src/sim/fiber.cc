#include "src/sim/fiber.h"

#include <cstdint>

#include "src/common/check.h"

// AddressSanitizer keeps per-stack shadow state; every context switch must
// be bracketed with __sanitizer_start_switch_fiber (in the leaving context)
// and __sanitizer_finish_switch_fiber (first thing in the arriving one), or
// ASan misattributes frames and reports false stack-buffer errors after
// swapcontext.
#if defined(__SANITIZE_ADDRESS__)
#define TM2C_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TM2C_ASAN_FIBERS 1
#endif
#endif
#ifdef TM2C_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

namespace tm2c {
namespace {

// Fibers never migrate across OS threads in this design (the simulator is
// single-threaded), so a plain thread_local tracks the running fiber.
thread_local Fiber* g_current_fiber = nullptr;

}  // namespace

Fiber* Fiber::Current() { return g_current_fiber; }

Fiber::Fiber(Fn fn, size_t stack_size)
    : fn_(std::move(fn)), stack_(new char[stack_size]), stack_size_(stack_size) {
  TM2C_CHECK(fn_ != nullptr);
  TM2C_CHECK(getcontext(&context_) == 0);
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_size;
  context_.uc_link = nullptr;  // Trampoline switches back explicitly.
  // makecontext only passes ints; split the pointer into two 32-bit halves.
  const auto self = reinterpret_cast<uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 2,
              static_cast<unsigned int>(self >> 32),
              static_cast<unsigned int>(self & 0xffffffffu));
  started_ = true;
}

Fiber::~Fiber() { Unwind(); }

void Fiber::Unwind() {
  if (!began_ || finished_) {
    return;  // nothing of fn_ is on the stack
  }
  TM2C_CHECK_MSG(g_current_fiber == nullptr, "Unwind() called from inside a fiber");
  unwinding_ = true;
  Resume();
  TM2C_CHECK_MSG(finished_, "fiber swallowed the unwind exception");
}

void Fiber::Trampoline(unsigned int hi, unsigned int lo) {
  const uintptr_t ptr = (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
  Fiber* self = reinterpret_cast<Fiber*>(ptr);
#ifdef TM2C_ASAN_FIBERS
  // First entry into this fiber: no fake stack to restore yet; learn the
  // scheduler's stack bounds for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &self->sched_stack_bottom_,
                                  &self->sched_stack_size_);
#endif
  try {
    self->fn_();
  } catch (const Unwound&) {
    // Unwind(): the stack below fn_ has been cleanly destructed.
  }
  self->finished_ = true;
  g_current_fiber = nullptr;
#ifdef TM2C_ASAN_FIBERS
  // Terminal switch: a null save slot tells ASan this fiber's fake stack
  // can be destroyed.
  __sanitizer_start_switch_fiber(nullptr, self->sched_stack_bottom_, self->sched_stack_size_);
#endif
  swapcontext(&self->context_, &self->return_context_);
  // Unreachable: a finished fiber is never resumed.
  TM2C_FATAL("resumed a finished fiber");
}

void Fiber::Resume() {
  TM2C_CHECK_MSG(g_current_fiber == nullptr, "Resume() called from inside a fiber");
  TM2C_CHECK_MSG(!finished_, "Resume() on finished fiber");
  began_ = true;
  g_current_fiber = this;
#ifdef TM2C_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&sched_fake_stack_, stack_.get(), stack_size_);
#endif
  TM2C_CHECK(swapcontext(&return_context_, &context_) == 0);
#ifdef TM2C_ASAN_FIBERS
  // Back in the scheduler, via Yield() or the fiber finishing.
  __sanitizer_finish_switch_fiber(sched_fake_stack_, nullptr, nullptr);
#endif
  g_current_fiber = nullptr;
}

void Fiber::Yield() {
  TM2C_CHECK_MSG(g_current_fiber == this, "Yield() called from outside the fiber");
  g_current_fiber = nullptr;
#ifdef TM2C_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&fiber_fake_stack_, sched_stack_bottom_, sched_stack_size_);
#endif
  TM2C_CHECK(swapcontext(&context_, &return_context_) == 0);
#ifdef TM2C_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fiber_fake_stack_, &sched_stack_bottom_, &sched_stack_size_);
#endif
  g_current_fiber = this;
  if (unwinding_) {
    throw Unwound{};
  }
}

}  // namespace tm2c

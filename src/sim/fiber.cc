#include "src/sim/fiber.h"

#include <cstdint>

#include "src/common/check.h"

namespace tm2c {
namespace {

// Fibers never migrate across OS threads in this design (the simulator is
// single-threaded), so a plain thread_local tracks the running fiber.
thread_local Fiber* g_current_fiber = nullptr;

}  // namespace

Fiber* Fiber::Current() { return g_current_fiber; }

Fiber::Fiber(Fn fn, size_t stack_size) : fn_(std::move(fn)), stack_(new char[stack_size]) {
  TM2C_CHECK(fn_ != nullptr);
  TM2C_CHECK(getcontext(&context_) == 0);
  context_.uc_stack.ss_sp = stack_.get();
  context_.uc_stack.ss_size = stack_size;
  context_.uc_link = nullptr;  // Trampoline switches back explicitly.
  // makecontext only passes ints; split the pointer into two 32-bit halves.
  const auto self = reinterpret_cast<uintptr_t>(this);
  makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::Trampoline), 2,
              static_cast<unsigned int>(self >> 32),
              static_cast<unsigned int>(self & 0xffffffffu));
  started_ = true;
}

Fiber::~Fiber() {
  // Destroying a live suspended fiber leaks whatever is on its stack; the
  // engine only tears fibers down after the run ends, where this is the
  // intended way to stop a blocked core.
}

void Fiber::Trampoline(unsigned int hi, unsigned int lo) {
  const uintptr_t ptr = (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
  Fiber* self = reinterpret_cast<Fiber*>(ptr);
  self->fn_();
  self->finished_ = true;
  g_current_fiber = nullptr;
  swapcontext(&self->context_, &self->return_context_);
  // Unreachable: a finished fiber is never resumed.
  TM2C_FATAL("resumed a finished fiber");
}

void Fiber::Resume() {
  TM2C_CHECK_MSG(g_current_fiber == nullptr, "Resume() called from inside a fiber");
  TM2C_CHECK_MSG(!finished_, "Resume() on finished fiber");
  g_current_fiber = this;
  TM2C_CHECK(swapcontext(&return_context_, &context_) == 0);
  g_current_fiber = nullptr;
}

void Fiber::Yield() {
  TM2C_CHECK_MSG(g_current_fiber == this, "Yield() called from outside the fiber");
  g_current_fiber = nullptr;
  TM2C_CHECK(swapcontext(&context_, &return_context_) == 0);
  g_current_fiber = this;
}

}  // namespace tm2c

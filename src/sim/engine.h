// Discrete-event simulation engine.
//
// The engine owns an ordered queue of (time, callback) events and a set of
// actor fibers. The scheduler context pops events in time order; events
// typically resume a blocked fiber, which runs until it blocks again (on a
// simulated delay, a mailbox, or a resource queue) and yields back. Events
// scheduled at the same instant run in FIFO order of scheduling, which keeps
// executions deterministic.
#ifndef TM2C_SRC_SIM_ENGINE_H_
#define TM2C_SRC_SIM_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/fiber.h"
#include "src/sim/time.h"

namespace tm2c {

class SimEngine {
 public:
  SimEngine() = default;

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  // -- Construction phase -----------------------------------------------

  // Registers an actor; its fiber starts running at time 0 when Run() is
  // called. Returns the actor index.
  size_t AddActor(std::function<void()> body, size_t stack_size = Fiber::kDefaultStackSize);

  // -- Scheduler-side API -----------------------------------------------

  // Runs until the event queue drains, all actors finish, or simulated time
  // would pass `until` (events after `until` are left unexecuted). Returns
  // the final simulated time.
  SimTime Run(SimTime until = UINT64_MAX);

  // Schedules `cb` at absolute simulated time `t` (>= now).
  void ScheduleAt(SimTime t, std::function<void()> cb);
  void ScheduleAfter(SimTime delay, std::function<void()> cb) { ScheduleAt(now_ + delay, cb); }

  // -- Fiber-side API (must be called from inside an actor fiber) --------

  // Blocks the calling actor for `delay` of simulated time.
  void Sleep(SimTime delay);

  // Blocks the calling actor until another party calls WakeActor on it.
  // Returns the simulated time at wake.
  SimTime BlockCurrent();

  // Wakes actor `idx` (blocked in BlockCurrent) at time now + delay.
  // Waking an actor that is not blocked is a checked error.
  void WakeActor(size_t idx, SimTime delay = 0);

  // True if the actor is currently parked in BlockCurrent and no wake for it
  // is already in flight.
  bool ActorBlocked(size_t idx) const;

  // Index of the actor currently executing; checked error outside fibers.
  size_t CurrentActor() const;

  SimTime now() const { return now_; }
  size_t num_actors() const { return actors_.size(); }
  uint64_t events_executed() const { return events_executed_; }

  // Stops the run loop after the current event completes (callable from
  // fibers or callbacks). Used by workloads that hit their operation target
  // before the time horizon.
  void RequestStop() { stop_requested_ = true; }

 private:
  struct Actor {
    std::unique_ptr<Fiber> fiber;
    bool blocked = false;        // parked in BlockCurrent
    bool wake_pending = false;   // a wake event is in flight
    size_t index = 0;
  };

  struct Event {
    SimTime time;
    uint64_t seq;  // FIFO tie-break for equal timestamps
    std::function<void()> cb;
  };

  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  void ResumeActor(Actor* actor);

  std::vector<std::unique_ptr<Actor>> actors_;
  std::priority_queue<Event, std::vector<Event>, EventCompare> events_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  Actor* running_ = nullptr;
  bool started_ = false;
  bool stop_requested_ = false;
};

}  // namespace tm2c

#endif  // TM2C_SRC_SIM_ENGINE_H_

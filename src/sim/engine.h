// Discrete-event simulation engine.
//
// The engine owns an ordered queue of (time, callback) events and a set of
// actor fibers. The scheduler context pops events in time order; events
// typically resume a blocked fiber, which runs until it blocks again (on a
// simulated delay, a mailbox, or a resource queue) and yields back. Events
// scheduled at the same instant run in FIFO order of scheduling — an
// explicit per-event sequence number is the tie-break, never the container's
// insertion behaviour — which keeps executions deterministic.
//
// Chaos mode (SetChaos) replaces the FIFO tie-break with a seeded random
// draw so that one workload explores many same-instant interleavings, one
// per seed, each still fully deterministic and replayable.
#ifndef TM2C_SRC_SIM_ENGINE_H_
#define TM2C_SRC_SIM_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/fiber.h"
#include "src/sim/time.h"

namespace tm2c {

// Seeded schedule-perturbation knobs. The engine consumes shuffle_ties;
// the runtime backend (SimSystem) consumes the message/poll knobs. All
// perturbations preserve the platform's guarantees — in particular FIFO
// delivery between any pair of cores — so a correct protocol must stay
// correct under every seed; only the schedule changes.
struct ChaosConfig {
  uint64_t seed = 0;
  // Randomize the execution order of same-instant events (default: FIFO in
  // scheduling order).
  bool shuffle_ties = false;
  // Extra per-message wire delay, uniform in [0, msg_jitter_max_ps].
  SimTime msg_jitter_max_ps = 0;
  // With poll_stall_pct% probability an inbox pickup stalls for a uniform
  // [0, poll_stall_max_ps] delay before the message is consumed (a service
  // core busy elsewhere, an unlucky poll rotation).
  uint32_t poll_stall_pct = 0;
  SimTime poll_stall_max_ps = 0;
  // With poll_duplicate_pct% probability a pickup pays the poll-scan cost
  // twice (a wasted scan over the peers before the one that hits).
  uint32_t poll_duplicate_pct = 0;

  bool any() const {
    return shuffle_ties || msg_jitter_max_ps > 0 || poll_stall_pct > 0 ||
           poll_duplicate_pct > 0;
  }
};

class SimEngine {
 public:
  SimEngine() = default;

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  // -- Construction phase -----------------------------------------------

  // Registers an actor; its fiber starts running at time 0 when Run() is
  // called. Returns the actor index.
  size_t AddActor(std::function<void()> body, size_t stack_size = Fiber::kDefaultStackSize);

  // Installs the chaos configuration (only shuffle_ties is consumed here).
  // Must be called before the first Run(); the tie-break draw stream is
  // seeded once, so the whole run replays bit-for-bit per seed.
  void SetChaos(const ChaosConfig& chaos);

  // -- Scheduler-side API -----------------------------------------------

  // Runs until the event queue drains, all actors finish, or simulated time
  // would pass `until` (events after `until` are left unexecuted). Returns
  // the final simulated time.
  SimTime Run(SimTime until = UINT64_MAX);

  // Schedules `cb` at absolute simulated time `t` (>= now).
  void ScheduleAt(SimTime t, std::function<void()> cb);
  void ScheduleAfter(SimTime delay, std::function<void()> cb) { ScheduleAt(now_ + delay, cb); }

  // -- Fiber-side API (must be called from inside an actor fiber) --------

  // Blocks the calling actor for `delay` of simulated time.
  void Sleep(SimTime delay);

  // Blocks the calling actor until another party calls WakeActor on it.
  // Returns the simulated time at wake.
  SimTime BlockCurrent();

  // Wakes actor `idx` (blocked in BlockCurrent) at time now + delay.
  // Waking an actor that is not blocked is a checked error.
  void WakeActor(size_t idx, SimTime delay = 0);

  // True if the actor is currently parked in BlockCurrent and no wake for it
  // is already in flight.
  bool ActorBlocked(size_t idx) const;

  // Index of the actor currently executing; checked error outside fibers.
  size_t CurrentActor() const;

  SimTime now() const { return now_; }
  size_t num_actors() const { return actors_.size(); }
  uint64_t events_executed() const { return events_executed_; }

  // Stops the run loop after the current event completes (callable from
  // fibers or callbacks). Used by workloads that hit their operation target
  // before the time horizon.
  void RequestStop() { stop_requested_ = true; }

 private:
  struct Actor {
    std::unique_ptr<Fiber> fiber;
    bool blocked = false;        // parked in BlockCurrent
    bool wake_pending = false;   // a wake event is in flight
    size_t index = 0;
  };

  struct Event {
    SimTime time;
    uint64_t tie;  // chaos shuffle draw; 0 outside chaos mode
    uint64_t seq;  // explicit monotone tie-break: FIFO among equal (time, tie)
    std::function<void()> cb;
  };

  struct EventCompare {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      if (a.tie != b.tie) {
        return a.tie > b.tie;
      }
      return a.seq > b.seq;
    }
  };

  void ResumeActor(Actor* actor);

  std::vector<std::unique_ptr<Actor>> actors_;
  std::priority_queue<Event, std::vector<Event>, EventCompare> events_;
  SimTime now_ = 0;
  bool shuffle_ties_ = false;
  Rng tie_rng_{0};
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  Actor* running_ = nullptr;
  bool started_ = false;
  bool stop_requested_ = false;
};

}  // namespace tm2c

#endif  // TM2C_SRC_SIM_ENGINE_H_

#include "src/sim/engine.h"

#include "src/common/check.h"

namespace tm2c {

size_t SimEngine::AddActor(std::function<void()> body, size_t stack_size) {
  TM2C_CHECK_MSG(!started_, "AddActor after Run()");
  auto actor = std::make_unique<Actor>();
  actor->index = actors_.size();
  actor->fiber = std::make_unique<Fiber>(std::move(body), stack_size);
  actors_.push_back(std::move(actor));
  return actors_.size() - 1;
}

void SimEngine::SetChaos(const ChaosConfig& chaos) {
  TM2C_CHECK_MSG(!started_, "SetChaos after Run()");
  shuffle_ties_ = chaos.shuffle_ties;
  tie_rng_.Seed(chaos.seed ^ 0xc4a05c75ull);
}

void SimEngine::ScheduleAt(SimTime t, std::function<void()> cb) {
  TM2C_CHECK_MSG(t >= now_, "scheduling into the past");
  const uint64_t tie = shuffle_ties_ ? tie_rng_.Next() : 0;
  events_.push(Event{t, tie, next_seq_++, std::move(cb)});
}

void SimEngine::ResumeActor(Actor* actor) {
  TM2C_CHECK(!actor->fiber->finished());
  Actor* prev = running_;
  running_ = actor;
  actor->fiber->Resume();
  running_ = prev;
}

SimTime SimEngine::Run(SimTime until) {
  if (!started_) {
    started_ = true;
    // Kick off every actor at time zero, in registration order.
    for (auto& actor : actors_) {
      Actor* a = actor.get();
      ScheduleAt(now_, [this, a]() {
        if (!a->fiber->finished()) {
          ResumeActor(a);
        }
      });
    }
  }
  stop_requested_ = false;
  while (!events_.empty() && !stop_requested_) {
    const Event& top = events_.top();
    if (top.time > until) {
      break;
    }
    // Moving out of the queue requires a const_cast because priority_queue
    // only exposes const top(); the element is popped immediately after.
    Event ev = std::move(const_cast<Event&>(top));
    events_.pop();
    now_ = ev.time;
    ++events_executed_;
    ev.cb();
  }
  return now_;
}

void SimEngine::Sleep(SimTime delay) {
  TM2C_CHECK_MSG(running_ != nullptr, "Sleep outside an actor fiber");
  Actor* self = running_;
  ScheduleAt(now_ + delay, [this, self]() { ResumeActor(self); });
  self->fiber->Yield();
}

SimTime SimEngine::BlockCurrent() {
  TM2C_CHECK_MSG(running_ != nullptr, "BlockCurrent outside an actor fiber");
  Actor* self = running_;
  TM2C_CHECK(!self->blocked);
  self->blocked = true;
  self->fiber->Yield();
  TM2C_CHECK(!self->blocked);
  return now_;
}

void SimEngine::WakeActor(size_t idx, SimTime delay) {
  TM2C_CHECK(idx < actors_.size());
  Actor* actor = actors_[idx].get();
  TM2C_CHECK_MSG(actor->blocked && !actor->wake_pending, "WakeActor on non-blocked actor");
  actor->wake_pending = true;
  ScheduleAt(now_ + delay, [this, actor]() {
    actor->wake_pending = false;
    actor->blocked = false;
    ResumeActor(actor);
  });
}

bool SimEngine::ActorBlocked(size_t idx) const {
  TM2C_CHECK(idx < actors_.size());
  const Actor* actor = actors_[idx].get();
  return actor->blocked && !actor->wake_pending;
}

size_t SimEngine::CurrentActor() const {
  TM2C_CHECK_MSG(running_ != nullptr, "CurrentActor outside an actor fiber");
  return running_->index;
}

}  // namespace tm2c

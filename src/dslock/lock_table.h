// DS-Lock: the distributed multiple-readers/single-writer revocable lock
// table (Section 3.2).
//
// Each DTM service core owns one LockTable covering its partition of the
// shared address space. The table implements Algorithms 1 and 2: read-lock
// and write-lock acquisition with RAW/WAW/WAR conflict detection, delegating
// winner selection to the contention manager. Revocation (the CM aborting a
// holder) is reported back to the caller as a list of victims so the service
// loop can send the abort notifications.
//
// Correctness note on releases: messages between one app core and one
// service core are FIFO, and an aborted transaction always releases its
// locks before starting its next attempt, so a release can never arrive
// after the same core's re-acquisition. Release of a lock that was already
// revoked is a silent no-op; releasing a write lock checks ownership so a
// stale release cannot clobber a lock that has since moved to another core.
#ifndef TM2C_SRC_DSLOCK_LOCK_TABLE_H_
#define TM2C_SRC_DSLOCK_LOCK_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cm/contention_manager.h"
#include "src/common/core_set.h"
#include "src/runtime/message.h"

namespace tm2c {

constexpr uint32_t kNoWriter = UINT32_MAX;

// A transaction whose lock was revoked in the requester's favour, plus the
// conflict kind it lost on (for the abort notification and statistics).
struct Victim {
  TxInfo info;
  ConflictKind kind = ConflictKind::kNone;
};

// Outcome of an acquire: either granted (possibly after revoking victims)
// or refused with the conflict kind the requester lost on.
struct AcquireResult {
  ConflictKind refused = ConflictKind::kNone;  // kNone == granted
  // Transactions whose locks were revoked in the requester's favour; the
  // caller must notify each victim core.
  std::vector<Victim> victims;
};

// Outcome of a batched acquire (TryAcquireMany). Grants are all-or-prefix:
// entries are attempted in order and the pass stops at the first refusal,
// so `granted_bitmap` is always PrefixBitmap(granted_count). Granted
// entries stay granted — the requester owns their release (or abort) path.
struct BatchAcquireResult {
  uint64_t granted_bitmap = 0;
  uint32_t granted_count = 0;                  // prefix length
  ConflictKind refused = ConflictKind::kNone;  // why the prefix stopped
  std::vector<Victim> victims;                 // across the whole prefix
};

// Outcome of a homogeneous span acquisition (TryAcquireSpan). Same
// all-or-prefix contract as BatchAcquireResult, but with no grant bitmap —
// the caller knows the span order — and therefore no kMaxBatchEntries cap.
struct SpanAcquireResult {
  uint32_t granted_count = 0;                  // prefix length
  ConflictKind refused = ConflictKind::kNone;  // why the prefix stopped
  std::vector<Victim> victims;                 // across the whole prefix
};

// Counters for the service-side statistics the benches report.
struct LockTableStats {
  uint64_t read_acquires = 0;
  uint64_t write_acquires = 0;
  uint64_t read_refused = 0;
  uint64_t write_refused = 0;
  uint64_t revocations = 0;
  uint64_t releases = 0;
};

class LockTable {
 public:
  LockTable() = default;

  // Algorithm 1: dsl_read_lock. `requester` carries the already-decoded
  // metric. On success the requester is added to the reader set.
  AcquireResult ReadLock(const TxInfo& requester, uint64_t addr, const ContentionManager& cm);

  // Algorithm 2: dsl_write_lock. Checks the writer (WAW) first, then the
  // reader set (WAR); the requester's own read lock does not conflict.
  //
  // `committing` records that the acquisition happened in the owner's
  // commit phase (introspection/debugging metadata). Revocation of
  // commit-phase locks is safe because revocations are also published to
  // the victim's shared-memory abort status word, which the victim checks
  // atomically with its persist (see TxRuntime::TxCommit).
  AcquireResult WriteLock(const TxInfo& requester, uint64_t addr, const ContentionManager& cm,
                          bool committing = false);

  // Vectorized acquisition for the kBatchAcquire protocol: one pass over
  // `addrs` (bit i of `write_bitmap` selects write vs read lock for entry
  // i), stopping at the first refusal (all-or-prefix). The requester's
  // metric has already been decoded once for the whole batch; the CM is
  // consulted only for the entries that actually conflict. Duplicate
  // addresses are legal (the second acquisition is a same-core
  // re-acquisition and always succeeds). `n` must be <= kMaxBatchEntries;
  // an empty batch is trivially fully granted.
  BatchAcquireResult TryAcquireMany(const TxInfo& requester, const uint64_t* addrs, uint32_t n,
                                    uint64_t write_bitmap, const ContentionManager& cm,
                                    bool committing = false);

  // Homogeneous prefix acquisition for the owner-local direct path: one
  // pass over `addrs`, all read locks or all write locks, stopping at the
  // first refusal. Unlike TryAcquireMany there is no grant bitmap on the
  // wire, so the span is not capped at kMaxBatchEntries — a local caller
  // takes a whole node group in one table pass.
  SpanAcquireResult TryAcquireSpan(const TxInfo& requester, const uint64_t* addrs, uint32_t n,
                                   bool is_write, const ContentionManager& cm,
                                   bool committing = false);

  // Releases. Idempotent; wrong-owner write releases are ignored (see the
  // correctness note above).
  void ReleaseRead(uint32_t core, uint64_t addr);
  void ReleaseWrite(uint32_t core, uint64_t addr);

  // Removes every lock `core` holds under `epoch` (or any epoch), used when
  // the service core learns the owner aborted. Linear in table size; only
  // used by tests and recovery paths, not the hot protocol.
  void ReleaseAllOf(uint32_t core);

  // Migration drain pass over [base, base + bytes): revokes every revocable
  // holder (readers, and writers not in their commit phase) and reports
  // them as victims for the caller's notification path. Commit-phase
  // writers are left in place — revoking a committer would waste its whole
  // persisted write set; the drain instead waits for its release. Returns
  // the victims; `remaining` (if non-null) receives the number of entries
  // still held in the range after the pass (0 == drained). Linear in table
  // size, like ReleaseAllOf: migration is a rare, cold operation.
  std::vector<Victim> DrainRange(uint64_t base, uint64_t bytes, uint64_t* remaining);

  // Entries currently held in [base, base + bytes) — the drain's progress
  // gauge: a migration completes when this reaches zero.
  uint64_t EntriesInRange(uint64_t base, uint64_t bytes) const;

  // Introspection for tests and invariant checks.
  bool HasWriter(uint64_t addr, uint32_t* writer = nullptr) const;
  bool HasReader(uint64_t addr, uint32_t core) const;
  size_t NumEntries() const { return entries_.size(); }
  const LockTableStats& stats() const { return stats_; }

  // Debug/introspection: invokes fn(addr, writer_core_or_kNoWriter,
  // writer_committing, readers) for every entry.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [addr, entry] : entries_) {
      fn(addr, entry.writer, entry.writer_committing, entry.readers);
    }
  }

  // Invariant check: no entry has both a writer and a non-owner reader, and
  // no entry is empty (empty entries must be erased). Returns true when
  // consistent.
  bool CheckInvariants() const;

 private:
  struct Entry {
    CoreSet readers;
    uint32_t writer = kNoWriter;
    uint64_t writer_epoch = 0;
    bool writer_committing = false;
    // Last-known metadata of each holder, for CM decisions. Readers' info
    // is keyed by core id; the writer's info is stored explicitly.
    std::unordered_map<uint32_t, TxInfo> holder_info;
  };

  void EraseIfEmpty(uint64_t addr, Entry& entry);

  std::unordered_map<uint64_t, Entry> entries_;
  LockTableStats stats_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_DSLOCK_LOCK_TABLE_H_

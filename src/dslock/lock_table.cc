#include "src/dslock/lock_table.h"

#include "src/common/check.h"

namespace tm2c {

AcquireResult LockTable::ReadLock(const TxInfo& requester, uint64_t addr,
                                  const ContentionManager& cm) {
  AcquireResult result;
  Entry& entry = entries_[addr];

  // Algorithm 1 line 2-7: a foreign writer is a read-after-write conflict.
  if (entry.writer != kNoWriter && entry.writer != requester.core) {
    const TxInfo writer_info = entry.holder_info[entry.writer];
    if (cm.Decide(requester, {writer_info}, ConflictKind::kReadAfterWrite) ==
        CmDecision::kAbortRequester) {
      ++stats_.read_refused;
      EraseIfEmpty(addr, entry);
      result.refused = ConflictKind::kReadAfterWrite;
      return result;
    }
    // CM aborted the enemy writer: revoke its lock and report the victim.
    // The victim's read bit goes with it — a committing writer holds the
    // stripe in upgrade mode (reader + writer), and leaving the reader bit
    // behind would create a ghost holder with no TxInfo whose
    // default-constructed metric (0) then beats every later write request:
    // on the thread backend two cores can revoke/refuse each other through
    // that ghost in a perfectly timed cycle forever (found by the native
    // backend, invisible to the deterministic simulator's schedules).
    result.victims.push_back(Victim{writer_info, ConflictKind::kReadAfterWrite});
    entry.readers.Erase(entry.writer);
    entry.holder_info.erase(entry.writer);
    entry.writer = kNoWriter;
    entry.writer_epoch = 0;
    entry.writer_committing = false;
    ++stats_.revocations;
  }

  // Algorithm 1 line 9: add_reader.
  entry.readers.Insert(requester.core);
  entry.holder_info[requester.core] = requester;
  ++stats_.read_acquires;
  return result;
}

AcquireResult LockTable::WriteLock(const TxInfo& requester, uint64_t addr,
                                   const ContentionManager& cm, bool committing) {
  AcquireResult result;
  Entry& entry = entries_[addr];

  // Algorithm 2 lines 2-7: a foreign writer is a write-after-write conflict.
  if (entry.writer != kNoWriter && entry.writer != requester.core) {
    const TxInfo writer_info = entry.holder_info[entry.writer];
    if (cm.Decide(requester, {writer_info}, ConflictKind::kWriteAfterWrite) ==
        CmDecision::kAbortRequester) {
      ++stats_.write_refused;
      EraseIfEmpty(addr, entry);
      result.refused = ConflictKind::kWriteAfterWrite;
      return result;
    }
    // As in ReadLock: revoke the loser's upgrade read bit together with its
    // write lock, or it lingers as a ghost reader with no TxInfo.
    result.victims.push_back(Victim{writer_info, ConflictKind::kWriteAfterWrite});
    entry.readers.Erase(entry.writer);
    entry.holder_info.erase(entry.writer);
    entry.writer = kNoWriter;
    entry.writer_epoch = 0;
    entry.writer_committing = false;
    ++stats_.revocations;
  }

  // Algorithm 2 lines 9-14: foreign readers are a write-after-read
  // conflict; the requester must beat the whole reader set.
  std::vector<TxInfo> enemies;
  entry.readers.ForEach([&](uint32_t reader) {
    if (reader == requester.core) {
      return;
    }
    // Every reader bit must have its TxInfo: a miss here would silently
    // default-construct a metric-0 enemy that wins every arbitration (the
    // ghost-reader livelock the revocation paths above now prevent). Hard
    // CHECK, not DCHECK: this conflict path is cold, and the Release-build
    // alternative is undefined behavior feeding garbage into the CM.
    auto it = entry.holder_info.find(reader);
    TM2C_CHECK_MSG(it != entry.holder_info.end(), "reader bit without holder TxInfo");
    enemies.push_back(it->second);
  });
  if (!enemies.empty()) {
    if (cm.Decide(requester, enemies, ConflictKind::kWriteAfterRead) ==
        CmDecision::kAbortRequester) {
      ++stats_.write_refused;
      EraseIfEmpty(addr, entry);
      result.refused = ConflictKind::kWriteAfterRead;
      return result;
    }
    for (const TxInfo& enemy : enemies) {
      entry.readers.Erase(enemy.core);
      entry.holder_info.erase(enemy.core);
      result.victims.push_back(Victim{enemy, ConflictKind::kWriteAfterRead});
      ++stats_.revocations;
    }
  }

  // Algorithm 2 line 16: take the write lock. The requester may keep its
  // own read lock (upgrade); other readers are gone. Re-acquisition by the
  // current owner upgrades the lock to commit phase.
  entry.writer = requester.core;
  entry.writer_epoch = requester.epoch;
  entry.writer_committing = entry.writer_committing || committing;
  entry.holder_info[requester.core] = requester;
  ++stats_.write_acquires;
  return result;
}

BatchAcquireResult LockTable::TryAcquireMany(const TxInfo& requester, const uint64_t* addrs,
                                             uint32_t n, uint64_t write_bitmap,
                                             const ContentionManager& cm, bool committing) {
  TM2C_CHECK_MSG(n <= kMaxBatchEntries, "batch larger than the grant bitmap");
  BatchAcquireResult result;
  for (uint32_t i = 0; i < n; ++i) {
    const bool is_write = (write_bitmap >> i) & 1;
    AcquireResult one = is_write ? WriteLock(requester, addrs[i], cm, committing)
                                 : ReadLock(requester, addrs[i], cm);
    for (Victim& victim : one.victims) {
      result.victims.push_back(std::move(victim));
    }
    if (one.refused != ConflictKind::kNone) {
      // All-or-prefix: stop here; entries [0, i) stay acquired and the
      // requester's release (or abort) path covers them.
      result.refused = one.refused;
      break;
    }
    result.granted_bitmap |= uint64_t{1} << i;
    ++result.granted_count;
  }
  return result;
}

SpanAcquireResult LockTable::TryAcquireSpan(const TxInfo& requester, const uint64_t* addrs,
                                            uint32_t n, bool is_write,
                                            const ContentionManager& cm, bool committing) {
  SpanAcquireResult result;
  for (uint32_t i = 0; i < n; ++i) {
    AcquireResult one = is_write ? WriteLock(requester, addrs[i], cm, committing)
                                 : ReadLock(requester, addrs[i], cm);
    for (Victim& victim : one.victims) {
      result.victims.push_back(std::move(victim));
    }
    if (one.refused != ConflictKind::kNone) {
      // All-or-prefix, exactly like TryAcquireMany: entries [0, i) stay
      // acquired and the requester's release (or abort) path covers them.
      result.refused = one.refused;
      break;
    }
    ++result.granted_count;
  }
  return result;
}

void LockTable::ReleaseRead(uint32_t core, uint64_t addr) {
  auto it = entries_.find(addr);
  if (it == entries_.end()) {
    return;  // already revoked
  }
  Entry& entry = it->second;
  if (!entry.readers.Contains(core)) {
    return;  // already revoked
  }
  entry.readers.Erase(core);
  if (entry.writer != core) {
    entry.holder_info.erase(core);
  }
  ++stats_.releases;
  EraseIfEmpty(addr, entry);
}

void LockTable::ReleaseWrite(uint32_t core, uint64_t addr) {
  auto it = entries_.find(addr);
  if (it == entries_.end()) {
    return;  // already revoked
  }
  Entry& entry = it->second;
  if (entry.writer != core) {
    return;  // revoked and re-acquired by someone else; stale release
  }
  entry.writer = kNoWriter;
  entry.writer_epoch = 0;
  entry.writer_committing = false;
  if (!entry.readers.Contains(core)) {
    entry.holder_info.erase(core);
  }
  ++stats_.releases;
  EraseIfEmpty(addr, entry);
}

void LockTable::ReleaseAllOf(uint32_t core) {
  std::vector<uint64_t> to_erase;
  for (auto& [addr, entry] : entries_) {
    if (entry.readers.Contains(core)) {
      entry.readers.Erase(core);
      if (entry.writer != core) {
        entry.holder_info.erase(core);
      }
    }
    if (entry.writer == core) {
      entry.writer = kNoWriter;
      entry.writer_epoch = 0;
      entry.writer_committing = false;
      entry.holder_info.erase(core);
    }
    if (entry.readers.Empty() && entry.writer == kNoWriter) {
      to_erase.push_back(addr);
    }
  }
  for (uint64_t addr : to_erase) {
    entries_.erase(addr);
  }
}

std::vector<Victim> LockTable::DrainRange(uint64_t base, uint64_t bytes, uint64_t* remaining) {
  std::vector<Victim> victims;
  std::vector<uint64_t> to_erase;
  uint64_t held = 0;
  for (auto& [addr, entry] : entries_) {
    if (addr - base >= bytes) {
      continue;
    }
    if (entry.writer != kNoWriter && entry.writer_committing) {
      // A committing writer keeps the entry; its release finishes the drain.
      ++held;
      continue;
    }
    if (entry.writer != kNoWriter) {
      auto it = entry.holder_info.find(entry.writer);
      TM2C_CHECK_MSG(it != entry.holder_info.end(), "writer without holder TxInfo");
      victims.push_back(Victim{it->second, ConflictKind::kMigrating});
      // The writer's upgrade read bit goes with it, as on the CM paths.
      entry.readers.Erase(entry.writer);
      entry.holder_info.erase(entry.writer);
      entry.writer = kNoWriter;
      entry.writer_epoch = 0;
      entry.writer_committing = false;
      ++stats_.revocations;
    }
    entry.readers.ForEach([&](uint32_t reader) {
      auto it = entry.holder_info.find(reader);
      TM2C_CHECK_MSG(it != entry.holder_info.end(), "reader bit without holder TxInfo");
      victims.push_back(Victim{it->second, ConflictKind::kMigrating});
      ++stats_.revocations;
    });
    entry.readers.ForEach([&](uint32_t reader) { entry.holder_info.erase(reader); });
    entry.readers = CoreSet();
    if (entry.readers.Empty() && entry.writer == kNoWriter) {
      to_erase.push_back(addr);
    }
  }
  for (uint64_t addr : to_erase) {
    entries_.erase(addr);
  }
  if (remaining != nullptr) {
    *remaining = held;
  }
  return victims;
}

uint64_t LockTable::EntriesInRange(uint64_t base, uint64_t bytes) const {
  uint64_t held = 0;
  for (const auto& [addr, entry] : entries_) {
    if (addr - base < bytes) {
      ++held;
    }
  }
  return held;
}

bool LockTable::HasWriter(uint64_t addr, uint32_t* writer) const {
  auto it = entries_.find(addr);
  if (it == entries_.end() || it->second.writer == kNoWriter) {
    return false;
  }
  if (writer != nullptr) {
    *writer = it->second.writer;
  }
  return true;
}

bool LockTable::HasReader(uint64_t addr, uint32_t core) const {
  auto it = entries_.find(addr);
  return it != entries_.end() && it->second.readers.Contains(core);
}

bool LockTable::CheckInvariants() const {
  for (const auto& [addr, entry] : entries_) {
    if (entry.readers.Empty() && entry.writer == kNoWriter) {
      return false;  // empty entries must have been erased
    }
    bool bad = false;
    entry.readers.ForEach([&](uint32_t reader) {
      // A writer excludes all readers except itself (lock upgrade).
      if (entry.writer != kNoWriter && reader != entry.writer) {
        bad = true;
      }
      if (entry.holder_info.find(reader) == entry.holder_info.end()) {
        bad = true;
      }
    });
    if (bad) {
      return false;
    }
    if (entry.writer != kNoWriter &&
        entry.holder_info.find(entry.writer) == entry.holder_info.end()) {
      return false;
    }
  }
  return true;
}

void LockTable::EraseIfEmpty(uint64_t addr, Entry& entry) {
  if (entry.readers.Empty() && entry.writer == kNoWriter) {
    entries_.erase(addr);
  }
}

}  // namespace tm2c

#include "src/durability/partition_log.h"

#include <algorithm>

#include "src/common/check.h"

namespace tm2c {

bool ParseCommitRecord(const WalRecord& record, CommitRecord* out) {
  const std::vector<uint64_t>& p = record.payload;
  if (p.size() < 3) {
    return false;
  }
  const uint64_t n = p[2];
  if (p.size() != 3 + 2 * n) {
    return false;
  }
  out->core = static_cast<uint32_t>(p[0]);
  out->epoch = p[1];
  out->pairs.clear();
  out->pairs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    out->pairs.emplace_back(p[3 + 2 * i], p[3 + 2 * i + 1]);
  }
  return true;
}

PartitionDurability::PartitionDurability(uint32_t partition, Options options)
    : partition_(partition),
      options_(std::move(options)),
      wal_(Wal::Options{options_.mode == DurabilityMode::kFsync, options_.path}) {
  TM2C_CHECK(options_.mode != DurabilityMode::kOff);
}

void PartitionDurability::CaptureInitial(uint64_t addr, uint64_t value) {
  TM2C_CHECK_MSG(checkpoints_.empty(), "CaptureInitial after SealInitialCheckpoint");
  shadow_[addr] = value;
}

void PartitionDurability::SealInitialCheckpoint() {
  TM2C_CHECK(checkpoints_.empty() && wal_.appended_records() == 0);
  CheckpointImage image;
  image.index = 0;
  image.records_covered = 0;
  image.pairs.assign(shadow_.begin(), shadow_.end());
  std::sort(image.pairs.begin(), image.pairs.end());
  checkpoints_.push_back(std::move(image));
}

bool PartitionDurability::LogCommit(uint32_t core, uint64_t epoch,
                                    const std::vector<std::pair<uint64_t, uint64_t>>& pairs) {
  TM2C_CHECK(!pairs.empty());
  std::vector<uint64_t> payload;
  payload.reserve(3 + 2 * pairs.size());
  payload.push_back(core);
  payload.push_back(epoch);
  payload.push_back(pairs.size());
  for (const auto& [addr, value] : pairs) {
    payload.push_back(addr);
    payload.push_back(value);
    shadow_[addr] = value;
  }
  const uint64_t record_index = wal_.Append(payload.data(), payload.size());
  if (trace_ != nullptr) {
    trace_->OnWalAppend(partition_, core, epoch, record_index, pairs);
  }
  return options_.checkpoint_every_records > 0 &&
         wal_.appended_records() % options_.checkpoint_every_records == 0;
}

uint64_t PartitionDurability::Flush() {
  const uint64_t newly_durable = wal_.unflushed_records();
  if (newly_durable == 0) {
    return 0;
  }
  wal_.Flush();
  if (trace_ != nullptr) {
    trace_->OnWalFlush(partition_, wal_.durable_records(), wal_.durable_bytes());
  }
  return newly_durable;
}

PartitionDurability::RecoveredCommits PartitionDurability::RecoverFromBackingFile() {
  wal_.RecoverBackingFile();
  RecoveredCommits recovered;
  const WalReadResult kept = ReadWal(wal_.image());
  TM2C_CHECK(kept.clean() && !kept.torn_tail);
  for (uint64_t i = 0; i < kept.records.size(); ++i) {
    CommitRecord record;
    TM2C_CHECK_MSG(ParseCommitRecord(kept.records[i], &record),
                   "wal recovery: malformed commit record in the valid prefix");
    for (const auto& [addr, value] : record.pairs) {
      shadow_[addr] = value;
    }
    recovered[{record.core, record.epoch}] = i;
  }
  if (trace_ != nullptr) {
    trace_->OnWalTruncate(partition_, wal_.durable_records(), wal_.durable_bytes());
  }
  return recovered;
}

void PartitionDurability::TakeCheckpoint() {
  TM2C_CHECK_MSG(wal_.unflushed_records() == 0,
                 "checkpoint may not cover unflushed records: flush first");
  TM2C_CHECK_MSG(!checkpoints_.empty(), "SealInitialCheckpoint before the run");
  CheckpointImage image;
  image.index = checkpoints_.size();
  image.records_covered = wal_.appended_records();
  image.pairs.assign(shadow_.begin(), shadow_.end());
  std::sort(image.pairs.begin(), image.pairs.end());
  if (trace_ != nullptr) {
    trace_->OnCheckpoint(partition_, image.index, image.records_covered);
  }
  checkpoints_.push_back(std::move(image));
}

}  // namespace tm2c

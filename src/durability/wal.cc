#include "src/durability/wal.h"

#include <unistd.h>

#include <cstring>

#include "src/common/check.h"

namespace tm2c {
namespace {

// "TM2CWAL" plus a format version byte.
constexpr uint8_t kWalMagic[kWalHeaderBytes] = {'T', 'M', '2', 'C', 'W', 'A', 'L', 0x01};

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = v << 8 | p[i];
  }
  return v;
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

uint32_t Crc32(const uint8_t* data, uint64_t size) {
  // Table-driven CRC-32 (IEEE, reflected polynomial 0xEDB88320).
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (uint64_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

WalReadResult ReadWal(const std::vector<uint8_t>& bytes) {
  WalReadResult result;
  if (bytes.size() < kWalHeaderBytes ||
      std::memcmp(bytes.data(), kWalMagic, kWalHeaderBytes) != 0) {
    result.bad_magic = true;
    return result;
  }
  uint64_t offset = kWalHeaderBytes;
  result.valid_bytes = offset;
  while (offset < bytes.size()) {
    const uint64_t remaining = bytes.size() - offset;
    if (remaining < kWalFrameOverheadBytes) {
      result.torn_tail = true;
      break;
    }
    const uint64_t len = LoadU32(bytes.data() + offset);
    const uint32_t crc = LoadU32(bytes.data() + offset + 4);
    if (len == 0 || len % sizeof(uint64_t) != 0) {
      // A complete header with an impossible length: corruption, not a
      // torn append (the writer never frames such a payload).
      result.crc_mismatch = true;
      break;
    }
    if (remaining < kWalFrameOverheadBytes + len) {
      result.torn_tail = true;
      break;
    }
    const uint8_t* payload = bytes.data() + offset + kWalFrameOverheadBytes;
    if (Crc32(payload, len) != crc) {
      result.crc_mismatch = true;
      break;
    }
    WalRecord record;
    record.payload.reserve(len / sizeof(uint64_t));
    for (uint64_t w = 0; w < len / sizeof(uint64_t); ++w) {
      record.payload.push_back(LoadU64(payload + w * sizeof(uint64_t)));
    }
    result.records.push_back(std::move(record));
    offset += kWalFrameOverheadBytes + len;
    result.valid_bytes = offset;
  }
  return result;
}

WalReadResult ReadWalFile(const std::string& path) {
  std::vector<uint8_t> bytes;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + n);
    }
    std::fclose(f);
  }
  return ReadWal(bytes);
}

Wal::Wal(Options options) : options_(std::move(options)) { Init(); }

void Wal::RecoverBackingFile() {
  TM2C_CHECK_MSG(!options_.path.empty(), "wal: recovery needs a backing file");
  if (file_ != nullptr) {
    // A restarted server's inherited handle: its stdio buffer is empty
    // (the parent flushed before forking), so closing only drops this
    // process's view of the descriptor.
    std::fclose(file_);
    file_ = nullptr;
  }
  options_.recover_existing = true;
  image_.clear();
  appended_records_ = 0;
  durable_records_ = 0;
  durable_bytes_ = kWalHeaderBytes;
  recovered_records_ = 0;
  Init();
}

void Wal::Init() {
  if (options_.recover_existing && !options_.path.empty()) {
    const WalReadResult existing = ReadWalFile(options_.path);
    if (!existing.bad_magic) {
      TM2C_CHECK_MSG(!existing.crc_mismatch,
                     "wal: refusing to recover over a corrupt (non-torn) log");
      // Keep exactly the valid prefix: rebuild the in-memory image from it
      // and cut any torn tail off the file before appending after it.
      image_.resize(kWalHeaderBytes);
      std::memcpy(image_.data(), kWalMagic, kWalHeaderBytes);
      for (const WalRecord& record : existing.records) {
        Append(record.payload.data(), record.payload.size());
      }
      TM2C_CHECK(image_.size() == existing.valid_bytes);
      TM2C_CHECK(::truncate(options_.path.c_str(),
                            static_cast<off_t>(existing.valid_bytes)) == 0);
      file_ = std::fopen(options_.path.c_str(), "ab");
      TM2C_CHECK_MSG(file_ != nullptr, "wal: could not reopen backing file");
      recovered_records_ = existing.records.size();
      durable_records_ = appended_records_;
      durable_bytes_ = image_.size();
      return;
    }
  }
  // resize+memcpy rather than insert: GCC 12's -Wstringop-overflow misfires
  // on range-inserting a constant array into a fresh vector.
  image_.resize(kWalHeaderBytes);
  std::memcpy(image_.data(), kWalMagic, kWalHeaderBytes);
  if (!options_.path.empty()) {
    file_ = std::fopen(options_.path.c_str(), "wb");
    TM2C_CHECK_MSG(file_ != nullptr, "wal: could not open backing file");
    TM2C_CHECK(std::fwrite(kWalMagic, 1, kWalHeaderBytes, file_) == kWalHeaderBytes);
  }
}

Wal::~Wal() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

uint64_t Wal::Append(const uint64_t* payload, uint64_t words) {
  TM2C_CHECK(words > 0);
  std::vector<uint8_t> frame;
  frame.reserve(kWalFrameOverheadBytes + words * sizeof(uint64_t));
  AppendU32(&frame, static_cast<uint32_t>(words * sizeof(uint64_t)));
  frame.resize(kWalFrameOverheadBytes);  // CRC patched below
  for (uint64_t w = 0; w < words; ++w) {
    AppendU64(&frame, payload[w]);
  }
  const uint32_t crc =
      Crc32(frame.data() + kWalFrameOverheadBytes, words * sizeof(uint64_t));
  frame[4] = static_cast<uint8_t>(crc);
  frame[5] = static_cast<uint8_t>(crc >> 8);
  frame[6] = static_cast<uint8_t>(crc >> 16);
  frame[7] = static_cast<uint8_t>(crc >> 24);
  image_.insert(image_.end(), frame.begin(), frame.end());
  if (file_ != nullptr) {
    TM2C_CHECK(std::fwrite(frame.data(), 1, frame.size(), file_) == frame.size());
  }
  return appended_records_++;
}

void Wal::Flush() {
  if (file_ != nullptr) {
    TM2C_CHECK(std::fflush(file_) == 0);
    if (options_.fsync_on_flush) {
      TM2C_CHECK(::fsync(::fileno(file_)) == 0);
    }
  }
  durable_records_ = appended_records_;
  durable_bytes_ = image_.size();
}

void Wal::FlushFile() {
  if (file_ != nullptr) {
    TM2C_CHECK(std::fflush(file_) == 0);
  }
}

}  // namespace tm2c

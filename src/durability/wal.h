// Append-only write-ahead log with length+CRC framed records.
//
// A log is a byte image that starts with an 8-byte magic header and is
// followed by zero or more frames:
//
//   [u32 payload_len_bytes][u32 crc32(payload)][payload: len/8 u64 words]
//
// The writer (Wal) always maintains the image in memory; an optional file
// sink mirrors every append so the fsync path can be exercised for real.
// Flush() advances the durable watermark (durable_records / durable_bytes):
// everything at or below the watermark is what a crash is allowed to keep,
// everything above it is what a crash may lose. In fsync mode Flush() also
// fsyncs the backing file.
//
// The reader (ReadWal / ReadWalFile) scans frames until the first problem
// and classifies it: an incomplete header or payload at the end of the
// image is a torn tail (the expected shape after a crash mid-append); a
// CRC or length-field mismatch on a complete frame is corruption. Both
// stop the scan — recovery replays exactly the valid prefix.
#ifndef TM2C_SRC_DURABILITY_WAL_H_
#define TM2C_SRC_DURABILITY_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace tm2c {

// Bytes of the magic header at the start of every log image.
constexpr uint64_t kWalHeaderBytes = 8;

// Bytes of framing (length + CRC) preceding every record payload.
constexpr uint64_t kWalFrameOverheadBytes = 8;

// CRC-32 (IEEE 802.3 polynomial, reflected), over a byte range.
uint32_t Crc32(const uint8_t* data, uint64_t size);

struct WalRecord {
  std::vector<uint64_t> payload;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  // Bytes of the valid prefix: magic header plus every complete,
  // CRC-clean frame before the first problem.
  uint64_t valid_bytes = 0;
  // Trailing bytes formed an incomplete frame (crash mid-append).
  bool torn_tail = false;
  // A complete frame failed its CRC or carried an impossible length.
  bool crc_mismatch = false;
  // The image is shorter than the magic header or the magic differs.
  bool bad_magic = false;

  bool clean() const { return !crc_mismatch && !bad_magic; }
};

// Scans a log image (see the framing above). Stops at the first torn or
// corrupt frame; the records vector holds the valid prefix.
WalReadResult ReadWal(const std::vector<uint8_t>& bytes);

// Reads `path` fully and scans it. A missing/unreadable file reads as an
// empty image (bad_magic = true).
WalReadResult ReadWalFile(const std::string& path);

class Wal {
 public:
  struct Options {
    // fsync the backing file on every Flush() (no-op without a path).
    bool fsync_on_flush = false;
    // Mirror the image into this file; empty = in-memory only.
    std::string path;
    // Reopen an existing backing file instead of truncating it: scan it,
    // keep the valid prefix (ReadWal semantics — every complete CRC-clean
    // frame), truncate any torn tail off the file, and continue appending
    // after it. The kept records count as already durable. A missing or
    // magic-less file falls back to a fresh log. Used by a restarted
    // partition server recovering its WAL after the previous server
    // process was killed.
    bool recover_existing = false;
  };

  explicit Wal(Options options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Appends one framed record; returns its zero-based record index.
  uint64_t Append(const uint64_t* payload, uint64_t words);

  // Makes every appended record durable: flushes (and in fsync mode syncs)
  // the backing file and advances the durable watermark.
  void Flush();

  // Flushes the backing file's stdio buffer WITHOUT advancing the durable
  // watermark. The process backend calls this on every log before forking
  // partition servers: buffered bytes sitting in the parent's stdio buffer
  // would otherwise be duplicated into the file by every child's exit.
  void FlushFile();

  // Records recovered from an existing backing file (recover_existing);
  // zero for a fresh log.
  uint64_t recovered_records() const { return recovered_records_; }

  // Reinitializes this log from its backing file (recover_existing
  // semantics): closes the current handle, keeps the file's valid prefix,
  // truncates any torn tail off the file, and continues appending after
  // it. A restarted partition server calls this on the Wal it inherited
  // at fork time, after its predecessor died mid-run.
  void RecoverBackingFile();

  uint64_t appended_records() const { return appended_records_; }
  uint64_t durable_records() const { return durable_records_; }
  uint64_t durable_bytes() const { return durable_bytes_; }
  uint64_t unflushed_records() const { return appended_records_ - durable_records_; }

  // The full appended image, including not-yet-flushed frames. A crash at
  // the current moment keeps only the first durable_bytes() of it.
  const std::vector<uint8_t>& image() const { return image_; }

 private:
  void Init();

  Options options_;
  std::vector<uint8_t> image_;
  std::FILE* file_ = nullptr;
  uint64_t appended_records_ = 0;
  uint64_t durable_records_ = 0;
  uint64_t durable_bytes_ = kWalHeaderBytes;
  uint64_t recovered_records_ = 0;
};

}  // namespace tm2c

#endif  // TM2C_SRC_DURABILITY_WAL_H_

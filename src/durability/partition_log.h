// Per-partition durability: the commit log plus periodic checkpoints.
//
// Each DS-Lock partition (one DtmService) owns one PartitionDurability.
// The service appends one CommitRecord per committed transaction that
// wrote into the partition — payload layout
//
//   [core, epoch, n, addr0, val0, ..., addr_{n-1}, val_{n-1}]
//
// — in lock order (the committer holds its write locks until the append
// is acknowledged, so per-address record order equals persist order), and
// flushes in groups (see TmConfig::group_commit_txs). A checkpoint is a
// sorted (addr, value) snapshot of every partition-owned word, maintained
// incrementally as a shadow map so taking one never reads the live slab;
// checkpoint 0 is the post-load initial image, later ones are cut every
// checkpoint_every_records appends. LogCommit() only *reports* that a
// checkpoint is due: the service flushes first and then calls
// TakeCheckpoint(), so a checkpoint never covers unflushed records and
// the durable watermark stays monotone.
//
// Recovery replays checkpoint + log suffix: pick the newest checkpoint
// whose records_covered is at or below the durable record count, apply
// its image, then replay the records [records_covered, durable) in index
// order (see KvStore::Recover).
#ifndef TM2C_SRC_DURABILITY_PARTITION_LOG_H_
#define TM2C_SRC_DURABILITY_PARTITION_LOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/durability/wal.h"
#include "src/tm/config.h"
#include "src/tm/trace.h"

namespace tm2c {

// One commit's durable effect, as framed into the WAL.
struct CommitRecord {
  uint32_t core = 0;
  uint64_t epoch = 0;
  std::vector<std::pair<uint64_t, uint64_t>> pairs;  // (addr, value), lock order
};

// Decodes a WAL record payload; false on a malformed layout.
bool ParseCommitRecord(const WalRecord& record, CommitRecord* out);

// A sorted (addr, value) snapshot of the partition's owned words.
struct CheckpointImage {
  uint64_t index = 0;            // 0 = post-load initial image
  uint64_t records_covered = 0;  // log records the image subsumes
  std::vector<std::pair<uint64_t, uint64_t>> pairs;  // sorted by addr
};

class PartitionDurability {
 public:
  struct Options {
    DurabilityMode mode = DurabilityMode::kBuffered;
    uint64_t checkpoint_every_records = 0;  // 0 = log only, never checkpoint
    std::string path;                       // optional WAL file backing
  };

  PartitionDurability(uint32_t partition, Options options);

  void set_trace(TxTraceSink* trace) { trace_ = trace; }

  // Load-phase capture of one owned word (before SealInitialCheckpoint).
  void CaptureInitial(uint64_t addr, uint64_t value);

  // Freezes the captured image as checkpoint 0 (no trace event: it is the
  // pre-run baseline, not a runtime durability action).
  void SealInitialCheckpoint();

  // Appends one commit record (emits OnWalAppend). Returns true when a
  // periodic checkpoint is due — the caller must Flush() first, then
  // TakeCheckpoint().
  bool LogCommit(uint32_t core, uint64_t epoch,
                 const std::vector<std::pair<uint64_t, uint64_t>>& pairs);

  // Advances the durable watermark over every appended record (emits
  // OnWalFlush when anything was unflushed). Returns the number of
  // records made durable by this call.
  uint64_t Flush();

  // Snapshots the shadow map as the next checkpoint (emits OnCheckpoint).
  // Pre-condition: no unflushed records (the caller flushed first).
  void TakeCheckpoint();

  // Flushes the WAL backing file's stdio buffer without advancing the
  // durable watermark (see Wal::FlushFile — the pre-fork hazard).
  void FlushBackingFile() { wal_.FlushFile(); }

  // (core, epoch) -> record index for every commit that survived a
  // RecoverFromBackingFile.
  using RecoveredCommits = std::map<std::pair<uint32_t, uint64_t>, uint64_t>;

  // Restart recovery for the process backend: a freshly activated standby
  // server calls this on the PartitionDurability it inherited at fork
  // time, after its predecessor was killed mid-run. Rebuilds the Wal from
  // the backing file's valid prefix (truncating any torn tail), replays
  // the kept records over the inherited shadow image, and emits
  // OnWalTruncate with the surviving record count — the oracle's signal
  // that appends beyond it were legitimately lost. Returns each kept
  // commit's (core, epoch) -> record index so a retransmitted kCommitLog
  // can be acknowledged with its original index instead of re-appended.
  RecoveredCommits RecoverFromBackingFile();

  uint32_t partition() const { return partition_; }
  DurabilityMode mode() const { return options_.mode; }
  const Wal& wal() const { return wal_; }
  uint64_t unflushed_records() const { return wal_.unflushed_records(); }
  const std::vector<CheckpointImage>& checkpoints() const { return checkpoints_; }

 private:
  uint32_t partition_;
  Options options_;
  Wal wal_;
  TxTraceSink* trace_ = nullptr;
  // Live image of the partition's owned words, updated on every append so
  // checkpoints are O(shadow) with no slab access.
  std::unordered_map<uint64_t, uint64_t> shadow_;
  std::vector<CheckpointImage> checkpoints_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_DURABILITY_PARTITION_LOG_H_

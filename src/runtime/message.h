// Wire format for on-chip messages.
//
// The SCC exchanges small MPB-resident messages; TM2C's protocol needs only
// a type tag, the sender, a few word-sized arguments, and (for multi-address
// batching and bulk releases) a variable-length list of addresses. The same
// struct is used by the simulator backend and the std::thread backend.
#ifndef TM2C_SRC_RUNTIME_MESSAGE_H_
#define TM2C_SRC_RUNTIME_MESSAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tm2c {

enum class MsgType : uint8_t {
  kInvalid = 0,

  // DTM service requests (app core -> service core).
  kReadLockReq,        // w0=addr, w1=tx epoch, w2=priority metric
  kWriteLockReq,       // as kReadLockReq; w3=1 marks a commit-phase acquisition
  kBatchAcquire,       // multi-address acquisition, see "Batch protocol" below
  kReadRelease,        // w0=addr, w1=tx epoch (no response)
  kWriteRelease,       // w0=addr, w1=tx epoch, w2=new value? (persist handled by app)
  kReleaseAllReads,    // w1=tx epoch, extra=addresses (no response)
  kReleaseAllWrites,   // w1=tx epoch, extra=addresses (no response)
  kEarlyReadRelease,   // elastic-early: w0=addr, w1=tx epoch (no response)

  // DTM service responses (service core -> app core).
  kLockGranted,   // w0=addr (or batch id)
  kLockConflict,  // w0=addr, w1=conflict kind (RAW/WAW/WAR)
  kBatchReply,    // response to kBatchAcquire, see "Batch protocol" below

  // Asynchronous abort notification (service core -> app core): the CM
  // revoked this transaction's locks in favour of a higher-priority one.
  kAbortNotify,  // w1=victim tx epoch, w2=conflict kind

  // Durability (src/durability/): the committer ships its persisted
  // (addr, value) pairs for one partition to that partition's service,
  // which appends them to the commit log and acknowledges once the record
  // is covered by a group-commit flush. Write locks stay held until every
  // ack arrives, so per-address record order equals persist order.
  kCommitLog,     // w1=tx epoch, extra=[addr0, val0, addr1, val1, ...]
  kCommitLogAck,  // w1=tx epoch

  // Stripe-ownership migration (src/tm/dtm_service.cc). A migration drains
  // the range on the old owner (new acquires are refused with
  // ConflictKind::kMigrating until the lock table holds no entry in the
  // range), then flips the shared ownership directory and broadcasts the
  // flip. kOwnershipUpdate is a pure notification: the directory itself is
  // shared state, so receivers only need to observe that a new version
  // exists — stale batches already in flight are refused by the owner
  // checks on both ends of the flip.
  kMigrateRange,     // w0=range base, w1=range bytes, w2=target partition
  kOwnershipUpdate,  // w0=range base, w1=range bytes, w2=new partition,
                     // w3=directory version after the flip

  // Infrastructure.
  kEcho,      // latency bench: request
  kEchoRsp,   // latency bench: response
  kBarrier,   // runtime barrier token
  kShutdown,  // tells a service core to exit its loop
  kApp,       // application-defined payload

  // Process-backend host frames (src/runtime/process_system.cc). A forked
  // partition server cannot call into a parent-side TxTraceSink, so its
  // DtmService trace and stats events are serialized over its socket as
  // ordinary messages addressed to the host (wire.h's kWireHostDst) and
  // replayed into the sink by the parent. They never appear in a CoreEnv
  // inbox on any backend.
  kTraceWalAppend,      // w0=record index, w1=tx epoch, w2=committing core,
                        // extra=[addr0, val0, addr1, val1, ...]
  kTraceCommitLogAck,   // w0=record index, w1=tx epoch, w2=committing core
  kTraceWalFlush,       // w0=durable records, w1=durable bytes
  kTraceCheckpoint,     // w0=checkpoint index, w1=records covered
  kTraceWalTruncate,    // restart recovery: w0=records remaining,
                        // w1=valid bytes of the reopened log
  kHostStats,           // partition exit report: extra=[lock table entries,
                        // DtmServiceStats fields...] (see process_system.cc)
};

// Batch protocol (one request/response round trip per responsible node):
//
//   kBatchAcquire   w0 = flags in the low kBatchReqIdShift bits
//                   (kBatchFlagCommit marks commit-phase write acquisitions)
//                   with the requester's request id in the bits above, w1 =
//                   tx epoch, w2 = priority metric (decoded by the CM once
//                   for the whole batch), w3 = write bitmap (bit i set:
//                   entry i wants the write lock, clear: the read lock),
//                   extra = stripe addresses, at most kMaxBatchEntries of
//                   them.
//   kBatchReply     w0 = grant bitmap (bit i set: entry i acquired), w1 =
//                   tx epoch, w2 = ConflictKind the first refused entry lost
//                   on (kNone when fully granted), w3 = granted count in the
//                   low kBatchReqIdShift bits, request id echoed above.
//
// The request id lets a runtime keep several batches in flight at once
// (TmConfig::pipeline_depth > 1) and match interleaved replies to their
// requests; the service is stateless about it — it only echoes the id. It
// rides in previously-zero bits of existing words (the granted count is at
// most kMaxBatchEntries, so it fits below the shift), keeping the message
// size — and therefore the modelled wire timing — identical to the
// lockstep protocol.
//
// Grants are all-or-prefix: the service stops at the first refused entry,
// so the grant bitmap is always a prefix mask of the batch. The requester
// keeps the granted prefix (its release path covers it); there is no
// service-side rollback.
constexpr uint32_t kMaxBatchEntries = 64;  // bitmap width
constexpr uint64_t kBatchFlagCommit = 1;
constexpr uint32_t kBatchReqIdShift = 8;  // flags/count below, request id above
constexpr uint64_t kBatchReqIdMask = (uint64_t{1} << kBatchReqIdShift) - 1;

// Bitmap with the low `n` bits set (n <= 64).
constexpr uint64_t PrefixBitmap(uint32_t n) {
  return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

struct Message {
  MsgType type = MsgType::kInvalid;
  uint32_t src = 0;
  uint64_t w0 = 0;
  uint64_t w1 = 0;
  uint64_t w2 = 0;
  uint64_t w3 = 0;
  std::vector<uint64_t> extra;

  // Payload size in words, used by the latency model to charge for larger
  // (batched) messages.
  size_t SizeWords() const { return 5 + extra.size(); }
};

// Conflict kinds, matching the paper's RAW/WAW/WAR terminology. NO_CONFLICT
// mirrors Algorithm 1/2's success return. kMigrating and kOverload are not
// data conflicts: they are service-side refusals (a draining range, an
// admission-controlled inbox) that ride the same refusal words so the
// runtime's retry path handles them uniformly — both mean "back off and
// retry", never "another transaction beat you".
enum class ConflictKind : uint8_t {
  kNone = 0,
  kReadAfterWrite = 1,   // RAW: reader found an existing writer
  kWriteAfterWrite = 2,  // WAW: writer found an existing writer
  kWriteAfterRead = 3,   // WAR: writer found existing readers
  kMigrating = 4,        // stripe's range is draining for ownership migration
  kOverload = 5,         // service inbox above the admission high-water mark
};

inline const char* ConflictKindName(ConflictKind k) {
  switch (k) {
    case ConflictKind::kNone:
      return "NO_CONFLICT";
    case ConflictKind::kReadAfterWrite:
      return "RAW";
    case ConflictKind::kWriteAfterWrite:
      return "WAW";
    case ConflictKind::kWriteAfterRead:
      return "WAR";
    case ConflictKind::kMigrating:
      return "MIGRATING";
    case ConflictKind::kOverload:
      return "OVERLOAD";
  }
  return "?";
}

}  // namespace tm2c

#endif  // TM2C_SRC_RUNTIME_MESSAGE_H_

// Multi-process backend of the runtime — partitions as server processes.
//
// Each DTM partition's service loop runs in a forked child process, talking
// to the host over one Unix-domain stream socket with the explicit wire
// serialization of src/runtime/wire.h. Application cores stay host-side as
// threads (they share the transaction data through a MAP_SHARED memory
// region, exactly the paper's non-coherent shared memory); everything a
// partition owns privately — its lock table, its WAL tail, its counters —
// lives only in the server process and dies with it.
//
// That asymmetry is the point: a partition server can be SIGKILLed mid-run
// (KillPartition) and the backend restarts it from a pre-forked cold
// standby. The standby recovers the partition's state from the on-disk WAL
// (truncating the torn tail), the host retransmits the in-doubt commit
// records, refuses the dead server's other unanswered requests with
// ConflictKind::kOverload (the runtime's uniform back-off-and-retry path),
// and publishes a revocation fence for every transaction that had quoted an
// epoch at the dead partition — its granted locks died with the lock table.
// Committers already past their commit point ignore the fence, mirroring
// the abort-status semantics of contention-manager revocations.
//
// Per-core message FIFO order survives the topology: one socket per
// partition carries all of its traffic, a parent-side router thread
// demultiplexes replies into per-app-core mailboxes, and server-side trace
// and stats events ride the same socket addressed to kWireHostDst.
#ifndef TM2C_SRC_RUNTIME_PROCESS_SYSTEM_H_
#define TM2C_SRC_RUNTIME_PROCESS_SYSTEM_H_

#include <sys/types.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/runtime/backend.h"
#include "src/runtime/core_env.h"
#include "src/runtime/wire.h"

namespace tm2c {

struct ProcessSystemConfig {
  PlatformDesc platform;  // used for topology/partitioning only
  uint32_t num_cores = 4;
  uint32_t num_service = 2;
  uint64_t shmem_bytes = 4ull << 20;
  // Directory holding the per-partition, per-generation socket files
  // (part<p>.g<gen>.sock). Created if missing. Required: socket paths must
  // be unique per run, so callers pass a fresh (temp) directory.
  std::string run_dir;
  // Bounded connect retry towards a (re)started partition server: the
  // child needs a moment between fork/activation and listen().
  uint32_t connect_attempts = 500;
  uint32_t connect_retry_ms = 10;
};

// The deployment is always dedicated: a partition server process cannot
// interleave an application main the way the multitasked simulator does.
class ProcessSystem : public SystemBackend {
 public:
  explicit ProcessSystem(ProcessSystemConfig config);
  ~ProcessSystem() override;

  ProcessSystem(const ProcessSystem&) = delete;
  ProcessSystem& operator=(const ProcessSystem&) = delete;

  void SetCoreMain(uint32_t core, CoreMain main) override;

  // Forks the partition servers (one primary plus one cold standby each),
  // runs every app core's main on a host thread, joins, and reaps. `until`
  // is ignored — mains bound their own work, service loops exit on
  // kShutdown. Returns wall-clock picoseconds. Runs once.
  SimTime Run(SimTime until) override;

  // Service core: ships a kShutdown frame to its partition server (the
  // server flushes its commit log, reports stats, and exits). App core:
  // drops kShutdown into its mailbox.
  void RequestShutdown(uint32_t core) override;

  CoreEnv& env(uint32_t core) override;
  const DeploymentPlan& deployment() const override { return plan_; }
  SharedMemory& shmem() override { return *shmem_; }
  ShmAllocator& allocator() override { return *allocator_; }
  bool is_simulated() const override { return false; }
  const ProcessSystemConfig& config() const { return config_; }

  // --- process-specific surface (wired up by TmSystem before Run) ---

  // Runs host-side immediately before the servers fork. The durability
  // layer uses it to flush buffered WAL file state: a stdio buffer
  // duplicated into every child would otherwise be written twice.
  void SetPreForkHook(std::function<void()> hook) { pre_fork_ = std::move(hook); }

  // Runs in the child process after its socket is connected and before its
  // service main. `is_restart` marks a standby activated to replace a
  // killed primary: the hook recovers the partition's WAL and primes the
  // service's recovered-commit table. It must also attach the child's
  // wire trace sink — `env` is the only conduit back to the host.
  void SetChildStart(std::function<void(uint32_t partition, bool is_restart, CoreEnv& env)> hook) {
    child_start_ = std::move(hook);
  }

  // Builds the child's exit report (sent to kWireHostDst after its main
  // returns, surfaced host-side through host_stats()).
  void SetChildExitReport(std::function<Message(uint32_t partition)> hook) {
    child_exit_report_ = std::move(hook);
  }

  // Receives every kWireHostDst frame except kHostStats (trace events), on
  // the partition's router thread. The handler must be thread-safe across
  // partitions — TmSystem feeds a MutexTraceSink.
  void SetHostFrameHandler(std::function<void(uint32_t partition, const Message&)> handler) {
    host_frame_ = std::move(handler);
  }

  // Base of the per-core abort-status words (TmConfig::abort_status_base)
  // so the restart fence can publish revocations the same way contention
  // managers do. Unset: the fence relies on kAbortNotify delivery alone.
  void SetAbortStatusBase(uint64_t base) { abort_status_base_ = base; }

  // SIGKILLs the partition's current server process mid-run. The partition
  // router detects the death, activates the cold standby, and resumes; a
  // second kill of the same partition is fatal (one standby each).
  void KillPartition(uint32_t partition);

  // Times the partition's server was killed and replaced so far.
  uint32_t restarts(uint32_t partition);

  // The partition's exit report (kHostStats extra words), empty until its
  // server exited cleanly.
  std::vector<uint64_t> host_stats(uint32_t partition);

  std::string SocketPath(uint32_t partition, uint32_t generation) const;

 private:
  class AppCore;
  class ServiceCore;
  friend class AppCore;
  friend class ServiceCore;

  struct Server {
    pid_t pid = -1;
    int control_wr = -1;  // one-byte command pipe: 'p' serve, 'r' serve as
                          // restart (recover first), 'q' quit unused
    bool reaped = false;
  };
  // A request the server has not answered yet. Kept host-side so a killed
  // server's obligations are explicit: commit records are retransmitted to
  // the successor, everything else is refused back to the requester.
  struct Outstanding {
    uint32_t src = 0;
    Message request;
  };
  // Host end of one partition's socket, plus the bookkeeping the death
  // protocol needs. Senders block on `cv` while the partition is down.
  struct Connection {
    std::mutex mu;
    std::condition_variable cv;
    int fd = -1;
    bool up = false;
    bool shutdown_sent = false;
    uint32_t generation = 0;  // index into servers of the live process
    uint32_t restarts = 0;
    std::vector<Server> servers;
    std::deque<Outstanding> outstanding;
    // Newest epoch each app core quoted at this partition — the revocation
    // fence published when the server dies.
    std::unordered_map<uint32_t, uint64_t> last_epoch;
    std::vector<uint64_t> host_stats;
    std::thread router;
  };

  Server ForkServer(uint32_t partition, uint32_t generation);
  [[noreturn]] void ChildMain(uint32_t partition, uint32_t generation, int control_rd);
  void RouterLoop(uint32_t partition);
  void DrainFrames(uint32_t partition, WireDecoder* decoder);
  void RetireOutstanding(Connection* c, uint32_t dst, const Message& msg);
  void RestartPartition(uint32_t partition);
  static Message SynthesizeRefusal(uint32_t service_core, const Message& req);
  void SendToPartition(uint32_t src_core, uint32_t dst_core, Message msg);
  void DeliverToApp(uint32_t core, Message msg);
  int ConnectWithRetry(const std::string& path);
  static void Reap(Server* server);

  ProcessSystemConfig config_;
  DeploymentPlan plan_;
  std::unique_ptr<SharedMemory> shmem_;  // MAP_SHARED: real cross-process words
  std::unique_ptr<ShmAllocator> allocator_;
  std::vector<CoreMain> mains_;
  // Indexed by core id; exactly one of the two is non-null per core.
  std::vector<std::unique_ptr<AppCore>> app_cores_;
  std::vector<std::unique_ptr<ServiceCore>> service_cores_;
  std::vector<std::unique_ptr<Connection>> conns_;  // per partition

  std::function<void()> pre_fork_;
  std::function<void(uint32_t, bool, CoreEnv&)> child_start_;
  std::function<Message(uint32_t)> child_exit_report_;
  std::function<void(uint32_t, const Message&)> host_frame_;
  uint64_t abort_status_base_ = ~uint64_t{0};

  bool started_ = false;

  // Sense-reversing rendezvous of the app cores only (partition servers
  // never reach a barrier; their loops are pure request/response).
  std::atomic<uint32_t> barrier_waiting_{0};
  std::atomic<uint64_t> barrier_generation_{0};
};

}  // namespace tm2c

#endif  // TM2C_SRC_RUNTIME_PROCESS_SYSTEM_H_

#include "src/runtime/sim_system.h"

#include <utility>

#include "src/common/check.h"

namespace tm2c {

// CoreEnv implementation bound to one simulated core (one engine actor).
class SimSystem::Core : public CoreEnv {
 public:
  Core(SimSystem* sys, uint32_t id, SimTime clock_offset_ps, double drift_factor)
      : sys_(sys),
        id_(id),
        clock_offset_ps_(clock_offset_ps),
        drift_factor_(drift_factor),
        // Per-core chaos stream: deterministic regardless of how the cores
        // interleave, and decorrelated from the workload/skew streams.
        chaos_rng_((sys->config_.chaos.seed + 1) * 0x2545f4914f6cdd1dull + id) {}

  uint32_t core_id() const override { return id_; }
  const DeploymentPlan& plan() const override { return sys_->plan_; }
  const PlatformDesc& platform() const override { return sys_->config_.platform; }

  void Send(uint32_t dst, Message msg) override {
    TM2C_CHECK(dst < sys_->plan_.num_cores());
    TM2C_CHECK(dst != id_);
    msg.src = id_;
    // Sender occupancy: marshal the payload into the MPB (or channel line),
    // one fixed cost plus a per-payload-word term.
    sys_->engine_.Sleep(sys_->latency_.SendOverheadPs() + sys_->latency_.PayloadPs(msg.extra.size()));
    // Wire crossing, then deposit into the receiver's inbox.
    SimTime wire = sys_->latency_.WirePs(id_, dst);
    const ChaosConfig& chaos = sys_->config_.chaos;
    if (chaos.msg_jitter_max_ps > 0) {
      wire += chaos_rng_.NextBelow(chaos.msg_jitter_max_ps + 1);
    }
    SimTime arrival = sys_->engine_.now() + wire;
    if (chaos.any()) {
      // Jitter (and same-instant tie shuffling) must not reorder one pair's
      // messages: FIFO delivery per pair is a platform guarantee the
      // protocol is allowed to rely on. Clamp each arrival strictly behind
      // the pair's previous one.
      SimTime& last = sys_->pair_last_arrival_[static_cast<size_t>(id_) *
                                                   sys_->plan_.num_cores() + dst];
      if (arrival <= last) {
        arrival = last + 1;
      }
      last = arrival;
    }
    Core* receiver = sys_->cores_[dst].get();
    sys_->engine_.ScheduleAt(arrival, [this, receiver, m = std::move(msg)]() mutable {
      receiver->inbox_.push_back(std::move(m));
      if (receiver->waiting_recv_ && sys_->engine_.ActorBlocked(receiver->actor_)) {
        sys_->engine_.WakeActor(receiver->actor_);
      }
    });
  }

  Message Recv() override {
    while (inbox_.empty()) {
      waiting_recv_ = true;
      sys_->engine_.BlockCurrent();
      waiting_recv_ = false;
    }
    return PopAndPay();
  }

  bool TryRecv(Message* out) override {
    if (inbox_.empty()) {
      return false;
    }
    *out = PopAndPay();
    return true;
  }

  size_t InboxDepth() const override { return inbox_.size(); }

  SimTime LocalNow() const override {
    const double global = static_cast<double>(sys_->engine_.now());
    return static_cast<SimTime>(global * drift_factor_) + clock_offset_ps_;
  }

  SimTime GlobalNow() const override { return sys_->engine_.now(); }

  void Compute(uint64_t core_cycles) override {
    if (core_cycles > 0) {
      sys_->engine_.Sleep(platform().CoreCyclesToPs(core_cycles));
    }
  }

  uint64_t ShmemRead(uint64_t addr) override {
    WaitForMemory(addr);
    return sys_->shmem_->LoadWord(addr);
  }

  void ShmemWrite(uint64_t addr, uint64_t value) override {
    WaitForMemory(addr);
    sys_->shmem_->StoreWord(addr, value);
  }

  bool ShmemTestAndSet(uint64_t addr) override {
    // The read-modify-write happens atomically at the completion instant;
    // the simulator is single-threaded, so after the wait no other core can
    // interleave before the store below.
    WaitForMemory(addr);
    if (sys_->shmem_->LoadWord(addr) != 0) {
      return false;
    }
    sys_->shmem_->StoreWord(addr, 1);
    return true;
  }

  void ShmemBulkAccess(uint64_t addr, uint64_t bytes) override {
    const SimTime now = sys_->engine_.now();
    const SimTime done = sys_->mc_model_->BulkAccess(now, id_, addr, bytes, sys_->latency_);
    if (done > now) {
      sys_->engine_.Sleep(done - now);
    }
  }

  void Barrier() override { sys_->BarrierWait(this); }

  SharedMemory& shmem() override { return *sys_->shmem_; }
  ShmAllocator& allocator() override { return *sys_->allocator_; }

 private:
  friend class SimSystem;

  Message PopAndPay() {
    Message msg = std::move(inbox_.front());
    inbox_.pop_front();
    const uint32_t peers = sys_->plan_.PolledPeers(id_);
    SimTime cost = sys_->latency_.RecvOverheadPs(peers) + sys_->latency_.PayloadPs(msg.extra.size());
    const ChaosConfig& chaos = sys_->config_.chaos;
    if (chaos.poll_duplicate_pct > 0 && chaos_rng_.NextPercent(chaos.poll_duplicate_pct)) {
      cost *= 2;  // a wasted poll rotation before the scan that hit
    }
    if (chaos.poll_stall_pct > 0 && chaos_rng_.NextPercent(chaos.poll_stall_pct)) {
      cost += chaos_rng_.NextBelow(chaos.poll_stall_max_ps + 1);
    }
    sys_->engine_.Sleep(cost);
    return msg;
  }

  void WaitForMemory(uint64_t addr) {
    const SimTime now = sys_->engine_.now();
    const SimTime done = sys_->mc_model_->Access(now, id_, addr, sys_->latency_);
    if (done > now) {
      sys_->engine_.Sleep(done - now);
    }
  }

  SimSystem* sys_;
  uint32_t id_;
  SimTime clock_offset_ps_;
  double drift_factor_;
  Rng chaos_rng_;
  std::deque<Message> inbox_;
  bool waiting_recv_ = false;
  size_t actor_ = 0;
  CoreMain main_;
};

SimSystem::SimSystem(SimSystemConfig config)
    : config_(std::move(config)),
      plan_(config_.num_cores, config_.num_service, config_.strategy),
      latency_(config_.platform) {
  TM2C_CHECK_MSG(config_.num_cores <= config_.platform.max_cores,
                 "more cores requested than the platform has");
  shmem_ = std::make_unique<SharedMemory>(config_.shmem_bytes);
  allocator_ = std::make_unique<ShmAllocator>(shmem_.get(), Topology(config_.platform));
  mc_model_ = std::make_unique<MemControllerModel>(config_.platform, shmem_->size_bytes());
  engine_.SetChaos(config_.chaos);
  if (config_.chaos.any()) {
    pair_last_arrival_.assign(
        static_cast<size_t>(config_.num_cores) * config_.num_cores, 0);
  }

  Rng rng(config_.seed * 0x9e3779b97f4a7c15ull + 7);
  const auto skew_max_ps =
      static_cast<uint64_t>(config_.clock_skew_max_us * static_cast<double>(kPicosPerMicro));
  for (uint32_t c = 0; c < config_.num_cores; ++c) {
    const SimTime offset = skew_max_ps > 0 ? rng.NextBelow(skew_max_ps + 1) : 0;
    double drift = 1.0;
    if (config_.clock_drift_ppm > 0.0) {
      drift = 1.0 + (rng.NextDouble() * 2.0 - 1.0) * config_.clock_drift_ppm * 1e-6;
    }
    cores_.push_back(std::make_unique<Core>(this, c, offset, drift));
  }
}

SimSystem::~SimSystem() = default;

void SimSystem::SetCoreMain(uint32_t core, CoreMain main) {
  TM2C_CHECK(core < cores_.size());
  cores_[core]->main_ = std::move(main);
}

SimTime SimSystem::Run(SimTime until) {
  if (!started_actors_) {
    started_actors_ = true;
    for (auto& core : cores_) {
      Core* c = core.get();
      c->actor_ = engine_.AddActor([c]() {
        if (c->main_) {
          c->main_(*c);
        }
      });
    }
  }
  return engine_.Run(until);
}

CoreEnv& SimSystem::env(uint32_t core) {
  TM2C_CHECK(core < cores_.size());
  return *cores_[core];
}

void SimSystem::BarrierWait(Core* core) {
  const uint64_t my_generation = barrier_generation_;
  ++barrier_waiting_;
  if (barrier_waiting_ == plan_.num_cores()) {
    barrier_waiting_ = 0;
    ++barrier_generation_;
    for (uint32_t actor : barrier_blocked_actors_) {
      engine_.WakeActor(actor);
    }
    barrier_blocked_actors_.clear();
    return;
  }
  barrier_blocked_actors_.push_back(static_cast<uint32_t>(core->actor_));
  while (barrier_generation_ == my_generation) {
    engine_.BlockCurrent();
  }
}

}  // namespace tm2c

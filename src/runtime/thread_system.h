// std::thread backend of the runtime — the Section 7 "port".
//
// The same protocol code that runs on the simulated SCC runs here on real
// OS threads communicating through mutex-protected mailboxes (standing in
// for the Barrelfish-style cache-line channels of the paper's multi-core
// port). Time is the host's steady clock; Compute spins. This backend
// exists to demonstrate that TM2C's code is transport-agnostic and to run
// the protocol under real concurrency in tests; the figure-scale
// experiments use the deterministic simulator.
#ifndef TM2C_SRC_RUNTIME_THREAD_SYSTEM_H_
#define TM2C_SRC_RUNTIME_THREAD_SYSTEM_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/core_env.h"

namespace tm2c {

struct ThreadSystemConfig {
  PlatformDesc platform;  // used for topology/partitioning only
  uint32_t num_cores = 4;
  uint32_t num_service = 2;
  DeployStrategy strategy = DeployStrategy::kDedicated;
  uint64_t shmem_bytes = 4ull << 20;
};

class ThreadSystem {
 public:
  explicit ThreadSystem(ThreadSystemConfig config);
  ~ThreadSystem();

  ThreadSystem(const ThreadSystem&) = delete;
  ThreadSystem& operator=(const ThreadSystem&) = delete;

  void SetCoreMain(uint32_t core, CoreMain main);

  // Spawns one thread per core, runs every core's main to completion, and
  // joins. Mains that loop forever (service loops) must exit on a
  // kShutdown message; SendShutdown() delivers those.
  void RunToCompletion();

  // Sends kShutdown to the given core (typically service cores, after the
  // app cores' mains have returned).
  void SendShutdown(uint32_t core);

  CoreEnv& env(uint32_t core);
  const DeploymentPlan& deployment() const { return plan_; }
  SharedMemory& shmem() { return *shmem_; }
  ShmAllocator& allocator() { return *allocator_; }

 private:
  class Core;
  friend class Core;

  ThreadSystemConfig config_;
  DeploymentPlan plan_;
  std::unique_ptr<SharedMemory> shmem_;
  std::unique_ptr<ShmAllocator> allocator_;
  std::vector<std::unique_ptr<Core>> cores_;

  std::mutex tas_mu_;  // serializes the modelled test-and-set registers
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  uint32_t barrier_waiting_ = 0;
  uint64_t barrier_generation_ = 0;
};

}  // namespace tm2c

#endif  // TM2C_SRC_RUNTIME_THREAD_SYSTEM_H_

// std::thread backend of the runtime — the Section 7 "port".
//
// The same protocol code that runs on the simulated SCC runs here on real
// OS threads. The default transport is one lock-free SPSC ring per directed
// core pair (src/runtime/spsc_channel.h) — the port of the paper's
// cache-line channels: senders publish with a release store, receivers scan
// their incoming rings with acquire loads under an adaptive
// spin-then-yield-then-park policy, and a full ring back-pressures the
// sender. The pre-v2 mutex-and-condvar mailbox is kept as
// ChannelKind::kMutexMailbox, both as the bench baseline the SPSC path is
// measured against and as a fallback. Time is the host's steady clock;
// Compute spins.
#ifndef TM2C_SRC_RUNTIME_THREAD_SYSTEM_H_
#define TM2C_SRC_RUNTIME_THREAD_SYSTEM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/backend.h"
#include "src/runtime/core_env.h"
#include "src/runtime/spsc_channel.h"

namespace tm2c {

// Message transport between core threads.
enum class ChannelKind : uint8_t {
  kSpscRing = 0,      // lock-free per-pair rings, spin-then-yield polling
  kMutexMailbox = 1,  // one mutex/condvar mailbox per core (the v1 backend)
};

const char* ChannelKindName(ChannelKind kind);
ChannelKind ChannelKindByName(const std::string& name);

struct ThreadSystemConfig {
  PlatformDesc platform;  // used for topology/partitioning only
  uint32_t num_cores = 4;
  uint32_t num_service = 2;
  DeployStrategy strategy = DeployStrategy::kDedicated;
  uint64_t shmem_bytes = 4ull << 20;

  ChannelKind channel = ChannelKind::kSpscRing;
  // Bounded ring depth per directed pair (rounded up to a power of two).
  // A sender that finds the ring full spins/yields until space opens.
  uint32_t channel_capacity = 256;
  // Pin core i's thread to host CPU (i mod hardware_concurrency). Off by
  // default: pinning helps on dedicated many-core hosts and hurts badly on
  // oversubscribed CI runners.
  bool pin_threads = false;
  // Adaptive polling: a blocked receiver runs `spin_rounds` poll scans
  // back-to-back, then interleaves `yield_rounds` scans with
  // std::this_thread::yield(), then parks on its eventcount — senders wake
  // it with one notify, and the common case (receiver polling hot on
  // another CPU) costs them no syscall at all. On an oversubscribed host
  // (more core threads than CPUs) both budgets are collapsed at
  // construction, since spinning there only steals cycles from the peer
  // being waited on. Non-parking waits (send backpressure, the barrier)
  // nap `idle_sleep_us` once their budgets run out.
  uint32_t spin_rounds = 200;
  uint32_t yield_rounds = 4000;
  uint32_t idle_sleep_us = 50;
};

class ThreadSystem : public SystemBackend {
 public:
  explicit ThreadSystem(ThreadSystemConfig config);
  ~ThreadSystem() override;

  ThreadSystem(const ThreadSystem&) = delete;
  ThreadSystem& operator=(const ThreadSystem&) = delete;

  void SetCoreMain(uint32_t core, CoreMain main) override;

  // Spawns one thread per core, runs every core's main to completion, and
  // joins. Mains that loop forever (service loops) must exit on a
  // kShutdown message; SendShutdown() delivers those.
  void RunToCompletion();

  // SystemBackend: RunToCompletion measured on the host clock. `until` is
  // ignored — thread mains bound their own work.
  SimTime Run(SimTime until) override;

  // Delivers kShutdown to the given core (typically service cores, after
  // the app cores' mains have returned). Callable from any thread: the
  // message travels through a per-core injection lane, not the SPSC rings,
  // so it never violates their single-producer contract.
  void SendShutdown(uint32_t core);
  void RequestShutdown(uint32_t core) override { SendShutdown(core); }

  CoreEnv& env(uint32_t core) override;
  const DeploymentPlan& deployment() const override { return plan_; }
  SharedMemory& shmem() override { return *shmem_; }
  ShmAllocator& allocator() override { return *allocator_; }
  bool is_simulated() const override { return false; }
  const ThreadSystemConfig& config() const { return config_; }

 private:
  class Core;
  friend class Core;

  SpscChannel& ring(uint32_t src, uint32_t dst) {
    return *rings_[static_cast<size_t>(src) * config_.num_cores + dst];
  }

  ThreadSystemConfig config_;
  DeploymentPlan plan_;
  std::unique_ptr<SharedMemory> shmem_;
  std::unique_ptr<ShmAllocator> allocator_;
  std::vector<std::unique_ptr<Core>> cores_;
  // num_cores^2 rings, indexed src * num_cores + dst (SPSC transport only).
  std::vector<std::unique_ptr<SpscChannel>> rings_;

  // More core threads than host CPUs: waiters collapse their spin budgets
  // and long Compute busy-waits yield (set once at construction).
  bool oversubscribed_ = false;

  // Sense-reversing rendezvous of all cores, lock-free on the fast path.
  std::atomic<uint32_t> barrier_waiting_{0};
  std::atomic<uint64_t> barrier_generation_{0};
};

}  // namespace tm2c

#endif  // TM2C_SRC_RUNTIME_THREAD_SYSTEM_H_

#include "src/runtime/thread_system.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "src/common/check.h"

namespace tm2c {
namespace {

SimTime HostNowPs() {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
  return static_cast<SimTime>(ns) * kPicosPerNano;
}

// One spin-wait iteration that tells the CPU (and SMT sibling) we are in a
// busy-wait, without giving up the time slice.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Escalating wait policy shared by every blocking point of the SPSC
// transport: pure spinning first (cheap if the peer is running on another
// CPU), yields next (mandatory on oversubscribed hosts — the peer may need
// this very CPU), then either parking on the receiver's eventcount (Recv)
// or short naps (send backpressure, barrier) so a long-idle thread stops
// burning a host CPU.
class Backoff {
 public:
  explicit Backoff(const ThreadSystemConfig& config) : config_(config) {}

  // True once the spin and yield budgets are exhausted: the caller should
  // fall through to its terminal wait (park or nap).
  bool Exhausted() const { return rounds_ >= config_.spin_rounds + config_.yield_rounds; }

  void Pause() {
    ++rounds_;
    if (rounds_ <= config_.spin_rounds) {
      CpuRelax();
    } else if (rounds_ <= config_.spin_rounds + config_.yield_rounds) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(config_.idle_sleep_us));
    }
  }

  void Reset() { rounds_ = 0; }

 private:
  const ThreadSystemConfig& config_;
  uint32_t rounds_ = 0;
};

}  // namespace

const char* ChannelKindName(ChannelKind kind) {
  switch (kind) {
    case ChannelKind::kSpscRing:
      return "spsc";
    case ChannelKind::kMutexMailbox:
      return "mutex";
  }
  return "?";
}

ChannelKind ChannelKindByName(const std::string& name) {
  if (name.empty() || name == "spsc") {
    return ChannelKind::kSpscRing;
  }
  if (name == "mutex") {
    return ChannelKind::kMutexMailbox;
  }
  TM2C_FATAL("unknown channel kind (expected spsc|mutex)");
}

class ThreadSystem::Core : public CoreEnv {
 public:
  Core(ThreadSystem* sys, uint32_t id) : sys_(sys), id_(id) {}

  uint32_t core_id() const override { return id_; }
  const DeploymentPlan& plan() const override { return sys_->plan_; }
  const PlatformDesc& platform() const override { return sys_->config_.platform; }

  void Send(uint32_t dst, Message msg) override {
    TM2C_CHECK(dst < sys_->plan_.num_cores());
    msg.src = id_;
    Core* receiver = sys_->cores_[dst].get();
    if (sys_->config_.channel == ChannelKind::kMutexMailbox) {
      receiver->MailboxPush(std::move(msg));
      return;
    }
    // SPSC ring: this thread is the only producer of ring(id_, dst).
    // A full ring back-pressures us until the receiver drains it.
    SpscChannel& ring = sys_->ring(id_, dst);
    Backoff backoff(sys_->config_);
    while (!ring.TryPush(msg)) {
      backoff.Pause();
      receiver->WakeIfParked();  // a parked receiver cannot drain the ring
    }
    receiver->WakeIfParked();
  }

  Message Recv() override {
    Message msg;
    if (sys_->config_.channel == ChannelKind::kMutexMailbox) {
      std::unique_lock<std::mutex> lock(inbox_mu_);
      inbox_cv_.wait(lock, [this]() { return !inbox_.empty(); });
      msg = std::move(inbox_.front());
      inbox_.pop_front();
      return msg;
    }
    Backoff backoff(sys_->config_);
    for (;;) {
      if (PollRings(&msg)) {
        return msg;
      }
      if (!backoff.Exhausted()) {
        backoff.Pause();
        continue;
      }
      // Park on the eventcount until a sender wakes us. Announce first,
      // re-poll second (mirroring the senders' push-then-check), so a
      // message that lands between the poll above and the wait below is
      // never missed. The acq_rel RMWs on park_fence_ pivot the two sides:
      // whichever RMW comes second in its modification order acquires the
      // other side's prior writes, so either the sender observes parked_
      // and notifies, or our re-poll observes the push. (A seq_cst fence
      // would do the same but is unsupported under TSan.)
      std::unique_lock<std::mutex> lock(park_mu_);
      parked_.store(true, std::memory_order_relaxed);
      park_fence_.fetch_add(1, std::memory_order_acq_rel);
      if (PollRings(&msg)) {
        parked_.store(false, std::memory_order_relaxed);
        return msg;
      }
      park_cv_.wait(lock);  // spurious wakeups just re-poll
      parked_.store(false, std::memory_order_relaxed);
      lock.unlock();
      backoff.Reset();  // fresh spin budget after a wake
    }
  }

  bool TryRecv(Message* out) override {
    if (sys_->config_.channel == ChannelKind::kMutexMailbox) {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      if (inbox_.empty()) {
        return false;
      }
      *out = std::move(inbox_.front());
      inbox_.pop_front();
      return true;
    }
    return PollRings(out);
  }

  size_t InboxDepth() const override {
    if (sys_->config_.channel == ChannelKind::kMutexMailbox) {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      return inbox_.size();
    }
    size_t depth = 0;
    const uint32_t n = sys_->plan_.num_cores();
    for (uint32_t src = 0; src < n; ++src) {
      depth += sys_->ring(src, id_).ApproxSize();
    }
    return depth;
  }

  SimTime LocalNow() const override { return HostNowPs(); }
  SimTime GlobalNow() const override { return HostNowPs(); }

  void Compute(uint64_t core_cycles) override {
    // Approximate: one spin iteration per cycle at the modelled clock would
    // be too slow on a loaded host; a nanosecond-scale busy wait preserves
    // relative costs well enough for functional tests. On an oversubscribed
    // host the spin yields once it has burned a microsecond: long modelled
    // computations (contention-manager backoffs especially) must not starve
    // the peer threads they are implicitly waiting for — two contenders
    // that busy-wait their backoffs in lock-step on one CPU re-collide
    // forever.
    const SimTime deadline = HostNowPs() + platform().CoreCyclesToPs(core_cycles);
    const SimTime spin_until =
        sys_->oversubscribed_ ? HostNowPs() + kPicosPerMicro : deadline;
    while (HostNowPs() < deadline) {
      if (HostNowPs() >= spin_until) {
        std::this_thread::yield();
      }
    }
  }

  uint64_t ShmemRead(uint64_t addr) override { return sys_->shmem_->LoadWord(addr); }
  void ShmemWrite(uint64_t addr, uint64_t value) override {
    sys_->shmem_->StoreWord(addr, value);
  }

  bool ShmemTestAndSet(uint64_t addr) override {
    // Word-level CAS on the shared array — the modelled SCC test-and-set
    // register, minus the global mutex the v1 backend serialized it with.
    return sys_->shmem_->CasWord(addr, 0, 1);
  }

  // The address range only matters to the simulated backend, which charges
  // DRAM/mesh time for it; on real memory there is nothing to charge and
  // the caller reads through shmem(), so both stay unnamed by design.
  void ShmemBulkAccess(uint64_t /*addr*/, uint64_t /*bytes*/) override {}

  void Barrier() override {
    // Sense-reversing barrier: the last arrival resets the count, then
    // bumps the generation; everyone else spins on the generation flip.
    const uint64_t generation = sys_->barrier_generation_.load(std::memory_order_acquire);
    if (sys_->barrier_waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        sys_->plan_.num_cores()) {
      sys_->barrier_waiting_.store(0, std::memory_order_relaxed);
      sys_->barrier_generation_.fetch_add(1, std::memory_order_release);
      return;
    }
    Backoff backoff(sys_->config_);
    while (sys_->barrier_generation_.load(std::memory_order_acquire) == generation) {
      backoff.Pause();
    }
  }

  SharedMemory& shmem() override { return *sys_->shmem_; }
  ShmAllocator& allocator() override { return *sys_->allocator_; }

 private:
  friend class ThreadSystem;

  // Scans this core's incoming rings round-robin from where the last scan
  // left off, so one chatty peer cannot starve the others. The injection
  // lane (SendShutdown from outside any core) is polled only when every
  // ring came up empty: protocol traffic drains before a shutdown lands.
  bool PollRings(Message* out) {
    const uint32_t n = sys_->plan_.num_cores();
    for (uint32_t i = 0; i < n; ++i) {
      const uint32_t src = next_poll_;
      next_poll_ = next_poll_ + 1 == n ? 0 : next_poll_ + 1;
      if (sys_->ring(src, id_).TryPop(out)) {
        return true;
      }
    }
    if (inject_pending_.load(std::memory_order_acquire) != 0) {
      std::lock_guard<std::mutex> lock(inject_mu_);
      if (!inject_.empty()) {
        *out = std::move(inject_.front());
        inject_.pop_front();
        inject_pending_.fetch_sub(1, std::memory_order_release);
        return true;
      }
    }
    return false;
  }

  void MailboxPush(Message msg) {
    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      inbox_.push_back(std::move(msg));
    }
    inbox_cv_.notify_one();
  }

  void InjectPush(Message msg) {
    {
      std::lock_guard<std::mutex> lock(inject_mu_);
      inject_.push_back(std::move(msg));
    }
    inject_pending_.fetch_add(1, std::memory_order_release);
    WakeIfParked();
  }

  // Sender half of the eventcount handshake: pivot RMW, then notify only
  // when the receiver announced it is parked. The common case (receiver
  // polling hot on another CPU) costs one uncontended RMW and one load —
  // no syscall, no lock.
  void WakeIfParked() {
    park_fence_.fetch_add(1, std::memory_order_acq_rel);
    if (!parked_.load(std::memory_order_acquire)) {
      return;
    }
    // Taking the mutex orders us with the receiver's announce-then-wait
    // window, so the notify cannot fall between its re-poll and its wait.
    std::lock_guard<std::mutex> lock(park_mu_);
    park_cv_.notify_one();
  }

  ThreadSystem* sys_;
  uint32_t id_;
  uint32_t next_poll_ = 0;  // ring scan cursor, receiver thread only

  // Mutex-mailbox transport (ChannelKind::kMutexMailbox).
  std::deque<Message> inbox_;
  mutable std::mutex inbox_mu_;  // InboxDepth() is a const observer
  std::condition_variable inbox_cv_;

  // Injection lane for messages produced outside any core thread
  // (SendShutdown); SPSC transport only.
  std::deque<Message> inject_;
  std::mutex inject_mu_;
  std::atomic<uint32_t> inject_pending_{0};

  // Eventcount the receiver parks on once its spin/yield budget runs out
  // (SPSC transport only). parked_ is the receiver's announcement; the
  // mutex/condvar pair only ever sees traffic while the receiver is
  // parked or about to park.
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<bool> parked_{false};
  // Dekker pivot for the announce/recheck vs push/check handshake; both
  // sides RMW it acq_rel in place of a seq_cst fence (see Recv).
  std::atomic<uint64_t> park_fence_{0};

  CoreMain main_;
};

ThreadSystem::ThreadSystem(ThreadSystemConfig config)
    : config_(std::move(config)),
      plan_(config_.num_cores, config_.num_service, config_.strategy) {
  TM2C_CHECK_MSG(config_.channel_capacity >= 2, "channel_capacity must be at least 2");
  // Oversubscribed host (more core threads than CPUs): spinning only
  // steals cycles from the very peer being waited on. Collapse the budgets
  // so waiters yield almost immediately and park soon after.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && config_.num_cores > hw) {
    oversubscribed_ = true;
    config_.spin_rounds = 0;
    config_.yield_rounds = std::min<uint32_t>(config_.yield_rounds, 16);
  }
  shmem_ = std::make_unique<SharedMemory>(config_.shmem_bytes);
  allocator_ = std::make_unique<ShmAllocator>(shmem_.get(), Topology(config_.platform));
  for (uint32_t c = 0; c < config_.num_cores; ++c) {
    cores_.push_back(std::make_unique<Core>(this, c));
  }
  if (config_.channel == ChannelKind::kSpscRing) {
    rings_.reserve(static_cast<size_t>(config_.num_cores) * config_.num_cores);
    for (uint32_t src = 0; src < config_.num_cores; ++src) {
      for (uint32_t dst = 0; dst < config_.num_cores; ++dst) {
        rings_.push_back(std::make_unique<SpscChannel>(config_.channel_capacity));
      }
    }
  }
}

ThreadSystem::~ThreadSystem() = default;

void ThreadSystem::SetCoreMain(uint32_t core, CoreMain main) {
  TM2C_CHECK(core < cores_.size());
  cores_[core]->main_ = std::move(main);
}

void ThreadSystem::SendShutdown(uint32_t core) {
  TM2C_CHECK(core < cores_.size());
  Core* receiver = cores_[core].get();
  Message msg;
  msg.type = MsgType::kShutdown;
  msg.src = core;
  if (config_.channel == ChannelKind::kMutexMailbox) {
    receiver->MailboxPush(std::move(msg));
  } else {
    receiver->InjectPush(std::move(msg));
  }
}

void ThreadSystem::RunToCompletion() {
  std::vector<std::thread> threads;
  threads.reserve(cores_.size());
  for (auto& core : cores_) {
    Core* c = core.get();
    threads.emplace_back([c]() {
      if (c->main_) {
        c->main_(*c);
      }
    });
#if defined(__linux__)
    if (config_.pin_threads) {
      const unsigned hw = std::thread::hardware_concurrency();
      if (hw > 0) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(c->id_ % hw, &set);
        // Best effort: a restricted affinity mask (cgroups) may refuse.
        (void)pthread_setaffinity_np(threads.back().native_handle(), sizeof(set), &set);
      }
    }
#endif
  }
  for (auto& t : threads) {
    t.join();
  }
}

SimTime ThreadSystem::Run(SimTime /*until*/) {
  const SimTime start = HostNowPs();
  RunToCompletion();
  return HostNowPs() - start;
}

CoreEnv& ThreadSystem::env(uint32_t core) {
  TM2C_CHECK(core < cores_.size());
  return *cores_[core];
}

}  // namespace tm2c

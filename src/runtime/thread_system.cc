#include "src/runtime/thread_system.h"

#include <chrono>

#include "src/common/check.h"

namespace tm2c {
namespace {

SimTime HostNowPs() {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
  return static_cast<SimTime>(ns) * kPicosPerNano;
}

}  // namespace

class ThreadSystem::Core : public CoreEnv {
 public:
  Core(ThreadSystem* sys, uint32_t id) : sys_(sys), id_(id) {}

  uint32_t core_id() const override { return id_; }
  const DeploymentPlan& plan() const override { return sys_->plan_; }
  const PlatformDesc& platform() const override { return sys_->config_.platform; }

  void Send(uint32_t dst, Message msg) override {
    TM2C_CHECK(dst < sys_->plan_.num_cores());
    msg.src = id_;
    Core* receiver = sys_->cores_[dst].get();
    {
      std::lock_guard<std::mutex> lock(receiver->inbox_mu_);
      receiver->inbox_.push_back(std::move(msg));
    }
    receiver->inbox_cv_.notify_one();
  }

  Message Recv() override {
    std::unique_lock<std::mutex> lock(inbox_mu_);
    inbox_cv_.wait(lock, [this]() { return !inbox_.empty(); });
    Message msg = std::move(inbox_.front());
    inbox_.pop_front();
    return msg;
  }

  bool TryRecv(Message* out) override {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    if (inbox_.empty()) {
      return false;
    }
    *out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  }

  SimTime LocalNow() const override { return HostNowPs(); }
  SimTime GlobalNow() const override { return HostNowPs(); }

  void Compute(uint64_t core_cycles) override {
    // Approximate: one spin iteration per cycle at the modelled clock would
    // be too slow on a loaded host; a nanosecond-scale busy wait preserves
    // relative costs well enough for functional tests.
    const SimTime deadline = HostNowPs() + platform().CoreCyclesToPs(core_cycles);
    while (HostNowPs() < deadline) {
    }
  }

  uint64_t ShmemRead(uint64_t addr) override { return sys_->shmem_->LoadWord(addr); }
  void ShmemWrite(uint64_t addr, uint64_t value) override {
    sys_->shmem_->StoreWord(addr, value);
  }

  bool ShmemTestAndSet(uint64_t addr) override {
    std::lock_guard<std::mutex> lock(sys_->tas_mu_);
    if (sys_->shmem_->LoadWord(addr) != 0) {
      return false;
    }
    sys_->shmem_->StoreWord(addr, 1);
    return true;
  }

  // The address range only matters to the simulated backend, which charges
  // DRAM/mesh time for it; on real memory there is nothing to charge and
  // the caller reads through shmem(), so both stay unnamed by design.
  void ShmemBulkAccess(uint64_t /*addr*/, uint64_t /*bytes*/) override {}

  void Barrier() override {
    std::unique_lock<std::mutex> lock(sys_->barrier_mu_);
    const uint64_t my_generation = sys_->barrier_generation_;
    if (++sys_->barrier_waiting_ == sys_->plan_.num_cores()) {
      sys_->barrier_waiting_ = 0;
      ++sys_->barrier_generation_;
      sys_->barrier_cv_.notify_all();
      return;
    }
    sys_->barrier_cv_.wait(lock,
                           [this, my_generation]() { return sys_->barrier_generation_ != my_generation; });
  }

  SharedMemory& shmem() override { return *sys_->shmem_; }
  ShmAllocator& allocator() override { return *sys_->allocator_; }

 private:
  friend class ThreadSystem;

  ThreadSystem* sys_;
  uint32_t id_;
  std::deque<Message> inbox_;
  std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;
  CoreMain main_;
};

ThreadSystem::ThreadSystem(ThreadSystemConfig config)
    : config_(std::move(config)),
      plan_(config_.num_cores, config_.num_service, config_.strategy) {
  shmem_ = std::make_unique<SharedMemory>(config_.shmem_bytes);
  allocator_ = std::make_unique<ShmAllocator>(shmem_.get(), Topology(config_.platform));
  for (uint32_t c = 0; c < config_.num_cores; ++c) {
    cores_.push_back(std::make_unique<Core>(this, c));
  }
}

ThreadSystem::~ThreadSystem() = default;

void ThreadSystem::SetCoreMain(uint32_t core, CoreMain main) {
  TM2C_CHECK(core < cores_.size());
  cores_[core]->main_ = std::move(main);
}

void ThreadSystem::SendShutdown(uint32_t core) {
  TM2C_CHECK(core < cores_.size());
  Core* receiver = cores_[core].get();
  Message msg;
  msg.type = MsgType::kShutdown;
  msg.src = core;
  {
    std::lock_guard<std::mutex> lock(receiver->inbox_mu_);
    receiver->inbox_.push_back(std::move(msg));
  }
  receiver->inbox_cv_.notify_one();
}

void ThreadSystem::RunToCompletion() {
  std::vector<std::thread> threads;
  threads.reserve(cores_.size());
  for (auto& core : cores_) {
    Core* c = core.get();
    threads.emplace_back([c]() {
      if (c->main_) {
        c->main_(*c);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
}

CoreEnv& ThreadSystem::env(uint32_t core) {
  TM2C_CHECK(core < cores_.size());
  return *cores_[core];
}

}  // namespace tm2c

// Per-core runtime interface.
//
// All TM2C protocol code (transaction wrappers, DS-Lock service, contention
// managers) and all applications are written against CoreEnv, which exposes
// exactly the primitives the paper's many-core model provides: reliable
// asynchronous message passing, a local (possibly skewed) clock, local
// computation, and non-coherent shared memory. Two implementations exist:
// the deterministic discrete-event simulator backend (SimSystem) and a real
// std::thread backend (ThreadSystem) demonstrating the Section 7 port.
#ifndef TM2C_SRC_RUNTIME_CORE_ENV_H_
#define TM2C_SRC_RUNTIME_CORE_ENV_H_

#include <cstdint>
#include <functional>

#include "src/noc/platform.h"
#include "src/runtime/deployment.h"
#include "src/runtime/message.h"
#include "src/shmem/allocator.h"
#include "src/shmem/shared_memory.h"
#include "src/sim/time.h"

namespace tm2c {

class CoreEnv {
 public:
  virtual ~CoreEnv() = default;

  virtual uint32_t core_id() const = 0;
  virtual const DeploymentPlan& plan() const = 0;
  virtual const PlatformDesc& platform() const = 0;

  // Sends a message; occupies the sender for the marshalling cost.
  // Messages between the same pair of cores are delivered in FIFO order.
  virtual void Send(uint32_t dst, Message msg) = 0;

  // Blocks until a message is available and returns it (paying the
  // receive/poll cost).
  virtual Message Recv() = 0;

  // Non-blocking receive. Returns false when no message is pending.
  virtual bool TryRecv(Message* out) = 0;

  // Number of messages currently pending for this core — the admission
  // controller's load signal (TmConfig::overload_high_water). Advisory: on
  // the thread backend it is a racy snapshot of the incoming rings; on the
  // simulator it is exact. The default (0) keeps admission control inert
  // for harnesses that never queue.
  virtual size_t InboxDepth() const { return 0; }

  // Local clock. Per-core constant offset (and optional drift) model the
  // absence of a synchronized global clock, which is what breaks the
  // Offset-Greedy contention manager (Section 4.3).
  virtual SimTime LocalNow() const = 0;

  // Global time, for harness bookkeeping only — protocol code must not use
  // it (the paper's system has no global clock).
  virtual SimTime GlobalNow() const = 0;

  // Spends `core_cycles` of local computation.
  virtual void Compute(uint64_t core_cycles) = 0;

  // Word-granularity access to the non-coherent shared memory, paying the
  // memory latency plus memory-controller queueing.
  virtual uint64_t ShmemRead(uint64_t addr) = 0;
  virtual void ShmemWrite(uint64_t addr, uint64_t value) = 0;

  // Atomic test-and-set on a shared word: sets it to 1 and returns true if
  // it was 0, else leaves it and returns false. Models the SCC's globally
  // accessible test-and-set registers, which the paper's lock-based bank
  // baseline builds its single global lock from.
  virtual bool ShmemTestAndSet(uint64_t addr) = 0;

  // Charges the time of streaming `bytes` from shared memory starting at
  // `addr` (one controller occupancy per cache-line-sized beat). Used for
  // bulk data (MapReduce chunks); contents are inspected host-side through
  // shmem() at zero simulated cost.
  virtual void ShmemBulkAccess(uint64_t addr, uint64_t bytes) = 0;

  // Rendezvous of all cores. Infrastructure only (workload phase changes);
  // carries no simulated cost.
  virtual void Barrier() = 0;

  // Direct handles for application setup code.
  virtual SharedMemory& shmem() = 0;
  virtual ShmAllocator& allocator() = 0;
};

// Entry point a core runs; installed per core before the system starts.
using CoreMain = std::function<void(CoreEnv&)>;

}  // namespace tm2c

#endif  // TM2C_SRC_RUNTIME_CORE_ENV_H_

// Lock-free single-producer/single-consumer message ring.
//
// The native thread backend's port of the paper's cache-line channels: one
// bounded ring per directed core pair, so every ring has exactly one writer
// thread and one reader thread and needs no locks — a producer-side release
// store publishes a slot, a consumer-side acquire load picks it up, exactly
// like flipping the ownership flag of an MPB cache line on the SCC (or a
// Barrelfish UMP channel line on the Opteron). Head and tail live on their
// own cache lines, and each side caches the opposing index so the common
// case touches no shared line at all.
#ifndef TM2C_SRC_RUNTIME_SPSC_CHANNEL_H_
#define TM2C_SRC_RUNTIME_SPSC_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "src/common/check.h"
#include "src/runtime/message.h"

namespace tm2c {

// One destructive-interference span. std::hardware_destructive_interference_size
// is not universally available (and trips -Winterference-size on GCC); 64
// bytes is correct for every x86/arm machine this backend targets.
constexpr size_t kCacheLineBytes = 64;

class SpscChannel {
 public:
  // `capacity` is rounded up to a power of two; the ring holds at most
  // `capacity` messages before TryPush reports full (sender backpressure).
  explicit SpscChannel(uint32_t capacity) {
    TM2C_CHECK_MSG(capacity >= 1 && capacity <= kMaxCapacity,
                   "SpscChannel capacity must be in [1, 2^24]");
    uint32_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_ = std::make_unique<Message[]>(cap);
  }

  // Sanity bound: 2^24 slots is already ~1 GB of Message headers per ring;
  // anything larger is a configuration bug, and unbounded values would
  // overflow the power-of-two rounding.
  static constexpr uint32_t kMaxCapacity = 1u << 24;

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  // Producer side. Moves `msg` into the ring and returns true, or returns
  // false (leaving `msg` intact) when the ring is full.
  bool TryPush(Message& msg) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) {
        return false;  // genuinely full
      }
    }
    slots_[tail & mask_] = std::move(msg);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Moves the oldest message into `out` and returns true,
  // or returns false when the ring is empty.
  bool TryPop(Message* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return false;  // genuinely empty
      }
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer-side cheap emptiness probe: false positives are impossible,
  // a concurrent producer may make a true result stale immediately.
  bool EmptyHint() const {
    return head_.load(std::memory_order_relaxed) == tail_.load(std::memory_order_acquire);
  }

  // Racy occupancy snapshot (either side). Only advisory — the admission
  // controller sums it across a core's incoming rings as a load signal; a
  // concurrent push/pop skews it by at most the in-flight operations.
  size_t ApproxSize() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  uint32_t capacity() const { return mask_ + 1; }

 private:
  // Producer line: the push index plus the producer's stale view of head.
  alignas(kCacheLineBytes) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;
  // Consumer line: the pop index plus the consumer's stale view of tail.
  alignas(kCacheLineBytes) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;

  alignas(kCacheLineBytes) uint32_t mask_ = 0;
  std::unique_ptr<Message[]> slots_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_RUNTIME_SPSC_CHANNEL_H_

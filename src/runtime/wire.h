// Wire serialization for the process backend.
//
// The in-memory Message struct crosses a socket as one length-prefixed,
// CRC-framed byte frame, reusing the WAL framing discipline (and its CRC-32)
// from src/durability/wal.cc:
//
//   [u32 payload_len_bytes][u32 crc32(payload)][payload: len/8 u64 words]
//
// The payload encodes the message as little-endian words:
//
//   word 0   (destination core << 32) | message type
//   word 1   source core
//   word 2-5 w0..w3
//   word 6   extra word count n
//   word 7.. the n extra words
//
// so every frame is self-describing and at least kWireMinFrameBytes long.
// The destination rides inside the payload because one socket carries
// traffic for many cores: the parent-side router demultiplexes replies to
// per-core inboxes, and the child-side server uses kWireHostDst to address
// frames at the host itself (trace + stats events, never a core inbox).
//
// Decoding is strict: a frame is either accepted whole or rejected whole
// (no partial apply). A short read is kNeedMore (wait for more bytes); a
// CRC mismatch, impossible length, unknown message type or inconsistent
// extra count is kCorrupt and poisons the stream — after real corruption
// frame boundaries can no longer be trusted, so the connection must be
// dropped, exactly like a WAL scan stopping at its first bad frame.
#ifndef TM2C_SRC_RUNTIME_WIRE_H_
#define TM2C_SRC_RUNTIME_WIRE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/runtime/message.h"

namespace tm2c {

// Destination value addressing the host process itself (trace/stats frames
// from a partition server) rather than a core inbox.
constexpr uint32_t kWireHostDst = 0xFFFFFFFFu;

// Framing overhead (length + CRC) and the fixed 7-word payload prologue.
constexpr uint64_t kWireFrameOverheadBytes = 8;
constexpr uint64_t kWireFixedPayloadWords = 7;
constexpr uint64_t kWireMinFrameBytes =
    kWireFrameOverheadBytes + kWireFixedPayloadWords * 8;

// Hard cap on a frame's extra words. Generous (the largest real payload is
// a commit record's addr/value pairs) but bounded, so a corrupt length
// field cannot make the decoder buffer gigabytes before the CRC rejects it.
constexpr uint64_t kWireMaxExtraWords = 1 << 20;

// Last MsgType value a frame may carry; anything above is corruption.
constexpr uint8_t kWireMaxMsgType = static_cast<uint8_t>(MsgType::kHostStats);

// Appends the encoded frame for (dst, msg) to `out`.
void EncodeFrame(uint32_t dst, const Message& msg, std::vector<uint8_t>* out);

// Convenience: one message as its own byte vector.
std::vector<uint8_t> EncodeMessage(uint32_t dst, const Message& msg);

enum class WireDecodeStatus : uint8_t {
  kOk = 0,        // one frame decoded
  kNeedMore = 1,  // buffer holds only a frame prefix; feed more bytes
  kCorrupt = 2,   // framing violated; the stream is poisoned
};

// Streaming decoder: feed arbitrary byte chunks, pull whole messages.
// After the first kCorrupt every further TryNext returns kCorrupt — the
// caller is expected to drop the connection.
class WireDecoder {
 public:
  // Appends raw bytes read from the socket.
  void Feed(const uint8_t* data, uint64_t size);

  // Attempts to decode the next frame from the buffered bytes. On kOk the
  // destination and message are stored through the out-params and the
  // frame's bytes are consumed; on kNeedMore / kCorrupt nothing is.
  WireDecodeStatus TryNext(uint32_t* dst, Message* msg);

  bool corrupt() const { return corrupt_; }
  uint64_t buffered_bytes() const { return buffer_.size(); }
  uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  std::deque<uint8_t> buffer_;
  bool corrupt_ = false;
  uint64_t frames_decoded_ = 0;
};

// One-shot decode of a complete frame at the start of `bytes`. Returns the
// status; on kOk also stores the frame's total size in `*consumed`.
WireDecodeStatus DecodeFrame(const std::vector<uint8_t>& bytes, uint32_t* dst,
                             Message* msg, uint64_t* consumed);

}  // namespace tm2c

#endif  // TM2C_SRC_RUNTIME_WIRE_H_

// Discrete-event simulator backend of the runtime.
//
// One SimEngine actor per simulated core. Message send occupies the sender,
// crosses the modelled mesh, and is handed to the receiver which pays the
// receive + poll-scan cost on pickup; shared-memory accesses go through the
// memory-controller occupancy model. The whole system is single-threaded
// and deterministic under a fixed seed.
#ifndef TM2C_SRC_RUNTIME_SIM_SYSTEM_H_
#define TM2C_SRC_RUNTIME_SIM_SYSTEM_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/noc/latency.h"
#include "src/runtime/backend.h"
#include "src/runtime/core_env.h"
#include "src/sim/engine.h"

namespace tm2c {

struct SimSystemConfig {
  PlatformDesc platform;
  uint32_t num_cores = 48;
  uint32_t num_service = 24;
  DeployStrategy strategy = DeployStrategy::kDedicated;
  uint64_t shmem_bytes = 16ull << 20;
  uint64_t seed = 1;
  // Per-core clock offsets are drawn uniformly from [0, clock_skew_max_us]
  // (constant skew; no global clock exists on the SCC).
  double clock_skew_max_us = 50.0;
  // Optional per-core drift, uniform in [-ppm, +ppm]. Zero by default; the
  // Offset-Greedy skew ablation turns it up.
  double clock_drift_ppm = 0.0;
  // The per-payload-word messaging cost lives in
  // PlatformDesc::msg_payload_cycles_per_word (it is a platform property,
  // charged by the latency model on both ends of a message).

  // Schedule-exploration knobs (src/check/): same-instant tie shuffling in
  // the engine, per-message delay jitter, stalled/duplicated inbox polls.
  // Off by default; the chaos harness turns them on per seed. Per-pair FIFO
  // delivery is preserved under every setting (jittered arrivals are
  // clamped to stay behind the pair's previous arrival).
  ChaosConfig chaos;
};

class SimSystem : public SystemBackend {
 public:
  explicit SimSystem(SimSystemConfig config);
  ~SimSystem() override;

  SimSystem(const SimSystem&) = delete;
  SimSystem& operator=(const SimSystem&) = delete;

  // Installs the program run by `core`. Must be called for every core
  // before Run (cores without a main simply finish immediately).
  void SetCoreMain(uint32_t core, CoreMain main) override;

  // Runs the simulation until `until` (simulated time) or until all cores
  // finish. Returns the final simulated time.
  SimTime Run(SimTime until = UINT64_MAX) override;

  CoreEnv& env(uint32_t core) override;
  SimEngine& engine() { return engine_; }
  const DeploymentPlan& deployment() const override { return plan_; }
  const LatencyModel& latency() const { return latency_; }
  SharedMemory& shmem() override { return *shmem_; }
  ShmAllocator& allocator() override { return *allocator_; }
  const SimSystemConfig& config() const { return config_; }
  bool is_simulated() const override { return true; }

 private:
  class Core;  // CoreEnv implementation
  friend class Core;

  void BarrierWait(Core* core);

  SimSystemConfig config_;
  DeploymentPlan plan_;
  LatencyModel latency_;
  SimEngine engine_;
  std::unique_ptr<SharedMemory> shmem_;
  std::unique_ptr<ShmAllocator> allocator_;
  std::unique_ptr<MemControllerModel> mc_model_;
  std::vector<std::unique_ptr<Core>> cores_;
  bool started_actors_ = false;

  // Chaos bookkeeping: last scheduled arrival per (src, dst) pair, so
  // jittered wire delays can never reorder a pair's messages (indexed
  // src * num_cores + dst; only maintained when chaos is active).
  std::vector<SimTime> pair_last_arrival_;

  // Centralized zero-cost barrier.
  uint32_t barrier_waiting_ = 0;
  uint64_t barrier_generation_ = 0;
  std::vector<uint32_t> barrier_blocked_actors_;
};

}  // namespace tm2c

#endif  // TM2C_SRC_RUNTIME_SIM_SYSTEM_H_

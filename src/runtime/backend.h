// Backend selection: the deterministic simulator, real OS threads, or
// partition server processes.
//
// The runtime backends (SimSystem, ThreadSystem, ProcessSystem) expose the
// same surface —
// install per-core mains, run them, and hand out CoreEnv/shared-memory
// handles — so everything above the transport (TmSystem, the benches, the
// examples) can be written once and pointed at either. SystemBackend is
// that surface. The simulator reports simulated time; the thread backend
// reports wall-clock time, which is what makes native bench rows directly
// comparable to real hardware.
#ifndef TM2C_SRC_RUNTIME_BACKEND_H_
#define TM2C_SRC_RUNTIME_BACKEND_H_

#include <string>

#include "src/common/check.h"
#include "src/runtime/core_env.h"

namespace tm2c {

enum class BackendKind : uint8_t {
  kSim = 0,        // discrete-event simulator: deterministic, modelled time
  kThreads = 1,    // one OS thread per core: real concurrency, wall-clock time
  kProcesses = 2,  // partition servers as forked processes over sockets
};

inline const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kSim:
      return "sim";
    case BackendKind::kThreads:
      return "threads";
    case BackendKind::kProcesses:
      return "processes";
  }
  return "?";
}

inline BackendKind BackendKindByName(const std::string& name) {
  if (name.empty() || name == "sim") {
    return BackendKind::kSim;
  }
  if (name == "threads") {
    return BackendKind::kThreads;
  }
  if (name == "processes") {
    return BackendKind::kProcesses;
  }
  TM2C_FATAL("unknown backend (expected sim|threads|processes)");
}

class SystemBackend {
 public:
  virtual ~SystemBackend() = default;

  // Installs the program run by `core`; must happen before Run.
  virtual void SetCoreMain(uint32_t core, CoreMain main) = 0;

  // Runs every core's main. The simulator stops at `until` (simulated
  // time) or when all events drain; the thread backend runs every main to
  // completion and ignores `until` (mains bound their own work, service
  // loops exit on kShutdown). Returns the elapsed time — simulated or
  // wall-clock — in picoseconds.
  virtual SimTime Run(SimTime until) = 0;

  // Delivers kShutdown to `core` from outside any core context (the thread
  // backend's way of ending a blocked service loop). The simulator has no
  // use for it: a core blocked in Recv with no events left simply ends the
  // run.
  virtual void RequestShutdown(uint32_t core) { (void)core; }

  virtual CoreEnv& env(uint32_t core) = 0;
  virtual const DeploymentPlan& deployment() const = 0;
  virtual SharedMemory& shmem() = 0;
  virtual ShmAllocator& allocator() = 0;

  // True for the simulator: time is modelled, runs are deterministic, and
  // one host thread runs everything.
  virtual bool is_simulated() const = 0;
};

}  // namespace tm2c

#endif  // TM2C_SRC_RUNTIME_BACKEND_H_

#include "src/runtime/wire.h"

#include <cstring>

#include "src/common/check.h"
#include "src/durability/wal.h"  // Crc32: the shared framing discipline

namespace tm2c {
namespace {

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = v << 8 | p[i];
  }
  return v;
}

// Decodes a complete, length-verified frame body. Returns false on any
// semantic violation (CRC, type, extra-count consistency).
bool DecodePayload(const uint8_t* frame, uint64_t payload_len, uint32_t* dst,
                   Message* msg) {
  const uint8_t* payload = frame + kWireFrameOverheadBytes;
  if (Crc32(payload, payload_len) != LoadU32(frame + 4)) {
    return false;
  }
  const uint64_t words = payload_len / 8;
  const uint64_t w0 = LoadU64(payload);
  const uint64_t type_word = w0 & 0xFFFFFFFFull;
  if (type_word > kWireMaxMsgType) {
    return false;
  }
  const uint64_t n = LoadU64(payload + 6 * 8);
  if (n != words - kWireFixedPayloadWords) {
    return false;
  }
  const uint64_t src = LoadU64(payload + 8);
  if (src > 0xFFFFFFFFull) {
    return false;
  }
  *dst = static_cast<uint32_t>(w0 >> 32);
  msg->type = static_cast<MsgType>(type_word);
  msg->src = static_cast<uint32_t>(src);
  msg->w0 = LoadU64(payload + 2 * 8);
  msg->w1 = LoadU64(payload + 3 * 8);
  msg->w2 = LoadU64(payload + 4 * 8);
  msg->w3 = LoadU64(payload + 5 * 8);
  msg->extra.clear();
  msg->extra.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    msg->extra.push_back(LoadU64(payload + (kWireFixedPayloadWords + i) * 8));
  }
  return true;
}

}  // namespace

void EncodeFrame(uint32_t dst, const Message& msg, std::vector<uint8_t>* out) {
  TM2C_CHECK_MSG(msg.extra.size() <= kWireMaxExtraWords,
                 "wire: message extra payload exceeds the frame cap");
  const uint64_t words = kWireFixedPayloadWords + msg.extra.size();
  const uint64_t payload_len = words * 8;
  const uint64_t start = out->size();
  out->reserve(start + kWireFrameOverheadBytes + payload_len);
  AppendU32(out, static_cast<uint32_t>(payload_len));
  AppendU32(out, 0);  // CRC patched below
  AppendU64(out, static_cast<uint64_t>(dst) << 32 |
                     static_cast<uint64_t>(static_cast<uint8_t>(msg.type)));
  AppendU64(out, msg.src);
  AppendU64(out, msg.w0);
  AppendU64(out, msg.w1);
  AppendU64(out, msg.w2);
  AppendU64(out, msg.w3);
  AppendU64(out, msg.extra.size());
  for (const uint64_t w : msg.extra) {
    AppendU64(out, w);
  }
  const uint32_t crc =
      Crc32(out->data() + start + kWireFrameOverheadBytes, payload_len);
  (*out)[start + 4] = static_cast<uint8_t>(crc);
  (*out)[start + 5] = static_cast<uint8_t>(crc >> 8);
  (*out)[start + 6] = static_cast<uint8_t>(crc >> 16);
  (*out)[start + 7] = static_cast<uint8_t>(crc >> 24);
}

std::vector<uint8_t> EncodeMessage(uint32_t dst, const Message& msg) {
  std::vector<uint8_t> out;
  EncodeFrame(dst, msg, &out);
  return out;
}

WireDecodeStatus DecodeFrame(const std::vector<uint8_t>& bytes, uint32_t* dst,
                             Message* msg, uint64_t* consumed) {
  if (bytes.size() < kWireFrameOverheadBytes) {
    return WireDecodeStatus::kNeedMore;
  }
  const uint64_t payload_len = LoadU32(bytes.data());
  if (payload_len < kWireFixedPayloadWords * 8 || payload_len % 8 != 0 ||
      payload_len / 8 > kWireFixedPayloadWords + kWireMaxExtraWords) {
    return WireDecodeStatus::kCorrupt;
  }
  if (bytes.size() < kWireFrameOverheadBytes + payload_len) {
    return WireDecodeStatus::kNeedMore;
  }
  if (!DecodePayload(bytes.data(), payload_len, dst, msg)) {
    return WireDecodeStatus::kCorrupt;
  }
  *consumed = kWireFrameOverheadBytes + payload_len;
  return WireDecodeStatus::kOk;
}

void WireDecoder::Feed(const uint8_t* data, uint64_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

WireDecodeStatus WireDecoder::TryNext(uint32_t* dst, Message* msg) {
  if (corrupt_) {
    return WireDecodeStatus::kCorrupt;
  }
  if (buffer_.size() < kWireFrameOverheadBytes) {
    return WireDecodeStatus::kNeedMore;
  }
  // The deque is contiguous per use here only via copy: frames are small,
  // and correctness beats zero-copy for a test-anchored transport.
  uint8_t header[kWireFrameOverheadBytes];
  for (uint64_t i = 0; i < kWireFrameOverheadBytes; ++i) {
    header[i] = buffer_[i];
  }
  const uint64_t payload_len = LoadU32(header);
  if (payload_len < kWireFixedPayloadWords * 8 || payload_len % 8 != 0 ||
      payload_len / 8 > kWireFixedPayloadWords + kWireMaxExtraWords) {
    corrupt_ = true;
    return WireDecodeStatus::kCorrupt;
  }
  const uint64_t frame_bytes = kWireFrameOverheadBytes + payload_len;
  if (buffer_.size() < frame_bytes) {
    return WireDecodeStatus::kNeedMore;
  }
  std::vector<uint8_t> frame(buffer_.begin(),
                             buffer_.begin() + static_cast<long>(frame_bytes));
  if (!DecodePayload(frame.data(), payload_len, dst, msg)) {
    corrupt_ = true;
    return WireDecodeStatus::kCorrupt;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(frame_bytes));
  ++frames_decoded_;
  return WireDecodeStatus::kOk;
}

}  // namespace tm2c

#include "src/runtime/process_system.h"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"

namespace tm2c {
namespace {

SimTime HostNowPs() {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count();
  return static_cast<SimTime>(ns) * kPicosPerNano;
}

// Same nanosecond-scale busy wait as the thread backend, always in its
// oversubscribed flavour: app threads, router threads and the partition
// server processes together far exceed the host CPUs.
void ComputeSpin(const PlatformDesc& platform, uint64_t core_cycles) {
  const SimTime deadline = HostNowPs() + platform.CoreCyclesToPs(core_cycles);
  const SimTime spin_until = HostNowPs() + kPicosPerMicro;
  while (HostNowPs() < deadline) {
    if (HostNowPs() >= spin_until) {
      std::this_thread::yield();
    }
  }
}

// Streams a whole buffer into a socket. Failures (EPIPE against a killed
// server) are deliberately swallowed: every message that must survive a
// server death is tracked in the connection's outstanding queue, and the
// router's death protocol re-issues or refuses it explicitly.
void WriteAll(int fd, const std::vector<uint8_t>& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    off += static_cast<size_t>(n);
  }
}

void WriteFrame(int fd, uint32_t dst, const Message& msg) {
  std::vector<uint8_t> frame;
  EncodeFrame(dst, msg, &frame);
  WriteAll(fd, frame);
}

// True for request types the server answers with exactly one reply frame.
bool ExpectsReply(MsgType type) {
  switch (type) {
    case MsgType::kReadLockReq:
    case MsgType::kWriteLockReq:
    case MsgType::kBatchAcquire:
    case MsgType::kCommitLog:
    case MsgType::kEcho:
      return true;
    default:
      return false;
  }
}

// True for messages whose w1 is the sender's transaction epoch — the
// bookkeeping feeding the death fence.
bool CarriesEpoch(MsgType type) {
  switch (type) {
    case MsgType::kReadLockReq:
    case MsgType::kWriteLockReq:
    case MsgType::kBatchAcquire:
    case MsgType::kReadRelease:
    case MsgType::kWriteRelease:
    case MsgType::kReleaseAllReads:
    case MsgType::kReleaseAllWrites:
    case MsgType::kEarlyReadRelease:
    case MsgType::kCommitLog:
      return true;
    default:
      return false;
  }
}

}  // namespace

// Application core: a host thread with a mutex/condvar mailbox (the thread
// backend's kMutexMailbox transport). Messages to a service core leave
// through the partition's socket; messages to another app core (the
// privatization barrier tokens) land in its mailbox directly.
class ProcessSystem::AppCore : public CoreEnv {
 public:
  AppCore(ProcessSystem* sys, uint32_t id) : sys_(sys), id_(id) {}

  uint32_t core_id() const override { return id_; }
  const DeploymentPlan& plan() const override { return sys_->plan_; }
  const PlatformDesc& platform() const override { return sys_->config_.platform; }

  void Send(uint32_t dst, Message msg) override {
    TM2C_CHECK(dst < sys_->plan_.num_cores());
    msg.src = id_;
    if (sys_->plan_.IsService(dst)) {
      sys_->SendToPartition(id_, dst, std::move(msg));
      return;
    }
    sys_->DeliverToApp(dst, std::move(msg));
  }

  Message Recv() override {
    std::unique_lock<std::mutex> lock(inbox_mu_);
    inbox_cv_.wait(lock, [this]() { return !inbox_.empty(); });
    Message msg = std::move(inbox_.front());
    inbox_.pop_front();
    return msg;
  }

  bool TryRecv(Message* out) override {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    if (inbox_.empty()) {
      return false;
    }
    *out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  }

  size_t InboxDepth() const override {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    return inbox_.size();
  }

  SimTime LocalNow() const override { return HostNowPs(); }
  SimTime GlobalNow() const override { return HostNowPs(); }
  void Compute(uint64_t core_cycles) override { ComputeSpin(platform(), core_cycles); }

  uint64_t ShmemRead(uint64_t addr) override { return sys_->shmem_->LoadWord(addr); }
  void ShmemWrite(uint64_t addr, uint64_t value) override {
    sys_->shmem_->StoreWord(addr, value);
  }
  bool ShmemTestAndSet(uint64_t addr) override { return sys_->shmem_->CasWord(addr, 0, 1); }
  void ShmemBulkAccess(uint64_t /*addr*/, uint64_t /*bytes*/) override {}

  void Barrier() override {
    // Sense-reversing barrier over the app cores only: partition servers
    // never rendezvous (their loops are pure request/response), and the
    // dedicated deployment is the only one this backend supports.
    const uint64_t generation = sys_->barrier_generation_.load(std::memory_order_acquire);
    if (sys_->barrier_waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        sys_->plan_.num_app()) {
      sys_->barrier_waiting_.store(0, std::memory_order_relaxed);
      sys_->barrier_generation_.fetch_add(1, std::memory_order_release);
      return;
    }
    uint32_t rounds = 0;
    while (sys_->barrier_generation_.load(std::memory_order_acquire) == generation) {
      if (++rounds < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  SharedMemory& shmem() override { return *sys_->shmem_; }
  ShmAllocator& allocator() override { return *sys_->allocator_; }

  void MailboxPush(Message msg) {
    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      inbox_.push_back(std::move(msg));
    }
    inbox_cv_.notify_one();
  }

 private:
  ProcessSystem* sys_;
  uint32_t id_;
  std::deque<Message> inbox_;
  mutable std::mutex inbox_mu_;  // InboxDepth() is a const observer
  std::condition_variable inbox_cv_;
};

// Service core: lives in the forked partition server. Its inbox is the
// socket — frames are decoded on demand, replies and host-addressed trace
// frames are encoded straight back onto it. Constructed host-side before
// the fork so DtmService can bind its CoreEnv reference; only the child
// ever calls its methods.
class ProcessSystem::ServiceCore : public CoreEnv {
 public:
  ServiceCore(ProcessSystem* sys, uint32_t id) : sys_(sys), id_(id) {}

  void Activate(int fd) { fd_ = fd; }

  uint32_t core_id() const override { return id_; }
  const DeploymentPlan& plan() const override { return sys_->plan_; }
  const PlatformDesc& platform() const override { return sys_->config_.platform; }

  void Send(uint32_t dst, Message msg) override {
    if (dst != kWireHostDst) {
      TM2C_CHECK(dst < sys_->plan_.num_cores());
    }
    msg.src = id_;
    WriteFrame(fd_, dst, msg);
  }

  Message Recv() override {
    for (;;) {
      if (!inbox_.empty()) {
        Message msg = std::move(inbox_.front());
        inbox_.pop_front();
        return msg;
      }
      ReadMore(/*blocking=*/true);
    }
  }

  bool TryRecv(Message* out) override {
    if (inbox_.empty()) {
      ReadMore(/*blocking=*/false);
    }
    if (inbox_.empty()) {
      return false;
    }
    *out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  }

  // Decoded-but-unprocessed backlog. Advisory (like the thread backend's
  // racy ring snapshot): bytes still in the socket buffer are not counted.
  size_t InboxDepth() const override { return inbox_.size(); }

  SimTime LocalNow() const override { return HostNowPs(); }
  SimTime GlobalNow() const override { return HostNowPs(); }
  void Compute(uint64_t core_cycles) override { ComputeSpin(platform(), core_cycles); }

  uint64_t ShmemRead(uint64_t addr) override { return sys_->shmem_->LoadWord(addr); }
  void ShmemWrite(uint64_t addr, uint64_t value) override {
    sys_->shmem_->StoreWord(addr, value);
  }
  bool ShmemTestAndSet(uint64_t addr) override { return sys_->shmem_->CasWord(addr, 0, 1); }
  void ShmemBulkAccess(uint64_t /*addr*/, uint64_t /*bytes*/) override {}

  void Barrier() override { TM2C_FATAL("partition servers have no barrier"); }

  SharedMemory& shmem() override { return *sys_->shmem_; }
  ShmAllocator& allocator() override { return *sys_->allocator_; }

 private:
  void ReadMore(bool blocking) {
    uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), blocking ? 0 : MSG_DONTWAIT);
      if (n > 0) {
        decoder_.Feed(buf, static_cast<uint64_t>(n));
        break;
      }
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) && !blocking) {
        return;
      }
      // EOF or a hard error: the host is gone; an orphaned server has
      // nothing left to serve.
      ::_exit(0);
    }
    for (;;) {
      uint32_t dst = 0;
      Message msg;
      const WireDecodeStatus status = decoder_.TryNext(&dst, &msg);
      if (status == WireDecodeStatus::kNeedMore) {
        return;
      }
      TM2C_CHECK_MSG(status == WireDecodeStatus::kOk, "corrupt frame from the host");
      TM2C_CHECK_MSG(dst == id_, "frame routed to the wrong partition server");
      inbox_.push_back(std::move(msg));
    }
  }

  ProcessSystem* sys_;
  uint32_t id_;
  int fd_ = -1;
  WireDecoder decoder_;
  std::deque<Message> inbox_;
};

ProcessSystem::ProcessSystem(ProcessSystemConfig config)
    : config_(std::move(config)),
      plan_(config_.num_cores, config_.num_service, DeployStrategy::kDedicated) {
  TM2C_CHECK_MSG(!config_.run_dir.empty(), "the process backend needs run_dir for its sockets");
  shmem_ = std::make_unique<SharedMemory>(config_.shmem_bytes, /*interprocess=*/true);
  allocator_ = std::make_unique<ShmAllocator>(shmem_.get(), Topology(config_.platform));
  mains_.resize(config_.num_cores);
  app_cores_.resize(config_.num_cores);
  service_cores_.resize(config_.num_cores);
  for (uint32_t c = 0; c < config_.num_cores; ++c) {
    if (plan_.IsService(c)) {
      service_cores_[c] = std::make_unique<ServiceCore>(this, c);
    } else {
      app_cores_[c] = std::make_unique<AppCore>(this, c);
    }
  }
  for (uint32_t p = 0; p < config_.num_service; ++p) {
    conns_.push_back(std::make_unique<Connection>());
  }
}

ProcessSystem::~ProcessSystem() {
  // Normal runs finish everything inside Run(); this is the abandoned-run
  // path (a fatal test failure between construction and Run).
  for (auto& conn : conns_) {
    if (conn->router.joinable()) {
      conn->router.join();
    }
    for (Server& s : conn->servers) {
      if (s.control_wr >= 0) {
        const char quit = 'q';
        (void)!::write(s.control_wr, &quit, 1);
        ::close(s.control_wr);
        s.control_wr = -1;
      }
      Reap(&s);
    }
    if (conn->fd >= 0) {
      ::close(conn->fd);
    }
  }
}

void ProcessSystem::SetCoreMain(uint32_t core, CoreMain main) {
  TM2C_CHECK(core < mains_.size());
  mains_[core] = std::move(main);
}

CoreEnv& ProcessSystem::env(uint32_t core) {
  TM2C_CHECK(core < config_.num_cores);
  if (app_cores_[core] != nullptr) {
    return *app_cores_[core];
  }
  return *service_cores_[core];
}

std::string ProcessSystem::SocketPath(uint32_t partition, uint32_t generation) const {
  return config_.run_dir + "/part" + std::to_string(partition) + ".g" +
         std::to_string(generation) + ".sock";
}

ProcessSystem::Server ProcessSystem::ForkServer(uint32_t partition, uint32_t generation) {
  int pipe_fds[2];
  TM2C_CHECK(::pipe(pipe_fds) == 0);
  const pid_t pid = ::fork();
  TM2C_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    ::close(pipe_fds[1]);
    ChildMain(partition, generation, pipe_fds[0]);
  }
  ::close(pipe_fds[0]);
  Server server;
  server.pid = pid;
  server.control_wr = pipe_fds[1];
  return server;
}

void ProcessSystem::ChildMain(uint32_t partition, uint32_t generation, int control_rd) {
  // In the forked server. Only the forking thread exists here; the parent's
  // mutexes, threads and mailboxes are inert copy-on-write state. The
  // shared-memory words are the one real bridge back to the host.
  ::signal(SIGPIPE, SIG_IGN);
  char cmd = 0;
  ssize_t n;
  do {
    n = ::read(control_rd, &cmd, 1);
  } while (n < 0 && errno == EINTR);
  if (n <= 0 || cmd == 'q') {
    ::_exit(0);  // unused standby: the run ended without needing us
  }
  ::close(control_rd);

  const std::string path = SocketPath(partition, generation);
  ::unlink(path.c_str());
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (listen_fd < 0 || path.size() >= sizeof(addr.sun_path)) {
    ::_exit(3);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd, 1) != 0) {
    ::_exit(3);
  }
  int conn_fd;
  do {
    conn_fd = ::accept(listen_fd, nullptr, nullptr);
  } while (conn_fd < 0 && errno == EINTR);
  if (conn_fd < 0) {
    ::_exit(3);
  }
  ::close(listen_fd);

  const uint32_t core = plan_.ServiceCore(partition);
  ServiceCore& env = *service_cores_[core];
  env.Activate(conn_fd);
  if (child_start_) {
    child_start_(partition, /*is_restart=*/cmd == 'r', env);
  }
  if (mains_[core]) {
    mains_[core](env);
  }
  if (child_exit_report_) {
    env.Send(kWireHostDst, child_exit_report_(partition));
  }
  ::_exit(0);
}

SimTime ProcessSystem::Run(SimTime /*until*/) {
  TM2C_CHECK_MSG(!started_, "a ProcessSystem runs once");
  started_ = true;
  const SimTime start = HostNowPs();
  // The parent writes into sockets whose server may be freshly killed;
  // losing those bytes is handled explicitly, dying on SIGPIPE is not.
  ::signal(SIGPIPE, SIG_IGN);
  ::mkdir(config_.run_dir.c_str(), 0755);  // EEXIST is fine

  if (pre_fork_) {
    pre_fork_();
  }
  // Fork every server — one primary plus one cold standby per partition —
  // while the host is still single-threaded, so the children inherit a
  // quiescent copy of the pre-run state.
  for (uint32_t p = 0; p < config_.num_service; ++p) {
    conns_[p]->servers.push_back(ForkServer(p, 0));
    conns_[p]->servers.push_back(ForkServer(p, 1));
  }
  for (uint32_t p = 0; p < config_.num_service; ++p) {
    const char go = 'p';
    ssize_t n;
    do {
      n = ::write(conns_[p]->servers[0].control_wr, &go, 1);
    } while (n < 0 && errno == EINTR);
    TM2C_CHECK(n == 1);
  }
  for (uint32_t p = 0; p < config_.num_service; ++p) {
    conns_[p]->fd = ConnectWithRetry(SocketPath(p, 0));
    conns_[p]->up = true;
  }
  for (uint32_t p = 0; p < config_.num_service; ++p) {
    conns_[p]->router = std::thread([this, p]() { RouterLoop(p); });
  }

  std::vector<std::thread> app_threads;
  app_threads.reserve(plan_.num_app());
  for (uint32_t core : plan_.app_cores()) {
    app_threads.emplace_back([this, core]() {
      if (mains_[core]) {
        mains_[core](*app_cores_[core]);
      }
    });
  }
  for (auto& t : app_threads) {
    t.join();
  }
  // The last app main's completion hook sent the shutdowns; each router
  // exits at its server's clean EOF.
  for (auto& conn : conns_) {
    conn->router.join();
  }
  // Dismiss the standbys that were never activated, reap every child.
  for (auto& conn : conns_) {
    for (Server& s : conn->servers) {
      if (s.control_wr >= 0) {
        const char quit = 'q';
        (void)!::write(s.control_wr, &quit, 1);
        ::close(s.control_wr);
        s.control_wr = -1;
      }
      Reap(&s);
    }
  }
  return HostNowPs() - start;
}

void ProcessSystem::RequestShutdown(uint32_t core) {
  TM2C_CHECK(core < config_.num_cores);
  Message msg;
  msg.type = MsgType::kShutdown;
  msg.src = core;
  if (plan_.IsApp(core)) {
    DeliverToApp(core, std::move(msg));
    return;
  }
  Connection& c = *conns_[plan_.PartitionOf(core)];
  std::unique_lock<std::mutex> lock(c.mu);
  while (!c.up) {
    c.cv.wait(lock);  // a restart in flight finishes first
  }
  c.shutdown_sent = true;
  WriteFrame(c.fd, core, msg);
}

void ProcessSystem::KillPartition(uint32_t partition) {
  TM2C_CHECK(partition < conns_.size());
  Connection& c = *conns_[partition];
  std::unique_lock<std::mutex> lock(c.mu);
  while (!c.up) {
    c.cv.wait(lock);  // serialize with an in-flight restart
  }
  TM2C_CHECK_MSG(!c.shutdown_sent, "KillPartition after shutdown");
  const Server& server = c.servers[c.generation];
  TM2C_CHECK(!server.reaped);
  ::kill(server.pid, SIGKILL);
  // The router owns the rest: it sees EOF after draining everything the
  // server managed to write, then runs the death protocol.
}

uint32_t ProcessSystem::restarts(uint32_t partition) {
  Connection& c = *conns_[partition];
  std::lock_guard<std::mutex> lock(c.mu);
  return c.restarts;
}

std::vector<uint64_t> ProcessSystem::host_stats(uint32_t partition) {
  Connection& c = *conns_[partition];
  std::lock_guard<std::mutex> lock(c.mu);
  return c.host_stats;
}

void ProcessSystem::SendToPartition(uint32_t src_core, uint32_t dst_core, Message msg) {
  Connection& c = *conns_[plan_.PartitionOf(dst_core)];
  std::unique_lock<std::mutex> lock(c.mu);
  if (CarriesEpoch(msg.type)) {
    uint64_t& last = c.last_epoch[src_core];
    last = std::max(last, msg.w1);
  }
  while (!c.up) {
    c.cv.wait(lock);  // the partition is restarting; all traffic stalls
  }
  if (ExpectsReply(msg.type)) {
    c.outstanding.push_back(Outstanding{src_core, msg});
  }
  WriteFrame(c.fd, dst_core, msg);
}

void ProcessSystem::DeliverToApp(uint32_t core, Message msg) {
  TM2C_CHECK(core < app_cores_.size() && app_cores_[core] != nullptr);
  app_cores_[core]->MailboxPush(std::move(msg));
}

void ProcessSystem::RouterLoop(uint32_t partition) {
  Connection& c = *conns_[partition];
  WireDecoder decoder;
  std::vector<uint8_t> buf(1 << 16);
  for (;;) {
    const ssize_t n = ::recv(c.fd, buf.data(), buf.size(), 0);
    if (n > 0) {
      decoder.Feed(buf.data(), static_cast<uint64_t>(n));
      DrainFrames(partition, &decoder);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    // EOF: the server process is gone, and everything it wrote before
    // dying has been drained above (a Unix socket delivers queued bytes
    // before reporting the close).
    bool clean;
    {
      std::lock_guard<std::mutex> lock(c.mu);
      clean = c.shutdown_sent;
    }
    if (clean) {
      std::lock_guard<std::mutex> lock(c.mu);
      TM2C_CHECK_MSG(c.outstanding.empty(), "partition server exited with requests pending");
      ::close(c.fd);
      c.fd = -1;
      c.up = false;
      Reap(&c.servers[c.generation]);
      return;
    }
    RestartPartition(partition);
    decoder = WireDecoder();  // the dead stream's partial tail dies with it
  }
}

void ProcessSystem::DrainFrames(uint32_t partition, WireDecoder* decoder) {
  Connection& c = *conns_[partition];
  for (;;) {
    uint32_t dst = 0;
    Message msg;
    const WireDecodeStatus status = decoder->TryNext(&dst, &msg);
    if (status == WireDecodeStatus::kNeedMore) {
      return;
    }
    TM2C_CHECK_MSG(status == WireDecodeStatus::kOk, "corrupt frame from partition server");
    if (dst == kWireHostDst) {
      if (msg.type == MsgType::kHostStats) {
        std::lock_guard<std::mutex> lock(c.mu);
        c.host_stats = msg.extra;
      } else if (host_frame_) {
        host_frame_(partition, msg);
      }
      continue;
    }
    RetireOutstanding(&c, dst, msg);
    DeliverToApp(dst, std::move(msg));
  }
}

void ProcessSystem::RetireOutstanding(Connection* c, uint32_t dst, const Message& msg) {
  switch (msg.type) {
    case MsgType::kLockGranted:
    case MsgType::kLockConflict:
    case MsgType::kBatchReply:
    case MsgType::kCommitLogAck:
    case MsgType::kEchoRsp:
      break;
    case MsgType::kAbortNotify:
    case MsgType::kOwnershipUpdate:
      return;  // unsolicited notifications answer nothing
    default:
      TM2C_FATAL("unexpected message type from a partition server");
  }
  std::lock_guard<std::mutex> lock(c->mu);
  for (auto it = c->outstanding.begin(); it != c->outstanding.end(); ++it) {
    if (it->src != dst) {
      continue;
    }
    const Message& req = it->request;
    bool match = false;
    switch (msg.type) {
      case MsgType::kLockGranted:
      case MsgType::kLockConflict:
        match = (req.type == MsgType::kReadLockReq || req.type == MsgType::kWriteLockReq) &&
                req.w0 == msg.w0;
        break;
      case MsgType::kBatchReply:
        match = req.type == MsgType::kBatchAcquire &&
                (req.w0 >> kBatchReqIdShift) == (msg.w3 >> kBatchReqIdShift);
        break;
      case MsgType::kCommitLogAck:
        match = req.type == MsgType::kCommitLog && req.w1 == msg.w1;
        break;
      case MsgType::kEchoRsp:
        match = req.type == MsgType::kEcho && req.w0 == msg.w0;
        break;
      default:
        break;
    }
    if (match) {
      c->outstanding.erase(it);
      return;
    }
  }
  TM2C_FATAL("partition server reply matches no outstanding request");
}

Message ProcessSystem::SynthesizeRefusal(uint32_t service_core, const Message& req) {
  Message rsp;
  rsp.src = service_core;
  switch (req.type) {
    case MsgType::kReadLockReq:
    case MsgType::kWriteLockReq:
      rsp.type = MsgType::kLockConflict;
      rsp.w0 = req.w0;
      rsp.w1 = req.w1;
      rsp.w2 = static_cast<uint64_t>(ConflictKind::kOverload);
      break;
    case MsgType::kBatchAcquire:
      rsp.type = MsgType::kBatchReply;
      rsp.w0 = 0;  // nothing granted
      rsp.w1 = req.w1;
      rsp.w2 = static_cast<uint64_t>(ConflictKind::kOverload);
      rsp.w3 = (req.w0 >> kBatchReqIdShift) << kBatchReqIdShift;  // id echoed, count 0
      break;
    case MsgType::kEcho:
      rsp.type = MsgType::kEchoRsp;
      rsp.w0 = req.w0;
      break;
    default:
      TM2C_FATAL("unexpected outstanding request type");
  }
  return rsp;
}

void ProcessSystem::RestartPartition(uint32_t partition) {
  Connection& c = *conns_[partition];
  const uint32_t service_core = plan_.ServiceCore(partition);
  std::unique_lock<std::mutex> lock(c.mu);
  c.up = false;
  ::close(c.fd);
  c.fd = -1;
  Reap(&c.servers[c.generation]);
  ++c.restarts;
  TM2C_CHECK_MSG(c.generation + 1 < c.servers.size(),
                 "partition server died twice (one cold standby per partition)");

  // The dead server's unanswered requests: commit records are retransmitted
  // to the successor below (they are the durability contract); acquisitions
  // are refused as kOverload — the runtime's uniform back-off-and-retry
  // path — because any lock they might have been granted died with the
  // server's lock table anyway.
  for (auto it = c.outstanding.begin(); it != c.outstanding.end();) {
    if (it->request.type == MsgType::kCommitLog) {
      ++it;
      continue;
    }
    DeliverToApp(it->src, SynthesizeRefusal(service_core, it->request));
    it = c.outstanding.erase(it);
  }

  // Death fence: every lock the dead server had granted is implicitly
  // revoked, so publish a revocation to every core that ever quoted an
  // epoch here — abort-status word first (catches transactions up to their
  // commit point, like a contention-manager revocation), kAbortNotify
  // second (wakes the ones parked in Recv). Stale epochs are harmless: the
  // status check compares for equality with the current attempt. Committers
  // already past their commit point ignore both; their retransmitted
  // kCommitLog completes the commit against the successor.
  for (const auto& [core, epoch] : c.last_epoch) {
    if (abort_status_base_ != ~uint64_t{0}) {
      shmem_->StoreWord(abort_status_base_ + core * kWordBytes, epoch);
    }
    Message fence;
    fence.type = MsgType::kAbortNotify;
    fence.src = service_core;
    fence.w1 = epoch;
    fence.w2 = static_cast<uint64_t>(ConflictKind::kOverload);
    DeliverToApp(core, std::move(fence));
  }

  // Activate the cold standby: it recovers the partition's WAL from the
  // backing file (truncating the torn tail) and serves a fresh socket
  // generation.
  ++c.generation;
  Server& standby = c.servers[c.generation];
  const char restart = 'r';
  ssize_t n;
  do {
    n = ::write(standby.control_wr, &restart, 1);
  } while (n < 0 && errno == EINTR);
  TM2C_CHECK(n == 1);
  c.fd = ConnectWithRetry(SocketPath(partition, c.generation));

  // Retransmit the in-doubt commit records, oldest first, before opening
  // the gate to new traffic: the successor re-logs each one (or acks it
  // straight from the recovered prefix if the record survived the crash).
  for (const Outstanding& o : c.outstanding) {
    Message req = o.request;
    req.src = o.src;
    WriteFrame(c.fd, service_core, req);
  }
  c.up = true;
  lock.unlock();
  c.cv.notify_all();
}

int ProcessSystem::ConnectWithRetry(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  TM2C_CHECK_MSG(path.size() < sizeof(addr.sun_path), "socket path too long for sun_path");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (uint32_t attempt = 0; attempt < config_.connect_attempts; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    TM2C_CHECK(fd >= 0);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(config_.connect_retry_ms));
  }
  TM2C_FATAL("partition server socket never came up");
}

void ProcessSystem::Reap(Server* server) {
  if (server->reaped || server->pid < 0) {
    return;
  }
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(server->pid, &status, 0);
  } while (r < 0 && errno == EINTR);
  server->reaped = true;
}

}  // namespace tm2c

// Deployment plan: which cores run the DTM service and which run the
// application.
//
// TM2C supports two strategies (Section 3.1):
//  - kDedicated: disjoint core sets; service cores run only the DS-Lock/CM
//    loop, application cores run only transactions. Service cores are
//    spread across the mesh (every k-th core) so service traffic does not
//    concentrate in one mesh region.
//  - kMultitasked: every core hosts both an application task and a service
//    task, cooperatively scheduled (libtask-style); the service task runs
//    only when the application task yields, which is the timing dependency
//    of Figure 2.
#ifndef TM2C_SRC_RUNTIME_DEPLOYMENT_H_
#define TM2C_SRC_RUNTIME_DEPLOYMENT_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"

namespace tm2c {

enum class DeployStrategy : uint8_t {
  kDedicated = 0,
  kMultitasked = 1,
};

class DeploymentPlan {
 public:
  // kDedicated: `num_service` of the `num_cores` cores are service cores.
  // kMultitasked: every core plays both roles; num_service is ignored and
  // the DTM partition space equals num_cores.
  DeploymentPlan(uint32_t num_cores, uint32_t num_service, DeployStrategy strategy)
      : num_cores_(num_cores), strategy_(strategy) {
    TM2C_CHECK(num_cores >= 1);
    if (strategy == DeployStrategy::kMultitasked) {
      num_service_ = num_cores;
      for (uint32_t c = 0; c < num_cores; ++c) {
        service_cores_.push_back(c);
        app_cores_.push_back(c);
        service_index_.push_back(c);
      }
      return;
    }
    TM2C_CHECK_MSG(num_service >= 1 && num_service < num_cores,
                   "dedicated deployment needs 1 <= num_service < num_cores");
    num_service_ = num_service;
    service_index_.assign(num_cores, UINT32_MAX);
    // Spread service cores evenly across the core id range (and thus across
    // the mesh): core floor(i * num_cores / num_service) is the i-th
    // service core.
    std::vector<bool> is_service(num_cores, false);
    for (uint32_t i = 0; i < num_service; ++i) {
      const uint32_t c = static_cast<uint32_t>(
          (static_cast<uint64_t>(i) * num_cores) / num_service);
      is_service[c] = true;
    }
    for (uint32_t c = 0; c < num_cores; ++c) {
      if (is_service[c]) {
        service_index_[c] = static_cast<uint32_t>(service_cores_.size());
        service_cores_.push_back(c);
      } else {
        app_cores_.push_back(c);
      }
    }
    TM2C_CHECK(service_cores_.size() == num_service);
  }

  uint32_t num_cores() const { return num_cores_; }
  uint32_t num_service() const { return num_service_; }
  uint32_t num_app() const { return static_cast<uint32_t>(app_cores_.size()); }
  DeployStrategy strategy() const { return strategy_; }

  bool IsService(uint32_t core) const {
    return strategy_ == DeployStrategy::kMultitasked || service_index_[core] != UINT32_MAX;
  }
  bool IsApp(uint32_t core) const {
    return strategy_ == DeployStrategy::kMultitasked || service_index_[core] == UINT32_MAX;
  }

  const std::vector<uint32_t>& service_cores() const { return service_cores_; }
  const std::vector<uint32_t>& app_cores() const { return app_cores_; }

  // Core id of the i-th DTM partition owner.
  uint32_t ServiceCore(uint32_t partition) const {
    TM2C_DCHECK(partition < service_cores_.size());
    return service_cores_[partition];
  }

  // Partition index served by a service core.
  uint32_t PartitionOf(uint32_t service_core) const {
    if (strategy_ == DeployStrategy::kMultitasked) {
      return service_core;
    }
    TM2C_DCHECK(service_index_[service_core] != UINT32_MAX);
    return service_index_[service_core];
  }

  // How many peers each role must poll for incoming messages: a service
  // core polls every app core; an app core polls every service core. Under
  // multitasking every core polls every other core.
  uint32_t PolledPeersOfService() const {
    return strategy_ == DeployStrategy::kMultitasked ? num_cores_ - 1 : num_app();
  }
  uint32_t PolledPeersOfApp() const {
    return strategy_ == DeployStrategy::kMultitasked ? num_cores_ - 1 : num_service_;
  }
  uint32_t PolledPeers(uint32_t receiver_core) const {
    if (strategy_ == DeployStrategy::kMultitasked) {
      return num_cores_ - 1;
    }
    return IsService(receiver_core) ? PolledPeersOfService() : PolledPeersOfApp();
  }

 private:
  uint32_t num_cores_;
  uint32_t num_service_ = 0;
  DeployStrategy strategy_;
  std::vector<uint32_t> service_cores_;
  std::vector<uint32_t> app_cores_;
  std::vector<uint32_t> service_index_;  // core -> partition or UINT32_MAX
};

}  // namespace tm2c

#endif  // TM2C_SRC_RUNTIME_DEPLOYMENT_H_

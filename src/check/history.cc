#include "src/check/history.h"

#include "src/common/check.h"
#include "src/common/json.h"

namespace tm2c {

std::string History::Tx::Name() const {
  return "c" + std::to_string(core) + "/e" + std::to_string(epoch & 0xffffffffu);
}

History::Tx* History::OpenTx(uint32_t core) {
  auto it = open_.find(core);
  TM2C_CHECK_MSG(it != open_.end(), "history event for a core with no open attempt");
  return &txs_[it->second];
}

void History::OnTxBegin(uint32_t core, uint64_t epoch, SimTime now) {
  // A new attempt may begin while the previous one is still open only if
  // the previous outcome was never reported (should not happen: AbortSelf
  // and TxCommit both report). Keep the check strict.
  TM2C_CHECK_MSG(open_.find(core) == open_.end(), "attempt begun before the previous one ended");
  Tx tx;
  tx.core = core;
  tx.epoch = epoch;
  tx.begin_time = now;
  open_[core] = txs_.size();
  txs_.push_back(std::move(tx));
}

void History::OnTxRead(uint32_t core, uint64_t addr, uint64_t value) {
  OpenTx(core)->reads.push_back(Read{addr, value, NextSeq()});
}

void History::OnTxPersist(uint32_t core, uint64_t addr, uint64_t value) {
  OpenTx(core)->writes.push_back(Write{addr, value, NextSeq()});
}

void History::OnTxCommit(uint32_t core, SimTime now) {
  Tx* tx = OpenTx(core);
  tx->committed = true;
  tx->finished = true;
  tx->end_seq = NextSeq();
  tx->end_time = now;
  open_.erase(core);
}

void History::OnTxAbort(uint32_t core, SimTime now, ConflictKind reason) {
  Tx* tx = OpenTx(core);
  tx->committed = false;
  tx->finished = true;
  tx->end_seq = NextSeq();
  tx->abort_reason = reason;
  tx->end_time = now;
  open_.erase(core);
}

void History::OnRevocation(uint32_t service_core, uint32_t victim_core, uint64_t victim_epoch,
                           ConflictKind kind) {
  revocations_.push_back(Revocation{NextSeq(), service_core, victim_core, victim_epoch, kind});
}

namespace {
// Request ids are per-runtime counters, so the open-acquire key must carry
// the core too. Ids stay far below 2^48 in any bounded run.
uint64_t AcquireKey(uint32_t core, uint64_t request_id) {
  return (static_cast<uint64_t>(core) << 48) | request_id;
}
}  // namespace

void History::OnAcquireIssue(uint32_t core, uint64_t request_id, uint32_t node, uint32_t n,
                             bool is_write) {
  Acquire acq;
  acq.issue_seq = NextSeq();
  acq.core = core;
  acq.request_id = request_id;
  acq.node = node;
  acq.n = n;
  acq.is_write = is_write;
  const bool inserted = open_acquires_.emplace(AcquireKey(core, request_id), acquires_.size())
                            .second;
  TM2C_CHECK_MSG(inserted, "acquire request id reissued while still outstanding");
  acquires_.push_back(acq);
}

void History::OnAcquireComplete(uint32_t core, uint64_t request_id, uint32_t granted,
                                ConflictKind kind) {
  auto it = open_acquires_.find(AcquireKey(core, request_id));
  TM2C_CHECK_MSG(it != open_acquires_.end(), "acquire completion without a matching issue");
  Acquire& acq = acquires_[it->second];
  acq.complete_seq = NextSeq();
  acq.granted = granted;
  acq.kind = kind;
  open_acquires_.erase(it);
}

void History::OnWalAppend(uint32_t partition, uint32_t core, uint64_t epoch,
                          uint64_t record_index,
                          const std::vector<std::pair<uint64_t, uint64_t>>& pairs) {
  DurabilityEvent ev;
  ev.kind = DurabilityEvent::Kind::kAppend;
  ev.seq = NextSeq();
  ev.partition = partition;
  ev.core = core;
  ev.epoch = epoch;
  ev.record_index = record_index;
  ev.pairs = pairs;
  durability_events_.push_back(std::move(ev));
}

void History::OnCommitLogAck(uint32_t partition, uint32_t core, uint64_t epoch,
                             uint64_t record_index) {
  DurabilityEvent ev;
  ev.kind = DurabilityEvent::Kind::kAck;
  ev.seq = NextSeq();
  ev.partition = partition;
  ev.core = core;
  ev.epoch = epoch;
  ev.record_index = record_index;
  durability_events_.push_back(std::move(ev));
}

void History::OnWalFlush(uint32_t partition, uint64_t durable_records, uint64_t durable_bytes) {
  DurabilityEvent ev;
  ev.kind = DurabilityEvent::Kind::kFlush;
  ev.seq = NextSeq();
  ev.partition = partition;
  ev.durable_records = durable_records;
  ev.durable_bytes = durable_bytes;
  durability_events_.push_back(std::move(ev));
}

void History::OnCheckpoint(uint32_t partition, uint64_t checkpoint_index,
                           uint64_t records_covered) {
  DurabilityEvent ev;
  ev.kind = DurabilityEvent::Kind::kCheckpoint;
  ev.seq = NextSeq();
  ev.partition = partition;
  ev.checkpoint_index = checkpoint_index;
  ev.records_covered = records_covered;
  durability_events_.push_back(std::move(ev));
}

void History::OnWalTruncate(uint32_t partition, uint64_t records_remaining,
                            uint64_t valid_bytes) {
  DurabilityEvent ev;
  ev.kind = DurabilityEvent::Kind::kTruncate;
  ev.seq = NextSeq();
  ev.partition = partition;
  ev.durable_records = records_remaining;
  ev.durable_bytes = valid_bytes;
  durability_events_.push_back(std::move(ev));
}

void History::OnLockGrant(uint32_t service_core, uint32_t requester_core, uint64_t stripe) {
  grants_.push_back(GrantEvent{NextSeq(), service_core, requester_core, stripe});
}

void History::OnMigrationBegin(uint32_t from_core, uint32_t to_core, uint64_t base,
                               uint64_t bytes) {
  MigrationEvent ev;
  ev.kind = MigrationEvent::Kind::kBegin;
  ev.seq = NextSeq();
  ev.from_core = from_core;
  ev.to_core = to_core;
  ev.base = base;
  ev.bytes = bytes;
  migrations_.push_back(ev);
}

void History::OnMigrationComplete(uint32_t from_core, uint32_t to_core, uint64_t base,
                                  uint64_t bytes, uint64_t version) {
  MigrationEvent ev;
  ev.kind = MigrationEvent::Kind::kComplete;
  ev.seq = NextSeq();
  ev.from_core = from_core;
  ev.to_core = to_core;
  ev.base = base;
  ev.bytes = bytes;
  ev.version = version;
  migrations_.push_back(ev);
}

namespace {
const char* DurabilityEventKindName(History::DurabilityEvent::Kind kind) {
  switch (kind) {
    case History::DurabilityEvent::Kind::kAppend:
      return "append";
    case History::DurabilityEvent::Kind::kAck:
      return "ack";
    case History::DurabilityEvent::Kind::kFlush:
      return "flush";
    case History::DurabilityEvent::Kind::kCheckpoint:
      return "checkpoint";
    case History::DurabilityEvent::Kind::kTruncate:
      return "truncate";
  }
  return "?";
}
}  // namespace

std::string History::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("initial");
  w.BeginArray();
  for (const auto& [addr, value] : initial_) {
    w.BeginObject();
    w.KV("addr", addr);
    w.KV("value", value);
    w.EndObject();
  }
  w.EndArray();
  w.Key("transactions");
  w.BeginArray();
  for (const Tx& tx : txs_) {
    w.BeginObject();
    w.KV("core", static_cast<uint64_t>(tx.core));
    w.KV("epoch", tx.epoch);
    w.KV("begin_ps", tx.begin_time);
    w.KV("end_ps", tx.end_time);
    w.KV("committed", tx.committed);
    w.KV("finished", tx.finished);
    if (tx.finished && !tx.committed) {
      w.KV("abort_reason", ConflictKindName(tx.abort_reason));
    }
    w.Key("reads");
    w.BeginArray();
    for (const Read& r : tx.reads) {
      w.BeginObject();
      w.KV("addr", r.addr);
      w.KV("value", r.value);
      w.KV("seq", r.seq);
      w.EndObject();
    }
    w.EndArray();
    w.Key("writes");
    w.BeginArray();
    for (const Write& wr : tx.writes) {
      w.BeginObject();
      w.KV("addr", wr.addr);
      w.KV("value", wr.value);
      w.KV("seq", wr.seq);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("revocations");
  w.BeginArray();
  for (const Revocation& rev : revocations_) {
    w.BeginObject();
    w.KV("seq", rev.seq);
    w.KV("service_core", static_cast<uint64_t>(rev.service_core));
    w.KV("victim_core", static_cast<uint64_t>(rev.victim_core));
    w.KV("victim_epoch", rev.victim_epoch);
    w.KV("kind", ConflictKindName(rev.kind));
    w.EndObject();
  }
  w.EndArray();
  w.Key("acquires");
  w.BeginArray();
  for (const Acquire& acq : acquires_) {
    w.BeginObject();
    w.KV("issue_seq", acq.issue_seq);
    w.KV("complete_seq", acq.complete_seq);
    w.KV("core", static_cast<uint64_t>(acq.core));
    w.KV("request_id", acq.request_id);
    w.KV("node", static_cast<uint64_t>(acq.node));
    w.KV("n", static_cast<uint64_t>(acq.n));
    w.KV("granted", static_cast<uint64_t>(acq.granted));
    w.KV("is_write", acq.is_write);
    if (acq.kind != ConflictKind::kNone) {
      w.KV("refused_kind", ConflictKindName(acq.kind));
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("durability_events");
  w.BeginArray();
  for (const DurabilityEvent& ev : durability_events_) {
    w.BeginObject();
    w.KV("kind", DurabilityEventKindName(ev.kind));
    w.KV("seq", ev.seq);
    w.KV("partition", static_cast<uint64_t>(ev.partition));
    switch (ev.kind) {
      case DurabilityEvent::Kind::kAppend: {
        w.KV("core", static_cast<uint64_t>(ev.core));
        w.KV("epoch", ev.epoch);
        w.KV("record_index", ev.record_index);
        w.Key("pairs");
        w.BeginArray();
        for (const auto& [addr, value] : ev.pairs) {
          w.BeginObject();
          w.KV("addr", addr);
          w.KV("value", value);
          w.EndObject();
        }
        w.EndArray();
        break;
      }
      case DurabilityEvent::Kind::kAck:
        w.KV("core", static_cast<uint64_t>(ev.core));
        w.KV("epoch", ev.epoch);
        w.KV("record_index", ev.record_index);
        break;
      case DurabilityEvent::Kind::kFlush:
        w.KV("durable_records", ev.durable_records);
        w.KV("durable_bytes", ev.durable_bytes);
        break;
      case DurabilityEvent::Kind::kCheckpoint:
        w.KV("checkpoint_index", ev.checkpoint_index);
        w.KV("records_covered", ev.records_covered);
        break;
      case DurabilityEvent::Kind::kTruncate:
        w.KV("records_remaining", ev.durable_records);
        w.KV("valid_bytes", ev.durable_bytes);
        break;
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("grants");
  w.BeginArray();
  for (const GrantEvent& g : grants_) {
    w.BeginObject();
    w.KV("seq", g.seq);
    w.KV("service_core", static_cast<uint64_t>(g.service_core));
    w.KV("requester_core", static_cast<uint64_t>(g.requester_core));
    w.KV("stripe", g.stripe);
    w.EndObject();
  }
  w.EndArray();
  w.Key("migrations");
  w.BeginArray();
  for (const MigrationEvent& m : migrations_) {
    w.BeginObject();
    w.KV("kind", m.kind == MigrationEvent::Kind::kBegin ? "begin" : "complete");
    w.KV("seq", m.seq);
    w.KV("from_core", static_cast<uint64_t>(m.from_core));
    w.KV("to_core", static_cast<uint64_t>(m.to_core));
    w.KV("base", m.base);
    w.KV("bytes", m.bytes);
    if (m.kind == MigrationEvent::Kind::kComplete) {
      w.KV("version", m.version);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace tm2c

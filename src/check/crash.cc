#include "src/check/crash.h"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/common/check.h"

namespace tm2c {
namespace {

using DurabilityEvent = History::DurabilityEvent;

std::string PairListToString(const std::vector<std::pair<uint64_t, uint64_t>>& pairs) {
  std::string out = "[";
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += "(" + std::to_string(pairs[i].first) + ", " + std::to_string(pairs[i].second) + ")";
  }
  return out + "]";
}

}  // namespace

CrashCutReport AnalyzeCrashCut(const History& history, uint64_t cut_seq,
                               uint32_t num_partitions) {
  CrashCutReport cut;
  cut.cut_seq = cut_seq;
  cut.partitions.resize(num_partitions);
  for (const DurabilityEvent& ev : history.durability_events()) {
    if (ev.seq > cut_seq) {
      break;  // events are recorded in seq order
    }
    TM2C_CHECK(ev.partition < num_partitions);
    PartitionCut& p = cut.partitions[ev.partition];
    switch (ev.kind) {
      case DurabilityEvent::Kind::kFlush:
        p.durable_records = std::max(p.durable_records, ev.durable_records);
        p.durable_bytes = std::max(p.durable_bytes, ev.durable_bytes);
        break;
      case DurabilityEvent::Kind::kCheckpoint:
        if (ev.records_covered >= p.checkpoint_records) {
          p.checkpoint_index = ev.checkpoint_index;
          p.checkpoint_records = ev.records_covered;
        }
        break;
      case DurabilityEvent::Kind::kTruncate:
        // A restarted server's surviving prefix is at least the previous
        // durable watermark (flushed bytes live in the OS page cache and
        // survive a process kill), so the watermark stays monotone.
        p.durable_records = std::max(p.durable_records, ev.durable_records);
        p.durable_bytes = std::max(p.durable_bytes, ev.durable_bytes);
        break;
      case DurabilityEvent::Kind::kAppend:
      case DurabilityEvent::Kind::kAck:
        break;  // appends/acks do not move the durable watermark
    }
  }
  return cut;
}

void CheckCrashRestartHistory(const History& history, const CrashCutReport& cut,
                              const std::vector<std::vector<CommitRecord>>& durable_log,
                              const std::function<uint64_t(uint64_t)>& load_recovered,
                              const std::function<uint32_t(uint64_t)>& partition_of,
                              OracleReport* report) {
  const uint32_t num_partitions = static_cast<uint32_t>(cut.partitions.size());
  TM2C_CHECK(durable_log.size() == num_partitions);

  // Index the append/ack events: (partition, core, epoch) identifies one
  // commit record (each transaction logs at most one record per partition).
  struct AppendInfo {
    uint64_t record_index = 0;
    const DurabilityEvent* ev = nullptr;
  };
  const auto key_of = [](uint32_t partition, uint32_t core, uint64_t epoch) {
    return std::make_pair((static_cast<uint64_t>(partition) << 32) | core, epoch);
  };
  std::map<std::pair<uint64_t, uint64_t>, AppendInfo> appends;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> ack_seqs;
  // (partition, record_index) -> append event, for the log-divergence pass.
  std::map<std::pair<uint32_t, uint64_t>, const DurabilityEvent*> by_index;

  // Rule: ack-before-durable. Walk the events in execution order keeping
  // each partition's covered-record watermark; an ack for a record the
  // watermark has not reached yet was sent before the record was durable.
  std::vector<uint64_t> covered(num_partitions, 0);
  for (const DurabilityEvent& ev : history.durability_events()) {
    TM2C_CHECK(ev.partition < num_partitions);
    switch (ev.kind) {
      case DurabilityEvent::Kind::kAppend: {
        const bool inserted =
            appends.emplace(key_of(ev.partition, ev.core, ev.epoch), AppendInfo{ev.record_index, &ev})
                .second;
        if (!inserted) {
          report->violations.push_back(OracleViolation{
              "durable-log-divergence",
              "partition " + std::to_string(ev.partition) + " logged c" +
                  std::to_string(ev.core) + "/e" + std::to_string(ev.epoch & 0xffffffffu) +
                  " twice"});
        }
        by_index[{ev.partition, ev.record_index}] = &ev;
        break;
      }
      case DurabilityEvent::Kind::kAck: {
        ack_seqs[key_of(ev.partition, ev.core, ev.epoch)] = ev.seq;
        if (ev.record_index >= covered[ev.partition]) {
          report->violations.push_back(OracleViolation{
              "ack-before-durable",
              "partition " + std::to_string(ev.partition) + " acked record " +
                  std::to_string(ev.record_index) + " (c" + std::to_string(ev.core) + "/e" +
                  std::to_string(ev.epoch & 0xffffffffu) + ") at seq " + std::to_string(ev.seq) +
                  " with only " + std::to_string(covered[ev.partition]) +
                  " records flushed (write-ahead rule broken)"});
        }
        break;
      }
      case DurabilityEvent::Kind::kFlush:
        covered[ev.partition] = std::max(covered[ev.partition], ev.durable_records);
        break;
      case DurabilityEvent::Kind::kCheckpoint:
        covered[ev.partition] = std::max(covered[ev.partition], ev.records_covered);
        break;
      case DurabilityEvent::Kind::kTruncate: {
        covered[ev.partition] = std::max(covered[ev.partition], ev.durable_records);
        // Appends past the surviving prefix that were never acknowledged
        // died with the server process: they are void — the restarted
        // server re-logs the retransmitted commits under fresh indices —
        // so they must not read as "logged twice" or shadow the
        // re-appends in the by-index view. Acknowledged appends are kept:
        // losing an acked record is a real violation the later passes
        // must still see.
        for (auto it = appends.begin(); it != appends.end();) {
          const uint32_t p = static_cast<uint32_t>(it->first.first >> 32);
          if (p == ev.partition && it->second.record_index >= ev.durable_records &&
              ack_seqs.find(it->first) == ack_seqs.end()) {
            const auto bi = by_index.find({p, it->second.record_index});
            if (bi != by_index.end() && bi->second == it->second.ev) {
              by_index.erase(bi);
            }
            it = appends.erase(it);
          } else {
            ++it;
          }
        }
        break;
      }
    }
  }

  // Rules: unlogged-commit, commit-before-ack, logged-write-mismatch,
  // lost-committed-write — one pass over the committed update transactions.
  for (const History::Tx& tx : history.transactions()) {
    if (!tx.committed || tx.writes.empty()) {
      continue;
    }
    // The transaction's writes per partition, in persist order (exactly
    // what LogCommitDurable sends to each owner).
    std::map<uint32_t, std::vector<std::pair<uint64_t, uint64_t>>> by_partition;
    for (const History::Write& w : tx.writes) {
      by_partition[partition_of(w.addr)].emplace_back(w.addr, w.value);
    }
    for (const auto& [p, pairs] : by_partition) {
      const auto key = key_of(p, tx.core, tx.epoch);
      const auto app = appends.find(key);
      if (app == appends.end()) {
        report->violations.push_back(OracleViolation{
            "unlogged-commit", tx.Name() + " committed writes to partition " +
                                   std::to_string(p) + " without logging a commit record"});
        continue;
      }
      const auto ack = ack_seqs.find(key);
      if (ack == ack_seqs.end() || tx.end_seq == 0 || ack->second >= tx.end_seq) {
        report->violations.push_back(OracleViolation{
            "commit-before-ack", tx.Name() + " was reported committed before partition " +
                                     std::to_string(p) + " acknowledged its commit record"});
      }
      if (app->second.ev->pairs != pairs) {
        report->violations.push_back(OracleViolation{
            "logged-write-mismatch",
            tx.Name() + " persisted " + PairListToString(pairs) + " to partition " +
                std::to_string(p) + " but logged " + PairListToString(app->second.ev->pairs)});
      }
      if (tx.end_seq != 0 && tx.end_seq <= cut.cut_seq &&
          app->second.record_index >= cut.partitions[p].durable_records) {
        report->violations.push_back(OracleViolation{
            "lost-committed-write",
            tx.Name() + " was reported committed before the crash (seq " +
                std::to_string(tx.end_seq) + " <= cut " + std::to_string(cut.cut_seq) +
                ") but its record " + std::to_string(app->second.record_index) +
                " on partition " + std::to_string(p) + " is past the durable prefix of " +
                std::to_string(cut.partitions[p].durable_records) + " records"});
      }
    }
  }

  // Rule: durable-log-divergence. The records parsed back from the
  // truncated image must be exactly the recorded appends, in order.
  for (uint32_t p = 0; p < num_partitions; ++p) {
    if (durable_log[p].size() != cut.partitions[p].durable_records) {
      report->violations.push_back(OracleViolation{
          "durable-log-divergence",
          "partition " + std::to_string(p) + " log replays " +
              std::to_string(durable_log[p].size()) + " records, the durable prefix holds " +
              std::to_string(cut.partitions[p].durable_records)});
      continue;
    }
    for (uint64_t i = 0; i < durable_log[p].size(); ++i) {
      const CommitRecord& rec = durable_log[p][i];
      const auto it = by_index.find({p, i});
      if (it == by_index.end()) {
        report->violations.push_back(OracleViolation{
            "durable-log-divergence", "partition " + std::to_string(p) + " record " +
                                          std::to_string(i) + " has no recorded append"});
        continue;
      }
      const DurabilityEvent& ev = *it->second;
      if (rec.core != ev.core || rec.epoch != ev.epoch || rec.pairs != ev.pairs) {
        report->violations.push_back(OracleViolation{
            "durable-log-divergence",
            "partition " + std::to_string(p) + " record " + std::to_string(i) +
                " replays as c" + std::to_string(rec.core) + "/e" +
                std::to_string(rec.epoch & 0xffffffffu) + " " + PairListToString(rec.pairs) +
                " but was appended as c" + std::to_string(ev.core) + "/e" +
                std::to_string(ev.epoch & 0xffffffffu) + " " + PairListToString(ev.pairs)});
      }
    }
  }

  // Rule: recovered-state-mismatch. Expected state = the registered initial
  // image overlaid with the durable record prefix, in append order.
  std::vector<std::unordered_map<uint64_t, uint64_t>> expected(num_partitions);
  for (const auto& [addr, value] : history.initial_values()) {
    const uint32_t p = partition_of(addr);
    if (p < num_partitions) {
      expected[p][addr] = value;
    }
  }
  for (uint32_t p = 0; p < num_partitions; ++p) {
    for (uint64_t i = 0; i < cut.partitions[p].durable_records; ++i) {
      const auto it = by_index.find({p, i});
      if (it == by_index.end()) {
        continue;  // already reported as durable-log-divergence
      }
      for (const auto& [addr, value] : it->second->pairs) {
        expected[p][addr] = value;
      }
    }
    uint64_t mismatches = 0;
    for (const auto& [addr, value] : expected[p]) {
      const uint64_t got = load_recovered(addr);
      if (got != value && mismatches++ < 5) {
        report->violations.push_back(OracleViolation{
            "recovered-state-mismatch",
            "partition " + std::to_string(p) + " addr " + std::to_string(addr) +
                " recovered as " + std::to_string(got) + ", the durable state says " +
                std::to_string(value)});
      }
    }
    if (mismatches > 5) {
      report->violations.push_back(OracleViolation{
          "recovered-state-mismatch", "partition " + std::to_string(p) + ": " +
                                          std::to_string(mismatches - 5) +
                                          " further mismatched words suppressed"});
    }
  }
}

}  // namespace tm2c

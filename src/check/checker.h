// One checked chaos run: an adversarial workload on a TmSystem with the
// history recorder attached and schedule perturbation on, followed by the
// offline oracle. Shared by tests/check_test.cc and tools/tm2c_check.cc so
// a failing configuration reported by either can be replayed by the other
// (same config + seed => bit-identical run).
#ifndef TM2C_SRC_CHECK_CHECKER_H_
#define TM2C_SRC_CHECK_CHECKER_H_

#include <cstdint>
#include <string>

#include "src/check/history.h"
#include "src/check/oracle.h"
#include "src/tm/tm_system.h"

namespace tm2c {

// Which adversarial workload a checked run drives.
//  - kBank: the hot-account mix (increments, transfers, full scans) over a
//    small flat array — the PR 3 workload.
//  - kKv: the partitioned KV store (src/apps/kvstore.h) under a
//    delete/reinsert mix: tagged RMW increments, deletes that capture the
//    removed counter, insert-if-absent reinserts, gets and ReadMany scans
//    over a deliberately hot keyspace with node recycling on. On top of
//    the oracle, the harness checks counter conservation (live counters +
//    removed counters == initial total + applied increments), which
//    catches lost updates and delete/reinsert ABA even when the history
//    looks locally clean.
//  - kIndex: the same store mix — driven through the shared TxStoreApi —
//    on the partitioned B+-tree (src/apps/ordered_index.h), sized so every
//    partition's tree is multi-level (splits and merges happen under
//    chaos, non-vacuously). On top of the kKv checks the harness runs
//    OrderedIndex::HostCheckStructure post-run: sorted leaves, separator
//    bounds, linked-leaf completeness and node accounting, reported as
//    "tree-shape" violations. FaultMode::kSmoSkipParentLink plants the
//    publish-child-before-parent-link SMO bug, which these invariants —
//    not the serializability oracle — must flag on every seed.
enum class CheckWorkload : uint8_t {
  kBank = 0,
  kKv = 1,
  kIndex = 2,
};

inline const char* CheckWorkloadName(CheckWorkload w) {
  switch (w) {
    case CheckWorkload::kBank:
      return "bank";
    case CheckWorkload::kKv:
      return "kv";
    case CheckWorkload::kIndex:
      return "index";
  }
  return "?";
}

struct CheckRunConfig {
  std::string platform = "scc";
  uint32_t num_cores = 8;
  uint32_t num_service = 4;
  CmKind cm = CmKind::kFairCm;
  TxMode tx_mode = TxMode::kNormal;
  WriteAcquire write_acquire = WriteAcquire::kLazy;
  uint32_t max_batch = 1;
  // Pipelined acquisition depth (TmConfig::pipeline_depth). Depths > 1 also
  // make the workloads issue Tx::Prefetch before their scans, so the
  // overlapping-request window is actually exercised under chaos.
  uint32_t pipeline_depth = 1;
  FaultMode fault = FaultMode::kNone;
  uint64_t seed = 1;
  bool chaos = true;  // apply DefaultChaos(seed); off = the one FIFO schedule

  // Mid-run live migration (kKv only, needs num_service >= 2): halfway
  // through app core 0's workload the partition-0 slab's lock ownership is
  // handed off to partition 1 while every core keeps running the chaos mix.
  // The migration oracle (CheckMigrationHistory) then replays the recorded
  // grant/migration events against the drain windows and ownership flips.
  bool migrate = false;

  CheckWorkload workload = CheckWorkload::kBank;

  // Durability knobs (dedicated deployment only). With durability on, every
  // commit additionally appends to its partitions' write-ahead logs; with
  // `crash` on (kKv only) the harness then picks a seeded cut point,
  // truncates each log to its durable watermark, clobbers and recovers the
  // store, and runs the crash-restart oracle (src/check/crash.h) on top of
  // the usual checks.
  DurabilityMode durability = DurabilityMode::kOff;
  uint32_t group_commit_txs = 1;
  uint64_t checkpoint_every_records = 0;
  bool crash = false;

  // Workload shape: each app core runs txs_per_core transactions over a
  // deliberately small, hot key/account space (kBank: increments +
  // transfers + full scans; kKv: RMW/delete/reinsert/get/scan).
  uint32_t txs_per_core = 30;
  uint32_t accounts = 12;

  // "scc_faircm_normal_b8_s3" style label for logs and dump file names.
  std::string Name() const;
};

struct CheckRunResult {
  OracleReport report;   // oracle verdict plus harness-level violations
  History history;       // full recorded history, for dumps and replay
  TxStats stats;         // merged per-core statistics (determinism tests)
};

// The chaos knobs a given seed explores: same-instant tie shuffling,
// per-message jitter, stalled and duplicated polls.
ChaosConfig DefaultChaos(uint64_t seed);

// Builds the system, runs the workload, runs the oracle. Never throws on a
// protocol violation: everything lands in result.report.violations (kinds:
// the oracle's, plus "incomplete-run" and "conservation" from the harness).
CheckRunResult RunCheckedWorkload(const CheckRunConfig& cfg);

}  // namespace tm2c

#endif  // TM2C_SRC_CHECK_CHECKER_H_

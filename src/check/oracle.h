// Offline serializability / opacity oracle over a recorded History.
//
// Two independent checks:
//
//  1. Read consistency (opacity-flavoured): every read — including reads
//     performed by attempts that later aborted — must have observed the
//     value stored by the most recent persist that preceded it in the
//     execution order, or the initial value when nothing preceded it.
//     Because writes are buffered and only persisted at commit, this means
//     every observed value was produced by a (serialization-consistent)
//     committed writer; a mismatch is an out-of-thin-air or torn read.
//
//  2. Conflict-graph acyclicity: the committed transactions must be
//     serializable. The version order of each address is its persist order;
//     the oracle derives WR (writer -> reader), WW (consecutive writers)
//     and RW (reader -> overwriting writer) dependency edges and reports
//     any cycle, with the addresses and edge kinds along it.
//
// Elastic transactions deliberately relax the atomicity of a read-only
// prefix (Section 6: a torn read-only scan is the accepted price of
// elasticity). OracleOptions::elastic_relaxed therefore excludes committed
// read-only transactions from the conflict graph; update transactions are
// held to full serializability, which is exactly what the protocol's
// commit-time validation claims to provide.
//
// Caveat for value-validated modes: the oracle matches each read to the
// writer of the last preceding persist. When two different writes can
// store the SAME value, elastic-read's value validation legitimately
// admits ABA executions that are value-serializable but get miscalled
// under that positional matching (exact matching with duplicate values is
// NP-hard). Checked workloads should therefore write globally unique
// values — the chaos workload tags every write in the high word — which
// makes the writer of every observed value unambiguous.
#ifndef TM2C_SRC_CHECK_ORACLE_H_
#define TM2C_SRC_CHECK_ORACLE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/check/history.h"

namespace tm2c {

struct OracleOptions {
  // Exclude committed read-only transactions from the cycle check (elastic
  // modes). Their reads still go through the read-consistency check.
  bool elastic_relaxed = false;
};

struct OracleViolation {
  std::string kind;    // "stale-read" | "inconsistent-initial-read" | "cycle" | ...
  std::string detail;  // human-readable description naming the transactions
};

struct OracleReport {
  std::vector<OracleViolation> violations;
  // Run shape, for logs and sanity assertions.
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t unfinished = 0;  // attempts cut mid-flight (horizon)
  uint64_t reads_checked = 0;
  uint64_t edges = 0;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

// Runs both checks over the history.
OracleReport CheckHistory(const History& history, const OracleOptions& options = {});

// Final-state check: the current content of every address written in the
// history must equal its last persisted version. `load` reads the memory
// under test (e.g. [&](uint64_t a) { return shmem.LoadWord(a); }).
// Violations are appended to `report`.
void CheckFinalState(const History& history, const std::function<uint64_t(uint64_t)>& load,
                     OracleReport* report);

// Migration-safety check over the recorded grant and migration events:
// replayed in seq order, no service core may grant a lock on a stripe of a
// range it is currently draining ("grant-during-migration"), and after a
// migration completes only the new owner may grant stripes of the moved
// range ("grant-by-non-owner"). Structural defects (a complete without a
// begin, mismatched cores) are reported too. Violations are appended to
// `report`. A history with no migration events passes vacuously.
void CheckMigrationHistory(const History& history, OracleReport* report);

}  // namespace tm2c

#endif  // TM2C_SRC_CHECK_ORACLE_H_

// Post-hoc crash simulation and the crash-restart oracle.
//
// A checked crash run completes normally with the history recorder
// attached, then picks a cut point: a global event sequence number at
// which the machine "loses power". Everything the durability layer had
// flushed (or checkpointed) by the cut survives; everything after it —
// buffered log bytes, the in-memory slab — is gone. AnalyzeCrashCut
// replays the recorded durability events up to the cut and computes each
// partition's durable watermark: how many log records, and how many log
// bytes, a restart is entitled to find, and which checkpoint bounds the
// replay suffix.
//
// CheckCrashRestartHistory then holds the recovered state to account:
//
//  - ack-before-durable: every commit-log ack the service ever sent must
//    have been preceded by a flush (or checkpoint) covering the acked
//    record. This is the write-ahead rule itself, checked at every ack —
//    not just the ones the cut happens to expose — so a service that acks
//    before flushing (FaultMode::kAckBeforeLogFlush) is flagged in every
//    run, whatever the cut.
//  - unlogged-commit / commit-before-ack: a committed update transaction
//    must have appended one record to, and been acked by, every partition
//    its writes route to, before the commit was reported to the app.
//  - logged-write-mismatch: the logged record must carry exactly the
//    transaction's persisted writes for that partition, in persist order.
//  - lost-committed-write: a transaction whose commit was reported before
//    the cut must have every one of its records inside the durable prefix.
//  - durable-log-divergence: the records parsed back out of the surviving
//    (truncated) log image must match the recorded appends one-for-one.
//  - recovered-state-mismatch: the recovered memory must equal the initial
//    image overlaid with the durable record prefix, word for word.
//
// Violations are appended to an OracleReport, same convention as
// CheckFinalState; the harness (checker.cc) composes this with the
// standard serializability oracle and the workload's own invariants.
#ifndef TM2C_SRC_CHECK_CRASH_H_
#define TM2C_SRC_CHECK_CRASH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/check/history.h"
#include "src/check/oracle.h"
#include "src/durability/partition_log.h"
#include "src/durability/wal.h"

namespace tm2c {

// One partition's durable watermark at the cut.
struct PartitionCut {
  // Log records (and image bytes) covered by the last flush at or before
  // the cut. An unflushed log is still a valid empty one: its magic header
  // is written at creation, hence the byte floor.
  uint64_t durable_records = 0;
  uint64_t durable_bytes = kWalHeaderBytes;
  // Newest checkpoint taken at or before the cut; index 0 (covering 0
  // records) is the post-load initial image every partition starts with.
  uint64_t checkpoint_index = 0;
  uint64_t checkpoint_records = 0;
};

struct CrashCutReport {
  uint64_t cut_seq = 0;
  std::vector<PartitionCut> partitions;
};

// Computes the durable watermarks from the history's durability events
// with seq <= cut_seq.
CrashCutReport AnalyzeCrashCut(const History& history, uint64_t cut_seq,
                               uint32_t num_partitions);

// Runs the crash-restart checks described above. `durable_log[p]` holds
// the commit records parsed back from partition p's truncated log image;
// `load_recovered` reads the post-recovery memory; `partition_of` maps an
// address to its owning partition (AddressMap::PartitionOf). Violations
// are appended to `report`.
void CheckCrashRestartHistory(const History& history, const CrashCutReport& cut,
                              const std::vector<std::vector<CommitRecord>>& durable_log,
                              const std::function<uint64_t(uint64_t)>& load_recovered,
                              const std::function<uint32_t(uint64_t)>& partition_of,
                              OracleReport* report);

}  // namespace tm2c

#endif  // TM2C_SRC_CHECK_CRASH_H_

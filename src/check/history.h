// Per-run execution history for the offline serializability oracle.
//
// A History is a TxTraceSink that records, for every transaction attempt,
// the read set (address and observed value), the persisted write set, and
// the commit/abort outcome. Every recorded event carries a global sequence
// number assigned in call order; because the simulator is single-threaded,
// that order IS the real execution order, which lets the oracle reason
// about "the last value stored before this read" exactly, without relying
// on (possibly tied) simulated timestamps.
//
// Service-side revocations are recorded too, for human-readable dumps and
// replay context; the oracle itself derives everything from reads/persists.
#ifndef TM2C_SRC_CHECK_HISTORY_H_
#define TM2C_SRC_CHECK_HISTORY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/tm/trace.h"

namespace tm2c {

class History : public TxTraceSink {
 public:
  struct Read {
    uint64_t addr = 0;
    uint64_t value = 0;
    uint64_t seq = 0;  // global event order
  };
  struct Write {
    uint64_t addr = 0;
    uint64_t value = 0;
    uint64_t seq = 0;  // global event order of the store
  };
  struct Tx {
    uint32_t core = 0;
    uint64_t epoch = 0;
    SimTime begin_time = 0;
    SimTime end_time = 0;
    bool committed = false;
    bool finished = false;  // saw a commit or abort (false: cut by a horizon)
    uint64_t end_seq = 0;   // global event order of the outcome (0: unfinished)
    ConflictKind abort_reason = ConflictKind::kNone;
    std::vector<Read> reads;
    std::vector<Write> writes;

    bool read_only() const { return writes.empty(); }
    std::string Name() const;  // "c3/e12" style label for reports
  };
  struct Revocation {
    uint64_t seq = 0;
    uint32_t service_core = 0;
    uint32_t victim_core = 0;
    uint64_t victim_epoch = 0;
    ConflictKind kind = ConflictKind::kNone;
  };
  // One batch acquisition, as two separately-sequenced events: under
  // pipelining (pipeline_depth > 1) several can be outstanding per core,
  // and the gap between issue_seq and complete_seq is exactly the window
  // the oracle's read/persist ordering must stay correct across.
  struct Acquire {
    uint64_t issue_seq = 0;
    uint64_t complete_seq = 0;  // 0 while still outstanding (cut by horizon)
    uint32_t core = 0;
    uint64_t request_id = 0;
    uint32_t node = 0;
    uint32_t n = 0;         // stripes requested
    uint32_t granted = 0;   // granted prefix length (valid once completed)
    bool is_write = false;
    ConflictKind kind = ConflictKind::kNone;  // refusal kind, kNone if granted
  };
  // One durability-layer event on a partition's commit log. The crash
  // oracle replays these in seq order to find each partition's durable
  // watermark at an arbitrary cut, and to prove every commit ack was
  // preceded by a flush (or checkpoint) covering its record.
  struct DurabilityEvent {
    enum class Kind { kAppend, kAck, kFlush, kCheckpoint, kTruncate };
    Kind kind = Kind::kAppend;
    uint64_t seq = 0;
    uint32_t partition = 0;
    uint32_t core = 0;          // kAppend/kAck: committing app core
    uint64_t epoch = 0;         // kAppend/kAck: committing tx epoch
    uint64_t record_index = 0;  // kAppend/kAck: 0-based index in the log
    std::vector<std::pair<uint64_t, uint64_t>> pairs;  // kAppend: [addr, value]
    // kFlush: the watermark after the flush. kTruncate (a restarted
    // partition server cut its WAL back to the valid prefix): the records
    // and bytes that survived — appends beyond them were lost with the
    // dead process and are void, not durability violations.
    uint64_t durable_records = 0;
    uint64_t durable_bytes = 0;
    uint64_t checkpoint_index = 0;  // kCheckpoint
    uint64_t records_covered = 0;   // kCheckpoint: log prefix the image covers
  };
  // One service-side lock grant, per granted stripe. The migration oracle
  // (CheckMigrationHistory) replays these in seq order against the
  // migration windows below.
  struct GrantEvent {
    uint64_t seq = 0;
    uint32_t service_core = 0;
    uint32_t requester_core = 0;
    uint64_t stripe = 0;
  };
  // One end of a stripe-ownership migration: kBegin opens the old owner's
  // drain window, kComplete closes it at the directory flip.
  struct MigrationEvent {
    enum class Kind { kBegin, kComplete };
    Kind kind = Kind::kBegin;
    uint64_t seq = 0;
    uint32_t from_core = 0;
    uint32_t to_core = 0;
    uint64_t base = 0;
    uint64_t bytes = 0;
    uint64_t version = 0;  // kComplete: directory version after the flip
  };

  // Registers the pre-run content of `addr`. Optional: the oracle infers
  // initial values from pre-write reads when they are not registered, but
  // explicit registration turns "first read of an address" into a checked
  // event instead of a definition.
  void RecordInitial(uint64_t addr, uint64_t value) { initial_[addr] = value; }

  // TxTraceSink implementation (called by TxRuntime / DtmService).
  void OnTxBegin(uint32_t core, uint64_t epoch, SimTime now) override;
  void OnTxRead(uint32_t core, uint64_t addr, uint64_t value) override;
  void OnTxPersist(uint32_t core, uint64_t addr, uint64_t value) override;
  void OnTxCommit(uint32_t core, SimTime now) override;
  void OnTxAbort(uint32_t core, SimTime now, ConflictKind reason) override;
  void OnRevocation(uint32_t service_core, uint32_t victim_core, uint64_t victim_epoch,
                    ConflictKind kind) override;
  void OnAcquireIssue(uint32_t core, uint64_t request_id, uint32_t node, uint32_t n,
                      bool is_write) override;
  void OnAcquireComplete(uint32_t core, uint64_t request_id, uint32_t granted,
                         ConflictKind kind) override;
  void OnWalAppend(uint32_t partition, uint32_t core, uint64_t epoch, uint64_t record_index,
                   const std::vector<std::pair<uint64_t, uint64_t>>& pairs) override;
  void OnCommitLogAck(uint32_t partition, uint32_t core, uint64_t epoch,
                      uint64_t record_index) override;
  void OnWalFlush(uint32_t partition, uint64_t durable_records, uint64_t durable_bytes) override;
  void OnCheckpoint(uint32_t partition, uint64_t checkpoint_index,
                    uint64_t records_covered) override;
  void OnWalTruncate(uint32_t partition, uint64_t records_remaining,
                     uint64_t valid_bytes) override;
  void OnLockGrant(uint32_t service_core, uint32_t requester_core, uint64_t stripe) override;
  void OnMigrationBegin(uint32_t from_core, uint32_t to_core, uint64_t base,
                        uint64_t bytes) override;
  void OnMigrationComplete(uint32_t from_core, uint32_t to_core, uint64_t base, uint64_t bytes,
                           uint64_t version) override;

  const std::vector<Tx>& transactions() const { return txs_; }
  const std::vector<Revocation>& revocations() const { return revocations_; }
  const std::vector<Acquire>& acquires() const { return acquires_; }
  const std::vector<DurabilityEvent>& durability_events() const { return durability_events_; }
  const std::vector<GrantEvent>& grants() const { return grants_; }
  const std::vector<MigrationEvent>& migrations() const { return migrations_; }
  const std::unordered_map<uint64_t, uint64_t>& initial_values() const { return initial_; }
  uint64_t num_events() const { return next_seq_; }

  // Serializes the whole history (transactions, outcomes, read/write sets,
  // revocations) as one JSON document, for failing-seed artifacts.
  std::string ToJson() const;

 private:
  uint64_t NextSeq() { return next_seq_++; }
  Tx* OpenTx(uint32_t core);

  std::vector<Tx> txs_;
  // Index into txs_ of the attempt currently running on each core, or -1.
  std::unordered_map<uint32_t, size_t> open_;
  std::unordered_map<uint64_t, uint64_t> initial_;
  std::vector<Revocation> revocations_;
  std::vector<Acquire> acquires_;
  // (core, request_id) -> index into acquires_ of the outstanding request.
  std::unordered_map<uint64_t, size_t> open_acquires_;
  std::vector<DurabilityEvent> durability_events_;
  std::vector<GrantEvent> grants_;
  std::vector<MigrationEvent> migrations_;
  uint64_t next_seq_ = 1;  // 0 is reserved as "before everything"
};

}  // namespace tm2c

#endif  // TM2C_SRC_CHECK_HISTORY_H_

#include "src/check/checker.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/apps/kvstore.h"
#include "src/apps/ordered_index.h"
#include "src/check/crash.h"
#include "src/common/rng.h"

namespace tm2c {

std::string CheckRunConfig::Name() const {
  std::string name = platform;
  if (workload != CheckWorkload::kBank) {
    name += "_";
    name += CheckWorkloadName(workload);
  }
  name += "_";
  name += CmKindName(cm);
  name += tx_mode == TxMode::kNormal ? "_normal"
          : tx_mode == TxMode::kElasticEarly ? "_early"
                                             : "_eread";
  name += write_acquire == WriteAcquire::kLazy ? "" : "_eager";
  name += "_b" + std::to_string(max_batch);
  if (pipeline_depth != 1) {
    name += "_p" + std::to_string(pipeline_depth);
  }
  if (fault != FaultMode::kNone) {
    name += std::string("_fault-") + FaultModeName(fault);
  }
  if (durability != DurabilityMode::kOff) {
    name += std::string("_dur-") + DurabilityModeName(durability);
    if (group_commit_txs != 1) {
      name += "_g" + std::to_string(group_commit_txs);
    }
    if (checkpoint_every_records != 0) {
      name += "_ck" + std::to_string(checkpoint_every_records);
    }
  }
  if (migrate) {
    name += "_migrate";
  }
  if (crash) {
    name += "_crash";
  }
  if (!chaos) {
    name += "_nochaos";
  }
  name += "_s" + std::to_string(seed);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

ChaosConfig DefaultChaos(uint64_t seed) {
  ChaosConfig chaos;
  chaos.seed = seed;
  chaos.shuffle_ties = true;
  chaos.msg_jitter_max_ps = MicrosToSim(2);
  chaos.poll_stall_pct = 10;
  chaos.poll_stall_max_ps = MicrosToSim(5);
  chaos.poll_duplicate_pct = 10;
  return chaos;
}

namespace {

TmSystemConfig MakeCheckedSystemConfig(const CheckRunConfig& cfg) {
  TmSystemConfig sys_cfg;
  sys_cfg.sim.platform = PlatformByName(cfg.platform);
  sys_cfg.sim.num_cores = cfg.num_cores;
  sys_cfg.sim.num_service = cfg.num_service;
  sys_cfg.sim.shmem_bytes = 2 << 20;
  sys_cfg.sim.seed = cfg.seed;
  if (cfg.chaos) {
    sys_cfg.sim.chaos = DefaultChaos(cfg.seed);
  }
  sys_cfg.tm.cm = cfg.cm;
  sys_cfg.tm.tx_mode = cfg.tx_mode;
  sys_cfg.tm.write_acquire = cfg.write_acquire;
  sys_cfg.tm.max_batch = cfg.max_batch;
  sys_cfg.tm.pipeline_depth = cfg.pipeline_depth;
  sys_cfg.tm.fault = cfg.fault;
  sys_cfg.tm.durability = cfg.durability;
  sys_cfg.tm.group_commit_txs = cfg.group_commit_txs;
  sys_cfg.tm.checkpoint_every_records = cfg.checkpoint_every_records;
  return sys_cfg;
}

CheckRunResult RunCheckedBankWorkload(const CheckRunConfig& cfg) {
  TmSystem sys(MakeCheckedSystemConfig(cfg));

  CheckRunResult result;

  // Every account word is (unique write tag << 32) | balance. The low half
  // carries the conserved balance; the high half makes every committed
  // write produce a globally unique value. Uniqueness matters: the oracle
  // matches a read to its writer by value+order, and value-validated
  // elastic reads legitimately admit ABA (a transfer pair restoring an old
  // balance revalidates fine), which with duplicate values is
  // value-serializable yet indistinguishable from a real stale read.
  constexpr uint64_t kInitial = 1000;
  constexpr uint64_t kBalanceMask = 0xffffffffull;
  const uint64_t base = sys.allocator().AllocGlobal(cfg.accounts * kWordBytes);
  for (uint32_t a = 0; a < cfg.accounts; ++a) {
    const uint64_t addr = base + a * kWordBytes;
    sys.shmem().StoreWord(addr, kInitial);
    result.history.RecordInitial(addr, kInitial);
  }
  if (cfg.durability != DurabilityMode::kOff) {
    // The bank array is hash-mapped, not an owned range, so checkpoint 0 is
    // empty — the logging/group-commit path still runs under chaos.
    sys.CaptureDurableCheckpoint0();
  }

  const uint32_t n = sys.num_app_cores();
  std::vector<bool> done(n, false);
  std::vector<uint64_t> increments(n, 0);
  std::vector<uint64_t> scan_addrs(cfg.accounts);
  for (uint32_t a = 0; a < cfg.accounts; ++a) {
    scan_addrs[a] = base + a * kWordBytes;
  }
  for (uint32_t i = 0; i < n; ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv&, TxRuntime& rt) {
      Rng rng(cfg.seed * 77 + 13 * (i + 1));
      for (uint32_t k = 0; k < cfg.txs_per_core; ++k) {
        // Unique per (core, transaction, write-within-transaction); aborted
        // attempts re-execute with the same tag but never persist, so every
        // value that reaches memory is written exactly once.
        const uint64_t tag =
            (static_cast<uint64_t>(i + 1) * cfg.txs_per_core + k) * 4;
        const uint64_t pick = rng.NextBelow(10);
        if (pick < 4) {
          // Counter increment: the canonical lost-update probe. Every
          // dropped increment shows up both as a conflict-graph cycle and
          // in the conservation total.
          const uint64_t addr = base + rng.NextBelow(cfg.accounts) * kWordBytes;
          rt.Execute([addr, tag](Tx& tx) {
            tx.Write(addr, (tag << 32) | ((tx.Read(addr) & kBalanceMask) + 1));
          });
          ++increments[i];
        } else if (pick < 7) {
          // Transfer between two distinct accounts (conserves the total).
          const uint64_t from = base + rng.NextBelow(cfg.accounts) * kWordBytes;
          uint64_t to = base + rng.NextBelow(cfg.accounts) * kWordBytes;
          if (to == from) {
            to = base + ((to - base) / kWordBytes + 1) % cfg.accounts * kWordBytes;
          }
          rt.Execute([from, to, tag](Tx& tx) {
            tx.Write(from, ((tag + 1) << 32) | ((tx.Read(from) & kBalanceMask) - 1));
            tx.Write(to, ((tag + 2) << 32) | ((tx.Read(to) & kBalanceMask) + 1));
          });
        } else {
          // Read-only scan of the whole array (ReadMany exercises the
          // batched read path under TxMode::kNormal with max_batch > 1).
          // Pipelined configurations prefetch first, so overlapping
          // in-flight requests — and refusals landing between issue and
          // completion — are part of the explored schedule space.
          const bool prefetch = cfg.pipeline_depth > 1;
          rt.Execute([&scan_addrs, prefetch](Tx& tx) {
            if (prefetch) {
              tx.Prefetch(scan_addrs);
            }
            (void)tx.ReadMany(scan_addrs);
          });
        }
      }
      done[i] = true;
    });
  }

  sys.AttachTrace(&result.history);
  // Generous horizon: the workload is bounded, so a run that does not
  // complete within it is itself reported as a violation (livelock or a
  // fault-induced wedge), not silently truncated.
  sys.Run(MillisToSim(8000));
  result.stats = sys.MergedStats();

  OracleOptions opts;
  opts.elastic_relaxed = cfg.tx_mode != TxMode::kNormal;
  result.report = CheckHistory(result.history, opts);
  CheckMigrationHistory(result.history, &result.report);  // vacuous without migrations

  bool all_done = true;
  for (uint32_t i = 0; i < n; ++i) {
    if (!done[i]) {
      all_done = false;
      result.report.violations.push_back(OracleViolation{
          "incomplete-run", "app core " + std::to_string(i) + " did not finish its workload"});
    }
  }

  CheckFinalState(result.history,
                  [&sys](uint64_t addr) { return sys.shmem().LoadWord(addr); },
                  &result.report);

  if (all_done) {
    // Transfers conserve the balance total and every increment adds exactly
    // 1, so the final sum is fully determined. A mismatch is a lost (or
    // duplicated) update even if the history happens to look serializable.
    uint64_t expected = static_cast<uint64_t>(cfg.accounts) * kInitial;
    for (uint32_t i = 0; i < n; ++i) {
      expected += increments[i];
    }
    uint64_t actual = 0;
    for (uint32_t a = 0; a < cfg.accounts; ++a) {
      actual += sys.shmem().LoadWord(base + a * kWordBytes) & kBalanceMask;
    }
    if (actual != expected) {
      result.report.violations.push_back(OracleViolation{
          "conservation", "final account total is " + std::to_string(actual) + ", expected " +
                              std::to_string(expected) + " (lost or duplicated updates)"});
    }
  }

  return result;
}

// Post-hoc crash simulation over a completed checked run: pick a seeded
// cut in the recorded event order, keep only what each partition's
// durability layer had made durable by then (truncating the log image,
// with a torn fragment of the next frame when one was buffered), clobber
// the slabs, recover the store from checkpoint + log suffix, and run the
// crash-restart oracle (src/check/crash.h) plus structural accounting on
// the result.
void RunKvCrashRestart(const CheckRunConfig& cfg, TmSystem& sys, KvStore& store,
                       CheckRunResult* result) {
  const uint32_t num_partitions = store.num_partitions();
  const History& history = result->history;

  // The cut rng is independent of the workload rng streams, so replaying a
  // failing seed reproduces both the schedule and the crash point.
  Rng rng(cfg.seed * 9176 + 31);
  const uint64_t num_events = history.num_events();
  const uint64_t cut_seq = num_events > 1 ? 1 + rng.NextBelow(num_events - 1) : 0;
  const CrashCutReport cut = AnalyzeCrashCut(history, cut_seq, num_partitions);

  // Build each partition's surviving log image: the durable prefix plus,
  // when more had been appended, a torn fragment strictly inside the next
  // frame — the way a real crash tears a buffered tail. The parse must
  // come back clean apart from that torn tail.
  std::vector<std::vector<CommitRecord>> durable_log(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    const std::vector<uint8_t>& image = sys.DurabilityAt(p).wal().image();
    const uint64_t durable_bytes = cut.partitions[p].durable_bytes;
    TM2C_CHECK(durable_bytes <= image.size());
    std::vector<uint8_t> surviving(image.begin(),
                                   image.begin() + static_cast<size_t>(durable_bytes));
    if (image.size() > durable_bytes) {
      const uint32_t payload_len =
          static_cast<uint32_t>(image[durable_bytes]) |
          (static_cast<uint32_t>(image[durable_bytes + 1]) << 8) |
          (static_cast<uint32_t>(image[durable_bytes + 2]) << 16) |
          (static_cast<uint32_t>(image[durable_bytes + 3]) << 24);
      const uint64_t frame = kWalFrameOverheadBytes + payload_len;
      const uint64_t torn = 1 + rng.NextBelow(frame - 1);
      surviving.insert(surviving.end(), image.begin() + static_cast<size_t>(durable_bytes),
                       image.begin() + static_cast<size_t>(durable_bytes + torn));
    }
    const WalReadResult parsed = ReadWal(surviving);
    if (parsed.bad_magic || parsed.crc_mismatch) {
      result->report.violations.push_back(OracleViolation{
          "torn-log", "partition " + std::to_string(p) +
                          ": surviving log image fails to parse cleanly (" +
                          (parsed.bad_magic ? "bad magic" : "crc mismatch") + ")"});
    }
    if (parsed.valid_bytes != durable_bytes) {
      result->report.violations.push_back(OracleViolation{
          "torn-log", "partition " + std::to_string(p) + ": surviving log replays " +
                          std::to_string(parsed.valid_bytes) + " valid bytes, durable prefix is " +
                          std::to_string(durable_bytes)});
    }
    for (const WalRecord& rec : parsed.records) {
      CommitRecord commit;
      if (!ParseCommitRecord(rec, &commit)) {
        result->report.violations.push_back(OracleViolation{
            "torn-log", "partition " + std::to_string(p) + ": durable record " +
                            std::to_string(durable_log[p].size()) +
                            " is not a well-formed commit record"});
        break;
      }
      durable_log[p].push_back(std::move(commit));
    }
  }

  // Crash. Nothing volatile survives: every slab word is clobbered before
  // recovery, so anything correct afterwards came from the durable state.
  for (uint32_t p = 0; p < num_partitions; ++p) {
    const auto [base, bytes] = store.SlabRange(p);
    for (uint64_t addr = base; addr < base + bytes; addr += kWordBytes) {
      sys.shmem().StoreWord(addr, 0xDEADDEADDEADDEADull);
    }
  }
  for (uint32_t p = 0; p < num_partitions; ++p) {
    const PartitionCut& pcut = cut.partitions[p];
    const PartitionDurability& dur = sys.DurabilityAt(p);
    TM2C_CHECK(pcut.checkpoint_index < dur.checkpoints().size());
    const CheckpointImage& ckpt = dur.checkpoints()[pcut.checkpoint_index];
    TM2C_CHECK(ckpt.records_covered == pcut.checkpoint_records);
    std::vector<std::pair<uint64_t, uint64_t>> replay;
    for (uint64_t i = pcut.checkpoint_records; i < durable_log[p].size(); ++i) {
      replay.insert(replay.end(), durable_log[p][i].pairs.begin(), durable_log[p][i].pairs.end());
    }
    store.RecoverPartition(p, ckpt.pairs, replay);
  }

  CheckCrashRestartHistory(
      history, cut, durable_log,
      [&sys](uint64_t addr) { return sys.shmem().LoadWord(addr); },
      [&sys](uint64_t addr) { return sys.address_map().PartitionOf(addr); },
      &result->report);

  // The recovery's rebuilt pool bookkeeping must agree with a fresh walk
  // of the recovered chains.
  for (uint32_t p = 0; p < num_partitions; ++p) {
    const uint64_t chains = store.HostSizeOfPartition(p);
    const uint64_t pool = store.NodesInUse(p);
    if (chains != pool) {
      result->report.violations.push_back(OracleViolation{
          "node-accounting", "recovered partition " + std::to_string(p) + " pool says " +
                                 std::to_string(pool) + " live nodes, chains hold " +
                                 std::to_string(chains)});
    }
  }
}

// The shared store chaos mix, driven through TxStoreApi so the hash KV
// store and the ordered B+-tree run the exact same adversarial workload.
// Every value word is (unique write tag << 32) | counter, the same
// attribution discipline as the bank workload: the low half carries the
// conserved counter, the high half makes every committed value write
// globally unique so the oracle (and elastic value validation) can never
// confuse two writes. Structure words (bucket heads, next pointers, node
// metadata, separators) necessarily repeat values across delete/reinsert
// and split/merge cycles; the oracle's sequence-exact attribution handles
// that, and the conservation check below catches what per-address checks
// cannot: an update applied to a node that a concurrent delete had already
// unlinked (the delete/reinsert ABA) leaves the live counters short.
//
// Counter value every key is loaded with (tag 0: the load phase).
constexpr uint64_t kStoreMixInitial = 1000;

// Host-loads keys [1, num_keys]; callers run this before RunCheckedStoreMix
// (separately, so workload-specific post-load assertions — tree depth
// non-vacuity — can anchor to the deterministic loaded state).
void LoadStoreMixKeys(TxStoreApi& store, uint64_t num_keys) {
  for (uint64_t key = 1; key <= num_keys; ++key) {
    const uint64_t value = kStoreMixInitial;
    store.HostPut(key, &value);
  }
}

// Runs the mix over the pre-loaded store, then the oracle, completion,
// final-state, conservation and node-accounting checks. Workload-specific
// epilogues (crash restart, tree shape) run on the returned result at the
// call sites.
CheckRunResult RunCheckedStoreMix(const CheckRunConfig& cfg, TmSystem& sys,
                                  TxStoreApi& store, uint64_t num_keys) {
  CheckRunResult result;

  constexpr uint64_t kInitial = kStoreMixInitial;
  constexpr uint64_t kCounterMask = 0xffffffffull;
  // Register the pre-run content of every slab word (structure words, node
  // pool) so first reads are checked against a known initial state.
  for (uint32_t p = 0; p < store.num_partitions(); ++p) {
    const auto [base, bytes] = store.SlabRange(p);
    for (uint64_t addr = base; addr < base + bytes; addr += kWordBytes) {
      result.history.RecordInitial(addr, sys.shmem().LoadWord(addr));
    }
  }
  if (cfg.durability != DurabilityMode::kOff) {
    // Snapshot the loaded slabs as checkpoint 0: recovery replays the log
    // on top of exactly this image.
    sys.CaptureDurableCheckpoint0();
  }

  const uint32_t n = sys.num_app_cores();
  std::vector<bool> done(n, false);
  std::vector<uint64_t> increments(n, 0);    // applied RMW increments
  std::vector<uint64_t> removed_sum(n, 0);   // counters carried off by deletes
  const std::pair<uint64_t, uint64_t> slab0 = store.SlabRange(0);
  for (uint32_t i = 0; i < n; ++i) {
    sys.SetAppBody(i, [&, i, num_keys](CoreEnv&, TxRuntime& rt) {
      Rng rng(cfg.seed * 131 + 17 * (i + 1));
      for (uint32_t k = 0; k < cfg.txs_per_core; ++k) {
        if (cfg.migrate && i == 0 && k == cfg.txs_per_core / 2) {
          // Live handoff under load: hand the partition-0 slab's lock
          // ownership to partition 1 while every core keeps issuing the
          // chaos mix. Fire-and-forget — the drain, the flip and the
          // kOwnershipUpdate broadcast land wherever chaos schedules them.
          rt.RequestMigration(slab0.first, slab0.second, 1);
        }
        // Unique per (core, transaction); each op persists at most one
        // value word, so the tag disambiguates every committed value.
        const uint64_t tag = static_cast<uint64_t>(i + 1) * cfg.txs_per_core + k;
        const uint64_t key = 1 + rng.NextBelow(num_keys);
        const uint64_t pick = rng.NextBelow(10);
        if (pick < 4) {
          // Hot-key increment through ReadModifyWrite: the lost-update
          // probe. Counts only if the key was resident.
          if (store.ReadModifyWrite(rt, key, [tag](uint64_t* v) {
                *v = (tag << 32) | ((*v & kCounterMask) + 1);
              })) {
            ++increments[i];
          }
        } else if (pick < 6) {
          // Delete, banking the removed counter: a lost delete (or a
          // resurrected node) breaks conservation. On the B+-tree this is
          // also the merge/borrow trigger.
          std::vector<uint64_t> old;
          if (store.Delete(rt, key, &old)) {
            removed_sum[i] += old[0] & kCounterMask;
          }
        } else if (pick < 8) {
          // Reinsert-if-absent with a fresh counter of 0. Insert (not
          // Put): blindly overwriting a resident key would destroy its
          // counter and void the conservation argument. On the B+-tree
          // this is the split trigger.
          const uint64_t value = tag << 32;
          store.Insert(rt, key, &value);
        } else if (pick < 9) {
          store.Get(rt, key, nullptr);
        } else {
          // Bounded scan: the elastic-style traversal (ReadMany bucket
          // heads on the hash store, ReadMany node loads down the tree
          // plus the leaf chain on the B+-tree).
          store.Scan(rt, 1 + rng.NextBelow(num_keys),
                     static_cast<uint32_t>(num_keys));
        }
      }
      done[i] = true;
    });
  }

  sys.AttachTrace(&result.history);
  sys.Run(MillisToSim(8000));
  result.stats = sys.MergedStats();

  OracleOptions opts;
  opts.elastic_relaxed = cfg.tx_mode != TxMode::kNormal;
  result.report = CheckHistory(result.history, opts);
  CheckMigrationHistory(result.history, &result.report);

  bool all_done = true;
  for (uint32_t i = 0; i < n; ++i) {
    if (!done[i]) {
      all_done = false;
      result.report.violations.push_back(OracleViolation{
          "incomplete-run", "app core " + std::to_string(i) + " did not finish its workload"});
    }
  }

  CheckFinalState(result.history,
                  [&sys](uint64_t addr) { return sys.shmem().LoadWord(addr); },
                  &result.report);

  if (all_done) {
    // Every applied increment adds exactly 1 to some resident counter;
    // every delete moves a counter out of the store, unchanged; reinserts
    // start at 0. So: live counters + removed counters == initial total +
    // applied increments, whatever the interleaving.
    uint64_t expected = num_keys * kInitial;
    uint64_t live_nodes = 0;
    for (uint32_t i = 0; i < n; ++i) {
      expected += increments[i];
    }
    uint64_t actual = 0;
    store.HostForEach([&](uint64_t, const uint64_t* value) {
      actual += value[0] & kCounterMask;
      ++live_nodes;
    });
    for (uint32_t i = 0; i < n; ++i) {
      actual += removed_sum[i];
    }
    if (actual != expected) {
      result.report.violations.push_back(OracleViolation{
          "conservation", "final counter total is " + std::to_string(actual) + ", expected " +
                              std::to_string(expected) +
                              " (lost updates or delete/reinsert ABA)"});
    }
    // Structural cross-check, hash store only: one node per resident entry,
    // so the pool's live-node accounting must agree with a host-side walk.
    // (The B+-tree's nodes hold many entries plus inner structure; its
    // accounting is checked by HostCheckStructure at the call site.)
    if (std::string(store.IndexKindName()) == "hash") {
      uint64_t pool_in_use = 0;
      for (uint32_t p = 0; p < store.num_partitions(); ++p) {
        pool_in_use += store.NodesInUse(p);
      }
      if (pool_in_use != live_nodes) {
        result.report.violations.push_back(OracleViolation{
            "node-accounting", "pool says " + std::to_string(pool_in_use) +
                                   " live nodes, chains hold " + std::to_string(live_nodes) +
                                   " (leaked or doubly-linked node)"});
      }
    }
  }

  return result;
}

CheckRunResult RunCheckedKvWorkload(const CheckRunConfig& cfg) {
  TmSystem sys(MakeCheckedSystemConfig(cfg));

  KvStoreConfig kv_cfg;
  kv_cfg.value_words = 1;
  // Tiny and hot on purpose: few buckets so chains exist (traversals
  // overlap), capacity just above the keyspace so recycling is exercised.
  kv_cfg.buckets_per_partition = 2;
  kv_cfg.capacity_per_partition = cfg.accounts + 8;
  kv_cfg.reuse_nodes = true;
  KvStore store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(), kv_cfg);
  LoadStoreMixKeys(store, cfg.accounts);

  CheckRunResult result = RunCheckedStoreMix(cfg, sys, store, cfg.accounts);

  if (cfg.crash) {
    RunKvCrashRestart(cfg, sys, store, &result);
  }

  return result;
}

CheckRunResult RunCheckedIndexWorkload(const CheckRunConfig& cfg) {
  TmSystem sys(MakeCheckedSystemConfig(cfg));

  OrderedIndexConfig oi_cfg;
  oi_cfg.value_words = 1;
  // Small fanout and a keyspace of `accounts` keys PER PARTITION: every
  // partition's tree loads at least two levels deep, so the chaos mix's
  // inserts and deletes split and merge real multi-level trees instead of
  // nibbling at root leaves.
  oi_cfg.fanout = 4;
  const uint64_t keys_per_partition =
      std::max<uint64_t>(cfg.accounts, 2 * oi_cfg.fanout);
  const uint64_t num_keys = keys_per_partition * sys.deployment().num_service();
  oi_cfg.key_min = 1;
  oi_cfg.key_max = num_keys;
  // Slack for the fault runs: with kSmoSkipParentLink every split leaks an
  // orphan leaf, and the run must exhaust its transaction budget — not the
  // pool — so the structural invariants get to deliver the verdict.
  oi_cfg.capacity_per_partition =
      static_cast<uint32_t>(2 * keys_per_partition + 4 * cfg.txs_per_core);
  oi_cfg.reuse_nodes = true;
  oi_cfg.smo_skip_parent_link = cfg.fault == FaultMode::kSmoSkipParentLink;
  OrderedIndex store(sys.allocator(), sys.shmem(), sys.address_map(), sys.deployment(),
                     oi_cfg);
  LoadStoreMixKeys(store, num_keys);

  if (!oi_cfg.smo_skip_parent_link) {
    // Non-vacuity, anchored to the deterministic loaded state: the
    // invariants below would pass trivially on a forest of root leaves.
    // (With the SMO fault planted the roots legitimately never grow — that
    // is the bug — so the guarantee only binds intact runs.)
    for (uint32_t p = 0; p < store.num_partitions(); ++p) {
      TM2C_CHECK_MSG(store.HostDepthOfPartition(p) >= 2,
                     "index workload sized too small: partition tree has no inner nodes");
    }
  }

  CheckRunResult result = RunCheckedStoreMix(cfg, sys, store, num_keys);

  // Tree-shape invariants over the final structure: sorted leaves,
  // separator bounds, linked-leaf completeness, node accounting. This is
  // the check that catches SMO bugs the serializability oracle cannot see
  // (every transaction of a broken split is internally consistent).
  std::vector<std::string> problems;
  store.HostCheckStructure(&problems);
  for (const std::string& problem : problems) {
    result.report.violations.push_back(OracleViolation{"tree-shape", problem});
  }

  return result;
}

}  // namespace

CheckRunResult RunCheckedWorkload(const CheckRunConfig& cfg) {
  TM2C_CHECK_MSG(!cfg.crash || (cfg.workload == CheckWorkload::kKv &&
                                cfg.durability != DurabilityMode::kOff),
                 "crash-restart checking needs the kv workload with durability on");
  TM2C_CHECK_MSG(!cfg.migrate || (cfg.workload == CheckWorkload::kKv && cfg.num_service >= 2),
                 "migration checking needs the kv workload and at least two partitions");
  switch (cfg.workload) {
    case CheckWorkload::kKv:
      return RunCheckedKvWorkload(cfg);
    case CheckWorkload::kIndex:
      return RunCheckedIndexWorkload(cfg);
    case CheckWorkload::kBank:
      break;
  }
  return RunCheckedBankWorkload(cfg);
}

}  // namespace tm2c

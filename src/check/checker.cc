#include "src/check/checker.h"

#include <vector>

#include "src/common/rng.h"

namespace tm2c {

std::string CheckRunConfig::Name() const {
  std::string name = platform;
  name += "_";
  name += CmKindName(cm);
  name += tx_mode == TxMode::kNormal ? "_normal"
          : tx_mode == TxMode::kElasticEarly ? "_early"
                                             : "_eread";
  name += write_acquire == WriteAcquire::kLazy ? "" : "_eager";
  name += "_b" + std::to_string(max_batch);
  if (fault != FaultMode::kNone) {
    name += std::string("_fault-") + FaultModeName(fault);
  }
  if (!chaos) {
    name += "_nochaos";
  }
  name += "_s" + std::to_string(seed);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

ChaosConfig DefaultChaos(uint64_t seed) {
  ChaosConfig chaos;
  chaos.seed = seed;
  chaos.shuffle_ties = true;
  chaos.msg_jitter_max_ps = MicrosToSim(2);
  chaos.poll_stall_pct = 10;
  chaos.poll_stall_max_ps = MicrosToSim(5);
  chaos.poll_duplicate_pct = 10;
  return chaos;
}

CheckRunResult RunCheckedWorkload(const CheckRunConfig& cfg) {
  TmSystemConfig sys_cfg;
  sys_cfg.sim.platform = PlatformByName(cfg.platform);
  sys_cfg.sim.num_cores = cfg.num_cores;
  sys_cfg.sim.num_service = cfg.num_service;
  sys_cfg.sim.shmem_bytes = 2 << 20;
  sys_cfg.sim.seed = cfg.seed;
  if (cfg.chaos) {
    sys_cfg.sim.chaos = DefaultChaos(cfg.seed);
  }
  sys_cfg.tm.cm = cfg.cm;
  sys_cfg.tm.tx_mode = cfg.tx_mode;
  sys_cfg.tm.write_acquire = cfg.write_acquire;
  sys_cfg.tm.max_batch = cfg.max_batch;
  sys_cfg.tm.fault = cfg.fault;
  TmSystem sys(std::move(sys_cfg));

  CheckRunResult result;

  // Every account word is (unique write tag << 32) | balance. The low half
  // carries the conserved balance; the high half makes every committed
  // write produce a globally unique value. Uniqueness matters: the oracle
  // matches a read to its writer by value+order, and value-validated
  // elastic reads legitimately admit ABA (a transfer pair restoring an old
  // balance revalidates fine), which with duplicate values is
  // value-serializable yet indistinguishable from a real stale read.
  constexpr uint64_t kInitial = 1000;
  constexpr uint64_t kBalanceMask = 0xffffffffull;
  const uint64_t base = sys.allocator().AllocGlobal(cfg.accounts * kWordBytes);
  for (uint32_t a = 0; a < cfg.accounts; ++a) {
    const uint64_t addr = base + a * kWordBytes;
    sys.shmem().StoreWord(addr, kInitial);
    result.history.RecordInitial(addr, kInitial);
  }

  const uint32_t n = sys.num_app_cores();
  std::vector<bool> done(n, false);
  std::vector<uint64_t> increments(n, 0);
  std::vector<uint64_t> scan_addrs(cfg.accounts);
  for (uint32_t a = 0; a < cfg.accounts; ++a) {
    scan_addrs[a] = base + a * kWordBytes;
  }
  for (uint32_t i = 0; i < n; ++i) {
    sys.SetAppBody(i, [&, i](CoreEnv&, TxRuntime& rt) {
      Rng rng(cfg.seed * 77 + 13 * (i + 1));
      for (uint32_t k = 0; k < cfg.txs_per_core; ++k) {
        // Unique per (core, transaction, write-within-transaction); aborted
        // attempts re-execute with the same tag but never persist, so every
        // value that reaches memory is written exactly once.
        const uint64_t tag =
            (static_cast<uint64_t>(i + 1) * cfg.txs_per_core + k) * 4;
        const uint64_t pick = rng.NextBelow(10);
        if (pick < 4) {
          // Counter increment: the canonical lost-update probe. Every
          // dropped increment shows up both as a conflict-graph cycle and
          // in the conservation total.
          const uint64_t addr = base + rng.NextBelow(cfg.accounts) * kWordBytes;
          rt.Execute([addr, tag](Tx& tx) {
            tx.Write(addr, (tag << 32) | ((tx.Read(addr) & kBalanceMask) + 1));
          });
          ++increments[i];
        } else if (pick < 7) {
          // Transfer between two distinct accounts (conserves the total).
          const uint64_t from = base + rng.NextBelow(cfg.accounts) * kWordBytes;
          uint64_t to = base + rng.NextBelow(cfg.accounts) * kWordBytes;
          if (to == from) {
            to = base + ((to - base) / kWordBytes + 1) % cfg.accounts * kWordBytes;
          }
          rt.Execute([from, to, tag](Tx& tx) {
            tx.Write(from, ((tag + 1) << 32) | ((tx.Read(from) & kBalanceMask) - 1));
            tx.Write(to, ((tag + 2) << 32) | ((tx.Read(to) & kBalanceMask) + 1));
          });
        } else {
          // Read-only scan of the whole array (ReadMany exercises the
          // batched read path under TxMode::kNormal with max_batch > 1).
          rt.Execute([&scan_addrs](Tx& tx) { (void)tx.ReadMany(scan_addrs); });
        }
      }
      done[i] = true;
    });
  }

  sys.AttachTrace(&result.history);
  // Generous horizon: the workload is bounded, so a run that does not
  // complete within it is itself reported as a violation (livelock or a
  // fault-induced wedge), not silently truncated.
  sys.Run(MillisToSim(8000));
  result.stats = sys.MergedStats();

  OracleOptions opts;
  opts.elastic_relaxed = cfg.tx_mode != TxMode::kNormal;
  result.report = CheckHistory(result.history, opts);

  bool all_done = true;
  for (uint32_t i = 0; i < n; ++i) {
    if (!done[i]) {
      all_done = false;
      result.report.violations.push_back(OracleViolation{
          "incomplete-run", "app core " + std::to_string(i) + " did not finish its workload"});
    }
  }

  CheckFinalState(result.history,
                  [&sys](uint64_t addr) { return sys.shmem().LoadWord(addr); },
                  &result.report);

  if (all_done) {
    // Transfers conserve the balance total and every increment adds exactly
    // 1, so the final sum is fully determined. A mismatch is a lost (or
    // duplicated) update even if the history happens to look serializable.
    uint64_t expected = static_cast<uint64_t>(cfg.accounts) * kInitial;
    for (uint32_t i = 0; i < n; ++i) {
      expected += increments[i];
    }
    uint64_t actual = 0;
    for (uint32_t a = 0; a < cfg.accounts; ++a) {
      actual += sys.shmem().LoadWord(base + a * kWordBytes) & kBalanceMask;
    }
    if (actual != expected) {
      result.report.violations.push_back(OracleViolation{
          "conservation", "final account total is " + std::to_string(actual) + ", expected " +
                              std::to_string(expected) + " (lost or duplicated updates)"});
    }
  }

  return result;
}

}  // namespace tm2c

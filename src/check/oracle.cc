#include "src/check/oracle.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace tm2c {
namespace {

struct Version {
  uint64_t seq = 0;
  uint64_t value = 0;
  size_t tx = 0;  // index into history.transactions()
};

std::string Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

// Dependency-graph builder with labelled edges for cycle reports.
class ConflictGraph {
 public:
  explicit ConflictGraph(size_t n) : adj_(n) {}

  void AddEdge(size_t from, size_t to, const std::string& label) {
    if (from == to) {
      return;  // a transaction never conflicts with itself
    }
    const uint64_t key = static_cast<uint64_t>(from) * adj_.size() + to;
    if (!edge_keys_.insert(key).second) {
      return;  // already present; keep the first label
    }
    adj_[from].push_back(to);
    labels_[key] = label;
    ++edges_;
  }

  uint64_t edges() const { return edges_; }

  const std::string& Label(size_t from, size_t to) const {
    return labels_.at(static_cast<uint64_t>(from) * adj_.size() + to);
  }

  // Returns the node sequence of one cycle (first node repeated at the
  // end), or an empty vector when the graph is acyclic.
  std::vector<size_t> FindCycle() const {
    std::vector<uint8_t> color(adj_.size(), 0);  // 0 white, 1 on path, 2 done
    std::vector<size_t> path;
    // (node, index of the next neighbour to visit)
    std::vector<std::pair<size_t, size_t>> stack;
    for (size_t s = 0; s < adj_.size(); ++s) {
      if (color[s] != 0) {
        continue;
      }
      color[s] = 1;
      path.push_back(s);
      stack.emplace_back(s, 0);
      while (!stack.empty()) {
        auto& [u, next] = stack.back();
        if (next < adj_[u].size()) {
          const size_t v = adj_[u][next++];
          if (color[v] == 0) {
            color[v] = 1;
            path.push_back(v);
            stack.emplace_back(v, 0);
          } else if (color[v] == 1) {
            // Back edge: the cycle is the path suffix starting at v.
            auto it = std::find(path.begin(), path.end(), v);
            std::vector<size_t> cycle(it, path.end());
            cycle.push_back(v);
            return cycle;
          }
        } else {
          color[u] = 2;
          path.pop_back();
          stack.pop_back();
        }
      }
    }
    return {};
  }

 private:
  std::vector<std::vector<size_t>> adj_;
  std::unordered_set<uint64_t> edge_keys_;
  std::unordered_map<uint64_t, std::string> labels_;
  uint64_t edges_ = 0;
};

}  // namespace

std::string OracleReport::Summary() const {
  std::string s = "committed=" + std::to_string(committed) +
                  " aborted=" + std::to_string(aborted) +
                  " unfinished=" + std::to_string(unfinished) +
                  " reads=" + std::to_string(reads_checked) +
                  " edges=" + std::to_string(edges) +
                  " violations=" + std::to_string(violations.size());
  for (const OracleViolation& v : violations) {
    s += "\n  [" + v.kind + "] " + v.detail;
  }
  return s;
}

OracleReport CheckHistory(const History& history, const OracleOptions& options) {
  OracleReport report;
  const std::vector<History::Tx>& txs = history.transactions();

  // ---- Version order: the persist order of each address. ----------------
  std::unordered_map<uint64_t, std::vector<Version>> versions;
  for (size_t i = 0; i < txs.size(); ++i) {
    if (txs[i].finished && !txs[i].committed) {
      continue;  // aborted attempts never persisted anything by contract
    }
    for (const History::Write& w : txs[i].writes) {
      versions[w.addr].push_back(Version{w.seq, w.value, i});
    }
    if (txs[i].committed) {
      ++report.committed;
    } else {
      ++report.unfinished;
    }
  }
  for (const History::Tx& tx : txs) {
    if (tx.finished && !tx.committed) {
      ++report.aborted;
    }
  }
  for (auto& [addr, vs] : versions) {
    std::sort(vs.begin(), vs.end(), [](const Version& a, const Version& b) {
      return a.seq < b.seq;
    });
  }

  // ---- Graph membership. ------------------------------------------------
  // Writers (anything that persisted) and committed transactions take part
  // in the serializability check; aborted attempts only get the read check.
  // Under elastic relaxation, committed read-only transactions are exempt:
  // a torn read-only scan is elasticity's documented behaviour, not a bug.
  std::vector<bool> in_graph(txs.size(), false);
  for (size_t i = 0; i < txs.size(); ++i) {
    const History::Tx& tx = txs[i];
    const bool is_writer = !tx.writes.empty();
    bool member = is_writer || tx.committed;
    if (options.elastic_relaxed && tx.read_only()) {
      member = false;
    }
    in_graph[i] = member;
  }

  ConflictGraph graph(txs.size());

  // WW edges between consecutive versions of each address.
  for (const auto& [addr, vs] : versions) {
    for (size_t k = 0; k + 1 < vs.size(); ++k) {
      if (in_graph[vs[k].tx] && in_graph[vs[k + 1].tx]) {
        graph.AddEdge(vs[k].tx, vs[k + 1].tx, "WW " + Hex(addr));
      }
    }
  }

  // ---- Read checks + WR/RW edges. ---------------------------------------
  // Reads that precede every persist of their address observe the initial
  // value: explicitly registered, or inferred from the earliest such read.
  struct InitialObs {
    uint64_t seq;
    uint64_t value;
    size_t tx;
  };
  std::unordered_map<uint64_t, std::vector<InitialObs>> initial_reads;

  for (size_t i = 0; i < txs.size(); ++i) {
    for (const History::Read& r : txs[i].reads) {
      ++report.reads_checked;
      auto vit = versions.find(r.addr);
      ptrdiff_t v = -1;
      if (vit != versions.end()) {
        // Last version whose store precedes this read.
        const std::vector<Version>& vs = vit->second;
        auto up = std::upper_bound(vs.begin(), vs.end(), r.seq,
                                   [](uint64_t seq, const Version& ver) { return seq < ver.seq; });
        v = (up - vs.begin()) - 1;
      }
      if (v < 0) {
        initial_reads[r.addr].push_back(InitialObs{r.seq, r.value, i});
        // RW edge to the first writer of the address, if any.
        if (vit != versions.end() && in_graph[i] && in_graph[vit->second[0].tx]) {
          graph.AddEdge(i, vit->second[0].tx, "RW " + Hex(r.addr));
        }
        continue;
      }
      const Version& ver = vit->second[static_cast<size_t>(v)];
      if (r.value != ver.value) {
        report.violations.push_back(OracleViolation{
            "stale-read",
            txs[i].Name() + " read " + Hex(r.addr) + " = " + std::to_string(r.value) +
                " but the last committed writer (" + txs[ver.tx].Name() + ") stored " +
                std::to_string(ver.value)});
        continue;
      }
      if (in_graph[i] && in_graph[ver.tx]) {
        graph.AddEdge(ver.tx, i, "WR " + Hex(r.addr));
      }
      if (static_cast<size_t>(v) + 1 < vit->second.size()) {
        const Version& next = vit->second[static_cast<size_t>(v) + 1];
        if (in_graph[i] && in_graph[next.tx]) {
          graph.AddEdge(i, next.tx, "RW " + Hex(r.addr));
        }
      }
    }
  }

  // Initial-value consistency.
  const auto& registered = history.initial_values();
  for (auto& [addr, obs] : initial_reads) {
    std::sort(obs.begin(), obs.end(),
              [](const InitialObs& a, const InitialObs& b) { return a.seq < b.seq; });
    auto reg = registered.find(addr);
    uint64_t expected = reg != registered.end() ? reg->second : obs.front().value;
    const char* source = reg != registered.end() ? "registered initial" : "first observed";
    for (const InitialObs& o : obs) {
      if (o.value != expected) {
        report.violations.push_back(OracleViolation{
            "inconsistent-initial-read",
            txs[o.tx].Name() + " read " + Hex(addr) + " = " + std::to_string(o.value) +
                " before any write, but the " + source + " value is " +
                std::to_string(expected)});
      }
    }
  }

  report.edges = graph.edges();

  // ---- Cycle detection. -------------------------------------------------
  const std::vector<size_t> cycle = graph.FindCycle();
  if (!cycle.empty()) {
    std::string detail = "non-serializable committed transactions: ";
    for (size_t k = 0; k + 1 < cycle.size(); ++k) {
      detail += txs[cycle[k]].Name() + " -[" + graph.Label(cycle[k], cycle[k + 1]) + "]-> ";
    }
    detail += txs[cycle.back()].Name();
    report.violations.push_back(OracleViolation{"cycle", detail});
  }

  return report;
}

void CheckFinalState(const History& history, const std::function<uint64_t(uint64_t)>& load,
                     OracleReport* report) {
  // Reconstruct the last persisted version of every written address.
  std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> last;  // addr -> (seq, value)
  for (const History::Tx& tx : history.transactions()) {
    if (tx.finished && !tx.committed) {
      continue;
    }
    for (const History::Write& w : tx.writes) {
      auto [it, inserted] = last.emplace(w.addr, std::make_pair(w.seq, w.value));
      if (!inserted && w.seq > it->second.first) {
        it->second = {w.seq, w.value};
      }
    }
  }
  for (const auto& [addr, sv] : last) {
    const uint64_t actual = load(addr);
    if (actual != sv.second) {
      report->violations.push_back(OracleViolation{
          "final-state",
          "memory at " + Hex(addr) + " holds " + std::to_string(actual) +
              " but the last persisted version is " + std::to_string(sv.second)});
    }
  }
}

void CheckMigrationHistory(const History& history, OracleReport* report) {
  if (history.migrations().empty() && history.grants().empty()) {
    return;
  }
  // Replay migrations and grants as one seq-ordered stream over the range
  // state machine: owner -> (draining) -> new owner.
  struct RangeState {
    uint64_t bytes = 0;
    uint32_t owner_core = 0;
    bool draining = false;
    uint32_t drain_target = 0;
  };
  std::unordered_map<uint64_t, RangeState> ranges;  // keyed by base

  struct Step {
    uint64_t seq;
    bool is_grant;
    size_t index;
  };
  std::vector<Step> steps;
  steps.reserve(history.grants().size() + history.migrations().size());
  for (size_t i = 0; i < history.grants().size(); ++i) {
    steps.push_back(Step{history.grants()[i].seq, true, i});
  }
  for (size_t i = 0; i < history.migrations().size(); ++i) {
    steps.push_back(Step{history.migrations()[i].seq, false, i});
  }
  std::sort(steps.begin(), steps.end(),
            [](const Step& a, const Step& b) { return a.seq < b.seq; });

  for (const Step& step : steps) {
    if (!step.is_grant) {
      const History::MigrationEvent& m = history.migrations()[step.index];
      if (m.kind == History::MigrationEvent::Kind::kBegin) {
        // First sighting of a range defines its pre-migration owner.
        auto [it, inserted] = ranges.emplace(m.base, RangeState{m.bytes, m.from_core, false, 0});
        RangeState& st = it->second;
        if (!inserted && st.owner_core != m.from_core) {
          report->violations.push_back(OracleViolation{
              "migration-begin-by-non-owner",
              "core " + std::to_string(m.from_core) + " began migrating [" + Hex(m.base) +
                  ", +" + std::to_string(m.bytes) + ") owned by core " +
                  std::to_string(st.owner_core)});
        }
        st.bytes = m.bytes;
        st.draining = true;
        st.drain_target = m.to_core;
      } else {
        auto it = ranges.find(m.base);
        if (it == ranges.end() || !it->second.draining) {
          report->violations.push_back(OracleViolation{
              "migration-complete-without-begin",
              "core " + std::to_string(m.from_core) + " completed a migration of [" +
                  Hex(m.base) + ", +" + std::to_string(m.bytes) + ") that never began"});
          continue;
        }
        RangeState& st = it->second;
        st.draining = false;
        st.owner_core = m.to_core;
      }
      continue;
    }
    const History::GrantEvent& g = history.grants()[step.index];
    // Find the tracked range containing the stripe, if any. Ranges are few
    // (one per migrated slab); a linear scan is fine for an offline check.
    for (const auto& [base, st] : ranges) {
      if (g.stripe - base >= st.bytes) {
        continue;
      }
      if (st.draining && g.service_core == st.owner_core) {
        report->violations.push_back(OracleViolation{
            "grant-during-migration",
            "core " + std::to_string(g.service_core) + " granted stripe " + Hex(g.stripe) +
                " to core " + std::to_string(g.requester_core) +
                " while draining its range [" + Hex(base) + ", +" + std::to_string(st.bytes) +
                ") for migration"});
      } else if (!st.draining && g.service_core != st.owner_core) {
        report->violations.push_back(OracleViolation{
            "grant-by-non-owner",
            "core " + std::to_string(g.service_core) + " granted stripe " + Hex(g.stripe) +
                " to core " + std::to_string(g.requester_core) + " but range [" + Hex(base) +
                ", +" + std::to_string(st.bytes) + ") is owned by core " +
                std::to_string(st.owner_core)});
      }
      break;
    }
  }

  // A range still draining at the end of the replay is not a violation: a
  // horizon can legitimately cut a run mid-drain (the planted
  // grant-during-migration fault always does, since its range never
  // empties). The grant checks above still hold inside the open window.
}

}  // namespace tm2c

// Process-kill chaos harness: real process death under the crash oracle.
//
// The simulated crash harness (checker.cc) picks a post-hoc cut in a
// completed run; this harness kills for real. It runs a fixed, determinate
// workload on the process backend with durability on, SIGKILLs one
// partition's server halfway through app core 0's work, and lets the
// backend's death protocol play out live: the cold standby recovers the
// partition from the on-disk WAL (truncating the torn tail), in-doubt
// commit records are retransmitted, refused requests retry, and every core
// finishes its fixed work.
//
// The post-run accounting holds that recovery to the same standard as the
// simulated cuts: the crash-restart oracle (src/check/crash.h) replays the
// recorded durability events — including the restart's kTruncate — against
// the WAL images read back from disk and the live final memory, and the
// workload's fixed-work shape pins the commit count and the shared-counter
// totals exactly. A partition server that loses an acknowledged commit,
// double-applies a retransmission, or leaks a dead transaction's locks
// fails a seed of this harness.
#ifndef TM2C_SRC_CHECK_PROCESS_KILL_H_
#define TM2C_SRC_CHECK_PROCESS_KILL_H_

#include <cstdint>
#include <string>

#include "src/check/history.h"
#include "src/check/oracle.h"

namespace tm2c {

struct ProcessKillConfig {
  uint32_t num_cores = 4;
  uint32_t num_service = 2;
  // Partition whose server is SIGKILLed halfway through app core 0's ops.
  uint32_t kill_partition = 0;
  // Fixed work per app core: every op is one transaction that eventually
  // commits, so the final commit count is workload-determined.
  uint32_t ops_per_core = 400;
  uint32_t shared_words_per_partition = 4;  // commutative counters
  uint32_t private_words = 2;               // per (app core, partition)
  uint32_t group_commit_txs = 4;
  uint64_t checkpoint_every_records = 0;  // 0 = log only
  uint64_t seed = 1;
  // Fresh per-run directory for the partition sockets and WAL files.
  std::string run_dir;

  std::string Name() const;  // "kill_p0_s3" style label for dump files
};

struct ProcessKillResult {
  OracleReport report;  // crash-restart oracle + harness-level violations
  History history;      // recorded events, for failing-seed dumps
  uint64_t commits = 0;
  uint64_t expected_commits = 0;
  uint32_t restarts = 0;           // server replacements on kill_partition
  bool truncate_seen = false;      // the restart's kTruncate was recorded
  uint64_t appends_after_truncate = 0;  // successor kept logging
  bool tables_empty = false;
};

ProcessKillResult RunProcessKillWorkload(const ProcessKillConfig& cfg);

}  // namespace tm2c

#endif  // TM2C_SRC_CHECK_PROCESS_KILL_H_

#include "src/check/process_kill.h"

#include <utility>
#include <vector>

#include "src/check/crash.h"
#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/durability/wal.h"
#include "src/noc/platform.h"
#include "src/tm/tm_system.h"
#include "src/tm/trace.h"

namespace tm2c {

std::string ProcessKillConfig::Name() const {
  return "kill_p" + std::to_string(kill_partition) + "_s" + std::to_string(seed);
}

ProcessKillResult RunProcessKillWorkload(const ProcessKillConfig& cfg) {
  TM2C_CHECK_MSG(!cfg.run_dir.empty(), "process-kill harness needs a run directory");
  TM2C_CHECK(cfg.kill_partition < cfg.num_service);

  TmSystemConfig sys_cfg;
  sys_cfg.backend = BackendKind::kProcesses;
  sys_cfg.run_dir = cfg.run_dir;
  sys_cfg.sim.platform = MakeOpteronPlatform();
  sys_cfg.sim.num_cores = cfg.num_cores;
  sys_cfg.sim.num_service = cfg.num_service;
  sys_cfg.sim.shmem_bytes = 1 << 20;
  sys_cfg.tm.cm = CmKind::kFairCm;
  sys_cfg.tm.durability = DurabilityMode::kBuffered;
  sys_cfg.tm.group_commit_txs = cfg.group_commit_txs;
  sys_cfg.tm.checkpoint_every_records = cfg.checkpoint_every_records;
  TmSystem sys(sys_cfg);

  const uint32_t num_app = sys.num_app_cores();
  const uint64_t words_per_slab =
      cfg.shared_words_per_partition + uint64_t{num_app} * cfg.private_words;

  // One registered slab per partition: the shared commutative counters
  // first, then each app core's private words. Registration pins both the
  // lock routing and the durable home, so every write in the run lands in
  // exactly one partition's WAL.
  std::vector<uint64_t> slab(cfg.num_service);
  for (uint32_t p = 0; p < cfg.num_service; ++p) {
    slab[p] = sys.allocator().AllocGlobal(words_per_slab * kWordBytes);
    sys.address_map().AddOwnedRange(slab[p], words_per_slab * kWordBytes, p);
    for (uint64_t w = 0; w < words_per_slab; ++w) {
      sys.shmem().StoreWord(slab[p] + w * kWordBytes, 0);
    }
  }

  ProcessKillResult result;
  MutexTraceSink sink(&result.history);
  sys.AttachTrace(&sink);
  for (uint32_t p = 0; p < cfg.num_service; ++p) {
    for (uint64_t w = 0; w < words_per_slab; ++w) {
      result.history.RecordInitial(slab[p] + w * kWordBytes, 0);
    }
  }
  sys.CaptureDurableCheckpoint0();

  std::vector<uint64_t> increments(num_app, 0);
  sys.SetAllAppBodies([&sys, &cfg, &slab, &increments, num_app](CoreEnv& env, TxRuntime& rt) {
    uint32_t app_index = 0;
    for (uint32_t i = 0; i < num_app; ++i) {
      if (sys.deployment().app_cores()[i] == env.core_id()) {
        app_index = i;
      }
    }
    Rng rng(cfg.seed * 1299721 + env.core_id() * 7919 + 1);
    for (uint32_t k = 0; k < cfg.ops_per_core; ++k) {
      if (app_index == 0 && k == cfg.ops_per_core / 2) {
        sys.KillPartition(cfg.kill_partition);
      }
      const uint32_t p = static_cast<uint32_t>(rng.NextBelow(cfg.num_service));
      if (rng.NextBelow(10) < 6) {
        // Commutative shared increment: any interleaving sums the same.
        const uint64_t addr =
            slab[p] + rng.NextBelow(cfg.shared_words_per_partition) * kWordBytes;
        rt.Execute([addr](Tx& tx) { tx.Write(addr, tx.Read(addr) + 1); });
        ++increments[app_index];
      } else {
        // Private-word churn: only this core writes the word, with a tag
        // unique across the run so a double-applied retransmission or a
        // lost acked write shows up as a concrete value mismatch.
        const uint64_t w = cfg.shared_words_per_partition +
                           uint64_t{app_index} * cfg.private_words +
                           rng.NextBelow(cfg.private_words);
        const uint64_t addr = slab[p] + w * kWordBytes;
        const uint64_t tag = (uint64_t{env.core_id()} << 40) | (uint64_t{k} << 8) | p | 1;
        rt.Execute([addr, tag](Tx& tx) { tx.Write(addr, tx.Read(addr) + tag); });
      }
    }
  });

  sys.Run();

  result.commits = sys.MergedStats().commits;
  result.expected_commits = uint64_t{num_app} * cfg.ops_per_core;
  result.restarts = sys.process().restarts(cfg.kill_partition);
  result.tables_empty = sys.AllLockTablesEmpty();
  if (result.commits != result.expected_commits) {
    result.report.violations.push_back(OracleViolation{
        "fixed-work", "run committed " + std::to_string(result.commits) + " transactions, the "
                          "fixed workload demands exactly " +
                          std::to_string(result.expected_commits)});
  }
  if (!result.tables_empty) {
    result.report.violations.push_back(OracleViolation{
        "leaked-locks", "a partition's lock table is non-empty after all app bodies finished"});
  }
  if (result.restarts != 1) {
    result.report.violations.push_back(OracleViolation{
        "restart", "partition " + std::to_string(cfg.kill_partition) + " was replaced " +
                       std::to_string(result.restarts) + " times, expected exactly 1"});
  }

  // The restart's truncate event, and whether the successor kept logging
  // after it (a vacuity guard: the kill must land mid-workload, not after
  // the killed partition's traffic already ended).
  uint64_t truncate_seq = 0;
  for (const History::DurabilityEvent& ev : result.history.durability_events()) {
    if (ev.kind == History::DurabilityEvent::Kind::kTruncate &&
        ev.partition == cfg.kill_partition) {
      result.truncate_seen = true;
      truncate_seq = ev.seq;
    }
  }
  if (result.truncate_seen) {
    for (const History::DurabilityEvent& ev : result.history.durability_events()) {
      if (ev.kind == History::DurabilityEvent::Kind::kAppend &&
          ev.partition == cfg.kill_partition && ev.seq > truncate_seq) {
        ++result.appends_after_truncate;
      }
    }
  } else {
    result.report.violations.push_back(OracleViolation{
        "restart", "no kTruncate recorded for the killed partition: the standby never "
                   "recovered the WAL"});
  }

  // Crash-restart oracle over the whole run: the durable watermark at the
  // final event must cover exactly the records the on-disk WAL images
  // replay, and live memory must equal initial-image + durable replay.
  const CrashCutReport cut =
      AnalyzeCrashCut(result.history, result.history.num_events(), cfg.num_service);
  std::vector<std::vector<CommitRecord>> durable_log(cfg.num_service);
  for (uint32_t p = 0; p < cfg.num_service; ++p) {
    const WalReadResult parsed =
        ReadWalFile(cfg.run_dir + "/part" + std::to_string(p) + ".wal");
    if (parsed.bad_magic || parsed.crc_mismatch) {
      result.report.violations.push_back(OracleViolation{
          "torn-log", "partition " + std::to_string(p) + ": on-disk WAL fails to parse (" +
                          (parsed.bad_magic ? "bad magic" : "crc mismatch") + ")"});
    }
    for (const WalRecord& rec : parsed.records) {
      CommitRecord commit;
      if (!ParseCommitRecord(rec, &commit)) {
        result.report.violations.push_back(OracleViolation{
            "torn-log", "partition " + std::to_string(p) + ": durable record " +
                            std::to_string(durable_log[p].size()) +
                            " is not a well-formed commit record"});
        break;
      }
      durable_log[p].push_back(std::move(commit));
    }
  }
  CheckCrashRestartHistory(
      result.history, cut, durable_log,
      [&sys](uint64_t addr) { return sys.shmem().LoadWord(addr); },
      [&sys](uint64_t addr) { return sys.address_map().PartitionOf(addr); },
      &result.report);

  // Fixed-work conservation, independent of the history: the shared
  // counters must sum to exactly the increments the cores performed.
  uint64_t expected_sum = 0;
  for (uint32_t i = 0; i < num_app; ++i) {
    expected_sum += increments[i];
  }
  uint64_t actual_sum = 0;
  for (uint32_t p = 0; p < cfg.num_service; ++p) {
    for (uint32_t w = 0; w < cfg.shared_words_per_partition; ++w) {
      actual_sum += sys.shmem().LoadWord(slab[p] + w * kWordBytes);
    }
  }
  if (actual_sum != expected_sum) {
    result.report.violations.push_back(OracleViolation{
        "conservation", "shared counters sum to " + std::to_string(actual_sum) + ", expected " +
                            std::to_string(expected_sum) + " (lost or duplicated updates)"});
  }

  return result;
}

}  // namespace tm2c

// Per-core transaction statistics.
#ifndef TM2C_SRC_TM_STATS_H_
#define TM2C_SRC_TM_STATS_H_

#include <cstdint>

#include "src/sim/time.h"

namespace tm2c {

struct TxStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t raw_conflicts = 0;
  uint64_t waw_conflicts = 0;
  uint64_t war_conflicts = 0;
  uint64_t notify_aborts = 0;  // aborted by a remote CM revocation
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t messages_sent = 0;
  uint64_t early_releases = 0;
  uint64_t validation_failures = 0;  // elastic-read
  SimTime busy_time = 0;             // local time spent inside attempts
  uint64_t max_attempts_per_tx = 0;  // worst-case retries of a single tx
  // Lock-acquisition cost: stripes requested from a DTM node (granted or
  // refused), batch messages among those requests, and the local time spent
  // waiting for acquisition responses. acquire_time / lock_acquires is the
  // per-stripe mean acquire latency the batching ablation tracks.
  uint64_t lock_acquires = 0;
  uint64_t batch_messages = 0;
  SimTime acquire_time = 0;

  double CommitRate() const {
    const uint64_t attempts = commits + aborts;
    return attempts == 0 ? 1.0 : static_cast<double>(commits) / static_cast<double>(attempts);
  }

  // Field-by-field equality, used by the determinism regression tests
  // (same seed and chaos configuration => identical statistics).
  bool operator==(const TxStats& other) const {
    return commits == other.commits && aborts == other.aborts &&
           raw_conflicts == other.raw_conflicts && waw_conflicts == other.waw_conflicts &&
           war_conflicts == other.war_conflicts && notify_aborts == other.notify_aborts &&
           reads == other.reads && writes == other.writes &&
           messages_sent == other.messages_sent && early_releases == other.early_releases &&
           validation_failures == other.validation_failures && busy_time == other.busy_time &&
           max_attempts_per_tx == other.max_attempts_per_tx &&
           lock_acquires == other.lock_acquires && batch_messages == other.batch_messages &&
           acquire_time == other.acquire_time;
  }
  bool operator!=(const TxStats& other) const { return !(*this == other); }

  void Merge(const TxStats& other) {
    commits += other.commits;
    aborts += other.aborts;
    raw_conflicts += other.raw_conflicts;
    waw_conflicts += other.waw_conflicts;
    war_conflicts += other.war_conflicts;
    notify_aborts += other.notify_aborts;
    reads += other.reads;
    writes += other.writes;
    messages_sent += other.messages_sent;
    early_releases += other.early_releases;
    validation_failures += other.validation_failures;
    busy_time += other.busy_time;
    lock_acquires += other.lock_acquires;
    batch_messages += other.batch_messages;
    acquire_time += other.acquire_time;
    if (other.max_attempts_per_tx > max_attempts_per_tx) {
      max_attempts_per_tx = other.max_attempts_per_tx;
    }
  }
};

}  // namespace tm2c

#endif  // TM2C_SRC_TM_STATS_H_
